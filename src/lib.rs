//! `blobseer-repro` — umbrella crate of the reproduction of
//! *"Improving the Hadoop Map/Reduce Framework to Support Concurrent
//! Appends through the BlobSeer BLOB management system"* (Moise, Antoniu &
//! Bougé, HPDC'10 MapReduce workshop).
//!
//! Everything lives in the member crates and is re-exported here:
//!
//! | crate | role |
//! |---|---|
//! | [`fabric`] | execution substrate: deterministic 270-node cluster simulation (max-min fair fluid flows) + live-thread mode |
//! | [`pstore`] | embedded log-structured KV store (BerkeleyDB substitute) |
//! | [`dfs`] | the Hadoop-`FileSystem`-style interface |
//! | [`blobseer`] | the BLOB store: versioned segment-tree metadata, provider manager, version manager |
//! | [`bsfs`] | the BlobSeer File System: namespace manager + client caching + **concurrent append** |
//! | [`hdfs_sim`] | the HDFS 0.20 baseline: write-once, no append |
//! | [`mapreduce`] | jobtracker/tasktrackers, locality scheduling, shuffle, both output committers |
//! | [`workloads`] | data join (contrib semantics), wordcount, grep, Last.fm-like generator |
//!
//! Run the examples (`cargo run --release --example quickstart`) for guided
//! tours, and `cargo bench` to regenerate every figure of the paper's
//! evaluation (see `EXPERIMENTS.md`).

pub use blobseer;
pub use bsfs;
pub use dfs;
pub use fabric;
pub use hdfs_sim;
pub use mapreduce;
pub use pstore;
pub use workloads;

/// Convenience testbed builders shared by examples and integration tests.
pub mod testbed {
    use std::sync::Arc;

    use blobseer::{BlobSeerConfig, Layout};
    use bsfs::Bsfs;
    use dfs::FileSystem;
    use fabric::{ClusterSpec, Fabric};
    use hdfs_sim::{HdfsConfig, HdfsLayout, HdfsSim};
    use mapreduce::{MrCluster, MrConfig};

    /// A small live-mode BSFS world for interactive examples: real threads,
    /// real bytes, `nodes` logical nodes, `block_size`-byte pages.
    pub fn live_bsfs(nodes: u32, block_size: u64) -> (Fabric, Bsfs) {
        let fx = Fabric::live(ClusterSpec::tiny(nodes));
        let fs = Bsfs::deploy(
            &fx,
            BlobSeerConfig::test_small(block_size),
            Layout::compact(fx.spec()),
        )
        .expect("deploy BSFS");
        (fx, fs)
    }

    /// Like [`live_bsfs`], but every service persists to a per-service
    /// subdirectory of `dir` (providers their pages, metadata servers their
    /// tree nodes, the provider manager its lease book), which makes
    /// `blobseer::Fault::CrashRestart` injectable: a killed service heals
    /// by replaying its pstore directory.
    pub fn live_bsfs_persistent(
        nodes: u32,
        block_size: u64,
        dir: &std::path::Path,
    ) -> (Fabric, Bsfs) {
        let fx = Fabric::live(ClusterSpec::tiny(nodes));
        let fs = Bsfs::deploy(
            &fx,
            BlobSeerConfig::test_small(block_size).with_persist_dir(Some(dir.to_path_buf())),
            Layout::compact(fx.spec()),
        )
        .expect("deploy persistent BSFS");
        (fx, fs)
    }

    /// A small live-mode HDFS world.
    pub fn live_hdfs(nodes: u32, block_size: u64) -> (Fabric, HdfsSim) {
        let fx = Fabric::live(ClusterSpec::tiny(nodes));
        let fs = HdfsSim::deploy(
            &fx,
            HdfsConfig::test_small(block_size),
            HdfsLayout::compact(fx.spec()),
        );
        (fx, fs)
    }

    /// Start a Map/Reduce cluster over `fs` with fast heartbeats (live
    /// examples want snappy scheduling).
    pub fn live_mapreduce(fx: &Fabric, fs: Arc<dyn FileSystem>) -> MrCluster {
        let cfg = MrConfig::compact(fx.spec()).with_heartbeat_ns(2 * fabric::MILLIS);
        MrCluster::start(fx, fs, cfg)
    }
}
