//! Offline stand-in for [`parking_lot`](https://crates.io/crates/parking_lot).
//!
//! This build environment has no access to a cargo registry, so the subset of
//! the `parking_lot` 0.12 API this workspace uses is re-implemented here on
//! top of `std::sync`. Semantics match `parking_lot` where the workspace
//! relies on them:
//!
//! - `Mutex::lock()` returns a guard directly (no `Result`); a poisoned
//!   std mutex is transparently un-poisoned, matching `parking_lot`'s
//!   poison-free behaviour.
//! - `Condvar::wait(&mut guard)` takes the guard by `&mut` and re-acquires
//!   the lock before returning, exactly like `parking_lot`.
//!
//! Fairness/eventual-fairness and `const fn` lock construction beyond what
//! `std` offers are NOT reproduced; nothing in this workspace needs them.

use std::fmt;
use std::ops::{Deref, DerefMut};
use std::sync::{self, TryLockError};
use std::time::Duration;

/// Mutual exclusion primitive (API subset of `parking_lot::Mutex`).
#[derive(Default)]
pub struct Mutex<T: ?Sized> {
    inner: sync::Mutex<T>,
}

impl<T> Mutex<T> {
    pub const fn new(value: T) -> Self {
        Mutex {
            inner: sync::Mutex::new(value),
        }
    }

    pub fn into_inner(self) -> T {
        match self.inner.into_inner() {
            Ok(v) => v,
            Err(p) => p.into_inner(),
        }
    }
}

impl<T: ?Sized> Mutex<T> {
    pub fn lock(&self) -> MutexGuard<'_, T> {
        let guard = match self.inner.lock() {
            Ok(g) => g,
            // parking_lot has no poisoning: recover the guard.
            Err(p) => p.into_inner(),
        };
        MutexGuard { inner: Some(guard) }
    }

    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.inner.try_lock() {
            Ok(g) => Some(MutexGuard { inner: Some(g) }),
            Err(TryLockError::Poisoned(p)) => Some(MutexGuard {
                inner: Some(p.into_inner()),
            }),
            Err(TryLockError::WouldBlock) => None,
        }
    }

    pub fn get_mut(&mut self) -> &mut T {
        match self.inner.get_mut() {
            Ok(v) => v,
            Err(p) => p.into_inner(),
        }
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.try_lock() {
            Some(g) => f.debug_struct("Mutex").field("data", &&*g).finish(),
            None => f.debug_struct("Mutex").field("data", &"<locked>").finish(),
        }
    }
}

/// RAII guard for [`Mutex`]. The `Option` is always `Some` except transiently
/// inside [`Condvar::wait`], which must hand the std guard back to std.
pub struct MutexGuard<'a, T: ?Sized> {
    inner: Option<sync::MutexGuard<'a, T>>,
}

impl<T: ?Sized> Deref for MutexGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        self.inner.as_ref().expect("guard taken during wait")
    }
}

impl<T: ?Sized> DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        self.inner.as_mut().expect("guard taken during wait")
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for MutexGuard<'_, T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Debug::fmt(&**self, f)
    }
}

/// Result of a timed wait on a [`Condvar`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WaitTimeoutResult(bool);

impl WaitTimeoutResult {
    pub fn timed_out(&self) -> bool {
        self.0
    }
}

/// Condition variable (API subset of `parking_lot::Condvar`).
#[derive(Default)]
pub struct Condvar {
    inner: sync::Condvar,
}

impl Condvar {
    pub const fn new() -> Self {
        Condvar {
            inner: sync::Condvar::new(),
        }
    }

    /// Block until notified. Unlike `std`, takes the guard by `&mut` and
    /// re-acquires the lock before returning (parking_lot signature).
    pub fn wait<T>(&self, guard: &mut MutexGuard<'_, T>) {
        let std_guard = guard.inner.take().expect("guard taken during wait");
        let std_guard = match self.inner.wait(std_guard) {
            Ok(g) => g,
            Err(p) => p.into_inner(),
        };
        guard.inner = Some(std_guard);
    }

    /// Block until notified or `timeout` elapses.
    pub fn wait_for<T>(
        &self,
        guard: &mut MutexGuard<'_, T>,
        timeout: Duration,
    ) -> WaitTimeoutResult {
        let std_guard = guard.inner.take().expect("guard taken during wait");
        let (std_guard, res) = match self.inner.wait_timeout(std_guard, timeout) {
            Ok((g, r)) => (g, r),
            Err(p) => {
                let (g, r) = p.into_inner();
                (g, r)
            }
        };
        guard.inner = Some(std_guard);
        WaitTimeoutResult(res.timed_out())
    }

    pub fn notify_one(&self) {
        self.inner.notify_one();
    }

    pub fn notify_all(&self) {
        self.inner.notify_all();
    }
}

impl fmt::Debug for Condvar {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.pad("Condvar { .. }")
    }
}

/// Reader-writer lock (API subset of `parking_lot::RwLock`).
#[derive(Default)]
pub struct RwLock<T: ?Sized> {
    inner: sync::RwLock<T>,
}

impl<T> RwLock<T> {
    pub const fn new(value: T) -> Self {
        RwLock {
            inner: sync::RwLock::new(value),
        }
    }
}

impl<T: ?Sized> RwLock<T> {
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        match self.inner.read() {
            Ok(g) => RwLockReadGuard(g),
            Err(p) => RwLockReadGuard(p.into_inner()),
        }
    }

    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        match self.inner.write() {
            Ok(g) => RwLockWriteGuard(g),
            Err(p) => RwLockWriteGuard(p.into_inner()),
        }
    }
}

pub struct RwLockReadGuard<'a, T: ?Sized>(sync::RwLockReadGuard<'a, T>);

impl<T: ?Sized> Deref for RwLockReadGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.0
    }
}

pub struct RwLockWriteGuard<'a, T: ?Sized>(sync::RwLockWriteGuard<'a, T>);

impl<T: ?Sized> Deref for RwLockWriteGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.0
    }
}

impl<T: ?Sized> DerefMut for RwLockWriteGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;
    use std::thread;

    #[test]
    fn mutex_basic() {
        let m = Mutex::new(1);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);
        assert!(m.try_lock().is_some());
    }

    #[test]
    fn condvar_wakes_waiter() {
        let pair = Arc::new((Mutex::new(false), Condvar::new()));
        let p2 = pair.clone();
        let h = thread::spawn(move || {
            let (m, cv) = &*p2;
            let mut ready = m.lock();
            while !*ready {
                cv.wait(&mut ready);
            }
        });
        let (m, cv) = &*pair;
        *m.lock() = true;
        cv.notify_one();
        h.join().unwrap();
    }

    #[test]
    fn wait_for_times_out() {
        let m = Mutex::new(());
        let cv = Condvar::new();
        let mut g = m.lock();
        let res = cv.wait_for(&mut g, Duration::from_millis(10));
        assert!(res.timed_out());
    }

    #[test]
    fn rwlock_basic() {
        let l = RwLock::new(5);
        assert_eq!(*l.read(), 5);
        *l.write() = 6;
        assert_eq!(*l.read(), 6);
    }
}
