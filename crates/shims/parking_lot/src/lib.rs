//! Offline stand-in for [`parking_lot`](https://crates.io/crates/parking_lot).
//!
//! This build environment has no access to a cargo registry, so the subset of
//! the `parking_lot` 0.12 API this workspace uses is re-implemented here on
//! top of `std::sync`. Semantics match `parking_lot` where the workspace
//! relies on them:
//!
//! - `Mutex::lock()` returns a guard directly (no `Result`); a poisoned
//!   std mutex is transparently un-poisoned, matching `parking_lot`'s
//!   poison-free behaviour.
//! - `Condvar::wait(&mut guard)` takes the guard by `&mut` and re-acquires
//!   the lock before returning, exactly like `parking_lot`.
//!
//! Fairness/eventual-fairness and `const fn` lock construction beyond what
//! `std` offers are NOT reproduced; nothing in this workspace needs them.

use std::fmt;
use std::ops::{Deref, DerefMut};
use std::sync::atomic::{AtomicU8, Ordering};
use std::sync::{self, TryLockError};
use std::time::Duration;

/// Debug-only runtime lock-order checking.
///
/// A lock may be given a hierarchy rank with [`Mutex::set_rank`] /
/// [`RwLock::set_rank`] (or constructed ranked via `with_rank`). In debug
/// builds every acquisition of a *ranked* lock asserts that the rank is `>=`
/// every rank this thread already holds — acquiring down the hierarchy
/// panics with both ranks named. Unranked locks (rank 0, the default) are
/// never checked. Release builds compile the whole mechanism to nothing.
///
/// This dynamically cross-checks the same hierarchy the `analyze` lint
/// enforces statically (`cargo run -p analyze`): every seeded chaos sweep
/// run in debug mode doubles as a lock-order audit.
pub mod lock_order {
    #[cfg(debug_assertions)]
    mod imp {
        use std::cell::RefCell;

        thread_local! {
            static HELD: RefCell<Vec<u8>> = const { RefCell::new(Vec::new()) };
        }

        /// Token recording one held ranked lock; removal happens on drop.
        pub struct Held(Option<u8>);

        pub fn acquire(rank: u8) -> Held {
            if rank == 0 {
                return Held(None);
            }
            HELD.with(|h| {
                let mut held = h.borrow_mut();
                if let Some(&max) = held.iter().max() {
                    assert!(
                        rank >= max,
                        "lock-order violation: acquiring a rank-{rank} lock while holding \
                         rank {max} (hierarchy: VM registry(1) -> blob slot(2) -> \
                         lease book(3) -> provider/meta stripes(4))"
                    );
                }
                held.push(rank);
            });
            Held(Some(rank))
        }

        impl Drop for Held {
            fn drop(&mut self) {
                if let Some(rank) = self.0 {
                    HELD.with(|h| {
                        let mut held = h.borrow_mut();
                        if let Some(pos) = held.iter().rposition(|&r| r == rank) {
                            held.remove(pos);
                        }
                    });
                }
            }
        }
    }

    #[cfg(not(debug_assertions))]
    mod imp {
        /// Zero-sized in release builds: no thread-local, no bookkeeping.
        pub struct Held;

        #[inline(always)]
        pub fn acquire(_rank: u8) -> Held {
            Held
        }
    }

    pub use imp::{acquire, Held};
}

/// Mutual exclusion primitive (API subset of `parking_lot::Mutex`, plus the
/// workspace-local [`lock_order`] rank extension).
#[derive(Default)]
pub struct Mutex<T: ?Sized> {
    rank: AtomicU8,
    inner: sync::Mutex<T>,
}

impl<T> Mutex<T> {
    pub const fn new(value: T) -> Self {
        Mutex {
            rank: AtomicU8::new(0),
            inner: sync::Mutex::new(value),
        }
    }

    /// A mutex pre-ranked in the [`lock_order`] hierarchy.
    pub fn with_rank(value: T, rank: u8) -> Self {
        let m = Self::new(value);
        m.set_rank(rank);
        m
    }

    pub fn into_inner(self) -> T {
        match self.inner.into_inner() {
            Ok(v) => v,
            Err(p) => p.into_inner(),
        }
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Assign this lock's [`lock_order`] rank (0 = unranked, never checked).
    pub fn set_rank(&self, rank: u8) {
        self.rank.store(rank, Ordering::Relaxed);
    }

    pub fn lock(&self) -> MutexGuard<'_, T> {
        let order = lock_order::acquire(self.rank.load(Ordering::Relaxed));
        let guard = match self.inner.lock() {
            Ok(g) => g,
            // parking_lot has no poisoning: recover the guard.
            Err(p) => p.into_inner(),
        };
        MutexGuard {
            inner: Some(guard),
            _order: order,
        }
    }

    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        let order = lock_order::acquire(self.rank.load(Ordering::Relaxed));
        match self.inner.try_lock() {
            Ok(g) => Some(MutexGuard {
                inner: Some(g),
                _order: order,
            }),
            Err(TryLockError::Poisoned(p)) => Some(MutexGuard {
                inner: Some(p.into_inner()),
                _order: order,
            }),
            Err(TryLockError::WouldBlock) => None,
        }
    }

    pub fn get_mut(&mut self) -> &mut T {
        match self.inner.get_mut() {
            Ok(v) => v,
            Err(p) => p.into_inner(),
        }
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.try_lock() {
            Some(g) => f.debug_struct("Mutex").field("data", &&*g).finish(),
            None => f.debug_struct("Mutex").field("data", &"<locked>").finish(),
        }
    }
}

/// RAII guard for [`Mutex`]. The `Option` is always `Some` except transiently
/// inside [`Condvar::wait`], which must hand the std guard back to std.
pub struct MutexGuard<'a, T: ?Sized> {
    inner: Option<sync::MutexGuard<'a, T>>,
    _order: lock_order::Held,
}

impl<T: ?Sized> Deref for MutexGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        self.inner.as_ref().expect("guard taken during wait")
    }
}

impl<T: ?Sized> DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        self.inner.as_mut().expect("guard taken during wait")
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for MutexGuard<'_, T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Debug::fmt(&**self, f)
    }
}

/// Result of a timed wait on a [`Condvar`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WaitTimeoutResult(bool);

impl WaitTimeoutResult {
    pub fn timed_out(&self) -> bool {
        self.0
    }
}

/// Condition variable (API subset of `parking_lot::Condvar`).
#[derive(Default)]
pub struct Condvar {
    inner: sync::Condvar,
}

impl Condvar {
    pub const fn new() -> Self {
        Condvar {
            inner: sync::Condvar::new(),
        }
    }

    /// Block until notified. Unlike `std`, takes the guard by `&mut` and
    /// re-acquires the lock before returning (parking_lot signature).
    pub fn wait<T>(&self, guard: &mut MutexGuard<'_, T>) {
        let std_guard = guard.inner.take().expect("guard taken during wait");
        let std_guard = match self.inner.wait(std_guard) {
            Ok(g) => g,
            Err(p) => p.into_inner(),
        };
        guard.inner = Some(std_guard);
    }

    /// Block until notified or `timeout` elapses.
    pub fn wait_for<T>(
        &self,
        guard: &mut MutexGuard<'_, T>,
        timeout: Duration,
    ) -> WaitTimeoutResult {
        let std_guard = guard.inner.take().expect("guard taken during wait");
        let (std_guard, res) = match self.inner.wait_timeout(std_guard, timeout) {
            Ok((g, r)) => (g, r),
            Err(p) => {
                let (g, r) = p.into_inner();
                (g, r)
            }
        };
        guard.inner = Some(std_guard);
        WaitTimeoutResult(res.timed_out())
    }

    pub fn notify_one(&self) {
        self.inner.notify_one();
    }

    pub fn notify_all(&self) {
        self.inner.notify_all();
    }
}

impl fmt::Debug for Condvar {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.pad("Condvar { .. }")
    }
}

/// Reader-writer lock (API subset of `parking_lot::RwLock`, plus the
/// workspace-local [`lock_order`] rank extension).
#[derive(Default)]
pub struct RwLock<T: ?Sized> {
    rank: AtomicU8,
    inner: sync::RwLock<T>,
}

impl<T> RwLock<T> {
    pub const fn new(value: T) -> Self {
        RwLock {
            rank: AtomicU8::new(0),
            inner: sync::RwLock::new(value),
        }
    }

    /// An rwlock pre-ranked in the [`lock_order`] hierarchy.
    pub fn with_rank(value: T, rank: u8) -> Self {
        let l = Self::new(value);
        l.set_rank(rank);
        l
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Assign this lock's [`lock_order`] rank (0 = unranked, never checked).
    pub fn set_rank(&self, rank: u8) {
        self.rank.store(rank, Ordering::Relaxed);
    }

    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        let order = lock_order::acquire(self.rank.load(Ordering::Relaxed));
        let guard = match self.inner.read() {
            Ok(g) => g,
            Err(p) => p.into_inner(),
        };
        RwLockReadGuard {
            inner: guard,
            _order: order,
        }
    }

    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        let order = lock_order::acquire(self.rank.load(Ordering::Relaxed));
        let guard = match self.inner.write() {
            Ok(g) => g,
            Err(p) => p.into_inner(),
        };
        RwLockWriteGuard {
            inner: guard,
            _order: order,
        }
    }
}

pub struct RwLockReadGuard<'a, T: ?Sized> {
    inner: sync::RwLockReadGuard<'a, T>,
    _order: lock_order::Held,
}

impl<T: ?Sized> Deref for RwLockReadGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.inner
    }
}

pub struct RwLockWriteGuard<'a, T: ?Sized> {
    inner: sync::RwLockWriteGuard<'a, T>,
    _order: lock_order::Held,
}

impl<T: ?Sized> Deref for RwLockWriteGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.inner
    }
}

impl<T: ?Sized> DerefMut for RwLockWriteGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.inner
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;
    use std::thread;

    #[test]
    fn mutex_basic() {
        let m = Mutex::new(1);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);
        assert!(m.try_lock().is_some());
    }

    #[test]
    fn condvar_wakes_waiter() {
        let pair = Arc::new((Mutex::new(false), Condvar::new()));
        let p2 = pair.clone();
        let h = thread::spawn(move || {
            let (m, cv) = &*p2;
            let mut ready = m.lock();
            while !*ready {
                cv.wait(&mut ready);
            }
        });
        let (m, cv) = &*pair;
        *m.lock() = true;
        cv.notify_one();
        h.join().unwrap();
    }

    #[test]
    fn wait_for_times_out() {
        let m = Mutex::new(());
        let cv = Condvar::new();
        let mut g = m.lock();
        let res = cv.wait_for(&mut g, Duration::from_millis(10));
        assert!(res.timed_out());
    }

    #[test]
    fn rwlock_basic() {
        let l = RwLock::new(5);
        assert_eq!(*l.read(), 5);
        *l.write() = 6;
        assert_eq!(*l.read(), 6);
    }

    #[test]
    fn ranked_acquisition_up_hierarchy_is_allowed() {
        let a = Mutex::with_rank((), 1);
        let b = RwLock::with_rank((), 2);
        let c = Mutex::with_rank((), 2); // same rank as b: allowed
        let _ga = a.lock();
        let _gb = b.read();
        let _gc = c.lock();
    }

    #[test]
    #[cfg(debug_assertions)]
    #[should_panic(expected = "lock-order violation")]
    fn ranked_acquisition_down_hierarchy_panics() {
        let a = Mutex::with_rank((), 3);
        let b = RwLock::with_rank((), 2);
        let _ga = a.lock();
        let _gb = b.read();
    }

    #[test]
    fn rank_token_is_released_with_the_guard() {
        let a = Mutex::with_rank((), 3);
        let b = Mutex::with_rank((), 2);
        drop(a.lock());
        let _gb = b.lock(); // no rank-3 token survives the dropped guard
    }

    #[test]
    fn unranked_locks_are_never_checked() {
        let ranked = Mutex::with_rank((), 4);
        let plain = Mutex::new(());
        let _g = ranked.lock();
        let _p = plain.lock(); // rank 0 under rank 4: no assertion
    }
}
