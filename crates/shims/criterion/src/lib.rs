//! Offline stand-in for [`criterion`](https://crates.io/crates/criterion).
//!
//! This build environment has no access to a cargo registry, so the subset
//! of the Criterion API this workspace's benches use is re-implemented here:
//! `Criterion` (with `sample_size` / `measurement_time` / `warm_up_time`
//! builders), `bench_function`, `Bencher::iter`, `black_box`, and the
//! `criterion_group!` / `criterion_main!` macros (both the simple and the
//! `name/config/targets` forms).
//!
//! Statistics are intentionally simple: per sample we time a fixed-iteration
//! batch, then report min / median / mean over samples in plain text. There
//! are no HTML reports, no outlier analysis, and no baseline comparisons —
//! figure-level numbers in this repo come from the dedicated `fig*` benches,
//! which run their own measurement loops.

use std::time::{Duration, Instant};

/// Opaque value barrier: prevents the optimizer from deleting the benchmark
/// body. Same contract as `criterion::black_box`.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Benchmark harness entry point (subset of `criterion::Criterion`).
pub struct Criterion {
    sample_size: usize,
    measurement_time: Duration,
    warm_up_time: Duration,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            sample_size: 100,
            measurement_time: Duration::from_secs(5),
            warm_up_time: Duration::from_secs(3),
        }
    }
}

impl Criterion {
    pub fn sample_size(mut self, n: usize) -> Self {
        assert!(n >= 2, "sample size must be at least 2");
        self.sample_size = n;
        self
    }

    pub fn measurement_time(mut self, t: Duration) -> Self {
        self.measurement_time = t;
        self
    }

    pub fn warm_up_time(mut self, t: Duration) -> Self {
        self.warm_up_time = t;
        self
    }

    /// Run one benchmark and print a one-line summary.
    // A bench harness measures host time by definition.
    #[allow(clippy::disallowed_methods)]
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: &str, mut f: F) -> &mut Self {
        // Warm-up: run the body repeatedly, and calibrate how many
        // iterations fit in one sample slot.
        let warm_deadline = Instant::now() + self.warm_up_time;
        let mut iters_done: u64 = 0;
        let mut warm_elapsed = Duration::ZERO;
        while Instant::now() < warm_deadline {
            let mut b = Bencher::once();
            f(&mut b);
            iters_done += b.iters;
            warm_elapsed += b.elapsed;
        }
        let per_iter = if iters_done == 0 {
            Duration::from_nanos(1)
        } else {
            warm_elapsed / (iters_done.max(1) as u32)
        };
        let slot = self.measurement_time / self.sample_size as u32;
        let iters_per_sample =
            (slot.as_nanos() / per_iter.as_nanos().max(1)).clamp(1, 1 << 24) as u64;

        let mut samples_ns: Vec<f64> = Vec::with_capacity(self.sample_size);
        for _ in 0..self.sample_size {
            let mut b = Bencher::batch(iters_per_sample);
            f(&mut b);
            samples_ns.push(b.elapsed.as_nanos() as f64 / b.iters.max(1) as f64);
        }
        samples_ns.sort_by(|a, b| a.total_cmp(b));
        let min = samples_ns[0];
        let median = samples_ns[samples_ns.len() / 2];
        let mean = samples_ns.iter().sum::<f64>() / samples_ns.len() as f64;
        println!(
            "{id:<50} min {:>12}  median {:>12}  mean {:>12}  ({} samples x {} iters)",
            fmt_ns(min),
            fmt_ns(median),
            fmt_ns(mean),
            self.sample_size,
            iters_per_sample,
        );
        self
    }
}

fn fmt_ns(ns: f64) -> String {
    if ns < 1_000.0 {
        format!("{ns:.1} ns")
    } else if ns < 1_000_000.0 {
        format!("{:.2} µs", ns / 1_000.0)
    } else if ns < 1_000_000_000.0 {
        format!("{:.2} ms", ns / 1_000_000.0)
    } else {
        format!("{:.3} s", ns / 1_000_000_000.0)
    }
}

/// Times the closure handed to [`Criterion::bench_function`].
pub struct Bencher {
    target_iters: u64,
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    fn once() -> Self {
        Bencher {
            target_iters: 1,
            iters: 0,
            elapsed: Duration::ZERO,
        }
    }

    fn batch(n: u64) -> Self {
        Bencher {
            target_iters: n,
            iters: 0,
            elapsed: Duration::ZERO,
        }
    }

    /// Time `routine`, running it `target_iters` times back to back.
    #[allow(clippy::disallowed_methods)] // the measurement itself
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        let start = Instant::now();
        for _ in 0..self.target_iters {
            black_box(routine());
        }
        self.elapsed = start.elapsed();
        self.iters = self.target_iters;
    }
}

/// Declares a group of benchmark functions (both criterion forms).
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        fn $name() {
            let mut c: $crate::Criterion = $config;
            $($target(&mut c);)+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group!(
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        );
    };
}

/// Generates `fn main()` running the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_measures_and_prints() {
        let mut c = Criterion::default()
            .sample_size(3)
            .warm_up_time(Duration::from_millis(5))
            .measurement_time(Duration::from_millis(15));
        let mut ran = 0u64;
        c.bench_function("shim/self_test", |b| {
            b.iter(|| {
                ran += 1;
                black_box(ran)
            })
        });
        assert!(ran > 0, "benchmark body never ran");
    }

    criterion_group!(simple_group, noop_bench);
    criterion_group!(
        name = cfg_group;
        config = Criterion::default()
            .sample_size(2)
            .warm_up_time(Duration::from_millis(1))
            .measurement_time(Duration::from_millis(2));
        targets = noop_bench
    );

    fn noop_bench(c: &mut Criterion) {
        c.bench_function("shim/noop", |b| b.iter(|| black_box(1 + 1)));
    }

    #[test]
    fn group_macros_compile_and_run() {
        // `simple_group` uses default (slow) config; just check it exists by
        // name without calling it, and run the fast configured one.
        let _: fn() = simple_group;
        cfg_group();
    }
}
