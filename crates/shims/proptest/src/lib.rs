//! Offline stand-in for [`proptest`](https://crates.io/crates/proptest).
//!
//! This build environment has no access to a cargo registry, so the subset
//! of the proptest API this workspace uses is re-implemented here:
//! strategies (`any`, ranges, tuples, `Just`, `prop_map`, `prop_oneof!`,
//! `prop::collection::vec`), the `proptest!` test macro with
//! `#![proptest_config(..)]`, and `prop_assert!` / `prop_assert_eq!`.
//!
//! Differences from real proptest, deliberate for a vendored shim:
//! - **No shrinking.** A failing case reports its seed so it can be replayed
//!   (generation is deterministic per `(test, case)` pair), but it is not
//!   minimized.
//! - **No persistence files**, no fork, no timeout handling.

use rand::rngs::StdRng;

pub mod test_runner {
    use std::fmt;

    /// Runner configuration (subset of `proptest::test_runner::Config`).
    #[derive(Debug, Clone)]
    pub struct ProptestConfig {
        /// Number of random cases to run per test.
        pub cases: u32,
        /// Accepted for source compatibility; unused (no shrinking here).
        pub max_shrink_iters: u32,
        /// Accepted for source compatibility; unused.
        pub max_global_rejects: u32,
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            ProptestConfig {
                cases: 256,
                max_shrink_iters: 0,
                max_global_rejects: 1024,
            }
        }
    }

    /// A failed property (what `prop_assert!` returns).
    #[derive(Debug, Clone)]
    pub struct TestCaseError {
        message: String,
    }

    impl TestCaseError {
        pub fn fail(message: impl Into<String>) -> Self {
            TestCaseError {
                message: message.into(),
            }
        }
    }

    impl fmt::Display for TestCaseError {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str(&self.message)
        }
    }

    impl std::error::Error for TestCaseError {}
}

pub mod strategy {
    use super::StdRng;
    use rand::Rng;
    use std::marker::PhantomData;
    use std::ops::Range;

    /// A recipe for generating values of `Self::Value`.
    ///
    /// Object-safe core (`generate`) plus `Sized`-only combinators, so
    /// strategies can be boxed for `prop_oneof!`.
    pub trait Strategy {
        type Value;

        fn generate(&self, rng: &mut StdRng) -> Self::Value;

        /// Map generated values through `f`.
        fn prop_map<U, F: Fn(Self::Value) -> U>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
        {
            Map { inner: self, f }
        }

        /// Type-erase for heterogeneous collections (`prop_oneof!`).
        fn boxed(self) -> Box<dyn Strategy<Value = Self::Value>>
        where
            Self: Sized + 'static,
        {
            Box::new(self)
        }
    }

    impl<S: Strategy + ?Sized> Strategy for Box<S> {
        type Value = S::Value;
        fn generate(&self, rng: &mut StdRng) -> Self::Value {
            (**self).generate(rng)
        }
    }

    impl<S: Strategy + ?Sized> Strategy for &S {
        type Value = S::Value;
        fn generate(&self, rng: &mut StdRng) -> Self::Value {
            (**self).generate(rng)
        }
    }

    /// Always produces a clone of the given value.
    #[derive(Debug, Clone)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn generate(&self, _rng: &mut StdRng) -> T {
            self.0.clone()
        }
    }

    /// Uniform over the type's standard distribution (`any::<T>()`).
    pub struct Any<T>(PhantomData<T>);

    impl<T: rand::Standard> Strategy for Any<T> {
        type Value = T;
        fn generate(&self, rng: &mut StdRng) -> T {
            rng.gen()
        }
    }

    /// `any::<T>()` — uniform over all values of `T` (unit interval for
    /// floats).
    pub fn any<T: rand::Standard>() -> Any<T> {
        Any(PhantomData)
    }

    impl<T: rand::UniformSample + Copy> Strategy for Range<T> {
        type Value = T;
        fn generate(&self, rng: &mut StdRng) -> T {
            rng.gen_range(self.start..self.end)
        }
    }

    /// Result of [`Strategy::prop_map`].
    pub struct Map<S, F> {
        inner: S,
        f: F,
    }

    impl<S: Strategy, U, F: Fn(S::Value) -> U> Strategy for Map<S, F> {
        type Value = U;
        fn generate(&self, rng: &mut StdRng) -> U {
            (self.f)(self.inner.generate(rng))
        }
    }

    macro_rules! impl_tuple_strategy {
        ($($S:ident/$idx:tt),+) => {
            impl<$($S: Strategy),+> Strategy for ($($S,)+) {
                type Value = ($($S::Value,)+);
                fn generate(&self, rng: &mut StdRng) -> Self::Value {
                    ($(self.$idx.generate(rng),)+)
                }
            }
        };
    }
    impl_tuple_strategy!(A / 0);
    impl_tuple_strategy!(A / 0, B / 1);
    impl_tuple_strategy!(A / 0, B / 1, C / 2);
    impl_tuple_strategy!(A / 0, B / 1, C / 2, D / 3);
    impl_tuple_strategy!(A / 0, B / 1, C / 2, D / 3, E / 4);
    impl_tuple_strategy!(A / 0, B / 1, C / 2, D / 3, E / 4, F / 5);

    /// Weighted choice between boxed strategies (`prop_oneof!`).
    pub struct Union<T> {
        arms: Vec<(u32, Box<dyn Strategy<Value = T>>)>,
        total: u64,
    }

    impl<T> Union<T> {
        pub fn new_weighted(arms: Vec<(u32, Box<dyn Strategy<Value = T>>)>) -> Self {
            assert!(!arms.is_empty(), "prop_oneof! needs at least one arm");
            let total = arms.iter().map(|(w, _)| *w as u64).sum();
            assert!(total > 0, "prop_oneof! weights must not all be zero");
            Union { arms, total }
        }
    }

    impl<T> Strategy for Union<T> {
        type Value = T;
        fn generate(&self, rng: &mut StdRng) -> T {
            let mut pick = rng.gen_range(0..self.total);
            for (w, s) in &self.arms {
                if pick < *w as u64 {
                    return s.generate(rng);
                }
                pick -= *w as u64;
            }
            unreachable!("weighted pick out of range")
        }
    }
}

pub mod collection {
    use super::strategy::Strategy;
    use super::StdRng;
    use rand::Rng;
    use std::ops::Range;

    /// Strategy for `Vec`s with length drawn from `len` and elements from
    /// `element`.
    pub struct VecStrategy<S> {
        element: S,
        len: Range<usize>,
    }

    /// `prop::collection::vec(element, len_range)`.
    pub fn vec<S: Strategy>(element: S, len: Range<usize>) -> VecStrategy<S> {
        VecStrategy { element, len }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut StdRng) -> Vec<S::Value> {
            let n = rng.gen_range(self.len.start..self.len.end);
            (0..n).map(|_| self.element.generate(rng)).collect()
        }
    }
}

/// The `prop::` path used inside `proptest!` bodies
/// (`prop::collection::vec(..)`).
pub mod prop {
    pub use super::collection;
}

pub mod prelude {
    pub use super::strategy::{any, Just, Strategy};
    pub use super::test_runner::{ProptestConfig, TestCaseError};
    pub use super::{prop, prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};
}

#[doc(hidden)]
pub mod __rt {
    pub use rand::rngs::StdRng;
    pub use rand::SeedableRng;

    /// Deterministic per-(test, case) seed so failures are replayable.
    pub fn case_seed(test_name: &str, case: u32) -> u64 {
        // FNV-1a over the test name, mixed with the case index.
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in test_name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01B3);
        }
        h ^ ((case as u64) << 1 | 1).wrapping_mul(0x9E37_79B9_7F4A_7C15)
    }
}

/// Generation-only analogue of `proptest::proptest!`.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl!($cfg; $($rest)*);
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl!($crate::test_runner::ProptestConfig::default(); $($rest)*);
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    ($cfg:expr; $($(#[$meta:meta])* fn $name:ident($($arg:ident in $strat:expr),* $(,)?) $body:block)*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let cfg: $crate::test_runner::ProptestConfig = $cfg;
                for case in 0..cfg.cases {
                    let seed = $crate::__rt::case_seed(
                        concat!(module_path!(), "::", stringify!($name)),
                        case,
                    );
                    let mut rng = <$crate::__rt::StdRng as $crate::__rt::SeedableRng>::seed_from_u64(seed);
                    $(let $arg = $crate::strategy::Strategy::generate(&($strat), &mut rng);)*
                    let outcome: ::std::result::Result<(), $crate::test_runner::TestCaseError> =
                        (|| { $body ::std::result::Result::Ok(()) })();
                    if let ::std::result::Result::Err(e) = outcome {
                        panic!(
                            "proptest case {case}/{} (seed {seed:#x}) failed: {e}",
                            cfg.cases,
                        );
                    }
                }
            }
        )*
    };
}

/// Weighted one-of strategy: `prop_oneof![3 => a, 1 => b]` (unweighted arms
/// default to weight 1).
#[macro_export]
macro_rules! prop_oneof {
    ($($weight:expr => $strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new_weighted(vec![
            $(($weight as u32, $crate::strategy::Strategy::boxed($strat))),+
        ])
    };
    ($($strat:expr),+ $(,)?) => {
        $crate::prop_oneof![$(1 => $strat),+]
    };
}

/// `assert!` that fails the current proptest case via `Err` rather than a
/// bare panic (so the harness can attach the case seed).
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!($($fmt)+),
            ));
        }
    };
}

/// `assert_eq!` variant of [`prop_assert!`].
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l == *r,
            "assertion failed: `(left == right)`\n  left: `{:?}`,\n right: `{:?}`",
            l, r
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l == *r,
            "assertion failed: `(left == right)`\n  left: `{:?}`,\n right: `{:?}`: {}",
            l, r, format!($($fmt)+)
        );
    }};
}

/// `assert_ne!` variant of [`prop_assert!`].
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l != *r,
            "assertion failed: `(left != right)`\n  left: `{:?}`,\n right: `{:?}`",
            l,
            r
        );
    }};
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[derive(Debug, Clone, PartialEq)]
    enum Op {
        Put(u8),
        Del,
    }

    proptest! {
        #![proptest_config(ProptestConfig { cases: 32, ..ProptestConfig::default() })]

        #[test]
        fn ranges_and_tuples(v in (0u8..10, 1u32..5).prop_map(|(a, b)| (a, b)), n in 0u64..100) {
            prop_assert!(v.0 < 10);
            prop_assert!((1..5).contains(&v.1));
            prop_assert!(n < 100, "n = {} out of range", n);
        }

        #[test]
        fn oneof_vec_and_just(ops in prop::collection::vec(
            prop_oneof![3 => any::<u8>().prop_map(Op::Put), 1 => Just(Op::Del)],
            1..20,
        )) {
            prop_assert!(!ops.is_empty() && ops.len() < 20);
        }
    }

    #[test]
    fn generation_is_deterministic_per_case() {
        use crate::__rt::{case_seed, SeedableRng, StdRng};
        use crate::strategy::Strategy;
        let strat = crate::collection::vec(any::<u64>(), 1..50);
        let seed = case_seed("some::test", 7);
        let a = strat.generate(&mut StdRng::seed_from_u64(seed));
        let b = strat.generate(&mut StdRng::seed_from_u64(seed));
        assert_eq!(a, b);
    }

    #[test]
    fn failing_case_reports_seed() {
        let err = (|| -> Result<(), TestCaseError> {
            prop_assert_eq!(1 + 1, 3, "math broke");
            Ok(())
        })()
        .unwrap_err();
        assert!(err.to_string().contains("math broke"));
    }
}
