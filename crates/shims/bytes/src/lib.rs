//! Offline stand-in for [`bytes`](https://crates.io/crates/bytes).
//!
//! This build environment has no access to a cargo registry, so the subset
//! of the `bytes` 1.x API this workspace uses is re-implemented here:
//! a cheaply cloneable, reference-counted, sliceable byte container. The key
//! property the workspace relies on — `clone()` and `slice()` are O(1) and
//! never copy the underlying buffer — is preserved.

use std::fmt;
use std::hash::{Hash, Hasher};
use std::ops::{Bound, Deref, RangeBounds};
use std::sync::Arc;

enum Storage {
    /// Borrowed from a `'static` slice (no refcount traffic at all).
    Static(&'static [u8]),
    /// Shared ownership of a heap buffer.
    Shared(Arc<[u8]>),
}

impl Clone for Storage {
    fn clone(&self) -> Self {
        match self {
            Storage::Static(s) => Storage::Static(s),
            Storage::Shared(a) => Storage::Shared(a.clone()),
        }
    }
}

/// A cheaply cloneable and sliceable chunk of contiguous memory.
#[derive(Clone)]
pub struct Bytes {
    data: Storage,
    start: usize,
    end: usize,
}

impl Bytes {
    /// Creates a new empty `Bytes`. Does not allocate.
    pub const fn new() -> Self {
        Bytes {
            data: Storage::Static(&[]),
            start: 0,
            end: 0,
        }
    }

    /// Creates `Bytes` from a `'static` slice without copying.
    pub const fn from_static(bytes: &'static [u8]) -> Self {
        Bytes {
            data: Storage::Static(bytes),
            start: 0,
            end: bytes.len(),
        }
    }

    /// Copies `data` into a new `Bytes`.
    pub fn copy_from_slice(data: &[u8]) -> Self {
        Bytes::from(data.to_vec())
    }

    pub fn len(&self) -> usize {
        self.end - self.start
    }

    pub fn is_empty(&self) -> bool {
        self.start == self.end
    }

    fn backing(&self) -> &[u8] {
        match &self.data {
            Storage::Static(s) => s,
            Storage::Shared(a) => a,
        }
    }

    /// Returns a slice of self for the provided range — O(1), no copy; the
    /// result shares the same backing buffer.
    ///
    /// # Panics
    /// Panics when the range is out of bounds, like `bytes::Bytes::slice`.
    pub fn slice(&self, range: impl RangeBounds<usize>) -> Self {
        let len = self.len();
        let begin = match range.start_bound() {
            Bound::Included(&n) => n,
            Bound::Excluded(&n) => n + 1,
            Bound::Unbounded => 0,
        };
        let end = match range.end_bound() {
            Bound::Included(&n) => n + 1,
            Bound::Excluded(&n) => n,
            Bound::Unbounded => len,
        };
        assert!(
            begin <= end && end <= len,
            "range out of bounds: {begin}..{end} of {len}"
        );
        Bytes {
            data: self.data.clone(),
            start: self.start + begin,
            end: self.start + end,
        }
    }
}

impl Default for Bytes {
    fn default() -> Self {
        Bytes::new()
    }
}

impl Deref for Bytes {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.backing()[self.start..self.end]
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        self
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(v: Vec<u8>) -> Self {
        let end = v.len();
        Bytes {
            data: Storage::Shared(Arc::from(v)),
            start: 0,
            end,
        }
    }
}

impl From<&'static [u8]> for Bytes {
    fn from(s: &'static [u8]) -> Self {
        Bytes::from_static(s)
    }
}

impl From<&'static str> for Bytes {
    fn from(s: &'static str) -> Self {
        Bytes::from_static(s.as_bytes())
    }
}

impl From<Bytes> for Vec<u8> {
    fn from(b: Bytes) -> Self {
        b.to_vec()
    }
}

impl PartialEq for Bytes {
    fn eq(&self, other: &Self) -> bool {
        self[..] == other[..]
    }
}

impl Eq for Bytes {}

impl PartialEq<[u8]> for Bytes {
    fn eq(&self, other: &[u8]) -> bool {
        &self[..] == other
    }
}

impl PartialEq<Vec<u8>> for Bytes {
    fn eq(&self, other: &Vec<u8>) -> bool {
        self[..] == other[..]
    }
}

impl PartialOrd for Bytes {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Bytes {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self[..].cmp(&other[..])
    }
}

impl Hash for Bytes {
    fn hash<H: Hasher>(&self, state: &mut H) {
        self[..].hash(state);
    }
}

impl fmt::Debug for Bytes {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "b\"")?;
        for &b in self.iter() {
            for esc in std::ascii::escape_default(b) {
                write!(f, "{}", esc as char)?;
            }
        }
        write!(f, "\"")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn slice_shares_backing_without_copy() {
        let b = Bytes::from(b"hello world".to_vec());
        let s = b.slice(6..11);
        assert_eq!(s.as_ref(), b"world");
        // Slicing a slice composes offsets.
        assert_eq!(s.slice(1..3).as_ref(), b"or");
        // Cloning is refcount-only: the backing pointer is identical.
        let c = b.clone();
        assert_eq!(c.backing().as_ptr(), b.backing().as_ptr());
    }

    #[test]
    fn static_roundtrip() {
        let b = Bytes::from_static(b"abc");
        assert_eq!(b.len(), 3);
        assert_eq!(b.slice(..2).as_ref(), b"ab");
        assert_eq!(b, Bytes::from(b"abc".to_vec()));
    }

    #[test]
    #[should_panic]
    fn out_of_bounds_slice_panics() {
        Bytes::from_static(b"abc").slice(1..5);
    }

    #[test]
    fn empty_and_eq() {
        assert!(Bytes::new().is_empty());
        assert_eq!(Bytes::default(), Bytes::from_static(b""));
        assert_eq!(format!("{:?}", Bytes::from_static(b"a\n")), "b\"a\\n\"");
    }
}
