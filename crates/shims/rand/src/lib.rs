//! Offline stand-in for [`rand`](https://crates.io/crates/rand) 0.8.
//!
//! This build environment has no access to a cargo registry, so the subset
//! of the `rand` API this workspace uses is re-implemented here. The core
//! generator is xoshiro256++ seeded via SplitMix64 — deterministic for a
//! given seed, which is all the simulation needs (`StdRng::seed_from_u64` is
//! the only construction path in the workspace; there is no OS entropy
//! source here at all).
//!
//! Implemented: `Rng::{gen, gen_range, gen_bool, fill_bytes}`,
//! `SeedableRng::{seed_from_u64, from_seed}`, `rngs::StdRng`, and
//! `seq::SliceRandom::{shuffle, choose, choose_multiple}`.

use std::ops::Range;

/// A random number generator core: everything derives from `next_u64`.
pub trait RngCore {
    fn next_u64(&mut self) -> u64;

    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    fn fill_bytes(&mut self, dest: &mut [u8]) {
        for chunk in dest.chunks_mut(8) {
            let w = self.next_u64().to_le_bytes();
            chunk.copy_from_slice(&w[..chunk.len()]);
        }
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// User-facing sampling methods (subset of `rand::Rng`).
pub trait Rng: RngCore {
    /// Sample a value with the "standard" distribution for `T`
    /// (uniform over the full integer range; `[0, 1)` for floats).
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample(self)
    }

    /// Sample uniformly from `range` (half-open). Panics when empty.
    fn gen_range<T: UniformSample>(&mut self, range: Range<T>) -> T
    where
        Self: Sized,
    {
        T::sample_range(self, range)
    }

    /// Bernoulli trial with probability `p` of `true`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        f64::sample(self) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Types samplable from the full-range/unit-interval "standard" distribution.
pub trait Standard: Sized {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

macro_rules! impl_standard_int {
    ($($t:ty),*) => {$(
        impl Standard for $t {
            fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Standard for u128 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        ((rng.next_u64() as u128) << 64) | rng.next_u64() as u128
    }
}

impl Standard for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for f64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 random mantissa bits -> uniform in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
    }
}

/// Types uniformly samplable from a half-open `Range`.
pub trait UniformSample: Sized {
    fn sample_range<R: RngCore + ?Sized>(rng: &mut R, range: Range<Self>) -> Self;
}

macro_rules! impl_uniform_uint {
    ($($t:ty),*) => {$(
        impl UniformSample for $t {
            fn sample_range<R: RngCore + ?Sized>(rng: &mut R, range: Range<Self>) -> Self {
                assert!(range.start < range.end, "cannot sample empty range");
                let span = (range.end - range.start) as u64;
                // Debiased multiply-shift (Lemire); the rejection loop
                // terminates with overwhelming probability per iteration.
                let zone = u64::MAX - u64::MAX % span;
                loop {
                    let v = rng.next_u64();
                    if v < zone {
                        return range.start + (v % span) as $t;
                    }
                }
            }
        }
    )*};
}
impl_uniform_uint!(u8, u16, u32, u64, usize);

macro_rules! impl_uniform_int {
    ($($t:ty => $u:ty),*) => {$(
        impl UniformSample for $t {
            fn sample_range<R: RngCore + ?Sized>(rng: &mut R, range: Range<Self>) -> Self {
                assert!(range.start < range.end, "cannot sample empty range");
                let span = range.end.wrapping_sub(range.start) as $u as u64;
                let zone = u64::MAX - u64::MAX % span;
                loop {
                    let v = rng.next_u64();
                    if v < zone {
                        return range.start.wrapping_add((v % span) as $t);
                    }
                }
            }
        }
    )*};
}
impl_uniform_int!(i8 => u8, i16 => u16, i32 => u32, i64 => u64, isize => usize);

impl UniformSample for f64 {
    fn sample_range<R: RngCore + ?Sized>(rng: &mut R, range: Range<Self>) -> Self {
        assert!(range.start < range.end, "cannot sample empty range");
        range.start + f64::sample(rng) * (range.end - range.start)
    }
}

/// Deterministic construction from seeds (subset of `rand::SeedableRng`).
pub trait SeedableRng: Sized {
    type Seed: AsMut<[u8]> + Default;

    fn from_seed(seed: Self::Seed) -> Self;

    fn seed_from_u64(state: u64) -> Self {
        // SplitMix64-expand the u64 into a full seed, as rand does.
        let mut sm = state;
        let mut seed = Self::Seed::default();
        for chunk in seed.as_mut().chunks_mut(8) {
            sm = sm.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = sm;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^= z >> 31;
            chunk.copy_from_slice(&z.to_le_bytes()[..chunk.len()]);
        }
        Self::from_seed(seed)
    }
}

pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The standard deterministic RNG: xoshiro256++.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }

    impl SeedableRng for StdRng {
        type Seed = [u8; 32];

        fn from_seed(seed: Self::Seed) -> Self {
            let mut s = [0u64; 4];
            for (i, w) in s.iter_mut().enumerate() {
                *w = u64::from_le_bytes(seed[i * 8..i * 8 + 8].try_into().unwrap());
            }
            // An all-zero state would be a fixed point; nudge it.
            if s == [0; 4] {
                s = [0xDEAD_BEEF, 0xCAFE_F00D, 1, 2];
            }
            StdRng { s }
        }
    }
}

pub mod seq {
    use super::{RngCore, UniformSample};

    /// Uniform index helper that works for unsized `R` (the `Rng` trait
    /// methods require `Self: Sized`).
    fn gen_index<R: RngCore + ?Sized>(rng: &mut R, upper: usize) -> usize {
        usize::sample_range(rng, 0..upper)
    }

    /// Slice sampling extensions (subset of `rand::seq::SliceRandom`).
    pub trait SliceRandom {
        type Item;

        /// Fisher–Yates shuffle in place.
        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R);

        /// One uniformly chosen element, or `None` when empty.
        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;

        /// `amount` distinct elements in random order (all of them when
        /// `amount >= len`), as an iterator of references.
        fn choose_multiple<R: RngCore + ?Sized>(
            &self,
            rng: &mut R,
            amount: usize,
        ) -> impl Iterator<Item = &Self::Item>;
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = gen_index(rng, i + 1);
                self.swap(i, j);
            }
        }

        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                let i = gen_index(rng, self.len());
                Some(&self[i])
            }
        }

        fn choose_multiple<R: RngCore + ?Sized>(
            &self,
            rng: &mut R,
            amount: usize,
        ) -> impl Iterator<Item = &T> {
            // Partial Fisher–Yates over an index vector: O(len) setup,
            // exact sampling without replacement.
            let mut idx: Vec<usize> = (0..self.len()).collect();
            let amount = amount.min(self.len());
            for i in 0..amount {
                let j = i + gen_index(rng, idx.len() - i);
                idx.swap(i, j);
            }
            idx.truncate(amount);
            idx.into_iter().map(move |i| &self[i])
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::SliceRandom;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_for_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
        let mut c = StdRng::seed_from_u64(43);
        assert_ne!(a.gen::<u64>(), c.gen::<u64>());
    }

    #[test]
    fn gen_range_bounds_hold() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let v = rng.gen_range(10u32..20);
            assert!((10..20).contains(&v));
            let f: f64 = rng.gen();
            assert!((0.0..1.0).contains(&f));
        }
        // Every value of a tiny range is eventually hit.
        let mut seen = [false; 4];
        for _ in 0..1000 {
            seen[rng.gen_range(0usize..4)] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn shuffle_permutes() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut v: Vec<u32> = (0..100).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..100).collect::<Vec<_>>());
        assert_ne!(v, sorted, "100 elements should not stay in order");
    }

    #[test]
    fn choose_multiple_is_distinct() {
        let mut rng = StdRng::seed_from_u64(2);
        let v: Vec<u32> = (0..50).collect();
        let mut picked: Vec<u32> = v.choose_multiple(&mut rng, 10).copied().collect();
        assert_eq!(picked.len(), 10);
        picked.sort_unstable();
        picked.dedup();
        assert_eq!(picked.len(), 10, "sampling must be without replacement");
        assert_eq!(v.choose_multiple(&mut rng, 99).count(), 50);
        assert!(v.choose(&mut rng).is_some());
    }
}
