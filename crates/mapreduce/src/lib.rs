//! `mapreduce` — a Hadoop-style Map/Reduce framework (paper §2.2) able to
//! run over any [`dfs::FileSystem`] (HDFS baseline or BSFS).
//!
//! Architecture mirrors Hadoop 0.20: a single [`tracker::MrCluster`] spawns
//! one *jobtracker* and one *tasktracker* per worker node; tasktrackers
//! heartbeat for work; map tasks are placed near their input blocks using
//! [`dfs::FileSystem::block_locations`]; reducers pull sorted map-output
//! partitions (shuffle), merge, reduce and commit their output.
//!
//! The paper's modification is captured by [`job::OutputMode`]:
//! [`job::OutputMode::PerReducerFiles`] is stock Hadoop (unique temp file +
//! rename per reducer → R output files), [`job::OutputMode::SharedAppendFile`]
//! is the modified framework (all reducers append to one shared file →
//! exactly 1 output file — requires a store with concurrent append).
//!
//! Jobs run on real records in live mode and on calibrated
//! [`api::GhostProfile`]s for cluster-scale simulations; the engine code is
//! identical in both cases.
//!
//! Shuffle *bytes* (not just round-trips) are cut by a two-tier combine:
//! per-task combiners plus a node-local [`shuffle::NodeCombiner`] that
//! merges a node's whole map share before publication, while reducers
//! stream-fetch published segments before the map phase finishes (see
//! `shuffle.rs` and `tracker.rs` module docs). [`job::ShuffleTuning`]
//! holds the knobs.

pub mod api;
pub mod job;
pub mod record;
pub mod shuffle;
pub mod task;
pub mod tracker;

pub use api::{partition_for, GhostProfile, Mapper, Reducer, UserFns, KV};
pub use job::{JobConf, JobResult, OutputMode, ShuffleTuning};
pub use shuffle::{
    DeliverySpec, MapOutputRegistry, NodeCombiner, SegmentSource, ShuffleError, ShuffleStats,
};
pub use task::{MapTaskSpec, ReduceTaskSpec};
pub use tracker::{JobHandle, MrCluster, MrConfig};
