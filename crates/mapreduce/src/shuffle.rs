//! Map-output storage and shuffle serving.
//!
//! Completed map tasks leave their partitioned, sorted output on the local
//! node (in Hadoop: local disk files served by the tasktracker's HTTP
//! server). Reducers *pull* their partition from every map's node; the
//! network cost of each pull is charged as a map-node→reduce-node transfer.
//!
//! The fetch path is *batched by host*: [`MapOutputRegistry::fetch_many`]
//! groups a reducer's segment pulls by the node that holds them and moves
//! each group in ONE transfer per (map-node, reduce-node) pair — the same
//! grouped-RPC pattern the storage client applies to page fetches. When
//! several map tasks of a job ran on the same node (always the case once
//! maps outnumber nodes), this collapses the per-segment round-trips that
//! dominate Hadoop's shuffle ("Only Aggressive Elephants are Fast
//! Elephants"). [`MapOutputRegistry::fetch_counts`] exposes (segments,
//! host transfers) so tests can pin the batching.
//!
//! Publication is idempotent with last-writer-wins semantics: a re-executed
//! or speculative map task simply replaces its earlier output, matching
//! Hadoop's task re-run model.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use fabric::{run_parallel, NodeId, Payload, Proc, TaskFn};
use parking_lot::Mutex;

/// Key of one map-output partition.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct SegmentKey {
    pub job: u64,
    pub map_task: u32,
    pub partition: u32,
}

struct Segment {
    host: NodeId,
    data: Payload,
}

/// Cluster-wide registry of map outputs (the aggregate of all tasktrackers'
/// local output stores; lookups are free, data movement is charged).
#[derive(Default)]
pub struct MapOutputRegistry {
    segments: Mutex<HashMap<SegmentKey, Segment>>,
    /// Segments served to reducers (one per key fetched).
    fetched_segments: AtomicU64,
    /// Host-grouped wire transfers that carried them (one per
    /// (map-node, reduce-node) pair per fetch_many call).
    fetch_transfers: AtomicU64,
    /// Republished segments (re-executed / speculative map tasks).
    republished: AtomicU64,
}

impl MapOutputRegistry {
    pub fn new() -> Arc<Self> {
        Arc::new(Self::default())
    }

    /// Store a partition produced by a map task on `host`. Idempotent with
    /// last-writer-wins semantics: a re-executed or speculative map task
    /// replaces its earlier output (Hadoop re-run semantics) instead of
    /// double-counting it.
    pub fn publish(&self, key: SegmentKey, host: NodeId, data: Payload) {
        let mut seg = self.segments.lock();
        if seg.insert(key, Segment { host, data }).is_some() {
            self.republished.fetch_add(1, Ordering::Relaxed);
        }
    }

    /// Fetch a partition into the calling reducer's node (charges the
    /// transfer). Node-local fetches ride the loopback.
    pub fn fetch(&self, p: &Proc, key: SegmentKey) -> Option<Payload> {
        self.fetch_many(p, &[key])
            .pop()
            .expect("one answer per key")
    }

    /// Fetch many partitions, grouped by holding node: every group moves in
    /// ONE (map-node → reduce-node) transfer carrying that host's whole
    /// share, with the groups themselves fetched in parallel (Hadoop's
    /// parallel fetchers, minus the per-segment round-trips). `out[i]`
    /// answers `keys[i]`; unknown keys answer `None`.
    pub fn fetch_many(&self, p: &Proc, keys: &[SegmentKey]) -> Vec<Option<Payload>> {
        let mut out: Vec<Option<Payload>> = vec![None; keys.len()];
        if keys.is_empty() {
            return out;
        }
        // Resolve every key under one lock; data clones are cheap (ghosts
        // or refcounted bytes) and movement is charged per host below.
        // BTreeMap keeps the host grouping deterministic across runs.
        let mut groups: std::collections::BTreeMap<u32, Vec<(usize, Payload)>> =
            std::collections::BTreeMap::new();
        {
            let seg = self.segments.lock();
            for (i, key) in keys.iter().enumerate() {
                if let Some(s) = seg.get(key) {
                    groups
                        .entry(s.host.0)
                        .or_default()
                        .push((i, s.data.clone()));
                }
            }
        }
        self.fetched_segments.fetch_add(
            groups.values().map(|g| g.len() as u64).sum(),
            Ordering::Relaxed,
        );
        self.fetch_transfers
            .fetch_add(groups.len() as u64, Ordering::Relaxed);
        type GroupResult = Vec<(usize, Payload)>;
        let mut tasks: Vec<TaskFn<GroupResult>> = Vec::with_capacity(groups.len());
        for (host, group) in groups {
            tasks.push(Box::new(move |wp: &Proc| {
                let total: u64 = group.iter().map(|(_, d)| d.len()).sum();
                wp.transfer(NodeId(host), wp.node(), total);
                group
            }));
        }
        for group in run_parallel(p, "shuffle-fetch", tasks) {
            for (i, data) in group {
                out[i] = Some(data);
            }
        }
        out
    }

    /// Size of one partition without fetching it.
    pub fn segment_len(&self, key: &SegmentKey) -> Option<u64> {
        self.segments.lock().get(key).map(|s| s.data.len())
    }

    /// (segments served, host-grouped transfers that carried them). The gap
    /// is the shuffle-batching win; tests pin one transfer per
    /// (map-node, reduce-node) pair.
    pub fn fetch_counts(&self) -> (u64, u64) {
        (
            self.fetched_segments.load(Ordering::Relaxed),
            self.fetch_transfers.load(Ordering::Relaxed),
        )
    }

    /// Segments that were published more than once (re-executed maps).
    pub fn republished(&self) -> u64 {
        self.republished.load(Ordering::Relaxed)
    }

    /// Drop all segments of a finished job (Hadoop cleans map outputs after
    /// job completion).
    pub fn drop_job(&self, job: u64) {
        self.segments.lock().retain(|k, _| k.job != job);
    }

    /// Total bytes currently held (diagnostics).
    pub fn total_bytes(&self) -> u64 {
        self.segments.lock().values().map(|s| s.data.len()).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fabric::{ClusterSpec, Fabric};

    fn key(map_task: u32, partition: u32) -> SegmentKey {
        SegmentKey {
            job: 1,
            map_task,
            partition,
        }
    }

    #[test]
    fn publish_fetch_drop() {
        let fx = Fabric::sim(ClusterSpec::tiny(3));
        let reg = MapOutputRegistry::new();
        let reg2 = reg.clone();
        let h = fx.spawn(NodeId(2), "reducer", move |p| {
            let k = key(0, 3);
            reg2.publish(k, NodeId(1), Payload::from_vec(vec![7; 100]));
            assert_eq!(reg2.segment_len(&k), Some(100));
            let got = reg2.fetch(p, k).unwrap();
            assert_eq!(got.len(), 100);
            assert!(reg2.fetch(p, key(9, 0)).is_none());
            reg2.drop_job(1);
            assert_eq!(reg2.total_bytes(), 0);
        });
        fx.run();
        h.take().unwrap();
    }

    #[test]
    fn republish_is_idempotent_last_writer_wins() {
        let fx = Fabric::sim(ClusterSpec::tiny(4));
        let reg = MapOutputRegistry::new();
        let reg2 = reg.clone();
        let h = fx.spawn(NodeId(3), "reducer", move |p| {
            let k = key(0, 0);
            // First attempt ran on node 1; the speculative re-execution on
            // node 2 replaces it (different bytes — the re-run's output is
            // authoritative).
            reg2.publish(k, NodeId(1), Payload::from_vec(vec![1; 50]));
            reg2.publish(k, NodeId(2), Payload::from_vec(vec![2; 70]));
            assert_eq!(reg2.republished(), 1);
            assert_eq!(reg2.total_bytes(), 70, "no double count on republish");
            let got = reg2.fetch(p, k).unwrap();
            assert_eq!(got.bytes().as_ref(), &[2u8; 70][..], "last writer wins");
        });
        fx.run();
        h.take().unwrap();
    }

    #[test]
    fn fetch_many_moves_one_transfer_per_host() {
        let fx = Fabric::sim(ClusterSpec::tiny(4));
        let reg = MapOutputRegistry::new();
        let reg2 = reg.clone();
        let fx2 = fx.clone();
        let h = fx.spawn(NodeId(3), "reducer", move |p| {
            // 6 map outputs on 2 distinct hosts.
            for m in 0..6u32 {
                reg2.publish(key(m, 0), NodeId(1 + m % 2), Payload::ghost(1_000_000));
            }
            let t0 = fx2.stats().transfers;
            let keys: Vec<SegmentKey> = (0..6).map(|m| key(m, 0)).collect();
            let got = reg2.fetch_many(p, &keys);
            assert!(got
                .iter()
                .all(|g| g.as_ref().is_some_and(|d| d.len() == 1_000_000)));
            let wire = fx2.stats().transfers - t0;
            assert_eq!(
                wire, 2,
                "6 segments on 2 hosts must ride 2 transfers, used {wire}"
            );
            assert_eq!(reg2.fetch_counts(), (6, 2));
            // Missing keys answer None without extra transfers.
            let got = reg2.fetch_many(p, &[key(0, 0), key(99, 0)]);
            assert!(got[0].is_some() && got[1].is_none());
            assert_eq!(reg2.fetch_counts(), (7, 3));
        });
        fx.run();
        h.take().unwrap();
    }
}
