//! Map-output storage and shuffle serving.
//!
//! Completed map tasks leave their partitioned, sorted output on the local
//! node (in Hadoop: local disk files served by the tasktracker's HTTP
//! server). Reducers *pull* their partition from every map's node; the
//! network cost of each pull is charged as a map-node→reduce-node transfer.

use std::collections::HashMap;
use std::sync::Arc;

use fabric::{NodeId, Payload, Proc};
use parking_lot::Mutex;

/// Key of one map-output partition.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct SegmentKey {
    pub job: u64,
    pub map_task: u32,
    pub partition: u32,
}

struct Segment {
    host: NodeId,
    data: Payload,
}

/// Cluster-wide registry of map outputs (the aggregate of all tasktrackers'
/// local output stores; lookups are free, data movement is charged).
#[derive(Default)]
pub struct MapOutputRegistry {
    segments: Mutex<HashMap<SegmentKey, Segment>>,
}

impl MapOutputRegistry {
    pub fn new() -> Arc<Self> {
        Arc::new(Self::default())
    }

    /// Store a partition produced by a map task on `host`.
    pub fn publish(&self, key: SegmentKey, host: NodeId, data: Payload) {
        let mut seg = self.segments.lock();
        let prev = seg.insert(key, Segment { host, data });
        debug_assert!(prev.is_none(), "map output {key:?} published twice");
    }

    /// Fetch a partition into the calling reducer's node (charges the
    /// transfer). Node-local fetches ride the loopback.
    pub fn fetch(&self, p: &Proc, key: SegmentKey) -> Option<Payload> {
        let (host, data) = {
            let seg = self.segments.lock();
            let s = seg.get(&key)?;
            (s.host, s.data.clone())
        };
        p.transfer(host, p.node(), data.len());
        Some(data)
    }

    /// Size of one partition without fetching it.
    pub fn segment_len(&self, key: &SegmentKey) -> Option<u64> {
        self.segments.lock().get(key).map(|s| s.data.len())
    }

    /// Drop all segments of a finished job (Hadoop cleans map outputs after
    /// job completion).
    pub fn drop_job(&self, job: u64) {
        self.segments.lock().retain(|k, _| k.job != job);
    }

    /// Total bytes currently held (diagnostics).
    pub fn total_bytes(&self) -> u64 {
        self.segments.lock().values().map(|s| s.data.len()).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fabric::{ClusterSpec, Fabric};

    #[test]
    fn publish_fetch_drop() {
        let fx = Fabric::sim(ClusterSpec::tiny(3));
        let reg = MapOutputRegistry::new();
        let reg2 = reg.clone();
        let h = fx.spawn(NodeId(2), "reducer", move |p| {
            let k = SegmentKey {
                job: 1,
                map_task: 0,
                partition: 3,
            };
            reg2.publish(k, NodeId(1), Payload::from_vec(vec![7; 100]));
            assert_eq!(reg2.segment_len(&k), Some(100));
            let got = reg2.fetch(p, k).unwrap();
            assert_eq!(got.len(), 100);
            assert!(reg2
                .fetch(
                    p,
                    SegmentKey {
                        job: 1,
                        map_task: 9,
                        partition: 0
                    }
                )
                .is_none());
            reg2.drop_job(1);
            assert_eq!(reg2.total_bytes(), 0);
        });
        fx.run();
        h.take().unwrap();
    }
}
