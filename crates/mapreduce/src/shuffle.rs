//! Map-output storage, the node-local (tier-2) combine stage, and shuffle
//! serving.
//!
//! **Two-tier combine.** Tier 1 is Hadoop's classic per-task combiner (run
//! inside `run_map_task` over one task's buffered output). Tier 2 is the
//! in-node combine stage of Lee et al. ("Hadoop MapReduce Performance
//! Enhancement Using In-node Combiners"): every node accumulates its map
//! tasks' partitioned, sorted outputs in a [`NodeCombiner`] buffer; when a
//! configurable threshold of tasks/bytes lands — and always at node
//! map-phase completion — the node k-way-merges the buffered runs, runs the
//! job's combiner across the *merged* stream, and publishes ONE combined
//! segment per (node, partition) instead of one per (map task, partition).
//! High key-repeat workloads (wordcount) collapse by the node's task count;
//! combiner-less jobs (datajoin) still merge runs, cutting segment count
//! (and fetch round-trips) without changing bytes.
//!
//! **Streaming handoff.** Publication no longer waits for the job's map
//! phase: every flush yields a [`DeliverySpec`] that rides the tasktracker's
//! `MapDone`/`FlushDone` message to the jobtracker, which forwards it to
//! every reducer's delivery feed (see `tracker.rs`). Reducers fetch and
//! merge segments as they are announced — shuffle overlaps the map phase.
//!
//! **Idempotence.** Speculative / re-executed map tasks stay idempotent
//! through the buffer: a same-node re-execution replaces the task's runs
//! before combining (last-writer-wins); if the task was already flushed,
//! the affected combined segment is invalidated by recombining the flush
//! and republishing the same keys. A duplicate completion on a *different*
//! node is dropped (tasks are deterministic, so the first-published copy is
//! byte-identical) — this keeps every flush's task set stable after it has
//! been announced. Re-runs scheduled after a node lost its outputs bypass
//! tier 2 entirely ([`MapTaskSpec::rerun`]) and publish per-task segments,
//! so replacements land promptly and never overlap a flushed set.
//!
//! The fetch path is *batched by host*: [`MapOutputRegistry::fetch_many`]
//! groups a reducer's segment pulls by the node that holds them and moves
//! each group in ONE transfer per (map-node, reduce-node) pair — the same
//! grouped-RPC pattern the storage client applies to page fetches.
//! [`MapOutputRegistry::stats`] exposes segments, transfers and *bytes*
//! served plus the tier-2 combine's savings, so tests can pin both the
//! batching and the volume reduction.

use std::collections::{BTreeMap, HashMap};
use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use fabric::{run_parallel, NodeId, Payload, Proc, TaskFn};
use parking_lot::Mutex;

use crate::job::JobCtx;
use crate::record::{decode_kvs, encode_kvs, group_sorted, merge_sorted_runs};

/// Who produced a published segment.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum SegmentSource {
    /// A single map task's own output (tier-2 combining off, or a re-run
    /// that bypasses the node buffer so its replacement lands promptly).
    Task(u32),
    /// The `seq`-th node-local combine flush of `node`, merging several of
    /// that node's tasks into one segment per partition.
    Flush { node: u32, seq: u32 },
}

impl fmt::Display for SegmentSource {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SegmentSource::Task(t) => write!(f, "task {t}"),
            SegmentSource::Flush { node, seq } => write!(f, "node {node} flush {seq}"),
        }
    }
}

/// Key of one published map-output partition.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct SegmentKey {
    pub job: u64,
    pub source: SegmentSource,
    pub partition: u32,
}

/// Typed shuffle-serving failures (the panic paths the analyze gate bans
/// from production code).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ShuffleError {
    /// `fetch_many` answered a different number of slots than keys asked —
    /// a registry contract breach, not a missing segment.
    AnswerCountMismatch { want: usize, got: usize },
}

impl fmt::Display for ShuffleError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ShuffleError::AnswerCountMismatch { want, got } => {
                write!(f, "shuffle fetch answered {got} slots for {want} keys")
            }
        }
    }
}

/// One publication a reducer should fetch: segment `source` holds the
/// output of `tasks` (one task for direct publications, a whole node batch
/// for combine flushes). Forwarded to every reducer's delivery feed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DeliverySpec {
    pub source: SegmentSource,
    /// Map task ids whose output the segment carries (sorted, disjoint
    /// across a node's flushes).
    pub tasks: Vec<u32>,
}

/// Snapshot of the registry's counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ShuffleStats {
    /// Segments served to reducers (one per key found).
    pub fetched_segments: u64,
    /// Host-grouped wire transfers that carried them.
    pub fetch_transfers: u64,
    /// Bytes those transfers moved (the shuffle *volume*).
    pub fetch_bytes: u64,
    /// Segments that were published more than once (re-executed maps /
    /// invalidated combine flushes).
    pub republished: u64,
    /// Combined (node, partition) segments the tier-2 stage published.
    pub combined_segments: u64,
    /// Bytes the tier-2 combine removed before publication.
    pub combine_saved_bytes: u64,
    /// Flushes recombined because a flushed task was re-executed.
    pub recombined: u64,
}

struct Segment {
    host: NodeId,
    data: Payload,
}

/// Cluster-wide registry of map outputs (the aggregate of all tasktrackers'
/// local output stores; lookups are free, data movement is charged).
#[derive(Default)]
pub struct MapOutputRegistry {
    segments: Mutex<HashMap<SegmentKey, Segment>>,
    fetched_segments: AtomicU64,
    fetch_transfers: AtomicU64,
    fetch_bytes: AtomicU64,
    republished: AtomicU64,
    combined_segments: AtomicU64,
    combine_saved_bytes: AtomicU64,
    recombined: AtomicU64,
}

impl MapOutputRegistry {
    pub fn new() -> Arc<Self> {
        Arc::new(Self::default())
    }

    /// Store a partition produced on `host`. Idempotent with
    /// last-writer-wins semantics: a re-executed or speculative map task
    /// (or an invalidated combine flush) replaces its earlier output
    /// instead of double-counting it.
    pub fn publish(&self, key: SegmentKey, host: NodeId, data: Payload) {
        let mut seg = self.segments.lock();
        if seg.insert(key, Segment { host, data }).is_some() {
            self.republished.fetch_add(1, Ordering::Relaxed);
        }
    }

    /// Fetch a partition into the calling reducer's node (charges the
    /// transfer). Node-local fetches ride the loopback. `Ok(None)` means
    /// the segment is not (or no longer) published.
    pub fn fetch(&self, p: &Proc, key: SegmentKey) -> Result<Option<Payload>, ShuffleError> {
        let mut got = self.fetch_many(p, &[key]);
        let n = got.len();
        match got.pop() {
            Some(ans) if n == 1 => Ok(ans),
            _ => Err(ShuffleError::AnswerCountMismatch { want: 1, got: n }),
        }
    }

    /// Fetch many partitions, grouped by holding node: every group moves in
    /// ONE (map-node → reduce-node) transfer carrying that host's whole
    /// share, with the groups themselves fetched in parallel (Hadoop's
    /// parallel fetchers, minus the per-segment round-trips). `out[i]`
    /// answers `keys[i]`; unknown keys answer `None`.
    pub fn fetch_many(&self, p: &Proc, keys: &[SegmentKey]) -> Vec<Option<Payload>> {
        let mut out: Vec<Option<Payload>> = vec![None; keys.len()];
        if keys.is_empty() {
            return out;
        }
        // Resolve every key under one lock; data clones are cheap (ghosts
        // or refcounted bytes) and movement is charged per host below.
        // BTreeMap keeps the host grouping deterministic across runs.
        let mut groups: BTreeMap<u32, Vec<(usize, Payload)>> = BTreeMap::new();
        {
            let seg = self.segments.lock();
            for (i, key) in keys.iter().enumerate() {
                if let Some(s) = seg.get(key) {
                    groups
                        .entry(s.host.0)
                        .or_default()
                        .push((i, s.data.clone()));
                }
            }
        }
        self.fetched_segments.fetch_add(
            groups.values().map(|g| g.len() as u64).sum(),
            Ordering::Relaxed,
        );
        self.fetch_bytes.fetch_add(
            groups.values().flatten().map(|(_, d)| d.len()).sum::<u64>(),
            Ordering::Relaxed,
        );
        self.fetch_transfers
            .fetch_add(groups.len() as u64, Ordering::Relaxed);
        type GroupResult = Vec<(usize, Payload)>;
        let mut tasks: Vec<TaskFn<GroupResult>> = Vec::with_capacity(groups.len());
        for (host, group) in groups {
            tasks.push(Box::new(move |wp: &Proc| {
                let total: u64 = group.iter().map(|(_, d)| d.len()).sum();
                wp.transfer(NodeId(host), wp.node(), total);
                group
            }));
        }
        for group in run_parallel(p, "shuffle-fetch", tasks) {
            for (i, data) in group {
                out[i] = Some(data);
            }
        }
        out
    }

    /// Size of one partition without fetching it.
    pub fn segment_len(&self, key: &SegmentKey) -> Option<u64> {
        self.segments.lock().get(key).map(|s| s.data.len())
    }

    /// (segments served, host-grouped transfers that carried them). The gap
    /// is the shuffle-batching win; tests pin one transfer per
    /// (map-node, reduce-node) pair.
    pub fn fetch_counts(&self) -> (u64, u64) {
        (
            self.fetched_segments.load(Ordering::Relaxed),
            self.fetch_transfers.load(Ordering::Relaxed),
        )
    }

    /// Segments that were published more than once (re-executed maps).
    pub fn republished(&self) -> u64 {
        self.republished.load(Ordering::Relaxed)
    }

    /// Snapshot of every counter (volume included).
    pub fn stats(&self) -> ShuffleStats {
        ShuffleStats {
            fetched_segments: self.fetched_segments.load(Ordering::Relaxed),
            fetch_transfers: self.fetch_transfers.load(Ordering::Relaxed),
            fetch_bytes: self.fetch_bytes.load(Ordering::Relaxed),
            republished: self.republished.load(Ordering::Relaxed),
            combined_segments: self.combined_segments.load(Ordering::Relaxed),
            combine_saved_bytes: self.combine_saved_bytes.load(Ordering::Relaxed),
            recombined: self.recombined.load(Ordering::Relaxed),
        }
    }

    /// Drop all segments of a finished job (Hadoop cleans map outputs after
    /// job completion).
    pub fn drop_job(&self, job: u64) {
        self.segments.lock().retain(|k, _| k.job != job);
    }

    /// Drop every segment hosted on `host` (the node lost its local output
    /// store). Returns the `(job, task)` pairs of direct per-task segments
    /// that went with it, sorted; lost *flush* segments are reported by
    /// [`NodeCombiner::drop_node`], which knows their task sets.
    pub fn drop_host(&self, host: NodeId) -> Vec<(u64, u32)> {
        let mut lost = Vec::new();
        self.segments.lock().retain(|k, s| {
            if s.host != host {
                return true;
            }
            if let SegmentSource::Task(t) = k.source {
                lost.push((k.job, t));
            }
            false
        });
        lost.sort_unstable();
        lost.dedup();
        lost
    }

    /// Total bytes currently held (diagnostics).
    pub fn total_bytes(&self) -> u64 {
        self.segments.lock().values().map(|s| s.data.len()).sum()
    }
}

/// Where a buffered task's runs currently live on its home node.
#[derive(Clone, Copy, PartialEq, Eq)]
enum Loc {
    Pending,
    Flushed(u32),
}

/// One node's combine buffer for one job.
#[derive(Default)]
struct NodeBuffer {
    /// task → per-partition tier-1 sorted runs, awaiting the next flush.
    pending: BTreeMap<u32, Vec<Payload>>,
    pending_bytes: u64,
    pending_tasks: u32,
    /// flush seq → task → runs; retained so a re-executed task can
    /// invalidate and recombine its flush.
    flushed: BTreeMap<u32, BTreeMap<u32, Vec<Payload>>>,
    next_seq: u32,
}

/// One job's tier-2 state across all nodes.
#[derive(Default)]
struct JobBuffers {
    /// task → (home node, pending-or-flushed). A task lives on exactly one
    /// node; duplicate completions elsewhere are dropped (first-published
    /// wins — deterministic tasks make the copies byte-identical).
    task_loc: BTreeMap<u32, (u32, Loc)>,
    nodes: BTreeMap<u32, NodeBuffer>,
}

/// What a flush produced, computed under the buffer lock and applied
/// (published + counted) after releasing it.
struct FlushOut {
    delivery: Option<DeliverySpec>,
    combined: Vec<(SegmentKey, Payload)>,
    compute: u64,
    saved_bytes: u64,
}

/// The node-local (tier-2) combine stage: accumulates map tasks' partitioned
/// outputs per (job, node) and publishes combined per-(node, partition)
/// segments to the wrapped [`MapOutputRegistry`]. See the module docs for
/// the full protocol.
pub struct NodeCombiner {
    registry: Arc<MapOutputRegistry>,
    jobs: Mutex<BTreeMap<u64, JobBuffers>>,
}

impl NodeCombiner {
    pub fn new(registry: Arc<MapOutputRegistry>) -> Arc<NodeCombiner> {
        Arc::new(NodeCombiner {
            registry,
            jobs: Mutex::new(BTreeMap::new()),
        })
    }

    /// The wrapped registry (direct publications and fetches go through it).
    pub fn registry(&self) -> &Arc<MapOutputRegistry> {
        &self.registry
    }

    /// Buffer one completed map task's per-partition outputs on the calling
    /// node. Returns the deliveries this call published (a threshold flush,
    /// or nothing while the buffer accumulates). Idempotent for re-executed
    /// tasks; see the module docs.
    pub fn add(
        &self,
        p: &Proc,
        ctx: &Arc<JobCtx>,
        task: u32,
        parts: Vec<Payload>,
    ) -> Vec<DeliverySpec> {
        let node = p.node().0;
        let tuning = ctx.conf.shuffle;
        let bytes: u64 = parts.iter().map(Payload::len).sum();
        let mut flushes: Vec<FlushOut> = Vec::new();
        {
            let mut jobs = self.jobs.lock();
            let jb = jobs.entry(ctx.id).or_default();
            match jb.task_loc.get(&task).copied() {
                Some((home, Loc::Pending)) if home == node => {
                    // Same-node re-execution before any flush: last writer
                    // wins in place.
                    let nb = jb.nodes.entry(node).or_default();
                    if let Some(old) = nb.pending.insert(task, parts) {
                        let old_bytes: u64 = old.iter().map(Payload::len).sum();
                        nb.pending_bytes = nb.pending_bytes.saturating_sub(old_bytes);
                    }
                    nb.pending_bytes += bytes;
                    self.registry.republished.fetch_add(1, Ordering::Relaxed);
                }
                Some((home, Loc::Flushed(seq))) if home == node => {
                    // Re-execution of an already-flushed task: replace its
                    // runs, recombine the flush and republish the SAME
                    // segment keys (the announced task set stays valid;
                    // deterministic tasks make old and new byte-identical).
                    let nb = jb.nodes.entry(node).or_default();
                    if let Some(set) = nb.flushed.get_mut(&seq) {
                        set.insert(task, parts);
                        let set_snapshot: Vec<(u32, Vec<Payload>)> =
                            set.iter().map(|(t, r)| (*t, r.clone())).collect();
                        let mut out = combine_flush(
                            ctx,
                            node,
                            seq,
                            &set_snapshot,
                            set_snapshot
                                .iter()
                                .flat_map(|(_, r)| r)
                                .map(Payload::len)
                                .sum(),
                        );
                        out.delivery = None; // already announced
                        flushes.push(out);
                        // republished bumps when the publishes replace the
                        // flush's live segments below; count the recombine.
                        self.registry.recombined.fetch_add(1, Ordering::Relaxed);
                    }
                }
                Some(_) => {
                    // Duplicate completion on a different node: drop it. The
                    // first-published copy is byte-identical and its flush's
                    // announced task set must stay stable.
                }
                None => {
                    let nb = jb.nodes.entry(node).or_default();
                    nb.pending.insert(task, parts);
                    nb.pending_bytes += bytes;
                    nb.pending_tasks += 1;
                    jb.task_loc.insert(task, (node, Loc::Pending));
                    let hit_tasks = tuning
                        .flush_tasks
                        .is_some_and(|n| nb.pending_tasks >= n.max(1));
                    let hit_bytes = tuning.flush_bytes.is_some_and(|b| nb.pending_bytes >= b);
                    if hit_tasks || hit_bytes {
                        if let Some(out) = flush_pending(ctx, jb, node) {
                            flushes.push(out);
                        }
                    }
                }
            }
        }
        self.apply_flushes(p, ctx, flushes)
    }

    /// Flush whatever the node still buffers for this job (called by the
    /// tracker once the node's map share is complete). Returns the
    /// delivery to announce, or `None` if the buffer was empty.
    pub fn complete_node(&self, p: &Proc, ctx: &Arc<JobCtx>, node: NodeId) -> Option<DeliverySpec> {
        let flushes = {
            let mut jobs = self.jobs.lock();
            let jb = jobs.entry(ctx.id).or_default();
            flush_pending(ctx, jb, node.0).into_iter().collect()
        };
        self.apply_flushes(p, ctx, flushes).pop()
    }

    /// The node lost its local output store: drop its buffers (pending and
    /// flushed run sets) for every job. Returns, per job, the sorted task
    /// ids whose buffered output went with it — the tracker re-queues them.
    /// Call together with [`MapOutputRegistry::drop_host`].
    pub fn drop_node(&self, node: NodeId) -> Vec<(u64, Vec<u32>)> {
        let mut lost = Vec::new();
        let mut jobs = self.jobs.lock();
        for (job, jb) in jobs.iter_mut() {
            if jb.nodes.remove(&node.0).is_none() {
                continue;
            }
            let tasks: Vec<u32> = jb
                .task_loc
                .iter()
                .filter(|(_, (home, _))| *home == node.0)
                .map(|(t, _)| *t)
                .collect();
            for t in &tasks {
                jb.task_loc.remove(t);
            }
            if !tasks.is_empty() {
                lost.push((*job, tasks));
            }
        }
        lost
    }

    /// Drop a finished job's buffers (pairs with
    /// [`MapOutputRegistry::drop_job`]).
    pub fn drop_job(&self, job: u64) {
        self.jobs.lock().remove(&job);
    }

    /// Charge ghost compute, publish the flush segments and bump counters —
    /// everything that must happen outside the buffer lock but *before* the
    /// returned deliveries are announced.
    fn apply_flushes(
        &self,
        p: &Proc,
        ctx: &Arc<JobCtx>,
        flushes: Vec<FlushOut>,
    ) -> Vec<DeliverySpec> {
        let mut deliveries = Vec::new();
        for out in flushes {
            if out.compute > 0 {
                p.compute(p.node(), out.compute);
            }
            let fresh = out.delivery.is_some();
            let n = out.combined.len() as u64;
            for (key, data) in out.combined {
                self.registry.publish(key, p.node(), data);
            }
            if fresh {
                self.registry
                    .combined_segments
                    .fetch_add(n, Ordering::Relaxed);
                self.registry
                    .combine_saved_bytes
                    .fetch_add(out.saved_bytes, Ordering::Relaxed);
                let c = &ctx.counters;
                c.add(&c.combined_segments, n);
                c.add(&c.combine_saved_bytes, out.saved_bytes);
            }
            if let Some(d) = out.delivery {
                deliveries.push(d);
            }
        }
        deliveries
    }
}

/// Move the node's pending set into a new flush and compute its combined
/// segments. Runs under the buffer lock; does not publish.
fn flush_pending(ctx: &Arc<JobCtx>, jb: &mut JobBuffers, node: u32) -> Option<FlushOut> {
    let nb = jb.nodes.entry(node).or_default();
    if nb.pending.is_empty() {
        return None;
    }
    let seq = nb.next_seq;
    nb.next_seq += 1;
    let set = std::mem::take(&mut nb.pending);
    let buffered = nb.pending_bytes;
    nb.pending_bytes = 0;
    nb.pending_tasks = 0;
    let tasks: Vec<u32> = set.keys().copied().collect();
    let set_snapshot: Vec<(u32, Vec<Payload>)> = set.iter().map(|(t, r)| (*t, r.clone())).collect();
    for t in &tasks {
        jb.task_loc.insert(*t, (node, Loc::Flushed(seq)));
    }
    nb.flushed.insert(seq, set);
    let mut out = combine_flush(ctx, node, seq, &set_snapshot, buffered);
    out.delivery = Some(DeliverySpec {
        source: SegmentSource::Flush { node, seq },
        tasks,
    });
    Some(out)
}

/// Merge + combine one flush's task runs into per-partition segments.
/// Ghost jobs scale buffered lengths by the profile's combine ratio; real
/// jobs k-way-merge the sorted runs and run the combiner over the merged
/// stream (byte-identical to sorting the concatenation when no combiner).
fn combine_flush(
    ctx: &Arc<JobCtx>,
    node: u32,
    seq: u32,
    set: &[(u32, Vec<Payload>)],
    buffered: u64,
) -> FlushOut {
    let r = ctx.conf.num_reducers;
    let has_combiner = ctx.conf.user.combiner.is_some();
    let mut segments = Vec::with_capacity(r as usize);
    let mut combined_bytes = 0u64;
    let mut compute = 0u64;
    if let Some(profile) = ctx.conf.ghost {
        let ratio = if has_combiner {
            profile.combine_output_ratio
        } else {
            1.0
        };
        for i in 0..r {
            let total: u64 = set
                .iter()
                .filter_map(|(_, parts)| parts.get(i as usize))
                .map(Payload::len)
                .sum();
            let out = (total as f64 * ratio) as u64;
            combined_bytes += out;
            segments.push((seg_key(ctx.id, node, seq, i), Payload::ghost(out)));
        }
        if has_combiner {
            compute = (buffered as f64 * profile.reduce_cpu_per_byte) as u64;
        }
    } else {
        for i in 0..r {
            let runs: Vec<Vec<crate::api::KV>> = set
                .iter()
                .filter_map(|(_, parts)| parts.get(i as usize))
                .map(|pl| decode_kvs(pl.bytes()))
                .collect();
            let merged = merge_sorted_runs(runs);
            let data = if let Some(combiner) = &ctx.conf.user.combiner {
                let mut combined = Vec::new();
                for (key, values) in group_sorted(merged) {
                    let mut it = values.iter().map(|v| v.as_slice());
                    combiner.reduce(&key, &mut it, &mut |kv| combined.push(kv));
                }
                combined.sort();
                encode_kvs(&combined)
            } else {
                encode_kvs(&merged)
            };
            combined_bytes += data.len();
            segments.push((seg_key(ctx.id, node, seq, i), data));
        }
    }
    FlushOut {
        delivery: None,
        combined: segments,
        compute,
        saved_bytes: buffered.saturating_sub(combined_bytes),
    }
}

fn seg_key(job: u64, node: u32, seq: u32, partition: u32) -> SegmentKey {
    SegmentKey {
        job,
        source: SegmentSource::Flush { node, seq },
        partition,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::api::{Mapper, Reducer, UserFns, KV};
    use crate::job::{JobConf, JobCounters, OutputMode, ShuffleTuning};
    use dfs::DfsPath;
    use fabric::{ClusterSpec, Fabric};

    fn key(map_task: u32, partition: u32) -> SegmentKey {
        SegmentKey {
            job: 1,
            source: SegmentSource::Task(map_task),
            partition,
        }
    }

    fn flush_key(node: u32, seq: u32, partition: u32) -> SegmentKey {
        seg_key(1, node, seq, partition)
    }

    struct Nop;
    impl Mapper for Nop {
        fn map(&self, _: &[u8], _: &[u8], _: &mut dyn FnMut(KV)) {}
    }
    impl Reducer for Nop {
        fn reduce(&self, _: &[u8], _: &mut dyn Iterator<Item = &[u8]>, _: &mut dyn FnMut(KV)) {}
    }

    /// Wordcount-style combiner: sums integer values per key.
    struct SumReduce;
    impl Reducer for SumReduce {
        fn reduce(
            &self,
            key: &[u8],
            values: &mut dyn Iterator<Item = &[u8]>,
            out: &mut dyn FnMut(KV),
        ) {
            let sum: u64 = values
                .map(|v| std::str::from_utf8(v).unwrap().parse::<u64>().unwrap())
                .sum();
            out(KV::new(key.to_vec(), sum.to_string()));
        }
    }

    fn ctx(reducers: u32, combiner: bool, tuning: ShuffleTuning) -> Arc<JobCtx> {
        Arc::new(JobCtx {
            id: 1,
            conf: JobConf {
                name: "shuffle-unit".into(),
                inputs: vec![],
                output_dir: DfsPath::new("/out").unwrap(),
                num_reducers: reducers,
                output_mode: OutputMode::PerReducerFiles,
                user: UserFns {
                    mapper: Arc::new(Nop),
                    reducer: Arc::new(Nop),
                    combiner: combiner.then(|| Arc::new(SumReduce) as Arc<dyn Reducer>),
                },
                ghost: None,
                shuffle: tuning,
            },
            counters: Arc::new(JobCounters::default()),
        })
    }

    fn enc(kvs: &[(&str, &str)]) -> Payload {
        let mut v: Vec<KV> = kvs.iter().map(|(k, val)| KV::new(*k, *val)).collect();
        v.sort();
        encode_kvs(&v)
    }

    #[test]
    fn publish_fetch_drop() {
        let fx = Fabric::sim(ClusterSpec::tiny(3));
        let reg = MapOutputRegistry::new();
        let reg2 = reg.clone();
        let h = fx.spawn(NodeId(2), "reducer", move |p| {
            let k = key(0, 3);
            reg2.publish(k, NodeId(1), Payload::from_vec(vec![7; 100]));
            assert_eq!(reg2.segment_len(&k), Some(100));
            let got = reg2.fetch(p, k).unwrap().unwrap();
            assert_eq!(got.len(), 100);
            assert!(reg2.fetch(p, key(9, 0)).unwrap().is_none());
            reg2.drop_job(1);
            assert_eq!(reg2.total_bytes(), 0);
        });
        fx.run();
        h.take().unwrap();
    }

    #[test]
    fn republish_is_idempotent_last_writer_wins() {
        let fx = Fabric::sim(ClusterSpec::tiny(4));
        let reg = MapOutputRegistry::new();
        let reg2 = reg.clone();
        let h = fx.spawn(NodeId(3), "reducer", move |p| {
            let k = key(0, 0);
            // First attempt ran on node 1; the speculative re-execution on
            // node 2 replaces it (different bytes — the re-run's output is
            // authoritative).
            reg2.publish(k, NodeId(1), Payload::from_vec(vec![1; 50]));
            reg2.publish(k, NodeId(2), Payload::from_vec(vec![2; 70]));
            assert_eq!(reg2.republished(), 1);
            assert_eq!(reg2.total_bytes(), 70, "no double count on republish");
            let got = reg2.fetch(p, k).unwrap().unwrap();
            assert_eq!(got.bytes().as_ref(), &[2u8; 70][..], "last writer wins");
        });
        fx.run();
        h.take().unwrap();
    }

    #[test]
    fn fetch_many_moves_one_transfer_per_host_and_counts_bytes() {
        let fx = Fabric::sim(ClusterSpec::tiny(4));
        let reg = MapOutputRegistry::new();
        let reg2 = reg.clone();
        let fx2 = fx.clone();
        let h = fx.spawn(NodeId(3), "reducer", move |p| {
            // 6 map outputs on 2 distinct hosts.
            for m in 0..6u32 {
                reg2.publish(key(m, 0), NodeId(1 + m % 2), Payload::ghost(1_000_000));
            }
            let t0 = fx2.stats().transfers;
            let keys: Vec<SegmentKey> = (0..6).map(|m| key(m, 0)).collect();
            let got = reg2.fetch_many(p, &keys);
            assert!(got
                .iter()
                .all(|g| g.as_ref().is_some_and(|d| d.len() == 1_000_000)));
            let wire = fx2.stats().transfers - t0;
            assert_eq!(
                wire, 2,
                "6 segments on 2 hosts must ride 2 transfers, used {wire}"
            );
            assert_eq!(reg2.fetch_counts(), (6, 2));
            assert_eq!(reg2.stats().fetch_bytes, 6_000_000, "volume counter");
            // Missing keys answer None without extra transfers.
            let got = reg2.fetch_many(p, &[key(0, 0), key(99, 0)]);
            assert!(got[0].is_some() && got[1].is_none());
            assert_eq!(reg2.fetch_counts(), (7, 3));
            assert_eq!(reg2.stats().fetch_bytes, 7_000_000);
        });
        fx.run();
        h.take().unwrap();
    }

    /// The tier-2 pin: 4 tasks on 2 nodes with 2 partitions publish exactly
    /// one combined segment per (node, partition), with the saved bytes
    /// accounted on both the registry and the job counters.
    #[test]
    fn node_combine_publishes_one_segment_per_node_partition() {
        let fx = Fabric::sim(ClusterSpec::tiny(4));
        let reg = MapOutputRegistry::new();
        let nc = NodeCombiner::new(reg.clone());
        let jctx = ctx(2, true, ShuffleTuning::default());
        let done1 = fx.gate();
        let (nc1, ctx1, d1) = (nc.clone(), jctx.clone(), done1.clone());
        let h1 = fx.spawn(NodeId(1), "node1", move |p| {
            // Each task: partition 0 carries a=1, partition 1 carries b=<id+1>.
            for t in 0..2u32 {
                let parts = vec![enc(&[("a", "1")]), enc(&[("b", &format!("{}", t + 1))])];
                let got = nc1.add(p, &ctx1, t, parts);
                assert!(got.is_empty(), "default tuning flushes only at completion");
            }
            let d = nc1.complete_node(p, &ctx1, p.node()).expect("one flush");
            assert_eq!(d.source, SegmentSource::Flush { node: 1, seq: 0 });
            assert_eq!(d.tasks, vec![0, 1]);
            d1.set();
        });
        let (nc2, ctx2, reg2) = (nc.clone(), jctx.clone(), reg.clone());
        let h2 = fx.spawn(NodeId(2), "node2", move |p| {
            done1.wait(p);
            for t in 2..4u32 {
                let parts = vec![enc(&[("a", "1")]), enc(&[("b", &format!("{}", t + 1))])];
                nc2.add(p, &ctx2, t, parts);
            }
            let d = nc2.complete_node(p, &ctx2, p.node()).expect("one flush");
            assert_eq!(d.tasks, vec![2, 3]);

            // Exactly one combined segment per (node, partition).
            let s = reg2.stats();
            assert_eq!(s.combined_segments, 4, "2 nodes x 2 partitions");
            // Each task buffered 20 bytes (two 10-byte records); each node's
            // combine folds 2 records per partition into 1 → 20 saved/node.
            assert_eq!(s.combine_saved_bytes, 40);
            let c = &ctx2.counters;
            assert_eq!(c.combined_segments.load(Ordering::Relaxed), 4);
            assert_eq!(c.combine_saved_bytes.load(Ordering::Relaxed), 40);

            // Combined contents match the model: a summed, b summed per node.
            let p0 = reg2.fetch(p, flush_key(1, 0, 0)).unwrap().unwrap();
            assert_eq!(decode_kvs(p0.bytes()), vec![KV::new("a", "2")]);
            let p1 = reg2.fetch(p, flush_key(1, 0, 1)).unwrap().unwrap();
            assert_eq!(decode_kvs(p1.bytes()), vec![KV::new("b", "3")]);
            let p1b = reg2.fetch(p, flush_key(2, 0, 1)).unwrap().unwrap();
            assert_eq!(decode_kvs(p1b.bytes()), vec![KV::new("b", "7")]);
        });
        fx.run();
        h1.take().unwrap();
        h2.take().unwrap();
    }

    /// Re-execution idempotence through the buffer: pending tasks replace
    /// in place (LWW), flushed tasks invalidate + recombine their segment,
    /// and a duplicate completion on another node is dropped.
    #[test]
    fn reexecution_is_idempotent_through_the_buffer() {
        let fx = Fabric::sim(ClusterSpec::tiny(4));
        let reg = MapOutputRegistry::new();
        let nc = NodeCombiner::new(reg.clone());
        // No combiner: the flush is a pure merge, so LWW bytes are visible.
        let jctx = ctx(
            1,
            false,
            ShuffleTuning {
                node_combine: true,
                flush_tasks: None,
                flush_bytes: None,
            },
        );
        let reg2 = reg.clone();
        let done1 = fx.gate();
        let (nc1, ctx1, d1, rega) = (nc.clone(), jctx.clone(), done1.clone(), reg.clone());
        let h = fx.spawn(NodeId(1), "node1", move |p| {
            // Pending LWW: second add of task 0 replaces the first.
            nc1.add(p, &ctx1, 0, vec![enc(&[("a", "1")])]);
            nc1.add(p, &ctx1, 0, vec![enc(&[("a", "9")])]);
            assert_eq!(rega.republished(), 1, "pending replace counts");
            let d = nc1.complete_node(p, &ctx1, p.node()).expect("flush");
            assert_eq!(d.tasks, vec![0]);
            let got = rega.fetch(p, flush_key(1, 0, 0)).unwrap().unwrap();
            assert_eq!(decode_kvs(got.bytes()), vec![KV::new("a", "9")]);

            // Flushed recombine: task 0 re-runs after its flush; the
            // combined segment is invalidated and republished in place.
            nc1.add(p, &ctx1, 0, vec![enc(&[("a", "5")])]);
            assert_eq!(rega.stats().recombined, 1);
            let got = rega.fetch(p, flush_key(1, 0, 0)).unwrap().unwrap();
            assert_eq!(decode_kvs(got.bytes()), vec![KV::new("a", "5")]);
            d1.set();
        });
        // Duplicate completion on another node: dropped, no delivery, the
        // original node's segment stays authoritative.
        let h2 = fx.spawn(NodeId(2), "node2", move |p| {
            done1.wait(p);
            let d = nc.add(p, &jctx, 0, vec![enc(&[("a", "7")])]);
            assert!(d.is_empty(), "cross-node duplicate is dropped");
            assert!(nc.complete_node(p, &jctx, p.node()).is_none());
            let got = reg2.fetch(p, flush_key(1, 0, 0)).unwrap().unwrap();
            assert_eq!(
                decode_kvs(got.bytes()),
                vec![KV::new("a", "5")],
                "first-published copy stays authoritative"
            );
        });
        fx.run();
        h.take().unwrap();
        h2.take().unwrap();
    }

    /// Threshold flushes: `flush_tasks` bounds how many tasks a buffer
    /// holds before publishing mid-phase (the streaming knob).
    #[test]
    fn threshold_flush_publishes_mid_phase() {
        let fx = Fabric::sim(ClusterSpec::tiny(3));
        let reg = MapOutputRegistry::new();
        let nc = NodeCombiner::new(reg.clone());
        let jctx = ctx(
            1,
            true,
            ShuffleTuning {
                node_combine: true,
                flush_tasks: Some(2),
                flush_bytes: None,
            },
        );
        let reg2 = reg.clone();
        let h = fx.spawn(NodeId(1), "node1", move |p| {
            assert!(nc.add(p, &jctx, 0, vec![enc(&[("a", "1")])]).is_empty());
            let d = nc.add(p, &jctx, 1, vec![enc(&[("a", "1")])]);
            assert_eq!(d.len(), 1, "second task hits the flush_tasks=2 bound");
            assert_eq!(d[0].tasks, vec![0, 1]);
            let d = nc.add(p, &jctx, 2, vec![enc(&[("a", "1")])]);
            assert!(d.is_empty());
            let fin = nc.complete_node(p, &jctx, p.node()).expect("tail flush");
            assert_eq!(fin.source, SegmentSource::Flush { node: 1, seq: 1 });
            assert_eq!(fin.tasks, vec![2]);
            // Two flushes → two combined segments for the one partition.
            assert_eq!(reg2.stats().combined_segments, 2);
            let s0 = reg2.fetch(p, flush_key(1, 0, 0)).unwrap().unwrap();
            assert_eq!(decode_kvs(s0.bytes()), vec![KV::new("a", "2")]);
            let s1 = reg2.fetch(p, flush_key(1, 1, 0)).unwrap().unwrap();
            assert_eq!(decode_kvs(s1.bytes()), vec![KV::new("a", "1")]);
        });
        fx.run();
        h.take().unwrap();
    }

    /// Losing a node's outputs drops its buffers and reports the buried
    /// task ids so the tracker can re-queue them.
    #[test]
    fn drop_node_reports_buffered_tasks() {
        let fx = Fabric::sim(ClusterSpec::tiny(3));
        let reg = MapOutputRegistry::new();
        let nc = NodeCombiner::new(reg.clone());
        let jctx = ctx(
            1,
            false,
            ShuffleTuning {
                node_combine: true,
                flush_tasks: Some(1),
                flush_bytes: None,
            },
        );
        let reg2 = reg.clone();
        let h = fx.spawn(NodeId(1), "node1", move |p| {
            nc.add(p, &jctx, 0, vec![enc(&[("a", "1")])]); // flushed (threshold 1)
                                                           // A direct per-task publication on the same node (rerun path).
            reg2.publish(key(7, 0), p.node(), enc(&[("z", "1")]));
            let lost_direct = reg2.drop_host(p.node());
            assert_eq!(lost_direct, vec![(1, 7)]);
            let lost_buffered = nc.drop_node(p.node());
            assert_eq!(lost_buffered, vec![(1, vec![0])]);
            assert!(
                reg2.fetch(p, flush_key(1, 0, 0)).unwrap().is_none(),
                "flush segment gone with the host"
            );
            // A fresh run of task 0 lands cleanly (task_loc was cleared).
            let d = nc.add(p, &jctx, 0, vec![enc(&[("a", "1")])]);
            assert_eq!(d.len(), 1);
        });
        fx.run();
        h.take().unwrap();
    }
}
