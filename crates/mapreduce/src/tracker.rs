//! The framework's control plane (paper §2.2): "the framework consists of a
//! single master jobtracker, and multiple slave tasktrackers, one per node.
//! A Map/Reduce job is split into a set of tasks, which are executed by the
//! tasktrackers, as assigned by the jobtracker."
//!
//! Tasktrackers heartbeat the jobtracker asking for work; the jobtracker
//! assigns map tasks with data-locality preference (it reads block
//! locations from the file system — HDFS's namenode or BSFS's new
//! page-distribution primitive).
//!
//! **Streaming handoff (no reduce barrier).** Reduce tasks are assigned
//! from the first heartbeat; each carries a delivery *feed* the jobtracker
//! fills as map outputs publish. A completed map's `MapDone` carries the
//! [`DeliverySpec`]s its publication produced (a tier-2 threshold flush, or
//! a direct per-task segment), and the jobtracker forwards them to every
//! reducer — reducers fetch and merge while the map phase is still
//! running. When a node's share of the map phase completes (no pending
//! maps remain and the node has no map in flight), the jobtracker spawns a
//! final combine flush on that node; its `FlushDone` announces the last
//! combined segments. See `shuffle.rs` for the two-tier combine itself.
//!
//! **Output loss and re-runs.** [`MrCluster::lose_map_outputs`] models a
//! node losing its local map-output store mid-shuffle (the chaos harness's
//! shuffle-storm fault): the node's published segments and combine buffers
//! are dropped, and the tasks whose output they carried are re-queued as
//! [`MapTaskSpec::rerun`]s that publish per-task segments. Reducers treat a
//! fetch that answers `None` as exactly this loss and wait for the re-run's
//! replacement delivery; completion bookkeeping is idempotent under
//! duplicate `MapDone`s.

use std::collections::{BTreeMap, BTreeSet, HashMap};
use std::sync::atomic::{AtomicU32, Ordering};
use std::sync::Arc;

use dfs::FileSystem;
use fabric::sync::{Gate, Queue};
use fabric::{ClusterSpec, Fabric, NodeId, Proc, SimTime};
use parking_lot::Mutex;

use crate::job::{JobConf, JobCounters, JobCtx, JobResult, OutputMode};
use crate::shuffle::{DeliverySpec, MapOutputRegistry, NodeCombiner};
use crate::task::{run_map_task, run_reduce_task, MapTaskSpec, ReduceTaskSpec};

/// Cluster-level framework configuration.
#[derive(Debug, Clone)]
pub struct MrConfig {
    pub jobtracker: NodeId,
    pub tasktrackers: Vec<NodeId>,
    /// Concurrent map tasks per tasktracker (Hadoop default: 2).
    pub map_slots: u32,
    /// Concurrent reduce tasks per tasktracker (Hadoop default: 2).
    pub reduce_slots: u32,
    /// Heartbeat period.
    pub heartbeat_ns: u64,
    /// A pending map task is held for data-local tasktrackers for this long
    /// after becoming available; afterwards any node may take it (a light
    /// form of delay scheduling; 0 = fully greedy like Hadoop 0.20).
    pub locality_delay_ns: u64,
}

impl MrConfig {
    /// Paper deployment (§4.3): "one dedicated machine acted as the
    /// jobtracker, while the tasktrackers were co-deployed with the
    /// datanodes/providers" — i.e. on nodes 23.. of the 270-node layouts.
    pub fn paper(spec: &ClusterSpec) -> MrConfig {
        assert!(spec.nodes >= 30);
        MrConfig {
            jobtracker: NodeId(2),
            tasktrackers: (23..spec.nodes).map(NodeId).collect(),
            map_slots: 2,
            reduce_slots: 2,
            heartbeat_ns: 1_000 * fabric::MILLIS,
            locality_delay_ns: 1_500 * fabric::MILLIS,
        }
    }

    /// Small layout for functional tests (fast heartbeats).
    pub fn compact(spec: &ClusterSpec) -> MrConfig {
        MrConfig {
            jobtracker: NodeId(0),
            tasktrackers: spec.all_nodes().collect(),
            map_slots: 2,
            reduce_slots: 2,
            heartbeat_ns: 10 * fabric::MILLIS,
            locality_delay_ns: 15 * fabric::MILLIS,
        }
    }

    pub fn with_slots(mut self, map: u32, reduce: u32) -> Self {
        self.map_slots = map;
        self.reduce_slots = reduce;
        self
    }

    pub fn with_heartbeat_ns(mut self, hb: u64) -> Self {
        self.heartbeat_ns = hb;
        self.locality_delay_ns = hb + hb / 2;
        self
    }
}

enum Assignment {
    Map(MapTaskSpec),
    Reduce(ReduceTaskSpec),
}

enum JtMsg {
    Submit {
        conf: JobConf,
        done: Gate,
        slot: Arc<Mutex<Option<JobResult>>>,
    },
    Heartbeat {
        node: NodeId,
        free_map: u32,
        free_reduce: u32,
        reply: Queue<Vec<Assignment>>,
    },
    MapDone {
        job: u64,
        task: u32,
        node: NodeId,
        /// Deliveries this task's publication produced (threshold flush or
        /// direct per-task segment), forwarded to every reducer feed.
        deliveries: Vec<DeliverySpec>,
    },
    /// A node's final combine flush finished (spawned by the jobtracker
    /// once the node's map share completed).
    FlushDone {
        job: u64,
        delivery: Option<DeliverySpec>,
    },
    /// `node` lost its local map-output store; `lost` lists, per job, the
    /// completed tasks whose output went with it.
    OutputsLost {
        node: NodeId,
        lost: Vec<(u64, Vec<u32>)>,
    },
    ReduceDone {
        job: u64,
    },
    TaskFailed {
        job: u64,
        detail: String,
    },
}

struct JobState {
    ctx: Arc<JobCtx>,
    done: Gate,
    slot: Arc<Mutex<Option<JobResult>>>,
    /// `(task, available_since_ns)`
    pending_maps: Vec<(MapTaskSpec, u64)>,
    /// Every planned map spec, kept for re-queuing after output loss.
    specs: BTreeMap<u32, MapTaskSpec>,
    /// Tasks whose completion is currently counted (removed on re-queue, so
    /// duplicate `MapDone`s stay idempotent).
    completed: BTreeSet<u32>,
    maps_total: u32,
    maps_done: u32,
    pending_reduces: Vec<u32>,
    reduces_done: u32,
    /// One delivery feed per reduce partition, filled as outputs publish.
    feeds: Vec<Queue<DeliverySpec>>,
    /// Maps in flight per tasktracker node (gates the final flush).
    node_outstanding: BTreeMap<u32, u32>,
    /// Nodes that received at least one map of this job.
    seen_nodes: BTreeSet<u32>,
    /// Nodes whose final flush was already spawned (cleared when a node
    /// gets new work, e.g. a re-queued task).
    flushed_nodes: BTreeSet<u32>,
    started_ns: SimTime,
}

/// Handle to a submitted job.
#[derive(Clone)]
pub struct JobHandle {
    done: Gate,
    slot: Arc<Mutex<Option<JobResult>>>,
}

impl JobHandle {
    /// Block the calling process until the job completes; panics if it
    /// failed.
    pub fn wait(&self, p: &Proc) -> JobResult {
        self.done.wait(p);
        self.result().expect("job finished without a result")
    }

    /// Non-blocking result probe.
    pub fn result(&self) -> Option<JobResult> {
        self.slot.lock().clone()
    }

    /// Has the job finished?
    pub fn is_done(&self) -> bool {
        self.done.is_set()
    }
}

/// A running Map/Reduce deployment bound to one file system.
#[derive(Clone)]
pub struct MrCluster {
    fabric: Fabric,
    fs: Arc<dyn FileSystem>,
    config: MrConfig,
    inbox: Queue<JtMsg>,
    registry: Arc<MapOutputRegistry>,
    combiner: Arc<NodeCombiner>,
    shutdown: Gate,
}

impl MrCluster {
    /// Spawn the jobtracker and all tasktrackers. Call
    /// [`MrCluster::shutdown`] when done so `fabric.run()` can terminate.
    pub fn start(fabric: &Fabric, fs: Arc<dyn FileSystem>, config: MrConfig) -> MrCluster {
        let inbox: Queue<JtMsg> = fabric.queue();
        let registry = MapOutputRegistry::new();
        let combiner = NodeCombiner::new(registry.clone());
        let shutdown = fabric.gate();
        let cluster = MrCluster {
            fabric: fabric.clone(),
            fs,
            config,
            inbox,
            registry,
            combiner,
            shutdown,
        };
        cluster.spawn_jobtracker();
        for (i, &node) in cluster.config.tasktrackers.clone().iter().enumerate() {
            cluster.spawn_tasktracker(i as u32, node);
        }
        cluster
    }

    /// Submit a job; the returned handle completes when the job does.
    pub fn submit(&self, conf: JobConf) -> JobHandle {
        let done = self.fabric.gate();
        let slot = Arc::new(Mutex::new(None));
        let handle = JobHandle {
            done: done.clone(),
            slot: slot.clone(),
        };
        self.inbox.send(JtMsg::Submit { conf, done, slot });
        handle
    }

    /// Stop the tasktracker heartbeat loops and the jobtracker. In-flight
    /// jobs must be waited on *before* calling this.
    pub fn shutdown(&self) {
        self.shutdown.set();
        self.inbox.close();
    }

    /// The shuffle registry (diagnostics).
    pub fn registry(&self) -> &Arc<MapOutputRegistry> {
        &self.registry
    }

    /// The tier-2 node-combine stage (diagnostics).
    pub fn node_combiner(&self) -> &Arc<NodeCombiner> {
        &self.combiner
    }

    /// Model `node` losing its local map-output store mid-job (a tasktracker
    /// crash that keeps the process but wipes the shuffle spool). Drops the
    /// node's published segments and combine buffers and tells the
    /// jobtracker to re-queue the tasks whose output was buried there.
    pub fn lose_map_outputs(&self, node: NodeId) {
        let mut lost: BTreeMap<u64, Vec<u32>> = BTreeMap::new();
        for (job, task) in self.registry.drop_host(node) {
            lost.entry(job).or_default().push(task);
        }
        for (job, tasks) in self.combiner.drop_node(node) {
            lost.entry(job).or_default().extend(tasks);
        }
        let lost: Vec<(u64, Vec<u32>)> = lost
            .into_iter()
            .map(|(job, mut tasks)| {
                tasks.sort_unstable();
                tasks.dedup();
                (job, tasks)
            })
            .collect();
        self.inbox.send(JtMsg::OutputsLost { node, lost });
    }

    fn spawn_jobtracker(&self) {
        let inbox = self.inbox.clone();
        let fs = self.fs.clone();
        let fabric = self.fabric.clone();
        let registry = self.registry.clone();
        let combiner = self.combiner.clone();
        let jt_node = self.config.jobtracker;
        let locality_delay = self.config.locality_delay_ns;
        self.fabric.spawn(jt_node, "jobtracker", move |p| {
            let mut jobs: HashMap<u64, JobState> = HashMap::new();
            let mut order: Vec<u64> = Vec::new(); // FIFO priority
            let mut next_job: u64 = 1;
            while let Some(msg) = inbox.recv(p) {
                match msg {
                    JtMsg::Submit { conf, done, slot } => {
                        let id = next_job;
                        next_job += 1;
                        match plan_job(p, &fs, id, conf, done.clone(), slot) {
                            Ok(state) => {
                                order.push(id);
                                jobs.insert(id, state);
                            }
                            Err(e) => panic!("job planning failed: {e}"),
                        }
                    }
                    JtMsg::Heartbeat {
                        node,
                        free_map,
                        free_reduce,
                        reply,
                    } => {
                        let mut out = Vec::new();
                        let mut free_map = free_map;
                        let mut free_reduce = free_reduce;
                        for id in &order {
                            let st = jobs.get_mut(id).expect("job in order map");
                            // Map tasks: node-local first; non-local only
                            // after the task waited `locality_delay` for a
                            // local taker (light delay scheduling). At most
                            // one map is handed out per heartbeat, as in
                            // Hadoop 0.20 — this also stops one tracker
                            // hoarding several co-located compute-heavy maps.
                            let now = p.now();
                            let mut maps_this_hb = 0u32;
                            while free_map > 0 && maps_this_hb == 0 && !st.pending_maps.is_empty() {
                                let local = st
                                    .pending_maps
                                    .iter()
                                    .position(|(t, _)| t.hosts.contains(&node));
                                let idx = match local {
                                    Some(i) => i,
                                    None => {
                                        let Some(i) =
                                            st.pending_maps.iter().position(|(_, since)| {
                                                now.saturating_sub(*since) > locality_delay
                                            })
                                        else {
                                            break; // all held for local takers
                                        };
                                        i
                                    }
                                };
                                let (task, _) = st.pending_maps.swap_remove(idx);
                                *st.node_outstanding.entry(node.0).or_insert(0) += 1;
                                st.seen_nodes.insert(node.0);
                                st.flushed_nodes.remove(&node.0);
                                out.push(Assignment::Map(task));
                                free_map -= 1;
                                maps_this_hb += 1;
                            }
                            // This heartbeat may have drained the map queue;
                            // idle nodes can flush without waiting for the
                            // last in-flight map elsewhere.
                            maybe_flush_idle_nodes(&fabric, &combiner, &inbox, *id, st);
                            // Reduce tasks stream: assigned from the first
                            // heartbeat (no map-phase barrier) — each carries
                            // its delivery feed and fetches as maps publish.
                            while free_reduce > 0 && !st.pending_reduces.is_empty() {
                                let r = st.pending_reduces.pop().expect("nonempty");
                                let feed = st
                                    .feeds
                                    .get(r as usize)
                                    .cloned()
                                    .expect("one feed per partition");
                                out.push(Assignment::Reduce(ReduceTaskSpec {
                                    job: st.ctx.clone(),
                                    partition: r,
                                    map_count: st.maps_total,
                                    feed,
                                }));
                                free_reduce -= 1;
                            }
                        }
                        reply.send(out);
                    }
                    JtMsg::MapDone {
                        job,
                        task,
                        node,
                        deliveries,
                    } => {
                        if let Some(st) = jobs.get_mut(&job) {
                            if st.completed.insert(task) {
                                st.maps_done += 1;
                                st.ctx.counters.add(&st.ctx.counters.maps_completed, 1);
                            }
                            if let Some(o) = st.node_outstanding.get_mut(&node.0) {
                                *o = o.saturating_sub(1);
                            }
                            for d in &deliveries {
                                announce(st, d);
                            }
                            maybe_flush_idle_nodes(&fabric, &combiner, &inbox, job, st);
                        }
                    }
                    JtMsg::FlushDone { job, delivery } => {
                        if let Some(st) = jobs.get_mut(&job) {
                            if let Some(d) = delivery {
                                announce(st, &d);
                            }
                        }
                    }
                    JtMsg::OutputsLost { node, lost } => {
                        for (job, tasks) in lost {
                            let Some(st) = jobs.get_mut(&job) else {
                                continue;
                            };
                            for t in tasks {
                                let Some(orig) = st.specs.get(&t) else {
                                    continue;
                                };
                                let mut spec = orig.clone();
                                spec.rerun = true;
                                if st.completed.remove(&t) {
                                    st.maps_done -= 1;
                                    st.ctx
                                        .counters
                                        .maps_completed
                                        .fetch_sub(1, Ordering::Relaxed);
                                }
                                st.pending_maps.push((spec, p.now()));
                            }
                            st.flushed_nodes.remove(&node.0);
                        }
                    }
                    JtMsg::ReduceDone { job } => {
                        let finished = {
                            let st = jobs.get_mut(&job).expect("reduce for known job");
                            st.reduces_done += 1;
                            st.reduces_done == st.ctx.conf.num_reducers
                        };
                        if finished {
                            let st = jobs.remove(&job).expect("known job");
                            order.retain(|&x| x != job);
                            finalize_job(p, &fs, &fabric, &registry, &combiner, st);
                        }
                    }
                    JtMsg::TaskFailed { job, detail } => {
                        // Production Hadoop retries; here a task failure is a
                        // correctness bug, so fail loudly with context.
                        panic!("task of job {job} failed: {detail}");
                    }
                }
            }
        });
    }

    fn spawn_tasktracker(&self, tt_id: u32, node: NodeId) {
        let inbox = self.inbox.clone();
        let fs = self.fs.clone();
        let registry = self.registry.clone();
        let combiner = self.combiner.clone();
        let shutdown = self.shutdown.clone();
        let fabric = self.fabric.clone();
        let config = self.config.clone();
        self.fabric
            .spawn(node, format!("tasktracker-{tt_id}"), move |p| {
                let running_maps = Arc::new(AtomicU32::new(0));
                let running_reduces = Arc::new(AtomicU32::new(0));
                let reply: Queue<Vec<Assignment>> = p.fabric().queue();
                loop {
                    if shutdown.is_set() {
                        break;
                    }
                    // Heartbeat: a small control RPC to the jobtracker node.
                    p.rpc(config.jobtracker, 128, 128);
                    let hb = JtMsg::Heartbeat {
                        node,
                        free_map: config
                            .map_slots
                            .saturating_sub(running_maps.load(Ordering::Relaxed)),
                        free_reduce: config
                            .reduce_slots
                            .saturating_sub(running_reduces.load(Ordering::Relaxed)),
                        reply: reply.clone(),
                    };
                    if !inbox.send(hb) {
                        break; // jobtracker shut down
                    }
                    let Some(assignments) = reply.recv(p) else {
                        break;
                    };
                    for a in assignments {
                        match a {
                            Assignment::Map(spec) => {
                                running_maps.fetch_add(1, Ordering::Relaxed);
                                let fs2 = fs.clone();
                                let comb2 = combiner.clone();
                                let inbox2 = inbox.clone();
                                let rm = running_maps.clone();
                                fabric.spawn(
                                    node,
                                    format!("map-{}-{}", spec.job.id, spec.task_id),
                                    move |tp| {
                                        let res = run_map_task(tp, &fs2, &comb2, &spec);
                                        let msg = match res {
                                            Ok(deliveries) => JtMsg::MapDone {
                                                job: spec.job.id,
                                                task: spec.task_id,
                                                node: tp.node(),
                                                deliveries,
                                            },
                                            Err(e) => JtMsg::TaskFailed {
                                                job: spec.job.id,
                                                detail: e,
                                            },
                                        };
                                        rm.fetch_sub(1, Ordering::Relaxed);
                                        inbox2.send(msg);
                                    },
                                );
                            }
                            Assignment::Reduce(spec) => {
                                running_reduces.fetch_add(1, Ordering::Relaxed);
                                let fs2 = fs.clone();
                                let reg2 = registry.clone();
                                let inbox2 = inbox.clone();
                                let rr = running_reduces.clone();
                                fabric.spawn(
                                    node,
                                    format!("reduce-{}-{}", spec.job.id, spec.partition),
                                    move |tp| {
                                        let res = run_reduce_task(tp, &fs2, &reg2, &spec);
                                        let msg = match res {
                                            Ok(()) => JtMsg::ReduceDone { job: spec.job.id },
                                            Err(e) => JtMsg::TaskFailed {
                                                job: spec.job.id,
                                                detail: e,
                                            },
                                        };
                                        rr.fetch_sub(1, Ordering::Relaxed);
                                        inbox2.send(msg);
                                    },
                                );
                            }
                        }
                    }
                    p.sleep(config.heartbeat_ns);
                }
            });
    }
}

/// Forward a delivery to every reducer's feed.
fn announce(st: &JobState, d: &DeliverySpec) {
    for feed in &st.feeds {
        feed.send(d.clone());
    }
}

/// Once the map queue is drained, spawn the final combine flush on every
/// node whose map share is complete (no map in flight) and not yet flushed.
/// A node that later receives re-queued work is cleared from
/// `flushed_nodes` and will flush again.
fn maybe_flush_idle_nodes(
    fabric: &Fabric,
    combiner: &Arc<NodeCombiner>,
    inbox: &Queue<JtMsg>,
    job: u64,
    st: &mut JobState,
) {
    if !st.pending_maps.is_empty() || !st.ctx.conf.shuffle.node_combine {
        return;
    }
    let idle: Vec<u32> = st
        .seen_nodes
        .iter()
        .copied()
        .filter(|n| {
            st.node_outstanding.get(n).copied().unwrap_or(0) == 0 && !st.flushed_nodes.contains(n)
        })
        .collect();
    for n in idle {
        st.flushed_nodes.insert(n);
        let comb2 = combiner.clone();
        let inbox2 = inbox.clone();
        let ctx = st.ctx.clone();
        fabric.spawn(NodeId(n), format!("combine-flush-{job}-{n}"), move |tp| {
            let delivery = comb2.complete_node(tp, &ctx, tp.node());
            inbox2.send(JtMsg::FlushDone { job, delivery });
        });
    }
}

/// Plan a job: compute input splits from block locations, prepare the
/// output directory (and, in shared-append mode, the single output file),
/// and create the per-reducer delivery feeds.
fn plan_job(
    p: &Proc,
    fs: &Arc<dyn FileSystem>,
    id: u64,
    conf: JobConf,
    done: Gate,
    slot: Arc<Mutex<Option<JobResult>>>,
) -> Result<JobState, String> {
    fs.mkdirs(p, &conf.output_dir)
        .map_err(|e| format!("mkdir {}: {e}", conf.output_dir))?;
    if conf.output_mode == OutputMode::SharedAppendFile {
        let shared = conf.shared_output_file();
        let mut w = fs
            .create(p, &shared)
            .map_err(|e| format!("create shared output {shared}: {e}"))?;
        w.close(p)
            .map_err(|e| format!("close shared output: {e}"))?;
    }

    let ctx = Arc::new(JobCtx {
        id,
        conf,
        counters: Arc::new(JobCounters::default()),
    });
    let mut pending_maps = Vec::new();
    for input in &ctx.conf.inputs {
        let st = fs
            .status(p, input)
            .map_err(|e| format!("input {input}: {e}"))?;
        if st.len == 0 {
            continue;
        }
        // One map task per block, as the paper describes ("the Hadoop
        // framework starts a mapper to process each input chunk").
        let locs = fs
            .block_locations(p, input, 0, st.len)
            .map_err(|e| format!("locations of {input}: {e}"))?;
        for loc in locs {
            let task_id = pending_maps.len() as u32;
            pending_maps.push((
                MapTaskSpec {
                    job: ctx.clone(),
                    task_id,
                    file: input.clone(),
                    offset: loc.offset,
                    len: loc.len,
                    hosts: loc.hosts,
                    rerun: false,
                },
                p.now(),
            ));
        }
    }
    let specs: BTreeMap<u32, MapTaskSpec> = pending_maps
        .iter()
        .map(|(t, _)| (t.task_id, t.clone()))
        .collect();
    let maps_total = pending_maps.len() as u32;
    let pending_reduces: Vec<u32> = (0..ctx.conf.num_reducers).rev().collect();
    let feeds: Vec<Queue<DeliverySpec>> = (0..ctx.conf.num_reducers)
        .map(|_| p.fabric().queue())
        .collect();
    Ok(JobState {
        ctx,
        done,
        slot,
        pending_maps,
        specs,
        completed: BTreeSet::new(),
        maps_total,
        maps_done: 0,
        pending_reduces,
        reduces_done: 0,
        feeds,
        node_outstanding: BTreeMap::new(),
        seen_nodes: BTreeSet::new(),
        flushed_nodes: BTreeSet::new(),
        started_ns: p.now(),
    })
}

fn finalize_job(
    p: &Proc,
    fs: &Arc<dyn FileSystem>,
    fabric: &Fabric,
    registry: &Arc<MapOutputRegistry>,
    combiner: &Arc<NodeCombiner>,
    st: JobState,
) {
    let conf = &st.ctx.conf;
    // Remove the _temporary staging dir (original mode) and count the files
    // the job left behind — the paper's file-count metric.
    let tmp = conf
        .output_dir
        .child("_temporary")
        .expect("valid component");
    let _ = fs.delete(p, &tmp, true);
    let output_files = fs.count_files(p, &conf.output_dir).unwrap_or(0);

    registry.drop_job(st.ctx.id);
    combiner.drop_job(st.ctx.id);
    let c = &st.ctx.counters;
    use std::sync::atomic::Ordering::Relaxed;
    let result = JobResult {
        name: conf.name.clone(),
        job_id: st.ctx.id,
        maps: st.maps_total,
        reduces: conf.num_reducers,
        started_ns: st.started_ns,
        finished_ns: fabric.now(),
        map_input_bytes: c.map_input_bytes.load(Relaxed),
        map_output_bytes: c.map_output_bytes.load(Relaxed),
        shuffle_bytes: c.shuffle_bytes.load(Relaxed),
        reduce_output_bytes: c.reduce_output_bytes.load(Relaxed),
        data_local_maps: c.data_local_maps.load(Relaxed),
        remote_maps: c.remote_maps.load(Relaxed),
        combined_segments: c.combined_segments.load(Relaxed),
        combine_saved_bytes: c.combine_saved_bytes.load(Relaxed),
        early_shuffle_fetches: c.early_shuffle_fetches.load(Relaxed),
        output_files,
    };
    *st.slot.lock() = Some(result);
    st.done.set();
}
