//! Record formats: newline-delimited text input (with the Hadoop
//! record-boundary rule for splits) and a length-prefixed binary codec for
//! intermediate data.

use bytes::Bytes;
use fabric::Payload;

use crate::api::KV;

/// Parse `key TAB value` from a text line (Hadoop's
/// `KeyValueTextInputFormat`); lines without a tab map to `(line, "")`.
pub fn split_tab(line: &[u8]) -> (&[u8], &[u8]) {
    match line.iter().position(|&b| b == b'\t') {
        Some(i) => (&line[..i], &line[i + 1..]),
        None => (line, &[][..]),
    }
}

/// Iterate complete lines of `data` (without trailing newline bytes).
/// A final unterminated line is yielded too.
pub fn lines(data: &[u8]) -> impl Iterator<Item = &[u8]> {
    data.split(|&b| b == b'\n').filter(|l| !l.is_empty())
}

/// Extract the records of a *split* per Hadoop's `LineRecordReader` rule:
/// a non-first split discards everything through the first newline (the
/// tail of a record owned by its predecessor — or a whole record that
/// started exactly at the boundary), then consumes records as long as they
/// *start at or before* the split end. Net effect: a record starting at
/// offset `o` belongs to the split `[s, e)` with `s < o <= e` (offset 0 to
/// the first split), so every record is owned exactly once for any split
/// size.
///
/// `window` must hold the file bytes from `start` through at least the end
/// of the last owned record (callers over-read past the split end).
pub fn split_records(window: &[u8], start: u64, len: u64) -> Vec<&[u8]> {
    let mut pos: usize = if start == 0 {
        0
    } else {
        match window.iter().position(|&b| b == b'\n') {
            Some(i) => i + 1,
            None => return Vec::new(), // no record boundary in the window
        }
    };
    let mut out = Vec::new();
    while (pos as u64) <= len && pos < window.len() {
        let rest = &window[pos..];
        let (line, consumed) = match rest.iter().position(|&b| b == b'\n') {
            Some(i) => (&rest[..i], i + 1),
            None => (rest, rest.len()),
        };
        if !line.is_empty() {
            out.push(line);
        }
        pos += consumed;
    }
    out
}

/// Binary codec for intermediate (map-output) data:
/// `[key_len u32][val_len u32][key][value]`*.
pub fn encode_kvs(kvs: &[KV]) -> Payload {
    let total: usize = kvs.iter().map(|kv| 8 + kv.key.len() + kv.value.len()).sum();
    let mut buf = Vec::with_capacity(total);
    for kv in kvs {
        buf.extend_from_slice(&(kv.key.len() as u32).to_le_bytes());
        buf.extend_from_slice(&(kv.value.len() as u32).to_le_bytes());
        buf.extend_from_slice(&kv.key);
        buf.extend_from_slice(&kv.value);
    }
    Payload::from_vec(buf)
}

/// Decode the binary intermediate format.
pub fn decode_kvs(data: &Bytes) -> Vec<KV> {
    let mut out = Vec::new();
    let mut pos = 0usize;
    while pos + 8 <= data.len() {
        let klen = u32::from_le_bytes(data[pos..pos + 4].try_into().unwrap()) as usize;
        let vlen = u32::from_le_bytes(data[pos + 4..pos + 8].try_into().unwrap()) as usize;
        pos += 8;
        assert!(pos + klen + vlen <= data.len(), "torn intermediate record");
        out.push(KV {
            key: data[pos..pos + klen].to_vec(),
            value: data[pos + klen..pos + klen + vlen].to_vec(),
        });
        pos += klen + vlen;
    }
    out
}

/// Sort records by key (then value, for determinism) and group equal keys:
/// the merge step in front of `reduce`.
pub fn sort_and_group(mut kvs: Vec<KV>) -> Vec<(Vec<u8>, Vec<Vec<u8>>)> {
    kvs.sort();
    group_sorted(kvs)
}

/// Group equal keys of an already fully-sorted record stream (the cheap
/// half of [`sort_and_group`], for callers that merged sorted runs).
pub fn group_sorted(kvs: Vec<KV>) -> Vec<(Vec<u8>, Vec<Vec<u8>>)> {
    let mut out: Vec<(Vec<u8>, Vec<Vec<u8>>)> = Vec::new();
    for kv in kvs {
        match out.last_mut() {
            Some((k, vals)) if *k == kv.key => vals.push(kv.value),
            _ => out.push((kv.key, vec![kv.value])),
        }
    }
    out
}

/// K-way merge of sorted runs into one fully `(key, value)`-sorted stream —
/// the incremental merge behind the streaming shuffle and the node-local
/// combine stage. Equal records tie-break by run index, so the result is
/// deterministic and byte-identical to `sort`ing the concatenation (KV
/// ordering is total: key, then value).
pub fn merge_sorted_runs(runs: Vec<Vec<KV>>) -> Vec<KV> {
    use std::cmp::Reverse;
    use std::collections::BinaryHeap;

    let total: usize = runs.iter().map(Vec::len).sum();
    let mut iters: Vec<std::vec::IntoIter<KV>> = runs.into_iter().map(Vec::into_iter).collect();
    let mut heap: BinaryHeap<Reverse<(KV, usize)>> = BinaryHeap::with_capacity(iters.len());
    for (i, it) in iters.iter_mut().enumerate() {
        if let Some(kv) = it.next() {
            heap.push(Reverse((kv, i)));
        }
    }
    let mut out = Vec::with_capacity(total);
    while let Some(Reverse((kv, i))) = heap.pop() {
        if let Some(next) = iters.get_mut(i).and_then(Iterator::next) {
            heap.push(Reverse((next, i)));
        }
        out.push(kv);
    }
    out
}

/// Render records as `key TAB value NL` text (job output format).
pub fn to_text(kvs: &[KV]) -> Payload {
    let total: usize = kvs.iter().map(|kv| kv.key.len() + kv.value.len() + 2).sum();
    let mut buf = Vec::with_capacity(total);
    for kv in kvs {
        buf.extend_from_slice(&kv.key);
        buf.push(b'\t');
        buf.extend_from_slice(&kv.value);
        buf.push(b'\n');
    }
    Payload::from_vec(buf)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tab_splitting() {
        assert_eq!(split_tab(b"k\tv"), (&b"k"[..], &b"v"[..]));
        assert_eq!(split_tab(b"k\tv\tw"), (&b"k"[..], &b"v\tw"[..]));
        assert_eq!(split_tab(b"plain"), (&b"plain"[..], &b""[..]));
    }

    #[test]
    fn kv_codec_roundtrip() {
        let kvs = vec![
            KV::new("a", "1"),
            KV::new("", ""),
            KV::new("key with spaces", "value\twith\ttabs"),
        ];
        let enc = encode_kvs(&kvs);
        let dec = decode_kvs(enc.bytes());
        assert_eq!(dec, kvs);
    }

    #[test]
    fn grouping_merges_equal_keys() {
        let kvs = vec![
            KV::new("b", "2"),
            KV::new("a", "1"),
            KV::new("b", "1"),
            KV::new("a", "0"),
        ];
        let grouped = sort_and_group(kvs);
        assert_eq!(
            grouped,
            vec![
                (b"a".to_vec(), vec![b"0".to_vec(), b"1".to_vec()]),
                (b"b".to_vec(), vec![b"1".to_vec(), b"2".to_vec()]),
            ]
        );
    }

    #[test]
    fn split_records_cover_file_exactly_once() {
        // The Hadoop invariant: any split size covers every record exactly
        // once across all splits.
        let file = b"one\ntwo\nthree\nfour\nfive\nsix7890\nlast";
        for split_len in [5u64, 7, 10, 13, 100] {
            let mut got: Vec<Vec<u8>> = Vec::new();
            let mut start = 0u64;
            while start < file.len() as u64 {
                let len = split_len.min(file.len() as u64 - start);
                let window = &file[start as usize..];
                for r in split_records(window, start, len) {
                    got.push(r.to_vec());
                }
                start += len;
            }
            let want: Vec<Vec<u8>> = lines(file).map(|l| l.to_vec()).collect();
            assert_eq!(got, want, "split_len={split_len}");
        }
    }

    #[test]
    fn merge_sorted_runs_matches_global_sort() {
        // Byte-identity contract: merging sorted runs must equal sorting the
        // concatenation, for any run shapes (incl. empty runs / no runs).
        let cases: Vec<Vec<Vec<KV>>> = vec![
            vec![],
            vec![vec![]],
            vec![vec![KV::new("a", "1")], vec![]],
            vec![
                vec![KV::new("a", "1"), KV::new("c", "3")],
                vec![KV::new("a", "0"), KV::new("b", "2")],
                vec![KV::new("c", "1"), KV::new("c", "2")],
            ],
            vec![
                vec![KV::new("x", "1"), KV::new("x", "1")],
                vec![KV::new("x", "1")],
            ],
        ];
        for runs in cases {
            let mut flat: Vec<KV> = runs.iter().flatten().cloned().collect();
            flat.sort();
            let mut sorted_runs = runs;
            for r in &mut sorted_runs {
                r.sort();
            }
            assert_eq!(merge_sorted_runs(sorted_runs), flat);
        }
    }

    #[test]
    fn group_sorted_equals_sort_and_group_on_sorted_input() {
        let mut kvs = vec![
            KV::new("b", "2"),
            KV::new("a", "1"),
            KV::new("b", "1"),
            KV::new("a", "0"),
        ];
        kvs.sort();
        assert_eq!(group_sorted(kvs.clone()), sort_and_group(kvs));
    }

    #[test]
    fn text_rendering() {
        let out = to_text(&[KV::new("k", "v"), KV::new("x", "y")]);
        assert_eq!(out.bytes().as_ref(), b"k\tv\nx\ty\n");
    }
}
