//! Task execution: the work a tasktracker performs for one map or reduce
//! task, against any [`dfs::FileSystem`].

use std::sync::Arc;

use dfs::{DfsPath, FileSystem};
use fabric::sync::Queue;
use fabric::{NodeId, Payload, Proc};

use crate::api::{partition_for, KV};
use crate::job::{JobCtx, OutputMode};
use crate::record::{
    decode_kvs, encode_kvs, group_sorted, merge_sorted_runs, sort_and_group, split_records, to_text,
};
use crate::shuffle::{DeliverySpec, MapOutputRegistry, NodeCombiner, SegmentKey, SegmentSource};

/// Assignment of one input split to a map task.
#[derive(Clone)]
pub struct MapTaskSpec {
    pub job: Arc<JobCtx>,
    pub task_id: u32,
    pub file: DfsPath,
    pub offset: u64,
    pub len: u64,
    /// Nodes holding the split's block (for locality accounting).
    pub hosts: Vec<NodeId>,
    /// Re-queued after the original's output was lost: bypass the tier-2
    /// buffer and publish per-task so the replacement lands promptly and
    /// never overlaps an already-announced flush set.
    pub rerun: bool,
}

/// Assignment of one partition to a reduce task.
#[derive(Clone)]
pub struct ReduceTaskSpec {
    pub job: Arc<JobCtx>,
    pub partition: u32,
    /// Number of map tasks whose output must be obtained.
    pub map_count: u32,
    /// Streaming delivery feed: the jobtracker forwards every published
    /// [`DeliverySpec`] here as the map phase progresses.
    pub feed: Queue<DeliverySpec>,
}

/// How far past the split end the reader looks for the record delimiter per
/// extension round.
const LOOKAHEAD: u64 = 64 * 1024;

/// Execute a map task: read the split, run the mapper (+ tier-1 combiner),
/// hand the partitioned output to the tier-2 node buffer (or publish
/// per-task when re-running / tier-2 off). Returns the deliveries this task
/// published — the tasktracker ships them to the jobtracker on `MapDone`
/// for streaming announcement; an error string means loud job failure.
pub fn run_map_task(
    p: &Proc,
    fs: &Arc<dyn FileSystem>,
    shuffle: &Arc<NodeCombiner>,
    spec: &MapTaskSpec,
) -> Result<Vec<DeliverySpec>, String> {
    let ctx = &spec.job;
    let conf = &ctx.conf;
    let r = conf.num_reducers;
    let counters = &ctx.counters;

    if spec.hosts.contains(&p.node()) {
        counters.add(&counters.data_local_maps, 1);
    } else {
        counters.add(&counters.remote_maps, 1);
    }

    let mut reader = fs
        .open(p, &spec.file)
        .map_err(|e| format!("map open {}: {e}", spec.file))?;
    let file_len = reader.len();
    let end = (spec.offset + spec.len).min(file_len);
    let split_len = end.saturating_sub(spec.offset);
    counters.add(&counters.map_input_bytes, split_len);

    let partitions: Vec<Payload> = if let Some(profile) = conf.ghost {
        // Profile mode: charge the read, the CPU, and emit sized ghosts.
        let data = reader
            .read_at(p, spec.offset, split_len)
            .map_err(|e| format!("map read: {e}"))?;
        debug_assert_eq!(data.len(), split_len);
        let records = split_len / profile.input_record_bytes.max(1);
        counters.add(&counters.map_input_records, records);
        p.compute(
            p.node(),
            (split_len as f64 * profile.map_cpu_per_byte) as u64,
        );
        let out_total = (split_len as f64 * profile.map_output_ratio) as u64;
        counters.add(&counters.map_output_bytes, out_total);
        counters.add(
            &counters.map_output_records,
            (out_total as f64 / profile.input_record_bytes.max(1) as f64) as u64,
        );
        let base = out_total / r as u64;
        let extra = (out_total % r as u64) as u32;
        (0..r)
            .map(|i| Payload::ghost(base + u64::from(i < extra)))
            .collect()
    } else {
        // Real mode: honor record boundaries across splits (read a window
        // that extends past the split end until a newline or EOF).
        let mut parts = vec![reader
            .read_at(p, spec.offset, split_len)
            .map_err(|e| format!("map read: {e}"))?];
        let mut probe = end;
        'extend: while probe < file_len {
            let n = LOOKAHEAD.min(file_len - probe);
            let chunk = reader
                .read_at(p, probe, n)
                .map_err(|e| format!("map lookahead: {e}"))?;
            let has_newline = chunk.bytes().contains(&b'\n');
            parts.push(chunk);
            probe += n;
            if has_newline {
                break 'extend;
            }
        }
        let window = Payload::concat(&parts);
        let window = window.bytes();

        let mut buffers: Vec<Vec<KV>> = (0..r).map(|_| Vec::new()).collect();
        let mut in_records = 0u64;
        let mut out_records = 0u64;
        let mut out_bytes = 0u64;
        for line in split_records(window, spec.offset, spec.len) {
            in_records += 1;
            let (k, v) = crate::record::split_tab(line);
            conf.user.mapper.map(k, v, &mut |kv: KV| {
                out_records += 1;
                out_bytes += kv.encoded_len();
                buffers[partition_for(&kv.key, r) as usize].push(kv);
            });
        }
        counters.add(&counters.map_input_records, in_records);
        counters.add(&counters.map_output_records, out_records);
        counters.add(&counters.map_output_bytes, out_bytes);

        buffers
            .into_iter()
            .map(|mut buf| {
                buf.sort();
                if let Some(combiner) = &conf.user.combiner {
                    let grouped = sort_and_group(buf);
                    let mut combined = Vec::new();
                    for (key, values) in grouped {
                        let mut it = values.iter().map(|v| v.as_slice());
                        combiner.reduce(&key, &mut it, &mut |kv| combined.push(kv));
                    }
                    combined.sort();
                    encode_kvs(&combined)
                } else {
                    encode_kvs(&buf)
                }
            })
            .collect()
    };

    let deliveries = if conf.shuffle.node_combine && !spec.rerun {
        shuffle.add(p, ctx, spec.task_id, partitions)
    } else {
        let registry = shuffle.registry();
        for (i, data) in partitions.into_iter().enumerate() {
            registry.publish(
                SegmentKey {
                    job: ctx.id,
                    source: SegmentSource::Task(spec.task_id),
                    partition: i as u32,
                },
                p.node(),
                data,
            );
        }
        vec![DeliverySpec {
            source: SegmentSource::Task(spec.task_id),
            tasks: vec![spec.task_id],
        }]
    };
    Ok(deliveries)
}

/// Collapse the reducer's buffered runs once this many accumulate, keeping
/// reduce-side memory bounded (Hadoop's merge factor, scaled down).
const MERGE_FANIN: usize = 8;

/// Execute a reduce task: *stream* the shuffle (fetch and merge deliveries
/// as the jobtracker announces them — no map-phase barrier), then group,
/// reduce and commit the output.
pub fn run_reduce_task(
    p: &Proc,
    fs: &Arc<dyn FileSystem>,
    registry: &Arc<MapOutputRegistry>,
    spec: &ReduceTaskSpec,
) -> Result<(), String> {
    let ctx = &spec.job;
    let conf = &ctx.conf;
    let counters = &ctx.counters;

    // Streaming shuffle: obtain every map task's contribution exactly once
    // by consuming announced deliveries. Each fetch batches whatever the
    // feed holds and rides one transfer per (holding-node, this reducer)
    // pair. A `None` answer means the segment was lost with its node — the
    // re-queued tasks' replacement deliveries cover it later.
    let map_count = spec.map_count as usize;
    let mut obtained = vec![false; map_count];
    let mut obtained_count = 0usize;
    let mut runs: Vec<Vec<KV>> = Vec::new();
    let mut ghost_bytes = 0u64;
    while obtained_count < map_count {
        let first = spec
            .feed
            .recv(p)
            .ok_or_else(|| format!("reduce {}: delivery feed closed early", spec.partition))?;
        let mut batch = vec![first];
        while let Some(d) = spec.feed.try_recv() {
            batch.push(d);
        }
        let mut keys = Vec::new();
        let mut pend: Vec<DeliverySpec> = Vec::new();
        for d in batch {
            let done = d
                .tasks
                .iter()
                .filter(|&&t| obtained.get(t as usize).copied().unwrap_or(false))
                .count();
            if done == d.tasks.len() {
                continue; // duplicate announcement (re-run); already merged
            }
            if done > 0 {
                // Structurally prevented (flush sets are disjoint and
                // re-runs are per-task); a partial overlap would silently
                // double-count records, so fail loudly.
                return Err(format!(
                    "reduce {}: delivery {} partially obtained — combine invariant broken",
                    spec.partition, d.source
                ));
            }
            keys.push(SegmentKey {
                job: ctx.id,
                source: d.source,
                partition: spec.partition,
            });
            pend.push(d);
        }
        if keys.is_empty() {
            continue;
        }
        if (counters
            .maps_completed
            .load(std::sync::atomic::Ordering::Relaxed) as usize)
            < map_count
        {
            counters.add(&counters.early_shuffle_fetches, 1);
        }
        for (d, seg) in pend.into_iter().zip(registry.fetch_many(p, &keys)) {
            let Some(seg) = seg else {
                continue; // lost with its node; replacements will arrive
            };
            counters.add(&counters.shuffle_bytes, seg.len());
            for &t in &d.tasks {
                if let Some(slot) = obtained.get_mut(t as usize) {
                    if !*slot {
                        *slot = true;
                        obtained_count += 1;
                    }
                }
            }
            if conf.ghost.is_some() {
                ghost_bytes += seg.len();
            } else {
                // Every published segment is fully (key, value)-sorted, so
                // it joins the incremental k-way merge as one run.
                runs.push(decode_kvs(seg.bytes()));
                if runs.len() >= MERGE_FANIN {
                    runs = vec![merge_sorted_runs(std::mem::take(&mut runs))];
                }
            }
        }
    }

    // Final merge + reduce.
    let output: Payload = if let Some(profile) = conf.ghost {
        let shuffled = ghost_bytes;
        p.compute(
            p.node(),
            (shuffled as f64 * profile.reduce_cpu_per_byte) as u64,
        );
        let out = (shuffled as f64 * profile.reduce_output_ratio) as u64;
        counters.add(
            &counters.reduce_input_records,
            shuffled / profile.input_record_bytes.max(1),
        );
        counters.add(&counters.reduce_output_bytes, out);
        Payload::ghost(out)
    } else {
        let merged = merge_sorted_runs(runs);
        counters.add(&counters.reduce_input_records, merged.len() as u64);
        let grouped = group_sorted(merged);
        let mut out_records = Vec::new();
        for (key, values) in grouped {
            let mut it = values.iter().map(|v| v.as_slice());
            conf.user
                .reducer
                .reduce(&key, &mut it, &mut |kv| out_records.push(kv));
        }
        counters.add(&counters.reduce_output_records, out_records.len() as u64);
        let payload = to_text(&out_records);
        counters.add(&counters.reduce_output_bytes, payload.len());
        payload
    };

    // Commit.
    match conf.output_mode {
        OutputMode::PerReducerFiles => {
            // Original Hadoop (paper Figure 1): unique temp file, then rename
            // into the output directory.
            let tmp = conf.temp_part_file(spec.partition);
            let mut w = fs
                .create(p, &tmp)
                .map_err(|e| format!("reduce create {tmp}: {e}"))?;
            w.write(p, output)
                .map_err(|e| format!("reduce write: {e}"))?;
            w.close(p).map_err(|e| format!("reduce close: {e}"))?;
            fs.rename(p, &tmp, &conf.part_file(spec.partition))
                .map_err(|e| format!("reduce commit rename: {e}"))?;
        }
        OutputMode::SharedAppendFile => {
            // Modified Hadoop (paper Figure 2): append to the single shared
            // output file — atomically, so concurrent reducers cannot tear
            // each other's records. Skip the append entirely for empty
            // outputs.
            if !output.is_empty() {
                let target = conf.shared_output_file();
                fs.append_all(p, &target, output)
                    .map_err(|e| format!("reduce append {target}: {e}"))?;
            }
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::api::{Mapper, Reducer, UserFns};
    use crate::job::{JobConf, JobCounters};
    use bsfs::Bsfs;
    use fabric::{ClusterSpec, Fabric};

    struct IdentityMap;
    impl Mapper for IdentityMap {
        fn map(&self, k: &[u8], v: &[u8], out: &mut dyn FnMut(KV)) {
            out(KV::new(k.to_vec(), v.to_vec()));
        }
    }
    struct ConcatReduce;
    impl Reducer for ConcatReduce {
        fn reduce(
            &self,
            key: &[u8],
            values: &mut dyn Iterator<Item = &[u8]>,
            out: &mut dyn FnMut(KV),
        ) {
            let joined: Vec<u8> = values.collect::<Vec<_>>().join(&b","[..]);
            out(KV::new(key.to_vec(), joined));
        }
    }

    #[test]
    fn map_then_reduce_end_to_end_single_tasks() {
        let fx = Fabric::sim(ClusterSpec::tiny(4));
        let fs = Bsfs::deploy(
            &fx,
            blobseer::BlobSeerConfig::test_small(4096),
            blobseer::Layout::compact(fx.spec()),
        )
        .unwrap();
        let h = fx.spawn(NodeId(0), "driver", move |p| {
            let fs: Arc<dyn FileSystem> = Arc::new(fs);
            fs.write_file(
                p,
                &DfsPath::new("/in").unwrap(),
                Payload::from_vec(b"b\t2\na\t1\nb\t3\n".to_vec()),
            )
            .unwrap();
            fs.mkdirs(p, &DfsPath::new("/out").unwrap()).unwrap();
            let conf = JobConf {
                name: "unit".into(),
                inputs: vec![DfsPath::new("/in").unwrap()],
                output_dir: DfsPath::new("/out").unwrap(),
                num_reducers: 1,
                output_mode: OutputMode::PerReducerFiles,
                user: UserFns {
                    mapper: Arc::new(IdentityMap),
                    reducer: Arc::new(ConcatReduce),
                    combiner: None,
                },
                ghost: None,
                shuffle: crate::job::ShuffleTuning::default(),
            };
            let ctx = Arc::new(JobCtx {
                id: 1,
                conf,
                counters: Arc::new(JobCounters::default()),
            });
            let registry = MapOutputRegistry::new();
            let shuffle = NodeCombiner::new(registry.clone());
            let mut deliveries = run_map_task(
                p,
                &fs,
                &shuffle,
                &MapTaskSpec {
                    job: ctx.clone(),
                    task_id: 0,
                    file: DfsPath::new("/in").unwrap(),
                    offset: 0,
                    len: 14,
                    hosts: vec![],
                    rerun: false,
                },
            )
            .unwrap();
            assert!(deliveries.is_empty(), "buffered until node completion");
            deliveries.extend(shuffle.complete_node(p, &ctx, p.node()));
            let feed = p.fabric().queue();
            for d in deliveries {
                feed.send(d);
            }
            run_reduce_task(
                p,
                &fs,
                &registry,
                &ReduceTaskSpec {
                    job: ctx.clone(),
                    partition: 0,
                    map_count: 1,
                    feed,
                },
            )
            .unwrap();
            let out = fs
                .read_file(p, &DfsPath::new("/out/part-00000").unwrap())
                .unwrap();
            assert_eq!(out.bytes().as_ref(), b"a\t1\nb\t2,3\n");
            assert_eq!(
                ctx.counters
                    .map_input_records
                    .load(std::sync::atomic::Ordering::Relaxed),
                3
            );
        });
        fx.run();
        h.take().unwrap();
    }

    /// A re-executed (or speculative) map task republished its output; the
    /// reduce must see it exactly once — last-writer-wins, no panic, no
    /// double-counted records (Hadoop's task re-run semantics).
    #[test]
    fn reexecuted_map_task_republishes_idempotently() {
        let fx = Fabric::sim(ClusterSpec::tiny(4));
        let fs = Bsfs::deploy(
            &fx,
            blobseer::BlobSeerConfig::test_small(4096),
            blobseer::Layout::compact(fx.spec()),
        )
        .unwrap();
        let h = fx.spawn(NodeId(0), "driver", move |p| {
            let fs: Arc<dyn FileSystem> = Arc::new(fs);
            fs.write_file(
                p,
                &DfsPath::new("/in").unwrap(),
                Payload::from_vec(b"b\t2\na\t1\nb\t3\n".to_vec()),
            )
            .unwrap();
            fs.mkdirs(p, &DfsPath::new("/out").unwrap()).unwrap();
            let conf = JobConf {
                name: "rerun".into(),
                inputs: vec![DfsPath::new("/in").unwrap()],
                output_dir: DfsPath::new("/out").unwrap(),
                num_reducers: 1,
                output_mode: OutputMode::PerReducerFiles,
                user: UserFns {
                    mapper: Arc::new(IdentityMap),
                    reducer: Arc::new(ConcatReduce),
                    combiner: None,
                },
                ghost: None,
                shuffle: crate::job::ShuffleTuning::default(),
            };
            let ctx = Arc::new(JobCtx {
                id: 1,
                conf,
                counters: Arc::new(JobCounters::default()),
            });
            let registry = MapOutputRegistry::new();
            let shuffle = NodeCombiner::new(registry.clone());
            let spec = MapTaskSpec {
                job: ctx.clone(),
                task_id: 0,
                file: DfsPath::new("/in").unwrap(),
                offset: 0,
                len: 14,
                hosts: vec![],
                rerun: false,
            };
            // The task runs twice — first attempt presumed lost, then the
            // re-execution replaces it in the node buffer (last-writer-wins
            // before combining).
            run_map_task(p, &fs, &shuffle, &spec).unwrap();
            run_map_task(p, &fs, &shuffle, &spec).unwrap();
            assert_eq!(registry.republished(), 1);
            let feed = p.fabric().queue();
            if let Some(d) = shuffle.complete_node(p, &ctx, p.node()) {
                feed.send(d);
            }
            run_reduce_task(
                p,
                &fs,
                &registry,
                &ReduceTaskSpec {
                    job: ctx.clone(),
                    partition: 0,
                    map_count: 1,
                    feed,
                },
            )
            .unwrap();
            let out = fs
                .read_file(p, &DfsPath::new("/out/part-00000").unwrap())
                .unwrap();
            assert_eq!(
                out.bytes().as_ref(),
                b"a\t1\nb\t2,3\n",
                "republished output must not double-count records"
            );
        });
        fx.run();
        h.take().unwrap();
    }
}
