//! Task execution: the work a tasktracker performs for one map or reduce
//! task, against any [`dfs::FileSystem`].

use std::sync::Arc;

use dfs::{DfsPath, FileSystem};
use fabric::{NodeId, Payload, Proc};

use crate::api::{partition_for, KV};
use crate::job::{JobCtx, OutputMode};
use crate::record::{decode_kvs, encode_kvs, sort_and_group, split_records, to_text};
use crate::shuffle::{MapOutputRegistry, SegmentKey};

/// Assignment of one input split to a map task.
#[derive(Clone)]
pub struct MapTaskSpec {
    pub job: Arc<JobCtx>,
    pub task_id: u32,
    pub file: DfsPath,
    pub offset: u64,
    pub len: u64,
    /// Nodes holding the split's block (for locality accounting).
    pub hosts: Vec<NodeId>,
}

/// Assignment of one partition to a reduce task.
#[derive(Clone)]
pub struct ReduceTaskSpec {
    pub job: Arc<JobCtx>,
    pub partition: u32,
    /// Number of map tasks whose output must be fetched.
    pub map_count: u32,
}

/// How far past the split end the reader looks for the record delimiter per
/// extension round.
const LOOKAHEAD: u64 = 64 * 1024;

/// Execute a map task. Returns an error string on failure (the jobtracker
/// turns it into a loud job failure).
pub fn run_map_task(
    p: &Proc,
    fs: &Arc<dyn FileSystem>,
    registry: &Arc<MapOutputRegistry>,
    spec: &MapTaskSpec,
) -> Result<(), String> {
    let ctx = &spec.job;
    let conf = &ctx.conf;
    let r = conf.num_reducers;
    let counters = &ctx.counters;

    if spec.hosts.contains(&p.node()) {
        counters.add(&counters.data_local_maps, 1);
    } else {
        counters.add(&counters.remote_maps, 1);
    }

    let mut reader = fs
        .open(p, &spec.file)
        .map_err(|e| format!("map open {}: {e}", spec.file))?;
    let file_len = reader.len();
    let end = (spec.offset + spec.len).min(file_len);
    let split_len = end.saturating_sub(spec.offset);
    counters.add(&counters.map_input_bytes, split_len);

    let partitions: Vec<Payload> = if let Some(profile) = conf.ghost {
        // Profile mode: charge the read, the CPU, and emit sized ghosts.
        let data = reader
            .read_at(p, spec.offset, split_len)
            .map_err(|e| format!("map read: {e}"))?;
        debug_assert_eq!(data.len(), split_len);
        let records = split_len / profile.input_record_bytes.max(1);
        counters.add(&counters.map_input_records, records);
        p.compute(
            p.node(),
            (split_len as f64 * profile.map_cpu_per_byte) as u64,
        );
        let out_total = (split_len as f64 * profile.map_output_ratio) as u64;
        counters.add(&counters.map_output_bytes, out_total);
        counters.add(
            &counters.map_output_records,
            (out_total as f64 / profile.input_record_bytes.max(1) as f64) as u64,
        );
        let base = out_total / r as u64;
        let extra = (out_total % r as u64) as u32;
        (0..r)
            .map(|i| Payload::ghost(base + u64::from(i < extra)))
            .collect()
    } else {
        // Real mode: honor record boundaries across splits (read a window
        // that extends past the split end until a newline or EOF).
        let mut parts = vec![reader
            .read_at(p, spec.offset, split_len)
            .map_err(|e| format!("map read: {e}"))?];
        let mut probe = end;
        'extend: while probe < file_len {
            let n = LOOKAHEAD.min(file_len - probe);
            let chunk = reader
                .read_at(p, probe, n)
                .map_err(|e| format!("map lookahead: {e}"))?;
            let has_newline = chunk.bytes().contains(&b'\n');
            parts.push(chunk);
            probe += n;
            if has_newline {
                break 'extend;
            }
        }
        let window = Payload::concat(&parts);
        let window = window.bytes();

        let mut buffers: Vec<Vec<KV>> = (0..r).map(|_| Vec::new()).collect();
        let mut in_records = 0u64;
        let mut out_records = 0u64;
        let mut out_bytes = 0u64;
        for line in split_records(window, spec.offset, spec.len) {
            in_records += 1;
            let (k, v) = crate::record::split_tab(line);
            conf.user.mapper.map(k, v, &mut |kv: KV| {
                out_records += 1;
                out_bytes += kv.encoded_len();
                buffers[partition_for(&kv.key, r) as usize].push(kv);
            });
        }
        counters.add(&counters.map_input_records, in_records);
        counters.add(&counters.map_output_records, out_records);
        counters.add(&counters.map_output_bytes, out_bytes);

        buffers
            .into_iter()
            .map(|mut buf| {
                buf.sort();
                if let Some(combiner) = &conf.user.combiner {
                    let grouped = sort_and_group(buf);
                    let mut combined = Vec::new();
                    for (key, values) in grouped {
                        let mut it = values.iter().map(|v| v.as_slice());
                        combiner.reduce(&key, &mut it, &mut |kv| combined.push(kv));
                    }
                    combined.sort();
                    encode_kvs(&combined)
                } else {
                    encode_kvs(&buf)
                }
            })
            .collect()
    };

    for (i, data) in partitions.into_iter().enumerate() {
        registry.publish(
            SegmentKey {
                job: ctx.id,
                map_task: spec.task_id,
                partition: i as u32,
            },
            p.node(),
            data,
        );
    }
    Ok(())
}

/// Execute a reduce task: shuffle, merge, reduce, commit output.
pub fn run_reduce_task(
    p: &Proc,
    fs: &Arc<dyn FileSystem>,
    registry: &Arc<MapOutputRegistry>,
    spec: &ReduceTaskSpec,
) -> Result<(), String> {
    let ctx = &spec.job;
    let conf = &ctx.conf;
    let counters = &ctx.counters;

    // Shuffle: pull this partition from every map output. The registry
    // groups the pulls by map node — one transfer per (map-node, this
    // reducer) pair, with the per-host groups moving in parallel (Hadoop's
    // parallel fetchers, minus the per-segment round-trips).
    let keys: Vec<SegmentKey> = (0..spec.map_count)
        .map(|m| SegmentKey {
            job: ctx.id,
            map_task: m,
            partition: spec.partition,
        })
        .collect();
    let mut segments = Vec::with_capacity(keys.len());
    for (m, seg) in registry.fetch_many(p, &keys).into_iter().enumerate() {
        let seg = seg.ok_or_else(|| {
            format!(
                "reduce {} missing map output {m} of job {}",
                spec.partition, ctx.id
            )
        })?;
        counters.add(&counters.shuffle_bytes, seg.len());
        segments.push(seg);
    }

    // Merge + reduce.
    let output: Payload = if let Some(profile) = conf.ghost {
        let shuffled: u64 = segments.iter().map(Payload::len).sum();
        p.compute(
            p.node(),
            (shuffled as f64 * profile.reduce_cpu_per_byte) as u64,
        );
        let out = (shuffled as f64 * profile.reduce_output_ratio) as u64;
        counters.add(
            &counters.reduce_input_records,
            shuffled / profile.input_record_bytes.max(1),
        );
        counters.add(&counters.reduce_output_bytes, out);
        Payload::ghost(out)
    } else {
        let mut all: Vec<KV> = Vec::new();
        for seg in &segments {
            all.extend(decode_kvs(seg.bytes()));
        }
        counters.add(&counters.reduce_input_records, all.len() as u64);
        let grouped = sort_and_group(all);
        let mut out_records = Vec::new();
        for (key, values) in grouped {
            let mut it = values.iter().map(|v| v.as_slice());
            conf.user
                .reducer
                .reduce(&key, &mut it, &mut |kv| out_records.push(kv));
        }
        counters.add(&counters.reduce_output_records, out_records.len() as u64);
        let payload = to_text(&out_records);
        counters.add(&counters.reduce_output_bytes, payload.len());
        payload
    };

    // Commit.
    match conf.output_mode {
        OutputMode::PerReducerFiles => {
            // Original Hadoop (paper Figure 1): unique temp file, then rename
            // into the output directory.
            let tmp = conf.temp_part_file(spec.partition);
            let mut w = fs
                .create(p, &tmp)
                .map_err(|e| format!("reduce create {tmp}: {e}"))?;
            w.write(p, output)
                .map_err(|e| format!("reduce write: {e}"))?;
            w.close(p).map_err(|e| format!("reduce close: {e}"))?;
            fs.rename(p, &tmp, &conf.part_file(spec.partition))
                .map_err(|e| format!("reduce commit rename: {e}"))?;
        }
        OutputMode::SharedAppendFile => {
            // Modified Hadoop (paper Figure 2): append to the single shared
            // output file — atomically, so concurrent reducers cannot tear
            // each other's records. Skip the append entirely for empty
            // outputs.
            if !output.is_empty() {
                let target = conf.shared_output_file();
                fs.append_all(p, &target, output)
                    .map_err(|e| format!("reduce append {target}: {e}"))?;
            }
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::api::{Mapper, Reducer, UserFns};
    use crate::job::{JobConf, JobCounters};
    use bsfs::Bsfs;
    use fabric::{ClusterSpec, Fabric};

    struct IdentityMap;
    impl Mapper for IdentityMap {
        fn map(&self, k: &[u8], v: &[u8], out: &mut dyn FnMut(KV)) {
            out(KV::new(k.to_vec(), v.to_vec()));
        }
    }
    struct ConcatReduce;
    impl Reducer for ConcatReduce {
        fn reduce(
            &self,
            key: &[u8],
            values: &mut dyn Iterator<Item = &[u8]>,
            out: &mut dyn FnMut(KV),
        ) {
            let joined: Vec<u8> = values.collect::<Vec<_>>().join(&b","[..]);
            out(KV::new(key.to_vec(), joined));
        }
    }

    #[test]
    fn map_then_reduce_end_to_end_single_tasks() {
        let fx = Fabric::sim(ClusterSpec::tiny(4));
        let fs = Bsfs::deploy(
            &fx,
            blobseer::BlobSeerConfig::test_small(4096),
            blobseer::Layout::compact(fx.spec()),
        )
        .unwrap();
        let h = fx.spawn(NodeId(0), "driver", move |p| {
            let fs: Arc<dyn FileSystem> = Arc::new(fs);
            fs.write_file(
                p,
                &DfsPath::new("/in").unwrap(),
                Payload::from_vec(b"b\t2\na\t1\nb\t3\n".to_vec()),
            )
            .unwrap();
            fs.mkdirs(p, &DfsPath::new("/out").unwrap()).unwrap();
            let conf = JobConf {
                name: "unit".into(),
                inputs: vec![DfsPath::new("/in").unwrap()],
                output_dir: DfsPath::new("/out").unwrap(),
                num_reducers: 1,
                output_mode: OutputMode::PerReducerFiles,
                user: UserFns {
                    mapper: Arc::new(IdentityMap),
                    reducer: Arc::new(ConcatReduce),
                    combiner: None,
                },
                ghost: None,
            };
            let ctx = Arc::new(JobCtx {
                id: 1,
                conf,
                counters: Arc::new(JobCounters::default()),
            });
            let registry = MapOutputRegistry::new();
            run_map_task(
                p,
                &fs,
                &registry,
                &MapTaskSpec {
                    job: ctx.clone(),
                    task_id: 0,
                    file: DfsPath::new("/in").unwrap(),
                    offset: 0,
                    len: 14,
                    hosts: vec![],
                },
            )
            .unwrap();
            run_reduce_task(
                p,
                &fs,
                &registry,
                &ReduceTaskSpec {
                    job: ctx.clone(),
                    partition: 0,
                    map_count: 1,
                },
            )
            .unwrap();
            let out = fs
                .read_file(p, &DfsPath::new("/out/part-00000").unwrap())
                .unwrap();
            assert_eq!(out.bytes().as_ref(), b"a\t1\nb\t2,3\n");
            assert_eq!(
                ctx.counters
                    .map_input_records
                    .load(std::sync::atomic::Ordering::Relaxed),
                3
            );
        });
        fx.run();
        h.take().unwrap();
    }

    /// A re-executed (or speculative) map task republished its output; the
    /// reduce must see it exactly once — last-writer-wins, no panic, no
    /// double-counted records (Hadoop's task re-run semantics).
    #[test]
    fn reexecuted_map_task_republishes_idempotently() {
        let fx = Fabric::sim(ClusterSpec::tiny(4));
        let fs = Bsfs::deploy(
            &fx,
            blobseer::BlobSeerConfig::test_small(4096),
            blobseer::Layout::compact(fx.spec()),
        )
        .unwrap();
        let h = fx.spawn(NodeId(0), "driver", move |p| {
            let fs: Arc<dyn FileSystem> = Arc::new(fs);
            fs.write_file(
                p,
                &DfsPath::new("/in").unwrap(),
                Payload::from_vec(b"b\t2\na\t1\nb\t3\n".to_vec()),
            )
            .unwrap();
            fs.mkdirs(p, &DfsPath::new("/out").unwrap()).unwrap();
            let conf = JobConf {
                name: "rerun".into(),
                inputs: vec![DfsPath::new("/in").unwrap()],
                output_dir: DfsPath::new("/out").unwrap(),
                num_reducers: 1,
                output_mode: OutputMode::PerReducerFiles,
                user: UserFns {
                    mapper: Arc::new(IdentityMap),
                    reducer: Arc::new(ConcatReduce),
                    combiner: None,
                },
                ghost: None,
            };
            let ctx = Arc::new(JobCtx {
                id: 1,
                conf,
                counters: Arc::new(JobCounters::default()),
            });
            let registry = MapOutputRegistry::new();
            let spec = MapTaskSpec {
                job: ctx.clone(),
                task_id: 0,
                file: DfsPath::new("/in").unwrap(),
                offset: 0,
                len: 14,
                hosts: vec![],
            };
            // The task runs twice — first attempt presumed lost, then the
            // re-execution republishes the same segment.
            run_map_task(p, &fs, &registry, &spec).unwrap();
            run_map_task(p, &fs, &registry, &spec).unwrap();
            assert_eq!(registry.republished(), 1);
            run_reduce_task(
                p,
                &fs,
                &registry,
                &ReduceTaskSpec {
                    job: ctx.clone(),
                    partition: 0,
                    map_count: 1,
                },
            )
            .unwrap();
            let out = fs
                .read_file(p, &DfsPath::new("/out/part-00000").unwrap())
                .unwrap();
            assert_eq!(
                out.bytes().as_ref(),
                b"a\t1\nb\t2,3\n",
                "republished output must not double-count records"
            );
        });
        fx.run();
        h.take().unwrap();
    }
}
