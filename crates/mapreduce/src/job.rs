//! Job description, counters and results.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use dfs::DfsPath;
use fabric::SimTime;

use crate::api::{GhostProfile, UserFns};

/// How reducers write their output — the paper's experimental variable.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum OutputMode {
    /// Original Hadoop (paper Figure 1): every reducer writes a uniquely
    /// named temporary file, then renames it into the output directory —
    /// the job ends with one file *per reducer*.
    PerReducerFiles,
    /// Modified Hadoop (paper Figure 2): every reducer appends its output
    /// to one shared file — requires a storage layer with concurrent
    /// append (BSFS).
    SharedAppendFile,
}

impl OutputMode {
    pub fn label(&self) -> &'static str {
        match self {
            OutputMode::PerReducerFiles => "per-reducer-files",
            OutputMode::SharedAppendFile => "shared-append",
        }
    }
}

/// Knobs of the node-local (tier-2) combine stage and the streaming
/// shuffle's flush cadence. Defaults buffer a node's whole map share and
/// flush once at node map-phase completion — maximum byte reduction, one
/// combined segment per (node, partition).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ShuffleTuning {
    /// Buffer map outputs per node and combine across tasks before
    /// publication. Off = every map task publishes its own segments
    /// directly (pre-tier-2 behavior).
    pub node_combine: bool,
    /// Flush the node buffer early once this many tasks are buffered
    /// (`None` = only at node completion). Smaller values trade combine
    /// ratio for earlier reducer fetches.
    pub flush_tasks: Option<u32>,
    /// Flush the node buffer early once its buffered bytes reach this bound
    /// (`None` = unbounded). Caps buffer memory on huge map outputs.
    pub flush_bytes: Option<u64>,
}

impl Default for ShuffleTuning {
    fn default() -> Self {
        ShuffleTuning {
            node_combine: true,
            flush_tasks: None,
            flush_bytes: Some(64 * 1024 * 1024),
        }
    }
}

/// A Map/Reduce job description.
#[derive(Clone)]
pub struct JobConf {
    pub name: String,
    /// Input files (each is split at block granularity).
    pub inputs: Vec<DfsPath>,
    /// Output directory; `PerReducerFiles` creates `part-NNNNN` files in it,
    /// `SharedAppendFile` creates a single `result` file.
    pub output_dir: DfsPath,
    pub num_reducers: u32,
    pub output_mode: OutputMode,
    pub user: UserFns,
    /// When set, tasks process ghost payloads through this profile instead
    /// of running the user functions on real bytes (cluster-scale sims).
    pub ghost: Option<GhostProfile>,
    /// Node-local combine + streaming shuffle knobs.
    pub shuffle: ShuffleTuning,
}

impl JobConf {
    /// Name of the single shared output file in [`OutputMode::SharedAppendFile`].
    pub fn shared_output_file(&self) -> DfsPath {
        self.output_dir.child("result").expect("valid name")
    }

    /// Final name of reducer `r`'s output in [`OutputMode::PerReducerFiles`].
    pub fn part_file(&self, r: u32) -> DfsPath {
        self.output_dir
            .child(&format!("part-{r:05}"))
            .expect("valid name")
    }

    /// Temporary attempt file for reducer `r` before the rename commit.
    pub fn temp_part_file(&self, r: u32) -> DfsPath {
        self.output_dir
            .child("_temporary")
            .and_then(|d| d.child(&format!("attempt-part-{r:05}")))
            .expect("valid name")
    }
}

/// Live counters of a running job (updated by tasks, read by the result).
#[derive(Debug, Default)]
pub struct JobCounters {
    pub map_input_bytes: AtomicU64,
    pub map_input_records: AtomicU64,
    pub map_output_bytes: AtomicU64,
    pub map_output_records: AtomicU64,
    pub shuffle_bytes: AtomicU64,
    pub reduce_input_records: AtomicU64,
    pub reduce_output_bytes: AtomicU64,
    pub reduce_output_records: AtomicU64,
    pub data_local_maps: AtomicU64,
    pub remote_maps: AtomicU64,
    /// Map tasks reported done to the tracker so far (decremented when a
    /// node's outputs are lost and its tasks re-queued). Reducers compare
    /// against the map total to detect fetches that beat the map phase.
    pub maps_completed: AtomicU64,
    /// Reducer fetches issued while the map phase was still running — the
    /// streaming-shuffle overlap the old reduce barrier made impossible.
    pub early_shuffle_fetches: AtomicU64,
    /// Combined (node, partition) segments published by the tier-2 stage.
    pub combined_segments: AtomicU64,
    /// Bytes the tier-2 combine removed before publication
    /// (buffered input bytes minus combined output bytes).
    pub combine_saved_bytes: AtomicU64,
}

impl JobCounters {
    pub fn add(&self, field: &AtomicU64, n: u64) {
        field.fetch_add(n, Ordering::Relaxed);
    }
}

/// Final report of a completed job.
#[derive(Debug, Clone)]
pub struct JobResult {
    pub name: String,
    pub job_id: u64,
    pub maps: u32,
    pub reduces: u32,
    pub started_ns: SimTime,
    pub finished_ns: SimTime,
    pub map_input_bytes: u64,
    pub map_output_bytes: u64,
    pub shuffle_bytes: u64,
    pub reduce_output_bytes: u64,
    pub data_local_maps: u64,
    pub remote_maps: u64,
    /// Combined (node, partition) segments the tier-2 stage published.
    pub combined_segments: u64,
    /// Bytes the node-local combine kept off the wire.
    pub combine_saved_bytes: u64,
    /// Reducer fetches issued before the map phase completed (streaming
    /// shuffle overlap; 0 under the old barrier).
    pub early_shuffle_fetches: u64,
    /// Files the job left in its output directory (the paper's file-count
    /// argument: R for original Hadoop, 1 for the append mode).
    pub output_files: u64,
}

impl JobResult {
    /// Completion time in seconds.
    pub fn elapsed_secs(&self) -> f64 {
        fabric::ns_to_secs(self.finished_ns - self.started_ns)
    }
}

/// Runtime handle pairing a job's configuration with its live counters
/// (shared between the jobtracker and every task of the job).
pub struct JobCtx {
    pub id: u64,
    pub conf: JobConf,
    pub counters: Arc<JobCounters>,
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::api::KV;

    fn dummy_user() -> UserFns {
        struct Nop;
        impl crate::api::Mapper for Nop {
            fn map(&self, _: &[u8], _: &[u8], _: &mut dyn FnMut(KV)) {}
        }
        impl crate::api::Reducer for Nop {
            fn reduce(&self, _: &[u8], _: &mut dyn Iterator<Item = &[u8]>, _: &mut dyn FnMut(KV)) {}
        }
        UserFns {
            mapper: Arc::new(Nop),
            reducer: Arc::new(Nop),
            combiner: None,
        }
    }

    #[test]
    fn output_paths() {
        let conf = JobConf {
            name: "t".into(),
            inputs: vec![],
            output_dir: DfsPath::new("/out").unwrap(),
            num_reducers: 3,
            output_mode: OutputMode::PerReducerFiles,
            user: dummy_user(),
            ghost: None,
            shuffle: ShuffleTuning::default(),
        };
        assert_eq!(conf.shared_output_file().as_str(), "/out/result");
        assert_eq!(conf.part_file(2).as_str(), "/out/part-00002");
        assert_eq!(
            conf.temp_part_file(2).as_str(),
            "/out/_temporary/attempt-part-00002"
        );
    }
}
