//! User-facing Map/Reduce programming interface (paper §1: "the user ...
//! expresses the computation through two functions: map ... and reduce").

use std::sync::Arc;

/// A key/value record.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
pub struct KV {
    pub key: Vec<u8>,
    pub value: Vec<u8>,
}

impl KV {
    pub fn new(key: impl Into<Vec<u8>>, value: impl Into<Vec<u8>>) -> KV {
        KV {
            key: key.into(),
            value: value.into(),
        }
    }

    /// Approximate serialized size (used for counters and spill accounting).
    pub fn encoded_len(&self) -> u64 {
        8 + self.key.len() as u64 + self.value.len() as u64
    }
}

/// The `map` function: consumes one input record, emits intermediate
/// records through `out`.
pub trait Mapper: Send + Sync {
    fn map(&self, key: &[u8], value: &[u8], out: &mut dyn FnMut(KV));
}

/// The `reduce` function: merges all intermediate values of one key.
/// Also used for optional combiners.
pub trait Reducer: Send + Sync {
    fn reduce(&self, key: &[u8], values: &mut dyn Iterator<Item = &[u8]>, out: &mut dyn FnMut(KV));
}

/// Blanket impls so closures can be used in tests and examples.
impl<F> Mapper for F
where
    F: Fn(&[u8], &[u8], &mut dyn FnMut(KV)) + Send + Sync,
{
    fn map(&self, key: &[u8], value: &[u8], out: &mut dyn FnMut(KV)) {
        self(key, value, out)
    }
}

/// Blanket impl for reducer closures.
impl<F> Reducer for F
where
    F: Fn(&[u8], &mut dyn Iterator<Item = &[u8]>, &mut dyn FnMut(KV)) + Send + Sync,
{
    fn reduce(&self, key: &[u8], values: &mut dyn Iterator<Item = &[u8]>, out: &mut dyn FnMut(KV)) {
        self(key, values, out)
    }
}

/// Hash partitioner (Hadoop's default): key → reducer index.
pub fn partition_for(key: &[u8], reducers: u32) -> u32 {
    // FNV-1a, stable across runs.
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for &b in key {
        h ^= b as u64;
        h = h.wrapping_mul(0x1000_0000_01b3);
    }
    (h % reducers as u64) as u32
}

/// Cost/volume profile of an application, used when a job runs on ghost
/// payloads at cluster scale: the *engine* (splits, scheduling, shuffle
/// transfers, commit paths) executes for real, while record processing is
/// replaced by its measured profile. Profiles are calibrated against the
/// real implementation on small inputs (see `workloads`).
#[derive(Debug, Clone, Copy)]
pub struct GhostProfile {
    /// Mean input record length in bytes (drives record counts).
    pub input_record_bytes: u64,
    /// Map output bytes per input byte.
    pub map_output_ratio: f64,
    /// Abstract CPU operations per input byte in the map phase.
    pub map_cpu_per_byte: f64,
    /// Reduce output bytes per shuffled byte.
    pub reduce_output_ratio: f64,
    /// Abstract CPU operations per shuffled byte in the reduce phase.
    pub reduce_cpu_per_byte: f64,
    /// Bytes surviving a node-local (tier-2) combine per buffered byte,
    /// applied only when the job has a combiner. 1.0 = combining saves
    /// nothing (e.g. unique keys); wordcount-shaped workloads sit far below.
    pub combine_output_ratio: f64,
}

impl GhostProfile {
    /// A neutral profile: byte-preserving, modest CPU.
    pub fn identity() -> GhostProfile {
        GhostProfile {
            input_record_bytes: 100,
            map_output_ratio: 1.0,
            map_cpu_per_byte: 1.0,
            reduce_output_ratio: 1.0,
            reduce_cpu_per_byte: 1.0,
            combine_output_ratio: 1.0,
        }
    }
}

/// Shared handle to the pair of user functions plus the optional combiner.
#[derive(Clone)]
pub struct UserFns {
    pub mapper: Arc<dyn Mapper>,
    pub reducer: Arc<dyn Reducer>,
    pub combiner: Option<Arc<dyn Reducer>>,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn partitioner_is_stable_and_in_range() {
        for r in [1u32, 2, 7, 230] {
            for key in [&b"alpha"[..], b"", b"zz", b"user-12345"] {
                let p1 = partition_for(key, r);
                let p2 = partition_for(key, r);
                assert_eq!(p1, p2);
                assert!(p1 < r);
            }
        }
    }

    #[test]
    fn partitioner_spreads_keys() {
        let r = 16u32;
        let mut hit = vec![false; r as usize];
        for i in 0..1000 {
            let key = format!("key-{i}");
            hit[partition_for(key.as_bytes(), r) as usize] = true;
        }
        assert!(hit.iter().all(|&h| h), "some partition never hit");
    }

    #[test]
    fn closure_mappers_work() {
        let m = |_k: &[u8], v: &[u8], out: &mut dyn FnMut(KV)| {
            out(KV::new(v.to_vec(), b"1".to_vec()));
        };
        let mut got = Vec::new();
        Mapper::map(&m, b"k", b"hello", &mut |kv| got.push(kv));
        assert_eq!(got, vec![KV::new("hello", "1")]);
    }
}
