//! Full-cluster Map/Reduce integration tests: jobtracker + tasktrackers +
//! real jobs over BSFS and the HDFS baseline, in both output modes.

use std::collections::HashMap;
use std::sync::Arc;

use blobseer::{BlobSeerConfig, Layout};
use bsfs::Bsfs;
use dfs::{DfsPath, FileSystem};
use fabric::{ClusterSpec, Fabric, NodeId, Payload, Proc};
use hdfs_sim::{HdfsConfig, HdfsLayout, HdfsSim};
use mapreduce::{JobConf, MrCluster, MrConfig, OutputMode, ShuffleTuning, UserFns, KV};

fn d(s: &str) -> DfsPath {
    DfsPath::new(s).unwrap()
}

/// Classic wordcount user functions.
fn wordcount() -> UserFns {
    let mapper = |_k: &[u8], v: &[u8], out: &mut dyn FnMut(KV)| {
        // Input format: key = line (no tab); count words of the whole line.
        for w in _k
            .split(|&b| b == b' ')
            .chain(v.split(|&b| b == b' '))
            .filter(|w| !w.is_empty())
        {
            out(KV::new(w.to_vec(), b"1".to_vec()));
        }
    };
    let reducer = |key: &[u8], values: &mut dyn Iterator<Item = &[u8]>, out: &mut dyn FnMut(KV)| {
        let total: u64 = values
            .map(|v| std::str::from_utf8(v).unwrap().parse::<u64>().unwrap())
            .sum();
        out(KV::new(key.to_vec(), total.to_string().into_bytes()));
    };
    UserFns {
        mapper: Arc::new(mapper),
        reducer: Arc::new(reducer),
        combiner: Some(Arc::new(reducer)),
    }
}

const CORPUS: &str =
    "the quick brown fox\njumps over the lazy dog\nthe dog barks\nfox and dog run\nthe end\n";

/// Expected wordcount of `CORPUS`.
fn expected_counts() -> HashMap<String, u64> {
    let mut m = HashMap::new();
    for w in CORPUS.split_whitespace() {
        *m.entry(w.to_string()).or_insert(0) += 1;
    }
    m
}

/// Parse `word TAB count` output text into a map.
fn parse_counts(text: &[u8]) -> HashMap<String, u64> {
    let mut m = HashMap::new();
    for line in text.split(|&b| b == b'\n').filter(|l| !l.is_empty()) {
        let tab = line.iter().position(|&b| b == b'\t').expect("tab");
        let word = String::from_utf8(line[..tab].to_vec()).unwrap();
        let count: u64 = std::str::from_utf8(&line[tab + 1..])
            .unwrap()
            .parse()
            .unwrap();
        let prev = m.insert(word.clone(), count);
        assert!(prev.is_none(), "word {word} appears twice in output");
    }
    m
}

fn run_wordcount(
    fs: Arc<dyn FileSystem>,
    fx: &Fabric,
    mode: OutputMode,
    reducers: u32,
) -> mapreduce::JobResult {
    run_wordcount_tuned(fs, fx, mode, reducers, ShuffleTuning::default())
}

fn run_wordcount_tuned(
    fs: Arc<dyn FileSystem>,
    fx: &Fabric,
    mode: OutputMode,
    reducers: u32,
    shuffle: ShuffleTuning,
) -> mapreduce::JobResult {
    let mr = MrCluster::start(fx, fs.clone(), MrConfig::compact(fx.spec()));
    let fs2 = fs.clone();
    let mr2 = mr.clone();
    let driver = fx.spawn(NodeId(0), "driver", move |p: &Proc| {
        // Small blocks so the corpus makes several splits.
        fs2.write_file(p, &d("/input/corpus"), Payload::from_vec(CORPUS.into()))
            .unwrap();
        let job = JobConf {
            name: format!("wordcount-{}", mode.label()),
            inputs: vec![d("/input/corpus")],
            output_dir: d("/out"),
            num_reducers: reducers,
            output_mode: mode,
            user: wordcount(),
            ghost: None,
            shuffle,
        };
        let handle = mr2.submit(job);
        let result = handle.wait(p);
        mr2.shutdown();
        result
    });
    fx.run();
    driver.take().unwrap()
}

fn read_all_output(fs: Arc<dyn FileSystem>, fx: &Fabric, mode: OutputMode) -> Vec<u8> {
    let h = fx.spawn(NodeId(0), "reader", move |p: &Proc| {
        let mut buf = Vec::new();
        match mode {
            OutputMode::SharedAppendFile => {
                let data = fs.read_file(p, &d("/out/result")).unwrap();
                buf.extend_from_slice(data.bytes());
            }
            OutputMode::PerReducerFiles => {
                for st in fs.list(p, &d("/out")).unwrap() {
                    if !st.is_dir {
                        let data = fs.read_file(p, &st.path).unwrap();
                        buf.extend_from_slice(data.bytes());
                    }
                }
            }
        }
        buf
    });
    fx.run();
    h.take().unwrap()
}

fn bsfs_fixture(block: u64) -> (Fabric, Arc<dyn FileSystem>, Bsfs) {
    let fx = Fabric::sim(ClusterSpec::tiny(8));
    let bsfs = Bsfs::deploy(
        &fx,
        BlobSeerConfig::test_small(block),
        Layout::compact(fx.spec()),
    )
    .unwrap();
    let fs: Arc<dyn FileSystem> = Arc::new(bsfs.clone());
    (fx, fs, bsfs)
}

#[test]
fn wordcount_on_bsfs_shared_append_single_output_file() {
    let (fx, fs, _bsfs) = bsfs_fixture(32);
    let result = run_wordcount(fs.clone(), &fx, OutputMode::SharedAppendFile, 4);
    assert_eq!(result.reduces, 4);
    assert!(result.maps > 1, "corpus should split into several maps");
    // THE paper's point: a single logical output file.
    assert_eq!(result.output_files, 1);
    let out = read_all_output(fs, &fx, OutputMode::SharedAppendFile);
    assert_eq!(parse_counts(&out), expected_counts());
}

#[test]
fn wordcount_on_bsfs_per_reducer_files() {
    let (fx, fs, _bsfs) = bsfs_fixture(32);
    let result = run_wordcount(fs.clone(), &fx, OutputMode::PerReducerFiles, 4);
    // Original Hadoop: one file per reducer.
    assert_eq!(result.output_files, 4);
    let out = read_all_output(fs, &fx, OutputMode::PerReducerFiles);
    assert_eq!(parse_counts(&out), expected_counts());
}

#[test]
fn wordcount_on_hdfs_per_reducer_files() {
    let fx = Fabric::sim(ClusterSpec::tiny(8));
    let hdfs = HdfsSim::deploy(
        &fx,
        HdfsConfig::test_small(32),
        HdfsLayout::compact(fx.spec()),
    );
    let fs: Arc<dyn FileSystem> = Arc::new(hdfs);
    let result = run_wordcount(fs.clone(), &fx, OutputMode::PerReducerFiles, 3);
    assert_eq!(result.output_files, 3);
    let out = read_all_output(fs, &fx, OutputMode::PerReducerFiles);
    assert_eq!(parse_counts(&out), expected_counts());
}

#[test]
#[should_panic(expected = "does not support the append operation")]
fn shared_append_mode_on_hdfs_fails_loudly() {
    // The whole premise of the paper: you cannot run the modified framework
    // on stock HDFS.
    let fx = Fabric::sim(ClusterSpec::tiny(8));
    let hdfs = HdfsSim::deploy(
        &fx,
        HdfsConfig::test_small(32),
        HdfsLayout::compact(fx.spec()),
    );
    let fs: Arc<dyn FileSystem> = Arc::new(hdfs);
    run_wordcount(fs, &fx, OutputMode::SharedAppendFile, 2);
}

#[test]
fn map_tasks_prefer_local_blocks() {
    let (fx, fs, _bsfs) = bsfs_fixture(64);
    // Write a many-block file, then run a job; with a tasktracker on every
    // node, most maps should be data-local.
    let result = run_wordcount(fs, &fx, OutputMode::PerReducerFiles, 2);
    assert!(
        result.data_local_maps > 0,
        "locality scheduling never hit: local={} remote={}",
        result.data_local_maps,
        result.remote_maps
    );
    assert_eq!(
        result.data_local_maps + result.remote_maps,
        result.maps as u64
    );
}

/// Under default tuning the tier-2 combine publishes one segment per
/// (map-node, partition): once maps outnumber nodes, the job-wide transfer
/// count is bounded by (nodes that ran maps) × reducers, never
/// maps × reducers.
#[test]
fn shuffle_moves_one_transfer_per_map_node_reducer_pair() {
    let nodes = 2u32;
    let fx = Fabric::sim(ClusterSpec::tiny(nodes));
    let bsfs = Bsfs::deploy(
        &fx,
        BlobSeerConfig::test_small(8), // 8 B blocks -> ~11 maps on 2 nodes
        Layout::compact(fx.spec()),
    )
    .unwrap();
    let fs: Arc<dyn FileSystem> = Arc::new(bsfs);
    let reducers = 2u32;
    let mr = MrCluster::start(&fx, fs.clone(), MrConfig::compact(fx.spec()));
    let fs2 = fs.clone();
    let mr2 = mr.clone();
    let driver = fx.spawn(NodeId(0), "driver", move |p: &Proc| {
        fs2.write_file(p, &d("/input/corpus"), Payload::from_vec(CORPUS.into()))
            .unwrap();
        let job = JobConf {
            name: "shuffle-pin".into(),
            inputs: vec![d("/input/corpus")],
            output_dir: d("/out"),
            num_reducers: reducers,
            output_mode: OutputMode::SharedAppendFile,
            user: wordcount(),
            ghost: None,
            shuffle: ShuffleTuning::default(),
        };
        let result = mr2.submit(job).wait(p);
        mr2.shutdown();
        result
    });
    fx.run();
    let result = driver.take().unwrap();
    assert!(
        result.maps > nodes,
        "need more maps ({}) than nodes ({nodes}) to observe grouping",
        result.maps
    );
    let (segments, transfers) = mr.registry().fetch_counts();
    assert_eq!(
        segments, result.combined_segments,
        "every reducer pulled exactly the combined (node, partition) segments"
    );
    assert!(
        segments <= u64::from(nodes) * u64::from(reducers),
        "tier-2 publishes at most one segment per (node, partition): {segments}"
    );
    assert!(
        transfers <= u64::from(nodes) * u64::from(reducers),
        "shuffle must move one transfer per (map-node, reducer) pair: \
         {transfers} transfers for {segments} segments on {nodes} nodes"
    );
    let out = read_all_output(fs, &fx, OutputMode::SharedAppendFile);
    assert_eq!(parse_counts(&out), expected_counts());
}

/// Tier-2 combining must be invisible in the output: combiner-on and
/// combiner-off runs produce byte-identical results, while the combined
/// run ships fewer shuffle bytes and accounts its savings.
#[test]
fn node_combine_output_byte_identical_and_saves_shuffle_bytes() {
    let run = |node_combine: bool| {
        let fx = Fabric::sim(ClusterSpec::tiny(2));
        let bsfs = Bsfs::deploy(
            &fx,
            BlobSeerConfig::test_small(8), // 8 B blocks → ~11 maps on 2 nodes
            Layout::compact(fx.spec()),
        )
        .unwrap();
        let fs: Arc<dyn FileSystem> = Arc::new(bsfs);
        let result = run_wordcount_tuned(
            fs.clone(),
            &fx,
            OutputMode::SharedAppendFile,
            2,
            ShuffleTuning {
                node_combine,
                ..ShuffleTuning::default()
            },
        );
        let out = read_all_output(fs, &fx, OutputMode::SharedAppendFile);
        (result, out)
    };
    let (on, out_on) = run(true);
    let (off, out_off) = run(false);
    assert_eq!(out_on, out_off, "tier-2 combine changed the job output");
    assert_eq!(parse_counts(&out_on), expected_counts());
    assert!(on.combined_segments > 0, "no combined segments published");
    assert!(
        on.combined_segments <= 2 * 2,
        "at most one combined segment per (node, partition): {}",
        on.combined_segments
    );
    assert!(on.combine_saved_bytes > 0, "combine saved nothing");
    assert!(
        on.shuffle_bytes < off.shuffle_bytes,
        "combined run shuffled {} bytes, uncombined {}",
        on.shuffle_bytes,
        off.shuffle_bytes
    );
    assert_eq!(off.combined_segments, 0);
    assert_eq!(off.combine_saved_bytes, 0);
}

/// Streaming shuffle: with an eager flush cadence, reducers demonstrably
/// issue fetches while the map phase is still running (impossible under
/// the old reduce barrier, where this counter pinned at 0).
#[test]
fn reducers_fetch_before_map_phase_completes() {
    let fx = Fabric::sim(ClusterSpec::tiny(2));
    let bsfs = Bsfs::deploy(
        &fx,
        BlobSeerConfig::test_small(8), // many maps → many early deliveries
        Layout::compact(fx.spec()),
    )
    .unwrap();
    let fs: Arc<dyn FileSystem> = Arc::new(bsfs);
    let result = run_wordcount_tuned(
        fs.clone(),
        &fx,
        OutputMode::SharedAppendFile,
        2,
        ShuffleTuning {
            node_combine: true,
            flush_tasks: Some(1), // publish after every buffered task
            flush_bytes: None,
        },
    );
    assert!(result.maps > 2, "need several maps: {}", result.maps);
    assert!(
        result.early_shuffle_fetches > 0,
        "no reducer fetch overlapped the map phase"
    );
    let out = read_all_output(fs, &fx, OutputMode::SharedAppendFile);
    assert_eq!(parse_counts(&out), expected_counts());
}

#[test]
fn two_jobs_run_concurrently() {
    let (fx, fs, _bsfs) = bsfs_fixture(32);
    let mr = MrCluster::start(&fx, fs.clone(), MrConfig::compact(fx.spec()));
    let fs2 = fs.clone();
    let mr2 = mr.clone();
    let driver = fx.spawn(NodeId(0), "driver", move |p: &Proc| {
        fs2.write_file(p, &d("/input/a"), Payload::from_vec(CORPUS.into()))
            .unwrap();
        fs2.write_file(p, &d("/input/b"), Payload::from_vec(CORPUS.into()))
            .unwrap();
        let mk = |name: &str, input: &str, out: &str| JobConf {
            name: name.into(),
            inputs: vec![d(input)],
            output_dir: d(out),
            num_reducers: 2,
            output_mode: OutputMode::SharedAppendFile,
            user: wordcount(),
            ghost: None,
            shuffle: ShuffleTuning::default(),
        };
        let h1 = mr2.submit(mk("job-a", "/input/a", "/out-a"));
        let h2 = mr2.submit(mk("job-b", "/input/b", "/out-b"));
        let r1 = h1.wait(p);
        let r2 = h2.wait(p);
        mr2.shutdown();
        let out_a = fs2.read_file(p, &d("/out-a/result")).unwrap();
        let out_b = fs2.read_file(p, &d("/out-b/result")).unwrap();
        (r1, r2, out_a.bytes().to_vec(), out_b.bytes().to_vec())
    });
    fx.run();
    let (r1, r2, out_a, out_b) = driver.take().unwrap();
    assert_eq!(r1.output_files, 1);
    assert_eq!(r2.output_files, 1);
    assert_eq!(parse_counts(&out_a), expected_counts());
    assert_eq!(parse_counts(&out_b), expected_counts());
}

#[test]
fn ghost_job_at_paper_scale_smoke() {
    // 270 nodes, paper layouts, ghost payloads: the full framework runs a
    // profile-mode job end to end in simulation.
    let fx = Fabric::sim(ClusterSpec::orsay_270());
    let bsfs = Bsfs::deploy_paper(&fx, BlobSeerConfig::paper()).unwrap();
    let fs: Arc<dyn FileSystem> = Arc::new(bsfs);
    let mr = MrCluster::start(&fx, fs.clone(), MrConfig::paper(fx.spec()));
    let fs2 = fs.clone();
    let mr2 = mr.clone();
    let driver = fx.spawn(NodeId(23), "driver", move |p: &Proc| {
        // 320 MB ghost input = 5 blocks of 64 MB.
        let mut w = fs2.create(p, &d("/in")).unwrap();
        w.write(p, Payload::ghost(320 * 1024 * 1024)).unwrap();
        w.close(p).unwrap();
        let job = JobConf {
            name: "ghost-smoke".into(),
            inputs: vec![d("/in")],
            output_dir: d("/out"),
            num_reducers: 8,
            output_mode: OutputMode::SharedAppendFile,
            user: wordcount(), // unused in ghost mode
            ghost: Some(mapreduce::GhostProfile {
                input_record_bytes: 100,
                map_output_ratio: 1.0,
                map_cpu_per_byte: 2.0,
                reduce_output_ratio: 1.0,
                reduce_cpu_per_byte: 1.0,
                // Ratio 1.0: combining removes nothing, so the 320 MB
                // shuffle-byte pin below still holds with tier-2 on.
                combine_output_ratio: 1.0,
            }),
            shuffle: ShuffleTuning::default(),
        };
        let result = mr2.submit(job).wait(p);
        mr2.shutdown();
        result
    });
    fx.run();
    let r = driver.take().unwrap();
    assert_eq!(r.maps, 5);
    assert_eq!(r.output_files, 1);
    assert_eq!(r.map_input_bytes, 320 * 1024 * 1024);
    assert_eq!(r.shuffle_bytes, 320 * 1024 * 1024);
    assert_eq!(r.reduce_output_bytes, 320 * 1024 * 1024);
    assert!(r.elapsed_secs() > 1.0, "moving 3x320MB takes real time");
    assert!(r.elapsed_secs() < 120.0, "took {}s", r.elapsed_secs());
}
