//! Property test: the two-tier combine pipeline is semantically invisible.
//! Across random key distributions, flush thresholds and injected map-output
//! losses (which force speculative re-runs through the combine buffer), a
//! wordcount job produces exactly the counts of an in-memory reference
//! model — and with no faults, the combiner-on run is byte-identical to the
//! combiner-off run.

use std::collections::HashMap;
use std::sync::Arc;

use blobseer::{BlobSeerConfig, Layout};
use bsfs::Bsfs;
use dfs::{DfsPath, FileSystem};
use fabric::{ClusterSpec, Fabric, NodeId, Payload, Proc};
use mapreduce::{JobConf, MrCluster, MrConfig, OutputMode, ShuffleTuning, UserFns, KV};
use proptest::prelude::*;

fn d(s: &str) -> DfsPath {
    DfsPath::new(s).unwrap()
}

/// Wordcount with a combiner: the workload whose combine stage actually
/// shrinks data, so tier-2 bugs (lost runs, double counts, re-run leaks)
/// surface as wrong totals.
fn wordcount() -> UserFns {
    let mapper = |k: &[u8], v: &[u8], out: &mut dyn FnMut(KV)| {
        for w in k
            .split(|&b| b == b' ')
            .chain(v.split(|&b| b == b' '))
            .filter(|w| !w.is_empty())
        {
            out(KV::new(w.to_vec(), b"1".to_vec()));
        }
    };
    let reducer = |key: &[u8], values: &mut dyn Iterator<Item = &[u8]>, out: &mut dyn FnMut(KV)| {
        let total: u64 = values
            .map(|v| std::str::from_utf8(v).unwrap().parse::<u64>().unwrap())
            .sum();
        out(KV::new(key.to_vec(), total.to_string().into_bytes()));
    };
    UserFns {
        mapper: Arc::new(mapper),
        reducer: Arc::new(reducer),
        combiner: Some(Arc::new(reducer)),
    }
}

/// Render a word index as text; a small vocabulary keeps key collisions
/// (the interesting combine case) frequent under every distribution.
fn word(i: u8) -> String {
    format!("w{i}")
}

fn corpus_text(lines: &[Vec<u8>]) -> String {
    let mut text = String::new();
    for line in lines {
        for (i, w) in line.iter().enumerate() {
            if i > 0 {
                text.push(' ');
            }
            text.push_str(&word(*w));
        }
        text.push('\n');
    }
    text
}

fn model_counts(lines: &[Vec<u8>]) -> HashMap<String, u64> {
    let mut m = HashMap::new();
    for line in lines {
        for w in line {
            *m.entry(word(*w)).or_insert(0) += 1;
        }
    }
    m
}

fn parse_counts(text: &[u8]) -> HashMap<String, u64> {
    let mut m = HashMap::new();
    for line in text.split(|&b| b == b'\n').filter(|l| !l.is_empty()) {
        let tab = line.iter().position(|&b| b == b'\t').expect("tab");
        let w = String::from_utf8(line[..tab].to_vec()).unwrap();
        let n: u64 = std::str::from_utf8(&line[tab + 1..])
            .unwrap()
            .parse()
            .unwrap();
        assert!(m.insert(w.clone(), n).is_none(), "{w} appears twice");
    }
    m
}

#[derive(Debug, Clone)]
struct Case {
    /// Lines of word indices; vocabulary capped so keys collide heavily.
    lines: Vec<Vec<u8>>,
    /// Tier-2 flush-after-N-tasks threshold (None = flush only at node
    /// map-phase completion).
    flush_tasks: Option<u32>,
    /// Tier-2 flush-after-N-buffered-bytes threshold.
    flush_bytes: Option<u64>,
    reducers: u32,
    /// Map-output wipes `(at_ns, node)` that force re-runs mid-shuffle.
    losses: Vec<(u64, u32)>,
}

fn case_strategy() -> impl Strategy<Value = Case> {
    let line = prop::collection::vec(0u8..24, 1..10);
    let lines = prop::collection::vec(line, 1..60);
    let flush_tasks = prop_oneof![
        2 => Just(None),
        3 => (1u32..5).prop_map(Some),
    ];
    let flush_bytes = prop_oneof![
        2 => Just(None),
        2 => (16u64..512).prop_map(Some),
    ];
    let losses = prop::collection::vec((0u64..40_000_000, 0u32..4), 0..3);
    (lines, flush_tasks, flush_bytes, 1u32..4, losses).prop_map(
        |(lines, flush_tasks, flush_bytes, reducers, losses)| Case {
            lines,
            flush_tasks,
            flush_bytes,
            reducers,
            losses,
        },
    )
}

/// Run wordcount over the case's corpus; returns the job output bytes.
fn run_case(case: &Case, node_combine: bool, with_losses: bool) -> Vec<u8> {
    let fx = Fabric::sim(ClusterSpec::tiny(4));
    let bsfs = Bsfs::deploy(
        &fx,
        BlobSeerConfig::test_small(16), // tiny blocks: several maps per node
        Layout::compact(fx.spec()),
    )
    .unwrap();
    let fs: Arc<dyn FileSystem> = Arc::new(bsfs);
    let mr = MrCluster::start(&fx, fs.clone(), MrConfig::compact(fx.spec()));
    let text = corpus_text(&case.lines);
    let shuffle = ShuffleTuning {
        node_combine,
        flush_tasks: case.flush_tasks,
        flush_bytes: case.flush_bytes,
    };
    let losses: Vec<(u64, u32)> = if with_losses {
        case.losses.clone()
    } else {
        Vec::new()
    };
    let reducers = case.reducers;
    let fs2 = fs.clone();
    let mr2 = mr.clone();
    let driver = fx.spawn(NodeId(0), "driver", move |p: &Proc| {
        fs2.write_file(p, &d("/in/corpus"), Payload::from_vec(text.into_bytes()))
            .unwrap();
        let mr_loss = mr2.clone();
        let losser = p
            .fabric()
            .spawn(NodeId(0), "map-output-losser", move |p: &Proc| {
                for (at, node) in losses {
                    let now = p.now();
                    if at > now {
                        p.sleep(at - now);
                    }
                    mr_loss.lose_map_outputs(NodeId(node));
                }
            });
        let job = JobConf {
            name: "combine-prop".into(),
            inputs: vec![d("/in/corpus")],
            output_dir: d("/out"),
            num_reducers: reducers,
            output_mode: OutputMode::SharedAppendFile,
            user: wordcount(),
            ghost: None,
            shuffle,
        };
        mr2.submit(job).wait(p);
        losser.join(p);
        mr2.shutdown();
        fs2.read_file(p, &d("/out/result"))
            .unwrap()
            .bytes()
            .to_vec()
    });
    fx.run();
    driver.take().unwrap()
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 24, ..ProptestConfig::default() })]

    #[test]
    fn combine_on_equals_combine_off_equals_model(case in case_strategy()) {
        let want = model_counts(&case.lines);

        // Fault-free: tier-2 on and off must agree byte-for-byte, and both
        // must match the model.
        let on = run_case(&case, true, false);
        let off = run_case(&case, false, false);
        prop_assert_eq!(&on, &off, "tier-2 combine changed job output");
        prop_assert_eq!(parse_counts(&on), want.clone());

        // Under map-output loss the combine buffer absorbs re-runs; counts
        // must still match the model exactly (no lost or doubled keys).
        let lossy = run_case(&case, true, true);
        prop_assert_eq!(parse_counts(&lossy), want);
    }
}
