//! HDFS baseline end-to-end tests: the shared dfs contract (with append
//! disabled) plus HDFS-specific semantics the paper leans on.

use dfs::{DfsPath, FileSystem, FsError};
use fabric::{ClusterSpec, Fabric, NodeId, Payload};
use hdfs_sim::{HdfsConfig, HdfsLayout, HdfsSim};

fn d(s: &str) -> DfsPath {
    DfsPath::new(s).unwrap()
}

fn pattern(len: usize, tag: u8) -> Vec<u8> {
    (0..len)
        .map(|i| tag.wrapping_add((i % 241) as u8))
        .collect()
}

fn deploy(nodes: u32, block: u64) -> (Fabric, HdfsSim) {
    let fx = Fabric::sim(ClusterSpec::tiny(nodes));
    let fs = HdfsSim::deploy(
        &fx,
        HdfsConfig::test_small(block),
        HdfsLayout::compact(fx.spec()),
    );
    (fx, fs)
}

#[test]
fn satisfies_the_filesystem_contract_without_append() {
    let (fx, fs) = deploy(6, 4096);
    let h = fx.spawn(NodeId(0), "contract", move |p| {
        assert!(!fs.supports_append());
        dfs::contract::exercise_filesystem(&fs, p);
    });
    fx.run();
    h.take().unwrap();
}

#[test]
fn append_is_rejected_like_hdfs_020() {
    let (fx, fs) = deploy(4, 1024);
    let h = fx.spawn(NodeId(0), "t", move |p| {
        fs.write_file(p, &d("/f"), Payload::from_vec(pattern(100, 1)))
            .unwrap();
        match fs.append(p, &d("/f")) {
            Err(FsError::AppendUnsupported { fs: scheme }) => assert_eq!(scheme, "hdfs"),
            other => panic!("expected AppendUnsupported, got {:?}", other.err()),
        }
    });
    fx.run();
    h.take().unwrap();
}

#[test]
fn files_are_write_once() {
    let (fx, fs) = deploy(4, 1024);
    let h = fx.spawn(NodeId(0), "t", move |p| {
        fs.write_file(p, &d("/immutable"), Payload::from_vec(pattern(10, 1)))
            .unwrap();
        // Re-creating the same path fails; the data cannot be overwritten.
        assert!(matches!(
            fs.create(p, &d("/immutable")),
            Err(FsError::AlreadyExists(_))
        ));
    });
    fx.run();
    h.take().unwrap();
}

#[test]
fn blocks_are_replicated_and_pipelined() {
    let fx = Fabric::sim(ClusterSpec::tiny(8));
    let fs = HdfsSim::deploy(
        &fx,
        HdfsConfig::test_small(1000).with_replication(3),
        HdfsLayout::compact(fx.spec()),
    );
    let fs2 = fs.clone();
    let h = fx.spawn(NodeId(0), "t", move |p| {
        let data = pattern(2500, 5); // 3 blocks (1000/1000/500)
        fs2.write_file(p, &d("/r3"), Payload::from_vec(data.clone()))
            .unwrap();
        // 3 replicas of 2500 bytes total.
        assert_eq!(fs2.total_stored_bytes(), 3 * 2500);
        let locs = fs2.block_locations(p, &d("/r3"), 0, 2500).unwrap();
        assert_eq!(locs.len(), 3);
        for l in &locs {
            assert_eq!(l.hosts.len(), 3);
        }
        // Content survives: read it back whole.
        let got = fs2.read_file(p, &d("/r3")).unwrap();
        assert_eq!(got.bytes().as_ref(), &data[..]);
        // Kill two replica holders of block 0: still readable.
        for host in &locs[0].hosts[..2] {
            for dn in fs2.datanodes() {
                if dn.node() == *host {
                    dn.kill();
                }
            }
        }
        let got = fs2.read_file(p, &d("/r3")).unwrap();
        assert_eq!(got.bytes().as_ref(), &data[..]);
    });
    fx.run();
    h.take().unwrap();
}

#[test]
fn random_placement_is_not_perfectly_balanced() {
    // Paper §2.2: random placement "will often lead to a layout that is not
    // load balanced" — verify the mechanism (and that data still spreads).
    let (fx, fs) = deploy(16, 100);
    let fs2 = fs.clone();
    let h = fx.spawn(NodeId(0), "t", move |p| {
        for i in 0..20 {
            fs2.write_file(
                p,
                &d(&format!("/f{i}")),
                Payload::from_vec(pattern(500, i as u8)),
            )
            .unwrap();
        }
        let counts: Vec<usize> = fs2.datanodes().iter().map(|dn| dn.block_count()).collect();
        let total: usize = counts.iter().sum();
        assert_eq!(total, 100); // 20 files x 5 blocks
        assert!(counts.iter().any(|&c| c > 0));
    });
    fx.run();
    h.take().unwrap();
}

#[test]
fn deleting_files_frees_datanode_space() {
    let (fx, fs) = deploy(4, 256);
    let fs2 = fs.clone();
    let h = fx.spawn(NodeId(0), "t", move |p| {
        fs2.write_file(p, &d("/gc"), Payload::from_vec(pattern(1024, 2)))
            .unwrap();
        assert_eq!(fs2.total_stored_bytes(), 1024);
        assert!(fs2.delete(p, &d("/gc"), false).unwrap());
        assert_eq!(fs2.total_stored_bytes(), 0);
    });
    fx.run();
    h.take().unwrap();
}

#[test]
fn paper_scale_ghost_write_throughput() {
    // One client writing 4 chunks of 64 MB through a 3-replica pipeline on
    // the 270-node cluster: each chunk moves at single-link speed.
    let fx = Fabric::sim(ClusterSpec::orsay_270());
    let fs = HdfsSim::deploy_paper(&fx, HdfsConfig::paper());
    let h = fx.spawn(NodeId(50), "writer", move |p| {
        let start = p.now();
        let mut w = fs.create(p, &d("/big")).unwrap();
        for _ in 0..4 {
            w.write(p, Payload::ghost(64 * 1024 * 1024)).unwrap();
        }
        w.close(p).unwrap();
        let elapsed = fabric::ns_to_secs(p.now() - start);
        assert!(
            (2.0..5.0).contains(&elapsed),
            "4x64MB pipelined chunks took {elapsed}s"
        );
        assert_eq!(fs.total_stored_bytes(), 3 * 4 * 64 * 1024 * 1024);
    });
    fx.run();
    h.take().unwrap();
}
