//! The HDFS namenode: "a centralized namenode is responsible for keeping
//! the file metadata and the chunk location" (paper §2.2).
//!
//! Semantics follow HDFS 0.20, the release the paper evaluates:
//! write-once-read-many, single-writer leases, random block placement
//! ("HDFS picks random servers to store the data, which will often lead to
//! a layout that is not load balanced"), and **no append** — that error is
//! raised at the FileSystem layer.

use std::collections::HashMap;

use dfs::{DfsPath, FsError, FsResult};
use fabric::{NodeId, Proc};
use parking_lot::Mutex;
use rand::seq::SliceRandom;

/// One block of a file.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BlockInfo {
    pub id: u64,
    pub len: u64,
    pub replicas: Vec<NodeId>,
}

/// Lease token proving write ownership of an under-construction file.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Lease(pub u64);

#[derive(Debug, Clone)]
enum NnEntry {
    Dir,
    File {
        blocks: Vec<BlockInfo>,
        /// `Some(lease)` while under construction; `None` once closed
        /// (immutable from then on).
        lease: Option<Lease>,
        block_size: u64,
    },
}

struct NnState {
    entries: HashMap<DfsPath, NnEntry>,
    next_block: u64,
    next_lease: u64,
}

/// The centralized metadata service.
pub struct Namenode {
    node: NodeId,
    datanodes: Vec<NodeId>,
    replication: usize,
    ctl_msg_bytes: u64,
    cpu_ops: u64,
    state: Mutex<NnState>,
}

impl Namenode {
    pub fn new(
        node: NodeId,
        datanodes: Vec<NodeId>,
        replication: usize,
        ctl_msg_bytes: u64,
        cpu_ops: u64,
    ) -> Self {
        assert!(!datanodes.is_empty(), "namenode needs datanodes");
        let replication = replication.min(datanodes.len()).max(1);
        let mut entries = HashMap::new();
        entries.insert(DfsPath::root(), NnEntry::Dir);
        Namenode {
            node,
            datanodes,
            replication,
            ctl_msg_bytes,
            cpu_ops,
            state: Mutex::new(NnState {
                entries,
                next_block: 1,
                next_lease: 1,
            }),
        }
    }

    pub fn node(&self) -> NodeId {
        self.node
    }

    pub fn replication(&self) -> usize {
        self.replication
    }

    fn charge(&self, p: &Proc) {
        p.rpc(self.node, self.ctl_msg_bytes, self.ctl_msg_bytes);
        if self.cpu_ops > 0 {
            p.compute(self.node, self.cpu_ops);
        }
    }

    fn mkdirs_locked(st: &mut NnState, path: &DfsPath) -> FsResult<()> {
        let mut cur = DfsPath::root();
        for comp in path.components() {
            cur = cur.child(comp)?;
            match st.entries.get(&cur) {
                None => {
                    st.entries.insert(cur.clone(), NnEntry::Dir);
                }
                Some(NnEntry::Dir) => {}
                Some(NnEntry::File { .. }) => return Err(FsError::NotADirectory(cur)),
            }
        }
        Ok(())
    }

    /// Start a new file under construction; returns the write lease.
    pub fn create_file(&self, p: &Proc, path: &DfsPath, block_size: u64) -> FsResult<Lease> {
        self.charge(p);
        if path.is_root() {
            return Err(FsError::IsADirectory(path.clone()));
        }
        let mut st = self.state.lock();
        if st.entries.contains_key(path) {
            return Err(FsError::AlreadyExists(path.clone()));
        }
        if let Some(parent) = path.parent() {
            Self::mkdirs_locked(&mut st, &parent)?;
        }
        let lease = Lease(st.next_lease);
        st.next_lease += 1;
        st.entries.insert(
            path.clone(),
            NnEntry::File {
                blocks: Vec::new(),
                lease: Some(lease),
                block_size,
            },
        );
        Ok(lease)
    }

    /// Allocate the next block of an under-construction file on
    /// `replication` random datanodes.
    pub fn add_block(&self, p: &Proc, path: &DfsPath, lease: Lease) -> FsResult<BlockInfo> {
        self.charge(p);
        let replicas: Vec<NodeId> = {
            let mut rng = p.rng();
            self.datanodes
                .choose_multiple(&mut *rng, self.replication)
                .copied()
                .collect()
        };
        let mut st = self.state.lock();
        let id = st.next_block;
        st.next_block += 1;
        let entry = st
            .entries
            .get_mut(path)
            .ok_or_else(|| FsError::NotFound(path.clone()))?;
        match entry {
            NnEntry::Dir => Err(FsError::IsADirectory(path.clone())),
            NnEntry::File {
                blocks, lease: cur, ..
            } => {
                if *cur != Some(lease) {
                    return Err(FsError::LeaseConflict(path.clone()));
                }
                let info = BlockInfo {
                    id,
                    len: 0,
                    replicas,
                };
                blocks.push(info.clone());
                Ok(info)
            }
        }
    }

    /// Record the final length of a block once its pipeline finished.
    pub fn complete_block(
        &self,
        p: &Proc,
        path: &DfsPath,
        lease: Lease,
        block_id: u64,
        len: u64,
    ) -> FsResult<()> {
        self.charge(p);
        let mut st = self.state.lock();
        let entry = st
            .entries
            .get_mut(path)
            .ok_or_else(|| FsError::NotFound(path.clone()))?;
        match entry {
            NnEntry::Dir => Err(FsError::IsADirectory(path.clone())),
            NnEntry::File {
                blocks, lease: cur, ..
            } => {
                if *cur != Some(lease) {
                    return Err(FsError::LeaseConflict(path.clone()));
                }
                let b = blocks
                    .iter_mut()
                    .find(|b| b.id == block_id)
                    .ok_or_else(|| FsError::Storage(format!("unknown block {block_id}")))?;
                b.len = len;
                Ok(())
            }
        }
    }

    /// Close the file: release the lease and freeze it forever.
    pub fn complete_file(&self, p: &Proc, path: &DfsPath, lease: Lease) -> FsResult<()> {
        self.charge(p);
        let mut st = self.state.lock();
        let entry = st
            .entries
            .get_mut(path)
            .ok_or_else(|| FsError::NotFound(path.clone()))?;
        match entry {
            NnEntry::Dir => Err(FsError::IsADirectory(path.clone())),
            NnEntry::File { lease: cur, .. } => {
                if *cur != Some(lease) {
                    return Err(FsError::LeaseConflict(path.clone()));
                }
                *cur = None;
                Ok(())
            }
        }
    }

    /// Blocks of a file (readers; includes under-construction files, whose
    /// completed prefix is readable, matching 0.20 behaviour).
    pub fn get_blocks(&self, p: &Proc, path: &DfsPath) -> FsResult<(Vec<BlockInfo>, u64)> {
        self.charge(p);
        let st = self.state.lock();
        match st.entries.get(path) {
            None => Err(FsError::NotFound(path.clone())),
            Some(NnEntry::Dir) => Err(FsError::IsADirectory(path.clone())),
            Some(NnEntry::File {
                blocks, block_size, ..
            }) => Ok((blocks.clone(), *block_size)),
        }
    }

    /// Status of a path: `(is_dir, len, block_size)`.
    pub fn status(&self, p: &Proc, path: &DfsPath) -> FsResult<(bool, u64, u64)> {
        self.charge(p);
        let st = self.state.lock();
        match st.entries.get(path) {
            None => Err(FsError::NotFound(path.clone())),
            Some(NnEntry::Dir) => Ok((true, 0, 0)),
            Some(NnEntry::File {
                blocks, block_size, ..
            }) => Ok((false, blocks.iter().map(|b| b.len).sum(), *block_size)),
        }
    }

    pub fn mkdirs(&self, p: &Proc, path: &DfsPath) -> FsResult<()> {
        self.charge(p);
        let mut st = self.state.lock();
        Self::mkdirs_locked(&mut st, path)
    }

    /// Children of a directory with `(is_dir, len, block_size)`.
    #[allow(clippy::type_complexity)]
    pub fn list(&self, p: &Proc, path: &DfsPath) -> FsResult<Vec<(DfsPath, bool, u64, u64)>> {
        self.charge(p);
        let st = self.state.lock();
        match st.entries.get(path) {
            None => return Err(FsError::NotFound(path.clone())),
            Some(NnEntry::File { .. }) => return Err(FsError::NotADirectory(path.clone())),
            Some(NnEntry::Dir) => {}
        }
        let mut out: Vec<(DfsPath, bool, u64, u64)> = st
            .entries
            .iter()
            .filter(|(k, _)| !k.is_root() && k.parent().as_ref() == Some(path))
            .map(|(k, v)| match v {
                NnEntry::Dir => (k.clone(), true, 0, 0),
                NnEntry::File {
                    blocks, block_size, ..
                } => (
                    k.clone(),
                    false,
                    blocks.iter().map(|b| b.len).sum(),
                    *block_size,
                ),
            })
            .collect();
        out.sort_by(|a, b| a.0.cmp(&b.0));
        Ok(out)
    }

    pub fn rename(&self, p: &Proc, src: &DfsPath, dst: &DfsPath) -> FsResult<()> {
        self.charge(p);
        if src.is_root() {
            return Err(FsError::InvalidPath {
                path: src.to_string(),
                reason: "cannot rename the root".into(),
            });
        }
        if dst.starts_with(src) {
            return Err(FsError::InvalidPath {
                path: dst.to_string(),
                reason: "destination lies inside the source".into(),
            });
        }
        let mut st = self.state.lock();
        if !st.entries.contains_key(src) {
            return Err(FsError::NotFound(src.clone()));
        }
        if st.entries.contains_key(dst) {
            return Err(FsError::AlreadyExists(dst.clone()));
        }
        if let Some(parent) = dst.parent() {
            Self::mkdirs_locked(&mut st, &parent)?;
        }
        let to_move: Vec<DfsPath> = st
            .entries
            .keys()
            .filter(|k| k.starts_with(src))
            .cloned()
            .collect();
        for old in to_move {
            let entry = st.entries.remove(&old).expect("listed");
            let new = old.rebase(src, dst).expect("rebase");
            st.entries.insert(new, entry);
        }
        Ok(())
    }

    /// Delete; returns `(removed, block ids to GC)`.
    pub fn delete(&self, p: &Proc, path: &DfsPath, recursive: bool) -> FsResult<(bool, Vec<u64>)> {
        self.charge(p);
        if path.is_root() {
            return Err(FsError::InvalidPath {
                path: path.to_string(),
                reason: "cannot delete the root".into(),
            });
        }
        let mut st = self.state.lock();
        let Some(entry) = st.entries.get(path) else {
            return Ok((false, Vec::new()));
        };
        let mut gc = Vec::new();
        match entry {
            NnEntry::Dir => {
                let children: Vec<DfsPath> = st
                    .entries
                    .keys()
                    .filter(|k| *k != path && k.starts_with(path))
                    .cloned()
                    .collect();
                if !children.is_empty() && !recursive {
                    return Err(FsError::DirectoryNotEmpty(path.clone()));
                }
                for k in children {
                    if let Some(NnEntry::File { blocks, .. }) = st.entries.remove(&k) {
                        gc.extend(blocks.iter().map(|b| b.id));
                    }
                }
                st.entries.remove(path);
            }
            NnEntry::File { .. } => {
                if let Some(NnEntry::File { blocks, .. }) = st.entries.remove(path) {
                    gc.extend(blocks.iter().map(|b| b.id));
                }
            }
        }
        Ok((true, gc))
    }

    /// Number of namespace entries (the paper's "file-count problem"
    /// metric).
    pub fn entry_count(&self) -> usize {
        self.state.lock().entries.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fabric::{ClusterSpec, Fabric};

    fn d(s: &str) -> DfsPath {
        DfsPath::new(s).unwrap()
    }

    fn with_proc<T: Send + 'static>(f: impl FnOnce(&Proc) -> T + Send + 'static) -> T {
        let fx = Fabric::sim(ClusterSpec::tiny(8));
        let h = fx.spawn(NodeId(0), "t", f);
        fx.run();
        h.take().unwrap()
    }

    fn nn() -> Namenode {
        Namenode::new(NodeId(0), (1..8).map(NodeId).collect(), 3, 64, 0)
    }

    #[test]
    fn create_write_close_lifecycle() {
        with_proc(|p| {
            let nn = nn();
            let lease = nn.create_file(p, &d("/f"), 1000).unwrap();
            let b1 = nn.add_block(p, &d("/f"), lease).unwrap();
            assert_eq!(b1.replicas.len(), 3);
            nn.complete_block(p, &d("/f"), lease, b1.id, 1000).unwrap();
            let b2 = nn.add_block(p, &d("/f"), lease).unwrap();
            nn.complete_block(p, &d("/f"), lease, b2.id, 400).unwrap();
            nn.complete_file(p, &d("/f"), lease).unwrap();
            let (is_dir, len, bs) = nn.status(p, &d("/f")).unwrap();
            assert!(!is_dir);
            assert_eq!(len, 1400);
            assert_eq!(bs, 1000);
            // Lease is gone: further writes rejected.
            assert!(matches!(
                nn.add_block(p, &d("/f"), lease),
                Err(FsError::LeaseConflict(_))
            ));
        });
    }

    #[test]
    fn stale_lease_is_rejected() {
        with_proc(|p| {
            let nn = nn();
            let lease = nn.create_file(p, &d("/f"), 1000).unwrap();
            let fake = Lease(lease.0 + 999);
            assert!(matches!(
                nn.add_block(p, &d("/f"), fake),
                Err(FsError::LeaseConflict(_))
            ));
        });
    }

    #[test]
    fn random_placement_uses_distinct_nodes() {
        with_proc(|p| {
            let nn = nn();
            let lease = nn.create_file(p, &d("/f"), 1000).unwrap();
            for _ in 0..10 {
                let b = nn.add_block(p, &d("/f"), lease).unwrap();
                let mut r: Vec<u32> = b.replicas.iter().map(|n| n.0).collect();
                r.sort_unstable();
                r.dedup();
                assert_eq!(r.len(), 3);
            }
        });
    }

    #[test]
    fn replication_clamped_to_cluster_size() {
        let nn = Namenode::new(NodeId(0), vec![NodeId(1), NodeId(2)], 3, 64, 0);
        assert_eq!(nn.replication(), 2);
    }

    #[test]
    fn delete_returns_blocks_for_gc() {
        with_proc(|p| {
            let nn = nn();
            let lease = nn.create_file(p, &d("/dir/f"), 1000).unwrap();
            let b = nn.add_block(p, &d("/dir/f"), lease).unwrap();
            nn.complete_block(p, &d("/dir/f"), lease, b.id, 10).unwrap();
            nn.complete_file(p, &d("/dir/f"), lease).unwrap();
            let (removed, gc) = nn.delete(p, &d("/dir"), true).unwrap();
            assert!(removed);
            assert_eq!(gc, vec![b.id]);
        });
    }
}
