//! `HdfsSim`: the [`dfs::FileSystem`] implementation of the HDFS baseline.
//!
//! Client-side behaviour follows paper §2.2: writes buffer until a full
//! 64 MB chunk, which is then streamed through a replication pipeline
//! (modeled as one cut-through chained flow); reads prefetch whole chunks
//! ("readahead buffering"); `append` is not supported.

use std::collections::HashMap;
use std::sync::Arc;

use dfs::{
    BlockLocation, DfsPath, FileReader, FileStatus, FileSystem, FileWriter, FsError, FsResult,
};
use fabric::{ClusterSpec, Fabric, NodeId, Payload, Proc};
use rand::seq::SliceRandom;

use crate::datanode::Datanode;
use crate::namenode::{BlockInfo, Lease, Namenode};

/// Deployment tunables.
#[derive(Debug, Clone)]
pub struct HdfsConfig {
    /// Chunk size; 64 MB in the paper (§2.2).
    pub block_size: u64,
    /// Replication factor (HDFS default 3; clamped to the datanode count).
    pub replication: usize,
    /// Modeled size of a control RPC.
    pub ctl_msg_bytes: u64,
    /// CPU charged on the namenode per request.
    pub nn_cpu_ops: u64,
}

impl Default for HdfsConfig {
    fn default() -> Self {
        HdfsConfig {
            block_size: 64 * 1024 * 1024,
            replication: 3,
            ctl_msg_bytes: 128,
            nn_cpu_ops: 1_000_000,
        }
    }
}

impl HdfsConfig {
    /// Paper-style deployment config.
    pub fn paper() -> Self {
        Self::default()
    }

    /// Small blocks for functional tests.
    pub fn test_small(block_size: u64) -> Self {
        HdfsConfig {
            block_size,
            replication: 1,
            nn_cpu_ops: 0,
            ..Self::default()
        }
    }

    pub fn with_replication(mut self, r: usize) -> Self {
        self.replication = r.max(1);
        self
    }

    pub fn with_block_size(mut self, b: u64) -> Self {
        assert!(b > 0);
        self.block_size = b;
        self
    }
}

/// Node placement for an HDFS deployment.
#[derive(Debug, Clone)]
pub struct HdfsLayout {
    pub namenode: NodeId,
    pub datanodes: Vec<NodeId>,
}

impl HdfsLayout {
    /// Paper layout (§4.1): "for HDFS we deployed the namenode on a
    /// dedicated machine and the datanodes on the remaining nodes". The
    /// datanode set mirrors the BSFS provider set (nodes 23..N) so both
    /// systems store data on identical machines in comparisons.
    pub fn paper(spec: &ClusterSpec) -> HdfsLayout {
        assert!(spec.nodes >= 30, "paper layout needs >= 30 nodes");
        HdfsLayout {
            namenode: NodeId(0),
            datanodes: (23..spec.nodes).map(NodeId).collect(),
        }
    }

    /// Tiny layout for tests.
    pub fn compact(spec: &ClusterSpec) -> HdfsLayout {
        HdfsLayout {
            namenode: NodeId(0),
            datanodes: spec.all_nodes().collect(),
        }
    }
}

struct Inner {
    nn: Arc<Namenode>,
    datanodes: Vec<Arc<Datanode>>,
    dn_map: HashMap<NodeId, Arc<Datanode>>,
    config: HdfsConfig,
}

/// A deployed HDFS instance (cheap to clone; clones share the deployment).
#[derive(Clone)]
pub struct HdfsSim {
    inner: Arc<Inner>,
}

impl HdfsSim {
    pub fn deploy(_fabric: &Fabric, config: HdfsConfig, layout: HdfsLayout) -> HdfsSim {
        let datanodes: Vec<Arc<Datanode>> = layout
            .datanodes
            .iter()
            .map(|&n| Arc::new(Datanode::new(n)))
            .collect();
        let dn_map = datanodes.iter().map(|d| (d.node(), d.clone())).collect();
        let nn = Arc::new(Namenode::new(
            layout.namenode,
            layout.datanodes.clone(),
            config.replication,
            config.ctl_msg_bytes,
            config.nn_cpu_ops,
        ));
        HdfsSim {
            inner: Arc::new(Inner {
                nn,
                datanodes,
                dn_map,
                config,
            }),
        }
    }

    /// Deploy with the paper layout.
    pub fn deploy_paper(fabric: &Fabric, config: HdfsConfig) -> HdfsSim {
        let layout = HdfsLayout::paper(fabric.spec());
        Self::deploy(fabric, config, layout)
    }

    pub fn namenode(&self) -> &Arc<Namenode> {
        &self.inner.nn
    }

    pub fn datanodes(&self) -> &[Arc<Datanode>] {
        &self.inner.datanodes
    }

    pub fn config(&self) -> &HdfsConfig {
        &self.inner.config
    }

    /// Total bytes stored across datanodes (all replicas).
    pub fn total_stored_bytes(&self) -> u64 {
        self.inner.datanodes.iter().map(|d| d.stored_bytes()).sum()
    }
}

struct HdfsWriter {
    inner: Arc<Inner>,
    path: DfsPath,
    lease: Lease,
    pending: Vec<Payload>,
    pending_len: u64,
    written: u64,
    closed: bool,
}

impl HdfsWriter {
    fn flush_blocks(&mut self, p: &Proc, all: bool) -> FsResult<()> {
        let bs = self.inner.config.block_size;
        loop {
            let flush_len = if self.pending_len >= bs {
                bs
            } else if all && self.pending_len > 0 {
                self.pending_len
            } else {
                return Ok(());
            };
            let buffered = Payload::concat(&self.pending);
            let block_data = buffered.slice(0, flush_len);
            let rest = self.pending_len - flush_len;
            self.pending.clear();
            if rest > 0 {
                self.pending.push(buffered.slice(flush_len, rest));
            }
            self.pending_len = rest;

            // Pipeline: namenode allocates, the client streams through the
            // replica chain as one cut-through flow, replicas store.
            let block = self.inner.nn.add_block(p, &self.path, self.lease)?;
            let mut chain = Vec::with_capacity(block.replicas.len() + 1);
            chain.push(p.node());
            chain.extend_from_slice(&block.replicas);
            p.transfer_chain(&chain, flush_len);
            for replica in &block.replicas {
                let dn = self
                    .inner
                    .dn_map
                    .get(replica)
                    .ok_or_else(|| FsError::Storage(format!("no datanode on {replica}")))?;
                dn.store_replica(block.id, block_data.clone())?;
            }
            self.inner
                .nn
                .complete_block(p, &self.path, self.lease, block.id, flush_len)?;
        }
    }
}

impl FileWriter for HdfsWriter {
    fn write(&mut self, p: &Proc, data: Payload) -> FsResult<()> {
        if self.closed {
            return Err(FsError::HandleClosed);
        }
        if data.is_empty() {
            return Ok(());
        }
        self.written += data.len();
        self.pending_len += data.len();
        self.pending.push(data);
        if self.pending_len >= self.inner.config.block_size {
            self.flush_blocks(p, false)?;
        }
        Ok(())
    }

    fn close(&mut self, p: &Proc) -> FsResult<()> {
        if self.closed {
            return Ok(());
        }
        self.flush_blocks(p, true)?;
        self.inner.nn.complete_file(p, &self.path, self.lease)?;
        self.closed = true;
        Ok(())
    }

    fn written(&self) -> u64 {
        self.written
    }
}

struct HdfsReader {
    inner: Arc<Inner>,
    blocks: Vec<BlockInfo>,
    /// Cumulative start offset of each block.
    offsets: Vec<u64>,
    total: u64,
    pos: u64,
    cache: Option<(u64, Payload)>,
}

impl HdfsReader {
    fn fetch_block(&self, p: &Proc, idx: usize) -> FsResult<Payload> {
        let block = &self.blocks[idx];
        // Prefer the local replica (short-circuit read), else random order.
        let mut order = block.replicas.clone();
        {
            let mut rng = p.rng();
            order.shuffle(&mut *rng);
        }
        if let Some(i) = order.iter().position(|n| *n == p.node()) {
            order.swap(0, i);
        }
        let mut last = FsError::Storage(format!("block {} has no replicas", block.id));
        for node in order {
            let Some(dn) = self.inner.dn_map.get(&node) else {
                continue;
            };
            match dn.read_block(p, block.id) {
                Ok(data) => return Ok(data),
                Err(e) => last = e,
            }
        }
        Err(last)
    }
}

impl FileReader for HdfsReader {
    fn read(&mut self, p: &Proc, len: u64) -> FsResult<Payload> {
        if self.pos >= self.total || len == 0 {
            return Ok(Payload::empty());
        }
        let cached =
            matches!(&self.cache, Some((s, d)) if self.pos >= *s && self.pos < s + d.len());
        if !cached {
            // Readahead: fetch the whole chunk containing `pos` (paper §2.2).
            let idx = match self.offsets.binary_search(&self.pos) {
                Ok(i) => i,
                Err(i) => i - 1,
            };
            let data = self.fetch_block(p, idx)?;
            self.cache = Some((self.offsets[idx], data));
        }
        let (s, data) = self.cache.as_ref().expect("populated");
        let end = s + data.len();
        let n = len.min(end - self.pos).min(self.total - self.pos);
        let out = data.slice(self.pos - s, n);
        self.pos += n;
        Ok(out)
    }

    fn seek(&mut self, pos: u64) -> FsResult<()> {
        self.pos = pos;
        Ok(())
    }

    fn pos(&self) -> u64 {
        self.pos
    }

    fn len(&self) -> u64 {
        self.total
    }
}

impl FileSystem for HdfsSim {
    fn create(&self, p: &Proc, path: &DfsPath) -> FsResult<Box<dyn FileWriter>> {
        let lease = self
            .inner
            .nn
            .create_file(p, path, self.inner.config.block_size)?;
        Ok(Box::new(HdfsWriter {
            inner: self.inner.clone(),
            path: path.clone(),
            lease,
            pending: Vec::new(),
            pending_len: 0,
            written: 0,
            closed: false,
        }))
    }

    fn append(&self, _p: &Proc, _path: &DfsPath) -> FsResult<Box<dyn FileWriter>> {
        // Faithful to the evaluated HDFS release: the API exists, the
        // implementation refuses (paper §2.1).
        Err(FsError::AppendUnsupported { fs: "hdfs" })
    }

    fn open(&self, p: &Proc, path: &DfsPath) -> FsResult<Box<dyn FileReader>> {
        let (blocks, _) = self.inner.nn.get_blocks(p, path)?;
        let mut offsets = Vec::with_capacity(blocks.len());
        let mut total = 0;
        for b in &blocks {
            offsets.push(total);
            total += b.len;
        }
        Ok(Box::new(HdfsReader {
            inner: self.inner.clone(),
            blocks,
            offsets,
            total,
            pos: 0,
            cache: None,
        }))
    }

    fn delete(&self, p: &Proc, path: &DfsPath, recursive: bool) -> FsResult<bool> {
        let (removed, gc) = self.inner.nn.delete(p, path, recursive)?;
        for id in gc {
            for dn in &self.inner.datanodes {
                dn.drop_block(id);
            }
        }
        Ok(removed)
    }

    fn rename(&self, p: &Proc, src: &DfsPath, dst: &DfsPath) -> FsResult<()> {
        self.inner.nn.rename(p, src, dst)
    }

    fn mkdirs(&self, p: &Proc, path: &DfsPath) -> FsResult<()> {
        self.inner.nn.mkdirs(p, path)
    }

    fn status(&self, p: &Proc, path: &DfsPath) -> FsResult<FileStatus> {
        let (is_dir, len, block_size) = self.inner.nn.status(p, path)?;
        Ok(FileStatus {
            path: path.clone(),
            len,
            is_dir,
            block_size: if is_dir {
                self.inner.config.block_size
            } else {
                block_size
            },
        })
    }

    fn list(&self, p: &Proc, path: &DfsPath) -> FsResult<Vec<FileStatus>> {
        Ok(self
            .inner
            .nn
            .list(p, path)?
            .into_iter()
            .map(|(child, is_dir, len, block_size)| FileStatus {
                path: child,
                len,
                is_dir,
                block_size: if is_dir {
                    self.inner.config.block_size
                } else {
                    block_size
                },
            })
            .collect())
    }

    fn block_locations(
        &self,
        p: &Proc,
        path: &DfsPath,
        offset: u64,
        len: u64,
    ) -> FsResult<Vec<BlockLocation>> {
        let (blocks, _) = self.inner.nn.get_blocks(p, path)?;
        let mut out = Vec::new();
        let mut off = 0;
        for b in &blocks {
            if off < offset + len && offset < off + b.len {
                out.push(BlockLocation {
                    offset: off,
                    len: b.len,
                    hosts: b.replicas.clone(),
                });
            }
            off += b.len;
        }
        Ok(out)
    }

    fn default_block_size(&self) -> u64 {
        self.inner.config.block_size
    }

    fn supports_append(&self) -> bool {
        false
    }

    fn scheme(&self) -> &'static str {
        "hdfs"
    }
}
