//! `hdfs-sim` — the baseline distributed file system of the comparison: a
//! faithful model of HDFS 0.20 semantics as described in paper §2.2.
//!
//! * centralized [`Namenode`] (namespace + chunk locations, single-writer
//!   leases, random block placement);
//! * [`Datanode`]s storing 64 MB chunks, written through a replication
//!   pipeline (modeled as one cut-through flow over all hops);
//! * client-side buffering of a full chunk before writing, whole-chunk
//!   readahead on reads;
//! * write-once-read-many: once closed, files are immutable, and
//!   **`append` is not supported** — the exact limitation the paper
//!   addresses with BSFS.

mod datanode;
mod fs;
mod namenode;

pub use datanode::Datanode;
pub use fs::{HdfsConfig, HdfsLayout, HdfsSim};
pub use namenode::{BlockInfo, Lease, Namenode};
