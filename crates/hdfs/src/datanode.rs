//! Datanodes: block storage servers (paper §2.2: "a file is split into
//! 64 MB chunks that are placed on storage nodes, called datanodes").

use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};

use fabric::{NodeId, Payload, Proc};
use parking_lot::Mutex;

use dfs::{FsError, FsResult};

/// One block-storage server.
pub struct Datanode {
    node: NodeId,
    alive: AtomicBool,
    blocks: Mutex<HashMap<u64, Payload>>,
    stored_bytes: AtomicU64,
}

impl Datanode {
    pub fn new(node: NodeId) -> Self {
        Datanode {
            node,
            alive: AtomicBool::new(true),
            blocks: Mutex::new(HashMap::new()),
            stored_bytes: AtomicU64::new(0),
        }
    }

    pub fn node(&self) -> NodeId {
        self.node
    }

    pub fn is_alive(&self) -> bool {
        self.alive.load(Ordering::Acquire)
    }

    pub fn kill(&self) {
        self.alive.store(false, Ordering::Release);
    }

    pub fn revive(&self) {
        self.alive.store(true, Ordering::Release);
    }

    pub fn stored_bytes(&self) -> u64 {
        self.stored_bytes.load(Ordering::Relaxed)
    }

    pub fn block_count(&self) -> usize {
        self.blocks.lock().len()
    }

    /// Store a replica. The network cost of the write pipeline is charged by
    /// the client (a single chained flow), so this only records the data.
    pub fn store_replica(&self, id: u64, data: Payload) -> FsResult<()> {
        if !self.is_alive() {
            return Err(FsError::Storage(format!("datanode {} is down", self.node)));
        }
        let mut blocks = self.blocks.lock();
        if blocks.insert(id, data.clone()).is_none() {
            self.stored_bytes.fetch_add(data.len(), Ordering::Relaxed);
        }
        Ok(())
    }

    /// Serve a whole block to the calling client (charges the
    /// datanode→client transfer).
    pub fn read_block(&self, p: &Proc, id: u64) -> FsResult<Payload> {
        if !self.is_alive() {
            return Err(FsError::Storage(format!("datanode {} is down", self.node)));
        }
        let data =
            self.blocks.lock().get(&id).cloned().ok_or_else(|| {
                FsError::Storage(format!("block {id} not on datanode {}", self.node))
            })?;
        p.transfer(self.node, p.node(), data.len());
        Ok(data)
    }

    /// Drop a block (GC after file deletion).
    pub fn drop_block(&self, id: u64) {
        let mut blocks = self.blocks.lock();
        if let Some(b) = blocks.remove(&id) {
            self.stored_bytes.fetch_sub(b.len(), Ordering::Relaxed);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fabric::{ClusterSpec, Fabric};

    #[test]
    fn store_read_drop() {
        let fx = Fabric::sim(ClusterSpec::tiny(2));
        let h = fx.spawn(NodeId(0), "t", |p| {
            let dn = Datanode::new(NodeId(1));
            dn.store_replica(7, Payload::from_vec(vec![1, 2, 3]))
                .unwrap();
            assert_eq!(dn.stored_bytes(), 3);
            assert_eq!(dn.read_block(p, 7).unwrap().bytes().as_ref(), &[1, 2, 3]);
            assert!(dn.read_block(p, 8).is_err());
            dn.drop_block(7);
            assert_eq!(dn.stored_bytes(), 0);
            assert_eq!(dn.block_count(), 0);
        });
        fx.run();
        h.take().unwrap();
    }

    #[test]
    fn dead_datanode_rejects() {
        let fx = Fabric::sim(ClusterSpec::tiny(2));
        let h = fx.spawn(NodeId(0), "t", |p| {
            let dn = Datanode::new(NodeId(1));
            dn.store_replica(1, Payload::ghost(10)).unwrap();
            dn.kill();
            assert!(dn.read_block(p, 1).is_err());
            assert!(dn.store_replica(2, Payload::ghost(5)).is_err());
            dn.revive();
            assert_eq!(dn.read_block(p, 1).unwrap().len(), 10);
        });
        fx.run();
        h.take().unwrap();
    }
}
