//! Satellite: torn-tail recovery crash-point sweep.
//!
//! For a random operation history (puts, deletes, an optional mid-stream
//! checkpoint), truncate the active segment at EVERY byte boundary of the
//! final appended record — from "record entirely gone" to "one byte short"
//! — and assert prefix-consistent replay: the latest checkpoint plus every
//! complete record survives, the damaged tail is discarded, and the store
//! stays writable afterwards.

use std::collections::HashMap;
use std::path::{Path, PathBuf};

use proptest::prelude::*;
use pstore::{Store, StoreOptions};

const HEADER: u64 = 12; // crc32 + key_len + val_len

/// Record length plus the full key→value model right after that record
/// appended — one entry per appended record of the history.
type AppendedState = (u64, HashMap<Vec<u8>, Vec<u8>>);

#[derive(Debug, Clone)]
enum Op {
    Put(u8, usize),
    Delete(u8),
}

fn op_strategy() -> impl Strategy<Value = Op> {
    prop_oneof![
        4 => (any::<u8>(), 0..48usize).prop_map(|(k, n)| Op::Put(k, n)),
        1 => any::<u8>().prop_map(Op::Delete),
    ]
}

fn key(k: u8) -> Vec<u8> {
    format!("key-{k}").into_bytes()
}

fn value(k: u8, i: usize, n: usize) -> Vec<u8> {
    vec![k ^ (i as u8), 0x5A]
        .into_iter()
        .cycle()
        .take(n)
        .collect()
}

struct TempDir(PathBuf);
impl TempDir {
    fn new() -> Self {
        use std::sync::atomic::{AtomicU64, Ordering};
        static N: AtomicU64 = AtomicU64::new(0);
        let p = std::env::temp_dir().join(format!(
            "pstore-crashpoint-{}-{}",
            std::process::id(),
            N.fetch_add(1, Ordering::Relaxed)
        ));
        let _ = std::fs::remove_dir_all(&p);
        std::fs::create_dir_all(&p).unwrap();
        TempDir(p)
    }
}
impl Drop for TempDir {
    fn drop(&mut self) {
        let _ = std::fs::remove_dir_all(&self.0);
    }
}

fn copy_dir(src: &Path, dst: &Path) {
    let _ = std::fs::remove_dir_all(dst);
    std::fs::create_dir_all(dst).unwrap();
    for entry in std::fs::read_dir(src).unwrap() {
        let entry = entry.unwrap();
        std::fs::copy(entry.path(), dst.join(entry.file_name())).unwrap();
    }
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 24, ..ProptestConfig::default() })]

    #[test]
    fn crash_point_sweep_recovers_every_complete_prefix(
        ops_prefix in prop::collection::vec(op_strategy(), 1..12),
        last in (any::<u8>(), 1..48usize),
        ckpt_sel in any::<u8>(),
    ) {
        // The sweep is over the final record's bytes, so the history must
        // end with an op that certainly appends one.
        let mut ops = ops_prefix;
        ops.push(Op::Put(last.0, last.1));
        // Optionally checkpoint after some op strictly before the last, so
        // recovery of the torn tail also exercises checkpoint + replay.
        let ckpt_at = if ckpt_sel % 2 == 0 {
            Some(ckpt_sel as usize % (ops.len() - 1).max(1))
        } else {
            None
        };

        let td = TempDir::new();
        let src = td.0.join("src");
        // One segment only: boundaries below are absolute file offsets.
        let opts = StoreOptions { max_segment_bytes: 1 << 30, ..Default::default() };

        let mut model: HashMap<Vec<u8>, Vec<u8>> = HashMap::new();
        // Model state after each *appended* record (deletes of absent keys
        // append nothing), plus that record's length.
        let mut appended: Vec<AppendedState> = Vec::new();
        {
            let store = Store::open_with(&src, opts.clone()).unwrap();
            for (i, op) in ops.iter().enumerate() {
                match op {
                    Op::Put(k, n) => {
                        let v = value(*k, i, *n);
                        store.put(&key(*k), &v).unwrap();
                        model.insert(key(*k), v);
                        appended.push((HEADER + key(*k).len() as u64 + *n as u64, model.clone()));
                    }
                    Op::Delete(k) => {
                        if store.delete(&key(*k)).unwrap() {
                            model.remove(&key(*k));
                            appended.push((HEADER + key(*k).len() as u64, model.clone()));
                        }
                    }
                }
                if ckpt_at == Some(i) {
                    store.checkpoint().unwrap();
                }
            }
            store.flush().unwrap();
        }

        let seg = src.join("00000000.seg");
        let end: u64 = appended.iter().map(|(n, _)| n).sum();
        prop_assert_eq!(std::fs::metadata(&seg).unwrap().len(), end);
        let start = end - appended.last().unwrap().0;
        let expected: &HashMap<Vec<u8>, Vec<u8>> = if appended.len() >= 2 {
            &appended[appended.len() - 2].1
        } else {
            // Only the final record exists; every cut recovers to empty.
            static EMPTY: std::sync::OnceLock<HashMap<Vec<u8>, Vec<u8>>> =
                std::sync::OnceLock::new();
            EMPTY.get_or_init(HashMap::new)
        };

        let work = td.0.join("work");
        for cut in start..end {
            copy_dir(&src, &work);
            let f = std::fs::OpenOptions::new().write(true).open(work.join("00000000.seg")).unwrap();
            f.set_len(cut).unwrap();
            drop(f);

            let store = Store::open_with(&work, opts.clone()).unwrap();
            prop_assert_eq!(store.len(), expected.len(),
                "cut at {} of [{}, {}): wrong key count", cut, start, end);
            for (k, v) in expected {
                let got = store.get(k).unwrap();
                prop_assert_eq!(got.as_ref(), Some(v));
            }
            // The repaired store must remain writable and re-openable.
            store.put(b"post-crash", b"ok").unwrap();
            store.flush().unwrap();
            drop(store);
            let store = Store::open_with(&work, opts.clone()).unwrap();
            let got = store.get(b"post-crash").unwrap();
            prop_assert_eq!(got.as_deref(), Some(&b"ok"[..]));
        }
    }
}
