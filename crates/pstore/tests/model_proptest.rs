//! Property-based test: a `pstore::Store` driven by a random sequence of
//! operations (including flushes, compactions and full close/reopen cycles)
//! must behave exactly like an in-memory `HashMap`.

use std::collections::HashMap;
use std::path::PathBuf;

use proptest::prelude::*;
use pstore::{Store, StoreOptions};

#[derive(Debug, Clone)]
enum Op {
    Put(u8, Vec<u8>),
    Delete(u8),
    Get(u8),
    Flush,
    Compact,
    Reopen,
}

fn op_strategy() -> impl Strategy<Value = Op> {
    prop_oneof![
        4 => (any::<u8>(), prop::collection::vec(any::<u8>(), 0..64)).prop_map(|(k, v)| Op::Put(k, v)),
        2 => any::<u8>().prop_map(Op::Delete),
        3 => any::<u8>().prop_map(Op::Get),
        1 => Just(Op::Flush),
        1 => Just(Op::Compact),
        1 => Just(Op::Reopen),
    ]
}

struct TempDir(PathBuf);
impl TempDir {
    fn new() -> Self {
        use std::sync::atomic::{AtomicU64, Ordering};
        static N: AtomicU64 = AtomicU64::new(0);
        let p = std::env::temp_dir().join(format!(
            "pstore-prop-{}-{}",
            std::process::id(),
            N.fetch_add(1, Ordering::Relaxed)
        ));
        let _ = std::fs::remove_dir_all(&p);
        TempDir(p)
    }
}
impl Drop for TempDir {
    fn drop(&mut self) {
        let _ = std::fs::remove_dir_all(&self.0);
    }
}

fn key_bytes(k: u8) -> Vec<u8> {
    format!("key-{k}").into_bytes()
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 64, ..ProptestConfig::default() })]

    #[test]
    fn store_matches_hashmap_model(ops in prop::collection::vec(op_strategy(), 1..120)) {
        let td = TempDir::new();
        let opts = StoreOptions { max_segment_bytes: 512, ..Default::default() };
        let mut store = Store::open_with(&td.0, opts.clone()).unwrap();
        let mut model: HashMap<Vec<u8>, Vec<u8>> = HashMap::new();
        for op in ops {
            match op {
                Op::Put(k, v) => {
                    store.put(&key_bytes(k), &v).unwrap();
                    model.insert(key_bytes(k), v);
                }
                Op::Delete(k) => {
                    let existed = store.delete(&key_bytes(k)).unwrap();
                    prop_assert_eq!(existed, model.remove(&key_bytes(k)).is_some());
                }
                Op::Get(k) => {
                    prop_assert_eq!(store.get(&key_bytes(k)).unwrap(), model.get(&key_bytes(k)).cloned());
                }
                Op::Flush => store.flush().unwrap(),
                Op::Compact => store.compact().unwrap(),
                Op::Reopen => {
                    store.flush().unwrap();
                    drop(store);
                    store = Store::open_with(&td.0, opts.clone()).unwrap();
                }
            }
            prop_assert_eq!(store.len(), model.len());
        }
        // Final full comparison.
        for (k, v) in &model {
            let got = store.get(k).unwrap();
            prop_assert_eq!(got.as_ref(), Some(v));
        }
        let mut keys = store.keys();
        keys.sort();
        let mut mkeys: Vec<_> = model.keys().cloned().collect();
        mkeys.sort();
        prop_assert_eq!(keys, mkeys);
    }
}
