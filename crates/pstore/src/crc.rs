//! CRC-32 (IEEE 802.3 polynomial), table-driven. Implemented in-repo to keep
//! the dependency set to the approved list.

const POLY: u32 = 0xEDB8_8320;

fn table() -> &'static [u32; 256] {
    use std::sync::OnceLock;
    static TABLE: OnceLock<[u32; 256]> = OnceLock::new();
    TABLE.get_or_init(|| {
        let mut t = [0u32; 256];
        for (i, slot) in t.iter_mut().enumerate() {
            let mut c = i as u32;
            for _ in 0..8 {
                c = if c & 1 != 0 { POLY ^ (c >> 1) } else { c >> 1 };
            }
            *slot = c;
        }
        t
    })
}

/// CRC-32 of `data` (matches zlib's `crc32(0, data)`).
pub fn crc32(data: &[u8]) -> u32 {
    crc32_multi(&[data])
}

/// CRC-32 over the concatenation of several slices without copying.
pub fn crc32_multi(parts: &[&[u8]]) -> u32 {
    let t = table();
    let mut c = 0xFFFF_FFFFu32;
    for part in parts {
        for &b in *part {
            c = t[((c ^ b as u32) & 0xFF) as usize] ^ (c >> 8);
        }
    }
    c ^ 0xFFFF_FFFF
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn known_vectors() {
        // Standard check value for "123456789".
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
        assert_eq!(crc32(b"hello"), 0x3610_A686);
    }

    #[test]
    fn multi_equals_concat() {
        let whole = crc32(b"hello world");
        let parts = crc32_multi(&[b"hello", b" ", b"world"]);
        assert_eq!(whole, parts);
    }

    #[test]
    fn detects_single_bit_flip() {
        let mut data = b"the quick brown fox".to_vec();
        let before = crc32(&data);
        data[7] ^= 0x10;
        assert_ne!(before, crc32(&data));
    }
}
