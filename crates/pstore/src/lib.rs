//! `pstore` — an embedded, log-structured key/value store.
//!
//! BlobSeer "offers persistence through a BerkeleyDB layer" (paper §3.1.1):
//! providers and the namespace manager keep their state in a local embedded
//! database. This crate is that substitute: a crash-consistent,
//! CRC-checksummed, append-only segmented log with an in-memory index,
//! on-demand compaction and recovery-by-scan — the same design family as
//! Bitcask/BDB's logs, small enough to audit.
//!
//! Guarantees:
//! * `put`/`delete` are durable after [`Store::flush`] (or `fsync` mode);
//!   [`Store::flush_buffered`] gives the weaker process-crash contract;
//! * recovery replays segments in order and stops at the first torn/corrupt
//!   record (prefix consistency), discarding the damaged tail;
//! * checkpoints ([`Store::checkpoint`] or `checkpoint_every_bytes`) bound
//!   recovery replay to data-since-last-checkpoint; a damaged checkpoint is
//!   skipped, never trusted;
//! * [`Store::compact`] rewrites live records and reclaims dead space while
//!   preserving the latest value of every key.
//!
//! The store is `Sync`; all operations take `&self`.

mod crc;
mod error;
mod store;

pub use crc::crc32;
pub use error::{PStoreError, PStoreErrorKind, Result};
pub use store::{Store, StoreOptions, StoreStats};
