//! The store proper: segmented append-only log + in-memory index.
//!
//! Disk layout: a directory of `NNNNNNNN.seg` files written strictly
//! append-only. Each record is
//!
//! ```text
//! +-------+---------+---------+----------+----------+
//! | crc32 | key_len | val_len | key      | value    |
//! | u32le | u32le   | u32le   | key_len  | val_len  |
//! +-------+---------+---------+----------+----------+
//! ```
//!
//! with `val_len == u32::MAX` marking a tombstone (delete). The CRC covers
//! everything after itself. The in-memory index maps keys to the segment and
//! offset of their newest record; recovery rebuilds it by scanning segments
//! in id order.
//!
//! Optionally, `NNNNNNNN.ckpt` checkpoint files snapshot the index together
//! with a `(segment, flushed_len)` watermark. Recovery then loads the newest
//! valid checkpoint and replays only the records written after its
//! watermark, bounding open cost by data-since-last-checkpoint rather than
//! total log length. A checkpoint that fails validation (bad CRC, missing
//! segment, watermark past end-of-file) is skipped silently — older
//! checkpoints and finally a full scan always remain as fallbacks, so a
//! damaged checkpoint can never make data unreachable.

use std::collections::{BTreeMap, HashMap};
use std::fs::{File, OpenOptions};
use std::io::{Read, Write};
use std::os::unix::fs::FileExt;
use std::path::{Path, PathBuf};

use parking_lot::Mutex;

use crate::crc::crc32_multi;
use crate::error::{PStoreError, Result};

const TOMBSTONE: u32 = u32::MAX;
const HEADER: usize = 12; // crc + key_len + val_len

const CKPT_MAGIC: [u8; 4] = *b"PSCK";
const CKPT_VERSION: u32 = 1;
/// Fixed checkpoint prelude: magic + version + watermark (seg, len) + count.
const CKPT_HEAD: usize = 4 + 4 + 8 + 8 + 8;
/// Per-entry fixed part: key_len + seg + offset + rec_len.
const CKPT_ENTRY: usize = 4 + 8 + 8 + 8;

/// Tunables for a [`Store`].
#[derive(Debug, Clone)]
pub struct StoreOptions {
    /// Rotate to a new segment once the active one exceeds this size.
    pub max_segment_bytes: u64,
    /// `fsync` after every write (slow, maximally durable). Default: rely on
    /// explicit [`Store::flush`].
    pub fsync_each_write: bool,
    /// Write a checkpoint after this many appended bytes, bounding recovery
    /// replay to data-since-last-checkpoint. `None` (default) disables
    /// automatic checkpoints; [`Store::checkpoint`] stays available.
    pub checkpoint_every_bytes: Option<u64>,
}

impl Default for StoreOptions {
    fn default() -> Self {
        StoreOptions {
            max_segment_bytes: 64 * 1024 * 1024,
            fsync_each_write: false,
            checkpoint_every_bytes: None,
        }
    }
}

/// Occupancy counters (see [`Store::stats`]).
#[derive(Debug, Clone, PartialEq)]
pub struct StoreStats {
    /// Number of live keys.
    pub keys: usize,
    /// Bytes occupied by the newest record of each live key.
    pub live_bytes: u64,
    /// Total bytes across all segments, dead records included.
    pub disk_bytes: u64,
    /// Number of segment files.
    pub segments: usize,
}

impl StoreStats {
    /// Fraction of on-disk bytes not referenced by the index.
    pub fn dead_ratio(&self) -> f64 {
        if self.disk_bytes == 0 {
            0.0
        } else {
            1.0 - (self.live_bytes as f64 / self.disk_bytes as f64)
        }
    }
}

#[derive(Debug, Clone, Copy)]
struct Loc {
    seg: u64,
    offset: u64,
    rec_len: u64,
}

struct Inner {
    dir: PathBuf,
    opts: StoreOptions,
    index: HashMap<Vec<u8>, Loc>,
    /// Read handles for sealed + active segments, keyed by id.
    files: BTreeMap<u64, File>,
    /// On-disk length per segment.
    seg_len: BTreeMap<u64, u64>,
    active: u64,
    /// Bytes appended to the active segment not yet written to the file.
    buf: Vec<u8>,
    /// Bytes of the active segment already in the file.
    flushed: u64,
    live_bytes: u64,
    /// Bytes appended since the last checkpoint (or open).
    since_ckpt: u64,
    /// Id for the next checkpoint file (strictly monotone).
    next_ckpt: u64,
    /// Log bytes scanned past the newest valid checkpoint when this store
    /// was opened — the recovery cost the checkpoint cadence bounds.
    replayed_at_open: u64,
}

/// An embedded log-structured KV store; see the crate docs.
pub struct Store {
    inner: Mutex<Inner>,
}

fn seg_path(dir: &Path, id: u64) -> PathBuf {
    dir.join(format!("{id:08}.seg"))
}

fn ckpt_path(dir: &Path, id: u64) -> PathBuf {
    dir.join(format!("{id:08}.ckpt"))
}

/// A decoded, validated checkpoint: index snapshot plus the replay watermark
/// `(segment, flushed_len)` it was taken at.
struct Checkpoint {
    wseg: u64,
    wlen: u64,
    index: HashMap<Vec<u8>, Loc>,
}

/// Decode + validate a checkpoint file. Any failure — I/O, bad CRC, bad
/// structure, a referenced segment missing or shorter than claimed — returns
/// `None`: checkpoints are an optimization, never an authority.
fn load_checkpoint(path: &Path, seg_disk_len: &BTreeMap<u64, u64>) -> Option<Checkpoint> {
    let data = std::fs::read(path).ok()?;
    if data.len() < CKPT_HEAD + 4 || data[..4] != CKPT_MAGIC {
        return None;
    }
    let body = &data[..data.len() - 4];
    let stored_crc = u32::from_le_bytes(data[data.len() - 4..].try_into().unwrap());
    if crc32_multi(&[body]) != stored_crc {
        return None;
    }
    let u32_at = |p: usize| u32::from_le_bytes(body[p..p + 4].try_into().unwrap());
    let u64_at = |p: usize| u64::from_le_bytes(body[p..p + 8].try_into().unwrap());
    if u32_at(4) != CKPT_VERSION {
        return None;
    }
    let wseg = u64_at(8);
    let wlen = u64_at(16);
    let count = u64_at(24) as usize;
    if seg_disk_len.get(&wseg).copied().unwrap_or(0) < wlen {
        return None;
    }
    let mut index = HashMap::with_capacity(count);
    let mut pos = CKPT_HEAD;
    for _ in 0..count {
        if body.len() < pos + CKPT_ENTRY {
            return None;
        }
        let key_len = u32_at(pos) as usize;
        let loc = Loc {
            seg: u64_at(pos + 4),
            offset: u64_at(pos + 12),
            rec_len: u64_at(pos + 20),
        };
        pos += CKPT_ENTRY;
        if body.len() < pos + key_len {
            return None;
        }
        // Every referenced record must lie within a segment that still
        // exists at (at least) its checkpointed length.
        let seg_len = seg_disk_len.get(&loc.seg).copied()?;
        if loc.offset.checked_add(loc.rec_len)? > seg_len {
            return None;
        }
        index.insert(body[pos..pos + key_len].to_vec(), loc);
        pos += key_len;
    }
    if pos != body.len() {
        return None;
    }
    Some(Checkpoint { wseg, wlen, index })
}

fn encode_record(out: &mut Vec<u8>, key: &[u8], val: Option<&[u8]>) -> u64 {
    let key_len = (key.len() as u32).to_le_bytes();
    let val_len = match val {
        Some(v) => (v.len() as u32).to_le_bytes(),
        None => TOMBSTONE.to_le_bytes(),
    };
    let crc = crc32_multi(&[&key_len, &val_len, key, val.unwrap_or(&[])]);
    let start = out.len();
    out.extend_from_slice(&crc.to_le_bytes());
    out.extend_from_slice(&key_len);
    out.extend_from_slice(&val_len);
    out.extend_from_slice(key);
    if let Some(v) = val {
        out.extend_from_slice(v);
    }
    (out.len() - start) as u64
}

/// Parse one record at `data[pos..]`. Returns `(key, value, record_len)`
/// where `value == None` is a tombstone, or `Err(detail)` for torn/corrupt
/// data.
#[allow(clippy::type_complexity)]
fn parse_record(
    data: &[u8],
    pos: usize,
) -> std::result::Result<(&[u8], Option<&[u8]>, u64), String> {
    if data.len() < pos + HEADER {
        return Err("truncated header".into());
    }
    let crc = u32::from_le_bytes(data[pos..pos + 4].try_into().unwrap());
    let key_len = u32::from_le_bytes(data[pos + 4..pos + 8].try_into().unwrap()) as usize;
    let val_len_raw = u32::from_le_bytes(data[pos + 8..pos + 12].try_into().unwrap());
    let val_len = if val_len_raw == TOMBSTONE {
        0
    } else {
        val_len_raw as usize
    };
    let body = pos + HEADER;
    let end = body
        .checked_add(key_len)
        .and_then(|x| x.checked_add(val_len))
        .ok_or("absurd record length")?;
    if data.len() < end {
        return Err("truncated body".into());
    }
    let key = &data[body..body + key_len];
    let val = &data[body + key_len..end];
    let actual = crc32_multi(&[&data[pos + 4..pos + 8], &data[pos + 8..pos + 12], key, val]);
    if actual != crc {
        return Err(format!(
            "checksum mismatch (stored {crc:#x}, computed {actual:#x})"
        ));
    }
    let value = if val_len_raw == TOMBSTONE {
        None
    } else {
        Some(val)
    };
    Ok((key, value, (end - pos) as u64))
}

impl Store {
    /// Open (or create) a store in `dir` with default options.
    pub fn open(dir: impl AsRef<Path>) -> Result<Store> {
        Self::open_with(dir, StoreOptions::default())
    }

    /// Open (or create) a store in `dir`.
    pub fn open_with(dir: impl AsRef<Path>, opts: StoreOptions) -> Result<Store> {
        let dir = dir.as_ref().to_path_buf();
        std::fs::create_dir_all(&dir)?;
        let mut ids: Vec<u64> = Vec::new();
        let mut ckpt_ids: Vec<u64> = Vec::new();
        for entry in std::fs::read_dir(&dir)? {
            let entry = entry?;
            let name = entry.file_name();
            let name = name.to_string_lossy();
            if let Some(stem) = name.strip_suffix(".seg") {
                if let Ok(id) = stem.parse::<u64>() {
                    ids.push(id);
                }
            } else if let Some(stem) = name.strip_suffix(".ckpt") {
                if let Ok(id) = stem.parse::<u64>() {
                    ckpt_ids.push(id);
                }
            }
        }
        ids.sort_unstable();
        ckpt_ids.sort_unstable();

        // Segment lengths up front: checkpoint validation needs them.
        let mut disk_len: BTreeMap<u64, u64> = BTreeMap::new();
        for &id in &ids {
            disk_len.insert(id, std::fs::metadata(seg_path(&dir, id))?.len());
        }

        // Newest valid checkpoint wins; damaged ones are skipped and the
        // full scan remains the final fallback.
        let mut ckpt = None;
        for &cid in ckpt_ids.iter().rev() {
            if let Some(c) = load_checkpoint(&ckpt_path(&dir, cid), &disk_len) {
                ckpt = Some(c);
                break;
            }
        }
        let (mut index, mut live_bytes, watermark) = match ckpt {
            Some(c) => {
                let live = c.index.values().map(|l| l.rec_len).sum();
                (c.index, live, Some((c.wseg, c.wlen)))
            }
            None => (HashMap::new(), 0u64, None),
        };

        let mut files = BTreeMap::new();
        let mut seg_len = BTreeMap::new();
        let mut replayed = 0u64;
        let newest = ids.last().copied();
        for &id in &ids {
            let path = seg_path(&dir, id);
            let mut f = OpenOptions::new().read(true).append(true).open(&path)?;
            // Segments fully covered by the checkpoint are not rescanned;
            // the watermark segment replays from its checkpointed length.
            let start = match watermark {
                Some((wseg, _)) if id < wseg => None,
                Some((wseg, wlen)) if id == wseg => Some(wlen as usize),
                _ => Some(0usize),
            };
            let Some(start) = start else {
                seg_len.insert(id, disk_len[&id]);
                files.insert(id, f);
                continue;
            };
            let mut data = Vec::new();
            f.read_to_end(&mut data)?;
            let mut pos = start;
            while pos < data.len() {
                match parse_record(&data, pos) {
                    Ok((key, val, rec_len)) => {
                        let old = if val.is_some() {
                            index.insert(
                                key.to_vec(),
                                Loc {
                                    seg: id,
                                    offset: pos as u64,
                                    rec_len,
                                },
                            )
                        } else {
                            index.remove(key)
                        };
                        if let Some(o) = old {
                            live_bytes -= o.rec_len;
                        }
                        if val.is_some() {
                            live_bytes += rec_len;
                        }
                        pos += rec_len as usize;
                    }
                    Err(detail) => {
                        if Some(id) == newest {
                            // Torn tail from a crash mid-append: discard it.
                            f.set_len(pos as u64)?;
                            data.truncate(pos);
                            break;
                        }
                        return Err(PStoreError::Corrupt {
                            segment: id,
                            offset: pos as u64,
                            detail,
                        });
                    }
                }
            }
            replayed += (data.len() - start) as u64;
            seg_len.insert(id, data.len() as u64);
            files.insert(id, f);
        }

        let active = match newest {
            Some(id) => id,
            None => {
                let f = OpenOptions::new()
                    .read(true)
                    .append(true)
                    .create(true)
                    .open(seg_path(&dir, 0))?;
                files.insert(0, f);
                seg_len.insert(0, 0);
                0
            }
        };
        let flushed = seg_len[&active];
        let next_ckpt = ckpt_ids.last().map_or(0, |c| c + 1);
        Ok(Store {
            inner: Mutex::new(Inner {
                dir,
                opts,
                index,
                files,
                seg_len,
                active,
                buf: Vec::new(),
                flushed,
                live_bytes,
                // Replayed-but-uncheckpointed bytes count against the
                // checkpoint budget, so crash loops with short uptimes
                // still converge on bounded replay.
                since_ckpt: replayed,
                next_ckpt,
                replayed_at_open: replayed,
            }),
        })
    }

    /// Insert or replace `key`.
    pub fn put(&self, key: &[u8], val: &[u8]) -> Result<()> {
        let mut g = self.inner.lock();
        let inner = &mut *g;
        inner.maybe_rotate()?;
        let offset = inner.flushed + inner.buf.len() as u64;
        let rec_len = encode_record(&mut inner.buf, key, Some(val));
        let old = inner.index.insert(
            key.to_vec(),
            Loc {
                seg: inner.active,
                offset,
                rec_len,
            },
        );
        if let Some(o) = old {
            inner.live_bytes -= o.rec_len;
        }
        inner.live_bytes += rec_len;
        *inner.seg_len.get_mut(&inner.active).unwrap() = offset + rec_len;
        inner.since_ckpt += rec_len;
        if inner.opts.fsync_each_write {
            inner.flush(true)?;
        }
        inner.maybe_checkpoint()?;
        Ok(())
    }

    /// Fetch the newest value of `key`.
    pub fn get(&self, key: &[u8]) -> Result<Option<Vec<u8>>> {
        let mut g = self.inner.lock();
        let inner = &mut *g;
        let Some(loc) = inner.index.get(key).copied() else {
            return Ok(None);
        };
        let data = inner.read_record(loc)?;
        let (k, v, _) = parse_record(&data, 0).map_err(|detail| PStoreError::Corrupt {
            segment: loc.seg,
            offset: loc.offset,
            detail,
        })?;
        debug_assert_eq!(k, key);
        Ok(v.map(|v| v.to_vec()))
    }

    /// Remove `key`; returns whether it existed.
    pub fn delete(&self, key: &[u8]) -> Result<bool> {
        let mut g = self.inner.lock();
        let inner = &mut *g;
        if !inner.index.contains_key(key) {
            return Ok(false);
        }
        inner.maybe_rotate()?;
        let offset = inner.flushed + inner.buf.len() as u64;
        let rec_len = encode_record(&mut inner.buf, key, None);
        if let Some(o) = inner.index.remove(key) {
            inner.live_bytes -= o.rec_len;
        }
        *inner.seg_len.get_mut(&inner.active).unwrap() = offset + rec_len;
        inner.since_ckpt += rec_len;
        if inner.opts.fsync_each_write {
            inner.flush(true)?;
        }
        inner.maybe_checkpoint()?;
        Ok(true)
    }

    /// Log bytes this store had to scan past the newest valid checkpoint
    /// when it was opened (0 for a brand-new store, or when a checkpoint
    /// covered the whole log). Deterministic for a given directory state —
    /// recovery benchmarks gate on it instead of wall-clock.
    pub fn replayed_bytes(&self) -> u64 {
        self.inner.lock().replayed_at_open
    }

    /// True when `key` is present.
    pub fn contains(&self, key: &[u8]) -> bool {
        self.inner.lock().index.contains_key(key)
    }

    /// Number of live keys.
    pub fn len(&self) -> usize {
        self.inner.lock().index.len()
    }

    /// True when no keys are live.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// All live keys (unordered).
    pub fn keys(&self) -> Vec<Vec<u8>> {
        self.inner.lock().index.keys().cloned().collect()
    }

    /// All `(key, value)` pairs whose key starts with `prefix`, sorted by key.
    pub fn scan_prefix(&self, prefix: &[u8]) -> Result<Vec<(Vec<u8>, Vec<u8>)>> {
        let keys: Vec<Vec<u8>> = {
            let g = self.inner.lock();
            let mut ks: Vec<_> = g
                .index
                .keys()
                .filter(|k| k.starts_with(prefix))
                .cloned()
                .collect();
            ks.sort();
            ks
        };
        let mut out = Vec::with_capacity(keys.len());
        for k in keys {
            if let Some(v) = self.get(&k)? {
                out.push((k, v));
            }
        }
        Ok(out)
    }

    /// All `(key, value_length)` pairs whose key starts with `prefix`,
    /// sorted by key — index metadata only, no value reads. Lets recovery
    /// reconstruct byte counters without touching record bodies.
    pub fn prefix_meta(&self, prefix: &[u8]) -> Vec<(Vec<u8>, u64)> {
        let g = self.inner.lock();
        let mut out: Vec<(Vec<u8>, u64)> = g
            .index
            .iter()
            .filter(|(k, _)| k.starts_with(prefix))
            .map(|(k, l)| (k.clone(), l.rec_len - (HEADER + k.len()) as u64))
            .collect();
        out.sort();
        out
    }

    /// Write buffered records to disk and `fsync`.
    pub fn flush(&self) -> Result<()> {
        self.inner.lock().flush(true)
    }

    /// Write buffered records to the OS without `fsync`: survives process
    /// crashes (the page cache outlives the process) but not power loss.
    /// Use [`Store::flush`] or `fsync_each_write` for the stronger contract.
    pub fn flush_buffered(&self) -> Result<()> {
        self.inner.lock().flush(false)
    }

    /// Snapshot the index + watermark into a checkpoint file, bounding the
    /// next open's replay to records appended after this call. Flushes and
    /// `fsync`s first so the watermark only covers durable bytes.
    pub fn checkpoint(&self) -> Result<()> {
        self.inner.lock().write_checkpoint()
    }

    /// Number of checkpoint files currently on disk.
    pub fn checkpoint_count(&self) -> usize {
        let g = self.inner.lock();
        std::fs::read_dir(&g.dir)
            .map(|rd| {
                rd.filter_map(|e| e.ok())
                    .filter(|e| e.file_name().to_string_lossy().ends_with(".ckpt"))
                    .count()
            })
            .unwrap_or(0)
    }

    /// Drop the store *without* the clean-close flush, discarding buffered
    /// (unacknowledged) records — exactly what a process crash would do.
    /// Chaos harnesses use this to model `CrashRestart` honestly.
    pub fn abandon(self) {
        self.inner.lock().buf.clear();
    }

    /// Occupancy counters.
    pub fn stats(&self) -> StoreStats {
        let g = self.inner.lock();
        StoreStats {
            keys: g.index.len(),
            live_bytes: g.live_bytes,
            disk_bytes: g.seg_len.values().sum(),
            segments: g.seg_len.len(),
        }
    }

    /// Rewrite all live records into fresh segments and delete the old ones,
    /// reclaiming space held by overwritten/deleted records.
    pub fn compact(&self) -> Result<()> {
        let mut g = self.inner.lock();
        let inner = &mut *g;
        inner.flush(false)?;

        // Stream live records into fresh segments, oldest location first so
        // relative age is preserved.
        let mut locs: Vec<(Vec<u8>, Loc)> =
            inner.index.iter().map(|(k, l)| (k.clone(), *l)).collect();
        locs.sort_by_key(|(_, l)| (l.seg, l.offset));

        let old_ids: Vec<u64> = inner.seg_len.keys().copied().collect();
        let first_new = inner.active + 1;
        let mut new_index: HashMap<Vec<u8>, Loc> = HashMap::with_capacity(locs.len());
        let mut new_files = BTreeMap::new();
        let mut new_lens = BTreeMap::new();
        let mut cur = first_new;
        let mut cur_file = OpenOptions::new()
            .read(true)
            .append(true)
            .create(true)
            .open(seg_path(&inner.dir, cur))?;
        let mut cur_len = 0u64;
        let mut live = 0u64;
        let mut buf = Vec::new();
        for (key, loc) in locs {
            let data = inner.read_record(loc)?;
            let (_, val, _) = parse_record(&data, 0).map_err(|detail| PStoreError::Corrupt {
                segment: loc.seg,
                offset: loc.offset,
                detail,
            })?;
            buf.clear();
            let rec_len = encode_record(&mut buf, &key, val);
            if cur_len > 0 && cur_len + rec_len > inner.opts.max_segment_bytes {
                cur_file.sync_all()?;
                new_files.insert(cur, cur_file);
                new_lens.insert(cur, cur_len);
                cur += 1;
                cur_file = OpenOptions::new()
                    .read(true)
                    .append(true)
                    .create(true)
                    .open(seg_path(&inner.dir, cur))?;
                cur_len = 0;
            }
            cur_file.write_all(&buf)?;
            new_index.insert(
                key,
                Loc {
                    seg: cur,
                    offset: cur_len,
                    rec_len,
                },
            );
            cur_len += rec_len;
            live += rec_len;
        }
        cur_file.sync_all()?;
        new_files.insert(cur, cur_file);
        new_lens.insert(cur, cur_len);

        inner.index = new_index;
        inner.files = new_files;
        inner.seg_len = new_lens;
        inner.active = cur;
        inner.buf.clear();
        inner.flushed = cur_len;
        inner.live_bytes = live;
        for id in old_ids {
            let _ = std::fs::remove_file(seg_path(&inner.dir, id));
        }
        // Existing checkpoints reference the deleted segments; drop them.
        // Until the next checkpoint, recovery is a full (all-live) scan.
        inner.drop_checkpoints(u64::MAX);
        inner.since_ckpt = live;
        Ok(())
    }
}

impl Drop for Store {
    /// Clean close: write out buffered records (crash safety before this
    /// point is covered by explicit `flush`/fsync mode plus recovery).
    fn drop(&mut self) {
        let _ = self.inner.lock().flush(false);
    }
}

impl Inner {
    fn flush(&mut self, sync: bool) -> Result<()> {
        if !self.buf.is_empty() {
            let f = self.files.get_mut(&self.active).unwrap();
            f.write_all(&self.buf)?;
            self.flushed += self.buf.len() as u64;
            self.buf.clear();
            if sync {
                f.sync_all()?;
            }
        } else if sync {
            self.files.get_mut(&self.active).unwrap().sync_all()?;
        }
        Ok(())
    }

    fn maybe_rotate(&mut self) -> Result<()> {
        let active_len = self.flushed + self.buf.len() as u64;
        if active_len < self.opts.max_segment_bytes {
            return Ok(());
        }
        self.flush(true)?;
        let id = self.active + 1;
        let f = OpenOptions::new()
            .read(true)
            .append(true)
            .create(true)
            .open(seg_path(&self.dir, id))?;
        self.files.insert(id, f);
        self.seg_len.insert(id, 0);
        self.active = id;
        self.flushed = 0;
        Ok(())
    }

    /// Checkpoint when the appended-bytes budget is exhausted.
    fn maybe_checkpoint(&mut self) -> Result<()> {
        match self.opts.checkpoint_every_bytes {
            Some(limit) if self.since_ckpt >= limit => self.write_checkpoint(),
            _ => Ok(()),
        }
    }

    /// Write a checkpoint: flush + fsync (the watermark must only cover
    /// durable bytes), snapshot the index, write to a temp file, rename into
    /// place, then retire older checkpoint files.
    fn write_checkpoint(&mut self) -> Result<()> {
        self.flush(true)?;
        let mut body = Vec::with_capacity(CKPT_HEAD + self.index.len() * (CKPT_ENTRY + 16));
        body.extend_from_slice(&CKPT_MAGIC);
        body.extend_from_slice(&CKPT_VERSION.to_le_bytes());
        body.extend_from_slice(&self.active.to_le_bytes());
        body.extend_from_slice(&self.flushed.to_le_bytes());
        body.extend_from_slice(&(self.index.len() as u64).to_le_bytes());
        let mut entries: Vec<(&Vec<u8>, &Loc)> = self.index.iter().collect();
        entries.sort_by_key(|(k, _)| k.as_slice());
        for (key, loc) in entries {
            body.extend_from_slice(&(key.len() as u32).to_le_bytes());
            body.extend_from_slice(&loc.seg.to_le_bytes());
            body.extend_from_slice(&loc.offset.to_le_bytes());
            body.extend_from_slice(&loc.rec_len.to_le_bytes());
            body.extend_from_slice(key);
        }
        let crc = crc32_multi(&[&body]);
        body.extend_from_slice(&crc.to_le_bytes());

        let id = self.next_ckpt;
        self.next_ckpt += 1;
        let tmp = self.dir.join("ckpt.tmp");
        {
            let mut f = File::create(&tmp)?;
            f.write_all(&body)?;
            f.sync_all()?;
        }
        std::fs::rename(&tmp, ckpt_path(&self.dir, id))?;
        self.drop_checkpoints(id);
        self.since_ckpt = 0;
        Ok(())
    }

    /// Remove every checkpoint file with id below `keep`.
    fn drop_checkpoints(&self, keep: u64) {
        let Ok(rd) = std::fs::read_dir(&self.dir) else {
            return;
        };
        for entry in rd.filter_map(|e| e.ok()) {
            let name = entry.file_name();
            let name = name.to_string_lossy();
            if let Some(stem) = name.strip_suffix(".ckpt") {
                if let Ok(id) = stem.parse::<u64>() {
                    if id < keep {
                        let _ = std::fs::remove_file(entry.path());
                    }
                }
            }
        }
    }

    /// Read the raw bytes of the record at `loc`, serving from the write
    /// buffer when it has not been flushed yet.
    fn read_record(&mut self, loc: Loc) -> Result<Vec<u8>> {
        if loc.seg == self.active && loc.offset >= self.flushed {
            let start = (loc.offset - self.flushed) as usize;
            return Ok(self.buf[start..start + loc.rec_len as usize].to_vec());
        }
        let f = self.files.get(&loc.seg).expect("segment file missing");
        let mut out = vec![0u8; loc.rec_len as usize];
        f.read_exact_at(&mut out, loc.offset)?;
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    struct TempDir(PathBuf);
    impl TempDir {
        fn new(tag: &str) -> Self {
            use std::sync::atomic::{AtomicU64, Ordering};
            static N: AtomicU64 = AtomicU64::new(0);
            let p = std::env::temp_dir().join(format!(
                "pstore-{tag}-{}-{}",
                std::process::id(),
                N.fetch_add(1, Ordering::Relaxed)
            ));
            let _ = std::fs::remove_dir_all(&p);
            TempDir(p)
        }
    }
    impl Drop for TempDir {
        fn drop(&mut self) {
            let _ = std::fs::remove_dir_all(&self.0);
        }
    }

    #[test]
    fn put_get_delete_roundtrip() {
        let td = TempDir::new("basic");
        let s = Store::open(&td.0).unwrap();
        assert!(s.is_empty());
        s.put(b"alpha", b"1").unwrap();
        s.put(b"beta", b"2").unwrap();
        assert_eq!(s.get(b"alpha").unwrap().unwrap(), b"1");
        s.put(b"alpha", b"updated").unwrap();
        assert_eq!(s.get(b"alpha").unwrap().unwrap(), b"updated");
        assert!(s.delete(b"beta").unwrap());
        assert!(!s.delete(b"beta").unwrap());
        assert_eq!(s.get(b"beta").unwrap(), None);
        assert_eq!(s.len(), 1);
    }

    #[test]
    fn survives_reopen() {
        let td = TempDir::new("reopen");
        {
            let s = Store::open(&td.0).unwrap();
            for i in 0..100u32 {
                s.put(format!("k{i}").as_bytes(), &i.to_le_bytes()).unwrap();
            }
            s.delete(b"k42").unwrap();
            s.flush().unwrap();
        }
        let s = Store::open(&td.0).unwrap();
        assert_eq!(s.len(), 99);
        assert_eq!(s.get(b"k7").unwrap().unwrap(), 7u32.to_le_bytes());
        assert_eq!(s.get(b"k42").unwrap(), None);
    }

    #[test]
    fn unflushed_reads_come_from_buffer() {
        let td = TempDir::new("buffer");
        let s = Store::open(&td.0).unwrap();
        s.put(b"hot", b"unflushed-value").unwrap();
        assert_eq!(s.get(b"hot").unwrap().unwrap(), b"unflushed-value");
    }

    #[test]
    fn rotates_segments() {
        let td = TempDir::new("rotate");
        let opts = StoreOptions {
            max_segment_bytes: 256,
            ..Default::default()
        };
        let s = Store::open_with(&td.0, opts.clone()).unwrap();
        for i in 0..50u32 {
            s.put(format!("key-{i}").as_bytes(), &[7u8; 64]).unwrap();
        }
        s.flush().unwrap();
        assert!(s.stats().segments > 1, "{:?}", s.stats());
        drop(s);
        let s = Store::open_with(&td.0, opts).unwrap();
        assert_eq!(s.len(), 50);
        assert_eq!(s.get(b"key-49").unwrap().unwrap(), vec![7u8; 64]);
    }

    #[test]
    fn torn_tail_is_discarded_on_recovery() {
        let td = TempDir::new("torn");
        {
            let s = Store::open(&td.0).unwrap();
            s.put(b"good", b"value").unwrap();
            s.put(b"torn", b"this record will be cut in half").unwrap();
            s.flush().unwrap();
        }
        // Chop bytes off the end, simulating a crash mid-append.
        let path = seg_path(&td.0, 0);
        let len = std::fs::metadata(&path).unwrap().len();
        let f = OpenOptions::new().write(true).open(&path).unwrap();
        f.set_len(len - 10).unwrap();
        drop(f);
        let s = Store::open(&td.0).unwrap();
        assert_eq!(s.get(b"good").unwrap().unwrap(), b"value");
        assert_eq!(s.get(b"torn").unwrap(), None);
        // The store remains writable after tail repair.
        s.put(b"after", b"crash").unwrap();
        s.flush().unwrap();
        drop(s);
        let s = Store::open(&td.0).unwrap();
        assert_eq!(s.get(b"after").unwrap().unwrap(), b"crash");
    }

    #[test]
    fn corruption_in_sealed_segment_is_an_error() {
        let td = TempDir::new("corrupt");
        let opts = StoreOptions {
            max_segment_bytes: 64,
            ..Default::default()
        };
        {
            let s = Store::open_with(&td.0, opts.clone()).unwrap();
            for i in 0..20u32 {
                s.put(format!("k{i}").as_bytes(), &[0u8; 32]).unwrap();
            }
            s.flush().unwrap();
            assert!(s.stats().segments >= 3);
        }
        // Flip a byte in the middle of the first (sealed) segment.
        let path = seg_path(&td.0, 0);
        let mut data = std::fs::read(&path).unwrap();
        let mid = data.len() / 2;
        data[mid] ^= 0xFF;
        std::fs::write(&path, data).unwrap();
        match Store::open_with(&td.0, opts) {
            Err(PStoreError::Corrupt { segment: 0, .. }) => {}
            Err(other) => panic!("expected segment-0 corruption error, got {other}"),
            Ok(_) => panic!("expected corruption error, store opened cleanly"),
        }
    }

    #[test]
    fn compaction_reclaims_space_and_preserves_data() {
        let td = TempDir::new("compact");
        let opts = StoreOptions {
            max_segment_bytes: 1024,
            ..Default::default()
        };
        let s = Store::open_with(&td.0, opts.clone()).unwrap();
        for round in 0..10u32 {
            for i in 0..20u32 {
                s.put(
                    format!("k{i}").as_bytes(),
                    format!("r{round}-{i}").as_bytes(),
                )
                .unwrap();
            }
        }
        s.delete(b"k0").unwrap();
        let before = s.stats();
        assert!(before.dead_ratio() > 0.5, "{before:?}");
        s.compact().unwrap();
        let after = s.stats();
        assert!(after.disk_bytes < before.disk_bytes / 2, "{after:?}");
        assert!(after.dead_ratio() < 0.01);
        assert_eq!(s.get(b"k0").unwrap(), None);
        for i in 1..20u32 {
            assert_eq!(
                s.get(format!("k{i}").as_bytes()).unwrap().unwrap(),
                format!("r9-{i}").as_bytes()
            );
        }
        // And it survives reopen after compaction.
        drop(s);
        let s = Store::open_with(&td.0, opts).unwrap();
        assert_eq!(s.len(), 19);
        assert_eq!(s.get(b"k19").unwrap().unwrap(), b"r9-19");
    }

    #[test]
    fn scan_prefix_is_sorted_and_filtered() {
        let td = TempDir::new("scan");
        let s = Store::open(&td.0).unwrap();
        s.put(b"blob/2", b"two").unwrap();
        s.put(b"blob/1", b"one").unwrap();
        s.put(b"file/1", b"other").unwrap();
        let got = s.scan_prefix(b"blob/").unwrap();
        assert_eq!(
            got,
            vec![
                (b"blob/1".to_vec(), b"one".to_vec()),
                (b"blob/2".to_vec(), b"two".to_vec())
            ]
        );
    }

    #[test]
    fn checkpoint_bounds_replay_and_survives_reopen() {
        let td = TempDir::new("ckpt");
        let opts = StoreOptions {
            max_segment_bytes: 512,
            ..Default::default()
        };
        {
            let s = Store::open_with(&td.0, opts.clone()).unwrap();
            for i in 0..60u32 {
                s.put(format!("k{i}").as_bytes(), &[i as u8; 40]).unwrap();
            }
            s.delete(b"k3").unwrap();
            s.checkpoint().unwrap();
            assert_eq!(s.checkpoint_count(), 1);
            // Records after the checkpoint must replay on top of it.
            s.put(b"k7", b"post-ckpt").unwrap();
            s.put(b"late", b"appended-after").unwrap();
            s.flush().unwrap();
        }
        let s = Store::open_with(&td.0, opts.clone()).unwrap();
        assert_eq!(s.len(), 60); // 60 puts - k3 + late
        assert_eq!(s.get(b"k3").unwrap(), None);
        assert_eq!(s.get(b"k7").unwrap().unwrap(), b"post-ckpt");
        assert_eq!(s.get(b"late").unwrap().unwrap(), b"appended-after");
        assert_eq!(s.get(b"k5").unwrap().unwrap(), vec![5u8; 40]);
        drop(s);

        // A corrupted checkpoint is skipped, not trusted: flip one byte and
        // recovery must still produce the same state via full scan.
        let ck = ckpt_path(&td.0, 0);
        let mut data = std::fs::read(&ck).unwrap();
        let mid = data.len() / 2;
        data[mid] ^= 0xFF;
        std::fs::write(&ck, data).unwrap();
        let s = Store::open_with(&td.0, opts).unwrap();
        assert_eq!(s.len(), 60);
        assert_eq!(s.get(b"k7").unwrap().unwrap(), b"post-ckpt");
    }

    #[test]
    fn auto_checkpoint_fires_and_retires_older_ones() {
        let td = TempDir::new("auto-ckpt");
        let opts = StoreOptions {
            max_segment_bytes: 1024,
            checkpoint_every_bytes: Some(256),
            ..Default::default()
        };
        let s = Store::open_with(&td.0, opts.clone()).unwrap();
        for i in 0..40u32 {
            s.put(format!("k{i}").as_bytes(), &[1u8; 32]).unwrap();
        }
        // Budget 256 with ~44-byte records: many checkpoints written, only
        // the newest retained.
        assert_eq!(s.checkpoint_count(), 1);
        drop(s);
        let s = Store::open_with(&td.0, opts).unwrap();
        assert_eq!(s.len(), 40);
        assert_eq!(s.get(b"k39").unwrap().unwrap(), vec![1u8; 32]);
    }

    #[test]
    fn compaction_invalidates_checkpoints() {
        let td = TempDir::new("ckpt-compact");
        let opts = StoreOptions {
            max_segment_bytes: 512,
            ..Default::default()
        };
        let s = Store::open_with(&td.0, opts.clone()).unwrap();
        for round in 0..5u32 {
            for i in 0..10u32 {
                s.put(format!("k{i}").as_bytes(), format!("r{round}").as_bytes())
                    .unwrap();
            }
        }
        s.checkpoint().unwrap();
        s.compact().unwrap();
        // The old checkpoint referenced deleted segments; it must be gone.
        assert_eq!(s.checkpoint_count(), 0);
        drop(s);
        let s = Store::open_with(&td.0, opts).unwrap();
        assert_eq!(s.len(), 10);
        assert_eq!(s.get(b"k9").unwrap().unwrap(), b"r4");
    }

    #[test]
    fn abandon_discards_buffered_records() {
        let td = TempDir::new("abandon");
        {
            let s = Store::open(&td.0).unwrap();
            s.put(b"durable", b"flushed").unwrap();
            s.flush_buffered().unwrap();
            s.put(b"lost", b"never-acked").unwrap();
            s.abandon();
        }
        let s = Store::open(&td.0).unwrap();
        assert_eq!(s.get(b"durable").unwrap().unwrap(), b"flushed");
        assert_eq!(s.get(b"lost").unwrap(), None, "abandon must not flush");
    }

    #[test]
    fn prefix_meta_reports_value_lengths_without_reading_values() {
        let td = TempDir::new("meta");
        let s = Store::open(&td.0).unwrap();
        s.put(b"p/b", &[0u8; 100]).unwrap();
        s.put(b"p/a", &[0u8; 7]).unwrap();
        s.put(b"l/1", &[0u8; 3]).unwrap();
        s.put(b"p/a", &[0u8; 9]).unwrap(); // overwrite: newest wins
        assert_eq!(
            s.prefix_meta(b"p/"),
            vec![(b"p/a".to_vec(), 9), (b"p/b".to_vec(), 100)]
        );
        assert_eq!(s.prefix_meta(b"l/"), vec![(b"l/1".to_vec(), 3)]);
    }

    #[test]
    fn empty_and_binary_values() {
        let td = TempDir::new("binary");
        let s = Store::open(&td.0).unwrap();
        s.put(b"", b"empty-key").unwrap();
        s.put(b"zero", b"").unwrap();
        let blob: Vec<u8> = (0..=255u8).cycle().take(10_000).collect();
        s.put(b"bin", &blob).unwrap();
        assert_eq!(s.get(b"").unwrap().unwrap(), b"empty-key");
        assert_eq!(s.get(b"zero").unwrap().unwrap(), b"");
        assert_eq!(s.get(b"bin").unwrap().unwrap(), blob);
    }
}
