//! Error type for the persistence layer.

use std::fmt;

/// Errors surfaced by [`crate::Store`] operations.
#[derive(Debug)]
pub enum PStoreError {
    /// Underlying filesystem error.
    Io(std::io::Error),
    /// A record failed its checksum or structural validation somewhere other
    /// than the recoverable tail of the newest segment.
    Corrupt {
        segment: u64,
        offset: u64,
        detail: String,
    },
}

/// The cause class of a [`PStoreError`], detached from its payload so
/// callers can carry it through `Clone`/`Eq` error types and assert on it.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum PStoreErrorKind {
    /// Underlying filesystem error.
    Io,
    /// Checksum or structural validation failure.
    Corrupt,
}

impl fmt::Display for PStoreErrorKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PStoreErrorKind::Io => write!(f, "io"),
            PStoreErrorKind::Corrupt => write!(f, "corrupt"),
        }
    }
}

impl PStoreError {
    /// The cause class of this error.
    pub fn kind(&self) -> PStoreErrorKind {
        match self {
            PStoreError::Io(_) => PStoreErrorKind::Io,
            PStoreError::Corrupt { .. } => PStoreErrorKind::Corrupt,
        }
    }
}

impl fmt::Display for PStoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PStoreError::Io(e) => write!(f, "pstore I/O error: {e}"),
            PStoreError::Corrupt {
                segment,
                offset,
                detail,
            } => write!(
                f,
                "pstore corruption in segment {segment} at offset {offset}: {detail}"
            ),
        }
    }
}

impl std::error::Error for PStoreError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            PStoreError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<std::io::Error> for PStoreError {
    fn from(e: std::io::Error) -> Self {
        PStoreError::Io(e)
    }
}

pub type Result<T> = std::result::Result<T, PStoreError>;
