//! Fixture: determinism-family clean sample — the approved idioms for the
//! same jobs the violating sample does wrong. Expected: 0 findings.

use std::collections::{BTreeMap, HashMap};

use rand::{Rng, SeedableRng};

struct Registry {
    slots: HashMap<u64, String>,
    ordered: BTreeMap<u64, String>,
}

fn sorted_in_statement(reg: &Registry) -> Vec<u64> {
    // Sorting in the same statement restores a canonical order.
    let mut ids: Vec<u64> = reg.slots.keys().copied().collect();
    ids.sort_unstable();
    ids
}

fn order_insensitive(reg: &Registry) -> u64 {
    // Commutative reductions cannot leak hash order.
    reg.slots.values().map(|s| s.len() as u64).sum::<u64>()
}

fn btree_is_ordered(reg: &Registry) -> Vec<u64> {
    // BTreeMap iterates in key order: no finding.
    reg.ordered.keys().copied().collect()
}

fn annotated(reg: &Registry) -> u64 {
    let mut acc = 0;
    // analyze: allow(unordered-iter): idempotent commutative accumulation
    for v in reg.slots.values() {
        acc |= v.len() as u64;
    }
    acc
}

fn seeded(seed: u64) -> u64 {
    // Schedule-derived seeds keep the stream replayable.
    let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
    rng.gen()
}
