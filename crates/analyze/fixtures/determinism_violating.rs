//! Fixture: determinism-family violations. NOT compiled — lexed by the
//! fixture tests, which assert the exact finding set.
//!
//! Expected: 2× unordered-iter, 1× wall-clock, 2× unseeded-rng.

use std::collections::HashMap;
use std::time::Instant;

struct Registry {
    slots: HashMap<u64, String>,
}

fn leak_hash_order(reg: &Registry) -> Vec<u64> {
    // unordered-iter: keys() of a HashMap feeding an ordered output.
    reg.slots.keys().copied().collect()
}

fn leak_for_loop(pending: HashMap<u64, u64>) -> Vec<u64> {
    let mut out = Vec::new();
    // unordered-iter: bare for-in over a HashMap.
    for (k, _) in pending {
        out.push(k);
    }
    out
}

fn leak_wall_clock() -> u64 {
    // wall-clock: host time outside the fabric boundary.
    let t = Instant::now();
    t.elapsed().as_nanos() as u64
}

fn leak_entropy() -> u64 {
    // unseeded-rng ×2: host entropy in a replay-critical path.
    let mut rng = rand::thread_rng();
    rng.gen::<u64>() ^ rand::random::<u64>()
}
