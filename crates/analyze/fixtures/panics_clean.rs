//! Fixture: panic-path clean sample — typed errors, bounded subscripts,
//! justified allows, and test code (which may unwrap freely).
//! Expected: 0 findings.

fn typed_errors(o: Option<u64>, v: &[u64]) -> Result<u64, BlobError> {
    let a = o.ok_or(BlobError::EmptyWrite)?;
    let b = v.get(3).copied().ok_or(BlobError::NoProviders)?;
    Ok(a + b)
}

fn bounded_subscripts(v: &[u64], i: usize) -> u64 {
    // Modulo-bounded and range subscripts are structurally safe.
    let head = &v[..1];
    v[i % v.len()] + head.len() as u64
}

fn justified(k: &[u8]) -> u64 {
    // analyze: allow(panic-unwrap): 8-byte range into [u8; 8] is infallible
    u64::from_be_bytes(k[..8].try_into().unwrap())
}

fn invariant_checks(v: &[u64]) {
    // Indexing inside assert-family macros is the invariant check itself.
    assert_eq!(v[0], 1, "first element pinned by the caller");
}

#[test]
fn tests_may_unwrap() {
    let v = vec![1u64];
    assert_eq!(v.first().copied().unwrap(), v[0]);
}
