//! Fixture: panic-path violations. NOT compiled — lexed by the fixture
//! tests, which assert the exact finding set.
//!
//! Expected: 2× panic-unwrap, 1× panic-macro, 1× panic-index.

fn aborts_on_none(o: Option<u64>, r: Result<u64, String>) -> u64 {
    // panic-unwrap ×2.
    let a = o.unwrap();
    let b = r.expect("must be ok");
    a + b
}

fn aborts_on_short_input(v: &[u64]) -> u64 {
    // panic-index: unchecked subscript.
    v[3]
}

fn aborts_on_odd_state(x: u64) -> u64 {
    if x == 0 {
        // panic-macro.
        panic!("zero is not modeled");
    }
    x
}
