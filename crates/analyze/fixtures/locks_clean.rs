//! Fixture: lock-discipline clean sample — guards acquired up the hierarchy,
//! wire traffic only after every ranked guard is dropped.
//! Expected: 0 findings.

struct Vm {
    blobs: RwLock<HashMap<u64, u64>>, // rank 1
    state: Mutex<BlobState>,          // rank 2
    leases: Mutex<LeaseBook>,         // rank 3
    node: NodeId,
}

impl Vm {
    fn up_hierarchy(&self) -> usize {
        let reg = self.blobs.read();
        let st = self.state.lock();
        let book = self.leases.lock();
        let n = reg.len();
        drop(book);
        drop(st);
        drop(reg);
        n
    }

    fn wire_after_drop(&self, p: &Proc) {
        let st = self.state.lock();
        let snapshot = st.len();
        drop(st);
        // Every ranked guard is gone: the fabric call is clean.
        p.rpc(self.node, snapshot as u64, 64);
    }

    fn scoped_guard(&self, p: &Proc) {
        {
            let st = self.state.lock();
            let _ = st.len();
        }
        // The guard died with its block.
        p.rpc(self.node, 64, 64);
    }
}
