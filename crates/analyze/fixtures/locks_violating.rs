//! Fixture: lock-discipline violations. NOT compiled — lexed by the fixture
//! tests, which assert the exact finding set.
//!
//! Expected: 1× lock-order, 1× wire-while-locked.

struct Vm {
    blobs: RwLock<HashMap<u64, u64>>, // rank 1
    state: Mutex<BlobState>,          // rank 2
    node: NodeId,
}

impl Vm {
    fn down_hierarchy(&self) -> usize {
        let st = self.state.lock();
        // lock-order: registry (rank 1) acquired under the blob slot (2).
        let reg = self.blobs.read();
        let n = reg.len();
        drop(reg);
        drop(st);
        n
    }

    fn wire_under_guard(&self, p: &Proc) {
        let st = self.state.lock();
        // wire-while-locked: a fabric call with a ranked guard live.
        p.rpc(self.node, 64, 64);
        drop(st);
    }
}
