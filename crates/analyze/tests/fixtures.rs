//! Fixture-corpus tests: every lint family is proven live against a
//! deliberately violating sample and quiet against a clean one, and the
//! committed workspace itself passes the `--deny` gate.
//!
//! The samples live in `crates/analyze/fixtures/` and are never compiled —
//! [`analyze::classify`] skips `fixtures` directories, so they are invisible
//! to the workspace scan and only reachable through these tests.

use std::path::{Path, PathBuf};

use analyze::{
    analyze_with_ctx, classify, FileCtx, Finding, LOCK_ORDER, PANIC_INDEX, PANIC_MACRO,
    PANIC_UNWRAP, UNORDERED_ITER, UNSEEDED_RNG, WALL_CLOCK, WIRE_WHILE_LOCKED,
};

fn fixture(name: &str) -> String {
    let path = Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("fixtures")
        .join(name);
    std::fs::read_to_string(&path).unwrap_or_else(|e| panic!("read {}: {e}", path.display()))
}

fn ctx(rel: &str, replay_critical: bool, lock_ranked: bool, panics: bool) -> FileCtx {
    FileCtx {
        rel_path: rel.to_string(),
        crate_name: "fixture".to_string(),
        replay_critical,
        wallclock_exempt: !replay_critical,
        panics_exempt: !panics,
        lock_ranked,
        extra_unordered: Vec::new(),
    }
}

fn count(findings: &[Finding], lint: &str) -> usize {
    findings.iter().filter(|f| f.lint == lint).count()
}

#[test]
fn determinism_family_fires_on_violations() {
    let f = analyze_with_ctx(
        &ctx("fx/determinism_violating.rs", true, false, false),
        &fixture("determinism_violating.rs"),
    );
    assert_eq!(count(&f, UNORDERED_ITER), 2, "findings: {f:#?}");
    assert_eq!(count(&f, WALL_CLOCK), 1, "findings: {f:#?}");
    assert_eq!(count(&f, UNSEEDED_RNG), 2, "findings: {f:#?}");
    assert_eq!(f.len(), 5, "nothing else may fire: {f:#?}");
}

#[test]
fn determinism_family_quiet_on_clean_idioms() {
    let f = analyze_with_ctx(
        &ctx("fx/determinism_clean.rs", true, false, false),
        &fixture("determinism_clean.rs"),
    );
    assert!(f.is_empty(), "clean sample must pass: {f:#?}");
}

#[test]
fn lock_family_fires_on_violations() {
    let f = analyze_with_ctx(
        &ctx("fx/locks_violating.rs", false, true, false),
        &fixture("locks_violating.rs"),
    );
    assert_eq!(count(&f, LOCK_ORDER), 1, "findings: {f:#?}");
    assert_eq!(count(&f, WIRE_WHILE_LOCKED), 1, "findings: {f:#?}");
    assert_eq!(f.len(), 2, "nothing else may fire: {f:#?}");
}

#[test]
fn lock_family_quiet_on_clean_idioms() {
    let f = analyze_with_ctx(
        &ctx("fx/locks_clean.rs", false, true, false),
        &fixture("locks_clean.rs"),
    );
    assert!(f.is_empty(), "clean sample must pass: {f:#?}");
}

#[test]
fn panic_family_fires_on_violations() {
    let f = analyze_with_ctx(
        &ctx("fx/panics_violating.rs", false, false, true),
        &fixture("panics_violating.rs"),
    );
    assert_eq!(count(&f, PANIC_UNWRAP), 2, "findings: {f:#?}");
    assert_eq!(count(&f, PANIC_MACRO), 1, "findings: {f:#?}");
    assert_eq!(count(&f, PANIC_INDEX), 1, "findings: {f:#?}");
    assert_eq!(f.len(), 4, "nothing else may fire: {f:#?}");
}

#[test]
fn panic_family_quiet_on_clean_idioms() {
    let f = analyze_with_ctx(
        &ctx("fx/panics_clean.rs", false, false, true),
        &fixture("panics_clean.rs"),
    );
    assert!(f.is_empty(), "clean sample must pass: {f:#?}");
}

#[test]
fn fixtures_are_invisible_to_the_workspace_scan() {
    assert!(classify("crates/analyze/fixtures/panics_violating.rs").is_none());
}

#[test]
fn workspace_is_clean_under_deny() {
    // The committed tree must hold the same bar CI enforces with
    // `cargo run -p analyze -- --deny`: zero findings surviving the inline
    // annotations and the root allowlist.
    let root: PathBuf = Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("../..")
        .canonicalize()
        .expect("workspace root");
    let report = analyze::analyze_workspace(&root).expect("scan workspace");
    assert!(
        report.findings.is_empty(),
        "the workspace must pass --deny; findings:\n{}",
        report
            .findings
            .iter()
            .map(ToString::to_string)
            .collect::<Vec<_>>()
            .join("\n")
    );
    assert!(report.files_scanned > 50, "scan actually covered the tree");
}
