//! Determinism family: `unordered-iter`, `wall-clock`, `unseeded-rng`.
//!
//! The seeded chaos rail replays whole workloads byte-identically from a
//! seed; anything that lets host randomness leak into control flow breaks
//! that contract. PR 6 shipped exactly this bug (HashMap iteration order
//! feeding the checker's RNG stream), which is the class this pass hunts.

use crate::lints::{resolve_receiver, stmt_end, stmt_start};
use crate::{FileCtx, Finding, View, UNORDERED_ITER, UNSEEDED_RNG, WALL_CLOCK};

/// Iteration methods whose order is the hash order.
const ITER_METHODS: &[&str] = &[
    "iter",
    "iter_mut",
    "keys",
    "values",
    "values_mut",
    "drain",
    "into_iter",
    "into_keys",
    "into_values",
];

/// Chain consumers that are order-insensitive, making hash-order iteration
/// harmless: reductions over commutative monoids and pure predicates.
const ORDER_INSENSITIVE: &[&str] = &[
    "sum",
    "count",
    "len",
    "min",
    "max",
    "min_by_key",
    "max_by_key",
    "all",
    "any",
    "is_empty",
];

/// RNG constructors that pull entropy from the host instead of a seed.
const UNSEEDED: &[&str] = &["thread_rng", "from_entropy", "OsRng", "ThreadRng"];

pub(crate) fn run(ctx: &FileCtx, v: &View, out: &mut Vec<Finding>) {
    wall_clock(ctx, v, out);
    unseeded_rng(ctx, v, out);
    if ctx.replay_critical {
        unordered_iter(ctx, v, out);
    }
}

fn wall_clock(ctx: &FileCtx, v: &View, out: &mut Vec<Finding>) {
    if ctx.wallclock_exempt {
        return;
    }
    for i in 0..v.toks.len() {
        if !v.is_code(i) {
            continue;
        }
        let Some(name) = v.ident(i) else { continue };
        if (name == "Instant" || name == "SystemTime")
            && v.is_punct(i + 1, ':')
            && v.is_punct(i + 2, ':')
            && v.ident(i + 3) == Some("now")
        {
            out.push(Finding {
                file: ctx.rel_path.clone(),
                line: v.line(i),
                lint: WALL_CLOCK.into(),
                message: format!(
                    "{name}::now() outside the fabric/pstore/bench time boundary; replay-visible \
                     time must come from the fabric clock (SimTime)"
                ),
            });
        }
    }
}

fn unseeded_rng(ctx: &FileCtx, v: &View, out: &mut Vec<Finding>) {
    for i in 0..v.toks.len() {
        if !v.is_code(i) {
            continue;
        }
        let Some(name) = v.ident(i) else { continue };
        let hit = UNSEEDED.contains(&name)
            || (name == "random"
                && v.ident(i.wrapping_sub(3)) == Some("rand")
                && v.is_punct(i.wrapping_sub(2), ':')
                && v.is_punct(i.wrapping_sub(1), ':'));
        if hit {
            out.push(Finding {
                file: ctx.rel_path.clone(),
                line: v.line(i),
                lint: UNSEEDED_RNG.into(),
                message: format!(
                    "`{name}` draws host entropy; construct RNGs with \
                     StdRng::seed_from_u64 from a schedule-derived seed"
                ),
            });
        }
    }
}

/// Ordered sequence containers: `nodes: Vec<RwLock<HashMap<…>>>` iterates
/// its *stripes* in index order, so the binder itself is not unordered.
/// Transparent wrappers (`RwLock`, `Arc`, …) are looked through implicitly:
/// the walk treats every other ident as part of the type expression.
const SEQUENCES: &[&str] = &["Vec", "VecDeque", "BTreeMap", "BTreeSet"];

/// Collect the names of locals/fields declared as `HashMap`/`HashSet`
/// (looking through transparent wrappers, but not through ordered sequence
/// containers).
pub(crate) fn unordered_names(v: &View) -> Vec<String> {
    let mut names = Vec::new();
    for i in 0..v.toks.len() {
        if !v.is_code(i) {
            continue;
        }
        let Some(t) = v.ident(i) else { continue };
        if t != "HashMap" && t != "HashSet" {
            continue;
        }
        // Walk left through the type expression (and any `std::collections`
        // path) to the binder: `name: …HashMap<…>` or `let name = HashMap::…`.
        let mut j = i;
        let mut steps = 0;
        while j > 0 && steps < 32 {
            steps += 1;
            let k = j - 1;
            if v.ident(k).is_some_and(|id| SEQUENCES.contains(&id)) {
                break; // wrapped in an ordered container: binder is ordered
            }
            if v.is_punct(k, ':') && k > 0 && v.is_punct(k - 1, ':') {
                j = k - 1; // a `::` path segment
                continue;
            }
            if v.is_punct(k, ':') {
                if let Some(name) = v.ident(k.wrapping_sub(1)) {
                    names.push(name.to_string());
                }
                break;
            }
            if v.is_punct(k, '=') {
                if let Some(name) = v.ident(k.wrapping_sub(1)) {
                    names.push(name.to_string());
                }
                break;
            }
            let type_ish = v.ident(k).is_some()
                || v.is_punct(k, '<')
                || v.is_punct(k, '>')
                || v.is_punct(k, ',')
                || v.is_punct(k, '&')
                || v.is_punct(k, '(');
            if !type_ish {
                break;
            }
            j = k;
        }
    }
    names
}

/// Names bound to ordered sequence containers in this file. Used to shadow
/// the crate-wide union: `shuffle.rs` declares `segments: HashMap<…>`, but a
/// `let mut segments = Vec::…` local in `task.rs` must not inherit it.
fn sequence_names(v: &View) -> Vec<String> {
    let mut names = Vec::new();
    for i in 0..v.toks.len() {
        if !v.is_code(i) {
            continue;
        }
        let Some(t) = v.ident(i) else { continue };
        if !SEQUENCES.contains(&t) {
            continue;
        }
        let mut j = i;
        let mut steps = 0;
        while j > 0 && steps < 32 {
            steps += 1;
            let k = j - 1;
            if v.is_punct(k, ':') && k > 0 && v.is_punct(k - 1, ':') {
                j = k - 1;
                continue;
            }
            if v.is_punct(k, ':') || v.is_punct(k, '=') {
                if let Some(name) = v.ident(k.wrapping_sub(1)) {
                    names.push(name.to_string());
                }
                break;
            }
            let type_ish = v.ident(k).is_some()
                || v.is_punct(k, '<')
                || v.is_punct(k, '>')
                || v.is_punct(k, ',')
                || v.is_punct(k, '&')
                || v.is_punct(k, '(');
            if !type_ish {
                break;
            }
            j = k;
        }
    }
    names
}

fn unordered_iter(ctx: &FileCtx, v: &View, out: &mut Vec<Finding>) {
    // File-local declarations plus the crate-wide union ([`FileCtx::
    // extra_unordered`]): fields like `BlobState::pending` are declared in
    // `meta.rs` but iterated from `version_manager.rs`. Names this file
    // binds to an ordered sequence shadow the union.
    let mut names = unordered_names(v);
    let shadowed = sequence_names(v);
    names.extend(
        ctx.extra_unordered
            .iter()
            .filter(|n| !shadowed.iter().any(|s| s == *n))
            .cloned(),
    );
    if names.is_empty() {
        return;
    }
    let is_tracked = |n: &str| names.iter().any(|x| x == n);
    for i in 0..v.toks.len() {
        if !v.is_code(i) {
            continue;
        }
        // A) `recv.iter()` / `recv.values()` … chains.
        if let Some(m) = v.ident(i) {
            if ITER_METHODS.contains(&m)
                && v.is_punct(i + 1, '(')
                && i >= 2
                && v.is_punct(i - 1, '.')
            {
                if let Some(recv) = resolve_receiver(v, i - 2) {
                    if is_tracked(&recv) && !consumption_is_ordered(v, i) {
                        out.push(finding(ctx, v.line(i), &recv, m));
                    }
                }
            }
            // B) `for x in map {` / `for x in &map {` — bare container in a
            // for loop (method chains are caught by (A)).
            if m == "for" {
                if let Some((recv, line)) = for_loop_bare_receiver(v, i) {
                    if is_tracked(&recv) {
                        out.push(finding(ctx, line, &recv, "for-in"));
                    }
                }
            }
        }
    }
}

fn finding(ctx: &FileCtx, line: u32, recv: &str, method: &str) -> Finding {
    Finding {
        file: ctx.rel_path.clone(),
        line,
        lint: UNORDERED_ITER.into(),
        message: format!(
            "`{recv}.{method}` iterates an unordered map/set in a replay-critical crate; sort \
             the result (collect + sort_unstable, or a BTree collection) or justify with \
             `// analyze: allow(unordered-iter): <why order cannot leak>`"
        ),
    }
}

/// True when the statement around the iteration visibly restores order or
/// consumes it order-insensitively: a sort in the same statement, a BTree
/// collection target, an order-insensitive reduction, or a `let`-bound
/// collect whose binding is sorted within the next few statements.
fn consumption_is_ordered(v: &View, call: usize) -> bool {
    let start = stmt_start(v, call);
    let end = stmt_end(v, call);
    let mut collected_into: Option<String> = None;
    if v.ident(start) == Some("let") {
        let mut k = start + 1;
        if v.ident(k) == Some("mut") {
            k += 1;
        }
        if let Some(name) = v.ident(k) {
            collected_into = Some(name.to_string());
        }
    }
    let mut j = start;
    while j < end {
        if let Some(name) = v.ident(j) {
            if name == "BTreeMap" || name == "BTreeSet" || name == "BinaryHeap" {
                return true;
            }
            if name.starts_with("sort") && called(v, j) {
                return true;
            }
            if ORDER_INSENSITIVE.contains(&name)
                && called(v, j)
                && j > call
                && v.is_punct(j - 1, '.')
            {
                return true;
            }
        }
        j += 1;
    }
    // Sort-after-collect: `let ids: Vec<_> = map.keys().collect(); …
    // ids.sort_unstable();` within a short lookahead.
    if let Some(bind) = collected_into {
        let mut k = end;
        let lookahead = 60usize;
        while k < v.toks.len() && k < end + lookahead {
            if v.ident(k) == Some(bind.as_str())
                && v.is_punct(k + 1, '.')
                && v.ident(k + 2).is_some_and(|m| m.starts_with("sort"))
            {
                return true;
            }
            k += 1;
        }
    }
    false
}

/// True when the identifier at `j` is invoked, allowing an optional
/// turbofish: `sum()` or `sum::<u64>()`.
fn called(v: &View, j: usize) -> bool {
    if v.is_punct(j + 1, '(') {
        return true;
    }
    if v.is_punct(j + 1, ':') && v.is_punct(j + 2, ':') && v.is_punct(j + 3, '<') {
        let mut depth = 0i32;
        let mut k = j + 3;
        while k < v.toks.len() && k < j + 24 {
            if v.is_punct(k, '<') {
                depth += 1;
            } else if v.is_punct(k, '>') {
                depth -= 1;
                if depth == 0 {
                    return v.is_punct(k + 1, '(');
                }
            }
            k += 1;
        }
    }
    false
}

/// For `for pat in <expr> {`, return the receiver when `<expr>` is a bare
/// (possibly `&`/`&mut`-prefixed, possibly dotted) container name.
fn for_loop_bare_receiver(v: &View, for_idx: usize) -> Option<(String, u32)> {
    // Find `in` at nesting depth 0, then the `{` that opens the body.
    let mut j = for_idx + 1;
    let mut depth = 0i32;
    let mut in_idx = None;
    while j < v.toks.len() && j < for_idx + 40 {
        if v.is_punct(j, '(') || v.is_punct(j, '[') {
            depth += 1;
        } else if v.is_punct(j, ')') || v.is_punct(j, ']') {
            depth -= 1;
        } else if depth == 0 && v.ident(j) == Some("in") {
            in_idx = Some(j);
            break;
        }
        j += 1;
    }
    let in_idx = in_idx?;
    let mut k = in_idx + 1;
    let mut depth = 0i32;
    let mut body = None;
    while k < v.toks.len() && k < in_idx + 40 {
        if v.is_punct(k, '(') || v.is_punct(k, '[') {
            depth += 1;
        } else if v.is_punct(k, ')') || v.is_punct(k, ']') {
            depth -= 1;
        } else if depth == 0 && v.is_punct(k, '{') {
            body = Some(k);
            break;
        }
        k += 1;
    }
    let body = body?;
    // The expression's last token must be an identifier (method chains end
    // in `)` and are handled elsewhere).
    let last = body.checked_sub(1)?;
    let name = v.ident(last)?;
    // Reject range loops `for i in 0..n`.
    let mut t = in_idx + 1;
    while t < body {
        if v.is_punct(t, '.') && v.is_punct(t + 1, '.') {
            return None;
        }
        t += 1;
    }
    Some((name.to_string(), v.line(last)))
}
