//! Lock-discipline family: `lock-order` and `wire-while-locked`.
//!
//! The core crate's declared hierarchy, outermost first:
//!
//! | rank | lock | where |
//! |------|------|-------|
//! | 1 | `blobs` — VM registry `RwLock<HashMap<BlobId, Arc<BlobSlot>>>` | `version_manager.rs` |
//! | 2 | `state` — per-BLOB `Mutex<BlobState>` (the `meta.rs` lock unit) | `version_manager.rs` |
//! | 3 | `leases` — provider-manager lease book `Mutex<LeaseBook>` | `provider_manager.rs` |
//! | 4 | `nodes` / `stripes` — provider & meta-server stripe locks | `provider.rs`, `dht.rs` |
//! | 5 | `shards` / client index caches — read-cache shard + `desc_cache`, `page_size_cache`, `published_floor` | `read_cache.rs`, `client.rs` |
//!
//! A nested acquisition must never take a *lower* rank while a higher rank
//! is held (same rank is allowed — stripes are disjoint by index). And no
//! fabric traffic (`rpc`, `transfer`, gate `wait`s, batched DHT calls) may
//! run while any ranked control-plane guard is live: the version manager's
//! whole design keeps RPC charging and gate waits outside the `BlobState`
//! critical section, and the lease book documents the same contract.
//!
//! The static pass is lexical (guards tracked per brace scope, `drop(g)`
//! honoured); its dynamic twin is the debug-only rank assertion in the
//! vendored `parking_lot` shim, exercised by the 64-seed chaos sweep.

use crate::lints::{resolve_receiver, stmt_start};
use crate::{FileCtx, Finding, View, LOCK_ORDER, WIRE_WHILE_LOCKED};

/// Field name → hierarchy rank.
fn rank_of(field: &str) -> Option<u8> {
    match field {
        "blobs" => Some(1),
        "state" => Some(2),
        "leases" => Some(3),
        "nodes" | "stripes" => Some(4),
        // Client-side caches are leaves of the hierarchy: nothing else may
        // be acquired (and no wire traffic issued) under a cache guard.
        "shards" | "shard" | "desc_cache" | "page_size_cache" | "published_floor" => Some(5),
        _ => None,
    }
}

const RANK_NAMES: [&str; 5] = [
    "VM registry",
    "blob slot (meta.rs lock unit)",
    "lease book",
    "provider/meta stripes",
    "client read/index cache",
];

/// Guard acquisition methods.
const ACQUIRE: &[&str] = &["lock", "read", "write", "try_lock"];

/// Methods that put traffic on (or park on) the fabric.
const WIRE: &[&str] = &[
    "rpc",
    "transfer",
    "transfer_chain",
    "wait",
    "put_batch",
    "get_batch",
];

struct Guard {
    name: Option<String>,
    rank: u8,
    field: String,
    depth: i32,
    line: u32,
}

pub(crate) fn run(ctx: &FileCtx, v: &View, out: &mut Vec<Finding>) {
    if !ctx.lock_ranked {
        return;
    }
    let mut depth = 0i32;
    let mut held: Vec<Guard> = Vec::new();
    for i in 0..v.toks.len() {
        if v.is_punct(i, '{') {
            depth += 1;
            continue;
        }
        if v.is_punct(i, '}') {
            depth -= 1;
            held.retain(|g| g.depth <= depth);
            continue;
        }
        if !v.is_code(i) {
            continue;
        }
        let Some(name) = v.ident(i) else { continue };
        // drop(guard) ends the guard's liveness early.
        if name == "drop" && v.is_punct(i + 1, '(') {
            if let Some(dropped) = v.ident(i + 2) {
                held.retain(|g| g.name.as_deref() != Some(dropped));
            }
            continue;
        }
        let is_call = v.is_punct(i + 1, '(') && i >= 2 && v.is_punct(i - 1, '.');
        if !is_call {
            continue;
        }
        if ACQUIRE.contains(&name) {
            let Some(recv) = resolve_receiver(v, i - 2) else {
                continue;
            };
            let Some(rank) = rank_of(&recv) else { continue };
            if let Some(outer) = held.iter().filter(|g| g.rank > rank).max_by_key(|g| g.rank) {
                out.push(Finding {
                    file: ctx.rel_path.clone(),
                    line: v.line(i),
                    lint: LOCK_ORDER.into(),
                    message: format!(
                        "acquires rank-{rank} `{recv}` ({}) while holding rank-{} `{}` ({}, \
                         line {}); take locks in hierarchy order registry(1) → slot(2) → \
                         leases(3) → stripes(4) → caches(5), or drop the outer guard first",
                        RANK_NAMES[rank as usize - 1],
                        outer.rank,
                        outer.field,
                        RANK_NAMES[outer.rank as usize - 1],
                        outer.line,
                    ),
                });
            }
            held.push(Guard {
                name: let_binding(v, i),
                rank,
                field: recv,
                depth,
                line: v.line(i),
            });
            continue;
        }
        if WIRE.contains(&name) {
            if let Some(g) = held.iter().max_by_key(|g| g.rank) {
                out.push(Finding {
                    file: ctx.rel_path.clone(),
                    line: v.line(i),
                    lint: WIRE_WHILE_LOCKED.into(),
                    message: format!(
                        "fabric call `.{name}()` while rank-{} guard on `{}` ({}, line {}) is \
                         live; charge RPCs / fire gates outside the critical section",
                        g.rank,
                        g.field,
                        RANK_NAMES[g.rank as usize - 1],
                        g.line,
                    ),
                });
            }
        }
    }
}

/// If the acquisition at token `i` is `let`-bound, the binding name (the
/// last identifier before `=`, so `let mut st = …` and
/// `let Some(g) = …try_lock()` both resolve). Unbound (temporary) guards
/// die within their statement and are not tracked.
fn let_binding(v: &View, i: usize) -> Option<String> {
    let start = stmt_start(v, i);
    if v.ident(start) != Some("let") && v.ident(start) != Some("while") {
        return None;
    }
    let mut last = None;
    let mut j = start + 1;
    while j < i {
        if v.is_punct(j, '=') {
            return last;
        }
        if let Some(name) = v.ident(j) {
            if name != "mut" && name != "Some" && name != "Ok" && name != "let" {
                last = Some(name.to_string());
            }
        }
        j += 1;
    }
    None
}
