//! The three lint families plus the receiver-resolution helpers they share.

pub(crate) mod determinism;
pub(crate) mod locks;
pub(crate) mod panics;

use crate::View;

/// Method adapters that forward to the same underlying container/lock, so
/// receiver resolution can look through them: `self.blobs.read().values()`
/// resolves to `blobs`.
const ADAPTERS: &[&str] = &[
    "read",
    "write",
    "lock",
    "try_lock",
    "borrow",
    "borrow_mut",
    "as_ref",
    "as_mut",
];

/// Resolve the field/variable a method chain acts on. `end` is the index of
/// the token immediately left of the `.` that precedes the method name.
/// Walks through adapter calls, closing brackets (`stripes[i]` → `stripes`)
/// and `*`/`&` derefs; `None` when the receiver is not a plain chain.
pub(crate) fn resolve_receiver(v: &View, mut end: usize) -> Option<String> {
    loop {
        if v.is_punct(end, ')') {
            // Walk back over the call's parens to the method name.
            let open = match_open(v, end, '(', ')')?;
            let method = v.ident(open.checked_sub(1)?)?;
            if !ADAPTERS.contains(&method) {
                return None;
            }
            // Skip the method ident and its leading dot.
            let dot = open.checked_sub(2)?;
            if !v.is_punct(dot, '.') {
                return None;
            }
            end = dot.checked_sub(1)?;
            continue;
        }
        if v.is_punct(end, ']') {
            let open = match_open(v, end, '[', ']')?;
            end = open.checked_sub(1)?;
            continue;
        }
        if let Some(name) = v.ident(end) {
            return Some(name.to_string());
        }
        return None;
    }
}

/// Index of the opener matching the closer at `close` (backward scan).
pub(crate) fn match_open(v: &View, close: usize, oc: char, cc: char) -> Option<usize> {
    let mut depth = 0i32;
    let mut j = close;
    loop {
        if v.is_punct(j, cc) {
            depth += 1;
        } else if v.is_punct(j, oc) {
            depth -= 1;
            if depth == 0 {
                return Some(j);
            }
        }
        j = j.checked_sub(1)?;
    }
}

/// Token index where the statement containing `i` begins (just after the
/// previous `;`, `{` or `}` at the same nesting).
pub(crate) fn stmt_start(v: &View, i: usize) -> usize {
    let mut j = i;
    let mut depth = 0i32;
    while j > 0 {
        let k = j - 1;
        if v.is_punct(k, ')') || v.is_punct(k, ']') {
            depth += 1;
        } else if v.is_punct(k, '(') || v.is_punct(k, '[') {
            if depth == 0 {
                return j;
            }
            depth -= 1;
        } else if depth == 0 && (v.is_punct(k, ';') || v.is_punct(k, '{') || v.is_punct(k, '}')) {
            return j;
        }
        j = k;
    }
    0
}

/// Token index just past the statement containing `i` (its `;`, or the `{`
/// opening a block, whichever comes first at the same nesting).
pub(crate) fn stmt_end(v: &View, i: usize) -> usize {
    let mut j = i;
    let mut depth = 0i32;
    while j < v.toks.len() {
        if v.is_punct(j, '(') || v.is_punct(j, '[') {
            depth += 1;
        } else if v.is_punct(j, ')') || v.is_punct(j, ']') {
            depth -= 1;
            if depth < 0 {
                return j;
            }
        } else if depth == 0 && (v.is_punct(j, ';') || v.is_punct(j, '{') || v.is_punct(j, '}')) {
            return j;
        }
        j += 1;
    }
    v.toks.len()
}
