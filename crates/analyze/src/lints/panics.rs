//! Panic-path family: `panic-unwrap`, `panic-macro`, `panic-index`.
//!
//! Production code in a storage system must degrade into typed errors, not
//! process aborts: a poisoned unwrap in the version manager takes every
//! blob on the node down with it. Non-test, non-bench code must return
//! [`BlobError`]-style results, or carry an inline justification proving
//! the site infallible.
//!
//! Heuristics (documented in README.md): indexing with a range (`buf[..4]`)
//! or a `%`/`&`-bounded expression (`stripes[h % N]`) is accepted as
//! structurally bounded; indexing inside `assert!`-family macros is an
//! invariant check, not a production path.

use crate::{FileCtx, Finding, View, PANIC_INDEX, PANIC_MACRO, PANIC_UNWRAP};

const UNWRAPS: &[&str] = &["unwrap", "expect", "unwrap_err", "expect_err"];
const PANIC_MACROS: &[&str] = &["panic", "unreachable", "todo", "unimplemented"];
/// Macro families whose argument lists are invariant checks: indexing there
/// is the assertion itself, not a production data path.
const ASSERT_MACROS: &[&str] = &[
    "assert",
    "assert_eq",
    "assert_ne",
    "debug_assert",
    "debug_assert_eq",
    "debug_assert_ne",
];

pub(crate) fn run(ctx: &FileCtx, v: &View, out: &mut Vec<Finding>) {
    if ctx.panics_exempt {
        return;
    }
    let assert_spans = assert_macro_spans(v);
    let in_assert = |i: usize| assert_spans.iter().any(|&(a, b)| (a..=b).contains(&i));
    for i in 0..v.toks.len() {
        if !v.is_code(i) {
            continue;
        }
        if let Some(name) = v.ident(i) {
            if UNWRAPS.contains(&name) && v.is_punct(i + 1, '(') && i >= 1 && v.is_punct(i - 1, '.')
            {
                out.push(Finding {
                    file: ctx.rel_path.clone(),
                    line: v.line(i),
                    lint: PANIC_UNWRAP.into(),
                    message: format!(
                        ".{name}() on a production path; return a typed BlobError (or justify: \
                         `// analyze: allow(panic-unwrap): <proof of infallibility>`)"
                    ),
                });
                continue;
            }
            if PANIC_MACROS.contains(&name) && v.is_punct(i + 1, '!') {
                out.push(Finding {
                    file: ctx.rel_path.clone(),
                    line: v.line(i),
                    lint: PANIC_MACRO.into(),
                    message: format!(
                        "{name}! aborts the process; surface a typed BlobError instead (or \
                         justify with an allow annotation if the state is provably unreachable)"
                    ),
                });
                continue;
            }
        }
        // Unchecked indexing: `expr[...]` where expr ends in an identifier,
        // `)` or `]`, excluding macros (`vec![`), attributes, ranges,
        // modulo/mask-bounded subscripts, and assert bodies.
        if v.is_punct(i, '[') && i >= 1 && !v.attr.get(i).copied().unwrap_or(false) {
            let prev_is_recv =
                v.ident(i - 1).is_some() || v.is_punct(i - 1, ')') || v.is_punct(i - 1, ']');
            let prev_is_macro = i >= 2 && v.is_punct(i - 1, '!');
            // `for` / `if`-style keywords before `[` are slice patterns.
            let kw = matches!(
                v.ident(i - 1),
                Some("let" | "in" | "return" | "mut" | "ref" | "box" | "match" | "if" | "else")
            );
            if prev_is_recv && !prev_is_macro && !kw && !in_assert(i) {
                if let Some(close) = v.match_close(i, '[', ']') {
                    if !subscript_is_bounded(v, i, close) {
                        out.push(Finding {
                            file: ctx.rel_path.clone(),
                            line: v.line(i),
                            lint: PANIC_INDEX.into(),
                            message: "unchecked index can panic; use .get()/.get_mut(), a range \
                                      slice, a %-bounded subscript, or justify with \
                                      `// analyze: allow(panic-index): <bounds proof>`"
                                .into(),
                        });
                    }
                }
            }
        }
    }
}

/// A subscript is structurally bounded when it contains a range (`..`), a
/// modulo (`%`) or a mask (`&` — also map-by-reference indexing, accepted).
fn subscript_is_bounded(v: &View, open: usize, close: usize) -> bool {
    if close == open + 1 {
        return true; // `[]` — array-type or slice-pattern artifact
    }
    let mut j = open + 1;
    while j < close {
        if v.is_punct(j, '%') || v.is_punct(j, '&') {
            return true;
        }
        if v.is_punct(j, '.') && v.is_punct(j + 1, '.') {
            return true;
        }
        j += 1;
    }
    false
}

/// Token spans (inclusive) of `assert*!(...)` argument lists.
fn assert_macro_spans(v: &View) -> Vec<(usize, usize)> {
    let mut spans = Vec::new();
    for i in 0..v.toks.len() {
        let Some(name) = v.ident(i) else { continue };
        if !ASSERT_MACROS.contains(&name) || !v.is_punct(i + 1, '!') {
            continue;
        }
        let open = i + 2;
        let (oc, cc) = if v.is_punct(open, '(') {
            ('(', ')')
        } else if v.is_punct(open, '[') {
            ('[', ']')
        } else {
            continue;
        };
        if let Some(close) = v.match_close(open, oc, cc) {
            spans.push((open, close));
        }
    }
    spans
}
