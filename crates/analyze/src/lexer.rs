//! A minimal token-level lexer for Rust source.
//!
//! The build environment has no cargo registry, so real parsing frameworks
//! (`syn`, `rustc` internals) are unavailable; every lint in this crate works
//! on the token stream this module produces. It understands exactly the
//! surface that matters for not mis-firing inside non-code text:
//!
//! - line (`//`) and nested block (`/* */`) comments — captured separately so
//!   `// analyze: allow(...)` annotations survive tokenization,
//! - string literals in all the forms the workspace uses: `"…"`, `b"…"`,
//!   raw `r"…"` / `r#"…"#` (any hash depth) and their byte variants,
//! - char literals vs lifetimes (`'a'` vs `'a`),
//! - identifiers, numbers and single-character punctuation.
//!
//! Multi-character operators (`::`, `..`, `->`) are left as consecutive
//! punctuation tokens; lint passes match the sequences they need.

/// Token class. Punctuation is one token per character.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Kind {
    Ident,
    Punct,
    Str,
    Char,
    Num,
    Lifetime,
}

/// One lexed token with the 1-based source line it starts on.
#[derive(Debug, Clone)]
pub struct Token {
    pub kind: Kind,
    pub text: String,
    pub line: u32,
}

impl Token {
    pub fn is_ident(&self, s: &str) -> bool {
        self.kind == Kind::Ident && self.text == s
    }

    pub fn is_punct(&self, c: char) -> bool {
        self.kind == Kind::Punct && self.text.len() == c.len_utf8() && self.text.starts_with(c)
    }
}

/// Lexer output: the token stream plus every comment (line, body) in order.
#[derive(Debug, Default)]
pub struct Lexed {
    pub tokens: Vec<Token>,
    pub comments: Vec<(u32, String)>,
}

/// Try to scan a string literal (plain, byte, raw, raw-byte) starting at
/// `chars[i]`. Returns `(end_exclusive, newlines_inside)` on success.
fn scan_string(chars: &[char], i: usize) -> Option<(usize, u32)> {
    let n = chars.len();
    let mut j = i;
    if j < n && chars.get(j) == Some(&'b') {
        j += 1;
    }
    let raw = chars.get(j) == Some(&'r');
    if raw {
        j += 1;
        let mut hashes = 0usize;
        while chars.get(j) == Some(&'#') {
            hashes += 1;
            j += 1;
        }
        if chars.get(j) != Some(&'"') {
            return None;
        }
        j += 1;
        let mut newlines = 0u32;
        while j < n {
            if chars.get(j) == Some(&'\n') {
                newlines += 1;
            }
            if chars.get(j) == Some(&'"') {
                let mut k = j + 1;
                let mut seen = 0usize;
                while seen < hashes && chars.get(k) == Some(&'#') {
                    seen += 1;
                    k += 1;
                }
                if seen == hashes {
                    return Some((k, newlines));
                }
            }
            j += 1;
        }
        return Some((n, newlines));
    }
    if chars.get(j) != Some(&'"') {
        return None;
    }
    j += 1;
    let mut newlines = 0u32;
    while j < n {
        match chars.get(j) {
            Some('\\') => j += 2,
            Some('"') => return Some((j + 1, newlines)),
            Some('\n') => {
                newlines += 1;
                j += 1;
            }
            _ => j += 1,
        }
    }
    Some((n, newlines))
}

fn is_ident_start(c: char) -> bool {
    c.is_alphabetic() || c == '_'
}

fn is_ident_cont(c: char) -> bool {
    c.is_alphanumeric() || c == '_'
}

/// Lex `src` into tokens + comments. Never fails: unknown bytes become
/// punctuation, unterminated literals run to end of input.
pub fn lex(src: &str) -> Lexed {
    let chars: Vec<char> = src.chars().collect();
    let n = chars.len();
    let mut out = Lexed::default();
    let mut i = 0usize;
    let mut line = 1u32;
    while i < n {
        let c = chars[i];
        if c == '\n' {
            line += 1;
            i += 1;
            continue;
        }
        if c.is_whitespace() {
            i += 1;
            continue;
        }
        // Line comment (incl. /// and //! docs).
        if c == '/' && chars.get(i + 1) == Some(&'/') {
            let start = i + 2;
            let mut j = start;
            while j < n && chars[j] != '\n' {
                j += 1;
            }
            out.comments.push((line, chars[start..j].iter().collect()));
            i = j;
            continue;
        }
        // Nested block comment.
        if c == '/' && chars.get(i + 1) == Some(&'*') {
            let start = i + 2;
            let mut depth = 1usize;
            let mut j = start;
            let comment_line = line;
            while j < n && depth > 0 {
                if chars[j] == '\n' {
                    line += 1;
                    j += 1;
                } else if chars[j] == '/' && chars.get(j + 1) == Some(&'*') {
                    depth += 1;
                    j += 2;
                } else if chars[j] == '*' && chars.get(j + 1) == Some(&'/') {
                    depth -= 1;
                    j += 2;
                } else {
                    j += 1;
                }
            }
            let end = j.saturating_sub(2).max(start);
            out.comments
                .push((comment_line, chars[start..end].iter().collect()));
            i = j;
            continue;
        }
        // String literals (plain/byte/raw). Must run before ident lexing so
        // the r/b prefixes are not eaten as identifiers.
        if c == '"' || ((c == 'r' || c == 'b') && scan_string(&chars, i).is_some()) {
            if let Some((end, newlines)) = scan_string(&chars, i) {
                out.tokens.push(Token {
                    kind: Kind::Str,
                    text: String::new(), // bodies never matter to lints
                    line,
                });
                line += newlines;
                i = end;
                continue;
            }
        }
        // Byte char b'x'.
        if c == 'b' && chars.get(i + 1) == Some(&'\'') {
            let mut j = i + 2;
            if chars.get(j) == Some(&'\\') {
                j += 1;
            }
            j += 1;
            if chars.get(j) == Some(&'\'') {
                j += 1;
            }
            out.tokens.push(Token {
                kind: Kind::Char,
                text: String::new(),
                line,
            });
            i = j;
            continue;
        }
        // Char literal vs lifetime.
        if c == '\'' {
            if chars.get(i + 1) == Some(&'\\') {
                let mut j = i + 2;
                while j < n && chars[j] != '\'' {
                    j += 1;
                }
                out.tokens.push(Token {
                    kind: Kind::Char,
                    text: String::new(),
                    line,
                });
                i = (j + 1).min(n);
                continue;
            }
            if chars.get(i + 2) == Some(&'\'') {
                out.tokens.push(Token {
                    kind: Kind::Char,
                    text: String::new(),
                    line,
                });
                i += 3;
                continue;
            }
            let mut j = i + 1;
            while j < n && is_ident_cont(chars[j]) {
                j += 1;
            }
            out.tokens.push(Token {
                kind: Kind::Lifetime,
                text: chars[i + 1..j].iter().collect(),
                line,
            });
            i = j;
            continue;
        }
        if is_ident_start(c) {
            let mut j = i + 1;
            while j < n && is_ident_cont(chars[j]) {
                j += 1;
            }
            out.tokens.push(Token {
                kind: Kind::Ident,
                text: chars[i..j].iter().collect(),
                line,
            });
            i = j;
            continue;
        }
        if c.is_ascii_digit() {
            let mut j = i + 1;
            while j < n && (is_ident_cont(chars[j])) {
                j += 1;
            }
            // Fractional part: `1.25` but not `1..n` or `1.method()`.
            if chars.get(j) == Some(&'.') && chars.get(j + 1).is_some_and(|d| d.is_ascii_digit()) {
                j += 1;
                while j < n && is_ident_cont(chars[j]) {
                    j += 1;
                }
            }
            out.tokens.push(Token {
                kind: Kind::Num,
                text: chars[i..j].iter().collect(),
                line,
            });
            i = j;
            continue;
        }
        out.tokens.push(Token {
            kind: Kind::Punct,
            text: c.to_string(),
            line,
        });
        i += 1;
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn idents(src: &str) -> Vec<String> {
        lex(src)
            .tokens
            .into_iter()
            .filter(|t| t.kind == Kind::Ident)
            .map(|t| t.text)
            .collect()
    }

    #[test]
    fn strings_and_comments_do_not_leak_tokens() {
        let src = r##"
// a comment with .unwrap() inside
let s = "text .unwrap() more";
let r = r#"raw "quoted" .expect("x")"#;
let b = b"bytes";
real_ident();
"##;
        assert_eq!(
            idents(src),
            vec!["let", "s", "let", "r", "let", "b", "real_ident"]
        );
        let lexed = lex(src);
        assert_eq!(lexed.comments.len(), 1);
        assert!(lexed.comments[0].1.contains("unwrap"));
    }

    #[test]
    fn lifetimes_vs_chars() {
        let toks = lex("fn f<'a>(x: &'a str) { let c = 'x'; let nl = '\\n'; }").tokens;
        let lifetimes: Vec<_> = toks.iter().filter(|t| t.kind == Kind::Lifetime).collect();
        let chars: Vec<_> = toks.iter().filter(|t| t.kind == Kind::Char).collect();
        assert_eq!(lifetimes.len(), 2);
        assert_eq!(chars.len(), 2);
    }

    #[test]
    fn line_numbers_track_multiline_constructs() {
        let src = "a\n/* two\nlines */\nb\nc";
        let toks = lex(src).tokens;
        assert_eq!(toks[0].line, 1);
        assert_eq!(toks[1].line, 4);
        assert_eq!(toks[2].line, 5);
    }

    #[test]
    fn nested_block_comments() {
        let toks = lex("x /* outer /* inner */ still */ y").tokens;
        assert_eq!(toks.len(), 2);
        assert!(toks[0].is_ident("x") && toks[1].is_ident("y"));
    }

    #[test]
    fn numbers_with_suffixes_and_ranges() {
        let toks = lex("0xFF_u64 1.25 0..n").tokens;
        assert_eq!(toks[0].text, "0xFF_u64");
        assert_eq!(toks[1].text, "1.25");
        assert_eq!(toks[2].text, "0");
        assert!(toks[3].is_punct('.') && toks[4].is_punct('.'));
    }
}
