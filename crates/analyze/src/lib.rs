//! Workspace static analysis: replay determinism, lock discipline and panic
//! paths, enforced as a CI gate (`cargo run -p analyze -- --deny`).
//!
//! Three lint families (see `README.md` for the full contract):
//!
//! 1. **Determinism** — `unordered-iter` (HashMap/HashSet iteration in
//!    replay-critical crates), `wall-clock` (`Instant::now` / `SystemTime`
//!    outside the fabric/pstore/bench boundary), `unseeded-rng`.
//! 2. **Lock discipline** — `lock-order` (the declared hierarchy: VM
//!    registry → blob slot → lease book → provider/meta stripes) and
//!    `wire-while-locked` (no fabric calls while a control-plane guard is
//!    live).
//! 3. **Panic paths** — `panic-unwrap`, `panic-macro`, `panic-index` in
//!    non-test, non-bench production code.
//!
//! Suppression is explicit and always justified: inline
//! `// analyze: allow(<lint>): <why>` (same or previous line),
//! `// analyze: allow-fn(<lint>): <why>` (rest of the enclosing block), or a
//! file-scoped entry in the committed `analyze.allow` at the workspace root.
//! Unjustified annotations and unused allowlist entries are findings
//! themselves, so the suppression surface can only shrink.

pub mod lexer;
mod lints;

use std::fmt;
use std::fs;
use std::path::Path;

use lexer::{Kind, Lexed, Token};

/// Lint identifiers (stable strings: they appear in annotations and the
/// allowlist file).
pub const UNORDERED_ITER: &str = "unordered-iter";
pub const WALL_CLOCK: &str = "wall-clock";
pub const UNSEEDED_RNG: &str = "unseeded-rng";
pub const LOCK_ORDER: &str = "lock-order";
pub const WIRE_WHILE_LOCKED: &str = "wire-while-locked";
pub const PANIC_UNWRAP: &str = "panic-unwrap";
pub const PANIC_MACRO: &str = "panic-macro";
pub const PANIC_INDEX: &str = "panic-index";
pub const ANNOTATION_UNJUSTIFIED: &str = "annotation-unjustified";
pub const ALLOWLIST_UNJUSTIFIED: &str = "allowlist-unjustified";
pub const ALLOWLIST_UNUSED: &str = "allowlist-unused";

/// Every lint an annotation or allowlist entry may name.
pub const ALL_LINTS: &[&str] = &[
    UNORDERED_ITER,
    WALL_CLOCK,
    UNSEEDED_RNG,
    LOCK_ORDER,
    WIRE_WHILE_LOCKED,
    PANIC_UNWRAP,
    PANIC_MACRO,
    PANIC_INDEX,
];

/// One reported violation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Finding {
    pub file: String,
    pub line: u32,
    pub lint: String,
    pub message: String,
}

impl fmt::Display for Finding {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}:{}: [{}] {}",
            self.file, self.line, self.lint, self.message
        )
    }
}

/// Per-file lint configuration, derived from the path by [`classify`] (or
/// built by hand in fixture tests).
#[derive(Debug, Clone)]
pub struct FileCtx {
    /// Workspace-relative path (forward slashes), used in findings.
    pub rel_path: String,
    /// Crate the file belongs to (`core`, `chaos`, …; `root` for the
    /// umbrella package).
    pub crate_name: String,
    /// Subject to the unordered-iteration lint (core, chaos, mapreduce,
    /// workloads — the crates whose behaviour must replay byte-identically
    /// from a seed).
    pub replay_critical: bool,
    /// Inside the sanctioned wall-clock boundary (fabric, pstore, bench).
    pub wallclock_exempt: bool,
    /// Exempt from the panic-path family (tests, benches, examples).
    pub panics_exempt: bool,
    /// Subject to the lock-hierarchy lints (core, where the ranked locks
    /// live).
    pub lock_ranked: bool,
    /// Crate-wide extra unordered-container names (fields declared in a
    /// sibling file, e.g. `BlobState::pending` from `meta.rs` iterated in
    /// `version_manager.rs`). Filled by [`analyze_workspace`]'s pre-pass.
    pub extra_unordered: Vec<String>,
}

/// Crates whose control flow feeds the seeded chaos replay.
const REPLAY_CRITICAL: &[&str] = &["core", "chaos", "mapreduce", "workloads"];
/// Crates allowed to read the wall clock (they *are* the time boundary).
const WALLCLOCK_EXEMPT: &[&str] = &["fabric", "pstore", "bench"];

/// Map a workspace-relative path to its lint context. `None` = not analyzed
/// (non-Rust, shims, the analyzer's own fixture corpus).
pub fn classify(rel_path: &str) -> Option<FileCtx> {
    if !rel_path.ends_with(".rs") {
        return None;
    }
    let parts: Vec<&str> = rel_path.split('/').collect();
    // Vendored API shims mirror external crates; their idioms are not ours
    // to lint. Fixture files are deliberately-violating lint samples.
    if rel_path.starts_with("crates/shims/") || parts.contains(&"fixtures") {
        return None;
    }
    let crate_name = if parts.first() == Some(&"crates") && parts.len() > 1 {
        parts[1].to_string()
    } else {
        "root".to_string()
    };
    // Test, bench and example code may unwrap freely; its determinism is
    // enforced dynamically (the chaos sweep replays byte-identically or
    // fails), not statically.
    let test_like = parts
        .iter()
        .any(|p| *p == "tests" || *p == "benches" || *p == "examples");
    Some(FileCtx {
        rel_path: rel_path.to_string(),
        replay_critical: REPLAY_CRITICAL.contains(&crate_name.as_str()) && !test_like,
        wallclock_exempt: WALLCLOCK_EXEMPT.contains(&crate_name.as_str()) || test_like,
        panics_exempt: test_like || crate_name == "bench",
        lock_ranked: crate_name == "core" && !test_like,
        crate_name,
        extra_unordered: Vec::new(),
    })
}

/// Token stream plus the masks lints need: which tokens are inside
/// attributes, and which are inside `#[cfg(test)]` / `#[test]` / `#[bench]`
/// items (skipped by every lint).
pub(crate) struct View {
    pub toks: Vec<Token>,
    /// Token is lintable production code (not attr, not test-masked).
    pub code: Vec<bool>,
    /// Token is inside a `#[...]` attribute.
    pub attr: Vec<bool>,
}

impl View {
    pub(crate) fn new(lexed: &Lexed) -> View {
        let toks = lexed.tokens.clone();
        let n = toks.len();
        let mut attr = vec![false; n];
        let mut test_mask = vec![false; n];
        let mut i = 0usize;
        while i < n {
            if toks[i].is_punct('#') {
                let open = if toks.get(i + 1).is_some_and(|t| t.is_punct('[')) {
                    Some(i + 1)
                } else if toks.get(i + 1).is_some_and(|t| t.is_punct('!'))
                    && toks.get(i + 2).is_some_and(|t| t.is_punct('['))
                {
                    Some(i + 2)
                } else {
                    None
                };
                if let Some(open) = open {
                    if let Some(close) = match_bracket(&toks, open, '[', ']') {
                        for m in attr.iter_mut().take(close + 1).skip(i) {
                            *m = true;
                        }
                        let is_test = toks[open..close]
                            .iter()
                            .any(|t| t.is_ident("test") || t.is_ident("bench"));
                        if is_test {
                            let end = item_end(&toks, close + 1);
                            for m in test_mask.iter_mut().take(end + 1).skip(i) {
                                *m = true;
                            }
                        }
                        i = close + 1;
                        continue;
                    }
                }
            }
            i += 1;
        }
        let code = (0..n).map(|k| !attr[k] && !test_mask[k]).collect();
        View { toks, code, attr }
    }

    pub(crate) fn ident(&self, i: usize) -> Option<&str> {
        match self.toks.get(i) {
            Some(t) if t.kind == Kind::Ident => Some(&t.text),
            _ => None,
        }
    }

    pub(crate) fn is_punct(&self, i: usize, c: char) -> bool {
        self.toks.get(i).is_some_and(|t| t.is_punct(c))
    }

    pub(crate) fn is_code(&self, i: usize) -> bool {
        self.code.get(i).copied().unwrap_or(false)
    }

    pub(crate) fn line(&self, i: usize) -> u32 {
        self.toks.get(i).map_or(0, |t| t.line)
    }

    /// Index of the matching closer for the opener at `open`.
    pub(crate) fn match_close(&self, open: usize, oc: char, cc: char) -> Option<usize> {
        match_bracket(&self.toks, open, oc, cc)
    }
}

fn match_bracket(toks: &[Token], open: usize, oc: char, cc: char) -> Option<usize> {
    let mut depth = 0usize;
    let mut j = open;
    while j < toks.len() {
        if toks[j].is_punct(oc) {
            depth += 1;
        } else if toks[j].is_punct(cc) {
            depth -= 1;
            if depth == 0 {
                return Some(j);
            }
        }
        j += 1;
    }
    None
}

/// End (token index) of the item starting at `from`: the matching `}` of its
/// first top-level `{`, or the first top-level `;`. Used to mask test items.
fn item_end(toks: &[Token], from: usize) -> usize {
    let mut j = from;
    let mut round = 0i32;
    while j < toks.len() {
        let t = &toks[j];
        if t.is_punct('(') || t.is_punct('[') {
            round += 1;
        } else if t.is_punct(')') || t.is_punct(']') {
            round -= 1;
        } else if round == 0 && t.is_punct(';') {
            return j;
        } else if round == 0 && t.is_punct('{') {
            return match_bracket(toks, j, '{', '}').unwrap_or(toks.len() - 1);
        }
        j += 1;
    }
    toks.len().saturating_sub(1)
}

/// One parsed `// analyze: allow(...)` annotation.
#[derive(Debug, Clone)]
struct Annot {
    lints: Vec<String>,
    /// Covered lines (inclusive). For exact `allow` annotations this is the
    /// annotation's own line through the first line after its contiguous
    /// comment run (so a wrapped justification still reaches the code line
    /// below it); for `allow-fn` it is the enclosing brace block.
    span: (u32, u32),
    justified: bool,
}

pub(crate) struct Annots {
    items: Vec<Annot>,
}

impl Annots {
    /// True when `lint` at `line` is suppressed by a *justified* annotation.
    pub(crate) fn allowed(&self, lint: &str, line: u32) -> bool {
        self.items.iter().any(|a| {
            a.justified
                && a.lints.iter().any(|l| l == lint)
                && (a.span.0..=a.span.1).contains(&line)
        })
    }
}

/// Parse annotations out of the comment stream; malformed or unjustified
/// ones become findings immediately (they must never silently suppress).
fn parse_annotations(ctx: &FileCtx, lexed: &Lexed, view: &View) -> (Annots, Vec<Finding>) {
    let mut items = Vec::new();
    let mut findings = Vec::new();
    let comment_lines: std::collections::BTreeSet<u32> =
        lexed.comments.iter().map(|(l, _)| *l).collect();
    for (line, body) in &lexed.comments {
        // The annotation must be the whole comment (`// analyze: allow(…)`),
        // so prose and doc comments *mentioning* the grammar never parse.
        let Some(tail) = body.trim_start().strip_prefix("analyze:") else {
            continue;
        };
        let rest = tail.trim_start();
        let fn_scope = rest.starts_with("allow-fn");
        if !rest.starts_with("allow") {
            continue;
        }
        let Some(open) = rest.find('(') else {
            findings.push(Finding {
                file: ctx.rel_path.clone(),
                line: *line,
                lint: ANNOTATION_UNJUSTIFIED.into(),
                message: "malformed annotation: expected `allow(<lint>): <justification>`".into(),
            });
            continue;
        };
        let Some(close) = rest[open..].find(')').map(|k| open + k) else {
            findings.push(Finding {
                file: ctx.rel_path.clone(),
                line: *line,
                lint: ANNOTATION_UNJUSTIFIED.into(),
                message: "malformed annotation: unclosed lint list".into(),
            });
            continue;
        };
        let lints: Vec<String> = rest[open + 1..close]
            .split(',')
            .map(|s| s.trim().to_string())
            .filter(|s| !s.is_empty())
            .collect();
        for l in &lints {
            if !ALL_LINTS.contains(&l.as_str()) {
                findings.push(Finding {
                    file: ctx.rel_path.clone(),
                    line: *line,
                    lint: ANNOTATION_UNJUSTIFIED.into(),
                    message: format!("annotation names unknown lint `{l}`"),
                });
            }
        }
        let after = rest[close + 1..].trim_start();
        let justification = after.strip_prefix(':').map(str::trim).unwrap_or("");
        let justified = !justification.is_empty();
        if !justified {
            findings.push(Finding {
                file: ctx.rel_path.clone(),
                line: *line,
                lint: ANNOTATION_UNJUSTIFIED.into(),
                message:
                    "annotation carries no justification: write `allow(<lint>): <one-line why>`"
                        .into(),
            });
        }
        let span = if fn_scope {
            enclosing_block_lines(view, *line)
        } else {
            // Extend through the contiguous comment run (a wrapped
            // justification) to the first code line after it.
            let mut end = *line;
            while comment_lines.contains(&(end + 1)) {
                end += 1;
            }
            (*line, end + 1)
        };
        items.push(Annot {
            lints,
            span,
            justified,
        });
    }
    (Annots { items }, findings)
}

/// Line range of the innermost brace block containing `line` (the whole file
/// when the annotation sits at top level). `allow-fn` annotations therefore
/// belong *inside* the function body they cover.
fn enclosing_block_lines(view: &View, line: u32) -> (u32, u32) {
    let mut best: Option<(u32, u32)> = None;
    let mut stack: Vec<u32> = Vec::new();
    for i in 0..view.toks.len() {
        if view.is_punct(i, '{') {
            stack.push(view.line(i));
        } else if view.is_punct(i, '}') {
            if let Some(lo) = stack.pop() {
                let hi = view.line(i);
                if lo <= line && line <= hi {
                    let tighter = match best {
                        Some((blo, _)) => lo >= blo,
                        None => true,
                    };
                    if tighter {
                        best = Some((lo, hi));
                    }
                }
            }
        }
    }
    best.unwrap_or((1, u32::MAX))
}

/// Analyze one file under an explicit context (fixture tests use this
/// directly; [`analyze_workspace`] derives contexts via [`classify`]).
pub fn analyze_with_ctx(ctx: &FileCtx, src: &str) -> Vec<Finding> {
    let lexed = lexer::lex(src);
    let view = View::new(&lexed);
    let (annots, mut findings) = parse_annotations(ctx, &lexed, &view);
    let mut raw = Vec::new();
    lints::determinism::run(ctx, &view, &mut raw);
    lints::locks::run(ctx, &view, &mut raw);
    lints::panics::run(ctx, &view, &mut raw);
    findings.extend(raw.into_iter().filter(|f| !annots.allowed(&f.lint, f.line)));
    findings.sort_by(|a, b| (a.line, &a.lint).cmp(&(b.line, &b.lint)));
    findings
}

/// Workspace analysis result.
pub struct Report {
    pub findings: Vec<Finding>,
    pub files_scanned: usize,
}

/// Name of the committed file-scoped allowlist at the workspace root.
pub const ALLOWLIST_FILE: &str = "analyze.allow";

struct AllowEntry {
    line_no: u32,
    lint: String,
    path: String,
    used: bool,
}

/// Parse `analyze.allow`: one `<lint> <path> <justification…>` per line,
/// `#` comments and blanks ignored. Entries without a justification are
/// findings; so are entries that match nothing (the list can only shrink).
fn parse_allowlist(root: &Path, findings: &mut Vec<Finding>) -> Vec<AllowEntry> {
    let path = root.join(ALLOWLIST_FILE);
    let Ok(body) = fs::read_to_string(&path) else {
        return Vec::new();
    };
    let mut entries = Vec::new();
    for (idx, raw) in body.lines().enumerate() {
        let line_no = idx as u32 + 1;
        let line = raw.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let mut parts = line.splitn(3, char::is_whitespace);
        let lint = parts.next().unwrap_or("").to_string();
        let file = parts.next().unwrap_or("").to_string();
        let justification = parts.next().unwrap_or("").trim();
        if !ALL_LINTS.contains(&lint.as_str()) {
            findings.push(Finding {
                file: ALLOWLIST_FILE.into(),
                line: line_no,
                lint: ALLOWLIST_UNJUSTIFIED.into(),
                message: format!("entry names unknown lint `{lint}`"),
            });
            continue;
        }
        if file.is_empty() || justification.is_empty() {
            findings.push(Finding {
                file: ALLOWLIST_FILE.into(),
                line: line_no,
                lint: ALLOWLIST_UNJUSTIFIED.into(),
                message: "entry must read `<lint> <path> <one-line justification>`".into(),
            });
            continue;
        }
        entries.push(AllowEntry {
            line_no,
            lint,
            path: file,
            used: false,
        });
    }
    entries
}

fn allow_matches(entry: &AllowEntry, finding: &Finding) -> bool {
    entry.lint == finding.lint
        && (finding.file == entry.path
            || (entry.path.ends_with('/') && finding.file.starts_with(&entry.path)))
}

/// Recursively collect the workspace `.rs` files to analyze.
fn collect_files(root: &Path, dir: &Path, out: &mut Vec<String>) {
    const SKIP_DIRS: &[&str] = &["target", ".git", ".github", "fixtures", "shims"];
    let Ok(entries) = fs::read_dir(dir) else {
        return;
    };
    let mut paths: Vec<_> = entries.flatten().map(|e| e.path()).collect();
    paths.sort();
    for path in paths {
        let name = path
            .file_name()
            .and_then(|n| n.to_str())
            .unwrap_or_default()
            .to_string();
        if path.is_dir() {
            if !SKIP_DIRS.contains(&name.as_str()) {
                collect_files(root, &path, out);
            }
        } else if name.ends_with(".rs") {
            if let Ok(rel) = path.strip_prefix(root) {
                let rel: Vec<String> = rel
                    .components()
                    .map(|c| c.as_os_str().to_string_lossy().into_owned())
                    .collect();
                out.push(rel.join("/"));
            }
        }
    }
}

/// Walk the workspace rooted at `root`, lint every production source file,
/// apply the committed allowlist, and report what remains.
pub fn analyze_workspace(root: &Path) -> Result<Report, String> {
    if !root.join("Cargo.toml").exists() {
        return Err(format!(
            "{} does not look like a workspace root (no Cargo.toml)",
            root.display()
        ));
    }
    let mut files = Vec::new();
    collect_files(root, root, &mut files);
    let mut batch: Vec<(FileCtx, String)> = Vec::new();
    for rel in &files {
        let Some(ctx) = classify(rel) else { continue };
        let src =
            fs::read_to_string(root.join(rel)).map_err(|e| format!("failed to read {rel}: {e}"))?;
        batch.push((ctx, src));
    }
    // Pre-pass: per-crate union of unordered-container names, so fields
    // declared in one file and iterated in a sibling are still tracked.
    let mut per_crate: std::collections::HashMap<String, Vec<String>> =
        std::collections::HashMap::new();
    for (ctx, src) in &batch {
        if !ctx.replay_critical {
            continue;
        }
        let lexed = lexer::lex(src);
        let view = View::new(&lexed);
        per_crate
            .entry(ctx.crate_name.clone())
            .or_default()
            .extend(lints::determinism::unordered_names(&view));
    }
    let mut findings = Vec::new();
    let mut scanned = 0usize;
    for (ctx, src) in &mut batch {
        if let Some(extra) = per_crate.get(&ctx.crate_name) {
            ctx.extra_unordered = extra.clone();
        }
        scanned += 1;
        findings.extend(analyze_with_ctx(ctx, src));
    }
    let mut meta = Vec::new();
    let mut entries = parse_allowlist(root, &mut meta);
    findings.retain(|f| {
        let mut keep = true;
        for e in entries.iter_mut() {
            if allow_matches(e, f) {
                e.used = true;
                keep = false;
            }
        }
        keep
    });
    for e in &entries {
        if !e.used {
            meta.push(Finding {
                file: ALLOWLIST_FILE.into(),
                line: e.line_no,
                lint: ALLOWLIST_UNUSED.into(),
                message: format!(
                    "entry `{} {}` matches no finding — delete it (the allowlist only shrinks)",
                    e.lint, e.path
                ),
            });
        }
    }
    findings.extend(meta);
    findings.sort_by(|a, b| (&a.file, a.line, &a.lint).cmp(&(&b.file, b.line, &b.lint)));
    Ok(Report {
        findings,
        files_scanned: scanned,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn plain_ctx() -> FileCtx {
        FileCtx {
            rel_path: "x.rs".into(),
            crate_name: "core".into(),
            replay_critical: true,
            wallclock_exempt: false,
            panics_exempt: false,
            lock_ranked: true,
            extra_unordered: Vec::new(),
        }
    }

    #[test]
    fn classify_routes_paths() {
        let core = classify("crates/core/src/client.rs").expect("classified");
        assert!(core.replay_critical && core.lock_ranked && !core.panics_exempt);
        let core_tests = classify("crates/core/tests/metadata_ops.rs").expect("classified");
        assert!(core_tests.panics_exempt && !core_tests.replay_critical);
        let fabric = classify("crates/fabric/src/live.rs").expect("classified");
        assert!(fabric.wallclock_exempt && !fabric.replay_critical);
        assert!(classify("crates/shims/rand/src/lib.rs").is_none());
        assert!(classify("crates/analyze/fixtures/panics_violating.rs").is_none());
        let bench = classify("crates/bench/src/lib.rs").expect("classified");
        assert!(bench.panics_exempt && bench.wallclock_exempt);
        let root = classify("src/lib.rs").expect("classified");
        assert_eq!(root.crate_name, "root");
    }

    #[test]
    fn test_items_are_masked() {
        let src = r#"
fn prod() { x.unwrap(); }
#[cfg(test)]
mod tests {
    fn helper() { y.unwrap(); z.unwrap(); }
}
"#;
        let f = analyze_with_ctx(&plain_ctx(), src);
        assert_eq!(f.iter().filter(|f| f.lint == PANIC_UNWRAP).count(), 1);
    }

    #[test]
    fn annotations_suppress_only_with_justification() {
        let justified =
            "fn f() {\n    // analyze: allow(panic-unwrap): provably Some here\n    x.unwrap();\n}";
        assert!(analyze_with_ctx(&plain_ctx(), justified).is_empty());
        let bare = "fn f() {\n    // analyze: allow(panic-unwrap)\n    x.unwrap();\n}";
        let f = analyze_with_ctx(&plain_ctx(), bare);
        assert!(f.iter().any(|f| f.lint == ANNOTATION_UNJUSTIFIED));
        assert!(f.iter().any(|f| f.lint == PANIC_UNWRAP));
    }

    #[test]
    fn allow_fn_covers_enclosing_block() {
        let src = "fn f() {\n    // analyze: allow-fn(panic-index): parallel arrays built together\n    let a = xs[0];\n    let b = xs[1];\n}\nfn g() { let c = xs[2]; }";
        let f = analyze_with_ctx(&plain_ctx(), src);
        let idx: Vec<_> = f.iter().filter(|f| f.lint == PANIC_INDEX).collect();
        assert_eq!(idx.len(), 1, "only g()'s site survives: {f:?}");
        assert_eq!(idx[0].line, 6);
    }

    #[test]
    fn unknown_lint_in_annotation_is_flagged() {
        let src = "// analyze: allow(no-such-lint): whatever\nfn f() {}";
        let f = analyze_with_ctx(&plain_ctx(), src);
        assert!(f.iter().any(|f| f.lint == ANNOTATION_UNJUSTIFIED));
    }
}
