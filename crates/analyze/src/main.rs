//! CLI for the workspace analyzer.
//!
//! ```text
//! cargo run -p analyze             # report findings, exit 0
//! cargo run -p analyze -- --deny   # CI gate: exit 1 on any finding
//! cargo run -p analyze -- --root <path>
//! ```

use std::env;
use std::path::PathBuf;
use std::process::ExitCode;

fn find_workspace_root(start: PathBuf) -> Option<PathBuf> {
    let mut dir = start;
    loop {
        let manifest = dir.join("Cargo.toml");
        if manifest.exists() {
            if let Ok(body) = std::fs::read_to_string(&manifest) {
                if body.contains("[workspace]") {
                    return Some(dir);
                }
            }
        }
        if !dir.pop() {
            return None;
        }
    }
}

fn main() -> ExitCode {
    let mut deny = false;
    let mut root: Option<PathBuf> = None;
    let mut args = env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--deny" => deny = true,
            "--root" => root = args.next().map(PathBuf::from),
            "--help" | "-h" => {
                println!(
                    "usage: analyze [--deny] [--root <workspace>]\n\
                     Lints the workspace for determinism, lock-discipline and panic-path\n\
                     violations. --deny exits non-zero when any finding survives the\n\
                     annotations and the committed {} allowlist.",
                    analyze::ALLOWLIST_FILE
                );
                return ExitCode::SUCCESS;
            }
            other => {
                eprintln!("analyze: unknown argument `{other}` (try --help)");
                return ExitCode::FAILURE;
            }
        }
    }
    let root = match root.or_else(|| env::current_dir().ok().and_then(find_workspace_root)) {
        Some(r) => r,
        None => {
            eprintln!("analyze: could not locate a workspace root (pass --root)");
            return ExitCode::FAILURE;
        }
    };
    let report = match analyze::analyze_workspace(&root) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("analyze: {e}");
            return ExitCode::FAILURE;
        }
    };
    for f in &report.findings {
        println!("{f}");
    }
    println!(
        "analyze: {} finding(s) across {} file(s)",
        report.findings.len(),
        report.files_scanned
    );
    if deny && !report.findings.is_empty() {
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}
