//! `workloads` — data generators and Map/Reduce applications used by the
//! paper's evaluation.
//!
//! * [`lastfm`] — a deterministic generator of Last.fm-shaped key/value
//!   datasets (the paper's §4.3 input: "key-value pairs extracted from the
//!   datasets made public by Last.fm"); substitution documented in
//!   DESIGN.md.
//! * [`datajoin`] — the `data join` application "included in the
//!   contributions delivered with Yahoo!'s Hadoop release" (§4.3): an
//!   inner-join producing all combinations of values per shared key,
//!   plus an in-memory reference oracle for verification and the
//!   calibrated ghost profile used by the Figure 6 cluster-scale runs.
//! * [`wordcount`] / [`grep`] — the classic Hadoop examples, used by the
//!   runnable examples and extra tests.

pub mod datajoin;
pub mod grep;
pub mod lastfm;
pub mod wordcount;
