//! The `data join` application (paper §4.3): "similar to the outer join
//! operation from the database context. Data join takes as input two files
//! consisting of key-value pairs, and merges them based on the keys from
//! the first file that appear in the second file as well. ... If a key in
//! the first file appears more than once in either one of the two files,
//! the output will contain all the possible combinations."
//!
//! Implementation follows Hadoop contrib's `datajoin` pattern: map outputs
//! are tagged with their source (the tag is embedded in the value, as
//! `TaggedMapOutput` does); the reducer groups per key, separates the two
//! sources and emits the cross product. Keys present in only one source are
//! dropped.

use std::collections::HashMap;
use std::sync::Arc;

use mapreduce::{GhostProfile, UserFns, KV};

/// Map function: identity on (key, tagged value) — the tag travels in the
/// value, exactly like contrib datajoin's TaggedMapOutput.
struct JoinMapper;

impl mapreduce::Mapper for JoinMapper {
    fn map(&self, key: &[u8], value: &[u8], out: &mut dyn FnMut(KV)) {
        out(KV::new(key.to_vec(), value.to_vec()));
    }
}

/// Reduce function: split values by source tag; emit all (a, b) combos as
/// `key TAB a-value TAB b-value`.
struct JoinReducer;

impl mapreduce::Reducer for JoinReducer {
    fn reduce(&self, key: &[u8], values: &mut dyn Iterator<Item = &[u8]>, out: &mut dyn FnMut(KV)) {
        let mut from_a: Vec<&[u8]> = Vec::new();
        let mut from_b: Vec<&[u8]> = Vec::new();
        let collected: Vec<&[u8]> = values.collect();
        for v in &collected {
            if let Some(rest) = v.strip_prefix(b"a:" as &[u8]) {
                from_a.push(rest);
            } else if let Some(rest) = v.strip_prefix(b"b:" as &[u8]) {
                from_b.push(rest);
            }
            // Untagged values are ignored (malformed input).
        }
        for a in &from_a {
            for b in &from_b {
                let mut combined = Vec::with_capacity(a.len() + 1 + b.len());
                combined.extend_from_slice(a);
                combined.push(b'\t');
                combined.extend_from_slice(b);
                out(KV::new(key.to_vec(), combined));
            }
        }
    }
}

/// The data join user functions. No combiner: combining would need the full
/// per-key value sets.
pub fn user_fns() -> UserFns {
    UserFns {
        mapper: Arc::new(JoinMapper),
        reducer: Arc::new(JoinReducer),
        combiner: None,
    }
}

/// In-memory reference implementation ("oracle") for verification: returns
/// the multiset of output lines `key \t a \t b`, sorted.
pub fn reference_join(a: &[(String, String)], b: &[(String, String)]) -> Vec<String> {
    let strip = |v: &str| -> String {
        v.strip_prefix("a:")
            .or_else(|| v.strip_prefix("b:"))
            .unwrap_or(v)
            .to_string()
    };
    let mut by_key_b: HashMap<&str, Vec<String>> = HashMap::new();
    for (k, v) in b {
        by_key_b.entry(k.as_str()).or_default().push(strip(v));
    }
    let mut out = Vec::new();
    for (k, va) in a {
        if let Some(vbs) = by_key_b.get(k.as_str()) {
            for vb in vbs {
                out.push(format!("{k}\t{}\t{vb}", strip(va)));
            }
        }
    }
    out.sort();
    out
}

/// The ghost profile used by the Figure 6 cluster-scale runs, calibrated so
/// that (a) map output ≈ join output volume matches the paper's 640 MB →
/// 6.3 GB ratio and (b) the job is computation-dominated as §4.3 reports
/// ("most of the time is spent on searching and matching keys in the map
/// phase, and on combining key-value pairs in the reduce phase").
///
/// With 2 GOps/s nodes, 17 kOps/B over a 64 MB split gives a ~570 s map
/// phase (10 concurrent mappers — the split count fixes the parallelism),
/// matching the order of the paper's ~650 s completion times and its
/// explanation that the curve is flat because "most of the time is spent on
/// searching and matching keys in the map phase". Reduce-side CPU is kept
/// light so even the single-reducer point stays within the paper's flat
/// band (its reduce cost is network-dominated).
pub fn fig6_profile() -> GhostProfile {
    GhostProfile {
        input_record_bytes: 32,
        map_output_ratio: 10.08, // 640 MB in -> 6.3 GB of tagged join pairs
        map_cpu_per_byte: 17_000.0,
        reduce_output_ratio: 1.0,
        reduce_cpu_per_byte: 4.0,
        // Join pairs carry unique composite keys; the job has no combiner,
        // so this ratio is inert — kept at 1.0 for documentation.
        combine_output_ratio: 1.0,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mapreduce::{Mapper, Reducer};

    fn kv(k: &str, v: &str) -> (String, String) {
        (k.into(), v.into())
    }

    #[test]
    fn reducer_emits_cross_product() {
        let r = JoinReducer;
        let values: Vec<&[u8]> = vec![b"a:x1", b"a:x2", b"b:y1", b"b:y2", b"b:y3"];
        let mut out = Vec::new();
        r.reduce(b"k", &mut values.into_iter(), &mut |kv| out.push(kv));
        assert_eq!(out.len(), 6);
        assert!(out.contains(&KV::new("k", "x1\ty2")));
        assert!(out.contains(&KV::new("k", "x2\ty3")));
    }

    #[test]
    fn keys_in_one_source_only_are_dropped() {
        let r = JoinReducer;
        let values: Vec<&[u8]> = vec![b"a:x1", b"a:x2"];
        let mut out = Vec::new();
        r.reduce(b"k", &mut values.into_iter(), &mut |kv| out.push(kv));
        assert!(out.is_empty());
    }

    #[test]
    fn mapper_is_identity() {
        let m = JoinMapper;
        let mut out = Vec::new();
        m.map(b"k", b"a:v", &mut |kv| out.push(kv));
        assert_eq!(out, vec![KV::new("k", "a:v")]);
    }

    #[test]
    fn oracle_matches_hand_computed_join() {
        let a = vec![kv("u1", "a:p"), kv("u2", "a:q"), kv("u1", "a:r")];
        let b = vec![kv("u1", "b:x"), kv("u3", "b:y"), kv("u1", "b:z")];
        let j = reference_join(&a, &b);
        assert_eq!(
            j,
            vec![
                "u1\tp\tx".to_string(),
                "u1\tp\tz".to_string(),
                "u1\tr\tx".to_string(),
                "u1\tr\tz".to_string(),
            ]
        );
    }

    #[test]
    fn fig6_profile_matches_paper_ratio() {
        let p = fig6_profile();
        let input = 2.0 * 320.0 * 1024.0 * 1024.0;
        let output = input * p.map_output_ratio * p.reduce_output_ratio;
        let gb = output / (1024.0 * 1024.0 * 1024.0);
        assert!(
            (6.0..6.6).contains(&gb),
            "join output {gb:.2} GB, paper says 6.3 GB"
        );
    }
}
