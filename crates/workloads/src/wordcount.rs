//! The classic wordcount application (with combiner), usable over any
//! input text; the canonical Hadoop example.

use std::sync::Arc;

use mapreduce::{GhostProfile, UserFns, KV};

struct WcMapper;

impl mapreduce::Mapper for WcMapper {
    fn map(&self, key: &[u8], value: &[u8], out: &mut dyn FnMut(KV)) {
        for part in [key, value] {
            for w in part
                .split(|b| !b.is_ascii_alphanumeric())
                .filter(|w| !w.is_empty())
            {
                out(KV::new(w.to_ascii_lowercase(), b"1".to_vec()));
            }
        }
    }
}

struct WcReducer;

impl mapreduce::Reducer for WcReducer {
    fn reduce(&self, key: &[u8], values: &mut dyn Iterator<Item = &[u8]>, out: &mut dyn FnMut(KV)) {
        let total: u64 = values
            .filter_map(|v| std::str::from_utf8(v).ok()?.parse::<u64>().ok())
            .sum();
        out(KV::new(key.to_vec(), total.to_string().into_bytes()));
    }
}

/// Wordcount user functions (the reducer doubles as the combiner, as in
/// Hadoop's example).
pub fn user_fns() -> UserFns {
    UserFns {
        mapper: Arc::new(WcMapper),
        reducer: Arc::new(WcReducer),
        combiner: Some(Arc::new(WcReducer)),
    }
}

/// A ghost profile for wordcount-like text analytics (heavy combining, tiny
/// output).
pub fn ghost_profile() -> GhostProfile {
    GhostProfile {
        input_record_bytes: 80,
        map_output_ratio: 0.05, // combiner squashes counts per split
        map_cpu_per_byte: 4.0,
        reduce_output_ratio: 0.5,
        reduce_cpu_per_byte: 1.0,
        // Tier-2 combining across a node's tasks collapses repeated words
        // again — text corpora share most of their vocabulary.
        combine_output_ratio: 0.15,
    }
}

/// Reference implementation for verification.
pub fn reference_counts(text: &str) -> std::collections::HashMap<String, u64> {
    let mut m = std::collections::HashMap::new();
    for w in text
        .split(|c: char| !c.is_ascii_alphanumeric())
        .filter(|w| !w.is_empty())
    {
        *m.entry(w.to_ascii_lowercase()).or_insert(0) += 1;
    }
    m
}

#[cfg(test)]
mod tests {
    use super::*;
    use mapreduce::{Mapper, Reducer};

    #[test]
    fn mapper_tokenizes_and_lowercases() {
        let m = WcMapper;
        let mut out = Vec::new();
        m.map(b"", b"Hello, hello WORLD-42!", &mut |kv| out.push(kv));
        let words: Vec<String> = out
            .iter()
            .map(|kv| String::from_utf8(kv.key.clone()).unwrap())
            .collect();
        assert_eq!(words, vec!["hello", "hello", "world", "42"]);
    }

    #[test]
    fn reducer_sums() {
        let r = WcReducer;
        let values: Vec<&[u8]> = vec![b"2", b"3", b"5"];
        let mut out = Vec::new();
        r.reduce(b"w", &mut values.into_iter(), &mut |kv| out.push(kv));
        assert_eq!(out, vec![KV::new("w", "10")]);
    }

    #[test]
    fn reference_counts_work() {
        let c = reference_counts("a b a");
        assert_eq!(c["a"], 2);
        assert_eq!(c["b"], 1);
    }
}
