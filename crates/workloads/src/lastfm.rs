//! Deterministic Last.fm-shaped dataset generator.
//!
//! The paper's §4.3 input is "two files of 320 MB each; the input files
//! contain key-value pairs extracted from the datasets made public by
//! Last.fm". Those dumps are user→artist listening records. We cannot ship
//! them, so this generator synthesizes the same *shape*: tab-separated
//! `user_NNNNNN \t <source-tag>:<artist, playcount>` lines with Zipf-like
//! key multiplicity and a configurable key overlap between the two files —
//! the two knobs that determine the join's output volume.
//!
//! Values are pre-tagged with their source file (`a:` / `b:`), which is how
//! Hadoop's contrib `datajoin` works too (its `TaggedMapOutput` embeds the
//! source tag in the map output value).

use dfs::{DfsPath, FileSystem, FsResult};
use fabric::{Payload, Proc};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Generator parameters.
#[derive(Debug, Clone)]
pub struct LastFmSpec {
    /// Number of records in file A.
    pub records_a: usize,
    /// Number of records in file B.
    pub records_b: usize,
    /// Number of distinct keys (users). Smaller = more duplicates = larger
    /// join output.
    pub distinct_keys: usize,
    /// Fraction of the key space shared by both files (0.0..=1.0).
    pub overlap: f64,
    /// RNG seed.
    pub seed: u64,
}

impl Default for LastFmSpec {
    fn default() -> Self {
        LastFmSpec {
            records_a: 4_000,
            records_b: 4_000,
            distinct_keys: 1_000,
            overlap: 0.5,
            seed: 0x001A_57F0,
        }
    }
}

/// A generated record `(key, tagged_value)`.
pub type Record = (String, String);

fn key_for(spec: &LastFmSpec, rng: &mut StdRng, side: u8) -> String {
    // Keys 0..shared are common to both files; each file also has a private
    // tail of the key space.
    let shared = ((spec.distinct_keys as f64) * spec.overlap) as usize;
    let private = spec.distinct_keys - shared;
    // Zipf-ish skew: square the uniform sample so low ids dominate.
    let u: f64 = rng.gen();
    let idx = ((u * u) * spec.distinct_keys as f64) as usize;
    if idx < shared {
        format!("user_{idx:06}")
    } else if private == 0 {
        format!("user_{:06}", idx % spec.distinct_keys)
    } else {
        // Private range, disjoint between the sides.
        let off = (idx - shared) % private;
        format!("user_{}_{off:06}", if side == 0 { "a" } else { "b" })
    }
}

/// Generate the records of file A (`tag == "a"`) or B (`tag == "b"`).
pub fn generate(spec: &LastFmSpec, side: u8) -> Vec<Record> {
    assert!(side < 2);
    assert!(spec.distinct_keys > 0);
    assert!((0.0..=1.0).contains(&spec.overlap));
    let mut rng = StdRng::seed_from_u64(spec.seed ^ (side as u64 + 1).wrapping_mul(0x9E37));
    let n = if side == 0 {
        spec.records_a
    } else {
        spec.records_b
    };
    let tag = if side == 0 { "a" } else { "b" };
    (0..n)
        .map(|_| {
            let key = key_for(spec, &mut rng, side);
            let artist = rng.gen_range(0..100_000u32);
            let plays = rng.gen_range(1..1000u32);
            (key, format!("{tag}:artist_{artist:05},{plays}"))
        })
        .collect()
}

/// Render records as `key TAB value` lines.
pub fn to_text(records: &[Record]) -> Vec<u8> {
    let mut out = Vec::new();
    for (k, v) in records {
        out.extend_from_slice(k.as_bytes());
        out.push(b'\t');
        out.extend_from_slice(v.as_bytes());
        out.push(b'\n');
    }
    out
}

/// Write both input files to a file system; returns their paths.
pub fn write_inputs(
    fs: &dyn FileSystem,
    p: &Proc,
    dir: &DfsPath,
    spec: &LastFmSpec,
) -> FsResult<(DfsPath, DfsPath)> {
    fs.mkdirs(p, dir)?;
    let a = dir.child("lastfm-a.txt")?;
    let b = dir.child("lastfm-b.txt")?;
    fs.write_file(p, &a, Payload::from_vec(to_text(&generate(spec, 0))))?;
    fs.write_file(p, &b, Payload::from_vec(to_text(&generate(spec, 1))))?;
    Ok((a, b))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generation_is_deterministic() {
        let spec = LastFmSpec::default();
        assert_eq!(generate(&spec, 0), generate(&spec, 0));
        assert_ne!(generate(&spec, 0), generate(&spec, 1));
        let other = LastFmSpec {
            seed: 99,
            ..LastFmSpec::default()
        };
        assert_ne!(generate(&spec, 0), generate(&other, 0));
    }

    #[test]
    fn sides_are_tagged_and_overlap() {
        let spec = LastFmSpec {
            records_a: 2000,
            records_b: 2000,
            distinct_keys: 100,
            overlap: 0.5,
            ..Default::default()
        };
        let a = generate(&spec, 0);
        let b = generate(&spec, 1);
        assert!(a.iter().all(|(_, v)| v.starts_with("a:")));
        assert!(b.iter().all(|(_, v)| v.starts_with("b:")));
        let ka: std::collections::HashSet<_> = a.iter().map(|(k, _)| k.clone()).collect();
        let kb: std::collections::HashSet<_> = b.iter().map(|(k, _)| k.clone()).collect();
        let both = ka.intersection(&kb).count();
        assert!(both > 10, "no overlapping keys generated ({both})");
        // Private keys exist on both sides.
        assert!(ka.iter().any(|k| k.starts_with("user_a_")));
        assert!(kb.iter().any(|k| k.starts_with("user_b_")));
    }

    #[test]
    fn text_lines_are_well_formed() {
        let spec = LastFmSpec {
            records_a: 50,
            ..Default::default()
        };
        let text = to_text(&generate(&spec, 0));
        let lines: Vec<&[u8]> = text
            .split(|&b| b == b'\n')
            .filter(|l| !l.is_empty())
            .collect();
        assert_eq!(lines.len(), 50);
        for l in lines {
            assert_eq!(l.iter().filter(|&&b| b == b'\t').count(), 1);
        }
    }
}
