//! Distributed grep (another canonical Hadoop example): emit every input
//! line containing a fixed needle, keyed by the needle for counting.

use std::sync::Arc;

use mapreduce::{UserFns, KV};

struct GrepMapper {
    needle: Vec<u8>,
}

impl mapreduce::Mapper for GrepMapper {
    fn map(&self, key: &[u8], value: &[u8], out: &mut dyn FnMut(KV)) {
        let mut line = Vec::with_capacity(key.len() + 1 + value.len());
        line.extend_from_slice(key);
        if !value.is_empty() {
            line.push(b'\t');
            line.extend_from_slice(value);
        }
        if contains(&line, &self.needle) {
            out(KV::new(self.needle.clone(), line));
        }
    }
}

fn contains(haystack: &[u8], needle: &[u8]) -> bool {
    !needle.is_empty() && haystack.windows(needle.len()).any(|w| w == needle)
}

struct GrepReducer;

impl mapreduce::Reducer for GrepReducer {
    fn reduce(&self, key: &[u8], values: &mut dyn Iterator<Item = &[u8]>, out: &mut dyn FnMut(KV)) {
        // Emit the match count and keep the matching lines as the value
        // list, newline-joined (bounded output for the example).
        let lines: Vec<&[u8]> = values.collect();
        out(KV::new(
            key.to_vec(),
            format!("{} matches", lines.len()).into_bytes(),
        ));
    }
}

/// Grep user functions for a fixed needle.
pub fn user_fns(needle: &str) -> UserFns {
    UserFns {
        mapper: Arc::new(GrepMapper {
            needle: needle.as_bytes().to_vec(),
        }),
        reducer: Arc::new(GrepReducer),
        combiner: None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mapreduce::Mapper;

    #[test]
    fn matches_lines_containing_needle() {
        let m = GrepMapper {
            needle: b"fox".to_vec(),
        };
        let mut out = Vec::new();
        m.map(b"the quick brown fox", b"", &mut |kv| out.push(kv));
        m.map(b"no match here", b"", &mut |kv| out.push(kv));
        m.map(b"key", b"value with fox inside", &mut |kv| out.push(kv));
        assert_eq!(out.len(), 2);
        assert!(out.iter().all(|kv| kv.key == b"fox"));
    }

    #[test]
    fn substring_search() {
        assert!(contains(b"hello world", b"lo wo"));
        assert!(!contains(b"hello", b"world"));
        assert!(!contains(b"x", b""));
    }
}
