//! End-to-end verification of the data join application: run it through the
//! full Map/Reduce framework on BSFS (single shared output file) and on
//! HDFS (per-reducer files) with real bytes, and compare both against the
//! in-memory reference join. This is the correctness backbone behind the
//! Figure 6 performance comparison.

use std::sync::Arc;

use blobseer::{BlobSeerConfig, Layout};
use bsfs::Bsfs;
use dfs::{DfsPath, FileSystem};
use fabric::{ClusterSpec, Fabric, NodeId, Proc};
use hdfs_sim::{HdfsConfig, HdfsLayout, HdfsSim};
use mapreduce::{JobConf, MrCluster, MrConfig, OutputMode};
use workloads::datajoin;
use workloads::lastfm::{self, LastFmSpec};

fn d(s: &str) -> DfsPath {
    DfsPath::new(s).unwrap()
}

fn spec() -> LastFmSpec {
    LastFmSpec {
        records_a: 800,
        records_b: 700,
        distinct_keys: 150,
        overlap: 0.6,
        seed: 42,
    }
}

/// Run data join via the framework; return the sorted output lines.
fn run_join(
    fx: &Fabric,
    fs: Arc<dyn FileSystem>,
    mode: OutputMode,
    reducers: u32,
) -> (Vec<String>, mapreduce::JobResult) {
    let mr = MrCluster::start(fx, fs.clone(), MrConfig::compact(fx.spec()));
    let fs2 = fs.clone();
    let mr2 = mr.clone();
    let driver = fx.spawn(NodeId(0), "driver", move |p: &Proc| {
        let (a, b) = lastfm::write_inputs(&*fs2, p, &d("/in"), &spec()).unwrap();
        let job = JobConf {
            name: "datajoin".into(),
            inputs: vec![a, b],
            output_dir: d("/out"),
            num_reducers: reducers,
            output_mode: mode,
            user: datajoin::user_fns(),
            ghost: None,
            shuffle: mapreduce::ShuffleTuning::default(),
        };
        let result = mr2.submit(job).wait(p);
        // Read all output text.
        let mut text = Vec::new();
        match mode {
            OutputMode::SharedAppendFile => {
                let data = fs2.read_file(p, &d("/out/result")).unwrap();
                text.extend_from_slice(data.bytes());
            }
            OutputMode::PerReducerFiles => {
                for st in fs2.list(p, &d("/out")).unwrap() {
                    if !st.is_dir {
                        text.extend_from_slice(fs2.read_file(p, &st.path).unwrap().bytes());
                    }
                }
            }
        }
        mr2.shutdown();
        (text, result)
    });
    fx.run();
    let (text, result) = driver.take().unwrap();
    let mut lines: Vec<String> = text
        .split(|&b| b == b'\n')
        .filter(|l| !l.is_empty())
        .map(|l| String::from_utf8(l.to_vec()).unwrap())
        .collect();
    lines.sort();
    (lines, result)
}

fn expected() -> Vec<String> {
    let a = lastfm::generate(&spec(), 0);
    let b = lastfm::generate(&spec(), 1);
    datajoin::reference_join(&a, &b)
}

#[test]
fn datajoin_on_bsfs_shared_append_matches_oracle() {
    let fx = Fabric::sim(ClusterSpec::tiny(10));
    let fs = Bsfs::deploy(
        &fx,
        BlobSeerConfig::test_small(4096),
        Layout::compact(fx.spec()),
    )
    .unwrap();
    let (lines, result) = run_join(&fx, Arc::new(fs), OutputMode::SharedAppendFile, 5);
    let want = expected();
    assert!(!want.is_empty(), "test spec must produce join output");
    assert_eq!(lines, want);
    // The paper's file-count claim: one single logical output file.
    assert_eq!(result.output_files, 1);
    assert!(result.maps >= 2, "two inputs -> at least two maps");
}

#[test]
fn datajoin_on_hdfs_per_reducer_matches_oracle() {
    let fx = Fabric::sim(ClusterSpec::tiny(10));
    let fs = HdfsSim::deploy(
        &fx,
        HdfsConfig::test_small(4096),
        HdfsLayout::compact(fx.spec()),
    );
    let (lines, result) = run_join(&fx, Arc::new(fs), OutputMode::PerReducerFiles, 5);
    assert_eq!(lines, expected());
    // Original Hadoop: one file per reducer.
    assert_eq!(result.output_files, 5);
}

#[test]
fn both_modes_produce_identical_results() {
    // The central correctness claim behind Figure 6's apples-to-apples
    // comparison: the modified framework computes the same join.
    let fx1 = Fabric::sim(ClusterSpec::tiny(10));
    let bsfs = Bsfs::deploy(
        &fx1,
        BlobSeerConfig::test_small(2048),
        Layout::compact(fx1.spec()),
    )
    .unwrap();
    let (shared, _) = run_join(&fx1, Arc::new(bsfs), OutputMode::SharedAppendFile, 7);

    let fx2 = Fabric::sim(ClusterSpec::tiny(10));
    let hdfs = HdfsSim::deploy(
        &fx2,
        HdfsConfig::test_small(2048),
        HdfsLayout::compact(fx2.spec()),
    );
    let (per_file, _) = run_join(&fx2, Arc::new(hdfs), OutputMode::PerReducerFiles, 7);
    assert_eq!(shared, per_file);
}
