//! Distributed versioned segment trees — BlobSeer's metadata scheme.
//!
//! Each version `v` of a BLOB is described by a binary segment tree over
//! *page-index* space `[0, 2^k)`. Nodes are identified by the deterministic
//! triple `(version, page_lo, page_hi)`; inner nodes hold references to their
//! two children (which may belong to *older* versions — subtree sharing is
//! what makes snapshots cheap), leaves describe one page (its id, byte
//! length and replica providers).
//!
//! A writer for version `v` creates exactly the nodes on the root-to-leaf
//! paths covering its own pages and *references* everything else. Because
//! node ids are deterministic and the version manager hands out the write
//! descriptors of all previously-assigned versions, a writer can link to the
//! nodes of a concurrent writer that has not finished writing them yet —
//! no reads, no locks, full write parallelism (paper §3.1.2).
//!
//! Trees live over page indices rather than byte offsets so appends of
//! arbitrary byte sizes (short tail pages) never require read-modify-write
//! of a neighbour's metadata. Byte navigation works because every child
//! reference carries the byte length of its subtree.
//!
//! All functions here are pure: I/O (the metadata-provider DHT) is abstracted
//! as a `fetch` closure, so the same code is exercised by in-memory unit
//! tests and by the costed distributed path in [`crate::client`].
//!
//! This module also hosts [`BlobState`], the per-BLOB control-plane state
//! machine that is the lock unit of the sharded
//! [`crate::version_manager::VersionManager`]: like the tree planners above
//! it performs no I/O — the version manager wraps one `Mutex<BlobState>` per
//! BLOB and keeps RPC charging, DHT traffic and gate waits outside the lock.

use std::collections::{BTreeSet, HashMap, VecDeque};
use std::sync::Arc;

use fabric::sync::Gate;
use fabric::{NodeId, SimTime};

use crate::desc_index::DescIndex;
use crate::error::{BlobError, BlobResult};
use crate::types::{tree_span, BlobId, PageId, UpdateKind, Version, WriteDesc, WriteKind};

/// Deterministic identity of a metadata tree node.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct NodeKey {
    pub blob: BlobId,
    pub version: Version,
    pub page_lo: u64,
    pub page_hi: u64,
}

impl NodeKey {
    pub fn is_leaf(&self) -> bool {
        self.page_hi - self.page_lo == 1
    }

    /// Durable-store key: the `n/` namespace tag followed by the four id
    /// fields big-endian, so a prefix scan enumerates nodes in a stable
    /// (blob, version, range) order.
    pub fn encode(&self) -> [u8; NODE_KEY_BYTES] {
        let mut k = [0u8; NODE_KEY_BYTES];
        k[..2].copy_from_slice(NODE_KEY_PREFIX);
        k[2..10].copy_from_slice(&self.blob.0.to_be_bytes());
        k[10..18].copy_from_slice(&self.version.to_be_bytes());
        k[18..26].copy_from_slice(&self.page_lo.to_be_bytes());
        k[26..].copy_from_slice(&self.page_hi.to_be_bytes());
        k
    }

    /// Inverse of [`Self::encode`]; `None` on any structural mismatch.
    pub fn decode(k: &[u8]) -> Option<NodeKey> {
        if k.len() != NODE_KEY_BYTES || &k[..2] != NODE_KEY_PREFIX {
            return None;
        }
        // analyze: allow(panic-index): every range is within 2..34 and the
        // length was checked against NODE_KEY_BYTES above
        let f = |r: std::ops::Range<usize>| u64::from_be_bytes(k[r].try_into().unwrap()); // analyze: allow(panic-unwrap): 8-byte range into [u8; 8] is infallible
        Some(NodeKey {
            blob: BlobId(f(2..10)),
            version: f(10..18),
            page_lo: f(18..26),
            page_hi: f(26..34),
        })
    }
}

/// Key namespace for metadata tree nodes inside a server's durable store.
pub const NODE_KEY_PREFIX: &[u8] = b"n/";
/// Encoded [`NodeKey`] length: prefix + 4×u64.
pub const NODE_KEY_BYTES: usize = 34;

/// Reference from an inner node to a child subtree (possibly of an older
/// version).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ChildRef {
    pub version: Version,
    pub page_lo: u64,
    pub page_hi: u64,
    /// Bytes held by this subtree (clamped to the BLOB length of the
    /// referencing version) — this is what makes byte-offset navigation
    /// possible without consulting the descriptor history again.
    pub byte_len: u64,
}

/// Leaf payload: where one page lives.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PageRef {
    pub id: PageId,
    /// Bytes stored in this page (== page size except for tail pages).
    pub byte_len: u64,
    /// Replica holders, primary first.
    pub providers: Vec<NodeId>,
}

/// Content of a metadata node.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum NodeBody {
    Inner {
        left: Option<ChildRef>,
        right: Option<ChildRef>,
    },
    Leaf(PageRef),
}

impl NodeBody {
    /// Approximate wire size, used to charge the fabric for metadata
    /// messages.
    pub fn encoded_size(&self) -> u64 {
        match self {
            NodeBody::Inner { .. } => 96,
            NodeBody::Leaf(p) => 48 + 8 * p.providers.len() as u64,
        }
    }

    /// Durable-store value: a tag byte (0 = inner, 1 = leaf) followed by
    /// the variant's fields in fixed-width little-endian.
    pub fn encode(&self) -> Vec<u8> {
        fn child(out: &mut Vec<u8>, c: &Option<ChildRef>) {
            match c {
                None => out.push(0),
                Some(c) => {
                    out.push(1);
                    for v in [c.version, c.page_lo, c.page_hi, c.byte_len] {
                        out.extend_from_slice(&v.to_le_bytes());
                    }
                }
            }
        }
        let mut out = Vec::new();
        match self {
            NodeBody::Inner { left, right } => {
                out.push(0);
                child(&mut out, left);
                child(&mut out, right);
            }
            NodeBody::Leaf(p) => {
                out.push(1);
                out.extend_from_slice(&p.id.0.to_le_bytes());
                out.extend_from_slice(&p.id.1.to_le_bytes());
                out.extend_from_slice(&p.byte_len.to_le_bytes());
                out.extend_from_slice(&(p.providers.len() as u32).to_le_bytes());
                for n in &p.providers {
                    out.extend_from_slice(&n.0.to_le_bytes());
                }
            }
        }
        out
    }

    /// Inverse of [`Self::encode`]; `None` on any structural mismatch
    /// (wrong tag, truncation, trailing bytes).
    pub fn decode(v: &[u8]) -> Option<NodeBody> {
        fn u64_at(v: &[u8], at: &mut usize) -> Option<u64> {
            // analyze: allow(panic-unwrap): get() returned an exactly-8-byte slice
            let out = u64::from_le_bytes(v.get(*at..*at + 8)?.try_into().unwrap());
            *at += 8;
            Some(out)
        }
        fn child(v: &[u8], at: &mut usize) -> Option<Option<ChildRef>> {
            let tag = *v.get(*at)?;
            *at += 1;
            match tag {
                0 => Some(None),
                1 => Some(Some(ChildRef {
                    version: u64_at(v, at)?,
                    page_lo: u64_at(v, at)?,
                    page_hi: u64_at(v, at)?,
                    byte_len: u64_at(v, at)?,
                })),
                _ => None,
            }
        }
        let mut at = 1;
        let body = match *v.first()? {
            0 => NodeBody::Inner {
                left: child(v, &mut at)?,
                right: child(v, &mut at)?,
            },
            1 => {
                let id = PageId(u64_at(v, &mut at)?, u64_at(v, &mut at)?);
                let byte_len = u64_at(v, &mut at)?;
                // analyze: allow(panic-unwrap): get() returned an exactly-4-byte slice
                let count = u32::from_le_bytes(v.get(at..at + 4)?.try_into().unwrap());
                at += 4;
                let mut providers = Vec::with_capacity(count as usize);
                for _ in 0..count {
                    providers.push(NodeId(u32::from_le_bytes(
                        // analyze: allow(panic-unwrap): exactly-4-byte slice from get()
                        v.get(at..at + 4)?.try_into().unwrap(),
                    )));
                    at += 4;
                }
                NodeBody::Leaf(PageRef {
                    id,
                    byte_len,
                    providers,
                })
            }
            _ => return None,
        };
        (at == v.len()).then_some(body)
    }
}

/// A leaf reached by a read, positioned in the BLOB's byte space.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LeafHit {
    pub page_index: u64,
    /// Byte offset of the page's first byte within the BLOB.
    pub blob_byte_off: u64,
    pub page: PageRef,
}

/// Compute every metadata node version `new.version` must publish, given an
/// immutable descriptor-index snapshot that *includes* the new version
/// (`ix.version() == new.version` — the version manager hands exactly this
/// snapshot out at `assign` time), the new descriptor, and the manifest of
/// freshly-written pages (`manifest[i]` describes page `new.page_lo + i`).
///
/// Every subtree query (`byte_len_of_range`, `latest_toucher`) is O(log)
/// against the index, so planning costs O((pages written + tree depth)·log)
/// regardless of how many versions precede this one.
///
/// Nodes are returned leaves-first so that writing them in order never
/// publishes a parent before its children.
pub fn plan_write(
    blob: BlobId,
    ix: &DescIndex,
    new: &WriteDesc,
    manifest: &[PageRef],
) -> Vec<(NodeKey, NodeBody)> {
    assert_eq!(
        manifest.len() as u64,
        new.page_count(),
        "manifest must describe exactly the written pages"
    );
    assert_eq!(
        ix.version(),
        new.version,
        "the index snapshot must be pinned at the new version"
    );
    let span = tree_span(new.total_pages);
    let mut out = Vec::new();
    build_node(&mut out, blob, ix, new, manifest, 0, span);
    out
}

fn build_node(
    out: &mut Vec<(NodeKey, NodeBody)>,
    blob: BlobId,
    ix: &DescIndex,
    new: &WriteDesc,
    manifest: &[PageRef],
    lo: u64,
    hi: u64,
) {
    debug_assert!(
        new.touches_range(lo, hi),
        "only nodes on the write path are built"
    );
    let key = NodeKey {
        blob,
        version: new.version,
        page_lo: lo,
        page_hi: hi,
    };
    if hi - lo == 1 {
        let idx = (lo - new.page_lo) as usize;
        // analyze: allow(panic-index): plan_write validated the manifest
        // covers new.page_lo..page_hi, and build_node recurses within it
        out.push((key, NodeBody::Leaf(manifest[idx].clone())));
        return;
    }
    let mid = lo + (hi - lo) / 2;
    let left = child_ref(out, blob, ix, new, manifest, lo, mid);
    let right = child_ref(out, blob, ix, new, manifest, mid, hi);
    out.push((key, NodeBody::Inner { left, right }));
}

fn child_ref(
    out: &mut Vec<(NodeKey, NodeBody)>,
    blob: BlobId,
    ix: &DescIndex,
    new: &WriteDesc,
    manifest: &[PageRef],
    lo: u64,
    hi: u64,
) -> Option<ChildRef> {
    let byte_len = ix
        .byte_len_of_range(lo, hi)
        // analyze: allow(panic-unwrap): planner precondition — plan_write
        // extended the index snapshot to the new version before building
        .expect("index snapshot covers the new version");
    if new.touches_range(lo, hi) {
        build_node(out, blob, ix, new, manifest, lo, hi);
        Some(ChildRef {
            version: new.version,
            page_lo: lo,
            page_hi: hi,
            byte_len,
        })
    } else if lo >= new.total_pages {
        // Slots beyond the end of the BLOB.
        None
    } else {
        // Untouched, existing subtree: reference the newest version whose
        // write path crosses it. Its node is guaranteed to exist by the
        // time this version publishes (see crate::version_manager).
        let version = ix
            .latest_toucher(lo, hi)
            // analyze: allow(panic-unwrap): planner invariant — every page
            // below total_pages was written by some version in the index
            .expect("pages below total_pages have a writer");
        Some(ChildRef {
            version,
            page_lo: lo,
            page_hi: hi,
            byte_len,
        })
    }
}

/// Snapshot facts needed to start a read: produced by the version manager.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SnapshotInfo {
    pub version: Version,
    pub total_pages: u64,
    pub total_bytes: u64,
    pub page_size: u64,
}

impl SnapshotInfo {
    /// Root node key for this snapshot (`None` for the empty version 0).
    pub fn root(&self, blob: BlobId) -> Option<NodeKey> {
        if self.version == 0 {
            return None;
        }
        Some(NodeKey {
            blob,
            version: self.version,
            page_lo: 0,
            page_hi: tree_span(self.total_pages),
        })
    }
}

/// Everything the version manager retains about one assigned-but-unpublished
/// version of a BLOB.
pub(crate) struct PendingWrite {
    /// The writer's page manifest, shared (not copied) for force-complete.
    pub manifest: Arc<Vec<PageRef>>,
    /// Descriptor-index snapshot pinned at exactly this version — an O(1)
    /// clone of the persistent tree, so force-complete can rebuild the
    /// writer's exact metadata plan without copying any history.
    pub index: DescIndex,
    pub assigned_at: SimTime,
    pub gate: Gate,
}

/// Per-BLOB control-plane state: the **lock unit** of the sharded version
/// manager. One `Mutex<BlobState>` guards exactly one BLOB, so operations on
/// distinct BLOBs never contend; everything here is a pure state machine
/// (no I/O, no RPC charging), which is what lets the version manager keep
/// its critical sections down to the version-counter bump and state splice.
pub(crate) struct BlobState {
    /// Descriptors of every *assigned* version, dense: `descs[v-1]`.
    pub descs: Vec<WriteDesc>,
    /// Incrementally-maintained descriptor index over `descs` — answers all
    /// latest-version queries in O(log) and snapshots in O(1).
    pub index: DescIndex,
    /// Index snapshot pinned at the latest *published* version — what
    /// `VersionManager::sync_index` ships to readers, so their locality
    /// queries never observe assigned-but-unpublished versions.
    pub published_index: DescIndex,
    /// Assigned but not yet published versions (kept for force-complete).
    pub pending: HashMap<Version, PendingWrite>,
    /// Versions in assignment order with their assignment times. Assignment
    /// times are monotone, so the front is always the oldest deadline: the
    /// common no-expiry reap check peeks one entry instead of scanning the
    /// whole pending map. Entries whose version already committed or
    /// published are discarded lazily.
    reap_queue: VecDeque<(SimTime, Version)>,
    /// Committed but not yet published (publication is strictly in order).
    pub committed: BTreeSet<Version>,
    pub published: Version,
}

impl BlobState {
    pub fn new(page_size: u64) -> Self {
        BlobState {
            descs: Vec::new(),
            index: DescIndex::new(page_size),
            published_index: DescIndex::new(page_size),
            pending: HashMap::new(),
            reap_queue: VecDeque::new(),
            committed: BTreeSet::new(),
            published: 0,
        }
    }

    pub fn page_size(&self) -> u64 {
        self.index.page_size()
    }

    /// Highest assigned version (0 when nothing was ever assigned).
    pub fn assigned(&self) -> Version {
        self.descs.len() as Version
    }

    /// Compute the descriptor the next update would get. Pure read — the
    /// caller splices it in with [`Self::admit`] under the same lock hold.
    /// `k_pages` (= manifest length) is validated lock-free by the caller
    /// against the immutable page size.
    pub fn build_descriptor(
        &self,
        kind: UpdateKind,
        nbytes: u64,
        k_pages: u64,
    ) -> BlobResult<WriteDesc> {
        let ps = self.page_size();
        let (cur_pages, cur_bytes) = self
            .descs
            .last()
            .map(|d| (d.total_pages, d.total_bytes))
            .unwrap_or((0, 0));
        let version = self.assigned() + 1;
        match kind {
            UpdateKind::Append => Ok(WriteDesc {
                version,
                kind: WriteKind::Append,
                page_lo: cur_pages,
                page_hi: cur_pages + k_pages,
                byte_lo: cur_bytes,
                byte_hi: cur_bytes + nbytes,
                total_pages: cur_pages + k_pages,
                total_bytes: cur_bytes + nbytes,
            }),
            UpdateKind::WriteAt { offset } => {
                // `self.index` is still at version - 1 here, so these are
                // O(log) lookups against the pre-update snapshot.
                let page_lo = self.index.page_at_boundary(offset).ok_or_else(|| {
                    BlobError::UnalignedWrite {
                        detail: format!("offset {offset} is not an existing page boundary"),
                    }
                })?;
                if offset + nbytes >= cur_bytes {
                    // Tail-replacing / extending write.
                    Ok(WriteDesc {
                        version,
                        kind: WriteKind::Write,
                        page_lo,
                        page_hi: page_lo + k_pages,
                        byte_lo: offset,
                        byte_hi: offset + nbytes,
                        total_pages: page_lo + k_pages,
                        total_bytes: offset + nbytes,
                    })
                } else {
                    // Interior overwrite: must replace whole existing pages
                    // with an identical layout.
                    if !nbytes.is_multiple_of(ps) {
                        return Err(BlobError::UnalignedWrite {
                            detail: format!(
                                "interior overwrite of {nbytes} B is not a multiple of the {ps} B page size"
                            ),
                        });
                    }
                    let end_page = page_lo + k_pages;
                    if self.index.byte_offset_of_page(end_page) != Some(offset + nbytes) {
                        return Err(BlobError::UnalignedWrite {
                            detail: format!(
                                "overwrite end {} does not coincide with page boundary {end_page}",
                                offset + nbytes
                            ),
                        });
                    }
                    Ok(WriteDesc {
                        version,
                        kind: WriteKind::Write,
                        page_lo,
                        page_hi: end_page,
                        byte_lo: offset,
                        byte_hi: offset + nbytes,
                        total_pages: cur_pages,
                        total_bytes: cur_bytes,
                    })
                }
            }
        }
    }

    /// Splice an update built by [`Self::build_descriptor`] into the state:
    /// bump the version counter, fold the descriptor into the index, and
    /// park the pending write. Returns the index snapshot pinned at the new
    /// version (an O(1) `Arc` share).
    pub fn admit(
        &mut self,
        desc: WriteDesc,
        manifest: Arc<Vec<PageRef>>,
        assigned_at: SimTime,
        gate: Gate,
    ) -> DescIndex {
        debug_assert_eq!(desc.version, self.assigned() + 1);
        self.descs.push(desc);
        self.index.apply(&desc);
        let index = self.index.clone();
        self.reap_queue.push_back((assigned_at, desc.version));
        self.pending.insert(
            desc.version,
            PendingWrite {
                manifest,
                index: index.clone(),
                assigned_at,
                gate,
            },
        );
        index
    }

    /// Mark `version` committed and publish every version that became
    /// publishable (publication is strictly in order). Returns the gates of
    /// newly-published versions so the caller can set them outside the lock.
    pub fn commit(&mut self, version: Version) -> Vec<Gate> {
        let mut gates = Vec::new();
        if version <= self.published {
            return gates;
        }
        self.committed.insert(version);
        while self.committed.remove(&(self.published + 1)) {
            self.published += 1;
            if let Some(pw) = self.pending.remove(&self.published) {
                gates.push(pw.gate);
                // The pending write's snapshot is pinned at exactly the
                // version that just published — an O(1) hand-off.
                self.published_index = pw.index;
            }
        }
        gates
    }

    /// Pop every version whose write timeout has expired, oldest first.
    /// O(1) when nothing expired (the common case): assignment times are
    /// monotone, so only the queue front is examined. Entries already
    /// committed or published are dropped lazily — they can never need
    /// reaping again.
    pub fn take_expired(&mut self, now: SimTime, timeout: u64) -> Vec<Version> {
        let mut out = Vec::new();
        while let Some(&(at, v)) = self.reap_queue.front() {
            if !self.pending.contains_key(&v) || self.committed.contains(&v) {
                self.reap_queue.pop_front();
                continue;
            }
            if now.saturating_sub(at) > timeout {
                self.reap_queue.pop_front();
                out.push(v);
            } else {
                break;
            }
        }
        out
    }

    /// Put versions taken by [`Self::take_expired`] back at the queue front
    /// (in order), so a failed force-complete is retried on the next VM
    /// interaction instead of being silently dropped. Versions that landed
    /// (no longer pending) are skipped.
    pub fn requeue_expired(&mut self, versions: &[Version]) {
        for &v in versions.iter().rev() {
            if let Some(pw) = self.pending.get(&v) {
                self.reap_queue.push_front((pw.assigned_at, v));
            }
        }
    }
}

/// Batch node resolver used by [`collect_leaves`]: answers `keys[i]` at
/// `out[i]` (`None` = node not stored). The DHT-backed implementation is
/// [`crate::dht::MetaDht::get_batch`].
pub type BatchFetch<'a> = dyn FnMut(&[NodeKey]) -> BlobResult<Vec<Option<NodeBody>>> + 'a;

/// Walk the tree of `snap` and collect the leaves overlapping the byte range
/// `[byte_lo, byte_hi)`, left to right.
///
/// The descent is breadth-first: each tree level's surviving children are
/// resolved through a single `fetch` call, so a DHT-backed fetch (see
/// [`crate::dht::MetaDht::get_batch`]) issues one RPC per (level, server)
/// pair instead of one per node. A missing node is a hard error — it means
/// the version was not published or metadata was lost.
pub fn collect_leaves(
    fetch: &mut BatchFetch<'_>,
    blob: BlobId,
    snap: &SnapshotInfo,
    byte_lo: u64,
    byte_hi: u64,
) -> BlobResult<Vec<LeafHit>> {
    let mut hits = Vec::new();
    if byte_lo >= byte_hi {
        return Ok(hits);
    }
    if byte_hi > snap.total_bytes {
        return Err(BlobError::OutOfBounds {
            offset: byte_lo,
            len: byte_hi - byte_lo,
            size: snap.total_bytes,
        });
    }
    let Some(root) = snap.root(blob) else {
        return Err(BlobError::OutOfBounds {
            offset: byte_lo,
            len: byte_hi - byte_lo,
            size: 0,
        });
    };
    // (key, byte offset of the node's first byte in the BLOB), kept in
    // left-to-right order; leaves all sit at the bottom level, so hits come
    // out ordered.
    let mut frontier: Vec<(NodeKey, u64)> = vec![(root, 0)];
    while !frontier.is_empty() {
        let keys: Vec<NodeKey> = frontier.iter().map(|(k, _)| *k).collect();
        let bodies = fetch(&keys)?;
        // Hard invariant (not debug-only): a short answer would silently
        // truncate the zip below and drop whole subtrees from the read.
        assert_eq!(bodies.len(), keys.len(), "fetch must answer every key");
        let mut next = Vec::new();
        for ((key, node_byte_start), body) in frontier.into_iter().zip(bodies) {
            let body = body.ok_or(BlobError::MetadataMissing {
                blob: key.blob,
                version: key.version,
                page_lo: key.page_lo,
                page_hi: key.page_hi,
            })?;
            match body {
                NodeBody::Leaf(page) => {
                    debug_assert!(key.is_leaf());
                    hits.push(LeafHit {
                        page_index: key.page_lo,
                        blob_byte_off: node_byte_start,
                        page,
                    });
                }
                NodeBody::Inner { left, right } => {
                    let left_len = left.as_ref().map_or(0, |c| c.byte_len);
                    for (child, start) in
                        [(left, node_byte_start), (right, node_byte_start + left_len)]
                    {
                        let Some(c) = child else { continue };
                        let (a, b) = (start, start + c.byte_len);
                        if a < byte_hi && byte_lo < b {
                            next.push((
                                NodeKey {
                                    blob: key.blob,
                                    version: c.version,
                                    page_lo: c.page_lo,
                                    page_hi: c.page_hi,
                                },
                                a,
                            ));
                        }
                    }
                }
            }
        }
        frontier = next;
    }
    Ok(hits)
}

#[cfg(test)]
mod tests {
    use super::*;

    const PS: u64 = 100;

    #[test]
    fn node_codec_roundtrips() {
        let keys = [
            NodeKey {
                blob: BlobId(7),
                version: 3,
                page_lo: 0,
                page_hi: 8,
            },
            NodeKey {
                blob: BlobId(u64::MAX),
                version: u64::MAX,
                page_lo: u64::MAX - 1,
                page_hi: u64::MAX,
            },
        ];
        for k in keys {
            let enc = k.encode();
            assert!(enc.starts_with(NODE_KEY_PREFIX));
            assert_eq!(NodeKey::decode(&enc), Some(k));
        }
        assert_eq!(NodeKey::decode(b"n/short"), None);
        assert_eq!(NodeKey::decode(&[0u8; NODE_KEY_BYTES]), None, "bad prefix");

        let bodies = [
            NodeBody::Inner {
                left: None,
                right: None,
            },
            NodeBody::Inner {
                left: Some(ChildRef {
                    version: 2,
                    page_lo: 0,
                    page_hi: 4,
                    byte_len: 400,
                }),
                right: Some(ChildRef {
                    version: 3,
                    page_lo: 4,
                    page_hi: 8,
                    byte_len: 137,
                }),
            },
            NodeBody::Leaf(PageRef {
                id: PageId(0xAB, 0xCD),
                byte_len: 64,
                providers: vec![],
            }),
            NodeBody::Leaf(PageRef {
                id: PageId(1, 2),
                byte_len: 100,
                providers: vec![NodeId(5), NodeId(9), NodeId(200)],
            }),
        ];
        for b in bodies {
            assert_eq!(NodeBody::decode(&b.encode()), Some(b));
        }
        assert_eq!(NodeBody::decode(&[]), None);
        assert_eq!(NodeBody::decode(&[9]), None, "unknown tag");
        let mut trailing = bodies_last_encode();
        trailing.push(0);
        assert_eq!(NodeBody::decode(&trailing), None, "trailing bytes");
        fn bodies_last_encode() -> Vec<u8> {
            NodeBody::Inner {
                left: None,
                right: None,
            }
            .encode()
        }
    }

    /// In-memory harness that plays version manager + DHT + providers for
    /// the pure metadata logic: appends real byte vectors, keeps reference
    /// snapshots, and checks every read against them.
    struct Harness {
        blob: BlobId,
        descs: Vec<WriteDesc>,
        ix: DescIndex,
        nodes: HashMap<NodeKey, NodeBody>,
        pages: HashMap<PageId, Vec<u8>>,
        snapshots: Vec<Vec<u8>>, // snapshots[v] = content at version v
        next_page: u64,
    }

    impl Harness {
        fn new() -> Self {
            Harness {
                blob: BlobId(7),
                descs: Vec::new(),
                ix: DescIndex::new(PS),
                nodes: HashMap::new(),
                pages: HashMap::new(),
                snapshots: vec![Vec::new()],
                next_page: 0,
            }
        }

        fn total(&self) -> (u64, u64) {
            self.descs
                .last()
                .map(|d| (d.total_pages, d.total_bytes))
                .unwrap_or((0, 0))
        }

        fn store_pages(&mut self, data: &[u8]) -> Vec<PageRef> {
            data.chunks(PS as usize)
                .map(|chunk| {
                    let id = PageId(0xABCD, self.next_page);
                    self.next_page += 1;
                    self.pages.insert(id, chunk.to_vec());
                    PageRef {
                        id,
                        byte_len: chunk.len() as u64,
                        providers: vec![NodeId(0)],
                    }
                })
                .collect()
        }

        fn append(&mut self, data: &[u8]) -> Version {
            assert!(!data.is_empty());
            let (tp, tb) = self.total();
            let manifest = self.store_pages(data);
            let v = self.descs.len() as Version + 1;
            let desc = WriteDesc {
                version: v,
                kind: WriteKind::Append,
                page_lo: tp,
                page_hi: tp + manifest.len() as u64,
                byte_lo: tb,
                byte_hi: tb + data.len() as u64,
                total_pages: tp + manifest.len() as u64,
                total_bytes: tb + data.len() as u64,
            };
            self.ix.apply(&desc);
            let nodes = plan_write(self.blob, &self.ix, &desc, &manifest);
            for (k, b) in nodes {
                assert!(
                    self.nodes.insert(k, b).is_none(),
                    "node {k:?} written twice"
                );
            }
            self.descs.push(desc);
            let mut snap = self.snapshots.last().unwrap().clone();
            snap.extend_from_slice(data);
            self.snapshots.push(snap);
            v
        }

        /// Overwrite whole pages starting at page `page_lo`.
        fn overwrite(&mut self, page_lo: u64, data: &[u8]) -> Version {
            let (tp, tb) = self.total();
            let byte_lo = page_lo * PS; // valid only below the short tail, asserted below
            assert!(
                byte_lo + data.len() as u64 <= tb,
                "test uses interior overwrites"
            );
            assert_eq!(data.len() as u64 % PS, 0, "interior overwrite keeps layout");
            let manifest = self.store_pages(data);
            let v = self.descs.len() as Version + 1;
            let desc = WriteDesc {
                version: v,
                kind: WriteKind::Write,
                page_lo,
                page_hi: page_lo + manifest.len() as u64,
                byte_lo,
                byte_hi: byte_lo + data.len() as u64,
                total_pages: tp,
                total_bytes: tb,
            };
            self.ix.apply(&desc);
            let nodes = plan_write(self.blob, &self.ix, &desc, &manifest);
            for (k, b) in nodes {
                self.nodes.insert(k, b);
            }
            self.descs.push(desc);
            let mut snap = self.snapshots.last().unwrap().clone();
            snap[byte_lo as usize..byte_lo as usize + data.len()].copy_from_slice(data);
            self.snapshots.push(snap);
            v
        }

        fn read(&self, version: Version, off: u64, len: u64) -> Vec<u8> {
            let d = self
                .descs
                .iter()
                .rev()
                .find(|d| d.version <= version)
                .expect("version exists");
            let snap = SnapshotInfo {
                version: d.version,
                total_pages: d.total_pages,
                total_bytes: d.total_bytes,
                page_size: PS,
            };
            let mut fetch =
                |keys: &[NodeKey]| Ok(keys.iter().map(|k| self.nodes.get(k).cloned()).collect());
            let hits = collect_leaves(&mut fetch, self.blob, &snap, off, off + len).unwrap();
            let mut out = Vec::new();
            for h in &hits {
                let page = &self.pages[&h.page.id];
                let a = off.max(h.blob_byte_off);
                let b = (off + len).min(h.blob_byte_off + h.page.byte_len);
                out.extend_from_slice(
                    &page[(a - h.blob_byte_off) as usize..(b - h.blob_byte_off) as usize],
                );
            }
            out
        }

        fn check_all_versions(&self) {
            for (v, want) in self.snapshots.iter().enumerate().skip(1) {
                let got = self.read(v as Version, 0, want.len() as u64);
                assert_eq!(&got, want, "full read of version {v} diverged");
            }
        }
    }

    fn pattern(len: usize, tag: u8) -> Vec<u8> {
        (0..len).map(|i| tag.wrapping_add(i as u8)).collect()
    }

    #[test]
    fn single_append_roundtrip() {
        let mut h = Harness::new();
        h.append(&pattern(250, 1)); // 3 pages, short tail
        h.check_all_versions();
        assert_eq!(h.read(1, 150, 60), pattern(250, 1)[150..210]);
    }

    #[test]
    fn appends_share_subtrees() {
        let mut h = Harness::new();
        h.append(&pattern(300, 1));
        let nodes_after_v1 = h.nodes.len();
        h.append(&pattern(100, 50));
        // v2 adds one page: one leaf plus the path to the (possibly grown)
        // root — not a whole new tree.
        let added = h.nodes.len() - nodes_after_v1;
        assert!(added <= 3, "expected a short path, got {added} nodes");
        h.check_all_versions();
    }

    #[test]
    fn tree_growth_references_old_roots() {
        let mut h = Harness::new();
        h.append(&pattern(100, 1)); // 1 page, span 1
        h.append(&pattern(100, 2)); // span 2
        h.append(&pattern(100, 3)); // span 4
        h.append(&pattern(100, 4));
        h.append(&pattern(100, 5)); // span 8
        h.check_all_versions();
        // Old snapshots still fully readable mid-history.
        assert_eq!(h.read(2, 0, 200), h.snapshots[2]);
    }

    #[test]
    fn short_tail_pages_then_more_appends() {
        let mut h = Harness::new();
        h.append(&pattern(130, 1)); // pages: 100 + 30 (short, interior after next append)
        h.append(&pattern(70, 9)); // 1 short page
        h.append(&pattern(250, 17)); // 3 pages
        h.check_all_versions();
        // Cross-append range read spanning the short pages.
        let want = &h.snapshots[3][90..260];
        assert_eq!(h.read(3, 90, 170), want);
    }

    #[test]
    fn overwrite_creates_new_snapshot_and_preserves_old() {
        let mut h = Harness::new();
        h.append(&pattern(400, 1)); // 4 full pages
        h.overwrite(1, &pattern(200, 99)); // replace pages 1..3
        h.check_all_versions();
        assert_ne!(h.snapshots[1], h.snapshots[2]);
        assert_eq!(h.read(1, 0, 400), h.snapshots[1]); // versioning isolation
    }

    #[test]
    fn concurrent_appenders_can_link_to_pending_versions() {
        // Simulates two writers A (v1) and B (v2) racing: B plans its tree
        // from descriptors alone, *before* A's nodes are visible, then A and
        // B publish in any order. The combined tree must be complete.
        let blob = BlobId(1);
        let a_pages: Vec<PageRef> = (0..3)
            .map(|i| PageRef {
                id: PageId(1, i),
                byte_len: 100,
                providers: vec![NodeId(0)],
            })
            .collect();
        let b_pages: Vec<PageRef> = (0..2)
            .map(|i| PageRef {
                id: PageId(2, i),
                byte_len: 100,
                providers: vec![NodeId(1)],
            })
            .collect();
        let d1 = WriteDesc {
            version: 1,
            kind: WriteKind::Append,
            page_lo: 0,
            page_hi: 3,
            byte_lo: 0,
            byte_hi: 300,
            total_pages: 3,
            total_bytes: 300,
        };
        let d2 = WriteDesc {
            version: 2,
            kind: WriteKind::Append,
            page_lo: 3,
            page_hi: 5,
            byte_lo: 300,
            byte_hi: 500,
            total_pages: 5,
            total_bytes: 500,
        };
        // B plans first (sees only descriptors), then A plans. Each builds
        // its index snapshot from the descriptors alone.
        let mut ix_a = DescIndex::new(PS);
        ix_a.apply(&d1);
        let mut ix_b = ix_a.clone();
        ix_b.apply(&d2);
        let b_nodes = plan_write(blob, &ix_b, &d2, &b_pages);
        let a_nodes = plan_write(blob, &ix_a, &d1, &a_pages);
        let mut store: HashMap<NodeKey, NodeBody> = HashMap::new();
        for (k, v) in b_nodes.into_iter().chain(a_nodes) {
            store.insert(k, v);
        }
        // Version 2's full tree must resolve every reference.
        let snap = SnapshotInfo {
            version: 2,
            total_pages: 5,
            total_bytes: 500,
            page_size: PS,
        };
        let mut fetch = |keys: &[NodeKey]| Ok(keys.iter().map(|k| store.get(k).cloned()).collect());
        let hits = collect_leaves(&mut fetch, blob, &snap, 0, 500).unwrap();
        assert_eq!(hits.len(), 5);
        assert_eq!(hits[0].page.id, PageId(1, 0));
        assert_eq!(hits[4].page.id, PageId(2, 1));
        let offs: Vec<u64> = hits.iter().map(|h| h.blob_byte_off).collect();
        assert_eq!(offs, vec![0, 100, 200, 300, 400]);
    }

    #[test]
    fn out_of_bounds_reads_fail() {
        let mut h = Harness::new();
        h.append(&pattern(100, 1));
        let snap = SnapshotInfo {
            version: 1,
            total_pages: 1,
            total_bytes: 100,
            page_size: PS,
        };
        let mut fetch =
            |keys: &[NodeKey]| Ok(keys.iter().map(|k| h.nodes.get(k).cloned()).collect());
        let err = collect_leaves(&mut fetch, h.blob, &snap, 50, 151).unwrap_err();
        assert!(matches!(err, BlobError::OutOfBounds { .. }));
    }

    #[test]
    fn missing_node_is_reported() {
        let mut h = Harness::new();
        h.append(&pattern(300, 1));
        let snap = SnapshotInfo {
            version: 1,
            total_pages: 3,
            total_bytes: 300,
            page_size: PS,
        };
        let mut fetch = |keys: &[NodeKey]| Ok(vec![None; keys.len()]);
        let err = collect_leaves(&mut fetch, h.blob, &snap, 0, 10).unwrap_err();
        assert!(matches!(err, BlobError::MetadataMissing { .. }));
    }

    #[test]
    fn blob_state_reap_queue_is_lazy_and_ordered() {
        use fabric::{ClusterSpec, Fabric};
        let fx = Fabric::sim(ClusterSpec::tiny(1));
        let mut st = BlobState::new(PS);
        let mani = |tag: u64| {
            Arc::new(vec![PageRef {
                id: PageId(tag, 0),
                byte_len: PS,
                providers: vec![NodeId(0)],
            }])
        };
        // Three appends assigned at t = 10, 20, 30.
        for (i, t) in [(1u64, 10u64), (2, 20), (3, 30)] {
            let d = st.build_descriptor(UpdateKind::Append, PS, 1).unwrap();
            assert_eq!(d.version, i);
            st.admit(d, mani(i), t, fx.gate());
        }
        // Nothing expired yet: O(1) front peek, empty result.
        assert!(st.take_expired(40, 100).is_empty());
        // v1 and v2 expired; v3 not yet. Order is oldest-first.
        assert_eq!(st.take_expired(125, 100), vec![1, 2]);
        // Taken versions are gone from the queue until requeued.
        assert!(st.take_expired(125, 100).is_empty());
        st.requeue_expired(&[1, 2]);
        // A committed version is skipped lazily, not force-completed.
        let gates = st.commit(1);
        assert_eq!(gates.len(), 1, "v1 publishes immediately");
        assert_eq!(st.published, 1);
        assert_eq!(st.take_expired(125, 100), vec![2]);
        // Requeue skips versions that are no longer pending.
        st.commit(2);
        st.requeue_expired(&[2]);
        // v3 eventually expires too (v2's stale entry is long gone).
        assert_eq!(st.take_expired(131, 100), vec![3]);
        // Publishing v3 hands the published index over at its version.
        let gates = st.commit(3);
        assert_eq!(gates.len(), 1);
        assert_eq!(st.published_index.version(), 3);
        assert!(st.pending.is_empty());
    }

    #[test]
    fn blob_state_commit_out_of_order_returns_gates_in_publication_order() {
        use fabric::{ClusterSpec, Fabric};
        let fx = Fabric::sim(ClusterSpec::tiny(1));
        let mut st = BlobState::new(PS);
        let mani = |tag: u64| {
            Arc::new(vec![PageRef {
                id: PageId(tag, 0),
                byte_len: PS,
                providers: vec![NodeId(0)],
            }])
        };
        for i in 1..=3u64 {
            let d = st.build_descriptor(UpdateKind::Append, PS, 1).unwrap();
            st.admit(d, mani(i), i * 10, fx.gate());
        }
        assert!(st.commit(3).is_empty(), "v3 waits for predecessors");
        assert!(st.commit(2).is_empty(), "v2 waits for v1");
        assert_eq!(st.published, 0);
        let gates = st.commit(1);
        assert_eq!(gates.len(), 3, "v1 unlocks the whole chain");
        assert_eq!(st.published, 3);
        assert_eq!(st.published_index.version(), 3);
        // Idempotent re-commit of published versions is a no-op.
        assert!(st.commit(2).is_empty());
    }

    #[test]
    fn nodes_are_emitted_children_first() {
        let mut h = Harness::new();
        let (tp, tb) = h.total();
        let manifest = h.store_pages(&pattern(500, 3));
        let desc = WriteDesc {
            version: 1,
            kind: WriteKind::Append,
            page_lo: tp,
            page_hi: tp + 5,
            byte_lo: tb,
            byte_hi: tb + 500,
            total_pages: 5,
            total_bytes: 500,
        };
        let mut ix = DescIndex::new(PS);
        ix.apply(&desc);
        let nodes = plan_write(h.blob, &ix, &desc, &manifest);
        let mut seen = std::collections::HashSet::new();
        for (k, b) in &nodes {
            if let NodeBody::Inner { left, right } = b {
                for c in [left, right].into_iter().flatten() {
                    if c.version == 1 {
                        assert!(
                            seen.contains(&(c.page_lo, c.page_hi)),
                            "child [{}, {}) of {k:?} emitted after parent",
                            c.page_lo,
                            c.page_hi
                        );
                    }
                }
            }
            seen.insert((k.page_lo, k.page_hi));
        }
    }
}
