//! The provider manager: decides which providers receive the pages of each
//! write (paper §3.1.1: placement "aims at achieving load-balancing").
//!
//! # Leased reservations
//!
//! Every allocation reserves capacity on the chosen providers *before* any
//! byte moves, so the least-loaded policy spreads concurrent writers. That
//! opens a failure window the version manager's write timeout cannot see: a
//! writer that dies *between* allocation and its page stores never consumed
//! its reservations, and nothing in the VM's pending-write reap (which only
//! knows writers that reached `assign`) will ever hand them back. Since this
//! refactor, every [`ProviderManager::allocate`] therefore registers a
//! **lease** over its page-replica reservations, with a deadline mirroring
//! the VM's write timeout. A live writer [`ProviderManager::settle`]s the
//! lease when its page stores finish (landed pages consumed their
//! reservations at the provider; failed ones were released inline). A dead
//! writer's lease expires: [`ProviderManager::reap_expired_leases`] — run by
//! the optional background reaper, or lazily by the next `allocate` — asks
//! each holder whether the page landed ([`Provider::has_page`]) and releases
//! exactly the reservations that never became stored bytes. The deadline
//! queue is peeked O(1) in the common no-expiry case, mirroring the version
//! manager's per-blob reap queues.
//!
//! Like the VM's write timeout, the lease deadline embeds a liveness
//! assumption: a writer slower than the timeout is indistinguishable from a
//! dead one. The lease *entry* is the token for returning a reservation
//! ([`ProviderManager::release`] is a no-op once the reaper took it, and a
//! mid-failover [`ProviderManager::adopt`] re-acquires an expired lease), so
//! a resurrecting writer
//! never double-releases through the manager — the one residual race is a
//! page landing *after* its reservation was reclaimed, which is why the
//! deadline must comfortably exceed one update's store time (the default
//! mirrors the VM's 30 s against sub-second page streams).
//!
//! # No global locks
//!
//! The old `Mutex<usize>` round-robin cursor is an atomic counter, the
//! capacity books live in per-provider atomics ([`Provider::load_estimate`]),
//! and the lease book's mutex guards only queue/table splices — never a
//! fabric call — so concurrent allocations from distinct clients serialize
//! on nothing but the modeled control RPC itself. Placement stays
//! deterministic in sim mode: candidates keep deployment order, the cursor
//! advances in scheduler order, and tie-breaks draw from the caller's seeded
//! RNG stream.

use std::collections::{HashMap, VecDeque};
use std::path::Path;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use fabric::{Fabric, NodeId, Proc, SimTime};
use parking_lot::Mutex;
use rand::seq::SliceRandom;
use rand::Rng;

use crate::config::AllocStrategy;
use crate::error::{BlobError, BlobResult};
use crate::provider::Provider;
use crate::types::PageId;

/// Key namespace for lease records inside the manager's durable store.
const LEASE_PREFIX: &[u8] = b"l/";

fn lease_key(id: u64) -> [u8; 10] {
    let mut k = [0u8; 10];
    k[..2].copy_from_slice(LEASE_PREFIX);
    k[2..].copy_from_slice(&id.to_be_bytes());
    k
}

/// One lease record is the concatenation of its outstanding entries, 28
/// bytes each: provider node (u32 LE), page id (2×u64 LE), bytes (u64 LE).
const LEASE_ENTRY_BYTES: usize = 28;

fn encode_lease(entries: &[(NodeId, PageId, u64)]) -> Vec<u8> {
    let mut out = Vec::with_capacity(entries.len() * LEASE_ENTRY_BYTES);
    for &(node, page, bytes) in entries {
        out.extend_from_slice(&node.0.to_le_bytes());
        out.extend_from_slice(&page.0.to_le_bytes());
        out.extend_from_slice(&page.1.to_le_bytes());
        out.extend_from_slice(&bytes.to_le_bytes());
    }
    out
}

fn decode_lease(v: &[u8]) -> Option<Vec<(NodeId, PageId, u64)>> {
    // analyze: allow-fn(panic-unwrap): chunks_exact(24) yields exactly-sized
    // chunks, so every fixed-width try_into is infallible
    if !v.len().is_multiple_of(LEASE_ENTRY_BYTES) {
        return None;
    }
    Some(
        v.chunks_exact(LEASE_ENTRY_BYTES)
            .map(|c| {
                (
                    NodeId(u32::from_le_bytes(c[..4].try_into().unwrap())),
                    PageId(
                        u64::from_le_bytes(c[4..12].try_into().unwrap()),
                        u64::from_le_bytes(c[12..20].try_into().unwrap()),
                    ),
                    u64::from_le_bytes(c[20..].try_into().unwrap()),
                )
            })
            .collect(),
    )
}

/// Handle to the lease covering one update's page-replica reservations.
/// Returned by [`ProviderManager::allocate`]; the writer settles it after
/// its page stores, the reaper expires it if the writer never does.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct LeaseId(u64);

/// Outstanding page-replica reservations of one lease:
/// `(provider node, page, bytes)` — one entry per replica stream.
struct Lease {
    entries: Vec<(NodeId, PageId, u64)>,
}

#[derive(Default)]
struct LeaseBook {
    table: HashMap<u64, Lease>,
    /// Lease ids in deadline order. Deadlines are computed under this lock
    /// (see [`ProviderManager::register_lease`]), so they are monotone and
    /// the no-expiry reap check peeks one entry — O(1), never a table scan.
    /// Entries settled by their writer are dropped lazily at the peek.
    queue: VecDeque<(SimTime, u64)>,
}

/// Centralized placement service (one instance per deployment, like the
/// paper's single provider manager node).
pub struct ProviderManager {
    node: NodeId,
    fabric: Fabric,
    providers: Vec<Arc<Provider>>,
    by_node: HashMap<NodeId, Arc<Provider>>,
    strategy: AllocStrategy,
    ctl_msg_bytes: u64,
    /// Reservation lease lifetime; `None` disables leasing (tests that want
    /// reservations pinned forever).
    lease_timeout_ns: Option<u64>,
    rr: AtomicU64,
    next_lease: AtomicU64,
    leases: Mutex<LeaseBook>,
    expired_leases: AtomicU64,
    reclaimed_bytes: AtomicU64,
    /// Durable copy of the lease book (see [`Self::with_persistence`]).
    /// Writes are best-effort: the in-memory book stays authoritative, and a
    /// store hiccup must never fail an allocation.
    persist: Option<pstore::Store>,
}

impl ProviderManager {
    pub fn new(
        node: NodeId,
        fabric: Fabric,
        providers: Vec<Arc<Provider>>,
        strategy: AllocStrategy,
        ctl_msg_bytes: u64,
        lease_timeout_ns: Option<u64>,
    ) -> Self {
        let by_node = providers.iter().map(|pr| (pr.node(), pr.clone())).collect();
        ProviderManager {
            node,
            fabric,
            providers,
            by_node,
            strategy,
            ctl_msg_bytes,
            lease_timeout_ns,
            rr: AtomicU64::new(0),
            next_lease: AtomicU64::new(0),
            leases: Mutex::with_rank(LeaseBook::default(), crate::lock_ranks::LEASE_BOOK),
            expired_leases: AtomicU64::new(0),
            reclaimed_bytes: AtomicU64::new(0),
            persist: None,
        }
    }

    /// Enable the durable lease book: every lease mutation is mirrored into
    /// a [`pstore::Store`] at `dir`, and a manager constructed over a
    /// non-empty directory *recovers* the leases a dead predecessor left
    /// behind — each reloaded lease gets a fresh deadline (the predecessor's
    /// clock died with it), `next_lease` resumes past the highest recovered
    /// id, and unlanded reservations are re-taken on their providers so the
    /// capacity books balance from the first allocation. A lease that
    /// straddled the crash is then settled / adopted / reaped exactly like
    /// one registered in this life. No-op book-keeping when leasing is
    /// disabled (`lease_timeout_ns == None`).
    pub fn with_persistence(mut self, dir: &Path, opts: pstore::StoreOptions) -> BlobResult<Self> {
        let store =
            pstore::Store::open_with(dir, opts).map_err(|e| BlobError::persistence(dir, &e))?;
        if let Some(timeout) = self.lease_timeout_ns {
            let records = store
                .scan_prefix(LEASE_PREFIX)
                .map_err(|e| BlobError::persistence(dir, &e))?;
            let mut book = self.leases.lock();
            // All recovered leases share one fresh deadline, keeping the
            // queue monotone; scan order is ascending key = ascending id.
            let deadline = self.fabric.now() + timeout;
            let mut max_id = 0u64;
            for (k, v) in records {
                let (Ok(id_bytes), Some(entries)) = (
                    <[u8; 8]>::try_from(&k[LEASE_PREFIX.len()..]),
                    decode_lease(&v),
                ) else {
                    continue; // malformed record: drop it, never panic
                };
                let id = u64::from_be_bytes(id_bytes);
                max_id = max_id.max(id);
                for &(node, page, bytes) in &entries {
                    if let Some(pr) = self.by_node.get(&node) {
                        if !pr.has_page(page) {
                            pr.reserve(bytes);
                        }
                    }
                }
                book.queue.push_back((deadline, id));
                book.table.insert(id, Lease { entries });
            }
            drop(book);
            self.next_lease.store(max_id, Ordering::Relaxed);
        }
        self.persist = Some(store);
        Ok(self)
    }

    /// Mirror one lease's current entries into the durable book
    /// (best-effort, flushed to the OS so it survives a process crash).
    fn persist_lease(&self, id: u64, entries: &[(NodeId, PageId, u64)]) {
        if let Some(s) = &self.persist {
            let _ = s.put(&lease_key(id), &encode_lease(entries));
            let _ = s.flush_buffered();
        }
    }

    /// Drop one lease from the durable book (settled or reaped).
    fn persist_drop(&self, id: u64) {
        if let Some(s) = &self.persist {
            let _ = s.delete(&lease_key(id));
            let _ = s.flush_buffered();
        }
    }

    /// The node hosting this service.
    pub fn node(&self) -> NodeId {
        self.node
    }

    /// All managed providers.
    pub fn providers(&self) -> &[Arc<Provider>] {
        &self.providers
    }

    /// Choose `replication` distinct providers for each page of an update,
    /// where `pages[i]` is the page's id and the exact byte count it will
    /// store (tail pages may be short). `exclude` removes nodes observed
    /// failing by the caller (retry paths). Reserves exactly the planned
    /// bytes on each chosen provider — and registers a lease over every
    /// reservation, so a writer that dies before its page stores is
    /// reclaimable (see the module docs). Expired leases of *other* dead
    /// writers are reaped lazily here, mirroring the VM's lazy reap.
    pub fn allocate(
        &self,
        p: &Proc,
        pages: &[(PageId, u64)],
        replication: usize,
        exclude: &[NodeId],
    ) -> BlobResult<(LeaseId, Vec<Vec<Arc<Provider>>>)> {
        self.reap_expired_leases(p);
        p.rpc(self.node, self.ctl_msg_bytes, self.ctl_msg_bytes);
        let mut candidates: Vec<Arc<Provider>> = self
            .providers
            .iter()
            .filter(|pr| pr.is_alive() && !exclude.contains(&pr.node()))
            .cloned()
            .collect();
        if candidates.len() < replication {
            return Err(BlobError::NoProviders);
        }
        let mut out = Vec::with_capacity(pages.len());
        let mut entries = Vec::with_capacity(pages.len() * replication);
        for &(id, bytes) in pages {
            let chosen = self.pick(p, &mut candidates, replication);
            for pr in &chosen {
                pr.reserve(bytes);
                entries.push((pr.node(), id, bytes));
            }
            out.push(chosen);
        }
        Ok((self.register_lease(entries), out))
    }

    fn register_lease(&self, entries: Vec<(NodeId, PageId, u64)>) -> LeaseId {
        let id = self.next_lease.fetch_add(1, Ordering::Relaxed) + 1;
        if let Some(timeout) = self.lease_timeout_ns {
            self.persist_lease(id, &entries);
            let mut book = self.leases.lock();
            // The deadline is read under the book lock: the O(1) front peek
            // relies on monotone queue order, which a pre-lock read would
            // break in live mode (a preempted allocator enqueueing an older
            // deadline second).
            let deadline = self.fabric.now() + timeout;
            book.queue.push_back((deadline, id));
            book.table.insert(id, Lease { entries });
        }
        LeaseId(id)
    }

    fn pick(
        &self,
        p: &Proc,
        candidates: &mut [Arc<Provider>],
        replication: usize,
    ) -> Vec<Arc<Provider>> {
        // analyze: allow-fn(panic-index): every subscript is drawn from
        // `0..candidates.len()` (permutation or modulo), in-bounds by
        // construction
        match self.strategy {
            AllocStrategy::RoundRobin => {
                // Atomic cursor: concurrent allocators interleave without a
                // lock, and in sim mode the scheduler order makes the
                // sequence (and hence placement) reproducible per seed.
                let base = self.rr.fetch_add(replication as u64, Ordering::Relaxed) as usize;
                (0..replication)
                    .map(|i| candidates[(base + i) % candidates.len()].clone())
                    .collect()
            }
            AllocStrategy::Random => {
                let mut rng = p.rng();
                candidates
                    .choose_multiple(&mut *rng, replication)
                    .cloned()
                    .collect()
            }
            AllocStrategy::LeastLoaded => {
                // Random tie-break via a pre-shuffle, then stable sort by load.
                let mut rng = p.rng();
                let mut idx: Vec<usize> = (0..candidates.len()).collect();
                idx.shuffle(&mut *rng);
                idx.sort_by_key(|&i| candidates[i].load_estimate());
                idx.iter()
                    .take(replication)
                    .map(|&i| candidates[i].clone())
                    .collect()
            }
            AllocStrategy::LocalFirst => {
                let mut chosen = Vec::with_capacity(replication);
                if let Some(local) = candidates.iter().find(|c| c.node() == p.node()) {
                    chosen.push(local.clone());
                }
                let mut rng = p.rng();
                let mut idx: Vec<usize> = (0..candidates.len()).collect();
                idx.shuffle(&mut *rng);
                idx.sort_by_key(|&i| candidates[i].load_estimate());
                for i in idx {
                    if chosen.len() >= replication {
                        break;
                    }
                    if !chosen.iter().any(|c| c.node() == candidates[i].node()) {
                        chosen.push(candidates[i].clone());
                    }
                }
                chosen
            }
        }
    }

    /// Hand back a reservation taken by [`Self::allocate`] (or adopted by a
    /// failover [`Self::adopt`]) that will never be fulfilled — the target
    /// died before the page landed, or the write was abandoned. Without
    /// this, failover permanently inflates the dead provider's load estimate
    /// and the deployment's capacity accounting never balances again.
    ///
    /// The lease entry is the *token* for returning the reservation: the
    /// bytes go back only if this call removes the entry. If the lease
    /// already expired, the reaper took the token and released the bytes —
    /// a second unconditional unreserve here would silently drain *other*
    /// writers' live reservations (unreserve saturates across the shared
    /// per-provider pool). With leasing disabled there is no token and the
    /// release is unconditional, as before.
    pub fn release(
        &self,
        p: &Proc,
        lease: LeaseId,
        provider: &Arc<Provider>,
        page: PageId,
        bytes: u64,
    ) {
        p.rpc(self.node, self.ctl_msg_bytes, self.ctl_msg_bytes);
        let owned = if self.lease_timeout_ns.is_none() {
            true
        } else {
            let mut book = self.leases.lock();
            match book.table.get_mut(&lease.0) {
                Some(l) => match l
                    .entries
                    .iter()
                    .position(|&(n, pg, _)| n == provider.node() && pg == page)
                {
                    Some(at) => {
                        l.entries.swap_remove(at);
                        self.persist_lease(lease.0, &l.entries);
                        true
                    }
                    None => false,
                },
                // Lease expired: the reaper already returned these bytes.
                None => false,
            }
        };
        if owned {
            provider.unreserve(bytes);
        }
    }

    /// Reserve `bytes` on a failover replacement target *under the caller's
    /// existing lease*: the replacement reservation inherits the original
    /// write's deadline, so a writer that dies mid-failover is exactly as
    /// reclaimable as one that dies mid-first-attempt. A writer that
    /// outlived its lease (the reaper expired it mid-failover) re-acquires
    /// under the same id with a fresh deadline, so the new reservation is
    /// tracked rather than orphaned.
    pub fn adopt(
        &self,
        p: &Proc,
        lease: LeaseId,
        provider: &Arc<Provider>,
        page: PageId,
        bytes: u64,
    ) {
        p.rpc(self.node, self.ctl_msg_bytes, self.ctl_msg_bytes);
        provider.reserve(bytes);
        if let Some(timeout) = self.lease_timeout_ns {
            let mut book = self.leases.lock();
            let entry = (provider.node(), page, bytes);
            match book.table.get_mut(&lease.0) {
                Some(l) => {
                    l.entries.push(entry);
                    self.persist_lease(lease.0, &l.entries);
                }
                None => {
                    let deadline = self.fabric.now() + timeout;
                    book.queue.push_back((deadline, lease.0));
                    self.persist_lease(lease.0, &[entry]);
                    book.table.insert(
                        lease.0,
                        Lease {
                            entries: vec![entry],
                        },
                    );
                }
            }
        }
    }

    /// The writer's page stores are done (each page either landed — consuming
    /// its reservation at the provider — or was released inline): close the
    /// lease so the reaper never considers this write again. Idempotent.
    pub fn settle(&self, p: &Proc, lease: LeaseId) {
        p.rpc(self.node, self.ctl_msg_bytes, self.ctl_msg_bytes);
        if self.leases.lock().table.remove(&lease.0).is_some() {
            self.persist_drop(lease.0);
        }
        // The deadline-queue entry is dropped lazily at the next front peek.
    }

    /// Expire every lease past its deadline and reclaim the reservations
    /// whose pages never landed; returns the bytes reclaimed. Called by the
    /// background reaper and lazily from [`Self::allocate`]. O(1) when
    /// nothing expired: only the deadline-queue front is examined.
    pub fn reap_expired_leases(&self, p: &Proc) -> u64 {
        if self.lease_timeout_ns.is_none() {
            return 0;
        }
        let mut reclaimed = 0u64;
        loop {
            let expired = {
                let mut book = self.leases.lock();
                let now = self.fabric.now();
                let mut expired = None;
                while let Some(&(deadline, id)) = book.queue.front() {
                    if !book.table.contains_key(&id) {
                        // Settled by its writer: forget it lazily.
                        book.queue.pop_front();
                        continue;
                    }
                    if now >= deadline {
                        book.queue.pop_front();
                        expired = book.table.remove(&id).map(|l| (id, l));
                    }
                    break;
                }
                expired
            };
            let Some((id, lease)) = expired else { break };
            self.persist_drop(id);
            self.expired_leases.fetch_add(1, Ordering::Relaxed);
            // One control exchange per expired lease: the manager confirms
            // with the holders which reservations were consumed. A page that
            // landed (`has_page`) consumed its reservation in `put_pages`;
            // everything else is a stranded reservation — hand it back.
            p.rpc(self.node, self.ctl_msg_bytes, self.ctl_msg_bytes);
            for (node, page, bytes) in lease.entries {
                let Some(pr) = self.by_node.get(&node) else {
                    continue;
                };
                if !pr.has_page(page) {
                    pr.unreserve(bytes);
                    reclaimed += bytes;
                }
            }
        }
        if reclaimed > 0 {
            self.reclaimed_bytes.fetch_add(reclaimed, Ordering::Relaxed);
        }
        reclaimed
    }

    /// Re-reserve, on provider `node`, every outstanding lease entry whose
    /// page has not landed there. Called right after a crash-restarted
    /// provider [`Provider::recover`]s: recovery zeroes the reservation
    /// counter (a restarted process has no memory of promises), but leases
    /// that straddled the crash are still live — their writers may yet store
    /// pages, and the reaper will expect the reservations to be there when
    /// the deadlines lapse. Entries whose pages DID land consumed their
    /// reservations (recovery already counts them as stored bytes), so only
    /// the unlanded remainder is restored. Returns the bytes re-reserved.
    pub fn reinstate(&self, node: NodeId) -> u64 {
        let Some(pr) = self.by_node.get(&node) else {
            return 0;
        };
        let book = self.leases.lock();
        let mut restored = 0u64;
        // analyze: allow(unordered-iter): commutative accumulation — each
        // entry's reserve/sum contribution is independent of visit order
        for lease in book.table.values() {
            for &(n, page, bytes) in &lease.entries {
                if n == node && !pr.has_page(page) {
                    pr.reserve(bytes);
                    restored += bytes;
                }
            }
        }
        restored
    }

    /// Leases currently outstanding (allocated, neither settled nor
    /// expired). Diagnostics.
    pub fn outstanding_leases(&self) -> usize {
        self.leases.lock().table.len()
    }

    /// `(leases expired, reservation bytes reclaimed)` over this manager's
    /// lifetime. Diagnostics for the reaper tests.
    pub fn lease_reap_stats(&self) -> (u64, u64) {
        (
            self.expired_leases.load(Ordering::Relaxed),
            self.reclaimed_bytes.load(Ordering::Relaxed),
        )
    }

    /// A uniformly random *alive* provider (used by retry paths wanting a
    /// fresh target).
    pub fn any_alive(&self, p: &Proc, exclude: &[NodeId]) -> BlobResult<Arc<Provider>> {
        let mut rng = p.rng();
        let alive: Vec<&Arc<Provider>> = self
            .providers
            .iter()
            .filter(|pr| pr.is_alive() && !exclude.contains(&pr.node()))
            .collect();
        if alive.is_empty() {
            return Err(BlobError::NoProviders);
        }
        Ok((*alive[rng.gen_range(0..alive.len())]).clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fabric::{ClusterSpec, Fabric, Payload};

    fn providers(n: u32) -> Vec<Arc<Provider>> {
        (0..n)
            .map(|i| Arc::new(Provider::new_mem(NodeId(i))))
            .collect()
    }

    fn pg(i: u64) -> PageId {
        PageId(0xA110C, i)
    }

    fn pages(sizes: &[u64]) -> Vec<(PageId, u64)> {
        sizes
            .iter()
            .enumerate()
            .map(|(i, &b)| (pg(i as u64), b))
            .collect()
    }

    fn pm_on(
        fx: &Fabric,
        provs: Vec<Arc<Provider>>,
        strategy: AllocStrategy,
        lease_timeout_ns: Option<u64>,
    ) -> ProviderManager {
        ProviderManager::new(NodeId(0), fx.clone(), provs, strategy, 64, lease_timeout_ns)
    }

    fn with_pm<T: Send + 'static>(
        n_providers: u32,
        strategy: AllocStrategy,
        f: impl FnOnce(&Proc, &ProviderManager, &[Arc<Provider>]) -> T + Send + 'static,
    ) -> T {
        let fx = Fabric::sim(ClusterSpec::tiny(8));
        let provs = providers(n_providers);
        let pm = pm_on(&fx, provs.clone(), strategy, None);
        let h = fx.spawn(NodeId(0), "t", move |p| f(p, &pm, &provs));
        fx.run();
        h.take().unwrap()
    }

    #[test]
    fn round_robin_cycles() {
        with_pm(3, AllocStrategy::RoundRobin, |p, pm, _| {
            let (_, a) = pm.allocate(p, &pages(&[100; 4]), 1, &[]).unwrap();
            let nodes: Vec<u32> = a.iter().map(|r| r[0].node().0).collect();
            assert_eq!(nodes, vec![0, 1, 2, 0]);
        });
    }

    #[test]
    fn round_robin_stays_deterministic_across_seeded_runs() {
        // The atomic cursor must not cost reproducibility: two identically
        // seeded sims with concurrent allocators produce identical
        // placements.
        let run = |seed: u64| -> Vec<Vec<u32>> {
            let fx = Fabric::sim_seeded(ClusterSpec::tiny(8), seed);
            let pm = Arc::new(pm_on(&fx, providers(5), AllocStrategy::RoundRobin, None));
            let mut handles = Vec::new();
            for w in 0..4u64 {
                let pm2 = pm.clone();
                handles.push(fx.spawn(NodeId(w as u32), format!("alloc{w}"), move |p| {
                    let mut picked = Vec::new();
                    for i in 0..8u64 {
                        let (_, a) = pm2.allocate(p, &[(PageId(w, i), 10)], 1, &[]).unwrap();
                        picked.push(a[0][0].node().0);
                        p.sleep((w + 1) * fabric::MICROS);
                    }
                    picked
                }));
            }
            fx.run();
            handles.iter().map(|h| h.take().unwrap()).collect()
        };
        assert_eq!(run(42), run(42));
    }

    #[test]
    fn least_loaded_spreads_concurrent_reservations() {
        with_pm(4, AllocStrategy::LeastLoaded, |p, pm, _| {
            // 4 single-page allocations *before any data lands* must pick 4
            // distinct providers thanks to reservations.
            let mut nodes = std::collections::HashSet::new();
            for i in 0..4 {
                let (_, a) = pm.allocate(p, &[(pg(i), 1000)], 1, &[]).unwrap();
                nodes.insert(a[0][0].node().0);
            }
            assert_eq!(nodes.len(), 4);
        });
    }

    #[test]
    fn reservations_match_exact_page_bytes() {
        with_pm(2, AllocStrategy::RoundRobin, |p, pm, provs| {
            // A full page plus a short 37 B tail: exactly 137 B reserved in
            // total, so releasing actual page bytes balances to zero.
            let (lease, placements) = pm.allocate(p, &pages(&[100, 37]), 1, &[]).unwrap();
            let reserved: u64 = provs.iter().map(|pr| pr.load_estimate()).sum();
            assert_eq!(reserved, 137);
            pm.release(p, lease, &placements[0][0], pg(0), 100);
            pm.release(p, lease, &placements[1][0], pg(1), 37);
            assert_eq!(provs.iter().map(|pr| pr.load_estimate()).sum::<u64>(), 0);
        });
    }

    #[test]
    fn replication_yields_distinct_nodes() {
        with_pm(5, AllocStrategy::LeastLoaded, |p, pm, _| {
            let (_, a) = pm.allocate(p, &pages(&[100; 3]), 3, &[]).unwrap();
            for replicas in &a {
                let mut ns: Vec<u32> = replicas.iter().map(|r| r.node().0).collect();
                ns.sort_unstable();
                ns.dedup();
                assert_eq!(ns.len(), 3, "replicas must be distinct providers");
            }
        });
    }

    #[test]
    fn excludes_and_dead_are_skipped() {
        with_pm(4, AllocStrategy::LeastLoaded, |p, pm, provs| {
            provs[1].kill();
            for i in 0..8 {
                let (_, a) = pm.allocate(p, &[(pg(i), 10)], 1, &[NodeId(2)]).unwrap();
                let n = a[0][0].node().0;
                assert!(n != 1 && n != 2, "picked dead or excluded provider {n}");
            }
        });
    }

    #[test]
    fn insufficient_providers_error() {
        with_pm(2, AllocStrategy::Random, |p, pm, provs| {
            provs[0].kill();
            assert!(matches!(
                pm.allocate(p, &pages(&[10]), 2, &[]),
                Err(BlobError::NoProviders)
            ));
        });
    }

    #[test]
    fn local_first_prefers_callers_node() {
        with_pm(4, AllocStrategy::LocalFirst, |p, pm, _| {
            // p runs on node 0 and a provider lives there.
            let (_, a) = pm.allocate(p, &pages(&[10; 2]), 2, &[]).unwrap();
            for replicas in &a {
                assert_eq!(replicas[0].node(), NodeId(0), "primary should be local");
                assert_ne!(replicas[1].node(), NodeId(0));
            }
        });
    }

    #[test]
    fn expired_lease_reclaims_only_unlanded_reservations() {
        let timeout = 100 * fabric::MILLIS;
        let fx = Fabric::sim(ClusterSpec::tiny(8));
        let provs = providers(3);
        let pm = pm_on(&fx, provs.clone(), AllocStrategy::RoundRobin, Some(timeout));
        let h = fx.spawn(NodeId(0), "t", move |p| {
            // Two pages allocated under one lease; only the first lands.
            let (_, a) = pm.allocate(p, &pages(&[100, 60]), 1, &[]).unwrap();
            a[0][0].put_page(p, pg(0), Payload::ghost(100)).unwrap();
            // The writer "dies": no settle. Before expiry nothing changes.
            pm.reap_expired_leases(p);
            assert_eq!(pm.outstanding_leases(), 1);
            p.sleep(2 * timeout);
            let reclaimed = pm.reap_expired_leases(p);
            assert_eq!(reclaimed, 60, "only the unlanded page's bytes return");
            assert_eq!(pm.outstanding_leases(), 0);
            for pr in &provs {
                assert_eq!(
                    pr.load_estimate(),
                    pr.stored_bytes(),
                    "books must balance after the lease reap"
                );
            }
            assert_eq!(pm.lease_reap_stats(), (1, 60));
        });
        fx.run();
        h.take().unwrap();
    }

    #[test]
    fn settled_and_released_leases_never_expire() {
        let timeout = 50 * fabric::MILLIS;
        let fx = Fabric::sim(ClusterSpec::tiny(8));
        let provs = providers(2);
        let pm = pm_on(&fx, provs.clone(), AllocStrategy::RoundRobin, Some(timeout));
        let h = fx.spawn(NodeId(0), "t", move |p| {
            // Lease A: page lands, writer settles.
            let (la, a) = pm.allocate(p, &pages(&[40]), 1, &[]).unwrap();
            a[0][0].put_page(p, pg(0), Payload::ghost(40)).unwrap();
            pm.settle(p, la);
            // Lease B: the write is abandoned and released inline (the
            // PR 2 contract), then settled.
            let (lb, b) = pm.allocate(p, &[(pg(9), 70)], 1, &[]).unwrap();
            pm.release(p, lb, &b[0][0], pg(9), 70);
            pm.settle(p, lb);
            p.sleep(4 * timeout);
            assert_eq!(pm.reap_expired_leases(p), 0, "nothing left to reclaim");
            assert_eq!(pm.lease_reap_stats(), (0, 0));
            for pr in &provs {
                assert_eq!(pr.load_estimate(), pr.stored_bytes());
            }
        });
        fx.run();
        h.take().unwrap();
    }

    #[test]
    fn lease_codec_roundtrips() {
        let entries = vec![
            (NodeId(3), PageId(0xDEAD, 0xBEEF), 4096),
            (NodeId(0), PageId(0, 1), 7),
            (NodeId(u32::MAX), PageId(u64::MAX, 0), u64::MAX),
        ];
        assert_eq!(decode_lease(&encode_lease(&entries)), Some(entries));
        assert_eq!(decode_lease(&[]), Some(vec![]));
        assert_eq!(decode_lease(&[1, 2, 3]), None, "truncated record");
    }

    #[test]
    fn persisted_leases_survive_a_manager_restart() {
        let dir = std::env::temp_dir().join(format!("pm-lease-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let timeout = 100 * fabric::MILLIS;

        // Life 1: allocate three leases; settle one, partially store another,
        // then "crash" (drop the manager without settling).
        let fx = Fabric::sim(ClusterSpec::tiny(8));
        let provs = providers(2);
        let pm = pm_on(&fx, provs.clone(), AllocStrategy::RoundRobin, Some(timeout))
            .with_persistence(&dir, pstore::StoreOptions::default())
            .unwrap();
        let d2 = dir.clone();
        let h = fx.spawn(NodeId(0), "t", move |p| {
            let (la, a) = pm.allocate(p, &pages(&[40]), 1, &[]).unwrap();
            a[0][0].put_page(p, pg(0), Payload::ghost(40)).unwrap();
            pm.settle(p, la);
            let (_, b) = pm.allocate(p, &[(pg(1), 60)], 1, &[]).unwrap();
            b[0][0].put_page(p, pg(1), Payload::ghost(60)).unwrap();
            let (_, _) = pm.allocate(p, &[(pg(2), 90)], 1, &[]).unwrap();
            (a[0][0].node(), b[0][0].node())
        });
        fx.run();
        let (_n_a, n_b) = h.take().unwrap();

        // Life 2: fresh fabric, fresh providers (pages are gone — these are
        // mem providers, modeling the worst case), fresh manager over the
        // same lease directory.
        let fx = Fabric::sim(ClusterSpec::tiny(8));
        let provs = providers(2);
        let pm = pm_on(&fx, provs.clone(), AllocStrategy::RoundRobin, Some(timeout))
            .with_persistence(&d2, pstore::StoreOptions::default())
            .unwrap();
        // The settled lease is gone; the two unsettled ones were recovered
        // and their unlanded reservations re-taken.
        assert_eq!(pm.outstanding_leases(), 2);
        let reserved: u64 = provs.iter().map(|pr| pr.load_estimate()).sum();
        assert_eq!(reserved, 150, "pg(1)+pg(2) bytes re-reserved");
        let _ = n_b;
        let h = fx.spawn(NodeId(0), "t", move |p| {
            // New allocations never reuse a recovered lease id.
            let (lease, _) = pm.allocate(p, &[(pg(9), 10)], 1, &[]).unwrap();
            assert!(lease.0 > 3, "id sequence resumes past recovery");
            // The recovered leases expire like natives (their writers died
            // with the old manager) and the reaper balances the books.
            p.sleep(2 * timeout);
            pm.reap_expired_leases(p);
            assert_eq!(pm.outstanding_leases(), 0);
            for pr in pm.providers() {
                assert_eq!(pr.load_estimate(), pr.stored_bytes());
            }
        });
        fx.run();
        h.take().unwrap();
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn reinstate_restores_only_unlanded_reservations() {
        let dir = std::env::temp_dir().join(format!("pm-reinstate-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let pdir = dir.join("prov");
        let ldir = dir.join("pm");
        let timeout = 100 * fabric::MILLIS;
        let fx = Fabric::sim(ClusterSpec::tiny(8));
        let pr = Arc::new(Provider::new_persistent(NodeId(1), &pdir).unwrap());
        let pm = pm_on(
            &fx,
            vec![pr.clone()],
            AllocStrategy::RoundRobin,
            Some(timeout),
        )
        .with_persistence(&ldir, pstore::StoreOptions::default())
        .unwrap();
        let h = fx.spawn(NodeId(0), "t", move |p| {
            // One lease, two pages: the first lands, the second is still in
            // flight when the provider crash-restarts.
            let (lease, a) = pm.allocate(p, &pages(&[100, 60]), 1, &[]).unwrap();
            a[0][0]
                .put_page(p, pg(0), Payload::from_vec(vec![1u8; 100]))
                .unwrap();
            assert_eq!(pr.load_estimate(), 160, "100 stored + 60 reserved");

            pr.crash_wipe().unwrap();
            pr.recover().unwrap();
            assert_eq!(
                pr.load_estimate(),
                100,
                "recovery rebuilt stored bytes but forgot the reservation"
            );
            let restored = pm.reinstate(pr.node());
            assert_eq!(restored, 60, "only the unlanded entry is re-reserved");
            assert_eq!(pr.load_estimate(), 160, "books match pre-crash state");

            // The straddling lease stays fully functional: the writer's late
            // release and settle balance the books to zero outstanding.
            pm.release(p, lease, &a[1][0], pg(1), 60);
            pm.settle(p, lease);
            assert_eq!(pr.load_estimate(), pr.stored_bytes());
            assert_eq!(pm.outstanding_leases(), 0);
        });
        fx.run();
        h.take().unwrap();
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn allocate_reaps_lazily_like_the_vm() {
        let timeout = 50 * fabric::MILLIS;
        let fx = Fabric::sim(ClusterSpec::tiny(8));
        let provs = providers(2);
        let pm = pm_on(
            &fx,
            provs.clone(),
            AllocStrategy::LeastLoaded,
            Some(timeout),
        );
        let h = fx.spawn(NodeId(0), "t", move |p| {
            let (_, _) = pm.allocate(p, &pages(&[500]), 1, &[]).unwrap();
            // Writer dies. A later allocation (no reaper running) reclaims
            // the corpse's reservation on entry, so the least-loaded policy
            // is not skewed by ghost load.
            p.sleep(2 * timeout);
            let (_, _) = pm.allocate(p, &[(pg(7), 10)], 1, &[]).unwrap();
            let (expired, reclaimed) = pm.lease_reap_stats();
            assert_eq!((expired, reclaimed), (1, 500));
            let reserved: u64 = provs.iter().map(|pr| pr.load_estimate()).sum();
            assert_eq!(reserved, 10, "only the live allocation remains");
        });
        fx.run();
        h.take().unwrap();
    }
}
