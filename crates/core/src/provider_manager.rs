//! The provider manager: decides which providers receive the pages of each
//! write (paper §3.1.1: placement "aims at achieving load-balancing").

use std::sync::Arc;

use fabric::{NodeId, Proc};
use parking_lot::Mutex;
use rand::seq::SliceRandom;
use rand::Rng;

use crate::config::AllocStrategy;
use crate::error::{BlobError, BlobResult};
use crate::provider::Provider;

/// Centralized placement service (one instance per deployment, like the
/// paper's single provider manager node).
pub struct ProviderManager {
    node: NodeId,
    providers: Vec<Arc<Provider>>,
    strategy: AllocStrategy,
    ctl_msg_bytes: u64,
    rr: Mutex<usize>,
}

impl ProviderManager {
    pub fn new(
        node: NodeId,
        providers: Vec<Arc<Provider>>,
        strategy: AllocStrategy,
        ctl_msg_bytes: u64,
    ) -> Self {
        ProviderManager {
            node,
            providers,
            strategy,
            ctl_msg_bytes,
            rr: Mutex::new(0),
        }
    }

    /// The node hosting this service.
    pub fn node(&self) -> NodeId {
        self.node
    }

    /// All managed providers.
    pub fn providers(&self) -> &[Arc<Provider>] {
        &self.providers
    }

    /// Choose `replication` distinct providers for each page, where
    /// `page_bytes[i]` is the exact byte count page `i` will store (tail
    /// pages may be short). `exclude` removes nodes observed failing by the
    /// caller (retry paths). Reserves exactly the planned bytes on each
    /// chosen provider so concurrent allocations spread out — and so every
    /// later `unreserve`/[`Self::release`] (which hand back actual page
    /// bytes) balances to zero.
    pub fn allocate(
        &self,
        p: &Proc,
        page_bytes: &[u64],
        replication: usize,
        exclude: &[NodeId],
    ) -> BlobResult<Vec<Vec<Arc<Provider>>>> {
        p.rpc(self.node, self.ctl_msg_bytes, self.ctl_msg_bytes);
        let mut candidates: Vec<Arc<Provider>> = self
            .providers
            .iter()
            .filter(|pr| pr.is_alive() && !exclude.contains(&pr.node()))
            .cloned()
            .collect();
        if candidates.len() < replication {
            return Err(BlobError::NoProviders);
        }
        let mut out = Vec::with_capacity(page_bytes.len());
        for &bytes in page_bytes {
            let chosen = self.pick(p, &mut candidates, replication);
            for pr in &chosen {
                pr.reserve(bytes);
            }
            out.push(chosen);
        }
        Ok(out)
    }

    fn pick(
        &self,
        p: &Proc,
        candidates: &mut [Arc<Provider>],
        replication: usize,
    ) -> Vec<Arc<Provider>> {
        match self.strategy {
            AllocStrategy::RoundRobin => {
                let mut rr = self.rr.lock();
                let mut chosen = Vec::with_capacity(replication);
                for i in 0..replication {
                    chosen.push(candidates[(*rr + i) % candidates.len()].clone());
                }
                *rr = (*rr + replication) % candidates.len();
                chosen
            }
            AllocStrategy::Random => {
                let mut rng = p.rng();
                candidates
                    .choose_multiple(&mut *rng, replication)
                    .cloned()
                    .collect()
            }
            AllocStrategy::LeastLoaded => {
                // Random tie-break via a pre-shuffle, then stable sort by load.
                let mut rng = p.rng();
                let mut idx: Vec<usize> = (0..candidates.len()).collect();
                idx.shuffle(&mut *rng);
                idx.sort_by_key(|&i| candidates[i].load_estimate());
                idx.iter()
                    .take(replication)
                    .map(|&i| candidates[i].clone())
                    .collect()
            }
            AllocStrategy::LocalFirst => {
                let mut chosen = Vec::with_capacity(replication);
                if let Some(local) = candidates.iter().find(|c| c.node() == p.node()) {
                    chosen.push(local.clone());
                }
                let mut rng = p.rng();
                let mut idx: Vec<usize> = (0..candidates.len()).collect();
                idx.shuffle(&mut *rng);
                idx.sort_by_key(|&i| candidates[i].load_estimate());
                for i in idx {
                    if chosen.len() >= replication {
                        break;
                    }
                    if !chosen.iter().any(|c| c.node() == candidates[i].node()) {
                        chosen.push(candidates[i].clone());
                    }
                }
                chosen
            }
        }
    }

    /// Hand back a reservation taken by [`Self::allocate`] (or a failover
    /// `reserve`) that will never be fulfilled — the target died before the
    /// page landed, or the write was abandoned. Without this, failover
    /// permanently inflates the dead provider's load estimate and the
    /// deployment's capacity accounting never balances again.
    pub fn release(&self, p: &Proc, provider: &Arc<Provider>, bytes: u64) {
        p.rpc(self.node, self.ctl_msg_bytes, self.ctl_msg_bytes);
        provider.unreserve(bytes);
    }

    /// A uniformly random *alive* provider (used by retry paths wanting a
    /// fresh target).
    pub fn any_alive(&self, p: &Proc, exclude: &[NodeId]) -> BlobResult<Arc<Provider>> {
        let mut rng = p.rng();
        let alive: Vec<&Arc<Provider>> = self
            .providers
            .iter()
            .filter(|pr| pr.is_alive() && !exclude.contains(&pr.node()))
            .collect();
        if alive.is_empty() {
            return Err(BlobError::NoProviders);
        }
        Ok((*alive[rng.gen_range(0..alive.len())]).clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fabric::{ClusterSpec, Fabric};

    fn providers(n: u32) -> Vec<Arc<Provider>> {
        (0..n)
            .map(|i| Arc::new(Provider::new_mem(NodeId(i))))
            .collect()
    }

    fn with_proc<T: Send + 'static>(f: impl FnOnce(&Proc) -> T + Send + 'static) -> T {
        let fx = Fabric::sim(ClusterSpec::tiny(8));
        let h = fx.spawn(NodeId(0), "t", f);
        fx.run();
        h.take().unwrap()
    }

    #[test]
    fn round_robin_cycles() {
        with_proc(|p| {
            let pm = ProviderManager::new(NodeId(0), providers(3), AllocStrategy::RoundRobin, 64);
            let a = pm.allocate(p, &[100; 4], 1, &[]).unwrap();
            let nodes: Vec<u32> = a.iter().map(|r| r[0].node().0).collect();
            assert_eq!(nodes, vec![0, 1, 2, 0]);
        });
    }

    #[test]
    fn least_loaded_spreads_concurrent_reservations() {
        with_proc(|p| {
            let pm = ProviderManager::new(NodeId(0), providers(4), AllocStrategy::LeastLoaded, 64);
            // 4 single-page allocations *before any data lands* must pick 4
            // distinct providers thanks to reservations.
            let mut nodes = std::collections::HashSet::new();
            for _ in 0..4 {
                let a = pm.allocate(p, &[1000], 1, &[]).unwrap();
                nodes.insert(a[0][0].node().0);
            }
            assert_eq!(nodes.len(), 4);
        });
    }

    #[test]
    fn reservations_match_exact_page_bytes() {
        with_proc(|p| {
            let provs = providers(2);
            let pm = ProviderManager::new(NodeId(0), provs.clone(), AllocStrategy::RoundRobin, 64);
            // A full page plus a short 37 B tail: exactly 137 B reserved in
            // total, so releasing actual page bytes balances to zero.
            let placements = pm.allocate(p, &[100, 37], 1, &[]).unwrap();
            let reserved: u64 = provs.iter().map(|pr| pr.load_estimate()).sum();
            assert_eq!(reserved, 137);
            pm.release(p, &placements[0][0], 100);
            pm.release(p, &placements[1][0], 37);
            assert_eq!(provs.iter().map(|pr| pr.load_estimate()).sum::<u64>(), 0);
        });
    }

    #[test]
    fn replication_yields_distinct_nodes() {
        with_proc(|p| {
            let pm = ProviderManager::new(NodeId(0), providers(5), AllocStrategy::LeastLoaded, 64);
            let a = pm.allocate(p, &[100; 3], 3, &[]).unwrap();
            for replicas in &a {
                let mut ns: Vec<u32> = replicas.iter().map(|r| r.node().0).collect();
                ns.sort_unstable();
                ns.dedup();
                assert_eq!(ns.len(), 3, "replicas must be distinct providers");
            }
        });
    }

    #[test]
    fn excludes_and_dead_are_skipped() {
        with_proc(|p| {
            let provs = providers(4);
            provs[1].kill();
            let pm = ProviderManager::new(NodeId(0), provs.clone(), AllocStrategy::LeastLoaded, 64);
            for _ in 0..8 {
                let a = pm.allocate(p, &[10], 1, &[NodeId(2)]).unwrap();
                let n = a[0][0].node().0;
                assert!(n != 1 && n != 2, "picked dead or excluded provider {n}");
            }
        });
    }

    #[test]
    fn insufficient_providers_error() {
        with_proc(|p| {
            let provs = providers(2);
            provs[0].kill();
            let pm = ProviderManager::new(NodeId(0), provs, AllocStrategy::Random, 64);
            assert!(matches!(
                pm.allocate(p, &[10], 2, &[]),
                Err(BlobError::NoProviders)
            ));
        });
    }

    #[test]
    fn local_first_prefers_callers_node() {
        with_proc(|p| {
            // p runs on node 0 and a provider lives there.
            let pm = ProviderManager::new(NodeId(7), providers(4), AllocStrategy::LocalFirst, 64);
            let a = pm.allocate(p, &[10; 2], 2, &[]).unwrap();
            for replicas in &a {
                assert_eq!(replicas[0].node(), NodeId(0), "primary should be local");
                assert_ne!(replicas[1].node(), NodeId(0));
            }
        });
    }
}
