//! Role-typed fault vocabulary for a deployed [`crate::BlobSeer`].
//!
//! Faults address services by *role*, not by raw handle or index-into-some-
//! internal-vec: `inject(FaultTarget::Provider(3), Fault::Crash)` reads the
//! same whether it comes from a hand-written regression test or a seeded
//! chaos schedule, and a schedule rendered to text names exactly what it
//! broke. Injection is always paired with [`crate::BlobSeer::heal`]; both
//! are idempotent.
//!
//! Supported combinations (anything else is a typed
//! [`crate::BlobError::UnsupportedFault`], never a panic):
//!
//! | target            | `Crash`                         | `Pause`                    | `CrashRestart`                      |
//! |-------------------|---------------------------------|----------------------------|-------------------------------------|
//! | `Provider(i)`     | rejects stores/fetches          | —                          | wipes memory; heal replays disk ¹   |
//! | `ReadReplica(i)`  | rejects fetches; reads fail over to primaries | —            | wipes memory; heal replays disk ¹ ² |
//! | `MetaServer(i)`   | rejects tree-node puts/gets     | —                          | wipes memory; heal replays disk ¹   |
//! | `VersionManager`  | — (failover is a roadmap item)  | requests stall until heal  | —                                   |
//! | `Reaper`          | sweeps skipped until heal       | sweeps skipped until heal  | —                                   |
//!
//! ¹ `CrashRestart` requires a persistent deployment (`persist_dir` set):
//! the process loses everything in memory and the paired heal restarts it
//! from its [`pstore`] directory. On a memory-only deployment there is no
//! disk to come back from, so injection answers `UnsupportedFault`.
//!
//! ² A read replica holds no leases, so its heal is pure `recover()` —
//! there is no `reinstate` step; pages the wipe lost beyond disk are
//! re-copied by the next background sync round, and until then the stale
//! replica is skipped per-page (`has_page`), never served.
//!
//! Network-level faults (delays, drops, partitions) live one layer down, on
//! the fabric: see `fabric::NetFault`.

use std::fmt;

/// Which service of a deployment a fault addresses.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FaultTarget {
    /// The i-th data provider (deployment order, same index space as
    /// `BlobSeer::providers()`).
    Provider(usize),
    /// The i-th dedicated read replica (same index space as
    /// `BlobSeer::read_replicas()`). Losing one degrades read capacity,
    /// never durability — primaries keep every byte.
    ReadReplica(usize),
    /// The i-th metadata server of the DHT.
    MetaServer(usize),
    /// The centralized version manager.
    VersionManager,
    /// The background reaper service (lazy reaping from request paths is
    /// unaffected — this models the *daemon* dying, not the protocol).
    Reaper,
}

impl fmt::Display for FaultTarget {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FaultTarget::Provider(i) => write!(f, "provider[{i}]"),
            FaultTarget::ReadReplica(i) => write!(f, "read-replica[{i}]"),
            FaultTarget::MetaServer(i) => write!(f, "meta-server[{i}]"),
            FaultTarget::VersionManager => write!(f, "version-manager"),
            FaultTarget::Reaper => write!(f, "reaper"),
        }
    }
}

/// What happens to the target.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Fault {
    /// The service fails: requests against it error until healed.
    Crash,
    /// The service freezes: requests against it stall until healed (a
    /// GC pause, an overloaded box — the process is alive but mute).
    Pause,
    /// The process dies and loses ALL in-memory state (index, counters,
    /// buffered unacknowledged writes); the paired heal restarts it from
    /// its durable store directory, replaying from the newest checkpoint.
    /// Only meaningful on persistent deployments — `Crash` merely makes a
    /// service unresponsive, `CrashRestart` proves its *recovery* path.
    CrashRestart,
}

impl fmt::Display for Fault {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Fault::Crash => write!(f, "crash"),
            Fault::Pause => write!(f, "pause"),
            Fault::CrashRestart => write!(f, "crash-restart"),
        }
    }
}
