//! Core identifiers and the write-descriptor algebra.
//!
//! BlobSeer's concurrency story rests on a small amount of arithmetic:
//! every write/append is summarized by a [`WriteDesc`] `(version, page range,
//! byte range)`. From the ordered list of descriptors alone a writer can
//! compute, *without reading any other writer's metadata*,
//!
//! * which version owns any page ([`owner_of_page`]),
//! * the byte offset of any page boundary ([`byte_offset_of_page`]),
//! * which earlier version's metadata node covers any canonical page range
//!   ([`latest_toucher`]).
//!
//! That is what allows concurrent appenders to link their new metadata trees
//! to each other's *not-yet-written* nodes by deterministic node ids
//! (paper §3.1.2: "synchronization is required only when writing the
//! metadata, but this overhead is low").

/// Identifier of a BLOB, assigned by the version manager.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct BlobId(pub u64);

impl std::fmt::Display for BlobId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "blob#{}", self.0)
    }
}

/// A snapshot version of a BLOB. Version 0 is the empty BLOB; the first
/// write produces version 1.
pub type Version = u64;

/// Globally-unique identifier of a stored page (random 128 bits drawn from
/// the writer's RNG stream; pages are content-addressed by id, not offset,
/// because ids must be chosen *before* the version is known).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct PageId(pub u64, pub u64);

/// What kind of update produced a version.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WriteKind {
    /// Pages added at the end of the BLOB.
    Append,
    /// Pages replaced (and possibly extended) starting at an existing page
    /// boundary.
    Write,
}

/// A write request presented to the version manager's `assign`.
#[derive(Debug, Clone, Copy)]
pub enum UpdateKind {
    /// Append `nbytes` at the end.
    Append,
    /// Overwrite starting at byte `offset` (must be an existing page
    /// boundary; see crate docs for the alignment rules).
    WriteAt { offset: u64 },
}

/// Summary of one committed or pending update, as recorded by the version
/// manager and shipped to writers/readers.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WriteDesc {
    pub version: Version,
    pub kind: WriteKind,
    /// Pages written: `[page_lo, page_hi)`.
    pub page_lo: u64,
    pub page_hi: u64,
    /// Bytes written: `[byte_lo, byte_hi)` in the BLOB's byte space.
    pub byte_lo: u64,
    pub byte_hi: u64,
    /// Total pages in the BLOB as of this version.
    pub total_pages: u64,
    /// Total bytes in the BLOB as of this version.
    pub total_bytes: u64,
}

impl WriteDesc {
    /// Number of pages this update wrote.
    pub fn page_count(&self) -> u64 {
        self.page_hi - self.page_lo
    }

    /// Number of bytes this update wrote.
    pub fn byte_count(&self) -> u64 {
        self.byte_hi - self.byte_lo
    }

    /// True when this update wrote page `page`.
    pub fn touches_page(&self, page: u64) -> bool {
        (self.page_lo..self.page_hi).contains(&page)
    }

    /// True when this update wrote any page in `[lo, hi)`.
    pub fn touches_range(&self, lo: u64, hi: u64) -> bool {
        self.page_lo < hi && lo < self.page_hi
    }
}

/// Smallest power of two `>= n` (and `>= 1`).
pub fn next_pow2(n: u64) -> u64 {
    n.max(1).next_power_of_two()
}

/// Tree span (number of leaf slots) for a BLOB with `total_pages` pages.
pub fn tree_span(total_pages: u64) -> u64 {
    next_pow2(total_pages)
}

/// The version that last wrote `page`, looking at descriptors with
/// `version <= up_to`. `descs` must be ordered by version ascending.
/// Returns `None` when the page does not exist at `up_to` (tail-replacing
/// writes may shrink the page count, so existence is checked against the
/// snapshot's total, not just against who ever touched the page).
///
/// These scan functions are O(V); they are the historical-version fallback
/// and the oracle the property tests hold [`crate::desc_index::DescIndex`]
/// (the O(log) latest-version index) against.
pub fn owner_of_page(descs: &[WriteDesc], up_to: Version, page: u64) -> Option<&WriteDesc> {
    let cur = descs.iter().rev().find(|d| d.version <= up_to)?;
    if page >= cur.total_pages {
        return None;
    }
    descs
        .iter()
        .rev()
        .filter(|d| d.version <= up_to)
        .find(|d| d.touches_page(page))
}

/// The latest version `<= up_to` that wrote any *live* page in `[lo, hi)`
/// (the range is clamped to the snapshot's page count, mirroring
/// [`owner_of_page`]'s existence rule).
pub fn latest_toucher(descs: &[WriteDesc], up_to: Version, lo: u64, hi: u64) -> Option<&WriteDesc> {
    let cur = descs.iter().rev().find(|d| d.version <= up_to)?;
    let hi = hi.min(cur.total_pages);
    if lo >= hi {
        return None;
    }
    descs
        .iter()
        .rev()
        .filter(|d| d.version <= up_to)
        .find(|d| d.touches_range(lo, hi))
}

/// Byte offset of the start of page `page` as of version `up_to`.
///
/// Within a single update only the *last* page may be short, so offsets
/// interior to an update are affine in the page index; `page ==
/// total_pages` maps to the BLOB's byte length.
pub fn byte_offset_of_page(
    descs: &[WriteDesc],
    up_to: Version,
    page_size: u64,
    page: u64,
) -> Option<u64> {
    let cur = descs.iter().rev().find(|d| d.version <= up_to)?;
    if page > cur.total_pages {
        return None;
    }
    if page == cur.total_pages {
        return Some(cur.total_bytes);
    }
    let d = owner_of_page(descs, up_to, page)?;
    Some(d.byte_lo + (page - d.page_lo) * page_size)
}

/// Byte length of the page-range `[lo, hi)` clamped to the BLOB end, as of
/// version `up_to`.
pub fn byte_len_of_range(
    descs: &[WriteDesc],
    up_to: Version,
    page_size: u64,
    lo: u64,
    hi: u64,
) -> Option<u64> {
    let cur = descs.iter().rev().find(|d| d.version <= up_to)?;
    let hi = hi.min(cur.total_pages);
    if lo >= hi {
        return Some(0);
    }
    let a = byte_offset_of_page(descs, up_to, page_size, lo)?;
    let b = byte_offset_of_page(descs, up_to, page_size, hi)?;
    Some(b - a)
}

/// Locate the page index whose byte offset is exactly `offset`
/// (`total_pages` for `offset == total_bytes`). Page start offsets are
/// strictly increasing, so binary search works. O(V·log) — the scan-based
/// oracle twin of [`crate::desc_index::DescIndex::page_at_boundary`].
pub fn page_at_boundary(
    descs: &[WriteDesc],
    up_to: Version,
    page_size: u64,
    offset: u64,
) -> Option<u64> {
    let total = descs.iter().rev().find(|d| d.version <= up_to)?.total_pages;
    let (mut lo, mut hi) = (0u64, total);
    while lo <= hi {
        let mid = lo + (hi - lo) / 2;
        let off = byte_offset_of_page(descs, up_to, page_size, mid)?;
        match off.cmp(&offset) {
            std::cmp::Ordering::Equal => return Some(mid),
            std::cmp::Ordering::Less => lo = mid + 1,
            std::cmp::Ordering::Greater => {
                if mid == 0 {
                    return None;
                }
                hi = mid - 1;
            }
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;

    fn d(version: Version, pl: u64, ph: u64, bl: u64, bh: u64, tp: u64, tb: u64) -> WriteDesc {
        WriteDesc {
            version,
            kind: WriteKind::Append,
            page_lo: pl,
            page_hi: ph,
            byte_lo: bl,
            byte_hi: bh,
            total_pages: tp,
            total_bytes: tb,
        }
    }

    // Three appends with page_size 100: v1 = 250 B (3 pages, short tail),
    // v2 = 100 B (1 page), v3 = 150 B (2 pages, short tail).
    fn history() -> Vec<WriteDesc> {
        vec![
            d(1, 0, 3, 0, 250, 3, 250),
            d(2, 3, 4, 250, 350, 4, 350),
            d(3, 4, 6, 350, 500, 6, 500),
        ]
    }

    #[test]
    fn pow2_helpers() {
        assert_eq!(next_pow2(0), 1);
        assert_eq!(next_pow2(1), 1);
        assert_eq!(next_pow2(3), 4);
        assert_eq!(next_pow2(4), 4);
        assert_eq!(next_pow2(5), 8);
        assert_eq!(tree_span(6), 8);
    }

    #[test]
    fn ownership_respects_version_ceiling() {
        let h = history();
        assert_eq!(owner_of_page(&h, 3, 0).unwrap().version, 1);
        assert_eq!(owner_of_page(&h, 3, 3).unwrap().version, 2);
        assert_eq!(owner_of_page(&h, 3, 5).unwrap().version, 3);
        assert!(owner_of_page(&h, 2, 5).is_none()); // page 5 does not exist at v2
        assert!(owner_of_page(&h, 3, 6).is_none());
    }

    #[test]
    fn ownership_with_overwrites() {
        let mut h = history();
        h.push(WriteDesc {
            version: 4,
            kind: WriteKind::Write,
            page_lo: 0,
            page_hi: 2,
            byte_lo: 0,
            byte_hi: 200,
            total_pages: 6,
            total_bytes: 500,
        });
        assert_eq!(owner_of_page(&h, 4, 0).unwrap().version, 4);
        assert_eq!(owner_of_page(&h, 4, 2).unwrap().version, 1); // untouched
        assert_eq!(owner_of_page(&h, 3, 0).unwrap().version, 1); // old snapshot intact
        assert_eq!(latest_toucher(&h, 4, 0, 4).unwrap().version, 4);
        assert_eq!(latest_toucher(&h, 4, 2, 3).unwrap().version, 1);
    }

    #[test]
    fn byte_offsets_account_for_short_tails() {
        let h = history();
        let ps = 100;
        assert_eq!(byte_offset_of_page(&h, 3, ps, 0), Some(0));
        assert_eq!(byte_offset_of_page(&h, 3, ps, 1), Some(100));
        assert_eq!(byte_offset_of_page(&h, 3, ps, 2), Some(200)); // short page holds [200,250)
        assert_eq!(byte_offset_of_page(&h, 3, ps, 3), Some(250));
        assert_eq!(byte_offset_of_page(&h, 3, ps, 4), Some(350));
        assert_eq!(byte_offset_of_page(&h, 3, ps, 5), Some(450));
        assert_eq!(byte_offset_of_page(&h, 3, ps, 6), Some(500)); // == total bytes
        assert_eq!(byte_offset_of_page(&h, 3, ps, 7), None);
        // At version 1 the blob is 250 bytes / 3 pages.
        assert_eq!(byte_offset_of_page(&h, 1, ps, 3), Some(250));
        assert_eq!(byte_offset_of_page(&h, 1, ps, 4), None);
    }

    #[test]
    fn shrunk_pages_are_not_owned() {
        // Tail-replacing writes may reduce the page count; pages beyond the
        // new total must not resolve to their pre-shrink writers.
        // v1: pages [0,100), [100,130); v2: page [130,200); v3 replaces the
        // tail from offset 100 with one full page -> 2 pages, 200 bytes.
        let h = vec![
            d(1, 0, 2, 0, 130, 2, 130),
            d(2, 2, 3, 130, 200, 3, 200),
            WriteDesc {
                version: 3,
                kind: WriteKind::Write,
                page_lo: 1,
                page_hi: 2,
                byte_lo: 100,
                byte_hi: 200,
                total_pages: 2,
                total_bytes: 200,
            },
        ];
        assert!(owner_of_page(&h, 3, 2).is_none());
        assert_eq!(owner_of_page(&h, 2, 2).unwrap().version, 2);
        assert!(latest_toucher(&h, 3, 2, 4).is_none());
        assert_eq!(latest_toucher(&h, 3, 1, 4).unwrap().version, 3);
    }

    #[test]
    fn boundary_lookup_round_trips_offsets() {
        let h = history();
        let ps = 100;
        for page in 0..=6 {
            let off = byte_offset_of_page(&h, 3, ps, page).unwrap();
            assert_eq!(page_at_boundary(&h, 3, ps, off), Some(page));
        }
        assert_eq!(page_at_boundary(&h, 3, ps, 125), None); // mid-page
        assert_eq!(page_at_boundary(&h, 3, ps, 501), None); // past EOF
        assert_eq!(page_at_boundary(&h, 1, ps, 250), Some(3));
        assert_eq!(page_at_boundary(&[], 1, ps, 0), None); // empty BLOB
    }

    #[test]
    fn range_byte_lengths_clamp_to_eof() {
        let h = history();
        let ps = 100;
        assert_eq!(byte_len_of_range(&h, 3, ps, 0, 8), Some(500)); // full span clamped
        assert_eq!(byte_len_of_range(&h, 3, ps, 2, 4), Some(150)); // short page + full page
        assert_eq!(byte_len_of_range(&h, 3, ps, 6, 8), Some(0));
        assert_eq!(byte_len_of_range(&h, 1, ps, 0, 4), Some(250));
    }
}
