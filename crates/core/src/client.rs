//! The BlobSeer client: implements the full write and read protocols on top
//! of the provider manager, providers, metadata DHT and version manager.
//!
//! Writes (paper §3.1.2): split into pages → store pages on providers — the
//! page streams of one update are *grouped by target provider* into one
//! batched `put_pages` per provider — → obtain a version + descriptor-index
//! snapshot from the version manager → write the metadata tree (batched,
//! one RPC per metadata server) → commit. Reads: snapshot lookup → resolve
//! the overlapped leaves — locally from a descriptor-index snapshot pinned
//! at the read version when one is available (fresh-snapshot shortcut: one
//! batched leaf get per metadata server, zero inner tree-node fetches), or
//! by breadth-first descent of the version's segment tree (one batched DHT
//! round per level) for historical versions — → fetch pages, grouped by
//! chosen replica into one batched `get_pages` per provider, with per-page
//! replica failover for the subset that fails → assemble.

use std::collections::BTreeMap;
use std::sync::Arc;

use fabric::{run_parallel, NodeId, Payload, Proc, TaskFn};
use parking_lot::Mutex;
use rand::Rng;

use crate::cluster::Services;
use crate::desc_index::DescIndex;
use crate::error::{BlobError, BlobResult};
use crate::lock_ranks;
use crate::meta::{collect_leaves, plan_write, LeafHit, NodeBody, NodeKey, PageRef, SnapshotInfo};
use crate::provider::Provider;
use crate::provider_manager::LeaseId;
use crate::read_cache::{LruMap, ReadCache, ReadCacheStats};
use crate::types::{BlobId, PageId, Version};
use crate::version_manager::UpdateKind;

/// Byte range + holders of one page, as reported by
/// [`BlobClient::page_locations`] — the primitive added for Hadoop's
/// data-location-aware scheduler (paper §3.2).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PageLocation {
    pub byte_off: u64,
    pub byte_len: u64,
    pub hosts: Vec<NodeId>,
}

/// A client handle; cheap to create, one per logical client. Caches the
/// freshest descriptor-index snapshot per BLOB so the version manager only
/// ships descriptor deltas past the cached watermark, and keeps a bounded
/// snapshot-scoped [`ReadCache`] of published pages and metadata leaves.
///
/// Every per-client cache is bounded: the descriptor/page-size/published
/// watermark maps evict by LRU at `client_index_cache_entries`, the read
/// cache at `read_cache_bytes` — client memory stays flat under
/// many-thousand-blob churn.
pub struct BlobClient {
    svc: Arc<Services>,
    desc_cache: Mutex<LruMap<BlobId, DescIndex>>,
    page_size_cache: Mutex<LruMap<BlobId, u64>>,
    /// Highest version of each blob this client has *observed published*
    /// (from a VM snapshot answer or its own awaited write). The read cache
    /// is only ever consulted — or fed — at or below this floor; pending
    /// versions can still be rewritten by a write-timeout force-complete,
    /// so nothing about them is cacheable.
    published_floor: Mutex<LruMap<BlobId, Version>>,
    cache: ReadCache,
}

impl BlobClient {
    pub(crate) fn new(svc: Arc<Services>) -> Self {
        let cache = ReadCache::new(svc.config.read_cache_bytes);
        Self::with_cache(svc, cache)
    }

    /// A client whose read cache never holds anything — every read takes
    /// the full fabric path. Used to compare cached vs uncached reads.
    pub(crate) fn uncached(svc: Arc<Services>) -> Self {
        Self::with_cache(svc, ReadCache::disabled())
    }

    fn with_cache(svc: Arc<Services>, cache: ReadCache) -> Self {
        let index_cap = svc.config.client_index_cache_entries;
        BlobClient {
            svc,
            desc_cache: Mutex::with_rank(LruMap::new(index_cap), lock_ranks::READ_CACHE),
            page_size_cache: Mutex::with_rank(LruMap::new(index_cap), lock_ranks::READ_CACHE),
            published_floor: Mutex::with_rank(LruMap::new(index_cap), lock_ranks::READ_CACHE),
            cache,
        }
    }

    /// Read-cache counters (hits/misses/evictions/residency) — deterministic
    /// currencies for benches and tests.
    pub fn cache_stats(&self) -> ReadCacheStats {
        self.cache.stats()
    }

    /// Entries currently held by the bounded index-side caches
    /// `(descriptors, page sizes, published watermarks)`.
    pub fn index_cache_entries(&self) -> (usize, usize, usize) {
        (
            self.desc_cache.lock().len(),
            self.page_size_cache.lock().len(),
            self.published_floor.lock().len(),
        )
    }

    /// Record that `version` of `blob` is published (monotone floor).
    fn note_published(&self, blob: BlobId, version: Version) {
        if version == 0 {
            return;
        }
        let mut floor = self.published_floor.lock();
        let cur = floor.get(&blob).copied().unwrap_or(0);
        if version > cur {
            floor.insert(blob, version, 1);
        }
    }

    /// Has this client observed `version` of `blob` as published? Purely
    /// local — the gate that keeps pending versions out of the read cache.
    fn is_published(&self, blob: BlobId, version: Version) -> bool {
        version > 0
            && self
                .published_floor
                .lock()
                .get(&blob)
                .is_some_and(|&f| version <= f)
    }

    /// Create a new BLOB (page size defaults to the deployment config).
    pub fn create(&self, p: &Proc, page_size: Option<u64>) -> BlobId {
        let id = self.svc.vm.create_blob(p, page_size);
        self.page_size_cache
            .lock()
            .insert(id, page_size.unwrap_or(self.svc.config.page_size), 1);
        id
    }

    /// Page size of `blob` (cached after first lookup).
    pub fn page_size(&self, p: &Proc, blob: BlobId) -> BlobResult<u64> {
        if let Some(ps) = self.page_size_cache.lock().get(&blob) {
            return Ok(*ps);
        }
        let ps = self.svc.vm.page_size_of(p, blob)?;
        self.page_size_cache.lock().insert(blob, ps, 1);
        Ok(ps)
    }

    /// Append `data` to the BLOB; returns the version this update created.
    pub fn append(&self, p: &Proc, blob: BlobId, data: Payload) -> BlobResult<Version> {
        self.update(p, blob, None, data)
    }

    /// Overwrite starting at byte `offset` (see crate docs for alignment
    /// rules); returns the version created.
    pub fn write(&self, p: &Proc, blob: BlobId, offset: u64, data: Payload) -> BlobResult<Version> {
        self.update(p, blob, Some(offset), data)
    }

    fn update(
        &self,
        p: &Proc,
        blob: BlobId,
        offset: Option<u64>,
        data: Payload,
    ) -> BlobResult<Version> {
        if data.is_empty() {
            return Err(BlobError::EmptyWrite);
        }
        let ps = self.page_size(p, blob)?;
        let nbytes = data.len();
        let chunks = data.chunks(ps);

        // Step 1: store pages on providers, fully in parallel.
        let manifest = Arc::new(self.store_pages(p, &chunks)?);

        // Step 2: get a version plus an index snapshot pinned at it. The VM
        // only ships (and charges for) descriptors after the cached
        // watermark; the snapshot itself is an O(1) Arc share.
        let known = self.known_desc_version(blob);
        let kind = match offset {
            None => UpdateKind::Append,
            Some(o) => UpdateKind::WriteAt { offset: o },
        };
        let (desc, index) = self
            .svc
            .vm
            .assign(p, blob, kind, nbytes, manifest.clone(), known)?;
        self.refresh_desc_cache(blob, &index);

        // Step 3: write the metadata tree, batched — one RPC per metadata
        // server instead of one per node.
        self.svc
            .dht
            .put_batch(p, plan_write(blob, &index, &desc, &manifest))?;

        // Step 4: commit; optionally wait for publication (read-your-writes).
        self.svc.vm.commit(p, blob, desc.version)?;
        if self.svc.config.wait_published {
            self.svc.vm.wait_published(p, blob, desc.version)?;
            self.note_published(blob, desc.version);
        }
        Ok(desc.version)
    }

    fn store_pages(&self, p: &Proc, chunks: &[Payload]) -> BlobResult<Vec<PageRef>> {
        let repl = self.svc.config.replication;
        let ids: Vec<PageId> = chunks
            .iter()
            .map(|_| {
                let mut rng = p.rng();
                PageId(rng.gen(), rng.gen())
            })
            .collect();
        // Reserve exact per-chunk byte counts (the tail chunk may be short),
        // so the release paths — which hand back `chunk.len()` — balance.
        // Every reservation rides the returned lease: if this writer dies
        // anywhere below, the provider manager's reaper reclaims whatever
        // never became a stored page.
        let pages: Vec<(PageId, u64)> = ids
            .iter()
            .zip(chunks)
            .map(|(&id, c)| (id, c.len()))
            .collect();
        let (lease, placements) = self.svc.pm.allocate(p, &pages, repl, &[])?;
        let landed = self.stream_pages(p, chunks, &ids, lease, &placements);
        // However the stores ended, the lease is settled: landed pages
        // consumed their reservations at the providers, failed ones were
        // released inline — nothing is left for the reaper.
        self.svc.pm.settle(p, lease);
        let landed = landed?;

        // Emit manifests with replicas in allocation order (primary first),
        // failover replacements after.
        Ok(ids
            .into_iter()
            .zip(chunks)
            .zip(placements)
            .zip(landed)
            .map(|(((id, chunk), replicas), landed)| {
                let mut providers: Vec<NodeId> = replicas
                    .iter()
                    .map(|pr| pr.node())
                    .filter(|n| landed.contains(n))
                    .collect();
                let replacements: Vec<NodeId> = landed
                    .iter()
                    .filter(|n| !providers.contains(n))
                    .copied()
                    .collect();
                providers.extend(replacements);
                PageRef {
                    id,
                    byte_len: chunk.len(),
                    providers,
                }
            })
            .collect())
    }

    /// Step 1's data movement: stream every (page, replica) to its target
    /// and fail over the subset that did not land. Returns, per page, the
    /// nodes now holding it. Reservation bookkeeping is exact on every exit
    /// path — the caller settles the lease afterwards.
    fn stream_pages(
        &self,
        p: &Proc,
        chunks: &[Payload],
        ids: &[PageId],
        lease: LeaseId,
        placements: &[Vec<Arc<Provider>>],
    ) -> BlobResult<Vec<Vec<NodeId>>> {
        // analyze: allow-fn(panic-index): `ids`, `chunks`, `placements` and
        // `landed` are parallel arrays of equal length; every subscript `i`
        // is an enumerate() index over one of them
        let repl = self.svc.config.replication;
        // Group every (page, replica) stream by its target provider: one
        // batched put_pages per provider carries that provider's whole share
        // of the update, instead of one RPC per page-replica. BTreeMap keeps
        // the grouping deterministic across runs.
        let mut batches: BTreeMap<u32, (Arc<Provider>, Vec<usize>)> = BTreeMap::new();
        for (i, replicas) in placements.iter().enumerate() {
            for prov in replicas {
                batches
                    .entry(prov.node().0)
                    .or_insert_with(|| (prov.clone(), Vec::new()))
                    .1
                    .push(i);
            }
        }
        type BatchResult = (NodeId, Vec<(usize, BlobResult<()>)>);
        let mut tasks: Vec<TaskFn<BatchResult>> = Vec::with_capacity(batches.len());
        for (_, (prov, idxs)) in batches {
            let pages: Vec<(PageId, Payload)> =
                idxs.iter().map(|&i| (ids[i], chunks[i].clone())).collect();
            tasks.push(Box::new(move |wp: &Proc| {
                let node = prov.node();
                let results = prov.put_pages(wp, pages);
                (node, idxs.into_iter().zip(results).collect())
            }));
        }

        // Collect per-(page, replica) outcomes. Failed streams hand their
        // capacity reservation back immediately and queue for failover.
        let mut landed: Vec<Vec<NodeId>> = vec![Vec::new(); chunks.len()];
        let mut failures: Vec<(usize, Vec<NodeId>)> = Vec::new(); // (page, dead nodes)
        for (node, results) in run_parallel(p, "page-write", tasks) {
            for (i, res) in results {
                match res {
                    Ok(()) => landed[i].push(node),
                    Err(_) => {
                        self.svc.pm.release(
                            p,
                            lease,
                            &self.svc.provider_map[&node],
                            ids[i],
                            chunks[i].len(),
                        );
                        match failures.iter_mut().find(|(pg, _)| *pg == i) {
                            Some((_, dead)) => dead.push(node),
                            None => failures.push((i, vec![node])),
                        }
                    }
                }
            }
        }

        // Failover, page by page: re-place each missing replica on a fresh
        // provider, excluding nodes observed dead and replicas already
        // holding this page (a replacement must not collide with them).
        for (i, mut dead) in failures {
            while landed[i].len() < repl {
                let mut attempts = 1; // the batched stream already failed once
                loop {
                    let mut exclude = dead.clone();
                    exclude.extend(landed[i].iter().copied());
                    let target = self.svc.pm.any_alive(p, &exclude)?;
                    // The replacement reservation inherits the write's
                    // lease, keeping a mid-failover death reclaimable.
                    self.svc
                        .pm
                        .adopt(p, lease, &target, ids[i], chunks[i].len());
                    match target.put_page(p, ids[i], chunks[i].clone()) {
                        Ok(()) => {
                            landed[i].push(target.node());
                            break;
                        }
                        Err(BlobError::ProviderDown { node }) => {
                            self.svc
                                .pm
                                .release(p, lease, &target, ids[i], chunks[i].len());
                            dead.push(NodeId(node));
                            attempts += 1;
                            if attempts > 3 {
                                return Err(BlobError::PageUnavailable {
                                    detail: format!(
                                        "could not place page {:?} after {attempts} attempts",
                                        ids[i]
                                    ),
                                });
                            }
                        }
                        Err(e) => {
                            self.svc
                                .pm
                                .release(p, lease, &target, ids[i], chunks[i].len());
                            return Err(e);
                        }
                    }
                }
            }
        }
        Ok(landed)
    }

    /// Read `len` bytes at `offset` from `version` (`None` = latest
    /// published snapshot).
    ///
    /// A read of the latest snapshot takes the fresh-snapshot shortcut: the
    /// offset→page mapping is answered locally from the descriptor-index
    /// cache (refreshed with one descriptor-delta sync when stale) and only
    /// the leaf nodes are fetched from the DHT — the inner tree levels are
    /// skipped entirely, the same shape [`Self::page_locations`] uses.
    /// Historical versions keep the tree walk, the only structure that can
    /// answer them.
    pub fn read(
        &self,
        p: &Proc,
        blob: BlobId,
        version: Option<Version>,
        offset: u64,
        len: u64,
    ) -> BlobResult<Payload> {
        let snap = self.svc.vm.snapshot(p, blob, version)?;
        // The VM only answers snapshots for published versions — this read's
        // version is now known-published and its pages/leaves cacheable.
        self.note_published(blob, snap.version);
        self.read_snapshot_inner(p, blob, &snap, offset, len, version.is_none())
    }

    /// Read against an already-resolved snapshot (saves the VM round-trip;
    /// BSFS pins snapshots at open time).
    ///
    /// The requested range is clamped to the snapshot end, exactly like
    /// [`Self::page_locations`]: a read at or past EOF returns a short
    /// (possibly empty) payload instead of an error, and `offset + len`
    /// cannot overflow. When the client's cached descriptor-index snapshot
    /// is pinned at exactly `snap.version` (writers after their own append,
    /// readers after a locality query), the leaf keys are computed locally
    /// and the inner tree levels are never fetched; a pinned snapshot is
    /// never *synced* for here, though, because `snap` may be historical.
    pub fn read_snapshot(
        &self,
        p: &Proc,
        blob: BlobId,
        snap: &SnapshotInfo,
        offset: u64,
        len: u64,
    ) -> BlobResult<Payload> {
        self.read_snapshot_inner(p, blob, snap, offset, len, false)
    }

    fn read_snapshot_inner(
        &self,
        p: &Proc,
        blob: BlobId,
        snap: &SnapshotInfo,
        offset: u64,
        len: u64,
        latest_requested: bool,
    ) -> BlobResult<Payload> {
        // analyze: allow-fn(panic-index): `parts` is sized to `hits.len()`
        // and every subscript `i` is an enumerate() index over `hits`
        let end = offset.saturating_add(len).min(snap.total_bytes);
        if offset >= end {
            return Ok(Payload::empty());
        }
        // Published versions are immutable, so the read cache is consulted
        // before any fabric traffic — but only at or below this client's
        // published-version floor: a pending version's tree can still be
        // rewritten (write-timeout force-complete), so it is never cached.
        let published = self.is_published(blob, snap.version);
        let hits = match self.leaves_via_index(p, blob, snap, offset, end, latest_requested)? {
            Some(hits) => hits,
            None => self.leaves(p, blob, snap, offset, end)?,
        };
        let slice_to_range = |hit: &LeafHit, full: &Payload| {
            let (a, b) = (
                offset.max(hit.blob_byte_off),
                end.min(hit.blob_byte_off + hit.page.byte_len),
            );
            full.slice(a - hit.blob_byte_off, b - a)
        };
        let mut parts: Vec<Option<Payload>> = vec![None; hits.len()];
        if published {
            for (i, hit) in hits.iter().enumerate() {
                if let Some(full) = self.cache.get_page(blob, snap.version, hit.page.id) {
                    parts[i] = Some(slice_to_range(hit, &full));
                }
            }
        }
        // Choose one replica per remaining page up front — a dedicated read
        // replica holding the page when the deployment runs them (published
        // versions only; shields primaries from reader storms), else the
        // local provider short-circuit, else a random primary replica — and
        // group the fetches by chosen provider: one batched get_pages RPC
        // per provider moves its whole share of the range. Only the pages
        // that fail inside a batch fall back to per-page replica failover.
        let mut groups: BTreeMap<u32, Vec<usize>> = BTreeMap::new();
        for (i, hit) in hits.iter().enumerate() {
            if parts[i].is_some() {
                continue;
            }
            let node = if published {
                pick_read_node(p, &self.svc, hit)
            } else {
                pick_replica(p, hit)
            };
            groups.entry(node).or_default().push(i);
        }
        type GroupResult = Vec<(usize, BlobResult<Payload>)>;
        let mut tasks: Vec<TaskFn<GroupResult>> = Vec::with_capacity(groups.len());
        for (node, idxs) in groups {
            let node = NodeId(node);
            let svc = self.svc.clone();
            let group_hits: Vec<LeafHit> = idxs.iter().map(|&i| hits[i].clone()).collect();
            tasks.push(Box::new(move |wp: &Proc| {
                fetch_group(wp, &svc, node, &group_hits)
                    .into_iter()
                    .zip(idxs)
                    .map(|(r, i)| (i, r))
                    .collect()
            }));
        }
        for group in run_parallel(p, "page-read", tasks) {
            for (i, res) in group {
                let hit = &hits[i];
                let full = res?;
                if published {
                    self.cache
                        .put_page(blob, snap.version, hit.page.id, full.clone());
                }
                parts[i] = Some(slice_to_range(hit, &full));
            }
        }
        let parts: Vec<Payload> = parts
            .into_iter()
            .map(|o| {
                o.ok_or_else(|| BlobError::Internal {
                    detail: "page-read batch answered fewer results than requested".into(),
                })
            })
            .collect::<BlobResult<_>>()?;
        Ok(Payload::concat(&parts))
    }

    fn leaves(
        &self,
        p: &Proc,
        blob: BlobId,
        snap: &SnapshotInfo,
        byte_lo: u64,
        byte_hi: u64,
    ) -> BlobResult<Vec<LeafHit>> {
        // Breadth-first descent: one batched DHT round per tree level, one
        // RPC per (level, server) pair.
        let dht = &self.svc.dht;
        let mut fetch = |keys: &[crate::meta::NodeKey]| dht.get_batch(p, keys);
        collect_leaves(&mut fetch, blob, snap, byte_lo, byte_hi)
    }

    /// The fresh-snapshot shortcut shared by [`Self::read`] and
    /// [`Self::page_locations`]: when a descriptor-index snapshot pinned at
    /// exactly `snap.version` is available, answer which pages overlap
    /// `[byte_lo, byte_hi)` — and where each starts — locally, and fetch
    /// *only* the leaf (provider-set) nodes in one batched DHT get per
    /// metadata server: zero inner tree-node gets. `None` means no pinned
    /// index can be had (historical version, empty BLOB, or a publication
    /// race) and the caller must walk the tree.
    ///
    /// The caller clamps: requires `byte_lo < byte_hi <= snap.total_bytes`.
    fn leaves_via_index(
        &self,
        p: &Proc,
        blob: BlobId,
        snap: &SnapshotInfo,
        byte_lo: u64,
        byte_hi: u64,
        latest_requested: bool,
    ) -> BlobResult<Option<Vec<LeafHit>>> {
        // analyze: allow-fn(panic-index): `keys`, `byte_offs` and `pages`
        // are parallel arrays of equal length and `missing` holds indices
        // drawn from `0..keys.len()`
        let Some(ix) = self.index_at(p, blob, snap, latest_requested)? else {
            return Ok(None);
        };
        // The index answers which pages overlap the range and who owns each
        // (the owner version's tree is the one holding the live leaf).
        // The caller clamps the range below EOF, so a miss here means the
        // pinned index disagrees with its own snapshot descriptor — an
        // internal contract breach, not a user error.
        let index_gap = |what: &str| BlobError::Internal {
            detail: format!("pinned index at v{} has no {what}", snap.version),
        };
        let page_lo = ix
            .page_containing(byte_lo)
            .ok_or_else(|| index_gap("page containing the clamped offset"))?;
        let page_hi = ix
            .page_containing(byte_hi - 1)
            .ok_or_else(|| index_gap("page containing the clamped end"))?
            + 1;
        let mut keys = Vec::with_capacity((page_hi - page_lo) as usize);
        let mut byte_offs = Vec::with_capacity(keys.capacity());
        for page in page_lo..page_hi {
            let owner = ix
                .owner_of_page(page)
                .ok_or_else(|| index_gap("owner for a live page"))?;
            keys.push(NodeKey {
                blob,
                version: owner,
                page_lo: page,
                page_hi: page + 1,
            });
            byte_offs.push(
                ix.byte_offset_of_page(page)
                    .ok_or_else(|| index_gap("byte offset for a live page"))?,
            );
        }
        // Leaf nodes of published versions are immutable: probe the read
        // cache first and fetch only the misses from the DHT (one batched
        // get per metadata server). A leaf's NodeKey names its owner
        // version, so entries are shared by every later snapshot that still
        // maps the page — the gate stays the *read* version's publication.
        let published = self.is_published(blob, snap.version);
        let mut pages: Vec<Option<PageRef>> = vec![None; keys.len()];
        if published {
            for (i, key) in keys.iter().enumerate() {
                pages[i] = self.cache.get_leaf(*key);
            }
        }
        let missing: Vec<usize> = (0..keys.len()).filter(|&i| pages[i].is_none()).collect();
        if !missing.is_empty() {
            let miss_keys: Vec<NodeKey> = missing.iter().map(|&i| keys[i]).collect();
            let bodies = self.svc.dht.get_batch(p, &miss_keys)?;
            for (&i, body) in missing.iter().zip(bodies) {
                match body {
                    Some(NodeBody::Leaf(page)) => {
                        if published {
                            self.cache.put_leaf(keys[i], page.clone());
                        }
                        pages[i] = Some(page);
                    }
                    _ => {
                        return Err(BlobError::MetadataMissing {
                            blob: keys[i].blob,
                            version: keys[i].version,
                            page_lo: keys[i].page_lo,
                            page_hi: keys[i].page_hi,
                        })
                    }
                }
            }
        }
        keys.iter()
            .zip(byte_offs)
            .zip(pages)
            .map(|((key, blob_byte_off), page)| {
                let page = page.ok_or_else(|| BlobError::Internal {
                    detail: "leaf resolution left a hole in the page list".into(),
                })?;
                Ok(LeafHit {
                    page_index: key.page_lo,
                    blob_byte_off,
                    page,
                })
            })
            .collect::<BlobResult<Vec<LeafHit>>>()
            .map(Some)
    }

    /// Snapshot facts for a version (`None` = latest published).
    pub fn snapshot(
        &self,
        p: &Proc,
        blob: BlobId,
        version: Option<Version>,
    ) -> BlobResult<SnapshotInfo> {
        let snap = self.svc.vm.snapshot(p, blob, version)?;
        self.note_published(blob, snap.version);
        Ok(snap)
    }

    /// Byte size of a snapshot.
    pub fn size(&self, p: &Proc, blob: BlobId, version: Option<Version>) -> BlobResult<u64> {
        Ok(self.snapshot(p, blob, version)?.total_bytes)
    }

    /// Latest published version number.
    pub fn latest(&self, p: &Proc, blob: BlobId) -> BlobResult<Version> {
        let v = self.svc.vm.latest(p, blob)?;
        self.note_published(blob, v);
        Ok(v)
    }

    /// Retire a BLOB: every subsequent operation on it answers
    /// [`BlobError::NoSuchBlob`], its pending writes are abandoned (their
    /// provider reservations fall to the lease reaper), and its registry
    /// slot is dropped by a later epoch-based GC pass — see
    /// [`crate::version_manager::VersionManager::gc_registry`]. BSFS calls
    /// this when a file is deleted from the namespace.
    pub fn delete(&self, p: &Proc, blob: BlobId) -> BlobResult<()> {
        self.svc.vm.delete_blob(p, blob)?;
        self.desc_cache.lock().remove(&blob);
        self.page_size_cache.lock().remove(&blob);
        // Read-cache entries for the deleted blob age out by LRU; the floor
        // entry goes now so a recreated registry can never be confused (blob
        // ids are never reused, this is belt-and-braces).
        self.published_floor.lock().remove(&blob);
        Ok(())
    }

    /// Page→provider distribution for a byte range — the primitive the
    /// paper adds so the Hadoop scheduler can see data locality (§3.2).
    ///
    /// The offset→page mapping is answered *locally* from the client's
    /// descriptor-index snapshot whenever one pinned at the queried version
    /// is available (refreshing the cache with one descriptor-delta sync
    /// from the version manager when the latest snapshot was asked for), so
    /// only the leaf (provider-set) nodes are fetched from the DHT — in one
    /// batched get per metadata server, with zero inner tree-node gets.
    /// Historical versions fall back to the tree walk, which is the only
    /// structure that can answer them.
    pub fn page_locations(
        &self,
        p: &Proc,
        blob: BlobId,
        version: Option<Version>,
        offset: u64,
        len: u64,
    ) -> BlobResult<Vec<PageLocation>> {
        let snap = self.svc.vm.snapshot(p, blob, version)?;
        self.note_published(blob, snap.version);
        if len == 0 {
            return Ok(Vec::new());
        }
        let end = offset.saturating_add(len).min(snap.total_bytes);
        if offset >= end {
            return Ok(Vec::new());
        }
        let hits = match self.leaves_via_index(p, blob, &snap, offset, end, version.is_none())? {
            Some(hits) => hits,
            // Historical version (or a publication race): walk the tree.
            None => self.leaves(p, blob, &snap, offset, end)?,
        };
        Ok(hits
            .into_iter()
            .map(|h| PageLocation {
                byte_off: h.blob_byte_off,
                byte_len: h.page.byte_len,
                hosts: h.page.providers,
            })
            .collect())
    }

    /// A descriptor-index snapshot pinned at exactly `snap.version`, if one
    /// can be had: the cached one when fresh, else — only when the caller
    /// asked for the latest snapshot — a one-RPC descriptor-delta sync from
    /// the version manager. `None` means the caller must walk the tree.
    fn index_at(
        &self,
        p: &Proc,
        blob: BlobId,
        snap: &SnapshotInfo,
        latest_requested: bool,
    ) -> BlobResult<Option<DescIndex>> {
        if snap.version == 0 {
            return Ok(None);
        }
        let known = {
            let mut cache = self.desc_cache.lock();
            match cache.get(&blob) {
                Some(ix) if ix.version() == snap.version => return Ok(Some(ix.clone())),
                Some(ix) => ix.version(),
                None => 0,
            }
        };
        if !latest_requested {
            return Ok(None);
        }
        let ix = self.svc.vm.sync_index(p, blob, known)?;
        self.refresh_desc_cache(blob, &ix);
        // A publication racing between the snapshot call and the sync can
        // skew the two apart; then only the tree can answer.
        Ok((ix.version() == snap.version).then_some(ix))
    }

    /// Highest descriptor-index version this client has cached for `blob`
    /// (0 when none). The guard lives only for this probe — callers go on to
    /// put wire traffic down, which must never happen under a cache lock.
    fn known_desc_version(&self, blob: BlobId) -> Version {
        self.desc_cache
            .lock()
            .get(&blob)
            .map_or(0, |ix| ix.version())
    }

    /// Install `ix` as the cached snapshot for `blob` unless a newer one is
    /// already there: concurrent refreshers race, snapshots are cumulative,
    /// so the highest version wins.
    fn refresh_desc_cache(&self, blob: BlobId, ix: &DescIndex) {
        let mut cache = self.desc_cache.lock();
        let newer = match cache.get(&blob) {
            Some(cur) => cur.version() < ix.version(),
            None => true,
        };
        if newer {
            cache.insert(blob, ix.clone(), 1);
        }
    }
}

/// Choose where a batched read of a **published** page goes when the
/// deployment runs dedicated read replicas: the local primary when it holds
/// the page (a short-circuit read is free), else the page's hash-designated
/// read replica if it is alive and has synced the page — spreading reader
/// load across the replica tier and off the primaries — else the ordinary
/// primary-replica choice. A replica is only ever *preferred*, never
/// required: one that has not synced the page yet (or sits crash-wiped) is
/// skipped here and by failover, so a stale replica can never serve a
/// version it lacks.
fn pick_read_node(p: &Proc, svc: &Services, hit: &LeafHit) -> u32 {
    // analyze: allow-fn(panic-index): replica subscripts are `% n` of the
    // non-empty replica vector
    if hit.page.providers.contains(&p.node()) {
        return p.node().0;
    }
    let replicas = &svc.replicas;
    let n = replicas.len();
    if n > 0 {
        let id = hit.page.id;
        let start = ((id.0 ^ id.1) % n as u64) as usize;
        for k in 0..n {
            let r = &replicas[(start + k) % n];
            if r.is_alive() && r.has_page(id) {
                return r.node().0;
            }
        }
    }
    pick_replica(p, hit)
}

/// Choose the replica a batched read pulls `hit` from: the local provider
/// when one holds the page (short-circuit read), a uniformly random replica
/// otherwise. Returns the raw node id; pages with no replicas group under
/// `u32::MAX` and resolve to a loud failover error.
fn pick_replica(p: &Proc, hit: &LeafHit) -> u32 {
    // analyze: allow-fn(panic-index): subscripts are 0 under a len==1 match
    // arm and gen_range(0..n) under the len==n arm — in-bounds by match
    let providers = &hit.page.providers;
    if providers.contains(&p.node()) {
        return p.node().0;
    }
    match providers.len() {
        0 => u32::MAX,
        1 => providers[0].0,
        n => providers[p.rng().gen_range(0..n)].0,
    }
}

/// Fetch a group of pages whose chosen replica is `node`, in one batched
/// `get_pages` exchange. Pages the batch could not serve (or an unknown
/// chosen node) fall back to per-page replica failover.
fn fetch_group(
    p: &Proc,
    svc: &Arc<Services>,
    node: NodeId,
    hits: &[LeafHit],
) -> Vec<BlobResult<Payload>> {
    let Some(prov) = svc.provider_map.get(&node) else {
        // The chosen replica is not a known provider (misrouted metadata or
        // a page with no replicas at all): resolve page by page; failover
        // reports the unknown nodes in its error detail.
        return hits
            .iter()
            .map(|h| fetch_with_failover(p, svc, h, &[]))
            .collect();
    };
    let ids: Vec<PageId> = hits.iter().map(|h| h.page.id).collect();
    prov.get_pages(p, &ids)
        .into_iter()
        .zip(hits)
        .map(|(res, hit)| match res {
            Ok(data) => {
                debug_assert_eq!(data.len(), hit.page.byte_len);
                Ok(data)
            }
            // Only this page failed inside the batch: retry the remaining
            // replicas, excluding the provider just tried.
            Err(_) => fetch_with_failover(p, svc, hit, &[node]),
        })
        .collect()
}

fn fetch_with_failover(
    p: &Proc,
    svc: &Arc<Services>,
    hit: &LeafHit,
    exclude: &[NodeId],
) -> BlobResult<Payload> {
    // Prefer a local replica (short-circuit read), then random order.
    let mut order: Vec<NodeId> = hit
        .page
        .providers
        .iter()
        .copied()
        .filter(|n| !exclude.contains(n))
        .collect();
    // Read replicas that have synced this page widen the failover set:
    // pages are content-addressed by globally unique id, so any holder
    // serves identical bytes. `has_page` keeps a stale replica out.
    for r in &svc.replicas {
        let n = r.node();
        if !exclude.contains(&n) && !order.contains(&n) && r.has_page(hit.page.id) {
            order.push(n);
        }
    }
    {
        let mut rng = p.rng();
        use rand::seq::SliceRandom;
        order.shuffle(&mut *rng);
    }
    if let Some(i) = order.iter().position(|n| *n == p.node()) {
        order.swap(0, i);
    }
    // Replica nodes the provider map cannot resolve: almost certainly
    // misrouted/corrupt metadata, so they must show up in the diagnostics
    // rather than being skipped silently.
    let mut unknown: Vec<NodeId> = Vec::new();
    let mut last_err: Option<BlobError> = None;
    for node in order {
        let Some(prov) = svc.provider_map.get(&node) else {
            unknown.push(node);
            continue;
        };
        match prov.get_page(p, hit.page.id) {
            Ok(data) => {
                debug_assert_eq!(data.len(), hit.page.byte_len);
                return Ok(data);
            }
            Err(e) => last_err = Some(e),
        }
    }
    let mut detail = match (&last_err, hit.page.providers.is_empty()) {
        (_, true) => format!("page {:?} has no replicas", hit.page.id),
        (Some(e), _) => format!(
            "all replicas failed for page {:?}: last error: {e}",
            hit.page.id
        ),
        (None, _) => format!("no reachable replica of page {:?} was tried", hit.page.id),
    };
    let join = |nodes: &[NodeId]| {
        nodes
            .iter()
            .map(|n| n.to_string())
            .collect::<Vec<_>>()
            .join(", ")
    };
    if !exclude.is_empty() {
        detail.push_str(&format!(
            "; batched fetch already failed on [{}]",
            join(exclude)
        ));
    }
    if !unknown.is_empty() {
        detail.push_str(&format!(
            "; replica nodes [{}] are not in the provider map (misrouted metadata?)",
            join(&unknown)
        ));
    }
    Err(BlobError::PageUnavailable { detail })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cluster::Layout;
    use crate::config::BlobSeerConfig;
    use crate::dht::{MetaDht, MetaServer};
    use crate::provider_manager::ProviderManager;
    use crate::version_manager::VersionManager;
    use fabric::{ClusterSpec, Fabric};
    use std::collections::HashMap;

    /// Hand-built service bundle whose provider map deliberately misses a
    /// node, simulating misrouted/corrupt metadata.
    fn services_with_unmapped_node(fx: &Fabric) -> Arc<Services> {
        let providers: Vec<Arc<Provider>> = vec![Arc::new(Provider::new_mem(NodeId(1)))];
        let provider_map: HashMap<NodeId, Arc<Provider>> =
            providers.iter().map(|pr| (pr.node(), pr.clone())).collect();
        let dht = Arc::new(MetaDht::new(vec![Arc::new(MetaServer::new(NodeId(0)))], 0));
        let config = BlobSeerConfig::test_small(100);
        Arc::new(Services {
            vm: Arc::new(VersionManager::new(
                NodeId(0),
                fx.clone(),
                dht.clone(),
                100,
                64,
                0,
                crate::config::Timeouts::default().with_write_timeout(None),
            )),
            pm: Arc::new(ProviderManager::new(
                NodeId(0),
                fx.clone(),
                providers.clone(),
                config.alloc,
                64,
                None,
            )),
            dht,
            providers,
            replicas: Vec::new(),
            provider_map,
            config,
            layout: Layout::compact(fx.spec()),
            reaper_paused: std::sync::atomic::AtomicBool::new(false),
            replica_sync: crate::cluster::ReplicaSync::default(),
        })
    }

    #[test]
    fn failover_error_surfaces_unknown_replica_nodes() {
        let fx = Fabric::sim(ClusterSpec::tiny(4));
        let svc = services_with_unmapped_node(&fx);
        svc.providers[0].kill(); // the one known replica is down too
        let h = fx.spawn(NodeId(0), "t", move |p| {
            let hit = LeafHit {
                page_index: 0,
                blob_byte_off: 0,
                page: PageRef {
                    id: PageId(7, 7),
                    byte_len: 10,
                    // Node 9 is not in the provider map; node 1 is but dead.
                    providers: vec![NodeId(9), NodeId(1)],
                },
            };
            let msg = fetch_with_failover(p, &svc, &hit, &[])
                .unwrap_err()
                .to_string();
            assert!(
                msg.contains("not in the provider map"),
                "unknown replicas must be diagnosable, got: {msg}"
            );
            assert!(
                msg.contains("n9"),
                "the unknown node id must be named: {msg}"
            );
            assert!(
                msg.contains("down"),
                "the dead replica's error must survive as last error: {msg}"
            );
            // Only unknown replicas: still a loud, specific diagnosis.
            let hit2 = LeafHit {
                page_index: 0,
                blob_byte_off: 0,
                page: PageRef {
                    id: PageId(8, 8),
                    byte_len: 10,
                    providers: vec![NodeId(9)],
                },
            };
            let msg2 = fetch_with_failover(p, &svc, &hit2, &[])
                .unwrap_err()
                .to_string();
            assert!(msg2.contains("no reachable replica"), "got: {msg2}");
            assert!(msg2.contains("not in the provider map"), "got: {msg2}");
            // No replicas at all.
            let hit3 = LeafHit {
                page_index: 0,
                blob_byte_off: 0,
                page: PageRef {
                    id: PageId(9, 9),
                    byte_len: 10,
                    providers: vec![],
                },
            };
            let msg3 = fetch_with_failover(p, &svc, &hit3, &[])
                .unwrap_err()
                .to_string();
            assert!(msg3.contains("no replicas"), "got: {msg3}");
        });
        fx.run();
        h.take().unwrap();
    }
}
