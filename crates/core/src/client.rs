//! The BlobSeer client: implements the full write and read protocols on top
//! of the provider manager, providers, metadata DHT and version manager.
//!
//! Writes (paper §3.1.2): split into pages → store pages on providers *in
//! parallel* → obtain a version + descriptor-index snapshot from the version
//! manager → write the metadata tree (batched, one RPC per metadata server)
//! → commit. Reads: snapshot lookup → breadth-first descent of the version's
//! segment tree (one batched DHT round per level) → fetch pages (in
//! parallel, with replica failover) → assemble.

use std::collections::{HashMap, VecDeque};
use std::sync::Arc;

use fabric::{run_parallel, NodeId, Payload, Proc, TaskFn};
use parking_lot::Mutex;
use rand::Rng;

use crate::cluster::Services;
use crate::desc_index::DescIndex;
use crate::error::{BlobError, BlobResult};
use crate::meta::{collect_leaves, plan_write, LeafHit, PageRef, SnapshotInfo};
use crate::provider::Provider;
use crate::types::{BlobId, PageId, Version};
use crate::version_manager::UpdateKind;

/// Byte range + holders of one page, as reported by
/// [`BlobClient::page_locations`] — the primitive added for Hadoop's
/// data-location-aware scheduler (paper §3.2).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PageLocation {
    pub byte_off: u64,
    pub byte_len: u64,
    pub hosts: Vec<NodeId>,
}

/// A client handle; cheap to create, one per logical client. Caches the
/// freshest descriptor-index snapshot per BLOB so the version manager only
/// ships descriptor deltas past the cached watermark.
pub struct BlobClient {
    svc: Arc<Services>,
    desc_cache: Mutex<HashMap<BlobId, DescIndex>>,
    page_size_cache: Mutex<HashMap<BlobId, u64>>,
}

impl BlobClient {
    pub(crate) fn new(svc: Arc<Services>) -> Self {
        BlobClient {
            svc,
            desc_cache: Mutex::new(HashMap::new()),
            page_size_cache: Mutex::new(HashMap::new()),
        }
    }

    /// Create a new BLOB (page size defaults to the deployment config).
    pub fn create(&self, p: &Proc, page_size: Option<u64>) -> BlobId {
        let id = self.svc.vm.create_blob(p, page_size);
        self.page_size_cache
            .lock()
            .insert(id, page_size.unwrap_or(self.svc.config.page_size));
        id
    }

    /// Page size of `blob` (cached after first lookup).
    pub fn page_size(&self, p: &Proc, blob: BlobId) -> BlobResult<u64> {
        if let Some(ps) = self.page_size_cache.lock().get(&blob) {
            return Ok(*ps);
        }
        let ps = self.svc.vm.page_size_of(p, blob)?;
        self.page_size_cache.lock().insert(blob, ps);
        Ok(ps)
    }

    /// Append `data` to the BLOB; returns the version this update created.
    pub fn append(&self, p: &Proc, blob: BlobId, data: Payload) -> BlobResult<Version> {
        self.update(p, blob, None, data)
    }

    /// Overwrite starting at byte `offset` (see crate docs for alignment
    /// rules); returns the version created.
    pub fn write(&self, p: &Proc, blob: BlobId, offset: u64, data: Payload) -> BlobResult<Version> {
        self.update(p, blob, Some(offset), data)
    }

    fn update(
        &self,
        p: &Proc,
        blob: BlobId,
        offset: Option<u64>,
        data: Payload,
    ) -> BlobResult<Version> {
        if data.is_empty() {
            return Err(BlobError::EmptyWrite);
        }
        let ps = self.page_size(p, blob)?;
        let nbytes = data.len();
        let chunks = data.chunks(ps);

        // Step 1: store pages on providers, fully in parallel.
        let manifest = Arc::new(self.store_pages(p, &chunks)?);

        // Step 2: get a version plus an index snapshot pinned at it. The VM
        // only ships (and charges for) descriptors after the cached
        // watermark; the snapshot itself is an O(1) Arc share.
        let known = self
            .desc_cache
            .lock()
            .get(&blob)
            .map_or(0, |ix| ix.version());
        let kind = match offset {
            None => UpdateKind::Append,
            Some(o) => UpdateKind::WriteAt { offset: o },
        };
        let (desc, index) = self
            .svc
            .vm
            .assign(p, blob, kind, nbytes, manifest.clone(), known)?;
        {
            // Concurrent updaters of this client race to refresh the cache;
            // snapshots are cumulative, so the highest version wins.
            let mut cache = self.desc_cache.lock();
            let entry = cache.entry(blob).or_insert_with(|| index.clone());
            if entry.version() < index.version() {
                *entry = index.clone();
            }
        }

        // Step 3: write the metadata tree, batched — one RPC per metadata
        // server instead of one per node.
        self.svc
            .dht
            .put_batch(p, plan_write(blob, &index, &desc, &manifest))?;

        // Step 4: commit; optionally wait for publication (read-your-writes).
        self.svc.vm.commit(p, blob, desc.version)?;
        if self.svc.config.wait_published {
            self.svc.vm.wait_published(p, blob, desc.version)?;
        }
        Ok(desc.version)
    }

    fn store_pages(&self, p: &Proc, chunks: &[Payload]) -> BlobResult<Vec<PageRef>> {
        let repl = self.svc.config.replication;
        // Reserve exact per-chunk byte counts (the tail chunk may be short),
        // so the release paths — which hand back `chunk.len()` — balance.
        let sizes: Vec<u64> = chunks.iter().map(|c| c.len()).collect();
        let placements = self.svc.pm.allocate(p, &sizes, repl, &[])?;
        let ids: Vec<PageId> = chunks
            .iter()
            .map(|_| {
                let mut rng = p.rng();
                PageId(rng.gen(), rng.gen())
            })
            .collect();

        type PageResult = BlobResult<PageRef>;
        let mut tasks: Vec<TaskFn<PageResult>> = Vec::with_capacity(chunks.len());
        for ((chunk, id), providers) in chunks.iter().zip(&ids).zip(placements) {
            let chunk = chunk.clone();
            let id = *id;
            let svc = self.svc.clone();
            tasks.push(Box::new(move |wp: &Proc| {
                store_one_page(wp, &svc, id, chunk, providers)
            }));
        }
        let results = run_parallel(p, "page-write", tasks);
        results.into_iter().collect()
    }

    /// Read `len` bytes at `offset` from `version` (`None` = latest
    /// published snapshot).
    pub fn read(
        &self,
        p: &Proc,
        blob: BlobId,
        version: Option<Version>,
        offset: u64,
        len: u64,
    ) -> BlobResult<Payload> {
        let snap = self.svc.vm.snapshot(p, blob, version)?;
        self.read_snapshot(p, blob, &snap, offset, len)
    }

    /// Read against an already-resolved snapshot (saves the VM round-trip;
    /// BSFS pins snapshots at open time).
    pub fn read_snapshot(
        &self,
        p: &Proc,
        blob: BlobId,
        snap: &SnapshotInfo,
        offset: u64,
        len: u64,
    ) -> BlobResult<Payload> {
        if len == 0 {
            return Ok(Payload::empty());
        }
        let hits = self.leaves(p, blob, snap, offset, offset + len)?;
        type PartResult = BlobResult<Payload>;
        let mut tasks: Vec<TaskFn<PartResult>> = Vec::with_capacity(hits.len());
        for hit in hits {
            let svc = self.svc.clone();
            let (a, b) = (
                offset.max(hit.blob_byte_off),
                (offset + len).min(hit.blob_byte_off + hit.page.byte_len),
            );
            tasks.push(Box::new(move |wp: &Proc| {
                let page = fetch_with_failover(wp, &svc, &hit)?;
                Ok(page.slice(a - hit.blob_byte_off, b - a))
            }));
        }
        let parts: Vec<PartResult> = run_parallel(p, "page-read", tasks);
        let parts: BlobResult<Vec<Payload>> = parts.into_iter().collect();
        Ok(Payload::concat(&parts?))
    }

    fn leaves(
        &self,
        p: &Proc,
        blob: BlobId,
        snap: &SnapshotInfo,
        byte_lo: u64,
        byte_hi: u64,
    ) -> BlobResult<Vec<LeafHit>> {
        // Breadth-first descent: one batched DHT round per tree level, one
        // RPC per (level, server) pair.
        let dht = &self.svc.dht;
        let mut fetch = |keys: &[crate::meta::NodeKey]| dht.get_batch(p, keys);
        collect_leaves(&mut fetch, blob, snap, byte_lo, byte_hi)
    }

    /// Snapshot facts for a version (`None` = latest published).
    pub fn snapshot(
        &self,
        p: &Proc,
        blob: BlobId,
        version: Option<Version>,
    ) -> BlobResult<SnapshotInfo> {
        self.svc.vm.snapshot(p, blob, version)
    }

    /// Byte size of a snapshot.
    pub fn size(&self, p: &Proc, blob: BlobId, version: Option<Version>) -> BlobResult<u64> {
        Ok(self.snapshot(p, blob, version)?.total_bytes)
    }

    /// Latest published version number.
    pub fn latest(&self, p: &Proc, blob: BlobId) -> BlobResult<Version> {
        self.svc.vm.latest(p, blob)
    }

    /// Page→provider distribution for a byte range — the primitive the
    /// paper adds so the Hadoop scheduler can see data locality (§3.2).
    pub fn page_locations(
        &self,
        p: &Proc,
        blob: BlobId,
        version: Option<Version>,
        offset: u64,
        len: u64,
    ) -> BlobResult<Vec<PageLocation>> {
        let snap = self.svc.vm.snapshot(p, blob, version)?;
        if len == 0 {
            return Ok(Vec::new());
        }
        let end = (offset + len).min(snap.total_bytes);
        if offset >= end {
            return Ok(Vec::new());
        }
        let hits = self.leaves(p, blob, &snap, offset, end)?;
        Ok(hits
            .into_iter()
            .map(|h| PageLocation {
                byte_off: h.blob_byte_off,
                byte_len: h.page.byte_len,
                hosts: h.page.providers,
            })
            .collect())
    }
}

fn store_one_page(
    p: &Proc,
    svc: &Arc<Services>,
    id: PageId,
    chunk: Payload,
    providers: Vec<Arc<Provider>>,
) -> BlobResult<PageRef> {
    // Every provider in `providers` (and every failover replacement) holds a
    // capacity reservation until its replica lands; on any early exit the
    // unfulfilled reservations must be handed back or the dead/unused
    // providers stay inflated forever in the least-loaded policy's eyes.
    let mut pending: VecDeque<Arc<Provider>> = providers.into();
    let mut placed: Vec<NodeId> = Vec::with_capacity(pending.len());
    let mut dead: Vec<NodeId> = Vec::new();
    while let Some(mut target) = pending.pop_front() {
        let mut attempts = 0;
        loop {
            match target.put_page(p, id, chunk.clone()) {
                Ok(()) => {
                    placed.push(target.node());
                    break;
                }
                Err(BlobError::ProviderDown { node }) => {
                    // The reservation for this replica is stranded on the
                    // dead provider; release it before failing over.
                    svc.pm.release(p, &target, chunk.len());
                    dead.push(NodeId(node));
                    attempts += 1;
                    if attempts > 3 {
                        for pr in &pending {
                            svc.pm.release(p, pr, chunk.len());
                        }
                        return Err(BlobError::PageUnavailable {
                            detail: format!(
                                "could not place page {id:?} after {attempts} attempts"
                            ),
                        });
                    }
                    let mut exclude = dead.clone();
                    exclude.extend(placed.iter().copied());
                    // Also exclude this page's still-pending replica targets,
                    // or the replacement could collide with one of them and
                    // leave two "replicas" on a single provider.
                    exclude.extend(pending.iter().map(|pr| pr.node()));
                    match svc.pm.any_alive(p, &exclude) {
                        Ok(next) => {
                            target = next;
                            target.reserve(chunk.len());
                        }
                        Err(e) => {
                            for pr in &pending {
                                svc.pm.release(p, pr, chunk.len());
                            }
                            return Err(e);
                        }
                    }
                }
                Err(e) => {
                    svc.pm.release(p, &target, chunk.len());
                    for pr in &pending {
                        svc.pm.release(p, pr, chunk.len());
                    }
                    return Err(e);
                }
            }
        }
    }
    Ok(PageRef {
        id,
        byte_len: chunk.len(),
        providers: placed,
    })
}

fn fetch_with_failover(p: &Proc, svc: &Arc<Services>, hit: &LeafHit) -> BlobResult<Payload> {
    // Prefer a local replica (short-circuit read), then random order.
    let mut order: Vec<NodeId> = hit.page.providers.clone();
    {
        let mut rng = p.rng();
        use rand::seq::SliceRandom;
        order.shuffle(&mut *rng);
    }
    if let Some(i) = order.iter().position(|n| *n == p.node()) {
        order.swap(0, i);
    }
    let mut last_err = BlobError::PageUnavailable {
        detail: format!("page {:?} has no replicas", hit.page.id),
    };
    for node in order {
        let Some(prov) = svc.provider_map.get(&node) else {
            continue;
        };
        match prov.get_page(p, hit.page.id) {
            Ok(data) => {
                debug_assert_eq!(data.len(), hit.page.byte_len);
                return Ok(data);
            }
            Err(e) => last_err = e,
        }
    }
    Err(BlobError::PageUnavailable {
        detail: format!("all replicas failed for page {:?}: {last_err}", hit.page.id),
    })
}
