//! The version manager — BlobSeer's only centralized data-path entity
//! (paper §3.1.1: "versions are assigned by a centralized version manager,
//! which is also responsible for ensuring consistency when concurrent writes
//! to the same BLOB are issued").
//!
//! Protocol (paper §3.1.2), per update:
//!
//! 1. the writer stores its pages on providers (fully parallel, no VM
//!    involvement);
//! 2. [`VersionManager::assign`] — the writer presents the *manifest* of its
//!    pages and receives a version number, its byte/page placement, and the
//!    descriptors of every previously-assigned version (enough to build its
//!    metadata tree without reading anyone else's);
//! 3. the writer stores its metadata tree nodes in the DHT;
//! 4. [`VersionManager::commit`] — the VM publishes versions strictly in
//!    order: version v becomes visible only once v and all versions below it
//!    committed. Readers only ever observe published versions, which is why
//!    concurrent reads and appends do not disturb each other (Figures 4/5).
//!
//! Because the manifest is handed over *before* the version number exists,
//! the VM can finish the job of a writer that crashes between steps 2 and 4
//! ([`VersionManager::force_complete`] / lazy reaping with
//! `write_timeout_ns`), so a dead client cannot stall publication forever.

use std::collections::{BTreeSet, HashMap};
use std::sync::Arc;

use fabric::sync::Gate;
use fabric::{Fabric, NodeId, Proc, SimTime};
use parking_lot::Mutex;

use crate::dht::MetaDht;
use crate::error::{BlobError, BlobResult};
use crate::meta::{plan_write, PageRef, SnapshotInfo};
use crate::types::{byte_offset_of_page, BlobId, Version, WriteDesc, WriteKind};

/// A write request presented to [`VersionManager::assign`].
#[derive(Debug, Clone, Copy)]
pub enum UpdateKind {
    /// Append `nbytes` at the end.
    Append,
    /// Overwrite starting at byte `offset` (must be an existing page
    /// boundary; see crate docs for the alignment rules).
    WriteAt { offset: u64 },
}

struct BlobMeta {
    page_size: u64,
    /// Descriptors of every *assigned* version, dense: `descs[v-1]`.
    descs: Vec<WriteDesc>,
    /// Manifests of not-yet-published versions (kept for force-complete).
    manifests: HashMap<Version, Vec<PageRef>>,
    /// Committed but not yet published (publication is strictly in order).
    committed: BTreeSet<Version>,
    published: Version,
    assigned_at: HashMap<Version, SimTime>,
    gates: HashMap<Version, Gate>,
}

struct VmState {
    blobs: HashMap<BlobId, BlobMeta>,
    next_blob: u64,
}

/// The centralized version manager service.
pub struct VersionManager {
    node: NodeId,
    fabric: Fabric,
    dht: Arc<MetaDht>,
    ctl_msg_bytes: u64,
    /// CPU charged on the VM node per request — models the serialization
    /// point the paper calls "low overhead" and lets benches observe it.
    vm_cpu_ops: u64,
    write_timeout_ns: Option<u64>,
    default_page_size: u64,
    state: Mutex<VmState>,
}

impl VersionManager {
    pub fn new(
        node: NodeId,
        fabric: Fabric,
        dht: Arc<MetaDht>,
        default_page_size: u64,
        ctl_msg_bytes: u64,
        vm_cpu_ops: u64,
        write_timeout_ns: Option<u64>,
    ) -> Self {
        VersionManager {
            node,
            fabric,
            dht,
            ctl_msg_bytes,
            vm_cpu_ops,
            write_timeout_ns,
            default_page_size,
            state: Mutex::new(VmState {
                blobs: HashMap::new(),
                next_blob: 1,
            }),
        }
    }

    pub fn node(&self) -> NodeId {
        self.node
    }

    fn charge(&self, p: &Proc) {
        p.rpc(self.node, self.ctl_msg_bytes, self.ctl_msg_bytes);
        if self.vm_cpu_ops > 0 {
            p.compute(self.node, self.vm_cpu_ops);
        }
    }

    /// Create a BLOB with the given page size (or the deployment default).
    pub fn create_blob(&self, p: &Proc, page_size: Option<u64>) -> BlobId {
        self.charge(p);
        let mut st = self.state.lock();
        let id = BlobId(st.next_blob);
        st.next_blob += 1;
        st.blobs.insert(
            id,
            BlobMeta {
                page_size: page_size.unwrap_or(self.default_page_size),
                descs: Vec::new(),
                manifests: HashMap::new(),
                committed: BTreeSet::new(),
                published: 0,
                assigned_at: HashMap::new(),
                gates: HashMap::new(),
            },
        );
        id
    }

    /// Page size of a BLOB.
    pub fn page_size_of(&self, p: &Proc, blob: BlobId) -> BlobResult<u64> {
        self.charge(p);
        let st = self.state.lock();
        st.blobs
            .get(&blob)
            .map(|b| b.page_size)
            .ok_or(BlobError::NoSuchBlob(blob))
    }

    /// Step 2 of the write protocol: reserve a version for an update of
    /// `nbytes` described by `manifest`, and return its descriptor plus all
    /// descriptors the caller has not seen yet (`known` = highest version it
    /// has). The new version stays invisible until committed and all its
    /// predecessors published.
    pub fn assign(
        &self,
        p: &Proc,
        blob: BlobId,
        kind: UpdateKind,
        nbytes: u64,
        manifest: Vec<PageRef>,
        known: Version,
    ) -> BlobResult<(WriteDesc, Vec<WriteDesc>)> {
        self.charge(p);
        self.reap_expired(p, blob)?;
        if nbytes == 0 {
            return Err(BlobError::EmptyWrite);
        }
        let now = self.fabric.now();
        let mut st = self.state.lock();
        let meta = st.blobs.get_mut(&blob).ok_or(BlobError::NoSuchBlob(blob))?;
        let ps = meta.page_size;
        let k_pages = nbytes.div_ceil(ps);
        if manifest.len() as u64 != k_pages {
            return Err(BlobError::UnalignedWrite {
                detail: format!(
                    "manifest has {} pages but {} bytes need {} pages of {}",
                    manifest.len(),
                    nbytes,
                    k_pages,
                    ps
                ),
            });
        }
        let (cur_pages, cur_bytes) = meta
            .descs
            .last()
            .map(|d| (d.total_pages, d.total_bytes))
            .unwrap_or((0, 0));
        let version = meta.descs.len() as Version + 1;
        let desc = match kind {
            UpdateKind::Append => WriteDesc {
                version,
                kind: WriteKind::Append,
                page_lo: cur_pages,
                page_hi: cur_pages + k_pages,
                byte_lo: cur_bytes,
                byte_hi: cur_bytes + nbytes,
                total_pages: cur_pages + k_pages,
                total_bytes: cur_bytes + nbytes,
            },
            UpdateKind::WriteAt { offset } => {
                let page_lo = Self::page_at_boundary(&meta.descs, version - 1, ps, offset)
                    .ok_or_else(|| BlobError::UnalignedWrite {
                        detail: format!("offset {offset} is not an existing page boundary"),
                    })?;
                if offset + nbytes >= cur_bytes {
                    // Tail-replacing / extending write.
                    WriteDesc {
                        version,
                        kind: WriteKind::Write,
                        page_lo,
                        page_hi: page_lo + k_pages,
                        byte_lo: offset,
                        byte_hi: offset + nbytes,
                        total_pages: page_lo + k_pages,
                        total_bytes: offset + nbytes,
                    }
                } else {
                    // Interior overwrite: must replace whole existing pages
                    // with an identical layout.
                    if !nbytes.is_multiple_of(ps) {
                        return Err(BlobError::UnalignedWrite {
                            detail: format!(
                                "interior overwrite of {nbytes} B is not a multiple of the {ps} B page size"
                            ),
                        });
                    }
                    let end_page = page_lo + k_pages;
                    let end_off = byte_offset_of_page(&meta.descs, version - 1, ps, end_page);
                    if end_off != Some(offset + nbytes) {
                        return Err(BlobError::UnalignedWrite {
                            detail: format!(
                                "overwrite end {} does not coincide with page boundary {end_page}",
                                offset + nbytes
                            ),
                        });
                    }
                    WriteDesc {
                        version,
                        kind: WriteKind::Write,
                        page_lo,
                        page_hi: end_page,
                        byte_lo: offset,
                        byte_hi: offset + nbytes,
                        total_pages: cur_pages,
                        total_bytes: cur_bytes,
                    }
                }
            }
        };
        let catch_up = meta.descs[known as usize..].to_vec();
        meta.descs.push(desc);
        meta.manifests.insert(version, manifest);
        meta.assigned_at.insert(version, now);
        meta.gates.insert(version, self.fabric.gate());
        Ok((desc, catch_up))
    }

    /// Locate the page index whose byte offset is exactly `offset`
    /// (`total_pages` for `offset == total_bytes`). Page start offsets are
    /// strictly increasing, so binary search works.
    fn page_at_boundary(
        descs: &[WriteDesc],
        up_to: Version,
        page_size: u64,
        offset: u64,
    ) -> Option<u64> {
        let total = descs.iter().rev().find(|d| d.version <= up_to)?.total_pages;
        let (mut lo, mut hi) = (0u64, total);
        while lo <= hi {
            let mid = lo + (hi - lo) / 2;
            let off = byte_offset_of_page(descs, up_to, page_size, mid)?;
            match off.cmp(&offset) {
                std::cmp::Ordering::Equal => return Some(mid),
                std::cmp::Ordering::Less => lo = mid + 1,
                std::cmp::Ordering::Greater => {
                    if mid == 0 {
                        return None;
                    }
                    hi = mid - 1;
                }
            }
        }
        None
    }

    /// Step 4: the writer finished storing its metadata. Publishes the
    /// version once all predecessors are published. Idempotent.
    pub fn commit(&self, p: &Proc, blob: BlobId, version: Version) -> BlobResult<()> {
        self.charge(p);
        self.reap_expired(p, blob)?;
        let mut st = self.state.lock();
        let meta = st.blobs.get_mut(&blob).ok_or(BlobError::NoSuchBlob(blob))?;
        if version > meta.descs.len() as Version {
            return Err(BlobError::NoSuchVersion { blob, version });
        }
        Self::commit_inner(meta, version);
        Ok(())
    }

    fn commit_inner(meta: &mut BlobMeta, version: Version) {
        if version <= meta.published {
            return;
        }
        meta.committed.insert(version);
        while meta.committed.remove(&(meta.published + 1)) {
            meta.published += 1;
            let v = meta.published;
            meta.manifests.remove(&v);
            meta.assigned_at.remove(&v);
            if let Some(gate) = meta.gates.remove(&v) {
                gate.set();
            }
        }
    }

    /// Block until `version` is published. Returns immediately when it
    /// already is.
    pub fn wait_published(&self, p: &Proc, blob: BlobId, version: Version) -> BlobResult<()> {
        let gate = {
            let st = self.state.lock();
            let meta = st.blobs.get(&blob).ok_or(BlobError::NoSuchBlob(blob))?;
            if version <= meta.published {
                return Ok(());
            }
            if version > meta.descs.len() as Version {
                return Err(BlobError::NoSuchVersion { blob, version });
            }
            meta.gates
                .get(&version)
                .cloned()
                .expect("unpublished assigned version has a gate")
        };
        gate.wait(p);
        Ok(())
    }

    /// Snapshot facts for `version` (`None` = latest published). Pending
    /// versions are invisible, matching the paper's reader semantics.
    pub fn snapshot(
        &self,
        p: &Proc,
        blob: BlobId,
        version: Option<Version>,
    ) -> BlobResult<SnapshotInfo> {
        self.charge(p);
        let st = self.state.lock();
        let meta = st.blobs.get(&blob).ok_or(BlobError::NoSuchBlob(blob))?;
        let v = version.unwrap_or(meta.published);
        if v > meta.published {
            return Err(BlobError::NoSuchVersion { blob, version: v });
        }
        if v == 0 {
            return Ok(SnapshotInfo {
                version: 0,
                total_pages: 0,
                total_bytes: 0,
                page_size: meta.page_size,
            });
        }
        let d = &meta.descs[v as usize - 1];
        Ok(SnapshotInfo {
            version: v,
            total_pages: d.total_pages,
            total_bytes: d.total_bytes,
            page_size: meta.page_size,
        })
    }

    /// Latest published version.
    pub fn latest(&self, p: &Proc, blob: BlobId) -> BlobResult<Version> {
        Ok(self.snapshot(p, blob, None)?.version)
    }

    /// Number of assigned-but-unpublished versions (diagnostics).
    pub fn pending_count(&self, blob: BlobId) -> usize {
        let st = self.state.lock();
        st.blobs
            .get(&blob)
            .map(|m| m.descs.len() - m.published as usize)
            .unwrap_or(0)
    }

    /// Complete a version on behalf of its (presumably dead) writer: build
    /// and store its metadata tree from the manifest it handed over at
    /// `assign` time, then commit it. Idempotent; concurrent invocations and
    /// races with a resurrected writer are harmless because node writes are
    /// idempotent.
    pub fn force_complete(&self, p: &Proc, blob: BlobId, version: Version) -> BlobResult<()> {
        let (desc, before, manifest, ps) = {
            let st = self.state.lock();
            let meta = st.blobs.get(&blob).ok_or(BlobError::NoSuchBlob(blob))?;
            if version <= meta.published || meta.committed.contains(&version) {
                return Ok(());
            }
            if version > meta.descs.len() as Version {
                return Err(BlobError::NoSuchVersion { blob, version });
            }
            let manifest = meta
                .manifests
                .get(&version)
                .cloned()
                .expect("pending version keeps its manifest");
            let desc = meta.descs[version as usize - 1];
            let before = meta.descs[..version as usize - 1].to_vec();
            (desc, before, manifest, meta.page_size)
        };
        for (key, body) in plan_write(blob, &before, &desc, ps, &manifest) {
            self.dht.put(p, key, body)?;
        }
        let mut st = self.state.lock();
        if let Some(meta) = st.blobs.get_mut(&blob) {
            Self::commit_inner(meta, version);
        }
        Ok(())
    }

    /// Force-complete every pending version older than the configured write
    /// timeout. Called lazily from `assign`/`commit`; also usable directly
    /// by tests and by an optional reaper daemon.
    pub fn reap_expired(&self, p: &Proc, blob: BlobId) -> BlobResult<()> {
        let Some(timeout) = self.write_timeout_ns else {
            return Ok(());
        };
        let now = self.fabric.now();
        let expired: Vec<Version> = {
            let st = self.state.lock();
            let Some(meta) = st.blobs.get(&blob) else {
                return Ok(());
            };
            meta.assigned_at
                .iter()
                .filter(|&(v, t)| now.saturating_sub(*t) > timeout && !meta.committed.contains(v))
                .map(|(v, _)| *v)
                .collect()
        };
        let mut expired = expired;
        expired.sort_unstable();
        for v in expired {
            self.force_complete(p, blob, v)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dht::MetaServer;
    use crate::types::PageId;
    use fabric::{ClusterSpec, Fabric};

    const PS: u64 = 100;

    fn setup(fx: &Fabric) -> Arc<VersionManager> {
        let dht = Arc::new(MetaDht::new(vec![Arc::new(MetaServer::new(NodeId(1)))], 0));
        Arc::new(VersionManager::new(
            NodeId(0),
            fx.clone(),
            dht,
            PS,
            64,
            0,
            Some(1_000_000_000),
        ))
    }

    fn manifest(n: u64, tag: u64, last_len: u64) -> Vec<PageRef> {
        (0..n)
            .map(|i| PageRef {
                id: PageId(tag, i),
                byte_len: if i == n - 1 { last_len } else { PS },
                providers: vec![NodeId(2)],
            })
            .collect()
    }

    fn with_proc<T: Send + 'static>(f: impl FnOnce(&Proc) -> T + Send + 'static) -> T {
        let fx = Fabric::sim(ClusterSpec::tiny(4));
        let fx2 = fx.clone();
        let h = fx.spawn(NodeId(3), "t", move |p| f(p));
        let _ = &fx2;
        fx.run();
        h.take().unwrap()
    }

    #[test]
    fn append_assign_and_publish_in_order() {
        let fx = Fabric::sim(ClusterSpec::tiny(4));
        let vm = setup(&fx);
        let vm2 = vm.clone();
        let h = fx.spawn(NodeId(3), "t", move |p| {
            let blob = vm2.create_blob(p, None);
            let (d1, c1) = vm2
                .assign(p, blob, UpdateKind::Append, 250, manifest(3, 1, 50), 0)
                .unwrap();
            assert_eq!(d1.version, 1);
            assert!(c1.is_empty());
            let (d2, c2) = vm2
                .assign(p, blob, UpdateKind::Append, 100, manifest(1, 2, 100), 0)
                .unwrap();
            assert_eq!(d2.version, 2);
            assert_eq!(c2.len(), 1); // catch-up includes v1
            assert_eq!(d2.byte_lo, 250);
            assert_eq!(d2.page_lo, 3);

            // Committing v2 first publishes nothing.
            vm2.commit(p, blob, 2).unwrap();
            assert_eq!(vm2.latest(p, blob).unwrap(), 0);
            // v1 commits -> both publish.
            vm2.commit(p, blob, 1).unwrap();
            assert_eq!(vm2.latest(p, blob).unwrap(), 2);
            let snap = vm2.snapshot(p, blob, None).unwrap();
            assert_eq!(snap.total_bytes, 350);
            assert_eq!(snap.total_pages, 4);
            // Historical snapshot.
            let s1 = vm2.snapshot(p, blob, Some(1)).unwrap();
            assert_eq!(s1.total_bytes, 250);
        });
        fx.run();
        h.take().unwrap();
    }

    #[test]
    fn pending_versions_are_invisible() {
        let fx = Fabric::sim(ClusterSpec::tiny(4));
        let vm = setup(&fx);
        let vm2 = vm.clone();
        let h = fx.spawn(NodeId(3), "t", move |p| {
            let blob = vm2.create_blob(p, None);
            vm2.assign(p, blob, UpdateKind::Append, 100, manifest(1, 1, 100), 0)
                .unwrap();
            assert_eq!(vm2.latest(p, blob).unwrap(), 0);
            assert!(matches!(
                vm2.snapshot(p, blob, Some(1)),
                Err(BlobError::NoSuchVersion { .. })
            ));
            assert_eq!(vm2.pending_count(blob), 1);
        });
        fx.run();
        h.take().unwrap();
    }

    #[test]
    fn waiters_unblock_on_publication() {
        let fx = Fabric::sim(ClusterSpec::tiny(4));
        let vm = setup(&fx);
        let (vma, vmb) = (vm.clone(), vm.clone());
        let blob_gate = fx.gate();
        let (bg1, bg2) = (blob_gate.clone(), blob_gate.clone());
        let shared: Arc<Mutex<Option<BlobId>>> = Arc::new(Mutex::new(None));
        let (s1, s2) = (shared.clone(), shared.clone());
        let writer = fx.spawn(NodeId(2), "writer", move |p| {
            let blob = vma.create_blob(p, None);
            *s1.lock() = Some(blob);
            bg1.set();
            let (d, _) = vma
                .assign(p, blob, UpdateKind::Append, 100, manifest(1, 1, 100), 0)
                .unwrap();
            p.sleep(50 * fabric::MILLIS);
            vma.commit(p, blob, d.version).unwrap();
            d.version
        });
        let waiter = fx.spawn(NodeId(3), "waiter", move |p| {
            bg2.wait(p);
            let blob = s2.lock().unwrap();
            // Wait for version 1 explicitly.
            loop {
                // The version may not be assigned yet; poll cheaply.
                match vmb.wait_published(p, blob, 1) {
                    Ok(()) => break,
                    Err(BlobError::NoSuchVersion { .. }) => p.sleep(fabric::MILLIS),
                    Err(e) => panic!("unexpected: {e}"),
                }
            }
            p.now()
        });
        fx.run();
        writer.take().unwrap();
        let woke_at = waiter.take().unwrap();
        assert!(woke_at >= 50 * fabric::MILLIS);
    }

    #[test]
    fn interior_overwrite_validation() {
        let fx = Fabric::sim(ClusterSpec::tiny(4));
        let vm = setup(&fx);
        let vm2 = vm.clone();
        let h = fx.spawn(NodeId(3), "t", move |p| {
            let blob = vm2.create_blob(p, None);
            let (d1, _) = vm2
                .assign(p, blob, UpdateKind::Append, 400, manifest(4, 1, 100), 0)
                .unwrap();
            vm2.commit(p, blob, d1.version).unwrap();

            // Valid: replace pages 1..3.
            let (d2, _) = vm2
                .assign(
                    p,
                    blob,
                    UpdateKind::WriteAt { offset: 100 },
                    200,
                    manifest(2, 2, 100),
                    1,
                )
                .unwrap();
            assert_eq!((d2.page_lo, d2.page_hi), (1, 3));
            assert_eq!(d2.total_bytes, 400);

            // Invalid: offset not a boundary.
            assert!(matches!(
                vm2.assign(
                    p,
                    blob,
                    UpdateKind::WriteAt { offset: 150 },
                    100,
                    manifest(1, 3, 100),
                    2
                ),
                Err(BlobError::UnalignedWrite { .. })
            ));
            // Invalid: interior length not page-multiple.
            assert!(matches!(
                vm2.assign(
                    p,
                    blob,
                    UpdateKind::WriteAt { offset: 0 },
                    150,
                    manifest(2, 4, 50),
                    2
                ),
                Err(BlobError::UnalignedWrite { .. })
            ));
            // Valid: tail-extending write from a boundary.
            let (d3, _) = vm2
                .assign(
                    p,
                    blob,
                    UpdateKind::WriteAt { offset: 300 },
                    250,
                    manifest(3, 5, 50),
                    2,
                )
                .unwrap();
            assert_eq!(d3.total_bytes, 550);
            assert_eq!(d3.total_pages, 6);
        });
        fx.run();
        h.take().unwrap();
    }

    #[test]
    fn force_complete_unsticks_a_dead_writer() {
        let fx = Fabric::sim(ClusterSpec::tiny(4));
        let vm = setup(&fx);
        let vm2 = vm.clone();
        let h = fx.spawn(NodeId(3), "t", move |p| {
            let blob = vm2.create_blob(p, None);
            // Writer A assigns v1 then "dies" (never commits).
            vm2.assign(p, blob, UpdateKind::Append, 100, manifest(1, 1, 100), 0)
                .unwrap();
            // Writer B does a full append of v2.
            let (d2, _) = vm2
                .assign(p, blob, UpdateKind::Append, 100, manifest(1, 2, 100), 1)
                .unwrap();
            vm2.commit(p, blob, d2.version).unwrap();
            assert_eq!(vm2.latest(p, blob).unwrap(), 0); // stuck behind v1

            // Not expired yet: reap does nothing.
            vm2.reap_expired(p, blob).unwrap();
            assert_eq!(vm2.latest(p, blob).unwrap(), 0);

            // After the timeout the next VM interaction reaps v1.
            p.sleep(2_000_000_000);
            vm2.reap_expired(p, blob).unwrap();
            assert_eq!(vm2.latest(p, blob).unwrap(), 2);
            assert_eq!(vm2.pending_count(blob), 0);
        });
        fx.run();
        h.take().unwrap();
    }

    #[test]
    fn zero_byte_appends_rejected() {
        with_proc(|_| {}); // keep helper alive for symmetry
        let fx = Fabric::sim(ClusterSpec::tiny(4));
        let vm = setup(&fx);
        let vm2 = vm.clone();
        let h = fx.spawn(NodeId(3), "t", move |p| {
            let blob = vm2.create_blob(p, None);
            assert!(matches!(
                vm2.assign(p, blob, UpdateKind::Append, 0, vec![], 0),
                Err(BlobError::EmptyWrite)
            ));
        });
        fx.run();
        h.take().unwrap();
    }
}
