//! The version manager — BlobSeer's only centralized data-path entity
//! (paper §3.1.1: "versions are assigned by a centralized version manager,
//! which is also responsible for ensuring consistency when concurrent writes
//! to the same BLOB are issued").
//!
//! Protocol (paper §3.1.2), per update:
//!
//! 1. the writer stores its pages on providers (fully parallel, no VM
//!    involvement);
//! 2. [`VersionManager::assign`] — the writer presents the *manifest* of its
//!    pages and receives a version number, its byte/page placement, and the
//!    descriptors of every previously-assigned version (enough to build its
//!    metadata tree without reading anyone else's);
//! 3. the writer stores its metadata tree nodes in the DHT;
//! 4. [`VersionManager::commit`] — the VM publishes versions strictly in
//!    order: version v becomes visible only once v and all versions below it
//!    committed. Readers only ever observe published versions, which is why
//!    concurrent reads and appends do not disturb each other (Figures 4/5).
//!
//! Because the manifest is handed over *before* the version number exists,
//! the VM can finish the job of a writer that crashes between steps 2 and 4
//! ([`VersionManager::force_complete`] / lazy reaping with
//! `write_timeout_ns`), so a dead client cannot stall publication forever.

use std::collections::{BTreeSet, HashMap};
use std::sync::Arc;

use fabric::sync::Gate;
use fabric::{Fabric, NodeId, Proc, SimTime};
use parking_lot::Mutex;

use crate::desc_index::DescIndex;
use crate::dht::MetaDht;
use crate::error::{BlobError, BlobResult};
use crate::meta::{plan_write, PageRef, SnapshotInfo};
use crate::types::{BlobId, Version, WriteDesc, WriteKind};

/// Modeled wire size of one [`WriteDesc`] in the `assign` response — the VM
/// ships the caller every descriptor after its `known` watermark.
const DESC_WIRE_BYTES: u64 = 48;

/// A write request presented to [`VersionManager::assign`].
#[derive(Debug, Clone, Copy)]
pub enum UpdateKind {
    /// Append `nbytes` at the end.
    Append,
    /// Overwrite starting at byte `offset` (must be an existing page
    /// boundary; see crate docs for the alignment rules).
    WriteAt { offset: u64 },
}

/// Everything the VM retains about an assigned-but-unpublished version.
struct PendingWrite {
    /// The writer's page manifest, shared (not copied) for force-complete.
    manifest: Arc<Vec<PageRef>>,
    /// Descriptor-index snapshot pinned at exactly this version — an O(1)
    /// clone of the persistent tree, so force-complete can rebuild the
    /// writer's exact metadata plan without copying any history.
    index: DescIndex,
    assigned_at: SimTime,
    gate: Gate,
}

struct BlobMeta {
    page_size: u64,
    /// Descriptors of every *assigned* version, dense: `descs[v-1]`.
    descs: Vec<WriteDesc>,
    /// Incrementally-maintained descriptor index over `descs` — answers all
    /// latest-version queries in O(log) and snapshots in O(1).
    index: DescIndex,
    /// Index snapshot pinned at the latest *published* version — what
    /// [`VersionManager::sync_index`] ships to readers, so their locality
    /// queries never observe assigned-but-unpublished versions.
    published_index: DescIndex,
    /// Assigned but not yet published versions (kept for force-complete).
    pending: HashMap<Version, PendingWrite>,
    /// Committed but not yet published (publication is strictly in order).
    committed: BTreeSet<Version>,
    published: Version,
}

struct VmState {
    blobs: HashMap<BlobId, BlobMeta>,
    next_blob: u64,
}

/// The centralized version manager service.
pub struct VersionManager {
    node: NodeId,
    fabric: Fabric,
    dht: Arc<MetaDht>,
    ctl_msg_bytes: u64,
    /// CPU charged on the VM node per request — models the serialization
    /// point the paper calls "low overhead" and lets benches observe it.
    vm_cpu_ops: u64,
    write_timeout_ns: Option<u64>,
    default_page_size: u64,
    state: Mutex<VmState>,
}

impl VersionManager {
    pub fn new(
        node: NodeId,
        fabric: Fabric,
        dht: Arc<MetaDht>,
        default_page_size: u64,
        ctl_msg_bytes: u64,
        vm_cpu_ops: u64,
        write_timeout_ns: Option<u64>,
    ) -> Self {
        VersionManager {
            node,
            fabric,
            dht,
            ctl_msg_bytes,
            vm_cpu_ops,
            write_timeout_ns,
            default_page_size,
            state: Mutex::new(VmState {
                blobs: HashMap::new(),
                next_blob: 1,
            }),
        }
    }

    pub fn node(&self) -> NodeId {
        self.node
    }

    fn charge(&self, p: &Proc) {
        p.rpc(self.node, self.ctl_msg_bytes, self.ctl_msg_bytes);
        if self.vm_cpu_ops > 0 {
            p.compute(self.node, self.vm_cpu_ops);
        }
    }

    /// Create a BLOB with the given page size (or the deployment default).
    pub fn create_blob(&self, p: &Proc, page_size: Option<u64>) -> BlobId {
        self.charge(p);
        let mut st = self.state.lock();
        let id = BlobId(st.next_blob);
        st.next_blob += 1;
        let ps = page_size.unwrap_or(self.default_page_size);
        st.blobs.insert(
            id,
            BlobMeta {
                page_size: ps,
                descs: Vec::new(),
                index: DescIndex::new(ps),
                published_index: DescIndex::new(ps),
                pending: HashMap::new(),
                committed: BTreeSet::new(),
                published: 0,
            },
        );
        id
    }

    /// Page size of a BLOB.
    pub fn page_size_of(&self, p: &Proc, blob: BlobId) -> BlobResult<u64> {
        self.charge(p);
        let st = self.state.lock();
        st.blobs
            .get(&blob)
            .map(|b| b.page_size)
            .ok_or(BlobError::NoSuchBlob(blob))
    }

    /// Step 2 of the write protocol: reserve a version for an update of
    /// `nbytes` described by `manifest`, and return its descriptor plus an
    /// immutable descriptor-index snapshot pinned at the new version. The
    /// snapshot is an O(1) `Arc` share of the VM's persistent index — no
    /// history is copied — while the modeled wire cost still covers every
    /// descriptor after the caller's `known` watermark. The new version
    /// stays invisible until committed and all its predecessors published.
    pub fn assign(
        &self,
        p: &Proc,
        blob: BlobId,
        kind: UpdateKind,
        nbytes: u64,
        manifest: Arc<Vec<PageRef>>,
        known: Version,
    ) -> BlobResult<(WriteDesc, DescIndex)> {
        self.reap_expired(p, blob)?;
        let now = self.fabric.now();
        let result: BlobResult<(WriteDesc, DescIndex, u64)> = (|| {
            if nbytes == 0 {
                return Err(BlobError::EmptyWrite);
            }
            let mut st = self.state.lock();
            let meta = st.blobs.get_mut(&blob).ok_or(BlobError::NoSuchBlob(blob))?;
            let ps = meta.page_size;
            let k_pages = nbytes.div_ceil(ps);
            if manifest.len() as u64 != k_pages {
                return Err(BlobError::UnalignedWrite {
                    detail: format!(
                        "manifest has {} pages but {} bytes need {} pages of {}",
                        manifest.len(),
                        nbytes,
                        k_pages,
                        ps
                    ),
                });
            }
            let (cur_pages, cur_bytes) = meta
                .descs
                .last()
                .map(|d| (d.total_pages, d.total_bytes))
                .unwrap_or((0, 0));
            let version = meta.descs.len() as Version + 1;
            let desc = match kind {
                UpdateKind::Append => WriteDesc {
                    version,
                    kind: WriteKind::Append,
                    page_lo: cur_pages,
                    page_hi: cur_pages + k_pages,
                    byte_lo: cur_bytes,
                    byte_hi: cur_bytes + nbytes,
                    total_pages: cur_pages + k_pages,
                    total_bytes: cur_bytes + nbytes,
                },
                UpdateKind::WriteAt { offset } => {
                    // `meta.index` is still at version - 1 here, so these are
                    // O(log) lookups against the pre-update snapshot.
                    let page_lo = meta.index.page_at_boundary(offset).ok_or_else(|| {
                        BlobError::UnalignedWrite {
                            detail: format!("offset {offset} is not an existing page boundary"),
                        }
                    })?;
                    if offset + nbytes >= cur_bytes {
                        // Tail-replacing / extending write.
                        WriteDesc {
                            version,
                            kind: WriteKind::Write,
                            page_lo,
                            page_hi: page_lo + k_pages,
                            byte_lo: offset,
                            byte_hi: offset + nbytes,
                            total_pages: page_lo + k_pages,
                            total_bytes: offset + nbytes,
                        }
                    } else {
                        // Interior overwrite: must replace whole existing pages
                        // with an identical layout.
                        if !nbytes.is_multiple_of(ps) {
                            return Err(BlobError::UnalignedWrite {
                                detail: format!(
                                    "interior overwrite of {nbytes} B is not a multiple of the {ps} B page size"
                                ),
                            });
                        }
                        let end_page = page_lo + k_pages;
                        if meta.index.byte_offset_of_page(end_page) != Some(offset + nbytes) {
                            return Err(BlobError::UnalignedWrite {
                                detail: format!(
                                    "overwrite end {} does not coincide with page boundary {end_page}",
                                    offset + nbytes
                                ),
                            });
                        }
                        WriteDesc {
                            version,
                            kind: WriteKind::Write,
                            page_lo,
                            page_hi: end_page,
                            byte_lo: offset,
                            byte_hi: offset + nbytes,
                            total_pages: cur_pages,
                            total_bytes: cur_bytes,
                        }
                    }
                }
            };
            let unseen = (version).saturating_sub(known);
            meta.descs.push(desc);
            meta.index.apply(&desc);
            let index = meta.index.clone();
            meta.pending.insert(
                version,
                PendingWrite {
                    manifest,
                    index: index.clone(),
                    assigned_at: now,
                    gate: self.fabric.gate(),
                },
            );
            Ok((desc, index, unseen))
        })();
        // One request/response exchange: the descriptor delta rides the
        // assign response (the caller learns every version after its `known`
        // watermark and pays for it on the wire, even though the in-process
        // hand-off is an Arc share). Errors pay the plain control exchange.
        let delta = result
            .as_ref()
            .map_or(0, |(_, _, unseen)| unseen * DESC_WIRE_BYTES);
        p.rpc(self.node, self.ctl_msg_bytes, self.ctl_msg_bytes + delta);
        if self.vm_cpu_ops > 0 {
            p.compute(self.node, self.vm_cpu_ops);
        }
        let (desc, index, _) = result?;
        Ok((desc, index))
    }

    /// Step 4: the writer finished storing its metadata. Publishes the
    /// version once all predecessors are published. Idempotent.
    pub fn commit(&self, p: &Proc, blob: BlobId, version: Version) -> BlobResult<()> {
        self.charge(p);
        self.reap_expired(p, blob)?;
        let mut st = self.state.lock();
        let meta = st.blobs.get_mut(&blob).ok_or(BlobError::NoSuchBlob(blob))?;
        if version > meta.descs.len() as Version {
            return Err(BlobError::NoSuchVersion { blob, version });
        }
        Self::commit_inner(meta, version);
        Ok(())
    }

    fn commit_inner(meta: &mut BlobMeta, version: Version) {
        if version <= meta.published {
            return;
        }
        meta.committed.insert(version);
        while meta.committed.remove(&(meta.published + 1)) {
            meta.published += 1;
            if let Some(pw) = meta.pending.remove(&meta.published) {
                pw.gate.set();
                // The pending write's snapshot is pinned at exactly the
                // version that just published — an O(1) hand-off.
                meta.published_index = pw.index;
            }
        }
    }

    /// Block until `version` is published. Returns immediately when it
    /// already is.
    pub fn wait_published(&self, p: &Proc, blob: BlobId, version: Version) -> BlobResult<()> {
        let gate = {
            let st = self.state.lock();
            let meta = st.blobs.get(&blob).ok_or(BlobError::NoSuchBlob(blob))?;
            if version <= meta.published {
                return Ok(());
            }
            if version > meta.descs.len() as Version {
                return Err(BlobError::NoSuchVersion { blob, version });
            }
            meta.pending
                .get(&version)
                .map(|pw| pw.gate.clone())
                .expect("unpublished assigned version has a gate")
        };
        gate.wait(p);
        Ok(())
    }

    /// Snapshot facts for `version` (`None` = latest published). Pending
    /// versions are invisible, matching the paper's reader semantics.
    pub fn snapshot(
        &self,
        p: &Proc,
        blob: BlobId,
        version: Option<Version>,
    ) -> BlobResult<SnapshotInfo> {
        self.charge(p);
        let st = self.state.lock();
        let meta = st.blobs.get(&blob).ok_or(BlobError::NoSuchBlob(blob))?;
        let v = version.unwrap_or(meta.published);
        if v > meta.published {
            return Err(BlobError::NoSuchVersion { blob, version: v });
        }
        if v == 0 {
            return Ok(SnapshotInfo {
                version: 0,
                total_pages: 0,
                total_bytes: 0,
                page_size: meta.page_size,
            });
        }
        let d = &meta.descs[v as usize - 1];
        Ok(SnapshotInfo {
            version: v,
            total_pages: d.total_pages,
            total_bytes: d.total_bytes,
            page_size: meta.page_size,
        })
    }

    /// Latest published version.
    pub fn latest(&self, p: &Proc, blob: BlobId) -> BlobResult<Version> {
        Ok(self.snapshot(p, blob, None)?.version)
    }

    /// Ship the caller a descriptor-index snapshot pinned at the latest
    /// *published* version (an O(1) `Arc` share in-process). The modeled
    /// wire cost covers every descriptor past the caller's `known`
    /// watermark, exactly like the delta that rides an [`Self::assign`]
    /// response — this is how a read-only client gets an index fresh enough
    /// to answer offset→page locality queries without walking the DHT tree.
    pub fn sync_index(&self, p: &Proc, blob: BlobId, known: Version) -> BlobResult<DescIndex> {
        let (index, unseen) = {
            let st = self.state.lock();
            let meta = st.blobs.get(&blob).ok_or(BlobError::NoSuchBlob(blob))?;
            (
                meta.published_index.clone(),
                meta.published.saturating_sub(known),
            )
        };
        p.rpc(
            self.node,
            self.ctl_msg_bytes,
            self.ctl_msg_bytes + unseen * DESC_WIRE_BYTES,
        );
        if self.vm_cpu_ops > 0 {
            p.compute(self.node, self.vm_cpu_ops);
        }
        Ok(index)
    }

    /// Number of assigned-but-unpublished versions (diagnostics).
    pub fn pending_count(&self, blob: BlobId) -> usize {
        let st = self.state.lock();
        st.blobs
            .get(&blob)
            .map(|m| m.descs.len() - m.published as usize)
            .unwrap_or(0)
    }

    /// Complete a version on behalf of its (presumably dead) writer: build
    /// and store its metadata tree from the manifest and pinned index
    /// snapshot it handed over at `assign` time (both `Arc` shares — no
    /// history copy), then commit it. Idempotent; concurrent invocations and
    /// races with a resurrected writer are harmless because node writes are
    /// idempotent.
    pub fn force_complete(&self, p: &Proc, blob: BlobId, version: Version) -> BlobResult<()> {
        let (desc, index, manifest) = {
            let st = self.state.lock();
            let meta = st.blobs.get(&blob).ok_or(BlobError::NoSuchBlob(blob))?;
            if version <= meta.published || meta.committed.contains(&version) {
                return Ok(());
            }
            if version > meta.descs.len() as Version {
                return Err(BlobError::NoSuchVersion { blob, version });
            }
            let pw = meta
                .pending
                .get(&version)
                .expect("pending version keeps its manifest and index snapshot");
            (
                meta.descs[version as usize - 1],
                pw.index.clone(),
                pw.manifest.clone(),
            )
        };
        self.dht
            .put_batch(p, plan_write(blob, &index, &desc, &manifest))?;
        let mut st = self.state.lock();
        if let Some(meta) = st.blobs.get_mut(&blob) {
            Self::commit_inner(meta, version);
        }
        Ok(())
    }

    /// Force-complete every pending version older than the configured write
    /// timeout. Called lazily from `assign`/`commit`; also usable directly
    /// by tests and by an optional reaper daemon.
    pub fn reap_expired(&self, p: &Proc, blob: BlobId) -> BlobResult<()> {
        let Some(timeout) = self.write_timeout_ns else {
            return Ok(());
        };
        let now = self.fabric.now();
        let expired: Vec<Version> = {
            let st = self.state.lock();
            let Some(meta) = st.blobs.get(&blob) else {
                return Ok(());
            };
            meta.pending
                .iter()
                .filter(|&(v, pw)| {
                    now.saturating_sub(pw.assigned_at) > timeout && !meta.committed.contains(v)
                })
                .map(|(v, _)| *v)
                .collect()
        };
        let mut expired = expired;
        expired.sort_unstable();
        for v in expired {
            self.force_complete(p, blob, v)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dht::MetaServer;
    use crate::types::PageId;
    use fabric::{ClusterSpec, Fabric};

    const PS: u64 = 100;

    fn setup(fx: &Fabric) -> Arc<VersionManager> {
        let dht = Arc::new(MetaDht::new(vec![Arc::new(MetaServer::new(NodeId(1)))], 0));
        Arc::new(VersionManager::new(
            NodeId(0),
            fx.clone(),
            dht,
            PS,
            64,
            0,
            Some(1_000_000_000),
        ))
    }

    fn manifest(n: u64, tag: u64, last_len: u64) -> Arc<Vec<PageRef>> {
        Arc::new(
            (0..n)
                .map(|i| PageRef {
                    id: PageId(tag, i),
                    byte_len: if i == n - 1 { last_len } else { PS },
                    providers: vec![NodeId(2)],
                })
                .collect(),
        )
    }

    fn with_proc<T: Send + 'static>(f: impl FnOnce(&Proc) -> T + Send + 'static) -> T {
        let fx = Fabric::sim(ClusterSpec::tiny(4));
        let fx2 = fx.clone();
        let h = fx.spawn(NodeId(3), "t", move |p| f(p));
        let _ = &fx2;
        fx.run();
        h.take().unwrap()
    }

    #[test]
    fn append_assign_and_publish_in_order() {
        let fx = Fabric::sim(ClusterSpec::tiny(4));
        let vm = setup(&fx);
        let vm2 = vm.clone();
        let h = fx.spawn(NodeId(3), "t", move |p| {
            let blob = vm2.create_blob(p, None);
            let (d1, ix1) = vm2
                .assign(p, blob, UpdateKind::Append, 250, manifest(3, 1, 50), 0)
                .unwrap();
            assert_eq!(d1.version, 1);
            assert_eq!(ix1.version(), 1); // snapshot pinned at the new version
            assert_eq!(ix1.total_bytes(), 250);
            let (d2, ix2) = vm2
                .assign(p, blob, UpdateKind::Append, 100, manifest(1, 2, 100), 0)
                .unwrap();
            assert_eq!(d2.version, 2);
            assert_eq!(ix2.version(), 2); // snapshot covers v1 and v2
            assert_eq!(ix2.owner_of_page(0), Some(1));
            assert_eq!(ix2.owner_of_page(3), Some(2));
            assert_eq!(d2.byte_lo, 250);
            assert_eq!(d2.page_lo, 3);
            // ix1 is immutable: v2's assignment did not leak into it.
            assert_eq!(ix1.version(), 1);
            assert_eq!(ix1.owner_of_page(3), None);

            // Committing v2 first publishes nothing.
            vm2.commit(p, blob, 2).unwrap();
            assert_eq!(vm2.latest(p, blob).unwrap(), 0);
            // v1 commits -> both publish.
            vm2.commit(p, blob, 1).unwrap();
            assert_eq!(vm2.latest(p, blob).unwrap(), 2);
            let snap = vm2.snapshot(p, blob, None).unwrap();
            assert_eq!(snap.total_bytes, 350);
            assert_eq!(snap.total_pages, 4);
            // Historical snapshot.
            let s1 = vm2.snapshot(p, blob, Some(1)).unwrap();
            assert_eq!(s1.total_bytes, 250);
        });
        fx.run();
        h.take().unwrap();
    }

    #[test]
    fn sync_index_ships_published_snapshots_only() {
        let fx = Fabric::sim(ClusterSpec::tiny(4));
        let vm = setup(&fx);
        let vm2 = vm.clone();
        let h = fx.spawn(NodeId(3), "t", move |p| {
            let blob = vm2.create_blob(p, None);
            assert_eq!(vm2.sync_index(p, blob, 0).unwrap().version(), 0);
            let (d1, _) = vm2
                .assign(p, blob, UpdateKind::Append, 250, manifest(3, 1, 50), 0)
                .unwrap();
            // Assigned but unpublished: readers must not see it.
            assert_eq!(vm2.sync_index(p, blob, 0).unwrap().version(), 0);
            vm2.commit(p, blob, d1.version).unwrap();
            let ix = vm2.sync_index(p, blob, 0).unwrap();
            assert_eq!(ix.version(), 1);
            assert_eq!(ix.total_bytes(), 250);
            assert_eq!(ix.owner_of_page(2), Some(1));
            let (d2, _) = vm2
                .assign(p, blob, UpdateKind::Append, 100, manifest(1, 2, 100), 1)
                .unwrap();
            vm2.commit(p, blob, d2.version).unwrap();
            assert_eq!(vm2.sync_index(p, blob, 1).unwrap().version(), 2);
            assert!(matches!(
                vm2.sync_index(p, BlobId(999), 0),
                Err(BlobError::NoSuchBlob(_))
            ));
        });
        fx.run();
        h.take().unwrap();
    }

    #[test]
    fn pending_versions_are_invisible() {
        let fx = Fabric::sim(ClusterSpec::tiny(4));
        let vm = setup(&fx);
        let vm2 = vm.clone();
        let h = fx.spawn(NodeId(3), "t", move |p| {
            let blob = vm2.create_blob(p, None);
            vm2.assign(p, blob, UpdateKind::Append, 100, manifest(1, 1, 100), 0)
                .unwrap();
            assert_eq!(vm2.latest(p, blob).unwrap(), 0);
            assert!(matches!(
                vm2.snapshot(p, blob, Some(1)),
                Err(BlobError::NoSuchVersion { .. })
            ));
            assert_eq!(vm2.pending_count(blob), 1);
        });
        fx.run();
        h.take().unwrap();
    }

    #[test]
    fn waiters_unblock_on_publication() {
        let fx = Fabric::sim(ClusterSpec::tiny(4));
        let vm = setup(&fx);
        let (vma, vmb) = (vm.clone(), vm.clone());
        let blob_gate = fx.gate();
        let (bg1, bg2) = (blob_gate.clone(), blob_gate.clone());
        let shared: Arc<Mutex<Option<BlobId>>> = Arc::new(Mutex::new(None));
        let (s1, s2) = (shared.clone(), shared.clone());
        let writer = fx.spawn(NodeId(2), "writer", move |p| {
            let blob = vma.create_blob(p, None);
            *s1.lock() = Some(blob);
            bg1.set();
            let (d, _) = vma
                .assign(p, blob, UpdateKind::Append, 100, manifest(1, 1, 100), 0)
                .unwrap();
            p.sleep(50 * fabric::MILLIS);
            vma.commit(p, blob, d.version).unwrap();
            d.version
        });
        let waiter = fx.spawn(NodeId(3), "waiter", move |p| {
            bg2.wait(p);
            let blob = s2.lock().unwrap();
            // Wait for version 1 explicitly.
            loop {
                // The version may not be assigned yet; poll cheaply.
                match vmb.wait_published(p, blob, 1) {
                    Ok(()) => break,
                    Err(BlobError::NoSuchVersion { .. }) => p.sleep(fabric::MILLIS),
                    Err(e) => panic!("unexpected: {e}"),
                }
            }
            p.now()
        });
        fx.run();
        writer.take().unwrap();
        let woke_at = waiter.take().unwrap();
        assert!(woke_at >= 50 * fabric::MILLIS);
    }

    #[test]
    fn interior_overwrite_validation() {
        let fx = Fabric::sim(ClusterSpec::tiny(4));
        let vm = setup(&fx);
        let vm2 = vm.clone();
        let h = fx.spawn(NodeId(3), "t", move |p| {
            let blob = vm2.create_blob(p, None);
            let (d1, _) = vm2
                .assign(p, blob, UpdateKind::Append, 400, manifest(4, 1, 100), 0)
                .unwrap();
            vm2.commit(p, blob, d1.version).unwrap();

            // Valid: replace pages 1..3.
            let (d2, _) = vm2
                .assign(
                    p,
                    blob,
                    UpdateKind::WriteAt { offset: 100 },
                    200,
                    manifest(2, 2, 100),
                    1,
                )
                .unwrap();
            assert_eq!((d2.page_lo, d2.page_hi), (1, 3));
            assert_eq!(d2.total_bytes, 400);

            // Invalid: offset not a boundary.
            assert!(matches!(
                vm2.assign(
                    p,
                    blob,
                    UpdateKind::WriteAt { offset: 150 },
                    100,
                    manifest(1, 3, 100),
                    2
                ),
                Err(BlobError::UnalignedWrite { .. })
            ));
            // Invalid: interior length not page-multiple.
            assert!(matches!(
                vm2.assign(
                    p,
                    blob,
                    UpdateKind::WriteAt { offset: 0 },
                    150,
                    manifest(2, 4, 50),
                    2
                ),
                Err(BlobError::UnalignedWrite { .. })
            ));
            // Valid: tail-extending write from a boundary.
            let (d3, _) = vm2
                .assign(
                    p,
                    blob,
                    UpdateKind::WriteAt { offset: 300 },
                    250,
                    manifest(3, 5, 50),
                    2,
                )
                .unwrap();
            assert_eq!(d3.total_bytes, 550);
            assert_eq!(d3.total_pages, 6);
        });
        fx.run();
        h.take().unwrap();
    }

    #[test]
    fn force_complete_unsticks_a_dead_writer() {
        let fx = Fabric::sim(ClusterSpec::tiny(4));
        let vm = setup(&fx);
        let vm2 = vm.clone();
        let h = fx.spawn(NodeId(3), "t", move |p| {
            let blob = vm2.create_blob(p, None);
            // Writer A assigns v1 then "dies" (never commits).
            vm2.assign(p, blob, UpdateKind::Append, 100, manifest(1, 1, 100), 0)
                .unwrap();
            // Writer B does a full append of v2.
            let (d2, _) = vm2
                .assign(p, blob, UpdateKind::Append, 100, manifest(1, 2, 100), 1)
                .unwrap();
            vm2.commit(p, blob, d2.version).unwrap();
            assert_eq!(vm2.latest(p, blob).unwrap(), 0); // stuck behind v1

            // Not expired yet: reap does nothing.
            vm2.reap_expired(p, blob).unwrap();
            assert_eq!(vm2.latest(p, blob).unwrap(), 0);

            // After the timeout the next VM interaction reaps v1.
            p.sleep(2_000_000_000);
            vm2.reap_expired(p, blob).unwrap();
            assert_eq!(vm2.latest(p, blob).unwrap(), 2);
            assert_eq!(vm2.pending_count(blob), 0);
        });
        fx.run();
        h.take().unwrap();
    }

    #[test]
    fn zero_byte_appends_rejected() {
        with_proc(|_| {}); // keep helper alive for symmetry
        let fx = Fabric::sim(ClusterSpec::tiny(4));
        let vm = setup(&fx);
        let vm2 = vm.clone();
        let h = fx.spawn(NodeId(3), "t", move |p| {
            let blob = vm2.create_blob(p, None);
            assert!(matches!(
                vm2.assign(p, blob, UpdateKind::Append, 0, Arc::new(vec![]), 0),
                Err(BlobError::EmptyWrite)
            ));
        });
        fx.run();
        h.take().unwrap();
    }
}
