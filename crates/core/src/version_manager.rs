//! The version manager — BlobSeer's only centralized data-path entity
//! (paper §3.1.1: "versions are assigned by a centralized version manager,
//! which is also responsible for ensuring consistency when concurrent writes
//! to the same BLOB are issued").
//!
//! Protocol (paper §3.1.2), per update:
//!
//! 1. the writer stores its pages on providers (fully parallel, no VM
//!    involvement);
//! 2. [`VersionManager::assign`] — the writer presents the *manifest* of its
//!    pages and receives a version number, its byte/page placement, and the
//!    descriptors of every previously-assigned version (enough to build its
//!    metadata tree without reading anyone else's);
//! 3. the writer stores its metadata tree nodes in the DHT;
//! 4. [`VersionManager::commit`] — the VM publishes versions strictly in
//!    order: version v becomes visible only once v and all versions below it
//!    committed. Readers only ever observe published versions, which is why
//!    concurrent reads and appends do not disturb each other (Figures 4/5).
//!
//! Because the manifest is handed over *before* the version number exists,
//! the VM can finish the job of a writer that crashes between steps 2 and 4
//! ([`VersionManager::force_complete`] / lazy reaping with
//! `write_timeout_ns`), so a dead client cannot stall publication forever.
//!
//! # Sharded control plane
//!
//! The paper's whole point is sustained throughput under heavy access
//! concurrency, so serialization at the VM must only ever be the
//! *protocol's* (per-BLOB version ordering), never an implementation
//! artifact. The state is therefore two-level:
//!
//! * a registry (`RwLock<HashMap<BlobId, Arc<BlobSlot>>>`) handing out
//!   per-BLOB slots — read-locked briefly on every operation, write-locked
//!   only by `create_blob`;
//! * one `Mutex<`[`BlobState`]`>` per BLOB — operations on distinct BLOBs
//!   never contend.
//!
//! Within a blob, the lock covers only the version-counter bump and the
//! state splice: wire charging, manifest validation (against the immutable
//! page size), `plan_write` for force-complete, DHT traffic, and gate waits
//! all run lock-free. No lock is ever held across a blocking fabric call,
//! so the same code is safe in live mode where processes genuinely run in
//! parallel.

use std::collections::{HashMap, HashSet};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;

use fabric::{Fabric, NodeId, Proc};
use parking_lot::{Mutex, RwLock};

use crate::config::Timeouts;
use crate::desc_index::DescIndex;
use crate::dht::MetaDht;
use crate::error::{BlobError, BlobResult};
use crate::meta::{plan_write, BlobState, PageRef, SnapshotInfo};
use crate::types::{BlobId, Version, WriteDesc};

pub use crate::types::UpdateKind;

/// Modeled wire size of one [`WriteDesc`] in the `assign` response — the VM
/// ships the caller every descriptor after its `known` watermark.
const DESC_WIRE_BYTES: u64 = 48;

/// One BLOB's slot in the sharded registry: the immutable facts live outside
/// the lock (so `page_size_of` and manifest validation never take it), the
/// mutable control-plane state inside. `retired` flips when the BLOB is
/// deleted — readers observe it without any registry write lock; the slot
/// itself is dropped later by an epoch-based GC pass.
struct BlobSlot {
    page_size: u64,
    retired: AtomicBool,
    state: Mutex<BlobState>,
}

/// Registry garbage collection: retired slots are removed in *epochs*. A
/// `delete_blob` records the current epoch; a GC pass removes only slots
/// retired in an earlier epoch, then advances the epoch — so a slot survives
/// at least one full pass after its retirement (operations that already
/// fetched the `Arc` run out harmlessly) and the registry write lock is
/// taken once per pass for the whole ready batch, never on the read path.
#[derive(Default)]
struct RegistryGc {
    epoch: u64,
    retired: Vec<(u64, BlobId)>,
}

/// The centralized version manager service.
pub struct VersionManager {
    node: NodeId,
    fabric: Fabric,
    dht: Arc<MetaDht>,
    ctl_msg_bytes: u64,
    /// CPU charged on the VM node per request — models the serialization
    /// point the paper calls "low overhead" and lets benches observe it.
    vm_cpu_ops: u64,
    write_timeout_ns: Option<u64>,
    /// Fault injection: while set, every request stalls at entry (the VM is
    /// alive but mute — a GC pause). Set via `BlobSeer::inject`.
    paused: AtomicBool,
    pause_poll_ns: u64,
    default_page_size: u64,
    next_blob: AtomicU64,
    blobs: RwLock<HashMap<BlobId, Arc<BlobSlot>>>,
    gc: Mutex<RegistryGc>,
}

impl VersionManager {
    pub fn new(
        node: NodeId,
        fabric: Fabric,
        dht: Arc<MetaDht>,
        default_page_size: u64,
        ctl_msg_bytes: u64,
        vm_cpu_ops: u64,
        timeouts: Timeouts,
    ) -> Self {
        VersionManager {
            node,
            fabric,
            dht,
            ctl_msg_bytes,
            vm_cpu_ops,
            write_timeout_ns: timeouts.write_timeout_ns,
            paused: AtomicBool::new(false),
            pause_poll_ns: timeouts.pause_poll_ns,
            default_page_size,
            next_blob: AtomicU64::new(1),
            blobs: RwLock::with_rank(HashMap::new(), crate::lock_ranks::REGISTRY),
            gc: Mutex::new(RegistryGc::default()),
        }
    }

    pub fn node(&self) -> NodeId {
        self.node
    }

    /// Fault injection: freeze (`true`) or resume (`false`) the service.
    /// While frozen, every request that reaches the VM stalls at entry until
    /// the next poll after the heal. Idempotent.
    pub fn set_paused(&self, paused: bool) {
        self.paused.store(paused, Ordering::Release);
    }

    pub fn is_paused(&self) -> bool {
        self.paused.load(Ordering::Acquire)
    }

    /// Entry gate of every request: a paused VM answers nothing, so the
    /// caller's process sleeps in poll steps until the service is healed.
    /// Deliberately *before* `charge` — a frozen service does not even ack.
    fn pause_barrier(&self, p: &Proc) {
        while self.paused.load(Ordering::Acquire) {
            p.sleep(self.pause_poll_ns);
        }
    }

    fn charge(&self, p: &Proc) {
        p.rpc(self.node, self.ctl_msg_bytes, self.ctl_msg_bytes);
        if self.vm_cpu_ops > 0 {
            p.compute(self.node, self.vm_cpu_ops);
        }
    }

    /// The registry slot for `blob`: a brief read lock on the registry, then
    /// lock-free access to the immutable facts and the per-blob mutex. A
    /// retired (deleted) BLOB answers `NoSuchBlob` whether or not its slot
    /// was already swept by the epoch GC.
    fn slot(&self, blob: BlobId) -> BlobResult<Arc<BlobSlot>> {
        let slot = self
            .blobs
            .read()
            .get(&blob)
            .cloned()
            .ok_or(BlobError::NoSuchBlob(blob))?;
        if slot.retired.load(Ordering::Acquire) {
            return Err(BlobError::NoSuchBlob(blob));
        }
        Ok(slot)
    }

    /// Create a BLOB with the given page size (or the deployment default).
    pub fn create_blob(&self, p: &Proc, page_size: Option<u64>) -> BlobId {
        self.pause_barrier(p);
        self.charge(p);
        let id = BlobId(self.next_blob.fetch_add(1, Ordering::Relaxed));
        let ps = page_size.unwrap_or(self.default_page_size);
        let slot = Arc::new(BlobSlot {
            page_size: ps,
            retired: AtomicBool::new(false),
            state: Mutex::with_rank(BlobState::new(ps), crate::lock_ranks::BLOB_STATE),
        });
        self.blobs.write().insert(id, slot);
        id
    }

    /// Retire a BLOB (the namespace deleted its file). The slot flips to
    /// retired — no registry write lock, so the lock-free read path is never
    /// touched — and is recorded for a later [`Self::gc_registry`] pass.
    /// Every subsequent operation answers `NoSuchBlob`; pending writes are
    /// abandoned (their provider reservations fall to the lease reaper) and
    /// their gates fire so parked [`Self::wait_published`] callers wake to a
    /// typed `NoSuchBlob` instead of hanging on versions that can never
    /// publish.
    pub fn delete_blob(&self, p: &Proc, blob: BlobId) -> BlobResult<()> {
        self.pause_barrier(p);
        self.charge(p);
        let slot = self.slot(blob)?;
        slot.retired.store(true, Ordering::Release);
        {
            let mut gc = self.gc.lock();
            let epoch = gc.epoch;
            gc.retired.push((epoch, blob));
        }
        // The retired flag is set before the gates fire: a woken waiter
        // re-checks it and reports the deletion. Waking happens outside the
        // per-blob lock, like every other gate set.
        let st = slot.state.lock();
        let mut gates: Vec<_> = st
            .pending
            .iter()
            .map(|(ver, pw)| (*ver, pw.gate.clone()))
            .collect();
        drop(st);
        // Fire in version order: gate wakeups are replay-visible (they
        // reschedule parked fibers), so the hash order of `pending` must not
        // leak into the wakeup sequence.
        gates.sort_unstable_by_key(|(ver, _)| *ver);
        for (_, gate) in gates {
            gate.set();
        }
        Ok(())
    }

    /// One epoch-based GC pass over the registry: drop the slots of BLOBs
    /// retired in an earlier epoch, then advance the epoch. A freshly
    /// retired slot therefore survives exactly one pass before its memory is
    /// reclaimed, and the registry write lock is taken once per pass for the
    /// whole ready batch — the read path never pays for deletions. Returns
    /// the number of slots dropped. Run by the background reaper, or
    /// directly by tests.
    pub fn gc_registry(&self) -> usize {
        let ready: Vec<BlobId> = {
            let mut gc = self.gc.lock();
            let epoch = gc.epoch;
            gc.epoch += 1;
            let (ready, keep) = gc.retired.drain(..).partition(|&(e, _)| e < epoch);
            gc.retired = keep;
            ready.into_iter().map(|(_, b)| b).collect()
        };
        if !ready.is_empty() {
            let mut reg = self.blobs.write();
            for b in &ready {
                reg.remove(b);
            }
        }
        ready.len()
    }

    /// Number of registry slots currently held (live + retired-but-unswept).
    /// Diagnostics for the GC tests.
    pub fn registry_len(&self) -> usize {
        self.blobs.read().len()
    }

    /// Ids of every live (non-retired) BLOB — the reaper's work list.
    /// Sorted: callers sweep blobs (and issue any resulting DHT traffic) in
    /// a deterministic order, never the registry map's iteration order.
    pub fn blob_ids(&self) -> Vec<BlobId> {
        let mut ids: Vec<BlobId> = self
            .blobs
            .read()
            .iter()
            .filter(|(_, s)| !s.retired.load(Ordering::Acquire))
            .map(|(&b, _)| b)
            .collect();
        ids.sort_unstable();
        ids
    }

    /// Reap every live BLOB (see [`Self::reap_expired`]): the background
    /// reaper's per-tick sweep, so a blob whose writers all died and that
    /// nobody touches again still publishes without waiting for the next
    /// `assign`/`commit`. Every blob is attempted; the first error (e.g. a
    /// metadata outage mid-force-complete — the affected blob keeps its
    /// queue and retries next tick) is reported after the sweep.
    pub fn reap_all(&self, p: &Proc) -> BlobResult<()> {
        let mut first_err = None;
        for blob in self.blob_ids() {
            if let Err(e) = self.reap_expired(p, blob) {
                first_err.get_or_insert(e);
            }
        }
        match first_err {
            None => Ok(()),
            Some(e) => Err(e),
        }
    }

    /// Page size of a BLOB. Immutable, so no per-blob lock is taken.
    pub fn page_size_of(&self, p: &Proc, blob: BlobId) -> BlobResult<u64> {
        self.pause_barrier(p);
        self.charge(p);
        Ok(self.slot(blob)?.page_size)
    }

    /// Step 2 of the write protocol: reserve a version for an update of
    /// `nbytes` described by `manifest`, and return its descriptor plus an
    /// immutable descriptor-index snapshot pinned at the new version. The
    /// snapshot is an O(1) `Arc` share of the VM's persistent index — no
    /// history is copied — while the modeled wire cost still covers every
    /// descriptor after the caller's `known` watermark. The new version
    /// stays invisible until committed and all its predecessors published.
    ///
    /// The per-blob lock is held only for the descriptor computation and
    /// state splice; empty-write and manifest-shape validation run lock-free
    /// against the immutable page size, and the wire charge happens after
    /// the lock is released.
    pub fn assign(
        &self,
        p: &Proc,
        blob: BlobId,
        kind: UpdateKind,
        nbytes: u64,
        manifest: Arc<Vec<PageRef>>,
        known: Version,
    ) -> BlobResult<(WriteDesc, DescIndex)> {
        self.pause_barrier(p);
        self.reap_expired(p, blob)?;
        let result: BlobResult<(WriteDesc, DescIndex, u64)> = (|| {
            if nbytes == 0 {
                return Err(BlobError::EmptyWrite);
            }
            let slot = self.slot(blob)?;
            let k_pages = nbytes.div_ceil(slot.page_size);
            if manifest.len() as u64 != k_pages {
                return Err(BlobError::UnalignedWrite {
                    detail: format!(
                        "manifest has {} pages but {} bytes need {} pages of {}",
                        manifest.len(),
                        nbytes,
                        k_pages,
                        slot.page_size
                    ),
                });
            }
            let gate = self.fabric.gate();
            let mut st = slot.state.lock();
            // The assignment timestamp is read under the blob lock: the
            // reap queue's O(1) front peek relies on per-blob monotone
            // times, which a pre-lock read would break in live mode
            // (preempted writer admits an older timestamp second).
            let now = self.fabric.now();
            let desc = st.build_descriptor(kind, nbytes, k_pages)?;
            let unseen = desc.version.saturating_sub(known);
            let index = st.admit(desc, manifest, now, gate);
            Ok((desc, index, unseen))
        })();
        // One request/response exchange: the descriptor delta rides the
        // assign response (the caller learns every version after its `known`
        // watermark and pays for it on the wire, even though the in-process
        // hand-off is an Arc share). Errors pay the plain control exchange.
        let delta = result
            .as_ref()
            .map_or(0, |(_, _, unseen)| unseen * DESC_WIRE_BYTES);
        p.rpc(self.node, self.ctl_msg_bytes, self.ctl_msg_bytes + delta);
        if self.vm_cpu_ops > 0 {
            p.compute(self.node, self.vm_cpu_ops);
        }
        let (desc, index, _) = result?;
        Ok((desc, index))
    }

    /// Step 4: the writer finished storing its metadata. Publishes the
    /// version once all predecessors are published. Idempotent.
    pub fn commit(&self, p: &Proc, blob: BlobId, version: Version) -> BlobResult<()> {
        self.pause_barrier(p);
        self.charge(p);
        self.reap_expired(p, blob)?;
        let slot = self.slot(blob)?;
        let gates = {
            let mut st = slot.state.lock();
            if version > st.assigned() {
                return Err(BlobError::NoSuchVersion { blob, version });
            }
            st.commit(version)
        };
        // Waiters wake outside the per-blob lock.
        for gate in gates {
            gate.set();
        }
        Ok(())
    }

    /// Block until `version` is published. Returns immediately when it
    /// already is. The gate wait happens outside the per-blob lock; a
    /// version whose pending state vanished to a concurrent reap/commit
    /// race yields [`BlobError::VersionRaced`], never a panic, and a BLOB
    /// deleted while the caller was parked yields `NoSuchBlob` — deletion
    /// fires every pending gate precisely so no waiter hangs on a version
    /// that can never publish.
    pub fn wait_published(&self, p: &Proc, blob: BlobId, version: Version) -> BlobResult<()> {
        self.pause_barrier(p);
        let slot = self.slot(blob)?;
        let gate = {
            let st = slot.state.lock();
            if version <= st.published {
                return Ok(());
            }
            if version > st.assigned() {
                return Err(BlobError::NoSuchVersion { blob, version });
            }
            match st.pending.get(&version) {
                Some(pw) => pw.gate.clone(),
                // Unpublished-but-assigned versions keep their pending entry
                // until publication; its absence means a concurrent
                // force-complete/commit interleaving we lost — surface it.
                None => return Err(BlobError::VersionRaced { blob, version }),
            }
        };
        gate.wait(p);
        if slot.retired.load(Ordering::Acquire) {
            return Err(BlobError::NoSuchBlob(blob));
        }
        Ok(())
    }

    /// Snapshot facts for `version` (`None` = latest published). Pending
    /// versions are invisible, matching the paper's reader semantics.
    pub fn snapshot(
        &self,
        p: &Proc,
        blob: BlobId,
        version: Option<Version>,
    ) -> BlobResult<SnapshotInfo> {
        self.pause_barrier(p);
        self.charge(p);
        let slot = self.slot(blob)?;
        let st = slot.state.lock();
        let v = version.unwrap_or(st.published);
        if v > st.published {
            return Err(BlobError::NoSuchVersion { blob, version: v });
        }
        if v == 0 {
            return Ok(SnapshotInfo {
                version: 0,
                total_pages: 0,
                total_bytes: 0,
                page_size: slot.page_size,
            });
        }
        let d = st
            .descs
            .get(v as usize - 1)
            .ok_or(BlobError::NoSuchVersion { blob, version: v })?;
        Ok(SnapshotInfo {
            version: v,
            total_pages: d.total_pages,
            total_bytes: d.total_bytes,
            page_size: slot.page_size,
        })
    }

    /// Latest published version.
    pub fn latest(&self, p: &Proc, blob: BlobId) -> BlobResult<Version> {
        Ok(self.snapshot(p, blob, None)?.version)
    }

    /// Ship the caller a descriptor-index snapshot pinned at the latest
    /// *published* version (an O(1) `Arc` share in-process). The modeled
    /// wire cost covers every descriptor past the caller's `known`
    /// watermark, exactly like the delta that rides an [`Self::assign`]
    /// response — this is how a read-only client gets an index fresh enough
    /// to answer offset→page locality queries without walking the DHT tree.
    pub fn sync_index(&self, p: &Proc, blob: BlobId, known: Version) -> BlobResult<DescIndex> {
        self.pause_barrier(p);
        let slot = self.slot(blob)?;
        let (index, unseen) = {
            let st = slot.state.lock();
            (
                st.published_index.clone(),
                st.published.saturating_sub(known),
            )
        };
        p.rpc(
            self.node,
            self.ctl_msg_bytes,
            self.ctl_msg_bytes + unseen * DESC_WIRE_BYTES,
        );
        if self.vm_cpu_ops > 0 {
            p.compute(self.node, self.vm_cpu_ops);
        }
        Ok(index)
    }

    /// Number of assigned-but-unpublished versions (diagnostics).
    pub fn pending_count(&self, blob: BlobId) -> usize {
        match self.slot(blob) {
            Ok(slot) => {
                let st = slot.state.lock();
                st.descs.len() - st.published as usize
            }
            Err(_) => 0,
        }
    }

    /// Memory-bound diagnostics: `(pending writes, distinct index nodes)`
    /// retained by this blob's control plane — the live index, the published
    /// index, and every pending write's pinned snapshot, with structurally
    /// shared subtrees counted exactly once. This is the number the
    /// desc-index memory-bound stress tests hold proportional to the live
    /// pending count (× tree depth), not to pending × pages.
    pub fn pending_footprint(&self, blob: BlobId) -> (usize, usize) {
        let Ok(slot) = self.slot(blob) else {
            return (0, 0);
        };
        let st = slot.state.lock();
        let mut seen = HashSet::new();
        let mut nodes = st.index.count_nodes(&mut seen);
        nodes += st.published_index.count_nodes(&mut seen);
        // analyze: allow(unordered-iter): commutative count — `seen` dedups
        // structurally shared nodes, so the total is visit-order independent
        for pw in st.pending.values() {
            nodes += pw.index.count_nodes(&mut seen);
        }
        (st.pending.len(), nodes)
    }

    /// Complete a version on behalf of its (presumably dead) writer: build
    /// and store its metadata tree from the manifest and pinned index
    /// snapshot it handed over at `assign` time (both `Arc` shares — no
    /// history copy), then commit it. Idempotent; concurrent invocations and
    /// races with a resurrected writer are harmless because node writes are
    /// idempotent. The planning and DHT traffic run with no lock held.
    pub fn force_complete(&self, p: &Proc, blob: BlobId, version: Version) -> BlobResult<()> {
        self.pause_barrier(p);
        let slot = self.slot(blob)?;
        let (desc, index, manifest) = {
            let st = slot.state.lock();
            if version <= st.published || st.committed.contains(&version) {
                return Ok(());
            }
            if version > st.assigned() {
                return Err(BlobError::NoSuchVersion { blob, version });
            }
            match st.pending.get(&version) {
                Some(pw) => (
                    *st.descs
                        .get(version as usize - 1)
                        .ok_or(BlobError::NoSuchVersion { blob, version })?,
                    pw.index.clone(),
                    pw.manifest.clone(),
                ),
                // See wait_published: a lost reap/commit race is an error,
                // not a panic.
                None => return Err(BlobError::VersionRaced { blob, version }),
            }
        };
        self.dht
            .put_batch(p, plan_write(blob, &index, &desc, &manifest))?;
        let gates = {
            let mut st = slot.state.lock();
            st.commit(version)
        };
        for gate in gates {
            gate.set();
        }
        Ok(())
    }

    /// Force-complete every pending version older than the configured write
    /// timeout. Called lazily from `assign`/`commit`; also usable directly
    /// by tests and by an optional reaper daemon. The common no-expiry case
    /// peeks one deadline-queue entry under the per-blob lock — O(1), never
    /// a scan of the pending map.
    pub fn reap_expired(&self, p: &Proc, blob: BlobId) -> BlobResult<()> {
        self.pause_barrier(p);
        let Some(timeout) = self.write_timeout_ns else {
            return Ok(());
        };
        let Ok(slot) = self.slot(blob) else {
            return Ok(());
        };
        let now = self.fabric.now();
        let expired = slot.state.lock().take_expired(now, timeout);
        for (i, &v) in expired.iter().enumerate() {
            // A concurrent force-completer racing us here is fine (node
            // writes are idempotent, commit is too); VersionRaced means it
            // already carried this version over the line.
            match self.force_complete(p, blob, v) {
                Ok(()) | Err(BlobError::VersionRaced { .. }) => {}
                Err(e) => {
                    // Requeue the unprocessed tail so the next interaction
                    // retries instead of silently dropping the reap.
                    slot.state.lock().requeue_expired(&expired[i..]);
                    return Err(e);
                }
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dht::MetaServer;
    use crate::types::PageId;
    use fabric::{ClusterSpec, Fabric};

    const PS: u64 = 100;

    fn setup(fx: &Fabric) -> Arc<VersionManager> {
        let dht = Arc::new(MetaDht::new(vec![Arc::new(MetaServer::new(NodeId(1)))], 0));
        Arc::new(VersionManager::new(
            NodeId(0),
            fx.clone(),
            dht,
            PS,
            64,
            0,
            Timeouts::default().with_write_timeout(Some(1_000_000_000)),
        ))
    }

    fn manifest(n: u64, tag: u64, last_len: u64) -> Arc<Vec<PageRef>> {
        Arc::new(
            (0..n)
                .map(|i| PageRef {
                    id: PageId(tag, i),
                    byte_len: if i == n - 1 { last_len } else { PS },
                    providers: vec![NodeId(2)],
                })
                .collect(),
        )
    }

    fn with_proc<T: Send + 'static>(f: impl FnOnce(&Proc) -> T + Send + 'static) -> T {
        let fx = Fabric::sim(ClusterSpec::tiny(4));
        let fx2 = fx.clone();
        let h = fx.spawn(NodeId(3), "t", move |p| f(p));
        let _ = &fx2;
        fx.run();
        h.take().unwrap()
    }

    #[test]
    fn append_assign_and_publish_in_order() {
        let fx = Fabric::sim(ClusterSpec::tiny(4));
        let vm = setup(&fx);
        let vm2 = vm.clone();
        let h = fx.spawn(NodeId(3), "t", move |p| {
            let blob = vm2.create_blob(p, None);
            let (d1, ix1) = vm2
                .assign(p, blob, UpdateKind::Append, 250, manifest(3, 1, 50), 0)
                .unwrap();
            assert_eq!(d1.version, 1);
            assert_eq!(ix1.version(), 1); // snapshot pinned at the new version
            assert_eq!(ix1.total_bytes(), 250);
            let (d2, ix2) = vm2
                .assign(p, blob, UpdateKind::Append, 100, manifest(1, 2, 100), 0)
                .unwrap();
            assert_eq!(d2.version, 2);
            assert_eq!(ix2.version(), 2); // snapshot covers v1 and v2
            assert_eq!(ix2.owner_of_page(0), Some(1));
            assert_eq!(ix2.owner_of_page(3), Some(2));
            assert_eq!(d2.byte_lo, 250);
            assert_eq!(d2.page_lo, 3);
            // ix1 is immutable: v2's assignment did not leak into it.
            assert_eq!(ix1.version(), 1);
            assert_eq!(ix1.owner_of_page(3), None);

            // Committing v2 first publishes nothing.
            vm2.commit(p, blob, 2).unwrap();
            assert_eq!(vm2.latest(p, blob).unwrap(), 0);
            // v1 commits -> both publish.
            vm2.commit(p, blob, 1).unwrap();
            assert_eq!(vm2.latest(p, blob).unwrap(), 2);
            let snap = vm2.snapshot(p, blob, None).unwrap();
            assert_eq!(snap.total_bytes, 350);
            assert_eq!(snap.total_pages, 4);
            // Historical snapshot.
            let s1 = vm2.snapshot(p, blob, Some(1)).unwrap();
            assert_eq!(s1.total_bytes, 250);
        });
        fx.run();
        h.take().unwrap();
    }

    #[test]
    fn sync_index_ships_published_snapshots_only() {
        let fx = Fabric::sim(ClusterSpec::tiny(4));
        let vm = setup(&fx);
        let vm2 = vm.clone();
        let h = fx.spawn(NodeId(3), "t", move |p| {
            let blob = vm2.create_blob(p, None);
            assert_eq!(vm2.sync_index(p, blob, 0).unwrap().version(), 0);
            let (d1, _) = vm2
                .assign(p, blob, UpdateKind::Append, 250, manifest(3, 1, 50), 0)
                .unwrap();
            // Assigned but unpublished: readers must not see it.
            assert_eq!(vm2.sync_index(p, blob, 0).unwrap().version(), 0);
            vm2.commit(p, blob, d1.version).unwrap();
            let ix = vm2.sync_index(p, blob, 0).unwrap();
            assert_eq!(ix.version(), 1);
            assert_eq!(ix.total_bytes(), 250);
            assert_eq!(ix.owner_of_page(2), Some(1));
            let (d2, _) = vm2
                .assign(p, blob, UpdateKind::Append, 100, manifest(1, 2, 100), 1)
                .unwrap();
            vm2.commit(p, blob, d2.version).unwrap();
            assert_eq!(vm2.sync_index(p, blob, 1).unwrap().version(), 2);
            assert!(matches!(
                vm2.sync_index(p, BlobId(999), 0),
                Err(BlobError::NoSuchBlob(_))
            ));
        });
        fx.run();
        h.take().unwrap();
    }

    #[test]
    fn pending_versions_are_invisible() {
        let fx = Fabric::sim(ClusterSpec::tiny(4));
        let vm = setup(&fx);
        let vm2 = vm.clone();
        let h = fx.spawn(NodeId(3), "t", move |p| {
            let blob = vm2.create_blob(p, None);
            vm2.assign(p, blob, UpdateKind::Append, 100, manifest(1, 1, 100), 0)
                .unwrap();
            assert_eq!(vm2.latest(p, blob).unwrap(), 0);
            assert!(matches!(
                vm2.snapshot(p, blob, Some(1)),
                Err(BlobError::NoSuchVersion { .. })
            ));
            assert_eq!(vm2.pending_count(blob), 1);
        });
        fx.run();
        h.take().unwrap();
    }

    #[test]
    fn waiters_unblock_on_publication() {
        let fx = Fabric::sim(ClusterSpec::tiny(4));
        let vm = setup(&fx);
        let (vma, vmb) = (vm.clone(), vm.clone());
        let blob_gate = fx.gate();
        let (bg1, bg2) = (blob_gate.clone(), blob_gate.clone());
        let shared: Arc<Mutex<Option<BlobId>>> = Arc::new(Mutex::new(None));
        let (s1, s2) = (shared.clone(), shared.clone());
        let writer = fx.spawn(NodeId(2), "writer", move |p| {
            let blob = vma.create_blob(p, None);
            *s1.lock() = Some(blob);
            bg1.set();
            let (d, _) = vma
                .assign(p, blob, UpdateKind::Append, 100, manifest(1, 1, 100), 0)
                .unwrap();
            p.sleep(50 * fabric::MILLIS);
            vma.commit(p, blob, d.version).unwrap();
            d.version
        });
        let waiter = fx.spawn(NodeId(3), "waiter", move |p| {
            bg2.wait(p);
            let blob = s2.lock().unwrap();
            // Wait for version 1 explicitly.
            loop {
                // The version may not be assigned yet; poll cheaply.
                match vmb.wait_published(p, blob, 1) {
                    Ok(()) => break,
                    Err(BlobError::NoSuchVersion { .. }) => p.sleep(fabric::MILLIS),
                    Err(e) => panic!("unexpected: {e}"),
                }
            }
            p.now()
        });
        fx.run();
        writer.take().unwrap();
        let woke_at = waiter.take().unwrap();
        assert!(woke_at >= 50 * fabric::MILLIS);
    }

    #[test]
    fn interior_overwrite_validation() {
        let fx = Fabric::sim(ClusterSpec::tiny(4));
        let vm = setup(&fx);
        let vm2 = vm.clone();
        let h = fx.spawn(NodeId(3), "t", move |p| {
            let blob = vm2.create_blob(p, None);
            let (d1, _) = vm2
                .assign(p, blob, UpdateKind::Append, 400, manifest(4, 1, 100), 0)
                .unwrap();
            vm2.commit(p, blob, d1.version).unwrap();

            // Valid: replace pages 1..3.
            let (d2, _) = vm2
                .assign(
                    p,
                    blob,
                    UpdateKind::WriteAt { offset: 100 },
                    200,
                    manifest(2, 2, 100),
                    1,
                )
                .unwrap();
            assert_eq!((d2.page_lo, d2.page_hi), (1, 3));
            assert_eq!(d2.total_bytes, 400);

            // Invalid: offset not a boundary.
            assert!(matches!(
                vm2.assign(
                    p,
                    blob,
                    UpdateKind::WriteAt { offset: 150 },
                    100,
                    manifest(1, 3, 100),
                    2
                ),
                Err(BlobError::UnalignedWrite { .. })
            ));
            // Invalid: interior length not page-multiple.
            assert!(matches!(
                vm2.assign(
                    p,
                    blob,
                    UpdateKind::WriteAt { offset: 0 },
                    150,
                    manifest(2, 4, 50),
                    2
                ),
                Err(BlobError::UnalignedWrite { .. })
            ));
            // Valid: tail-extending write from a boundary.
            let (d3, _) = vm2
                .assign(
                    p,
                    blob,
                    UpdateKind::WriteAt { offset: 300 },
                    250,
                    manifest(3, 5, 50),
                    2,
                )
                .unwrap();
            assert_eq!(d3.total_bytes, 550);
            assert_eq!(d3.total_pages, 6);
        });
        fx.run();
        h.take().unwrap();
    }

    #[test]
    fn force_complete_unsticks_a_dead_writer() {
        let fx = Fabric::sim(ClusterSpec::tiny(4));
        let vm = setup(&fx);
        let vm2 = vm.clone();
        let h = fx.spawn(NodeId(3), "t", move |p| {
            let blob = vm2.create_blob(p, None);
            // Writer A assigns v1 then "dies" (never commits).
            vm2.assign(p, blob, UpdateKind::Append, 100, manifest(1, 1, 100), 0)
                .unwrap();
            // Writer B does a full append of v2.
            let (d2, _) = vm2
                .assign(p, blob, UpdateKind::Append, 100, manifest(1, 2, 100), 1)
                .unwrap();
            vm2.commit(p, blob, d2.version).unwrap();
            assert_eq!(vm2.latest(p, blob).unwrap(), 0); // stuck behind v1

            // Not expired yet: reap does nothing.
            vm2.reap_expired(p, blob).unwrap();
            assert_eq!(vm2.latest(p, blob).unwrap(), 0);

            // After the timeout the next VM interaction reaps v1.
            p.sleep(2_000_000_000);
            vm2.reap_expired(p, blob).unwrap();
            assert_eq!(vm2.latest(p, blob).unwrap(), 2);
            assert_eq!(vm2.pending_count(blob), 0);
        });
        fx.run();
        h.take().unwrap();
    }

    #[test]
    fn zero_byte_appends_rejected() {
        with_proc(|_| {}); // keep helper alive for symmetry
        let fx = Fabric::sim(ClusterSpec::tiny(4));
        let vm = setup(&fx);
        let vm2 = vm.clone();
        let h = fx.spawn(NodeId(3), "t", move |p| {
            let blob = vm2.create_blob(p, None);
            assert!(matches!(
                vm2.assign(p, blob, UpdateKind::Append, 0, Arc::new(vec![]), 0),
                Err(BlobError::EmptyWrite)
            ));
        });
        fx.run();
        h.take().unwrap();
    }

    #[test]
    fn disjoint_blobs_use_disjoint_locks() {
        // Operations on one blob proceed while another blob's state mutex is
        // held hostage *by a different process* — the registry hands out
        // independent per-blob locks, so nothing funnels through a global
        // one (which would park the worker on the hostage below).
        let fx = Fabric::sim(ClusterSpec::tiny(4));
        let vm = setup(&fx);
        let locked = fx.gate();
        let done = fx.gate();
        let vm2 = vm.clone();
        let a = std::sync::Arc::new(std::sync::OnceLock::new());
        let b = std::sync::Arc::new(std::sync::OnceLock::new());
        let (a2, b2) = (a.clone(), b.clone());
        let (locked2, done2) = (locked.clone(), done.clone());
        let hostage = fx.spawn(NodeId(2), "hostage", move |p| {
            a2.set(vm2.create_blob(p, None)).unwrap();
            b2.set(vm2.create_blob(p, None)).unwrap();
            let slot_a = vm2.slot(*a2.get().unwrap()).unwrap();
            let _hostage = slot_a.state.lock();
            locked2.set();
            done2.wait(p); // keep a's lock held for the worker's whole run
        });
        let vm2 = vm.clone();
        let h = fx.spawn(NodeId(3), "t", move |p| {
            locked.wait(p);
            let b = *b.get().unwrap();
            // Every control-plane verb on b completes despite a's lock being
            // held elsewhere (a global lock would deadlock right here).
            let (d, _) = vm2
                .assign(p, b, UpdateKind::Append, 100, manifest(1, 7, 100), 0)
                .unwrap();
            vm2.commit(p, b, d.version).unwrap();
            vm2.wait_published(p, b, d.version).unwrap();
            assert_eq!(vm2.latest(p, b).unwrap(), 1);
            assert_eq!(vm2.sync_index(p, b, 0).unwrap().version(), 1);
            done.set();
        });
        fx.run();
        h.take().unwrap();
        hostage.take().unwrap();
    }

    #[test]
    fn reap_retries_after_metadata_outage() {
        // A reap that fails mid-way (metadata server down) must keep the
        // expired version queued and succeed on a later interaction, not
        // silently drop it from the deadline queue.
        let fx = Fabric::sim(ClusterSpec::tiny(4));
        let server = Arc::new(MetaServer::new(NodeId(1)));
        let dht = Arc::new(MetaDht::new(vec![server.clone()], 0));
        let vm = Arc::new(VersionManager::new(
            NodeId(0),
            fx.clone(),
            dht,
            PS,
            64,
            0,
            Timeouts::default().with_write_timeout(Some(1_000_000_000)),
        ));
        let vm2 = vm.clone();
        let h = fx.spawn(NodeId(3), "t", move |p| {
            let blob = vm2.create_blob(p, None);
            vm2.assign(p, blob, UpdateKind::Append, 100, manifest(1, 1, 100), 0)
                .unwrap();
            p.sleep(2_000_000_000);
            server.kill();
            assert!(vm2.reap_expired(p, blob).is_err());
            assert_eq!(vm2.pending_count(blob), 1, "failed reap keeps the write");
            server.revive();
            vm2.reap_expired(p, blob).unwrap();
            assert_eq!(vm2.latest(p, blob).unwrap(), 1);
            assert_eq!(vm2.pending_count(blob), 0);
        });
        fx.run();
        h.take().unwrap();
    }
}
