//! `blobseer` — a from-scratch implementation of the BlobSeer BLOB
//! management system (Nicolae, Antoniu & Bougé), the storage substrate of
//! the paper *"Improving the Hadoop Map/Reduce Framework to Support
//! Concurrent Appends through the BlobSeer BLOB management system"*
//! (HPDC'10 MapReduce workshop).
//!
//! A BLOB is a large sequence of bytes split into fixed-size *pages*:
//!
//! * [`provider::Provider`]s store pages (in memory, or durably through the
//!   [`pstore`] BerkeleyDB-substitute);
//! * the [`provider_manager::ProviderManager`] load-balances page placement;
//! * page locations per version live in versioned segment trees
//!   ([`meta`]) sharded over a DHT of metadata providers ([`dht`]);
//! * the centralized [`version_manager::VersionManager`] orders concurrent
//!   updates and publishes versions strictly in sequence;
//! * [`client::BlobClient`] ties it together: `create` / `append` / `write`
//!   / `read` / `page_locations`.
//!
//! Data is never overwritten in place: every update produces a new snapshot
//! version, and readers only ever see published snapshots. That is the
//! mechanism behind the paper's headline microbenchmarks: massively
//! concurrent appends to a shared BLOB proceed in parallel (Figure 3) and
//! do not disturb concurrent readers (Figures 4/5).
//!
//! Everything runs on a [`fabric::Fabric`] — real threads in live mode, a
//! deterministic 270-node cluster simulation for paper-scale experiments.

/// The declared lock hierarchy, shared by the static `analyze` lint and the
/// debug-only runtime assertion in the `parking_lot` shim
/// ([`parking_lot::lock_order`]). Acquisitions must be non-decreasing in
/// rank within a thread.
pub(crate) mod lock_ranks {
    /// Version-manager BLOB registry.
    pub const REGISTRY: u8 = 1;
    /// Per-blob control state (`BlobSlot::state` — the `meta.rs` lock unit).
    pub const BLOB_STATE: u8 = 2;
    /// Provider-manager lease book.
    pub const LEASE_BOOK: u8 = 3;
    /// Provider page stripes and metadata-server node stripes.
    pub const STRIPES: u8 = 4;
    /// Client-side read-cache shards and index caches (`read_cache.rs`) —
    /// leaves of the hierarchy: nothing else is ever taken under them, and
    /// no wire traffic happens while one is held.
    pub const READ_CACHE: u8 = 5;
}

pub mod client;
pub mod cluster;
pub mod config;
pub mod desc_index;
pub mod dht;
pub mod error;
pub mod fault;
pub mod meta;
pub mod provider;
pub mod provider_manager;
pub mod read_cache;
pub mod types;
pub mod version_manager;

pub use client::{BlobClient, PageLocation};
pub use cluster::{BlobSeer, Layout, ReaperHandle, ReplicaSync};
pub use config::{AllocStrategy, BlobSeerConfig, Timeouts};
pub use desc_index::DescIndex;
pub use error::{BlobError, BlobResult, PersistenceKind};
pub use fault::{Fault, FaultTarget};
pub use meta::{PageRef, SnapshotInfo};
pub use provider_manager::LeaseId;
pub use read_cache::{LruMap, ReadCache, ReadCacheStats};
pub use types::{BlobId, PageId, Version, WriteDesc, WriteKind};
