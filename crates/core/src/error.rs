//! Error vocabulary for the BLOB store.

use std::fmt;
use std::path::Path;

use crate::types::{BlobId, Version};

/// Cause class of a [`BlobError::Persistence`] failure. Typed (not a string)
/// so chaos/recovery tests can assert on the cause rather than
/// substring-match a message.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum PersistenceKind {
    /// Underlying filesystem error.
    Io,
    /// On-disk data failed checksum or structural validation.
    Corrupt,
    /// The operation is not representable on the durable backend (e.g.
    /// storing a ghost payload, which has no bytes to persist).
    Unsupported,
}

impl fmt::Display for PersistenceKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PersistenceKind::Io => write!(f, "io"),
            PersistenceKind::Corrupt => write!(f, "corrupt"),
            PersistenceKind::Unsupported => write!(f, "unsupported"),
        }
    }
}

impl From<pstore::PStoreErrorKind> for PersistenceKind {
    fn from(k: pstore::PStoreErrorKind) -> Self {
        match k {
            pstore::PStoreErrorKind::Io => PersistenceKind::Io,
            pstore::PStoreErrorKind::Corrupt => PersistenceKind::Corrupt,
        }
    }
}

impl BlobError {
    /// Wrap a [`pstore::PStoreError`] raised while operating on the store
    /// rooted at `path`, preserving its cause class.
    pub fn persistence(path: &Path, e: &pstore::PStoreError) -> BlobError {
        BlobError::Persistence {
            kind: e.kind().into(),
            path: path.display().to_string(),
            detail: e.to_string(),
        }
    }
}

/// Errors surfaced by BlobSeer operations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum BlobError {
    /// Unknown BLOB id.
    NoSuchBlob(BlobId),
    /// Requested version does not exist (yet).
    NoSuchVersion { blob: BlobId, version: Version },
    /// Read beyond the end of the snapshot.
    OutOfBounds { offset: u64, len: u64, size: u64 },
    /// A write at an offset that is not an existing page boundary, or an
    /// interior overwrite whose length does not cover whole pages.
    UnalignedWrite { detail: String },
    /// Zero-byte updates are not versions.
    EmptyWrite,
    /// A metadata tree node could not be found — the version is unpublished
    /// or metadata was lost.
    MetadataMissing {
        blob: BlobId,
        version: Version,
        page_lo: u64,
        page_hi: u64,
    },
    /// A page could not be fetched from any replica.
    PageUnavailable { detail: String },
    /// A provider rejected an operation because it is down.
    ProviderDown { node: u32 },
    /// No providers available to place pages on.
    NoProviders,
    /// The version was aborted (writer failure) and will never publish.
    VersionAborted { blob: BlobId, version: Version },
    /// A control-plane race was lost: the version's pending state vanished
    /// (a concurrent reap/force-complete/commit interleaving carried it)
    /// between two observations. Callers may re-check the published version
    /// and retry; this is never a panic.
    VersionRaced { blob: BlobId, version: Version },
    /// Local persistence failure: the cause class, the store directory it
    /// happened in, and a human-readable detail line.
    Persistence {
        kind: PersistenceKind,
        path: String,
        detail: String,
    },
    /// A deployment was asked for that cannot work (no providers,
    /// replication above the provider count, service nodes outside the
    /// cluster, ...). Returned by `BlobSeer::deploy` instead of panicking
    /// deep inside the engine — fault-schedule generators probe these
    /// corners on purpose.
    InvalidTopology(String),
    /// `inject`/`heal` named a target index that does not exist in this
    /// deployment.
    NoSuchTarget(String),
    /// The (target, fault) combination is not modeled (e.g. crashing the
    /// version manager — failover is a separate roadmap item).
    UnsupportedFault(String),
    /// An internal contract between two components was broken — e.g. a
    /// batch RPC answered with a different number of results than it was
    /// asked for. Surfaced instead of panicking so one wedged peer cannot
    /// take the whole process down; seeing this is always a bug.
    Internal { detail: String },
}

impl fmt::Display for BlobError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BlobError::NoSuchBlob(b) => write!(f, "no such BLOB: {b}"),
            BlobError::NoSuchVersion { blob, version } => {
                write!(f, "{blob} has no version {version}")
            }
            BlobError::OutOfBounds { offset, len, size } => write!(
                f,
                "range [{offset}, {offset}+{len}) exceeds snapshot of {size} bytes"
            ),
            BlobError::UnalignedWrite { detail } => write!(f, "unaligned write: {detail}"),
            BlobError::EmptyWrite => write!(f, "empty writes are not allowed"),
            BlobError::MetadataMissing {
                blob,
                version,
                page_lo,
                page_hi,
            } => write!(
                f,
                "metadata node ({blob}, v{version}, pages [{page_lo}, {page_hi})) missing"
            ),
            BlobError::PageUnavailable { detail } => write!(f, "page unavailable: {detail}"),
            BlobError::ProviderDown { node } => write!(f, "provider on node n{node} is down"),
            BlobError::NoProviders => write!(f, "no live providers available"),
            BlobError::VersionAborted { blob, version } => {
                write!(f, "{blob} version {version} was aborted")
            }
            BlobError::VersionRaced { blob, version } => write!(
                f,
                "{blob} version {version}: pending state vanished to a concurrent \
                 reap/commit; re-check the published version"
            ),
            BlobError::Persistence { kind, path, detail } => {
                write!(f, "persistence layer ({kind}) at {path}: {detail}")
            }
            BlobError::InvalidTopology(msg) => write!(f, "invalid topology: {msg}"),
            BlobError::NoSuchTarget(msg) => write!(f, "no such fault target: {msg}"),
            BlobError::UnsupportedFault(msg) => write!(f, "unsupported fault: {msg}"),
            BlobError::Internal { detail } => {
                write!(f, "internal contract violation (a bug): {detail}")
            }
        }
    }
}

impl std::error::Error for BlobError {}

pub type BlobResult<T> = std::result::Result<T, BlobError>;
