//! Deployment wiring: build a full BlobSeer service bundle on a fabric,
//! following the paper's layout (§4.1): "we deployed one version manager,
//! one provider manager, one node for the namespace manager and 20 metadata
//! providers. The remaining nodes are used as data providers."

use std::collections::{BTreeMap, HashMap, HashSet};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;

use fabric::{ClusterSpec, Fabric, NodeId, Payload, Proc};
use parking_lot::Mutex;

use crate::client::BlobClient;
use crate::config::BlobSeerConfig;
use crate::dht::{MetaDht, MetaServer};
use crate::error::{BlobError, BlobResult};
use crate::fault::{Fault, FaultTarget};
use crate::meta::{collect_leaves, LeafHit, NodeKey, SnapshotInfo};
use crate::provider::Provider;
use crate::provider_manager::ProviderManager;
use crate::types::{BlobId, PageId, Version};
use crate::version_manager::VersionManager;

/// Which node hosts which service.
#[derive(Debug, Clone)]
pub struct Layout {
    pub vm: NodeId,
    pub pm: NodeId,
    /// Reserved for the BSFS namespace manager (deployed by the `bsfs`
    /// crate; kept in the layout so the paper's node budget is explicit).
    pub namespace: NodeId,
    pub meta: Vec<NodeId>,
    pub providers: Vec<NodeId>,
    /// Dedicated read-replica providers: never allocated writes, fed by
    /// opt-in background sync that copies *published* pages off the
    /// primaries, preferred by published reads. Must be disjoint from
    /// `providers` (node ids double as provider-map keys). Empty by
    /// default — the paper's deployment runs none.
    pub read_replicas: Vec<NodeId>,
}

impl Layout {
    /// The paper's deployment: dedicated nodes for the version manager,
    /// provider manager and namespace manager, 20 metadata providers, and
    /// every remaining node a data provider.
    pub fn paper(spec: &ClusterSpec) -> Layout {
        assert!(
            spec.nodes >= 30,
            "paper layout needs >= 30 nodes, got {}",
            spec.nodes
        );
        Layout {
            vm: NodeId(0),
            pm: NodeId(1),
            namespace: NodeId(2),
            meta: (3..23).map(NodeId).collect(),
            providers: (23..spec.nodes).map(NodeId).collect(),
            read_replicas: Vec::new(),
        }
    }

    /// Everything-on-few-nodes layout for unit tests and live-mode examples.
    pub fn compact(spec: &ClusterSpec) -> Layout {
        assert!(spec.nodes >= 1);
        Layout {
            vm: NodeId(0),
            pm: NodeId(0),
            namespace: NodeId(0),
            meta: vec![NodeId(0)],
            providers: spec.all_nodes().collect(),
            read_replicas: Vec::new(),
        }
    }

    /// Carve `n` nodes off the tail of the provider set and run them as
    /// dedicated read replicas instead. Panics if fewer than `n + 1`
    /// providers remain (a deployment still needs a primary).
    pub fn with_read_replicas_from_tail(mut self, n: usize) -> Layout {
        assert!(
            self.providers.len() > n,
            "cannot carve {n} read replicas out of {} providers",
            self.providers.len()
        );
        let at = self.providers.len() - n;
        self.read_replicas = self.providers.split_off(at);
        self
    }

    /// Custom number of metadata providers (for the metadata-scaling
    /// ablation), keeping the rest of the paper layout.
    pub fn paper_with_meta(spec: &ClusterSpec, n_meta: u32) -> Layout {
        assert!(spec.nodes >= n_meta + 4);
        Layout {
            vm: NodeId(0),
            pm: NodeId(1),
            namespace: NodeId(2),
            meta: (3..3 + n_meta).map(NodeId).collect(),
            providers: (3 + n_meta..spec.nodes).map(NodeId).collect(),
            read_replicas: Vec::new(),
        }
    }

    /// Can this layout run on `spec` with `config`? Checked by
    /// [`BlobSeer::deploy`]; generated topologies (chaos sweeps) probe the
    /// impossible corners on purpose and want a typed rejection, not a panic
    /// deep inside a service.
    pub fn validate(&self, spec: &ClusterSpec, config: &BlobSeerConfig) -> BlobResult<()> {
        spec.validate()
            .map_err(|e| BlobError::InvalidTopology(e.to_string()))?;
        if self.providers.is_empty() {
            return Err(BlobError::InvalidTopology(
                "deployment needs at least one data provider".into(),
            ));
        }
        if self.meta.is_empty() {
            return Err(BlobError::InvalidTopology(
                "deployment needs at least one metadata provider".into(),
            ));
        }
        if config.replication > self.providers.len() {
            return Err(BlobError::InvalidTopology(format!(
                "replication factor {} exceeds the {} data providers",
                config.replication,
                self.providers.len()
            )));
        }
        let mut seen = HashSet::new();
        for &n in &self.providers {
            if !seen.insert(n) {
                return Err(BlobError::InvalidTopology(format!(
                    "duplicate provider node {n} in layout"
                )));
            }
        }
        // Read replicas share the provider map's NodeId keyspace with the
        // primaries, so the two sets must be disjoint (and duplicate-free).
        for &n in &self.read_replicas {
            if !seen.insert(n) {
                return Err(BlobError::InvalidTopology(format!(
                    "read-replica node {n} collides with another provider in layout"
                )));
            }
        }
        for (role, node) in std::iter::once(("version manager", self.vm))
            .chain([("provider manager", self.pm), ("namespace", self.namespace)])
            .chain(self.meta.iter().map(|&n| ("metadata provider", n)))
            .chain(self.providers.iter().map(|&n| ("data provider", n)))
            .chain(self.read_replicas.iter().map(|&n| ("read replica", n)))
        {
            if node.0 >= spec.nodes {
                return Err(BlobError::InvalidTopology(format!(
                    "{role} placed on {node} but the cluster has {} nodes",
                    spec.nodes
                )));
            }
        }
        Ok(())
    }
}

/// Shared service handles (one bundle per deployment).
pub struct Services {
    pub vm: Arc<VersionManager>,
    pub pm: Arc<ProviderManager>,
    pub dht: Arc<MetaDht>,
    pub providers: Vec<Arc<Provider>>,
    /// Dedicated read replicas (possibly empty). Also present in
    /// `provider_map` so batched fetches resolve them, but **never** handed
    /// to the provider manager: they take no allocations, hold no leases,
    /// and are fed exclusively by [`Services::sync_read_replicas`].
    pub replicas: Vec<Arc<Provider>>,
    pub provider_map: HashMap<NodeId, Arc<Provider>>,
    pub config: BlobSeerConfig,
    pub layout: Layout,
    /// Fault injection: while set, background-reaper sweeps are skipped
    /// (the daemon is down); lazy reaping from request paths still runs.
    pub reaper_paused: AtomicBool,
    /// Book-keeping of the replica sync service.
    pub replica_sync: ReplicaSync,
}

/// Progress state of the read-replica background sync: a published-version
/// watermark per blob (how far the replica tier has caught up) plus copy
/// counters for benches and diagnostics.
#[derive(Debug, Default)]
pub struct ReplicaSync {
    watermarks: Mutex<HashMap<BlobId, Version>>,
    copied_pages: AtomicU64,
    copied_bytes: AtomicU64,
    rounds: AtomicU64,
}

impl ReplicaSync {
    fn watermark(&self, blob: BlobId) -> Version {
        self.watermarks.lock().get(&blob).copied().unwrap_or(0)
    }

    fn set_watermark(&self, blob: BlobId, v: Version) {
        self.watermarks.lock().insert(blob, v);
    }

    /// Pages copied primary → replica over the deployment's lifetime.
    pub fn copied_pages(&self) -> u64 {
        self.copied_pages.load(Ordering::Relaxed)
    }

    /// Bytes copied primary → replica over the deployment's lifetime.
    pub fn copied_bytes(&self) -> u64 {
        self.copied_bytes.load(Ordering::Relaxed)
    }

    /// Completed sync rounds.
    pub fn rounds(&self) -> u64 {
        self.rounds.load(Ordering::Relaxed)
    }
}

impl Services {
    /// One round of read-replica sync: for every live blob whose latest
    /// published version is past the replica tier's watermark, walk the
    /// snapshot's leaves and copy every page some replica is missing from a
    /// primary onto that replica (batched per provider on both sides).
    ///
    /// The watermark only advances when a blob syncs completely, so a
    /// failed copy (crashed primary, crash-wiped replica) retries on the
    /// next round; pages already landed are deduplicated by `has_page`.
    /// Pending versions are invisible here by construction — the walk
    /// starts from the latest *published* snapshot, and pages are
    /// content-addressed by globally unique id, so a replica can never
    /// serve stale bytes: it either has the exact page or it is skipped.
    ///
    /// Returns `(pages, bytes)` copied this round. Runs on the reaper tick
    /// when [`BlobSeer::start_reaper`] is active, or whenever
    /// [`BlobSeer::sync_read_replicas`] pumps it explicitly.
    pub fn sync_read_replicas(&self, p: &Proc) -> (u64, u64) {
        if self.replicas.is_empty() {
            return (0, 0);
        }
        let mut pages_total = 0u64;
        let mut bytes_total = 0u64;
        // blob_ids is sorted — the sync order is deterministic.
        for blob in self.vm.blob_ids() {
            // Deleted blobs (or a VM pause) skip; retry next round.
            let Ok(snap) = self.vm.snapshot(p, blob, None) else {
                continue;
            };
            if self.replica_sync.watermark(blob) >= snap.version {
                continue;
            }
            if snap.version == 0 || snap.total_bytes == 0 {
                self.replica_sync.set_watermark(blob, snap.version);
                continue;
            }
            if let Ok((pages, bytes)) = self.sync_blob(p, blob, &snap) {
                pages_total += pages;
                bytes_total += bytes;
                self.replica_sync.set_watermark(blob, snap.version);
            }
        }
        self.replica_sync
            .copied_pages
            .fetch_add(pages_total, Ordering::Relaxed);
        self.replica_sync
            .copied_bytes
            .fetch_add(bytes_total, Ordering::Relaxed);
        self.replica_sync.rounds.fetch_add(1, Ordering::Relaxed);
        (pages_total, bytes_total)
    }

    /// Copy every page of `snap` that some replica misses. Fails (and the
    /// caller leaves the watermark untouched) if any page can neither be
    /// read from a primary nor landed on a replica.
    fn sync_blob(&self, p: &Proc, blob: BlobId, snap: &SnapshotInfo) -> BlobResult<(u64, u64)> {
        // analyze: allow-fn(panic-index): `need` and `payloads` are parallel
        // arrays; group indices are drawn from `0..need.len()`; the `[1..]`
        // provider slice follows a first()-is-Some check
        let mut fetch = |keys: &[NodeKey]| self.dht.get_batch(p, keys);
        let hits = collect_leaves(&mut fetch, blob, snap, 0, snap.total_bytes)?;
        let need: Vec<&LeafHit> = hits
            .iter()
            .filter(|h| self.replicas.iter().any(|r| !r.has_page(h.page.id)))
            .collect();
        if need.is_empty() {
            return Ok((0, 0));
        }
        // Pull each missing page once, batched per primary (first listed
        // holder), with per-page failover over the remaining holders.
        let mut groups: BTreeMap<u32, Vec<usize>> = BTreeMap::new();
        for (i, h) in need.iter().enumerate() {
            let Some(&node) = h.page.providers.first() else {
                return Err(BlobError::PageUnavailable {
                    detail: format!("page {:?} has no replicas to sync from", h.page.id),
                });
            };
            groups.entry(node.0).or_default().push(i);
        }
        let mut payloads: Vec<Option<Payload>> = vec![None; need.len()];
        for (node, idxs) in groups {
            let ids: Vec<PageId> = idxs.iter().map(|&i| need[i].page.id).collect();
            let results = match self.provider_map.get(&NodeId(node)) {
                Some(prov) => prov.get_pages(p, &ids),
                None => ids
                    .iter()
                    .map(|id| {
                        Err(BlobError::PageUnavailable {
                            detail: format!("sync source {node} unknown for page {id:?}"),
                        })
                    })
                    .collect(),
            };
            for (&i, res) in idxs.iter().zip(results) {
                match res {
                    Ok(data) => payloads[i] = Some(data),
                    Err(e) => {
                        // Batched source failed this page: try the other
                        // primaries one by one before giving up the blob.
                        let holders = &need[i].page.providers[1..];
                        let data = holders
                            .iter()
                            .filter_map(|n| self.provider_map.get(n))
                            .find_map(|pr| pr.get_page(p, need[i].page.id).ok());
                        payloads[i] = Some(data.ok_or(e)?);
                    }
                }
            }
        }
        let payloads: Vec<Payload> = payloads
            .into_iter()
            .map(|o| {
                o.ok_or_else(|| BlobError::Internal {
                    detail: "replica sync fetched fewer pages than planned".into(),
                })
            })
            .collect::<BlobResult<_>>()?;
        // Land the copies, batched per replica; only pages that replica is
        // actually missing. `put_pages` on an unmanaged replica is
        // book-safe: it stores and counts, with no reservation to consume.
        let mut pages_copied = 0u64;
        let mut bytes_copied = 0u64;
        for r in &self.replicas {
            let batch: Vec<(PageId, Payload)> = need
                .iter()
                .zip(&payloads)
                .filter(|(h, _)| !r.has_page(h.page.id))
                .map(|(h, d)| (h.page.id, d.clone()))
                .collect();
            if batch.is_empty() {
                continue;
            }
            let n = batch.len() as u64;
            let bytes: u64 = batch.iter().map(|(_, d)| d.len()).sum();
            for res in r.put_pages(p, batch) {
                res?;
            }
            pages_copied += n;
            bytes_copied += bytes;
        }
        Ok((pages_copied, bytes_copied))
    }
}

/// A deployed BlobSeer instance.
#[derive(Clone)]
pub struct BlobSeer {
    svc: Arc<Services>,
}

/// Handle to a running background reaper (see [`BlobSeer::start_reaper`]).
#[derive(Clone)]
pub struct ReaperHandle {
    stop: fabric::prelude::Gate,
    ticks: Arc<std::sync::atomic::AtomicU64>,
}

impl ReaperHandle {
    /// Ask the reaper to exit; it finishes its current sleep/sweep first.
    /// Callable from any process or the coordinating thread. Idempotent.
    pub fn stop(&self) {
        self.stop.set();
    }

    /// Completed sweep count (diagnostics).
    pub fn ticks(&self) -> u64 {
        self.ticks.load(std::sync::atomic::Ordering::Relaxed)
    }
}

impl BlobSeer {
    /// Deploy all services on `fabric` according to `layout`. Impossible
    /// topologies come back as [`BlobError::InvalidTopology`] (see
    /// [`Layout::validate`]), never a panic.
    pub fn deploy(fabric: &Fabric, config: BlobSeerConfig, layout: Layout) -> BlobResult<BlobSeer> {
        layout.validate(fabric.spec(), &config)?;
        let store_opts = config.store_options();
        let mut providers = Vec::with_capacity(layout.providers.len());
        for (i, &node) in layout.providers.iter().enumerate() {
            let prov = match &config.persist_dir {
                None => Provider::new_mem(node),
                Some(dir) => Provider::new_persistent_with(
                    node,
                    &dir.join(format!("provider-{i}")),
                    store_opts.clone(),
                )?,
            };
            providers.push(Arc::new(prov));
        }
        let mut replicas = Vec::with_capacity(layout.read_replicas.len());
        for (i, &node) in layout.read_replicas.iter().enumerate() {
            let prov = match &config.persist_dir {
                None => Provider::new_mem(node),
                Some(dir) => Provider::new_persistent_with(
                    node,
                    &dir.join(format!("replica-{i}")),
                    store_opts.clone(),
                )?,
            };
            replicas.push(Arc::new(prov));
        }
        // Replicas resolve through the same map as primaries (reads are
        // addressed by node id) but are never listed with the provider
        // manager — they take no write allocations.
        let provider_map: HashMap<NodeId, Arc<Provider>> = providers
            .iter()
            .chain(replicas.iter())
            .map(|pr| (pr.node(), pr.clone()))
            .collect();
        let meta_servers: Vec<Arc<MetaServer>> = layout
            .meta
            .iter()
            .enumerate()
            .map(|(i, &n)| match &config.persist_dir {
                None => Ok(Arc::new(MetaServer::new(n))),
                Some(dir) => Ok(Arc::new(MetaServer::new_persistent(
                    n,
                    &dir.join(format!("meta-{i}")),
                    store_opts.clone(),
                )?)),
            })
            .collect::<BlobResult<_>>()?;
        let dht = Arc::new(MetaDht::new(meta_servers, config.meta_cpu_ops));
        let mut pm = ProviderManager::new(
            layout.pm,
            fabric.clone(),
            providers.clone(),
            config.alloc,
            config.ctl_msg_bytes,
            // Reservation leases mirror the VM's write timeout unless the
            // timeout section decouples them: both sides of a write
            // (version + capacity) expire on the same clock.
            config.timeouts.effective_lease_timeout_ns(),
        );
        if let Some(dir) = &config.persist_dir {
            pm = pm.with_persistence(&dir.join("pm"), store_opts)?;
        }
        let pm = Arc::new(pm);
        let vm = Arc::new(VersionManager::new(
            layout.vm,
            fabric.clone(),
            dht.clone(),
            config.page_size,
            config.ctl_msg_bytes,
            config.vm_cpu_ops,
            config.timeouts,
        ));
        Ok(BlobSeer {
            svc: Arc::new(Services {
                vm,
                pm,
                dht,
                providers,
                replicas,
                provider_map,
                config,
                layout,
                reaper_paused: AtomicBool::new(false),
                replica_sync: ReplicaSync::default(),
            }),
        })
    }

    /// Deploy with the paper layout on a fabric whose spec allows it.
    pub fn deploy_paper(fabric: &Fabric, config: BlobSeerConfig) -> BlobResult<BlobSeer> {
        let layout = Layout::paper(fabric.spec());
        Self::deploy(fabric, config, layout)
    }

    /// New client handle.
    pub fn client(&self) -> BlobClient {
        BlobClient::new(self.svc.clone())
    }

    /// A client whose read cache is disabled — every read takes the full
    /// fabric path. The reference point for cache-correctness tests.
    pub fn uncached_client(&self) -> BlobClient {
        BlobClient::uncached(self.svc.clone())
    }

    pub fn config(&self) -> &BlobSeerConfig {
        &self.svc.config
    }

    pub fn layout(&self) -> &Layout {
        &self.svc.layout
    }

    pub fn version_manager(&self) -> &Arc<VersionManager> {
        &self.svc.vm
    }

    pub fn provider_manager(&self) -> &Arc<ProviderManager> {
        &self.svc.pm
    }

    pub fn metadata_dht(&self) -> &Arc<MetaDht> {
        &self.svc.dht
    }

    /// Start the optional background reaper on the version-manager node:
    /// every `config.timeouts.reaper_interval_ns` it force-completes expired
    /// pending writes on every BLOB (`VersionManager::reap_all`), reclaims
    /// expired provider reservation leases
    /// (`ProviderManager::reap_expired_leases`) and runs one registry GC
    /// epoch (`VersionManager::gc_registry`) — so dead writers and deleted
    /// BLOBs are cleaned up without waiting for the next `assign`/`commit`.
    /// Cheap per tick: both reap checks are O(1) front peeks of deadline
    /// queues when nothing expired.
    ///
    /// The service runs until [`ReaperHandle::stop`]; in sim mode a driver
    /// process must stop it once the workload is done, or virtual time never
    /// runs out of events. While `inject(FaultTarget::Reaper, ..)` holds the
    /// daemon down, ticks pass without sweeping.
    pub fn start_reaper(&self, fabric: &Fabric) -> ReaperHandle {
        let interval_ns = self.svc.config.timeouts.reaper_interval_ns;
        assert!(interval_ns > 0, "reaper needs a positive interval");
        let stop = fabric.gate();
        let svc = self.svc.clone();
        let stop2 = stop.clone();
        let ticks = Arc::new(std::sync::atomic::AtomicU64::new(0));
        let ticks2 = ticks.clone();
        fabric.spawn(self.svc.layout.vm, "reaper", move |p| {
            while !stop2.is_set() {
                p.sleep(interval_ns);
                if stop2.is_set() {
                    break;
                }
                if svc.reaper_paused.load(Ordering::Acquire) {
                    continue;
                }
                // A failed sweep (metadata outage mid-force-complete) keeps
                // the blob's reap queue intact; the next tick retries.
                let _ = svc.vm.reap_all(p);
                svc.pm.reap_expired_leases(p);
                svc.vm.gc_registry();
                // Read-replica sync rides the same tick: copy newly
                // published pages onto the replica tier (no-op without
                // replicas; failed copies retry next tick).
                svc.sync_read_replicas(p);
                ticks2.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
            }
        });
        ReaperHandle { stop, ticks }
    }

    pub fn providers(&self) -> &[Arc<Provider>] {
        &self.svc.providers
    }

    /// The dedicated read-replica providers (empty unless the layout runs
    /// some).
    pub fn read_replicas(&self) -> &[Arc<Provider>] {
        &self.svc.replicas
    }

    /// Book-keeping of the replica sync service (watermarks, copy
    /// counters).
    pub fn replica_sync(&self) -> &ReplicaSync {
        &self.svc.replica_sync
    }

    /// Pump one round of read-replica sync from `p` (see
    /// [`Services::sync_read_replicas`]). The background reaper runs the
    /// same round every tick; tests and benches call this for explicit
    /// control. Returns `(pages, bytes)` copied.
    pub fn sync_read_replicas(&self, p: &Proc) -> (u64, u64) {
        self.svc.sync_read_replicas(p)
    }

    /// Inject `fault` into `target`. One surface for hand-written failure
    /// tests and generated chaos schedules; see [`crate::fault`] for the
    /// supported (target, fault) matrix. Unknown indices come back as
    /// [`BlobError::NoSuchTarget`], unmodeled combinations as
    /// [`BlobError::UnsupportedFault`]. Idempotent; undo with
    /// [`Self::heal`].
    pub fn inject(&self, target: FaultTarget, fault: Fault) -> BlobResult<()> {
        match (target, fault) {
            (FaultTarget::Provider(i), Fault::Crash) => {
                self.provider_at(i)?.kill();
                Ok(())
            }
            (FaultTarget::MetaServer(i), Fault::Crash) => {
                self.meta_server_at(i)?.kill();
                Ok(())
            }
            (FaultTarget::VersionManager, Fault::Pause) => {
                self.svc.vm.set_paused(true);
                Ok(())
            }
            (FaultTarget::VersionManager, Fault::Crash) => Err(BlobError::UnsupportedFault(
                "version-manager crash needs the failover subsystem (roadmap); \
                 use Fault::Pause to model an unresponsive VM"
                    .into(),
            )),
            (FaultTarget::Reaper, Fault::Crash | Fault::Pause) => {
                self.svc.reaper_paused.store(true, Ordering::Release);
                Ok(())
            }
            (FaultTarget::ReadReplica(i), Fault::Crash) => {
                self.replica_at(i)?.kill();
                Ok(())
            }
            (FaultTarget::ReadReplica(i), Fault::CrashRestart) => self.replica_at(i)?.crash_wipe(),
            (FaultTarget::Provider(i), Fault::CrashRestart) => self.provider_at(i)?.crash_wipe(),
            (FaultTarget::MetaServer(i), Fault::CrashRestart) => {
                self.meta_server_at(i)?.crash_wipe()
            }
            (FaultTarget::VersionManager | FaultTarget::Reaper, Fault::CrashRestart) => {
                Err(BlobError::UnsupportedFault(format!(
                    "{target} has no durable store to restart from; \
                     CrashRestart targets providers and metadata servers"
                )))
            }
            (
                FaultTarget::Provider(_) | FaultTarget::MetaServer(_) | FaultTarget::ReadReplica(_),
                Fault::Pause,
            ) => Err(BlobError::UnsupportedFault(format!(
                "{target} cannot pause: storage services model crash-stop \
                     failures; use Fault::Crash"
            ))),
        }
    }

    /// Undo every fault injected into `target` (revive a crashed service,
    /// resume a paused one, restart a crash-wiped one from its durable
    /// store). Idempotent; healing a target that was never faulted is a
    /// no-op.
    ///
    /// A crash-wiped provider recovers in two steps whose order matters:
    /// first [`Provider::recover`] rebuilds the page index and counters from
    /// disk (zeroing reservations — the restarted process has no memory of
    /// promises), then [`ProviderManager::reinstate`] re-reserves the
    /// outstanding lease entries that straddled the crash, so the capacity
    /// books balance at the next quiescence check.
    pub fn heal(&self, target: FaultTarget) -> BlobResult<()> {
        match target {
            FaultTarget::Provider(i) => {
                let pr = self.provider_at(i)?;
                if pr.is_wiped() {
                    pr.recover()?;
                    self.svc.pm.reinstate(pr.node());
                } else {
                    pr.revive();
                }
            }
            FaultTarget::MetaServer(i) => {
                let ms = self.meta_server_at(i)?;
                if ms.is_wiped() {
                    ms.recover()?;
                } else {
                    ms.revive();
                }
            }
            // A crash-wiped replica recovers its durable pages, nothing
            // more: it holds no leases, so there is no `reinstate` step —
            // whatever the wipe lost beyond disk is re-copied by the next
            // sync round.
            FaultTarget::ReadReplica(i) => {
                let pr = self.replica_at(i)?;
                if pr.is_wiped() {
                    pr.recover()?;
                } else {
                    pr.revive();
                }
            }
            FaultTarget::VersionManager => self.svc.vm.set_paused(false),
            FaultTarget::Reaper => self.svc.reaper_paused.store(false, Ordering::Release),
        }
        Ok(())
    }

    /// Heal every possible target — chaos harnesses call this at the end of
    /// a schedule so quiescence is always reached with a whole cluster.
    pub fn heal_all(&self) {
        for i in 0..self.svc.providers.len() {
            let _ = self.heal(FaultTarget::Provider(i));
        }
        for i in 0..self.svc.dht.servers().len() {
            let _ = self.heal(FaultTarget::MetaServer(i));
        }
        for i in 0..self.svc.replicas.len() {
            let _ = self.heal(FaultTarget::ReadReplica(i));
        }
        let _ = self.heal(FaultTarget::VersionManager);
        let _ = self.heal(FaultTarget::Reaper);
    }

    fn provider_at(&self, i: usize) -> BlobResult<&Arc<Provider>> {
        self.svc.providers.get(i).ok_or_else(|| {
            BlobError::NoSuchTarget(format!(
                "provider[{i}] (deployment has {})",
                self.svc.providers.len()
            ))
        })
    }

    fn replica_at(&self, i: usize) -> BlobResult<&Arc<Provider>> {
        self.svc.replicas.get(i).ok_or_else(|| {
            BlobError::NoSuchTarget(format!(
                "read-replica[{i}] (deployment has {})",
                self.svc.replicas.len()
            ))
        })
    }

    fn meta_server_at(&self, i: usize) -> BlobResult<&Arc<MetaServer>> {
        self.svc.dht.servers().get(i).ok_or_else(|| {
            BlobError::NoSuchTarget(format!(
                "meta-server[{i}] (deployment has {})",
                self.svc.dht.servers().len()
            ))
        })
    }

    /// Total bytes stored across providers (all replicas counted).
    pub fn total_stored_bytes(&self) -> u64 {
        self.svc.providers.iter().map(|p| p.stored_bytes()).sum()
    }

    /// Spread of provider loads: (min, max) stored bytes — used by the
    /// load-balancing tests and benches.
    pub fn load_spread(&self) -> (u64, u64) {
        let loads: Vec<u64> = self
            .svc
            .providers
            .iter()
            .map(|p| p.stored_bytes())
            .collect();
        (
            loads.iter().copied().min().unwrap_or(0),
            loads.iter().copied().max().unwrap_or(0),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_layout_matches_section_4_1() {
        let spec = ClusterSpec::orsay_270();
        let l = Layout::paper(&spec);
        assert_eq!(l.meta.len(), 20);
        assert_eq!(l.providers.len(), 247); // 270 - vm - pm - namespace - 20 meta
                                            // No overlap between service nodes and provider nodes.
        assert!(!l.providers.contains(&l.vm));
        assert!(!l.providers.contains(&l.pm));
        assert!(!l.providers.contains(&l.namespace));
        for m in &l.meta {
            assert!(!l.providers.contains(m));
        }
    }

    #[test]
    fn deploy_on_tiny_cluster() {
        let fx = Fabric::sim(ClusterSpec::tiny(4));
        let layout = Layout::compact(fx.spec());
        let bs = BlobSeer::deploy(&fx, BlobSeerConfig::test_small(1024), layout).unwrap();
        assert_eq!(bs.providers().len(), 4);
        assert_eq!(bs.total_stored_bytes(), 0);
    }
}
