//! Deployment wiring: build a full BlobSeer service bundle on a fabric,
//! following the paper's layout (§4.1): "we deployed one version manager,
//! one provider manager, one node for the namespace manager and 20 metadata
//! providers. The remaining nodes are used as data providers."

use std::collections::HashMap;
use std::sync::Arc;

use fabric::{ClusterSpec, Fabric, NodeId};

use crate::client::BlobClient;
use crate::config::BlobSeerConfig;
use crate::dht::{MetaDht, MetaServer};
use crate::error::{BlobError, BlobResult};
use crate::provider::Provider;
use crate::provider_manager::ProviderManager;
use crate::version_manager::VersionManager;

/// Which node hosts which service.
#[derive(Debug, Clone)]
pub struct Layout {
    pub vm: NodeId,
    pub pm: NodeId,
    /// Reserved for the BSFS namespace manager (deployed by the `bsfs`
    /// crate; kept in the layout so the paper's node budget is explicit).
    pub namespace: NodeId,
    pub meta: Vec<NodeId>,
    pub providers: Vec<NodeId>,
}

impl Layout {
    /// The paper's deployment: dedicated nodes for the version manager,
    /// provider manager and namespace manager, 20 metadata providers, and
    /// every remaining node a data provider.
    pub fn paper(spec: &ClusterSpec) -> Layout {
        assert!(
            spec.nodes >= 30,
            "paper layout needs >= 30 nodes, got {}",
            spec.nodes
        );
        Layout {
            vm: NodeId(0),
            pm: NodeId(1),
            namespace: NodeId(2),
            meta: (3..23).map(NodeId).collect(),
            providers: (23..spec.nodes).map(NodeId).collect(),
        }
    }

    /// Everything-on-few-nodes layout for unit tests and live-mode examples.
    pub fn compact(spec: &ClusterSpec) -> Layout {
        assert!(spec.nodes >= 1);
        Layout {
            vm: NodeId(0),
            pm: NodeId(0),
            namespace: NodeId(0),
            meta: vec![NodeId(0)],
            providers: spec.all_nodes().collect(),
        }
    }

    /// Custom number of metadata providers (for the metadata-scaling
    /// ablation), keeping the rest of the paper layout.
    pub fn paper_with_meta(spec: &ClusterSpec, n_meta: u32) -> Layout {
        assert!(spec.nodes >= n_meta + 4);
        Layout {
            vm: NodeId(0),
            pm: NodeId(1),
            namespace: NodeId(2),
            meta: (3..3 + n_meta).map(NodeId).collect(),
            providers: (3 + n_meta..spec.nodes).map(NodeId).collect(),
        }
    }
}

/// Shared service handles (one bundle per deployment).
pub struct Services {
    pub vm: Arc<VersionManager>,
    pub pm: Arc<ProviderManager>,
    pub dht: Arc<MetaDht>,
    pub providers: Vec<Arc<Provider>>,
    pub provider_map: HashMap<NodeId, Arc<Provider>>,
    pub config: BlobSeerConfig,
    pub layout: Layout,
}

/// A deployed BlobSeer instance.
#[derive(Clone)]
pub struct BlobSeer {
    svc: Arc<Services>,
}

/// Handle to a running background reaper (see [`BlobSeer::start_reaper`]).
#[derive(Clone)]
pub struct ReaperHandle {
    stop: fabric::prelude::Gate,
    ticks: Arc<std::sync::atomic::AtomicU64>,
}

impl ReaperHandle {
    /// Ask the reaper to exit; it finishes its current sleep/sweep first.
    /// Callable from any process or the coordinating thread. Idempotent.
    pub fn stop(&self) {
        self.stop.set();
    }

    /// Completed sweep count (diagnostics).
    pub fn ticks(&self) -> u64 {
        self.ticks.load(std::sync::atomic::Ordering::Relaxed)
    }
}

impl BlobSeer {
    /// Deploy all services on `fabric` according to `layout`.
    pub fn deploy(fabric: &Fabric, config: BlobSeerConfig, layout: Layout) -> BlobResult<BlobSeer> {
        assert!(
            !layout.providers.is_empty(),
            "deployment needs at least one data provider"
        );
        let mut providers = Vec::with_capacity(layout.providers.len());
        for (i, &node) in layout.providers.iter().enumerate() {
            let prov = match &config.persist_dir {
                None => Provider::new_mem(node),
                Some(dir) => Provider::new_persistent(node, &dir.join(format!("provider-{i}")))?,
            };
            providers.push(Arc::new(prov));
        }
        let provider_map: HashMap<NodeId, Arc<Provider>> =
            providers.iter().map(|pr| (pr.node(), pr.clone())).collect();
        if provider_map.len() != providers.len() {
            return Err(BlobError::Persistence(
                "duplicate provider nodes in layout".into(),
            ));
        }
        let meta_servers: Vec<Arc<MetaServer>> = layout
            .meta
            .iter()
            .map(|&n| Arc::new(MetaServer::new(n)))
            .collect();
        let dht = Arc::new(MetaDht::new(meta_servers, config.meta_cpu_ops));
        let pm = Arc::new(ProviderManager::new(
            layout.pm,
            fabric.clone(),
            providers.clone(),
            config.alloc,
            config.ctl_msg_bytes,
            // Reservation leases mirror the VM's write timeout: both sides
            // of a write (version + capacity) expire on the same clock.
            config.write_timeout_ns,
        ));
        let vm = Arc::new(VersionManager::new(
            layout.vm,
            fabric.clone(),
            dht.clone(),
            config.page_size,
            config.ctl_msg_bytes,
            config.vm_cpu_ops,
            config.write_timeout_ns,
        ));
        Ok(BlobSeer {
            svc: Arc::new(Services {
                vm,
                pm,
                dht,
                providers,
                provider_map,
                config,
                layout,
            }),
        })
    }

    /// Deploy with the paper layout on a fabric whose spec allows it.
    pub fn deploy_paper(fabric: &Fabric, config: BlobSeerConfig) -> BlobResult<BlobSeer> {
        let layout = Layout::paper(fabric.spec());
        Self::deploy(fabric, config, layout)
    }

    /// New client handle.
    pub fn client(&self) -> BlobClient {
        BlobClient::new(self.svc.clone())
    }

    pub fn config(&self) -> &BlobSeerConfig {
        &self.svc.config
    }

    pub fn layout(&self) -> &Layout {
        &self.svc.layout
    }

    pub fn version_manager(&self) -> &Arc<VersionManager> {
        &self.svc.vm
    }

    pub fn provider_manager(&self) -> &Arc<ProviderManager> {
        &self.svc.pm
    }

    pub fn metadata_dht(&self) -> &Arc<MetaDht> {
        &self.svc.dht
    }

    /// Start the optional background reaper on the version-manager node:
    /// every `interval_ns` it force-completes expired pending writes on
    /// every BLOB (`VersionManager::reap_all`), reclaims expired provider
    /// reservation leases (`ProviderManager::reap_expired_leases`) and runs
    /// one registry GC epoch (`VersionManager::gc_registry`) — so dead
    /// writers and deleted BLOBs are cleaned up without waiting for the next
    /// `assign`/`commit`. Cheap per tick: both reap checks are O(1) front
    /// peeks of deadline queues when nothing expired.
    ///
    /// The service runs until [`ReaperHandle::stop`]; in sim mode a driver
    /// process must stop it once the workload is done, or virtual time never
    /// runs out of events.
    pub fn start_reaper(&self, fabric: &Fabric, interval_ns: u64) -> ReaperHandle {
        assert!(interval_ns > 0, "reaper needs a positive interval");
        let stop = fabric.gate();
        let svc = self.svc.clone();
        let stop2 = stop.clone();
        let ticks = Arc::new(std::sync::atomic::AtomicU64::new(0));
        let ticks2 = ticks.clone();
        fabric.spawn(self.svc.layout.vm, "reaper", move |p| {
            while !stop2.is_set() {
                p.sleep(interval_ns);
                if stop2.is_set() {
                    break;
                }
                // A failed sweep (metadata outage mid-force-complete) keeps
                // the blob's reap queue intact; the next tick retries.
                let _ = svc.vm.reap_all(p);
                svc.pm.reap_expired_leases(p);
                svc.vm.gc_registry();
                ticks2.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
            }
        });
        ReaperHandle { stop, ticks }
    }

    pub fn providers(&self) -> &[Arc<Provider>] {
        &self.svc.providers
    }

    /// Failure injection: kill the i-th provider.
    pub fn kill_provider(&self, i: usize) {
        self.svc.providers[i].kill();
    }

    /// Bring the i-th provider back.
    pub fn revive_provider(&self, i: usize) {
        self.svc.providers[i].revive();
    }

    /// Total bytes stored across providers (all replicas counted).
    pub fn total_stored_bytes(&self) -> u64 {
        self.svc.providers.iter().map(|p| p.stored_bytes()).sum()
    }

    /// Spread of provider loads: (min, max) stored bytes — used by the
    /// load-balancing tests and benches.
    pub fn load_spread(&self) -> (u64, u64) {
        let loads: Vec<u64> = self
            .svc
            .providers
            .iter()
            .map(|p| p.stored_bytes())
            .collect();
        (
            loads.iter().copied().min().unwrap_or(0),
            loads.iter().copied().max().unwrap_or(0),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_layout_matches_section_4_1() {
        let spec = ClusterSpec::orsay_270();
        let l = Layout::paper(&spec);
        assert_eq!(l.meta.len(), 20);
        assert_eq!(l.providers.len(), 247); // 270 - vm - pm - namespace - 20 meta
                                            // No overlap between service nodes and provider nodes.
        assert!(!l.providers.contains(&l.vm));
        assert!(!l.providers.contains(&l.pm));
        assert!(!l.providers.contains(&l.namespace));
        for m in &l.meta {
            assert!(!l.providers.contains(m));
        }
    }

    #[test]
    fn deploy_on_tiny_cluster() {
        let fx = Fabric::sim(ClusterSpec::tiny(4));
        let layout = Layout::compact(fx.spec());
        let bs = BlobSeer::deploy(&fx, BlobSeerConfig::test_small(1024), layout).unwrap();
        assert_eq!(bs.providers().len(), 4);
        assert_eq!(bs.total_stored_bytes(), 0);
    }
}
