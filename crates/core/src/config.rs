//! BlobSeer deployment configuration.

use std::path::PathBuf;

use fabric::MILLIS;

/// Page-placement policy used by the provider manager (paper §3.1.1: "the
/// distribution of pages to providers aims at achieving load-balancing").
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AllocStrategy {
    /// Cycle through providers.
    RoundRobin,
    /// Uniformly random provider per page.
    Random,
    /// Provider currently storing the fewest bytes (random tie-break) —
    /// the default, closest to BlobSeer's load-balancing goal.
    LeastLoaded,
    /// Prefer the writer's own node when it hosts a provider, then fall back
    /// to least-loaded (short-circuit writes; useful for ablations).
    LocalFirst,
}

/// Every deadline and cadence of a deployment in one place, so a chaos
/// schedule (or an operator) can stretch or compress them coherently — a
/// fault window that must stay "well under the write timeout" reads the same
/// struct the version manager enforces it from.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Timeouts {
    /// If set, a version left uncommitted for this long may be
    /// force-completed from its manifest by the version manager (lazily,
    /// from within other requests, or by the background reaper) so one
    /// crashed writer cannot stall publication forever.
    pub write_timeout_ns: Option<u64>,
    /// Expiry of provider reservation leases. `None` mirrors
    /// `write_timeout_ns` — both sides of a write (version + capacity)
    /// expire on the same clock unless explicitly decoupled.
    pub lease_timeout_ns: Option<u64>,
    /// Sleep between background-reaper sweeps (`BlobSeer::start_reaper`).
    pub reaper_interval_ns: u64,
    /// Poll cadence of processes parked behind a paused service (fault
    /// injection); bounds how long after a heal the service resumes.
    pub pause_poll_ns: u64,
}

impl Default for Timeouts {
    fn default() -> Self {
        Timeouts {
            write_timeout_ns: Some(30_000 * MILLIS),
            lease_timeout_ns: None,
            reaper_interval_ns: 100 * MILLIS,
            pause_poll_ns: 5 * MILLIS,
        }
    }
}

impl Timeouts {
    /// The lease deadline actually enforced: explicit, or mirroring the
    /// write timeout.
    pub fn effective_lease_timeout_ns(&self) -> Option<u64> {
        self.lease_timeout_ns.or(self.write_timeout_ns)
    }

    pub fn with_write_timeout(mut self, t: Option<u64>) -> Self {
        self.write_timeout_ns = t;
        self
    }

    pub fn with_lease_timeout(mut self, t: Option<u64>) -> Self {
        self.lease_timeout_ns = t;
        self
    }

    pub fn with_reaper_interval(mut self, ns: u64) -> Self {
        assert!(ns > 0, "reaper needs a positive interval");
        self.reaper_interval_ns = ns;
        self
    }

    pub fn with_pause_poll(mut self, ns: u64) -> Self {
        assert!(ns > 0, "pause poll must be positive");
        self.pause_poll_ns = ns;
        self
    }

    /// Stretch (`factor > 1`) or compress (`factor < 1`) every deadline and
    /// cadence by the same factor — chaos runs use this to slow a whole
    /// deployment down without breaking the invariant that fault windows fit
    /// inside write timeouts.
    pub fn scaled(self, factor: f64) -> Self {
        assert!(
            factor.is_finite() && factor > 0.0,
            "scale factor must be positive and finite, got {factor}"
        );
        let scale = |ns: u64| ((ns as f64 * factor).round() as u64).max(1);
        Timeouts {
            write_timeout_ns: self.write_timeout_ns.map(scale),
            lease_timeout_ns: self.lease_timeout_ns.map(scale),
            reaper_interval_ns: scale(self.reaper_interval_ns),
            pause_poll_ns: scale(self.pause_poll_ns),
        }
    }
}

/// Tunables of a BlobSeer deployment.
#[derive(Debug, Clone)]
pub struct BlobSeerConfig {
    /// Page size in bytes. The paper's evaluation sets this to 64 MB to
    /// match HDFS's chunk size (§4.1).
    pub page_size: u64,
    /// Number of replicas per page (page-level replication, §3.1.1).
    pub replication: usize,
    /// Placement policy.
    pub alloc: AllocStrategy,
    /// Modeled size of one control RPC message (version requests, provider
    /// allocation, ...).
    pub ctl_msg_bytes: u64,
    /// Every deadline and cadence of the deployment (write timeout, lease
    /// expiry, reaper cadence, pause polling).
    pub timeouts: Timeouts,
    /// When true (default), `append`/`write` block until the new version is
    /// published, giving read-your-writes to the caller.
    pub wait_published: bool,
    /// Directory for pstore-backed persistence: providers keep pages, the
    /// metadata servers their tree nodes and the provider manager its lease
    /// book under per-service subdirectories, and `Fault::CrashRestart`
    /// becomes injectable. `None` keeps everything in memory, which matches
    /// the BlobSeer deployments measured in the paper — BerkeleyDB persisted
    /// lazily.
    pub persist_dir: Option<PathBuf>,
    /// Checkpoint cadence of every durable store in the deployment: after
    /// this many appended log bytes, the store snapshots its index, bounding
    /// crash-recovery replay to the bytes since the last checkpoint. `None`
    /// (default) never checkpoints — recovery replays the whole log.
    pub persist_checkpoint_bytes: Option<u64>,
    /// Abstract CPU operations charged on the version-manager node per
    /// request. This is the serialization point of the design; a nonzero
    /// cost lets the benchmarks observe the (small) contention the paper
    /// reports under hundreds of concurrent appenders.
    pub vm_cpu_ops: u64,
    /// Abstract CPU operations charged on a metadata provider per tree-node
    /// operation.
    pub meta_cpu_ops: u64,
    /// Byte budget of each client's snapshot-scoped read cache (published
    /// pages + metadata leaves, logical bytes). Published versions are
    /// immutable, so entries can only go cold, never stale. `0` disables
    /// the cache.
    pub read_cache_bytes: u64,
    /// Entry cap of each client's descriptor-index / page-size caches
    /// (LRU). Bounds client memory under many-blob churn.
    pub client_index_cache_entries: u64,
}

impl Default for BlobSeerConfig {
    fn default() -> Self {
        BlobSeerConfig {
            page_size: 64 * 1024 * 1024,
            replication: 1,
            alloc: AllocStrategy::LeastLoaded,
            ctl_msg_bytes: 128,
            timeouts: Timeouts::default(),
            wait_published: true,
            persist_dir: None,
            persist_checkpoint_bytes: None,
            vm_cpu_ops: 1_000_000,
            meta_cpu_ops: 100_000,
            // Room for a handful of paper-scale 64 MB pages per shard.
            read_cache_bytes: 1024 * 1024 * 1024,
            client_index_cache_entries: 1024,
        }
    }
}

impl BlobSeerConfig {
    /// Config matching the paper's microbenchmark deployment: 64 MB pages,
    /// no replication (throughput benchmarks), memory-resident pages.
    pub fn paper() -> Self {
        Self::default()
    }

    /// Small pages for functional tests on real bytes.
    pub fn test_small(page_size: u64) -> Self {
        BlobSeerConfig {
            page_size,
            ..Self::default()
        }
    }

    pub fn with_page_size(mut self, ps: u64) -> Self {
        assert!(ps > 0, "page size must be positive");
        self.page_size = ps;
        self
    }

    pub fn with_replication(mut self, r: usize) -> Self {
        assert!(r >= 1, "replication factor must be at least 1");
        self.replication = r;
        self
    }

    pub fn with_alloc(mut self, a: AllocStrategy) -> Self {
        self.alloc = a;
        self
    }

    pub fn with_wait_published(mut self, w: bool) -> Self {
        self.wait_published = w;
        self
    }

    pub fn with_persist_dir(mut self, dir: Option<PathBuf>) -> Self {
        self.persist_dir = dir;
        self
    }

    pub fn with_persist_checkpoint_bytes(mut self, bytes: Option<u64>) -> Self {
        assert!(
            bytes != Some(0),
            "a zero checkpoint cadence would checkpoint after every record; \
             use None to disable checkpointing"
        );
        self.persist_checkpoint_bytes = bytes;
        self
    }

    /// [`pstore::StoreOptions`] every durable store of this deployment opens
    /// with.
    pub fn store_options(&self) -> pstore::StoreOptions {
        pstore::StoreOptions {
            checkpoint_every_bytes: self.persist_checkpoint_bytes,
            ..pstore::StoreOptions::default()
        }
    }

    /// Set the client read-cache byte budget (`0` disables caching).
    pub fn with_read_cache_bytes(mut self, bytes: u64) -> Self {
        self.read_cache_bytes = bytes;
        self
    }

    /// Set the client descriptor/page-size cache entry cap.
    pub fn with_client_index_cache_entries(mut self, entries: u64) -> Self {
        assert!(entries >= 1, "index caches need room for at least one blob");
        self.client_index_cache_entries = entries;
        self
    }

    /// Replace the whole timeout section.
    pub fn with_timeouts(mut self, t: Timeouts) -> Self {
        self.timeouts = t;
        self
    }

    /// Convenience: set just the write timeout (tests mostly tune this one).
    pub fn with_write_timeout(mut self, t: Option<u64>) -> Self {
        self.timeouts.write_timeout_ns = t;
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_defaults() {
        let c = BlobSeerConfig::paper();
        assert_eq!(c.page_size, 64 * 1024 * 1024);
        assert_eq!(c.replication, 1);
        assert!(c.wait_published);
    }

    #[test]
    #[should_panic(expected = "replication factor")]
    fn zero_replication_rejected() {
        let _ = BlobSeerConfig::default().with_replication(0);
    }

    #[test]
    fn lease_timeout_mirrors_write_timeout_unless_set() {
        let t = Timeouts::default();
        assert_eq!(t.effective_lease_timeout_ns(), t.write_timeout_ns);
        let t = t.with_lease_timeout(Some(7));
        assert_eq!(t.effective_lease_timeout_ns(), Some(7));
        let t = t.with_write_timeout(None);
        assert_eq!(t.effective_lease_timeout_ns(), Some(7));
    }

    #[test]
    fn scaling_stretches_every_knob_coherently() {
        let t = Timeouts {
            write_timeout_ns: Some(1000),
            lease_timeout_ns: Some(500),
            reaper_interval_ns: 100,
            pause_poll_ns: 10,
        };
        let s = t.scaled(2.5);
        assert_eq!(s.write_timeout_ns, Some(2500));
        assert_eq!(s.lease_timeout_ns, Some(1250));
        assert_eq!(s.reaper_interval_ns, 250);
        assert_eq!(s.pause_poll_ns, 25);
        // Compression never produces a zero cadence.
        assert_eq!(t.scaled(1e-9).reaper_interval_ns, 1);
    }

    #[test]
    #[should_panic(expected = "scale factor")]
    fn bad_scale_factor_rejected() {
        let _ = Timeouts::default().scaled(0.0);
    }
}
