//! BlobSeer deployment configuration.

use std::path::PathBuf;

use fabric::MILLIS;

/// Page-placement policy used by the provider manager (paper §3.1.1: "the
/// distribution of pages to providers aims at achieving load-balancing").
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AllocStrategy {
    /// Cycle through providers.
    RoundRobin,
    /// Uniformly random provider per page.
    Random,
    /// Provider currently storing the fewest bytes (random tie-break) —
    /// the default, closest to BlobSeer's load-balancing goal.
    LeastLoaded,
    /// Prefer the writer's own node when it hosts a provider, then fall back
    /// to least-loaded (short-circuit writes; useful for ablations).
    LocalFirst,
}

/// Tunables of a BlobSeer deployment.
#[derive(Debug, Clone)]
pub struct BlobSeerConfig {
    /// Page size in bytes. The paper's evaluation sets this to 64 MB to
    /// match HDFS's chunk size (§4.1).
    pub page_size: u64,
    /// Number of replicas per page (page-level replication, §3.1.1).
    pub replication: usize,
    /// Placement policy.
    pub alloc: AllocStrategy,
    /// Modeled size of one control RPC message (version requests, provider
    /// allocation, ...).
    pub ctl_msg_bytes: u64,
    /// If set, a version left uncommitted for this long may be force-completed
    /// from its manifest by the version manager (lazily, from within other
    /// requests) so one crashed writer cannot stall publication forever.
    pub write_timeout_ns: Option<u64>,
    /// When true (default), `append`/`write` block until the new version is
    /// published, giving read-your-writes to the caller.
    pub wait_published: bool,
    /// Directory for pstore-backed page persistence on providers (live mode
    /// only; `None` keeps pages in memory, which matches the BlobSeer
    /// deployments measured in the paper — BerkeleyDB persisted lazily).
    pub persist_dir: Option<PathBuf>,
    /// Abstract CPU operations charged on the version-manager node per
    /// request. This is the serialization point of the design; a nonzero
    /// cost lets the benchmarks observe the (small) contention the paper
    /// reports under hundreds of concurrent appenders.
    pub vm_cpu_ops: u64,
    /// Abstract CPU operations charged on a metadata provider per tree-node
    /// operation.
    pub meta_cpu_ops: u64,
}

impl Default for BlobSeerConfig {
    fn default() -> Self {
        BlobSeerConfig {
            page_size: 64 * 1024 * 1024,
            replication: 1,
            alloc: AllocStrategy::LeastLoaded,
            ctl_msg_bytes: 128,
            write_timeout_ns: Some(30_000 * MILLIS),
            wait_published: true,
            persist_dir: None,
            vm_cpu_ops: 1_000_000,
            meta_cpu_ops: 100_000,
        }
    }
}

impl BlobSeerConfig {
    /// Config matching the paper's microbenchmark deployment: 64 MB pages,
    /// no replication (throughput benchmarks), memory-resident pages.
    pub fn paper() -> Self {
        Self::default()
    }

    /// Small pages for functional tests on real bytes.
    pub fn test_small(page_size: u64) -> Self {
        BlobSeerConfig {
            page_size,
            ..Self::default()
        }
    }

    pub fn with_page_size(mut self, ps: u64) -> Self {
        assert!(ps > 0, "page size must be positive");
        self.page_size = ps;
        self
    }

    pub fn with_replication(mut self, r: usize) -> Self {
        assert!(r >= 1, "replication factor must be at least 1");
        self.replication = r;
        self
    }

    pub fn with_alloc(mut self, a: AllocStrategy) -> Self {
        self.alloc = a;
        self
    }

    pub fn with_wait_published(mut self, w: bool) -> Self {
        self.wait_published = w;
        self
    }

    pub fn with_persist_dir(mut self, dir: Option<PathBuf>) -> Self {
        self.persist_dir = dir;
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_defaults() {
        let c = BlobSeerConfig::paper();
        assert_eq!(c.page_size, 64 * 1024 * 1024);
        assert_eq!(c.replication, 1);
        assert!(c.wait_published);
    }

    #[test]
    #[should_panic(expected = "replication factor")]
    fn zero_replication_rejected() {
        let _ = BlobSeerConfig::default().with_replication(0);
    }
}
