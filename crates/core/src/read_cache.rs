//! Snapshot-scoped read cache: pages and metadata-tree leaves of *published*
//! versions.
//!
//! BlobSeer never mutates a published snapshot — a page or metadata leaf is
//! immutable the moment its version publishes, which makes every entry here
//! effectively content-addressed under `(blob, version, page)`. The cache
//! therefore needs **zero invalidation protocol**: entries can only become
//! cold, never wrong. The one rule that keeps this true is enforced by the
//! caller ([`crate::client::BlobClient`]): nothing belonging to an
//! unpublished / pending version is ever inserted or consulted — pending
//! trees can still be rewritten by a write-timeout force-complete.
//!
//! Two building blocks live here:
//!
//! * [`LruMap`] — a deterministic weight-bounded LRU (recency tracked by a
//!   monotone tick in a `BTreeMap`, so eviction order is a pure function of
//!   the access sequence — no hash-iteration order, no wall clock). Also
//!   reused to bound the client's descriptor/page-size caches.
//! * [`ReadCache`] — the sharded page + leaf cache proper, with
//!   [`FabricStats`](fabric::FabricStats)-style counters
//!   ([`ReadCacheStats`]) so benches can gate on deterministic currencies.
//!
//! Capacity is accounted in *logical* payload bytes (`Payload::len`), so
//! ghost payloads in simulation benches exercise the same eviction behavior
//! as real bytes in live mode.

use std::collections::{BTreeMap, HashMap};
use std::hash::Hash;
use std::sync::atomic::{AtomicU64, Ordering};

use fabric::Payload;
use parking_lot::Mutex;

use crate::lock_ranks;
use crate::meta::{NodeKey, PageRef};
use crate::types::{BlobId, PageId, Version};

/// A deterministic, weight-bounded LRU map.
///
/// Recency is a monotone `u64` tick: every touch moves the key to the back
/// of a `BTreeMap<tick, key>` index, and eviction pops the smallest tick.
/// Given the same sequence of operations the same entries are evicted, on
/// every run — the property the chaos replay rail and bench baselines need.
#[derive(Debug)]
pub struct LruMap<K, V> {
    cap_weight: u64,
    used_weight: u64,
    tick: u64,
    evictions: u64,
    entries: HashMap<K, LruEntry<V>>,
    recency: BTreeMap<u64, K>,
}

#[derive(Debug)]
struct LruEntry<V> {
    value: V,
    weight: u64,
    tick: u64,
}

impl<K: Eq + Hash + Clone, V> LruMap<K, V> {
    /// An LRU holding at most `cap_weight` total weight. Zero capacity is a
    /// valid, always-empty map (inserts are dropped).
    pub fn new(cap_weight: u64) -> Self {
        LruMap {
            cap_weight,
            used_weight: 0,
            tick: 0,
            evictions: 0,
            entries: HashMap::new(),
            recency: BTreeMap::new(),
        }
    }

    pub fn len(&self) -> usize {
        self.entries.len()
    }

    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    pub fn used_weight(&self) -> u64 {
        self.used_weight
    }

    pub fn cap_weight(&self) -> u64 {
        self.cap_weight
    }

    /// Entries evicted over the map's lifetime (not removals).
    pub fn evictions(&self) -> u64 {
        self.evictions
    }

    /// Look up `key`, refreshing its recency on a hit.
    pub fn get(&mut self, key: &K) -> Option<&V> {
        let tick = self.tick + 1;
        let entry = self.entries.get_mut(key)?;
        let old = entry.tick;
        entry.tick = tick;
        self.tick = tick;
        self.recency.remove(&old);
        self.recency.insert(tick, key.clone());
        self.entries.get(key).map(|e| &e.value)
    }

    /// Does `key` live in the map? Does *not* refresh recency.
    pub fn contains(&self, key: &K) -> bool {
        self.entries.contains_key(key)
    }

    /// Insert `key -> value` with the given weight, evicting
    /// least-recently-used entries until the new total fits. An entry
    /// heavier than the whole capacity is dropped rather than thrashing the
    /// map. Returns the number of entries evicted.
    pub fn insert(&mut self, key: K, value: V, weight: u64) -> u64 {
        if weight > self.cap_weight {
            // Still displace an existing (now stale-weight) entry under the
            // same key, so the map never lies about containment.
            self.remove(&key);
            return 0;
        }
        if let Some(old) = self.entries.remove(&key) {
            self.used_weight -= old.weight;
            self.recency.remove(&old.tick);
        }
        let mut evicted = 0;
        while self.used_weight + weight > self.cap_weight {
            let Some((&oldest, _)) = self.recency.iter().next() else {
                break;
            };
            if let Some(k) = self.recency.remove(&oldest) {
                if let Some(e) = self.entries.remove(&k) {
                    self.used_weight -= e.weight;
                    self.evictions += 1;
                    evicted += 1;
                }
            }
        }
        self.tick += 1;
        let tick = self.tick;
        self.recency.insert(tick, key.clone());
        self.entries.insert(
            key,
            LruEntry {
                value,
                weight,
                tick,
            },
        );
        self.used_weight += weight;
        evicted
    }

    /// Remove `key` (a removal, not an eviction).
    pub fn remove(&mut self, key: &K) -> Option<V> {
        let entry = self.entries.remove(key)?;
        self.used_weight -= entry.weight;
        self.recency.remove(&entry.tick);
        Some(entry.value)
    }
}

/// Counters of a [`ReadCache`], mirroring the `FabricStats` pattern: plain
/// numbers a deterministic run reproduces exactly, so benches self-diff them
/// against committed baselines.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ReadCacheStats {
    /// Page lookups answered from the cache.
    pub page_hits: u64,
    /// Page lookups that missed (and went to a provider).
    pub page_misses: u64,
    /// Metadata-leaf lookups answered from the cache.
    pub leaf_hits: u64,
    /// Metadata-leaf lookups that missed (and went to the DHT).
    pub leaf_misses: u64,
    /// Entries displaced by capacity pressure (pages + leaves).
    pub evictions: u64,
    /// Entries inserted (pages + leaves).
    pub insertions: u64,
    /// Logical bytes currently resident.
    pub resident_bytes: u64,
    /// Entries currently resident.
    pub resident_entries: u64,
}

impl ReadCacheStats {
    /// Page hit rate in `[0, 1]`; 0 when no page lookups happened.
    pub fn page_hit_rate(&self) -> f64 {
        let total = self.page_hits + self.page_misses;
        if total == 0 {
            0.0
        } else {
            self.page_hits as f64 / total as f64
        }
    }
}

#[derive(Debug, Clone, PartialEq, Eq, Hash)]
enum CacheKey {
    /// A data page of a published version: `(blob, version, page)`.
    Page(BlobId, Version, PageId),
    /// A metadata-tree leaf. The [`NodeKey`] already scopes the entry to
    /// `(blob, owner version, page range)`, the tree's content address.
    Leaf(NodeKey),
}

#[derive(Debug, Clone)]
enum CacheVal {
    Page(Payload),
    Leaf(PageRef),
}

/// Fixed shard count: enough to keep reader threads in live mode off each
/// other's locks, few enough that the per-shard capacity still fits whole
/// paper-scale (64 MB) pages under the default budget.
const SHARDS: usize = 8;

/// Per-entry bookkeeping overhead charged against the byte budget, so a
/// million tiny leaves cannot hide from the cap.
const ENTRY_OVERHEAD: u64 = 64;

/// The client-side read cache: bounded, sharded, deterministic.
///
/// All locks rank [`lock_ranks::READ_CACHE`] — above every service lock, so
/// a cache probe can never participate in a cross-service lock cycle, and
/// the `analyze` wire-while-locked lint keeps fabric traffic out of the
/// critical sections (lookups copy out and drop the guard before any fetch).
#[derive(Debug)]
pub struct ReadCache {
    shards: Vec<Mutex<LruMap<CacheKey, CacheVal>>>,
    page_hits: AtomicU64,
    page_misses: AtomicU64,
    leaf_hits: AtomicU64,
    leaf_misses: AtomicU64,
    insertions: AtomicU64,
}

impl ReadCache {
    /// A cache bounded to `cap_bytes` logical bytes (split evenly across
    /// shards). `cap_bytes == 0` disables caching entirely: every lookup
    /// misses, every insert is dropped.
    pub fn new(cap_bytes: u64) -> Self {
        let per_shard = cap_bytes / SHARDS as u64;
        ReadCache {
            shards: (0..SHARDS)
                .map(|_| Mutex::with_rank(LruMap::new(per_shard), lock_ranks::READ_CACHE))
                .collect(),
            page_hits: AtomicU64::new(0),
            page_misses: AtomicU64::new(0),
            leaf_hits: AtomicU64::new(0),
            leaf_misses: AtomicU64::new(0),
            insertions: AtomicU64::new(0),
        }
    }

    /// A cache that never holds anything (used to compare cached vs uncached
    /// reads, and by deployments that opt out).
    pub fn disabled() -> Self {
        Self::new(0)
    }

    pub fn is_enabled(&self) -> bool {
        self.shards.iter().any(|s| s.lock().cap_weight() > 0)
    }

    /// Shard selector for `key`. Call sites index `self.shards` with this
    /// modulo `SHARDS` directly, so both the bounds and the lock rank stay
    /// visible to the `analyze` lints at the acquisition site.
    fn shard_mix(key: &CacheKey) -> u64 {
        match key {
            CacheKey::Page(_, _, id) => id.0 ^ id.1,
            CacheKey::Leaf(k) => k.blob.0 ^ k.version ^ k.page_lo ^ k.page_hi.rotate_left(17),
        }
    }

    /// Look up a full page of a published version. Returns a cheap clone of
    /// the payload (payloads are refcounted byte buffers / ghost lengths).
    pub fn get_page(&self, blob: BlobId, version: Version, id: PageId) -> Option<Payload> {
        let key = CacheKey::Page(blob, version, id);
        let hit = {
            let mut shard = self.shards[Self::shard_mix(&key) as usize % SHARDS].lock();
            match shard.get(&key) {
                Some(CacheVal::Page(p)) => Some(p.clone()),
                _ => None,
            }
        };
        match hit {
            Some(p) => {
                self.page_hits.fetch_add(1, Ordering::Relaxed);
                Some(p)
            }
            None => {
                self.page_misses.fetch_add(1, Ordering::Relaxed);
                None
            }
        }
    }

    /// Insert a full page of a **published** version.
    pub fn put_page(&self, blob: BlobId, version: Version, id: PageId, payload: Payload) {
        let weight = payload.len() + ENTRY_OVERHEAD;
        let key = CacheKey::Page(blob, version, id);
        let mut shard = self.shards[Self::shard_mix(&key) as usize % SHARDS].lock();
        if shard.cap_weight() == 0 {
            return;
        }
        shard.insert(key, CacheVal::Page(payload), weight);
        drop(shard);
        self.insertions.fetch_add(1, Ordering::Relaxed);
    }

    /// Look up the page ref under a metadata-tree leaf of a published
    /// version.
    pub fn get_leaf(&self, key: NodeKey) -> Option<PageRef> {
        let key = CacheKey::Leaf(key);
        let hit = {
            let mut shard = self.shards[Self::shard_mix(&key) as usize % SHARDS].lock();
            match shard.get(&key) {
                Some(CacheVal::Leaf(page)) => Some(page.clone()),
                _ => None,
            }
        };
        match hit {
            Some(page) => {
                self.leaf_hits.fetch_add(1, Ordering::Relaxed);
                Some(page)
            }
            None => {
                self.leaf_misses.fetch_add(1, Ordering::Relaxed);
                None
            }
        }
    }

    /// Insert a metadata-tree leaf of a **published** version.
    pub fn put_leaf(&self, key: NodeKey, page: PageRef) {
        // A leaf's budget weight: bookkeeping plus a nominal per-replica
        // cost for the provider list it carries.
        let weight = ENTRY_OVERHEAD + 48 + 8 * page.providers.len() as u64;
        let key = CacheKey::Leaf(key);
        let mut shard = self.shards[Self::shard_mix(&key) as usize % SHARDS].lock();
        if shard.cap_weight() == 0 {
            return;
        }
        shard.insert(key, CacheVal::Leaf(page), weight);
        drop(shard);
        self.insertions.fetch_add(1, Ordering::Relaxed);
    }

    /// Current counters. Resident figures sum over shards at call time.
    pub fn stats(&self) -> ReadCacheStats {
        let mut resident_bytes = 0;
        let mut resident_entries = 0;
        let mut evictions = 0;
        for shard in &self.shards {
            let s = shard.lock();
            resident_bytes += s.used_weight();
            resident_entries += s.len() as u64;
            evictions += s.evictions();
        }
        ReadCacheStats {
            page_hits: self.page_hits.load(Ordering::Relaxed),
            page_misses: self.page_misses.load(Ordering::Relaxed),
            leaf_hits: self.leaf_hits.load(Ordering::Relaxed),
            leaf_misses: self.leaf_misses.load(Ordering::Relaxed),
            evictions,
            insertions: self.insertions.load(Ordering::Relaxed),
            resident_bytes,
            resident_entries,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lru_evicts_in_recency_order() {
        let mut lru: LruMap<u32, &str> = LruMap::new(3);
        lru.insert(1, "a", 1);
        lru.insert(2, "b", 1);
        lru.insert(3, "c", 1);
        // Touch 1 so 2 becomes the LRU victim.
        assert_eq!(lru.get(&1), Some(&"a"));
        let evicted = lru.insert(4, "d", 1);
        assert_eq!(evicted, 1);
        assert!(lru.get(&2).is_none());
        assert!(lru.get(&1).is_some());
        assert!(lru.get(&3).is_some());
        assert!(lru.get(&4).is_some());
        assert_eq!(lru.evictions(), 1);
    }

    #[test]
    fn lru_weight_accounting_and_oversize() {
        let mut lru: LruMap<u32, ()> = LruMap::new(10);
        lru.insert(1, (), 4);
        lru.insert(2, (), 4);
        assert_eq!(lru.used_weight(), 8);
        // Re-inserting a key replaces its weight instead of double-counting.
        lru.insert(1, (), 2);
        assert_eq!(lru.used_weight(), 6);
        assert_eq!(lru.len(), 2);
        // Oversize entries are dropped and also displace the stale key.
        lru.insert(1, (), 100);
        assert!(!lru.contains(&1));
        assert_eq!(lru.used_weight(), 4);
        // A weight-7 insert must evict both residents (4 + 7 > 10).
        let evicted = lru.insert(3, (), 7);
        assert_eq!(evicted, 1);
        assert_eq!(lru.used_weight(), 7);
    }

    #[test]
    fn lru_zero_capacity_drops_everything() {
        let mut lru: LruMap<u32, ()> = LruMap::new(0);
        lru.insert(1, (), 0);
        // Zero-weight entries do fit a zero cap (0 + 0 <= 0)... but with the
        // ENTRY_OVERHEAD every real cache entry has weight > 0:
        let mut lru2: LruMap<u32, ()> = LruMap::new(0);
        lru2.insert(1, (), 1);
        assert!(lru2.is_empty());
    }

    #[test]
    fn cache_hits_misses_and_eviction_counters() {
        let cache = ReadCache::new(8 * 1024);
        let blob = BlobId(7);
        let id = PageId(1, 2);
        assert!(cache.get_page(blob, 3, id).is_none());
        cache.put_page(blob, 3, id, Payload::ghost(100));
        let got = cache.get_page(blob, 3, id).unwrap();
        assert_eq!(got.len(), 100);
        // Same page id under a different version is a distinct entry.
        assert!(cache.get_page(blob, 4, id).is_none());
        let s = cache.stats();
        assert_eq!(s.page_hits, 1);
        assert_eq!(s.page_misses, 2);
        assert_eq!(s.insertions, 1);
        assert_eq!(s.resident_entries, 1);
        assert_eq!(s.resident_bytes, 100 + ENTRY_OVERHEAD);
    }

    #[test]
    fn disabled_cache_never_holds() {
        let cache = ReadCache::disabled();
        assert!(!cache.is_enabled());
        cache.put_page(BlobId(1), 1, PageId(0, 0), Payload::ghost(10));
        assert!(cache.get_page(BlobId(1), 1, PageId(0, 0)).is_none());
        let s = cache.stats();
        assert_eq!(s.insertions, 0);
        assert_eq!(s.resident_entries, 0);
    }

    #[test]
    fn cache_capacity_bounds_resident_bytes() {
        // Tiny cache: every shard holds ~2 small pages.
        let cap = 8 * 256;
        let cache = ReadCache::new(cap);
        for i in 0..1000u64 {
            cache.put_page(BlobId(1), 1, PageId(i, i), Payload::ghost(64));
        }
        let s = cache.stats();
        assert!(s.resident_bytes <= cap, "{} > {cap}", s.resident_bytes);
        assert!(s.evictions > 0);
    }
}
