//! The metadata-provider DHT (paper §3.1.1: "the information concerning the
//! location of the pages for each BLOB version is kept in a Distributed
//! HashTable, managed by several metadata providers").
//!
//! Node keys are deterministic `(blob, version, page range)` triples
//! (see [`crate::meta`]); a key hashes to exactly one metadata provider, so
//! concurrent writers updating different tree paths talk to different
//! servers and scale out — the paper deploys 20 of them on 270 nodes.

use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;

use fabric::{NodeId, Proc};
use parking_lot::RwLock;

use crate::error::{BlobError, BlobResult};
use crate::meta::{NodeBody, NodeKey};

/// Stripe count of one server's node map. Keys spread via the upper bits of
/// the same FNV hash that routes them to a server (the lower bits picked the
/// server, so within a server the upper bits stay uniform).
const NODE_STRIPES: usize = 16;

fn stripe_of(key: &NodeKey) -> usize {
    ((hash_key(key) >> 32) % NODE_STRIPES as u64) as usize
}

/// One metadata server holding a shard of the tree-node space.
///
/// The node map is lock-striped (`RwLock<HashMap>` per stripe): a batched
/// `get_batch` takes only read locks — concurrent readers never block each
/// other — and a `put_batch` write-locks exactly the stripes its share of
/// nodes hashes to, never the whole server for the whole batch.
pub struct MetaServer {
    node: NodeId,
    alive: AtomicBool,
    nodes: Vec<RwLock<HashMap<NodeKey, NodeBody>>>,
    puts: AtomicU64,
    gets: AtomicU64,
    put_rpcs: AtomicU64,
    get_rpcs: AtomicU64,
}

impl MetaServer {
    pub fn new(node: NodeId) -> Self {
        MetaServer {
            node,
            alive: AtomicBool::new(true),
            nodes: (0..NODE_STRIPES)
                .map(|_| RwLock::new(HashMap::new()))
                .collect(),
            puts: AtomicU64::new(0),
            gets: AtomicU64::new(0),
            put_rpcs: AtomicU64::new(0),
            get_rpcs: AtomicU64::new(0),
        }
    }

    pub fn node(&self) -> NodeId {
        self.node
    }

    pub fn is_alive(&self) -> bool {
        self.alive.load(Ordering::Acquire)
    }

    pub fn kill(&self) {
        self.alive.store(false, Ordering::Release);
    }

    pub fn revive(&self) {
        self.alive.store(true, Ordering::Release);
    }

    /// Number of tree nodes stored on this server.
    pub fn node_count(&self) -> usize {
        self.nodes.iter().map(|s| s.read().len()).sum()
    }

    /// (puts, gets) served — counted per *node*, however the nodes were
    /// shipped (a batch of k nodes counts k).
    pub fn op_counts(&self) -> (u64, u64) {
        (
            self.puts.load(Ordering::Relaxed),
            self.gets.load(Ordering::Relaxed),
        )
    }

    /// (put, get) wire round-trips served — a batch counts once. The gap
    /// between [`Self::op_counts`] and this is the batching win.
    pub fn rpc_counts(&self) -> (u64, u64) {
        (
            self.put_rpcs.load(Ordering::Relaxed),
            self.get_rpcs.load(Ordering::Relaxed),
        )
    }
}

/// Client-side view of the metadata DHT.
pub struct MetaDht {
    servers: Vec<Arc<MetaServer>>,
    /// Abstract CPU cost charged on the serving node per operation — models
    /// the (small but nonzero) metadata-serialization overhead the paper
    /// mentions in §3.1.2.
    server_cpu_ops: u64,
}

fn hash_key(k: &NodeKey) -> u64 {
    // FNV-1a over the key fields: deterministic placement across runs.
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for v in [k.blob.0, k.version, k.page_lo, k.page_hi] {
        for b in v.to_le_bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x1000_0000_01b3);
        }
    }
    h
}

impl MetaDht {
    pub fn new(servers: Vec<Arc<MetaServer>>, server_cpu_ops: u64) -> Self {
        assert!(!servers.is_empty(), "need at least one metadata provider");
        MetaDht {
            servers,
            server_cpu_ops,
        }
    }

    fn server_index(&self, key: &NodeKey) -> usize {
        (hash_key(key) % self.servers.len() as u64) as usize
    }

    /// The server responsible for `key`.
    pub fn server_for(&self, key: &NodeKey) -> &Arc<MetaServer> {
        &self.servers[self.server_index(key)]
    }

    pub fn servers(&self) -> &[Arc<MetaServer>] {
        &self.servers
    }

    /// Store a tree node. Idempotent: node ids are deterministic and their
    /// content is a pure function of the id, so double-writes (e.g. a
    /// force-completed version whose original writer later finishes) are
    /// harmless.
    pub fn put(&self, p: &Proc, key: NodeKey, body: NodeBody) -> BlobResult<()> {
        self.put_batch(p, vec![(key, body)])
    }

    /// Store many tree nodes, grouped by responsible server: one costed RPC
    /// per server carries that server's whole share, instead of one
    /// round-trip per node. This is what keeps a writer's step-3 metadata
    /// publish at O(servers) wire latency regardless of tree-path length.
    ///
    /// Node writes are idempotent (see [`Self::put`]), so partial
    /// application when a server is down mid-batch is harmless: a retry or
    /// force-complete simply rewrites the same content.
    pub fn put_batch(&self, p: &Proc, nodes: Vec<(NodeKey, NodeBody)>) -> BlobResult<()> {
        let mut groups: Vec<Vec<(NodeKey, NodeBody)>> =
            (0..self.servers.len()).map(|_| Vec::new()).collect();
        for (key, body) in nodes {
            groups[self.server_index(&key)].push((key, body));
        }
        for (i, group) in groups.into_iter().enumerate() {
            if group.is_empty() {
                continue;
            }
            let server = &self.servers[i];
            if !server.is_alive() {
                return Err(BlobError::ProviderDown {
                    node: server.node.0,
                });
            }
            let req: u64 = group.iter().map(|(_, b)| b.encoded_size() + 40).sum();
            p.rpc(server.node, req, 16);
            if self.server_cpu_ops > 0 {
                p.compute(server.node, self.server_cpu_ops * group.len() as u64);
            }
            server.put_rpcs.fetch_add(1, Ordering::Relaxed);
            server.puts.fetch_add(group.len() as u64, Ordering::Relaxed);
            // Write-lock each touched stripe once for its share; untouched
            // stripes (and their concurrent readers) are never blocked.
            let mut by_stripe: Vec<Vec<(NodeKey, NodeBody)>> =
                (0..NODE_STRIPES).map(|_| Vec::new()).collect();
            for (key, body) in group {
                by_stripe[stripe_of(&key)].push((key, body));
            }
            for (si, share) in by_stripe.into_iter().enumerate() {
                if share.is_empty() {
                    continue;
                }
                let mut stored = server.nodes[si].write();
                for (key, body) in share {
                    if let Some(prev) = stored.get(&key) {
                        debug_assert_eq!(
                            prev, &body,
                            "metadata node {key:?} rewritten with different content"
                        );
                    }
                    stored.insert(key, body);
                }
            }
        }
        Ok(())
    }

    /// Fetch a tree node.
    pub fn get(&self, p: &Proc, key: &NodeKey) -> BlobResult<Option<NodeBody>> {
        Ok(self
            .get_batch(p, std::slice::from_ref(key))?
            .pop()
            .expect("one answer per key"))
    }

    /// Fetch many tree nodes in responsible-server groups (one costed RPC
    /// per server touched). `out[i]` answers `keys[i]`. The breadth-first
    /// read path ([`crate::meta::collect_leaves`]) calls this once per tree
    /// level.
    pub fn get_batch(&self, p: &Proc, keys: &[NodeKey]) -> BlobResult<Vec<Option<NodeBody>>> {
        let mut out: Vec<Option<NodeBody>> = vec![None; keys.len()];
        let mut groups: Vec<Vec<usize>> = (0..self.servers.len()).map(|_| Vec::new()).collect();
        for (i, key) in keys.iter().enumerate() {
            groups[self.server_index(key)].push(i);
        }
        for (si, group) in groups.into_iter().enumerate() {
            if group.is_empty() {
                continue;
            }
            let server = &self.servers[si];
            if !server.is_alive() {
                return Err(BlobError::ProviderDown {
                    node: server.node.0,
                });
            }
            server.get_rpcs.fetch_add(1, Ordering::Relaxed);
            server.gets.fetch_add(group.len() as u64, Ordering::Relaxed);
            let mut resp = 0u64;
            {
                // Read locks only, one per touched stripe: batched readers
                // share every stripe and never block each other.
                let mut by_stripe: Vec<Vec<usize>> =
                    (0..NODE_STRIPES).map(|_| Vec::new()).collect();
                for &i in &group {
                    by_stripe[stripe_of(&keys[i])].push(i);
                }
                for (si, idxs) in by_stripe.into_iter().enumerate() {
                    if idxs.is_empty() {
                        continue;
                    }
                    let stored = server.nodes[si].read();
                    for i in idxs {
                        let body = stored.get(&keys[i]).cloned();
                        resp += body.as_ref().map_or(16, |b| b.encoded_size() + 16);
                        out[i] = body;
                    }
                }
            }
            p.rpc(server.node, 56 * group.len() as u64, resp);
            if self.server_cpu_ops > 0 {
                p.compute(server.node, self.server_cpu_ops * group.len() as u64);
            }
        }
        Ok(out)
    }

    /// Total nodes across all servers.
    pub fn total_nodes(&self) -> usize {
        self.servers.iter().map(|s| s.node_count()).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::meta::PageRef;
    use crate::types::{BlobId, PageId};
    use fabric::{ClusterSpec, Fabric};

    fn key(v: u64, lo: u64, hi: u64) -> NodeKey {
        NodeKey {
            blob: BlobId(1),
            version: v,
            page_lo: lo,
            page_hi: hi,
        }
    }

    fn leaf(n: u64) -> NodeBody {
        NodeBody::Leaf(PageRef {
            id: PageId(n, n),
            byte_len: 10,
            providers: vec![NodeId(0)],
        })
    }

    fn with_proc<T: Send + 'static>(f: impl FnOnce(&Proc) -> T + Send + 'static) -> T {
        let fx = Fabric::sim(ClusterSpec::tiny(8));
        let h = fx.spawn(NodeId(0), "t", f);
        fx.run();
        h.take().unwrap()
    }

    fn dht(n: u32) -> MetaDht {
        MetaDht::new(
            (0..n)
                .map(|i| Arc::new(MetaServer::new(NodeId(i))))
                .collect(),
            0,
        )
    }

    #[test]
    fn put_get_roundtrip() {
        with_proc(|p| {
            let d = dht(3);
            d.put(p, key(1, 0, 1), leaf(1)).unwrap();
            assert_eq!(d.get(p, &key(1, 0, 1)).unwrap(), Some(leaf(1)));
            assert_eq!(d.get(p, &key(1, 1, 2)).unwrap(), None);
        });
    }

    #[test]
    fn keys_spread_across_servers() {
        with_proc(|p| {
            let d = dht(4);
            for v in 1..200u64 {
                d.put(p, key(v, 0, 1), leaf(v)).unwrap();
            }
            let counts: Vec<usize> = d.servers().iter().map(|s| s.node_count()).collect();
            assert_eq!(counts.iter().sum::<usize>(), 199);
            for c in counts {
                assert!(c > 20, "suspiciously unbalanced shard: {c}");
            }
        });
    }

    #[test]
    fn placement_is_deterministic() {
        let d1 = dht(5);
        let d2 = dht(5);
        for v in 1..50 {
            let k = key(v, 2, 4);
            assert_eq!(d1.server_for(&k).node(), d2.server_for(&k).node());
        }
    }

    #[test]
    fn dead_server_errors() {
        with_proc(|p| {
            let d = dht(1);
            d.servers()[0].kill();
            assert!(matches!(
                d.put(p, key(1, 0, 1), leaf(1)),
                Err(BlobError::ProviderDown { .. })
            ));
            d.servers()[0].revive();
            d.put(p, key(1, 0, 1), leaf(1)).unwrap();
        });
    }

    #[test]
    fn batches_issue_one_rpc_per_server() {
        with_proc(|p| {
            let d = dht(4);
            let items: Vec<(NodeKey, NodeBody)> =
                (1..64u64).map(|v| (key(v, 0, 1), leaf(v))).collect();
            let n = items.len() as u64;
            d.put_batch(p, items.clone()).unwrap();
            let put_rpcs: u64 = d.servers().iter().map(|s| s.rpc_counts().0).sum();
            let puts: u64 = d.servers().iter().map(|s| s.op_counts().0).sum();
            assert_eq!(puts, n, "every node stored");
            assert!(put_rpcs <= 4, "one wire RPC per server, got {put_rpcs}");

            let keys: Vec<NodeKey> = items.iter().map(|(k, _)| *k).collect();
            let got = d.get_batch(p, &keys).unwrap();
            assert_eq!(got.len(), keys.len());
            for (i, body) in got.iter().enumerate() {
                assert_eq!(body.as_ref(), Some(&items[i].1), "answer order preserved");
            }
            assert_eq!(d.get_batch(p, &[key(999, 0, 1)]).unwrap(), vec![None]);
            let get_rpcs: u64 = d.servers().iter().map(|s| s.rpc_counts().1).sum();
            assert!(get_rpcs <= 5, "batched gets, got {get_rpcs} RPCs");
        });
    }

    #[test]
    fn empty_batches_are_free() {
        with_proc(|p| {
            let d = dht(3);
            d.put_batch(p, Vec::new()).unwrap();
            assert_eq!(d.get_batch(p, &[]).unwrap(), Vec::<Option<NodeBody>>::new());
            let rpcs: u64 = d
                .servers()
                .iter()
                .map(|s| s.rpc_counts().0 + s.rpc_counts().1)
                .sum();
            assert_eq!(rpcs, 0);
        });
    }

    #[test]
    fn duplicate_put_is_idempotent() {
        with_proc(|p| {
            let d = dht(2);
            d.put(p, key(1, 0, 1), leaf(1)).unwrap();
            d.put(p, key(1, 0, 1), leaf(1)).unwrap();
            assert_eq!(d.total_nodes(), 1);
        });
    }
}
