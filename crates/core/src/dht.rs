//! The metadata-provider DHT (paper §3.1.1: "the information concerning the
//! location of the pages for each BLOB version is kept in a Distributed
//! HashTable, managed by several metadata providers").
//!
//! Node keys are deterministic `(blob, version, page range)` triples
//! (see [`crate::meta`]); a key hashes to exactly one metadata provider, so
//! concurrent writers updating different tree paths talk to different
//! servers and scale out — the paper deploys 20 of them on 270 nodes.

use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;

use fabric::{NodeId, Proc};
use parking_lot::Mutex;

use crate::error::{BlobError, BlobResult};
use crate::meta::{NodeBody, NodeKey};

/// One metadata server holding a shard of the tree-node space.
pub struct MetaServer {
    node: NodeId,
    alive: AtomicBool,
    nodes: Mutex<HashMap<NodeKey, NodeBody>>,
    puts: AtomicU64,
    gets: AtomicU64,
}

impl MetaServer {
    pub fn new(node: NodeId) -> Self {
        MetaServer {
            node,
            alive: AtomicBool::new(true),
            nodes: Mutex::new(HashMap::new()),
            puts: AtomicU64::new(0),
            gets: AtomicU64::new(0),
        }
    }

    pub fn node(&self) -> NodeId {
        self.node
    }

    pub fn is_alive(&self) -> bool {
        self.alive.load(Ordering::Acquire)
    }

    pub fn kill(&self) {
        self.alive.store(false, Ordering::Release);
    }

    pub fn revive(&self) {
        self.alive.store(true, Ordering::Release);
    }

    /// Number of tree nodes stored on this server.
    pub fn node_count(&self) -> usize {
        self.nodes.lock().len()
    }

    /// (puts, gets) served.
    pub fn op_counts(&self) -> (u64, u64) {
        (
            self.puts.load(Ordering::Relaxed),
            self.gets.load(Ordering::Relaxed),
        )
    }
}

/// Client-side view of the metadata DHT.
pub struct MetaDht {
    servers: Vec<Arc<MetaServer>>,
    /// Abstract CPU cost charged on the serving node per operation — models
    /// the (small but nonzero) metadata-serialization overhead the paper
    /// mentions in §3.1.2.
    server_cpu_ops: u64,
}

fn hash_key(k: &NodeKey) -> u64 {
    // FNV-1a over the key fields: deterministic placement across runs.
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for v in [k.blob.0, k.version, k.page_lo, k.page_hi] {
        for b in v.to_le_bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x1000_0000_01b3);
        }
    }
    h
}

impl MetaDht {
    pub fn new(servers: Vec<Arc<MetaServer>>, server_cpu_ops: u64) -> Self {
        assert!(!servers.is_empty(), "need at least one metadata provider");
        MetaDht {
            servers,
            server_cpu_ops,
        }
    }

    /// The server responsible for `key`.
    pub fn server_for(&self, key: &NodeKey) -> &Arc<MetaServer> {
        let i = (hash_key(key) % self.servers.len() as u64) as usize;
        &self.servers[i]
    }

    pub fn servers(&self) -> &[Arc<MetaServer>] {
        &self.servers
    }

    /// Store a tree node. Idempotent: node ids are deterministic and their
    /// content is a pure function of the id, so double-writes (e.g. a
    /// force-completed version whose original writer later finishes) are
    /// harmless.
    pub fn put(&self, p: &Proc, key: NodeKey, body: NodeBody) -> BlobResult<()> {
        let server = self.server_for(&key);
        if !server.is_alive() {
            return Err(BlobError::ProviderDown {
                node: server.node.0,
            });
        }
        p.rpc(server.node, body.encoded_size() + 40, 16);
        if self.server_cpu_ops > 0 {
            p.compute(server.node, self.server_cpu_ops);
        }
        server.puts.fetch_add(1, Ordering::Relaxed);
        let mut nodes = server.nodes.lock();
        if let Some(prev) = nodes.get(&key) {
            debug_assert_eq!(
                prev, &body,
                "metadata node {key:?} rewritten with different content"
            );
        }
        nodes.insert(key, body);
        Ok(())
    }

    /// Fetch a tree node.
    pub fn get(&self, p: &Proc, key: &NodeKey) -> BlobResult<Option<NodeBody>> {
        let server = self.server_for(key);
        if !server.is_alive() {
            return Err(BlobError::ProviderDown {
                node: server.node.0,
            });
        }
        server.gets.fetch_add(1, Ordering::Relaxed);
        let body = server.nodes.lock().get(key).cloned();
        let resp = body.as_ref().map_or(16, |b| b.encoded_size() + 16);
        p.rpc(server.node, 56, resp);
        if self.server_cpu_ops > 0 {
            p.compute(server.node, self.server_cpu_ops);
        }
        Ok(body)
    }

    /// Total nodes across all servers.
    pub fn total_nodes(&self) -> usize {
        self.servers.iter().map(|s| s.node_count()).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::meta::PageRef;
    use crate::types::{BlobId, PageId};
    use fabric::{ClusterSpec, Fabric};

    fn key(v: u64, lo: u64, hi: u64) -> NodeKey {
        NodeKey {
            blob: BlobId(1),
            version: v,
            page_lo: lo,
            page_hi: hi,
        }
    }

    fn leaf(n: u64) -> NodeBody {
        NodeBody::Leaf(PageRef {
            id: PageId(n, n),
            byte_len: 10,
            providers: vec![NodeId(0)],
        })
    }

    fn with_proc<T: Send + 'static>(f: impl FnOnce(&Proc) -> T + Send + 'static) -> T {
        let fx = Fabric::sim(ClusterSpec::tiny(8));
        let h = fx.spawn(NodeId(0), "t", f);
        fx.run();
        h.take().unwrap()
    }

    fn dht(n: u32) -> MetaDht {
        MetaDht::new(
            (0..n)
                .map(|i| Arc::new(MetaServer::new(NodeId(i))))
                .collect(),
            0,
        )
    }

    #[test]
    fn put_get_roundtrip() {
        with_proc(|p| {
            let d = dht(3);
            d.put(p, key(1, 0, 1), leaf(1)).unwrap();
            assert_eq!(d.get(p, &key(1, 0, 1)).unwrap(), Some(leaf(1)));
            assert_eq!(d.get(p, &key(1, 1, 2)).unwrap(), None);
        });
    }

    #[test]
    fn keys_spread_across_servers() {
        with_proc(|p| {
            let d = dht(4);
            for v in 1..200u64 {
                d.put(p, key(v, 0, 1), leaf(v)).unwrap();
            }
            let counts: Vec<usize> = d.servers().iter().map(|s| s.node_count()).collect();
            assert_eq!(counts.iter().sum::<usize>(), 199);
            for c in counts {
                assert!(c > 20, "suspiciously unbalanced shard: {c}");
            }
        });
    }

    #[test]
    fn placement_is_deterministic() {
        let d1 = dht(5);
        let d2 = dht(5);
        for v in 1..50 {
            let k = key(v, 2, 4);
            assert_eq!(d1.server_for(&k).node(), d2.server_for(&k).node());
        }
    }

    #[test]
    fn dead_server_errors() {
        with_proc(|p| {
            let d = dht(1);
            d.servers()[0].kill();
            assert!(matches!(
                d.put(p, key(1, 0, 1), leaf(1)),
                Err(BlobError::ProviderDown { .. })
            ));
            d.servers()[0].revive();
            d.put(p, key(1, 0, 1), leaf(1)).unwrap();
        });
    }

    #[test]
    fn duplicate_put_is_idempotent() {
        with_proc(|p| {
            let d = dht(2);
            d.put(p, key(1, 0, 1), leaf(1)).unwrap();
            d.put(p, key(1, 0, 1), leaf(1)).unwrap();
            assert_eq!(d.total_nodes(), 1);
        });
    }
}
