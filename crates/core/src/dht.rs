//! The metadata-provider DHT (paper §3.1.1: "the information concerning the
//! location of the pages for each BLOB version is kept in a Distributed
//! HashTable, managed by several metadata providers").
//!
//! Node keys are deterministic `(blob, version, page range)` triples
//! (see [`crate::meta`]); a key hashes to exactly one metadata provider, so
//! concurrent writers updating different tree paths talk to different
//! servers and scale out — the paper deploys 20 of them on 270 nodes.

use std::collections::HashMap;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;

use fabric::{NodeId, Proc};
use parking_lot::RwLock;

use crate::error::{BlobError, BlobResult};
use crate::meta::{NodeBody, NodeKey, NODE_KEY_PREFIX};

/// Stripe count of one server's node map. Keys spread via the upper bits of
/// the same FNV hash that routes them to a server (the lower bits picked the
/// server, so within a server the upper bits stay uniform).
const NODE_STRIPES: usize = 16;

fn stripe_of(key: &NodeKey) -> usize {
    ((hash_key(key) >> 32) % NODE_STRIPES as u64) as usize
}

/// One metadata server holding a shard of the tree-node space.
///
/// The node map is lock-striped (`RwLock<HashMap>` per stripe): a batched
/// `get_batch` takes only read locks — concurrent readers never block each
/// other — and a `put_batch` write-locks exactly the stripes its share of
/// nodes hashes to, never the whole server for the whole batch.
pub struct MetaServer {
    node: NodeId,
    alive: AtomicBool,
    nodes: Vec<RwLock<HashMap<NodeKey, NodeBody>>>,
    puts: AtomicU64,
    gets: AtomicU64,
    put_rpcs: AtomicU64,
    get_rpcs: AtomicU64,
    /// Durable write-through of the node map (see [`Self::new_persistent`]).
    /// The striped in-memory map stays the authoritative read path; the
    /// store exists to survive a crash-restart.
    persist: Option<MetaPersist>,
    /// Completed crash-restart recoveries (diagnostics).
    recoveries: AtomicU64,
}

struct MetaPersist {
    /// `None` while crash-wiped (between `crash_wipe` and `recover`).
    store: RwLock<Option<pstore::Store>>,
    dir: PathBuf,
    opts: pstore::StoreOptions,
}

impl MetaServer {
    pub fn new(node: NodeId) -> Self {
        MetaServer {
            node,
            alive: AtomicBool::new(true),
            nodes: (0..NODE_STRIPES)
                .map(|_| RwLock::with_rank(HashMap::new(), crate::lock_ranks::STRIPES))
                .collect(),
            puts: AtomicU64::new(0),
            gets: AtomicU64::new(0),
            put_rpcs: AtomicU64::new(0),
            get_rpcs: AtomicU64::new(0),
            persist: None,
            recoveries: AtomicU64::new(0),
        }
    }

    /// Metadata server whose node map is write-through mirrored into a
    /// [`pstore::Store`] at `dir`. Opening a non-empty directory *recovers*
    /// it: every stored tree node is decoded back into the striped map, so
    /// a restarted server answers exactly what it acknowledged before the
    /// crash.
    pub fn new_persistent(
        node: NodeId,
        dir: &Path,
        opts: pstore::StoreOptions,
    ) -> BlobResult<Self> {
        let store = pstore::Store::open_with(dir, opts.clone())
            .map_err(|e| BlobError::persistence(dir, &e))?;
        let mut server = Self::new(node);
        server.persist = Some(MetaPersist {
            store: RwLock::new(Some(store)),
            dir: dir.to_path_buf(),
            opts,
        });
        server.load_stripes()?;
        Ok(server)
    }

    /// Rebuild the striped in-memory map from the durable store's `n/`
    /// namespace (replacing whatever the stripes currently hold).
    fn load_stripes(&self) -> BlobResult<()> {
        let Some(mp) = &self.persist else {
            return Ok(());
        };
        let g = mp.store.read();
        let Some(s) = g.as_ref() else {
            return Ok(());
        };
        let records = s
            .scan_prefix(NODE_KEY_PREFIX)
            .map_err(|e| BlobError::persistence(&mp.dir, &e))?;
        for stripe in &self.nodes {
            stripe.write().clear();
        }
        for (k, v) in records {
            let (Some(key), Some(body)) = (NodeKey::decode(&k), NodeBody::decode(&v)) else {
                // Malformed record: skip it — the write path only ever
                // stores codec output, so this is corruption the CRC
                // already let through; losing one node degrades to a
                // MetadataMissing read error, never a panic.
                continue;
            };
            self.nodes[stripe_of(&key)].write().insert(key, body);
        }
        Ok(())
    }

    /// Store one server group of tree nodes: durably first (when
    /// persistent), then into the striped memory map. The store read guard
    /// is held across the whole group INCLUDING the flush, so a concurrent
    /// [`Self::crash_wipe`] serializes entirely before the group (it fails
    /// `ProviderDown`) or entirely after (every acknowledged node is on the
    /// OS side of a process crash).
    pub(crate) fn store_nodes(&self, nodes: Vec<(NodeKey, NodeBody)>) -> BlobResult<()> {
        // analyze: allow-fn(panic-index): stripe subscripts come from
        // stripe_of() (modulo NODE_STRIPES) or enumerate() over a vector
        // built with exactly NODE_STRIPES entries
        if let Some(mp) = &self.persist {
            let g = mp.store.read();
            let Some(s) = g.as_ref() else {
                return Err(BlobError::ProviderDown { node: self.node.0 });
            };
            for (key, body) in &nodes {
                s.put(&key.encode(), &body.encode())
                    .map_err(|e| BlobError::persistence(&mp.dir, &e))?;
            }
            s.flush_buffered()
                .map_err(|e| BlobError::persistence(&mp.dir, &e))?;
        }
        // Write-lock each touched stripe once for its share; untouched
        // stripes (and their concurrent readers) are never blocked.
        let mut by_stripe: Vec<Vec<(NodeKey, NodeBody)>> =
            (0..NODE_STRIPES).map(|_| Vec::new()).collect();
        for (key, body) in nodes {
            by_stripe[stripe_of(&key)].push((key, body));
        }
        for (si, share) in by_stripe.into_iter().enumerate() {
            if share.is_empty() {
                continue;
            }
            let mut stored = self.nodes[si].write();
            for (key, body) in share {
                if let Some(prev) = stored.get(&key) {
                    debug_assert_eq!(
                        prev, &body,
                        "metadata node {key:?} rewritten with different content"
                    );
                }
                stored.insert(key, body);
            }
        }
        Ok(())
    }

    /// Process-crash injection for persistent metadata servers: stop
    /// serving, drop the striped map, all counters and any buffered
    /// unacknowledged records — keep only the on-disk store directory.
    /// Memory-only servers answer `UnsupportedFault`.
    pub fn crash_wipe(&self) -> BlobResult<()> {
        let Some(mp) = &self.persist else {
            return Err(BlobError::UnsupportedFault(format!(
                "metadata server on {} holds its node map in memory only; \
                 CrashRestart requires a persist_dir deployment",
                self.node
            )));
        };
        self.kill();
        if let Some(s) = mp.store.write().take() {
            s.abandon();
        }
        for stripe in &self.nodes {
            stripe.write().clear();
        }
        for c in [&self.puts, &self.gets, &self.put_rpcs, &self.get_rpcs] {
            c.store(0, Ordering::Relaxed);
        }
        Ok(())
    }

    /// Restart a crash-wiped metadata server from its store directory:
    /// replay from the newest checkpoint, rebuild the striped map, resume
    /// serving. Returns the bytes replayed past the checkpoint. Idempotent:
    /// recovering a server that was never wiped just revives it.
    pub fn recover(&self) -> BlobResult<u64> {
        let Some(mp) = &self.persist else {
            return Err(BlobError::UnsupportedFault(format!(
                "metadata server on {} holds its node map in memory only; nothing to recover",
                self.node
            )));
        };
        let mut g = mp.store.write();
        let replayed = if g.is_none() {
            let store = pstore::Store::open_with(&mp.dir, mp.opts.clone())
                .map_err(|e| BlobError::persistence(&mp.dir, &e))?;
            let replayed = store.replayed_bytes();
            *g = Some(store);
            drop(g);
            self.load_stripes()?;
            self.recoveries.fetch_add(1, Ordering::Relaxed);
            replayed
        } else {
            0
        };
        self.revive();
        Ok(replayed)
    }

    /// True between [`Self::crash_wipe`] and [`Self::recover`].
    pub fn is_wiped(&self) -> bool {
        matches!(&self.persist, Some(mp) if mp.store.read().is_none())
    }

    /// Completed crash-restart recoveries.
    pub fn recoveries(&self) -> u64 {
        self.recoveries.load(Ordering::Relaxed)
    }

    pub fn node(&self) -> NodeId {
        self.node
    }

    pub fn is_alive(&self) -> bool {
        self.alive.load(Ordering::Acquire)
    }

    pub fn kill(&self) {
        self.alive.store(false, Ordering::Release);
    }

    pub fn revive(&self) {
        self.alive.store(true, Ordering::Release);
    }

    /// Number of tree nodes stored on this server.
    pub fn node_count(&self) -> usize {
        self.nodes.iter().map(|s| s.read().len()).sum()
    }

    /// (puts, gets) served — counted per *node*, however the nodes were
    /// shipped (a batch of k nodes counts k).
    pub fn op_counts(&self) -> (u64, u64) {
        (
            self.puts.load(Ordering::Relaxed),
            self.gets.load(Ordering::Relaxed),
        )
    }

    /// (put, get) wire round-trips served — a batch counts once. The gap
    /// between [`Self::op_counts`] and this is the batching win.
    pub fn rpc_counts(&self) -> (u64, u64) {
        (
            self.put_rpcs.load(Ordering::Relaxed),
            self.get_rpcs.load(Ordering::Relaxed),
        )
    }
}

/// Client-side view of the metadata DHT.
pub struct MetaDht {
    servers: Vec<Arc<MetaServer>>,
    /// Abstract CPU cost charged on the serving node per operation — models
    /// the (small but nonzero) metadata-serialization overhead the paper
    /// mentions in §3.1.2.
    server_cpu_ops: u64,
}

fn hash_key(k: &NodeKey) -> u64 {
    // FNV-1a over the key fields: deterministic placement across runs.
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for v in [k.blob.0, k.version, k.page_lo, k.page_hi] {
        for b in v.to_le_bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x1000_0000_01b3);
        }
    }
    h
}

impl MetaDht {
    pub fn new(servers: Vec<Arc<MetaServer>>, server_cpu_ops: u64) -> Self {
        assert!(!servers.is_empty(), "need at least one metadata provider");
        MetaDht {
            servers,
            server_cpu_ops,
        }
    }

    fn server_index(&self, key: &NodeKey) -> usize {
        (hash_key(key) % self.servers.len() as u64) as usize
    }

    /// The server responsible for `key`.
    pub fn server_for(&self, key: &NodeKey) -> &Arc<MetaServer> {
        // analyze: allow(panic-index): server_index() is modulo servers.len()
        &self.servers[self.server_index(key)]
    }

    pub fn servers(&self) -> &[Arc<MetaServer>] {
        &self.servers
    }

    /// Store a tree node. Idempotent: node ids are deterministic and their
    /// content is a pure function of the id, so double-writes (e.g. a
    /// force-completed version whose original writer later finishes) are
    /// harmless.
    pub fn put(&self, p: &Proc, key: NodeKey, body: NodeBody) -> BlobResult<()> {
        self.put_batch(p, vec![(key, body)])
    }

    /// Store many tree nodes, grouped by responsible server: one costed RPC
    /// per server carries that server's whole share, instead of one
    /// round-trip per node. This is what keeps a writer's step-3 metadata
    /// publish at O(servers) wire latency regardless of tree-path length.
    ///
    /// Node writes are idempotent (see [`Self::put`]), so partial
    /// application when a server is down mid-batch is harmless: a retry or
    /// force-complete simply rewrites the same content.
    pub fn put_batch(&self, p: &Proc, nodes: Vec<(NodeKey, NodeBody)>) -> BlobResult<()> {
        // analyze: allow-fn(panic-index): group subscripts are server_index()
        // (modulo servers.len()) or enumerate() over a groups vector built
        // with exactly servers.len() entries
        let mut groups: Vec<Vec<(NodeKey, NodeBody)>> =
            (0..self.servers.len()).map(|_| Vec::new()).collect();
        for (key, body) in nodes {
            groups[self.server_index(&key)].push((key, body));
        }
        for (i, group) in groups.into_iter().enumerate() {
            if group.is_empty() {
                continue;
            }
            let server = &self.servers[i];
            if !server.is_alive() {
                return Err(BlobError::ProviderDown {
                    node: server.node.0,
                });
            }
            let req: u64 = group.iter().map(|(_, b)| b.encoded_size() + 40).sum();
            p.rpc(server.node, req, 16);
            if self.server_cpu_ops > 0 {
                p.compute(server.node, self.server_cpu_ops * group.len() as u64);
            }
            server.put_rpcs.fetch_add(1, Ordering::Relaxed);
            server.puts.fetch_add(group.len() as u64, Ordering::Relaxed);
            server.store_nodes(group)?;
        }
        Ok(())
    }

    /// Fetch a tree node.
    pub fn get(&self, p: &Proc, key: &NodeKey) -> BlobResult<Option<NodeBody>> {
        self.get_batch(p, std::slice::from_ref(key))?
            .pop()
            .ok_or_else(|| BlobError::Internal {
                detail: "get_batch answered zero results for one key".into(),
            })
    }

    /// Fetch many tree nodes in responsible-server groups (one costed RPC
    /// per server touched). `out[i]` answers `keys[i]`. The breadth-first
    /// read path ([`crate::meta::collect_leaves`]) calls this once per tree
    /// level.
    pub fn get_batch(&self, p: &Proc, keys: &[NodeKey]) -> BlobResult<Vec<Option<NodeBody>>> {
        // analyze: allow-fn(panic-index): `out` is sized to keys.len(); all
        // other subscripts are server_index()/stripe_of() (modulo-bounded)
        // or enumerate() indices over vectors sized to servers/stripes
        let mut out: Vec<Option<NodeBody>> = vec![None; keys.len()];
        let mut groups: Vec<Vec<usize>> = (0..self.servers.len()).map(|_| Vec::new()).collect();
        for (i, key) in keys.iter().enumerate() {
            groups[self.server_index(key)].push(i);
        }
        for (si, group) in groups.into_iter().enumerate() {
            if group.is_empty() {
                continue;
            }
            let server = &self.servers[si];
            if !server.is_alive() {
                return Err(BlobError::ProviderDown {
                    node: server.node.0,
                });
            }
            server.get_rpcs.fetch_add(1, Ordering::Relaxed);
            server.gets.fetch_add(group.len() as u64, Ordering::Relaxed);
            let mut resp = 0u64;
            {
                // Read locks only, one per touched stripe: batched readers
                // share every stripe and never block each other.
                let mut by_stripe: Vec<Vec<usize>> =
                    (0..NODE_STRIPES).map(|_| Vec::new()).collect();
                for &i in &group {
                    by_stripe[stripe_of(&keys[i])].push(i);
                }
                for (si, idxs) in by_stripe.into_iter().enumerate() {
                    if idxs.is_empty() {
                        continue;
                    }
                    let stored = server.nodes[si].read();
                    for i in idxs {
                        let body = stored.get(&keys[i]).cloned();
                        resp += body.as_ref().map_or(16, |b| b.encoded_size() + 16);
                        out[i] = body;
                    }
                }
            }
            p.rpc(server.node, 56 * group.len() as u64, resp);
            if self.server_cpu_ops > 0 {
                p.compute(server.node, self.server_cpu_ops * group.len() as u64);
            }
        }
        Ok(out)
    }

    /// Total nodes across all servers.
    pub fn total_nodes(&self) -> usize {
        self.servers.iter().map(|s| s.node_count()).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::meta::PageRef;
    use crate::types::{BlobId, PageId};
    use fabric::{ClusterSpec, Fabric};

    fn key(v: u64, lo: u64, hi: u64) -> NodeKey {
        NodeKey {
            blob: BlobId(1),
            version: v,
            page_lo: lo,
            page_hi: hi,
        }
    }

    fn leaf(n: u64) -> NodeBody {
        NodeBody::Leaf(PageRef {
            id: PageId(n, n),
            byte_len: 10,
            providers: vec![NodeId(0)],
        })
    }

    fn with_proc<T: Send + 'static>(f: impl FnOnce(&Proc) -> T + Send + 'static) -> T {
        let fx = Fabric::sim(ClusterSpec::tiny(8));
        let h = fx.spawn(NodeId(0), "t", f);
        fx.run();
        h.take().unwrap()
    }

    fn dht(n: u32) -> MetaDht {
        MetaDht::new(
            (0..n)
                .map(|i| Arc::new(MetaServer::new(NodeId(i))))
                .collect(),
            0,
        )
    }

    #[test]
    fn put_get_roundtrip() {
        with_proc(|p| {
            let d = dht(3);
            d.put(p, key(1, 0, 1), leaf(1)).unwrap();
            assert_eq!(d.get(p, &key(1, 0, 1)).unwrap(), Some(leaf(1)));
            assert_eq!(d.get(p, &key(1, 1, 2)).unwrap(), None);
        });
    }

    #[test]
    fn keys_spread_across_servers() {
        with_proc(|p| {
            let d = dht(4);
            for v in 1..200u64 {
                d.put(p, key(v, 0, 1), leaf(v)).unwrap();
            }
            let counts: Vec<usize> = d.servers().iter().map(|s| s.node_count()).collect();
            assert_eq!(counts.iter().sum::<usize>(), 199);
            for c in counts {
                assert!(c > 20, "suspiciously unbalanced shard: {c}");
            }
        });
    }

    #[test]
    fn placement_is_deterministic() {
        let d1 = dht(5);
        let d2 = dht(5);
        for v in 1..50 {
            let k = key(v, 2, 4);
            assert_eq!(d1.server_for(&k).node(), d2.server_for(&k).node());
        }
    }

    #[test]
    fn dead_server_errors() {
        with_proc(|p| {
            let d = dht(1);
            d.servers()[0].kill();
            assert!(matches!(
                d.put(p, key(1, 0, 1), leaf(1)),
                Err(BlobError::ProviderDown { .. })
            ));
            d.servers()[0].revive();
            d.put(p, key(1, 0, 1), leaf(1)).unwrap();
        });
    }

    #[test]
    fn batches_issue_one_rpc_per_server() {
        with_proc(|p| {
            let d = dht(4);
            let items: Vec<(NodeKey, NodeBody)> =
                (1..64u64).map(|v| (key(v, 0, 1), leaf(v))).collect();
            let n = items.len() as u64;
            d.put_batch(p, items.clone()).unwrap();
            let put_rpcs: u64 = d.servers().iter().map(|s| s.rpc_counts().0).sum();
            let puts: u64 = d.servers().iter().map(|s| s.op_counts().0).sum();
            assert_eq!(puts, n, "every node stored");
            assert!(put_rpcs <= 4, "one wire RPC per server, got {put_rpcs}");

            let keys: Vec<NodeKey> = items.iter().map(|(k, _)| *k).collect();
            let got = d.get_batch(p, &keys).unwrap();
            assert_eq!(got.len(), keys.len());
            for (i, body) in got.iter().enumerate() {
                assert_eq!(body.as_ref(), Some(&items[i].1), "answer order preserved");
            }
            assert_eq!(d.get_batch(p, &[key(999, 0, 1)]).unwrap(), vec![None]);
            let get_rpcs: u64 = d.servers().iter().map(|s| s.rpc_counts().1).sum();
            assert!(get_rpcs <= 5, "batched gets, got {get_rpcs} RPCs");
        });
    }

    #[test]
    fn empty_batches_are_free() {
        with_proc(|p| {
            let d = dht(3);
            d.put_batch(p, Vec::new()).unwrap();
            assert_eq!(d.get_batch(p, &[]).unwrap(), Vec::<Option<NodeBody>>::new());
            let rpcs: u64 = d
                .servers()
                .iter()
                .map(|s| s.rpc_counts().0 + s.rpc_counts().1)
                .sum();
            assert_eq!(rpcs, 0);
        });
    }

    #[test]
    fn persistent_meta_server_survives_crash_restart() {
        let dir = std::env::temp_dir().join(format!("meta-pstore-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let d2 = dir.clone();
        with_proc(move |p| {
            let server = Arc::new(
                MetaServer::new_persistent(NodeId(0), &d2, pstore::StoreOptions::default())
                    .unwrap(),
            );
            let d = MetaDht::new(vec![server.clone()], 0);
            let items: Vec<(NodeKey, NodeBody)> =
                (1..40u64).map(|v| (key(v, 0, 1), leaf(v))).collect();
            d.put_batch(p, items.clone()).unwrap();
            assert_eq!(server.node_count(), 39);

            server.crash_wipe().unwrap();
            assert!(server.is_wiped());
            assert_eq!(server.node_count(), 0, "wipe drops the whole map");
            assert!(matches!(
                d.get(p, &key(1, 0, 1)),
                Err(BlobError::ProviderDown { .. })
            ));

            let replayed = server.recover().unwrap();
            assert!(replayed > 0, "no checkpoint: the whole log replays");
            assert_eq!(server.recoveries(), 1);
            assert_eq!(server.node_count(), 39, "every acked node came back");
            for (k, body) in &items {
                assert_eq!(d.get(p, k).unwrap().as_ref(), Some(body));
            }
            // Idempotent on a live server.
            assert_eq!(server.recover().unwrap(), 0);
            assert_eq!(server.recoveries(), 1);

            // Memory-only servers cannot model a restart.
            let mem = MetaServer::new(NodeId(1));
            assert!(matches!(
                mem.crash_wipe(),
                Err(BlobError::UnsupportedFault(_))
            ));
        });
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn persistent_meta_server_reopens_from_directory() {
        let dir = std::env::temp_dir().join(format!("meta-reopen-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let d2 = dir.clone();
        with_proc(move |p| {
            let server = Arc::new(
                MetaServer::new_persistent(NodeId(0), &d2, pstore::StoreOptions::default())
                    .unwrap(),
            );
            let d = MetaDht::new(vec![server], 0);
            d.put(p, key(5, 0, 1), leaf(5)).unwrap();
        });
        // A brand-new server object over the same directory (full process
        // restart) serves the old nodes.
        let d3 = dir.clone();
        with_proc(move |p| {
            let server = Arc::new(
                MetaServer::new_persistent(NodeId(0), &d3, pstore::StoreOptions::default())
                    .unwrap(),
            );
            assert_eq!(server.node_count(), 1);
            let d = MetaDht::new(vec![server], 0);
            assert_eq!(d.get(p, &key(5, 0, 1)).unwrap(), Some(leaf(5)));
        });
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn duplicate_put_is_idempotent() {
        with_proc(|p| {
            let d = dht(2);
            d.put(p, key(1, 0, 1), leaf(1)).unwrap();
            d.put(p, key(1, 0, 1), leaf(1)).unwrap();
            assert_eq!(d.total_nodes(), 1);
        });
    }
}
