//! Incremental descriptor index: O(log N) latest-version queries over the
//! write-descriptor history, with O(1) immutable snapshots.
//!
//! The scan-based algebra in [`crate::types`] answers every query by walking
//! the full descriptor list backwards — O(V) per call, invoked per tree node
//! from [`crate::meta::plan_write`], so a long-lived blob pays O(V·log) per
//! append and degrades quadratically over its lifetime. This module keeps the
//! same answers available in O(log) by maintaining a *persistent* segment
//! tree over page-index space, mirroring the shape of BlobSeer's own
//! metadata trees:
//!
//! * leaves hold the owning version and byte length of one page,
//! * inner nodes aggregate `max_version` (== the latest toucher of their
//!   range, because the latest toucher of any range is the newest owner of
//!   some page inside it) and `byte_len` (clamped subtree byte count, which
//!   makes byte↔page navigation a root-to-leaf descent).
//!
//! Applying one descriptor rebuilds only the root-to-leaf paths covering the
//! written pages — O(pages written + log span) new nodes — and shares every
//! untouched subtree with the previous state via `Arc`. Cloning a
//! [`DescIndex`] is therefore O(1) and yields an immutable snapshot pinned
//! at its version: the version manager hands one to each writer at `assign`
//! time, the client desc-cache keeps the freshest one, and
//! [`crate::meta::plan_write`] runs entirely against it. The linear scans in
//! [`crate::types`] remain as the historical-version fallback and as the
//! oracle the property tests compare this index against.

use std::sync::Arc;

use crate::types::{tree_span, Version, WriteDesc};

#[derive(Debug)]
enum IxKind {
    /// One page: `max_version` is its owner, `byte_len` its stored bytes.
    Leaf,
    Inner {
        left: Option<Arc<IxNode>>,
        right: Option<Arc<IxNode>>,
    },
}

#[derive(Debug)]
struct IxNode {
    /// Latest version that wrote any live page in this subtree.
    max_version: Version,
    /// Bytes held by live pages in this subtree (clamped to the BLOB end).
    byte_len: u64,
    kind: IxKind,
}

/// Snapshot of page ownership and byte layout as of one version.
///
/// Mutating (`apply`) is O(pages written + log span); `clone()` is O(1) and
/// produces an independent immutable snapshot (persistent structure — the
/// clone is unaffected by later `apply` calls on the original).
#[derive(Debug, Clone)]
pub struct DescIndex {
    page_size: u64,
    version: Version,
    total_pages: u64,
    total_bytes: u64,
    /// Power-of-two page capacity of `root`; grows, never shrinks.
    span: u64,
    root: Option<Arc<IxNode>>,
}

impl DescIndex {
    /// Empty index (version 0).
    pub fn new(page_size: u64) -> Self {
        assert!(page_size > 0, "page size must be positive");
        DescIndex {
            page_size,
            version: 0,
            total_pages: 0,
            total_bytes: 0,
            span: 1,
            root: None,
        }
    }

    pub fn version(&self) -> Version {
        self.version
    }

    pub fn page_size(&self) -> u64 {
        self.page_size
    }

    pub fn total_pages(&self) -> u64 {
        self.total_pages
    }

    pub fn total_bytes(&self) -> u64 {
        self.total_bytes
    }

    /// Fold the next descriptor into the index. Descriptors must arrive in
    /// version order; snapshots taken before this call are unaffected.
    pub fn apply(&mut self, d: &WriteDesc) {
        assert_eq!(
            d.version,
            self.version + 1,
            "descriptors must be applied in version order"
        );
        let target = tree_span(d.total_pages);
        while self.span < target {
            // Grow like the metadata tree: the old root becomes the left
            // child of a root covering twice the page span.
            self.root = self.root.take().map(|old| {
                Arc::new(IxNode {
                    max_version: old.max_version,
                    byte_len: old.byte_len,
                    kind: IxKind::Inner {
                        left: Some(old),
                        right: None,
                    },
                })
            });
            self.span *= 2;
        }
        self.root = rebuild(self.root.as_ref(), 0, self.span, d, self.page_size);
        self.version = d.version;
        self.total_pages = d.total_pages;
        self.total_bytes = d.total_bytes;
    }

    /// Version that owns `page` (the latest writer of that page), or `None`
    /// when the page does not exist. Mirrors [`crate::types::owner_of_page`]
    /// at `up_to == self.version()`.
    pub fn owner_of_page(&self, page: u64) -> Option<Version> {
        if page >= self.total_pages {
            return None;
        }
        let (mut lo, mut hi) = (0u64, self.span);
        let mut node = self.root.as_deref()?;
        loop {
            match &node.kind {
                IxKind::Leaf => return Some(node.max_version),
                IxKind::Inner { left, right } => {
                    let mid = lo + (hi - lo) / 2;
                    if page < mid {
                        node = left.as_deref()?;
                        hi = mid;
                    } else {
                        node = right.as_deref()?;
                        lo = mid;
                    }
                }
            }
        }
    }

    /// Latest version that wrote any live page in `[lo, hi)` (clamped to the
    /// BLOB end). Mirrors [`crate::types::latest_toucher`] at
    /// `up_to == self.version()`.
    pub fn latest_toucher(&self, lo: u64, hi: u64) -> Option<Version> {
        let hi = hi.min(self.total_pages);
        if lo >= hi {
            return None;
        }
        max_in(self.root.as_deref(), 0, self.span, lo, hi)
    }

    /// Byte offset of the start of page `page` (`page == total_pages` maps
    /// to the BLOB length). Mirrors [`crate::types::byte_offset_of_page`].
    pub fn byte_offset_of_page(&self, page: u64) -> Option<u64> {
        if self.version == 0 || page > self.total_pages {
            return None;
        }
        Some(prefix(self.root.as_deref(), 0, self.span, page))
    }

    /// Byte length of the page range `[lo, hi)` clamped to the BLOB end.
    /// Mirrors [`crate::types::byte_len_of_range`].
    pub fn byte_len_of_range(&self, lo: u64, hi: u64) -> Option<u64> {
        if self.version == 0 {
            return None;
        }
        let hi = hi.min(self.total_pages);
        if lo >= hi {
            return Some(0);
        }
        Some(self.byte_offset_of_page(hi)? - self.byte_offset_of_page(lo)?)
    }

    /// Page whose byte range contains `offset`, or `None` when the BLOB is
    /// empty or `offset >= total_bytes`. The interior-offset counterpart of
    /// [`Self::page_at_boundary`]: this is what lets the client answer
    /// offset→page mapping locally (index-backed `page_locations`) instead
    /// of descending the DHT tree.
    pub fn page_containing(&self, offset: u64) -> Option<u64> {
        if self.version == 0 || offset >= self.total_bytes {
            return None;
        }
        let (mut lo, mut hi) = (0u64, self.span);
        let mut node = self.root.as_deref()?;
        let mut rem = offset;
        loop {
            match &node.kind {
                IxKind::Leaf => return Some(lo),
                IxKind::Inner { left, right } => {
                    let mid = lo + (hi - lo) / 2;
                    let left_len = left.as_deref().map_or(0, |l| l.byte_len);
                    if rem < left_len {
                        node = left.as_deref()?;
                        hi = mid;
                    } else {
                        // rem < node.byte_len throughout, so the right child
                        // exists whenever this branch is taken.
                        rem -= left_len;
                        node = right.as_deref()?;
                        lo = mid;
                    }
                }
            }
        }
    }

    /// Count the tree nodes of this snapshot that are not already recorded
    /// in `seen` (a set of node addresses), inserting every node visited.
    /// Calling this across a family of snapshots measures their true
    /// combined heap footprint: structurally-shared subtrees are counted
    /// once no matter how many snapshots pin them, and a subtree whose root
    /// was already seen is skipped entirely (its descendants are shared
    /// too). This is the diagnostic behind the desc-index memory bound.
    pub fn count_nodes(&self, seen: &mut std::collections::HashSet<usize>) -> usize {
        fn walk(node: &Arc<IxNode>, seen: &mut std::collections::HashSet<usize>) -> usize {
            if !seen.insert(Arc::as_ptr(node) as usize) {
                return 0;
            }
            match &node.kind {
                IxKind::Leaf => 1,
                IxKind::Inner { left, right } => {
                    1 + left.as_ref().map_or(0, |n| walk(n, seen))
                        + right.as_ref().map_or(0, |n| walk(n, seen))
                }
            }
        }
        self.root.as_ref().map_or(0, |r| walk(r, seen))
    }

    /// Page index whose byte offset is exactly `offset` (`total_pages` for
    /// `offset == total_bytes`), or `None` when `offset` is not a page
    /// boundary. Mirrors [`crate::types::page_at_boundary`].
    pub fn page_at_boundary(&self, offset: u64) -> Option<u64> {
        if self.version == 0 {
            return None;
        }
        if offset == self.total_bytes {
            return Some(self.total_pages);
        }
        if offset > self.total_bytes {
            return None;
        }
        let (mut lo, mut hi) = (0u64, self.span);
        let mut node = self.root.as_deref()?;
        let mut rem = offset;
        loop {
            match &node.kind {
                IxKind::Leaf => return if rem == 0 { Some(lo) } else { None },
                IxKind::Inner { left, right } => {
                    let mid = lo + (hi - lo) / 2;
                    let left_len = left.as_deref().map_or(0, |l| l.byte_len);
                    if rem < left_len {
                        node = left.as_deref()?;
                        hi = mid;
                    } else {
                        // rem < node.byte_len throughout, so the right child
                        // exists whenever this branch is taken.
                        rem -= left_len;
                        node = right.as_deref()?;
                        lo = mid;
                    }
                }
            }
        }
    }
}

/// Bytes stored in pages `[page_lo, page_lo + i)` of descriptor `d`, where
/// only the last page of a descriptor may be short.
fn page_byte_len(d: &WriteDesc, page: u64, page_size: u64) -> u64 {
    let start = d.byte_lo + (page - d.page_lo) * page_size;
    (d.byte_hi - start).min(page_size)
}

fn rebuild(
    old: Option<&Arc<IxNode>>,
    lo: u64,
    hi: u64,
    d: &WriteDesc,
    page_size: u64,
) -> Option<Arc<IxNode>> {
    if lo >= d.total_pages {
        // Slots beyond the (possibly shrunk) end of the BLOB.
        return None;
    }
    if !d.touches_range(lo, hi) {
        // Untouched live subtree: share it with the previous snapshot. Any
        // node straddling the old end of the BLOB also straddles the new
        // write (appends and tail replaces end exactly at `total_pages`),
        // so shared subtrees never carry stale byte lengths.
        return old.cloned();
    }
    if hi - lo == 1 {
        return Some(Arc::new(IxNode {
            max_version: d.version,
            byte_len: page_byte_len(d, lo, page_size),
            kind: IxKind::Leaf,
        }));
    }
    let mid = lo + (hi - lo) / 2;
    let (old_l, old_r) = match old.map(|n| &n.kind) {
        Some(IxKind::Inner { left, right }) => (left.as_ref(), right.as_ref()),
        _ => (None, None),
    };
    let left = rebuild(old_l, lo, mid, d, page_size);
    let right = rebuild(old_r, mid, hi, d, page_size);
    let max_version = left
        .as_deref()
        .map_or(0, |n| n.max_version)
        .max(right.as_deref().map_or(0, |n| n.max_version));
    let byte_len =
        left.as_deref().map_or(0, |n| n.byte_len) + right.as_deref().map_or(0, |n| n.byte_len);
    Some(Arc::new(IxNode {
        max_version,
        byte_len,
        kind: IxKind::Inner { left, right },
    }))
}

fn max_in(node: Option<&IxNode>, lo: u64, hi: u64, a: u64, b: u64) -> Option<Version> {
    let n = node?;
    if b <= lo || hi <= a {
        return None;
    }
    if a <= lo && hi <= b {
        return Some(n.max_version);
    }
    match &n.kind {
        // A leaf is one page; any overlap is full overlap.
        IxKind::Leaf => Some(n.max_version),
        IxKind::Inner { left, right } => {
            let mid = lo + (hi - lo) / 2;
            let l = max_in(left.as_deref(), lo, mid, a, b);
            let r = max_in(right.as_deref(), mid, hi, a, b);
            match (l, r) {
                (Some(x), Some(y)) => Some(x.max(y)),
                (x, None) => x,
                (None, y) => y,
            }
        }
    }
}

/// Bytes stored in pages `[node range start, page)` of this subtree.
fn prefix(node: Option<&IxNode>, lo: u64, hi: u64, page: u64) -> u64 {
    let Some(n) = node else { return 0 };
    if page >= hi {
        return n.byte_len;
    }
    if page <= lo {
        return 0;
    }
    match &n.kind {
        IxKind::Leaf => 0, // unreachable: lo < page < hi needs hi - lo > 1
        IxKind::Inner { left, right } => {
            let mid = lo + (hi - lo) / 2;
            prefix(left.as_deref(), lo, mid, page) + prefix(right.as_deref(), mid, hi, page)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::types::{
        byte_len_of_range, byte_offset_of_page, latest_toucher, owner_of_page, page_at_boundary,
        WriteKind,
    };

    const PS: u64 = 100;

    fn d(version: Version, pl: u64, ph: u64, bl: u64, bh: u64, tp: u64, tb: u64) -> WriteDesc {
        WriteDesc {
            version,
            kind: WriteKind::Append,
            page_lo: pl,
            page_hi: ph,
            byte_lo: bl,
            byte_hi: bh,
            total_pages: tp,
            total_bytes: tb,
        }
    }

    /// The three-append history shared with the `types` tests: v1 = 250 B
    /// (short tail), v2 = 100 B, v3 = 150 B (short tail).
    fn history() -> Vec<WriteDesc> {
        vec![
            d(1, 0, 3, 0, 250, 3, 250),
            d(2, 3, 4, 250, 350, 4, 350),
            d(3, 4, 6, 350, 500, 6, 500),
        ]
    }

    fn index_of(descs: &[WriteDesc]) -> DescIndex {
        let mut ix = DescIndex::new(PS);
        for d in descs {
            ix.apply(d);
        }
        ix
    }

    fn assert_matches_oracle(ix: &DescIndex, descs: &[WriteDesc]) {
        let v = ix.version();
        let tp = ix.total_pages();
        for page in 0..tp + 2 {
            assert_eq!(
                ix.owner_of_page(page),
                owner_of_page(descs, v, page).map(|d| d.version),
                "owner_of_page({page}) diverged at v{v}"
            );
            assert_eq!(
                ix.byte_offset_of_page(page),
                byte_offset_of_page(descs, v, PS, page),
                "byte_offset_of_page({page}) diverged at v{v}"
            );
        }
        for lo in 0..=tp {
            for hi in lo..=tp + 2 {
                assert_eq!(
                    ix.latest_toucher(lo, hi),
                    latest_toucher(descs, v, lo, hi).map(|d| d.version),
                    "latest_toucher({lo}, {hi}) diverged at v{v}"
                );
                assert_eq!(
                    ix.byte_len_of_range(lo, hi),
                    byte_len_of_range(descs, v, PS, lo, hi),
                    "byte_len_of_range({lo}, {hi}) diverged at v{v}"
                );
            }
        }
        for off in 0..ix.total_bytes() + 2 {
            assert_eq!(
                ix.page_at_boundary(off),
                page_at_boundary(descs, v, PS, off),
                "page_at_boundary({off}) diverged at v{v}"
            );
            // page_containing: the largest page whose byte offset is <= off
            // (None at or past EOF).
            let want = if off < ix.total_bytes() {
                (0..tp)
                    .rev()
                    .find(|&pg| byte_offset_of_page(descs, v, PS, pg).unwrap() <= off)
            } else {
                None
            };
            assert_eq!(
                ix.page_containing(off),
                want,
                "page_containing({off}) diverged at v{v}"
            );
        }
    }

    #[test]
    fn empty_index_answers_like_empty_history() {
        let ix = DescIndex::new(PS);
        assert_eq!(ix.version(), 0);
        assert_eq!(ix.owner_of_page(0), None);
        assert_eq!(ix.latest_toucher(0, 10), None);
        assert_eq!(ix.byte_offset_of_page(0), None);
        assert_eq!(ix.byte_len_of_range(0, 1), None);
        assert_eq!(ix.page_at_boundary(0), None);
        assert_eq!(ix.page_containing(0), None);
    }

    #[test]
    fn appends_match_oracle_at_every_prefix() {
        let h = history();
        let mut ix = DescIndex::new(PS);
        for (i, desc) in h.iter().enumerate() {
            ix.apply(desc);
            assert_matches_oracle(&ix, &h[..=i]);
        }
    }

    #[test]
    fn overwrites_match_oracle() {
        let mut h = history();
        h.push(WriteDesc {
            version: 4,
            kind: WriteKind::Write,
            page_lo: 0,
            page_hi: 2,
            byte_lo: 0,
            byte_hi: 200,
            total_pages: 6,
            total_bytes: 500,
        });
        assert_matches_oracle(&index_of(&h), &h);
    }

    #[test]
    fn tail_replace_can_shrink_the_page_count() {
        // Pages [0,100), [100,130), [130,200); replacing from offset 100
        // with one 100 B page shrinks the BLOB from 3 pages to 2.
        let mut h = vec![
            d(1, 0, 2, 0, 130, 2, 130),
            d(2, 2, 3, 130, 200, 3, 200),
            WriteDesc {
                version: 3,
                kind: WriteKind::Write,
                page_lo: 1,
                page_hi: 2,
                byte_lo: 100,
                byte_hi: 200,
                total_pages: 2,
                total_bytes: 200,
            },
        ];
        let ix = index_of(&h);
        assert_eq!(ix.total_pages(), 2);
        assert_eq!(ix.owner_of_page(2), None);
        assert_matches_oracle(&ix, &h);
        // And the BLOB can grow again afterwards.
        h.push(d(4, 2, 4, 200, 350, 4, 350));
        assert_matches_oracle(&index_of(&h), &h);
    }

    #[test]
    fn snapshots_are_immutable_and_share_structure() {
        let h = history();
        let mut ix = index_of(&h[..2]);
        let snap = ix.clone();
        ix.apply(&h[2]);
        // The snapshot still answers as of v2...
        assert_eq!(snap.version(), 2);
        assert_eq!(snap.total_bytes(), 350);
        assert_eq!(snap.owner_of_page(4), None);
        assert_matches_oracle(&snap, &h[..2]);
        // ...while the original moved on to v3,
        assert_eq!(ix.version(), 3);
        assert_eq!(ix.owner_of_page(4), Some(3));
        // ...and untouched subtrees are physically shared, not copied: v3
        // grows the span from 4 to 8, so its root's left child IS the whole
        // v2 tree (pages [0,4) untouched by the append of pages [4,6)).
        let (Some(old_root), Some(new_root)) = (snap.root.as_ref(), ix.root.as_ref()) else {
            panic!("both snapshots have roots");
        };
        let IxKind::Inner {
            left: Some(new_l), ..
        } = &new_root.kind
        else {
            panic!("v3 root is inner");
        };
        assert!(
            Arc::ptr_eq(old_root, new_l),
            "append to pages [4,6) must share the untouched [0,4) subtree"
        );
    }

    #[test]
    fn apply_out_of_order_panics() {
        let h = history();
        let mut ix = DescIndex::new(PS);
        ix.apply(&h[0]);
        let res = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            let mut ix2 = ix.clone();
            ix2.apply(&h[2]);
        }));
        assert!(res.is_err(), "skipping v2 must panic");
    }
}
