//! Data providers: the nodes that physically store pages (paper §3.1.1:
//! "the providers store the pages, as assigned by the provider manager").
//!
//! A provider is a passive service object; clients invoke it with their
//! [`Proc`] context, which charges the network transfer (client→provider for
//! stores, provider→client for fetches) and, when persistence is enabled,
//! the provider-side disk I/O. Pages live either in memory (the
//! configuration the paper benchmarks — BlobSeer persisted to BerkeleyDB
//! asynchronously) or in a [`pstore::Store`].

use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};

use fabric::{NodeId, Payload, Proc};
use parking_lot::Mutex;

use crate::error::{BlobError, BlobResult};
use crate::types::PageId;

enum Backend {
    Mem(HashMap<PageId, Payload>),
    Persistent(pstore::Store),
}

/// One page-storage service instance.
pub struct Provider {
    node: NodeId,
    alive: AtomicBool,
    backend: Mutex<Backend>,
    stored_bytes: AtomicU64,
    stored_pages: AtomicU64,
    /// Bytes promised to in-flight writes by the provider manager; lets the
    /// least-loaded policy spread concurrent writers before their data lands.
    reserved_bytes: AtomicU64,
}

fn page_key(id: PageId) -> [u8; 16] {
    let mut k = [0u8; 16];
    k[..8].copy_from_slice(&id.0.to_be_bytes());
    k[8..].copy_from_slice(&id.1.to_be_bytes());
    k
}

impl Provider {
    /// In-memory provider on `node`.
    pub fn new_mem(node: NodeId) -> Self {
        Provider {
            node,
            alive: AtomicBool::new(true),
            backend: Mutex::new(Backend::Mem(HashMap::new())),
            stored_bytes: AtomicU64::new(0),
            stored_pages: AtomicU64::new(0),
            reserved_bytes: AtomicU64::new(0),
        }
    }

    /// Provider backed by the BerkeleyDB-substitute [`pstore::Store`]
    /// (live mode with real bytes only).
    pub fn new_persistent(node: NodeId, dir: &std::path::Path) -> BlobResult<Self> {
        let store = pstore::Store::open(dir).map_err(|e| BlobError::Persistence(e.to_string()))?;
        Ok(Provider {
            node,
            alive: AtomicBool::new(true),
            backend: Mutex::new(Backend::Persistent(store)),
            stored_bytes: AtomicU64::new(0),
            stored_pages: AtomicU64::new(0),
            reserved_bytes: AtomicU64::new(0),
        })
    }

    /// The node hosting this provider.
    pub fn node(&self) -> NodeId {
        self.node
    }

    /// Is the provider accepting requests?
    pub fn is_alive(&self) -> bool {
        self.alive.load(Ordering::Acquire)
    }

    /// Failure injection: stop serving (simulates a crashed provider).
    pub fn kill(&self) {
        self.alive.store(false, Ordering::Release);
    }

    /// Bring a killed provider back (its pages survived — crash, not wipe).
    pub fn revive(&self) {
        self.alive.store(true, Ordering::Release);
    }

    /// Bytes currently stored.
    pub fn stored_bytes(&self) -> u64 {
        self.stored_bytes.load(Ordering::Relaxed)
    }

    /// Pages currently stored.
    pub fn stored_pages(&self) -> u64 {
        self.stored_pages.load(Ordering::Relaxed)
    }

    /// Load metric used by the least-loaded allocation policy.
    pub fn load_estimate(&self) -> u64 {
        self.stored_bytes() + self.reserved_bytes.load(Ordering::Relaxed)
    }

    pub(crate) fn reserve(&self, bytes: u64) {
        self.reserved_bytes.fetch_add(bytes, Ordering::Relaxed);
    }

    pub(crate) fn unreserve(&self, bytes: u64) {
        let mut cur = self.reserved_bytes.load(Ordering::Relaxed);
        loop {
            let next = cur.saturating_sub(bytes);
            match self.reserved_bytes.compare_exchange_weak(
                cur,
                next,
                Ordering::Relaxed,
                Ordering::Relaxed,
            ) {
                Ok(_) => break,
                Err(c) => cur = c,
            }
        }
    }

    /// Store a page. Charges the client→provider transfer and (if
    /// persistent) provider disk I/O. Fails when the provider is down.
    pub fn put_page(&self, p: &Proc, id: PageId, data: Payload) -> BlobResult<()> {
        if !self.is_alive() {
            return Err(BlobError::ProviderDown { node: self.node.0 });
        }
        let len = data.len();
        p.transfer(p.node(), self.node, len);
        // The transfer took (virtual) time; the provider may have died
        // mid-stream.
        if !self.is_alive() {
            return Err(BlobError::ProviderDown { node: self.node.0 });
        }
        {
            let mut be = self.backend.lock();
            match &mut *be {
                Backend::Mem(m) => {
                    if m.insert(id, data).is_none() {
                        self.stored_pages.fetch_add(1, Ordering::Relaxed);
                        self.stored_bytes.fetch_add(len, Ordering::Relaxed);
                    }
                }
                Backend::Persistent(s) => {
                    let bytes = match &data {
                        Payload::Bytes(b) => b.as_ref(),
                        Payload::Ghost(_) => {
                            return Err(BlobError::Persistence(
                                "persistent providers require real payload bytes".into(),
                            ))
                        }
                    };
                    let existed = s.contains(&page_key(id));
                    s.put(&page_key(id), bytes)
                        .map_err(|e| BlobError::Persistence(e.to_string()))?;
                    if !existed {
                        self.stored_pages.fetch_add(1, Ordering::Relaxed);
                        self.stored_bytes.fetch_add(len, Ordering::Relaxed);
                    }
                }
            }
        }
        if matches!(&*self.backend.lock(), Backend::Persistent(_)) {
            p.disk_write(self.node, len);
        }
        self.unreserve(len);
        Ok(())
    }

    /// Fetch a page. Charges the provider→client transfer (and provider disk
    /// read when persistent).
    pub fn get_page(&self, p: &Proc, id: PageId) -> BlobResult<Payload> {
        if !self.is_alive() {
            return Err(BlobError::ProviderDown { node: self.node.0 });
        }
        let data = {
            let be = self.backend.lock();
            match &*be {
                Backend::Mem(m) => m.get(&id).cloned(),
                Backend::Persistent(s) => s
                    .get(&page_key(id))
                    .map_err(|e| BlobError::Persistence(e.to_string()))?
                    .map(Payload::from_vec),
            }
        };
        let data = data.ok_or_else(|| BlobError::PageUnavailable {
            detail: format!("page {id:?} not on provider {}", self.node),
        })?;
        if matches!(&*self.backend.lock(), Backend::Persistent(_)) {
            p.disk_read(self.node, data.len());
        }
        p.transfer(self.node, p.node(), data.len());
        Ok(data)
    }

    /// Does the provider hold this page? (control query, uncosted)
    pub fn has_page(&self, id: PageId) -> bool {
        let be = self.backend.lock();
        match &*be {
            Backend::Mem(m) => m.contains_key(&id),
            Backend::Persistent(s) => s.contains(&page_key(id)),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fabric::{ClusterSpec, Fabric};

    fn with_proc<T: Send + 'static>(f: impl FnOnce(&Proc) -> T + Send + 'static) -> T {
        let fx = Fabric::sim(ClusterSpec::tiny(4));
        let h = fx.spawn(NodeId(0), "t", f);
        fx.run();
        h.take().unwrap()
    }

    #[test]
    fn mem_put_get_roundtrip() {
        with_proc(|p| {
            let prov = Provider::new_mem(NodeId(1));
            let id = PageId(1, 2);
            prov.put_page(p, id, Payload::from_vec(vec![9u8; 64 * 1024]))
                .unwrap();
            assert_eq!(prov.stored_pages(), 1);
            assert_eq!(prov.stored_bytes(), 64 * 1024);
            let got = prov.get_page(p, id).unwrap();
            assert_eq!(got.bytes().as_ref(), &[9u8; 64 * 1024][..]);
            assert!(prov.has_page(id));
            assert!(!prov.has_page(PageId(9, 9)));
        });
    }

    #[test]
    fn ghost_pages_are_stored_by_size() {
        with_proc(|p| {
            let prov = Provider::new_mem(NodeId(1));
            prov.put_page(p, PageId(1, 1), Payload::ghost(1 << 20))
                .unwrap();
            assert_eq!(prov.stored_bytes(), 1 << 20);
            assert_eq!(prov.get_page(p, PageId(1, 1)).unwrap().len(), 1 << 20);
        });
    }

    #[test]
    fn dead_provider_rejects() {
        with_proc(|p| {
            let prov = Provider::new_mem(NodeId(1));
            prov.put_page(p, PageId(1, 1), Payload::ghost(10)).unwrap();
            prov.kill();
            assert!(matches!(
                prov.put_page(p, PageId(1, 2), Payload::ghost(10)),
                Err(BlobError::ProviderDown { .. })
            ));
            assert!(matches!(
                prov.get_page(p, PageId(1, 1)),
                Err(BlobError::ProviderDown { .. })
            ));
            prov.revive();
            assert_eq!(prov.get_page(p, PageId(1, 1)).unwrap().len(), 10);
        });
    }

    #[test]
    fn missing_page_reports_unavailable() {
        with_proc(|p| {
            let prov = Provider::new_mem(NodeId(1));
            assert!(matches!(
                prov.get_page(p, PageId(5, 5)),
                Err(BlobError::PageUnavailable { .. })
            ));
        });
    }

    #[test]
    fn reservation_tracks_inflight_writes() {
        with_proc(|p| {
            let prov = Provider::new_mem(NodeId(1));
            prov.reserve(1000);
            assert_eq!(prov.load_estimate(), 1000);
            prov.put_page(p, PageId(1, 1), Payload::ghost(1000))
                .unwrap();
            assert_eq!(prov.load_estimate(), 1000); // reserved released, stored added
            prov.unreserve(5000); // over-release saturates at zero
            assert_eq!(prov.load_estimate(), 1000);
        });
    }

    #[test]
    fn persistent_provider_roundtrip_and_recovery() {
        let dir = std::env::temp_dir().join(format!("prov-pstore-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let d2 = dir.clone();
        with_proc(move |p| {
            let prov = Provider::new_persistent(NodeId(1), &d2).unwrap();
            prov.put_page(p, PageId(3, 4), Payload::from_vec(b"durable".to_vec()))
                .unwrap();
            assert_eq!(
                prov.get_page(p, PageId(3, 4)).unwrap().bytes().as_ref(),
                b"durable"
            );
            // Ghosts cannot be persisted.
            assert!(matches!(
                prov.put_page(p, PageId(3, 5), Payload::ghost(10)),
                Err(BlobError::Persistence(_))
            ));
        });
        // Reopen: pages survive "process restart".
        let d3 = dir.clone();
        with_proc(move |p| {
            let prov = Provider::new_persistent(NodeId(1), &d3).unwrap();
            assert_eq!(
                prov.get_page(p, PageId(3, 4)).unwrap().bytes().as_ref(),
                b"durable"
            );
        });
        let _ = std::fs::remove_dir_all(&dir);
    }
}
