//! Data providers: the nodes that physically store pages (paper §3.1.1:
//! "the providers store the pages, as assigned by the provider manager").
//!
//! A provider is a passive service object; clients invoke it with their
//! [`Proc`] context, which charges the network transfer (client→provider for
//! stores, provider→client for fetches) and, when persistence is enabled,
//! the provider-side disk I/O. Pages live either in memory (the
//! configuration the paper benchmarks — BlobSeer persisted to BerkeleyDB
//! asynchronously) or in a [`pstore::Store`].
//!
//! The wire protocol is *batched*, mirroring the metadata plane's
//! [`crate::dht::MetaDht::put_batch`]/`get_batch`: [`Provider::put_pages`]
//! and [`Provider::get_pages`] move N pages in one costed exchange per
//! provider, with per-page error granularity so replica failover still works
//! page by page. [`Provider::op_counts`] counts pages served,
//! [`Provider::rpc_counts`] counts wire round-trips — the gap between the
//! two is the batching win, and the data-plane regression tests pin it.
//!
//! The page store is *lock-striped*: the in-memory backend is a fixed array
//! of `RwLock<HashMap>` stripes keyed by page id, so concurrent `get_pages`
//! / `put_pages` from distinct clients touch distinct stripes (or share a
//! read lock) instead of funneling through one provider-wide mutex — in
//! live mode N clients hitting one node genuinely proceed in parallel. The
//! persistent backend ([`pstore::Store`]) is internally synchronized and
//! needs no outer lock at all. All counters (`stored_*`, `op_counts`,
//! `rpc_counts`, reservations) are atomics, so nothing about the accounting
//! relies on a global lock either.

use std::collections::HashMap;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};

use fabric::{NodeId, Payload, Proc};
use parking_lot::RwLock;

use crate::error::{BlobError, BlobResult, PersistenceKind};
use crate::types::PageId;

/// Stripe count of the in-memory page map. Page ids are random 128-bit
/// values, so a cheap xor spreads them uniformly; 16 stripes is plenty to
/// decorrelate the handful of OS threads live mode runs per node.
const MEM_STRIPES: usize = 16;

fn stripe_of(id: PageId) -> usize {
    ((id.0 ^ id.1.rotate_left(32)) % MEM_STRIPES as u64) as usize
}

enum Backend {
    /// Lock-striped in-memory page map (the configuration the paper
    /// benchmarks).
    Mem(Vec<RwLock<HashMap<PageId, Payload>>>),
    /// BerkeleyDB-substitute store; internally synchronized (`put`/`get`
    /// take `&self`), so data-path calls share a read guard. The outer
    /// `RwLock<Option<..>>` exists only for the crash-restart lifecycle:
    /// `crash_wipe` takes the write guard (serializing against in-flight
    /// batches) and drops the store; `recover` reopens it from `dir`.
    /// Boxed to keep the common `Mem` variant lean.
    Persistent(Box<PersistentBackend>),
}

struct PersistentBackend {
    /// `None` while crash-wiped (between `crash_wipe` and `recover`).
    store: RwLock<Option<pstore::Store>>,
    dir: PathBuf,
    opts: pstore::StoreOptions,
}

/// Key namespace for pages inside a provider's store (recovery rebuilds the
/// page counters from exactly this prefix).
const PAGE_PREFIX: &[u8] = b"p/";

/// One page-storage service instance.
pub struct Provider {
    node: NodeId,
    alive: AtomicBool,
    backend: Backend,
    stored_bytes: AtomicU64,
    stored_pages: AtomicU64,
    /// Bytes promised to in-flight writes by the provider manager; lets the
    /// least-loaded policy spread concurrent writers before their data lands.
    reserved_bytes: AtomicU64,
    put_ops: AtomicU64,
    get_ops: AtomicU64,
    put_rpcs: AtomicU64,
    get_rpcs: AtomicU64,
    /// Completed crash-restart recoveries (diagnostics).
    recoveries: AtomicU64,
}

/// Modeled per-page framing overhead riding a batched page transfer.
const PAGE_HDR_BYTES: u64 = 32;
/// Modeled wire size of one page id in a batched fetch request.
const PAGE_REQ_BYTES: u64 = 16;

fn page_key(id: PageId) -> [u8; 18] {
    let mut k = [0u8; 18];
    k[..2].copy_from_slice(PAGE_PREFIX);
    k[2..10].copy_from_slice(&id.0.to_be_bytes());
    k[10..].copy_from_slice(&id.1.to_be_bytes());
    k
}

impl Provider {
    fn with_backend(node: NodeId, backend: Backend) -> Self {
        Provider {
            node,
            alive: AtomicBool::new(true),
            backend,
            stored_bytes: AtomicU64::new(0),
            stored_pages: AtomicU64::new(0),
            reserved_bytes: AtomicU64::new(0),
            put_ops: AtomicU64::new(0),
            get_ops: AtomicU64::new(0),
            put_rpcs: AtomicU64::new(0),
            get_rpcs: AtomicU64::new(0),
            recoveries: AtomicU64::new(0),
        }
    }

    /// In-memory provider on `node`.
    pub fn new_mem(node: NodeId) -> Self {
        let stripes =
            (0..MEM_STRIPES).map(|_| RwLock::with_rank(HashMap::new(), crate::lock_ranks::STRIPES));
        Self::with_backend(node, Backend::Mem(stripes.collect()))
    }

    /// Provider backed by the BerkeleyDB-substitute [`pstore::Store`] with
    /// default store options (real payload bytes only).
    pub fn new_persistent(node: NodeId, dir: &Path) -> BlobResult<Self> {
        Self::new_persistent_with(node, dir, pstore::StoreOptions::default())
    }

    /// Provider backed by [`pstore::Store`] with explicit store options
    /// (segment size, fsync policy, checkpoint cadence). Opening a
    /// non-empty directory *recovers* it: the page index replays from the
    /// newest checkpoint and `stored_bytes`/`stored_pages` are reconstructed
    /// from the index — never trusted from the dead process.
    pub fn new_persistent_with(
        node: NodeId,
        dir: &Path,
        opts: pstore::StoreOptions,
    ) -> BlobResult<Self> {
        let store = pstore::Store::open_with(dir, opts.clone())
            .map_err(|e| BlobError::persistence(dir, &e))?;
        let prov = Self::with_backend(
            node,
            Backend::Persistent(Box::new(PersistentBackend {
                store: RwLock::new(Some(store)),
                dir: dir.to_path_buf(),
                opts,
            })),
        );
        prov.rebuild_counters();
        Ok(prov)
    }

    /// Reconstruct `stored_pages`/`stored_bytes` from the store's page index
    /// (metadata only — no value reads) and zero the reservation book: a
    /// freshly (re)opened provider has no in-flight writers yet; the
    /// provider manager re-reserves for leases that straddled the restart
    /// (`ProviderManager::reinstate`).
    fn rebuild_counters(&self) {
        let Backend::Persistent(pb) = &self.backend else {
            return;
        };
        let g = pb.store.read();
        if let Some(s) = g.as_ref() {
            let meta = s.prefix_meta(PAGE_PREFIX);
            self.stored_pages
                .store(meta.len() as u64, Ordering::Relaxed);
            self.stored_bytes
                .store(meta.iter().map(|(_, n)| *n).sum(), Ordering::Relaxed);
        }
        self.reserved_bytes.store(0, Ordering::Relaxed);
    }

    /// Process-crash injection for persistent providers: stop serving, drop
    /// ALL in-memory state (index, counters, buffered unacknowledged
    /// records) and keep only the on-disk store directory — the state a real
    /// restart would find. Memory-backed providers cannot model this
    /// (nothing would survive) and answer `UnsupportedFault`.
    pub fn crash_wipe(&self) -> BlobResult<()> {
        let Backend::Persistent(pb) = &self.backend else {
            return Err(BlobError::UnsupportedFault(format!(
                "provider on {} holds pages in memory only; \
                 CrashRestart requires a persist_dir deployment",
                self.node
            )));
        };
        self.kill();
        // The write guard serializes against in-flight batches: a batch
        // that acknowledged before the wipe has already flushed to the OS
        // and survives; one that lost the race observes `None` and fails
        // with `ProviderDown`, exactly like a mid-stream crash.
        if let Some(s) = pb.store.write().take() {
            s.abandon();
        }
        for c in [
            &self.stored_bytes,
            &self.stored_pages,
            &self.reserved_bytes,
            &self.put_ops,
            &self.get_ops,
            &self.put_rpcs,
            &self.get_rpcs,
        ] {
            c.store(0, Ordering::Relaxed);
        }
        Ok(())
    }

    /// Restart a crash-wiped provider from its store directory: replay from
    /// the newest checkpoint, rebuild counters from the recovered index, and
    /// resume serving. Returns the bytes replayed past the checkpoint (the
    /// recovery cost the checkpoint cadence bounds). Idempotent: recovering
    /// a provider that was never wiped just revives it.
    pub fn recover(&self) -> BlobResult<u64> {
        let Backend::Persistent(pb) = &self.backend else {
            return Err(BlobError::UnsupportedFault(format!(
                "provider on {} holds pages in memory only; nothing to recover",
                self.node
            )));
        };
        let mut g = pb.store.write();
        let replayed = if g.is_none() {
            let store = pstore::Store::open_with(&pb.dir, pb.opts.clone())
                .map_err(|e| BlobError::persistence(&pb.dir, &e))?;
            let replayed = store.replayed_bytes();
            *g = Some(store);
            drop(g);
            self.rebuild_counters();
            self.recoveries.fetch_add(1, Ordering::Relaxed);
            replayed
        } else {
            0
        };
        self.revive();
        Ok(replayed)
    }

    /// True between [`Self::crash_wipe`] and [`Self::recover`].
    pub fn is_wiped(&self) -> bool {
        matches!(&self.backend, Backend::Persistent(pb) if pb.store.read().is_none())
    }

    /// Completed crash-restart recoveries.
    pub fn recoveries(&self) -> u64 {
        self.recoveries.load(Ordering::Relaxed)
    }

    /// The node hosting this provider.
    pub fn node(&self) -> NodeId {
        self.node
    }

    /// Is the provider accepting requests?
    pub fn is_alive(&self) -> bool {
        self.alive.load(Ordering::Acquire)
    }

    /// Failure injection: stop serving (simulates a crashed provider).
    pub fn kill(&self) {
        self.alive.store(false, Ordering::Release);
    }

    /// Bring a killed provider back (its pages survived — crash, not wipe).
    pub fn revive(&self) {
        self.alive.store(true, Ordering::Release);
    }

    /// Bytes currently stored.
    pub fn stored_bytes(&self) -> u64 {
        self.stored_bytes.load(Ordering::Relaxed)
    }

    /// Pages currently stored.
    pub fn stored_pages(&self) -> u64 {
        self.stored_pages.load(Ordering::Relaxed)
    }

    /// Load metric used by the least-loaded allocation policy.
    pub fn load_estimate(&self) -> u64 {
        self.stored_bytes() + self.reserved_bytes.load(Ordering::Relaxed)
    }

    pub(crate) fn reserve(&self, bytes: u64) {
        self.reserved_bytes.fetch_add(bytes, Ordering::Relaxed);
    }

    pub(crate) fn unreserve(&self, bytes: u64) {
        let mut cur = self.reserved_bytes.load(Ordering::Relaxed);
        loop {
            let next = cur.saturating_sub(bytes);
            match self.reserved_bytes.compare_exchange_weak(
                cur,
                next,
                Ordering::Relaxed,
                Ordering::Relaxed,
            ) {
                Ok(_) => break,
                Err(c) => cur = c,
            }
        }
    }

    /// (put, get) operations served, counted per *page* however the pages
    /// were shipped (a batch of k pages counts k).
    pub fn op_counts(&self) -> (u64, u64) {
        (
            self.put_ops.load(Ordering::Relaxed),
            self.get_ops.load(Ordering::Relaxed),
        )
    }

    /// (put, get) wire round-trips served — a batch counts once. The gap
    /// between [`Self::op_counts`] and this is the batching win.
    pub fn rpc_counts(&self) -> (u64, u64) {
        (
            self.put_rpcs.load(Ordering::Relaxed),
            self.get_rpcs.load(Ordering::Relaxed),
        )
    }

    /// Store a page. Charges the client→provider transfer and (if
    /// persistent) provider disk I/O. Fails when the provider is down.
    pub fn put_page(&self, p: &Proc, id: PageId, data: Payload) -> BlobResult<()> {
        self.put_pages(p, vec![(id, data)])
            .pop()
            .unwrap_or_else(|| {
                Err(BlobError::Internal {
                    detail: "put_pages answered zero results for one page".into(),
                })
            })
    }

    /// Store a batch of pages in ONE costed wire exchange: a single bulk
    /// client→provider stream carries every page (plus per-page framing),
    /// instead of one round-trip per page. Results answer `pages[i]` at
    /// `out[i]` — per-page granularity, so a caller can fail over only the
    /// pages that did not land. Successful pages release their capacity
    /// reservation here; the caller releases reservations of failed ones.
    pub fn put_pages(&self, p: &Proc, pages: Vec<(PageId, Payload)>) -> Vec<BlobResult<()>> {
        let n = pages.len();
        if n == 0 {
            return Vec::new();
        }
        let all_down = || -> Vec<BlobResult<()>> {
            (0..n)
                .map(|_| Err(BlobError::ProviderDown { node: self.node.0 }))
                .collect()
        };
        if !self.is_alive() {
            return all_down();
        }
        self.put_rpcs.fetch_add(1, Ordering::Relaxed);
        self.put_ops.fetch_add(n as u64, Ordering::Relaxed);
        let total: u64 = pages.iter().map(|(_, d)| d.len()).sum();
        p.transfer(p.node(), self.node, total + PAGE_HDR_BYTES * n as u64);
        // The transfer took (virtual) time; the provider may have died
        // mid-stream — then nothing of the batch is acknowledged.
        if !self.is_alive() {
            return all_down();
        }
        let mut out = Vec::with_capacity(n);
        match &self.backend {
            Backend::Mem(stripes) => {
                for (id, data) in pages {
                    let len = data.len();
                    // Only this page's stripe is write-locked; concurrent
                    // batches for other stripes proceed in parallel.
                    // analyze: allow(panic-index): stripe_of is modulo PAGE_STRIPES
                    let mut m = stripes[stripe_of(id)].write();
                    if m.insert(id, data).is_none() {
                        self.stored_pages.fetch_add(1, Ordering::Relaxed);
                        self.stored_bytes.fetch_add(len, Ordering::Relaxed);
                    }
                    drop(m);
                    // A page that landed consumes its capacity reservation
                    // here — failed pages keep theirs for the caller to
                    // release.
                    self.unreserve(len);
                    out.push(Ok(()));
                }
            }
            Backend::Persistent(pb) => {
                // The read guard is held across the whole batch INCLUDING
                // the flush: a concurrent crash_wipe serializes before the
                // batch (every page answers ProviderDown) or after it
                // (every acknowledged page is already on the OS side of a
                // process crash). No page is ever acked and then lost.
                let g = pb.store.read();
                let Some(s) = g.as_ref() else {
                    return all_down();
                };
                // Stage every page into the store first...
                let mut staged: Vec<(u64, BlobResult<bool>)> = Vec::with_capacity(n);
                for (id, data) in pages {
                    let len = data.len();
                    let res = match &data {
                        Payload::Bytes(b) => {
                            let existed = s.contains(&page_key(id));
                            s.put(&page_key(id), b.as_ref())
                                .map(|()| !existed)
                                .map_err(|e| BlobError::persistence(&pb.dir, &e))
                        }
                        Payload::Ghost(_) => Err(BlobError::Persistence {
                            kind: PersistenceKind::Unsupported,
                            path: pb.dir.display().to_string(),
                            detail: "persistent providers require real payload bytes".into(),
                        }),
                    };
                    staged.push((len, res));
                }
                // ...then make them process-crash durable before a single
                // acknowledgement leaves this provider. A failed flush
                // fails the batch: nothing unflushed is ever acked.
                let flush_err = s
                    .flush_buffered()
                    .err()
                    .map(|e| BlobError::persistence(&pb.dir, &e));
                drop(g);
                let mut landed_bytes = 0u64;
                for (len, res) in staged {
                    let res = match (&flush_err, res) {
                        (Some(fe), Ok(_)) => Err(fe.clone()),
                        (_, r) => r,
                    };
                    match res {
                        Ok(newly_stored) => {
                            if newly_stored {
                                self.stored_pages.fetch_add(1, Ordering::Relaxed);
                                self.stored_bytes.fetch_add(len, Ordering::Relaxed);
                            }
                            landed_bytes += len;
                            self.unreserve(len);
                            out.push(Ok(()));
                        }
                        Err(e) => out.push(Err(e)),
                    }
                }
                p.disk_write(self.node, landed_bytes);
            }
        }
        out
    }

    /// Fetch a page. Charges the provider→client transfer (and provider disk
    /// read when persistent).
    pub fn get_page(&self, p: &Proc, id: PageId) -> BlobResult<Payload> {
        self.get_pages(p, std::slice::from_ref(&id))
            .pop()
            .unwrap_or_else(|| {
                Err(BlobError::Internal {
                    detail: "get_pages answered zero results for one page".into(),
                })
            })
    }

    /// Fetch a batch of pages in ONE costed wire exchange: the id list rides
    /// a single request, and every page found comes back in a single bulk
    /// provider→client stream. `out[i]` answers `ids[i]`; pages the provider
    /// does not hold answer `PageUnavailable` individually, so replica
    /// failover stays page-by-page.
    pub fn get_pages(&self, p: &Proc, ids: &[PageId]) -> Vec<BlobResult<Payload>> {
        let n = ids.len();
        if n == 0 {
            return Vec::new();
        }
        if !self.is_alive() {
            return (0..n)
                .map(|_| Err(BlobError::ProviderDown { node: self.node.0 }))
                .collect();
        }
        self.get_rpcs.fetch_add(1, Ordering::Relaxed);
        self.get_ops.fetch_add(n as u64, Ordering::Relaxed);
        p.transfer(p.node(), self.node, PAGE_REQ_BYTES * n as u64);
        let mut out = Vec::with_capacity(n);
        let mut found_bytes = 0u64;
        match &self.backend {
            Backend::Mem(stripes) => {
                for id in ids {
                    // Read lock on one stripe: concurrent readers of the
                    // same stripe share it, writers to other stripes never
                    // touch it.
                    // analyze: allow(panic-index): stripe_of is modulo PAGE_STRIPES
                    let data = stripes[stripe_of(*id)].read().get(id).cloned();
                    out.push(match data {
                        Some(d) => {
                            found_bytes += d.len();
                            Ok(d)
                        }
                        None => Err(BlobError::PageUnavailable {
                            detail: format!("page {id:?} not on provider {}", self.node),
                        }),
                    });
                }
            }
            Backend::Persistent(pb) => {
                let g = pb.store.read();
                let Some(s) = g.as_ref() else {
                    // Crash-wiped mid-exchange: the whole batch is lost.
                    return (0..n)
                        .map(|_| Err(BlobError::ProviderDown { node: self.node.0 }))
                        .collect();
                };
                for id in ids {
                    let data = s
                        .get(&page_key(*id))
                        .map_err(|e| BlobError::persistence(&pb.dir, &e))
                        .map(|b| b.map(Payload::from_vec));
                    out.push(match data {
                        Ok(Some(d)) => {
                            found_bytes += d.len();
                            Ok(d)
                        }
                        Ok(None) => Err(BlobError::PageUnavailable {
                            detail: format!("page {id:?} not on provider {}", self.node),
                        }),
                        Err(e) => Err(e),
                    });
                }
                drop(g);
                p.disk_read(self.node, found_bytes);
            }
        }
        p.transfer(self.node, p.node(), found_bytes + PAGE_HDR_BYTES * n as u64);
        out
    }

    /// Does the provider hold this page? (control query, uncosted — also
    /// answers while the provider is down: the lease reaper uses it to tell
    /// consumed reservations from stranded ones)
    pub fn has_page(&self, id: PageId) -> bool {
        match &self.backend {
            // analyze: allow(panic-index): stripe_of is modulo PAGE_STRIPES
            Backend::Mem(stripes) => stripes[stripe_of(id)].read().contains_key(&id),
            // A crash-wiped store holds nothing in memory; any reaper
            // misaccounting in the wipe window is erased when `recover`
            // rebuilds the counters from disk.
            Backend::Persistent(pb) => pb
                .store
                .read()
                .as_ref()
                .is_some_and(|s| s.contains(&page_key(id))),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fabric::{ClusterSpec, Fabric};

    fn with_proc<T: Send + 'static>(f: impl FnOnce(&Proc) -> T + Send + 'static) -> T {
        let fx = Fabric::sim(ClusterSpec::tiny(4));
        let h = fx.spawn(NodeId(0), "t", f);
        fx.run();
        h.take().unwrap()
    }

    #[test]
    fn mem_put_get_roundtrip() {
        with_proc(|p| {
            let prov = Provider::new_mem(NodeId(1));
            let id = PageId(1, 2);
            prov.put_page(p, id, Payload::from_vec(vec![9u8; 64 * 1024]))
                .unwrap();
            assert_eq!(prov.stored_pages(), 1);
            assert_eq!(prov.stored_bytes(), 64 * 1024);
            let got = prov.get_page(p, id).unwrap();
            assert_eq!(got.bytes().as_ref(), &[9u8; 64 * 1024][..]);
            assert!(prov.has_page(id));
            assert!(!prov.has_page(PageId(9, 9)));
        });
    }

    #[test]
    fn ghost_pages_are_stored_by_size() {
        with_proc(|p| {
            let prov = Provider::new_mem(NodeId(1));
            prov.put_page(p, PageId(1, 1), Payload::ghost(1 << 20))
                .unwrap();
            assert_eq!(prov.stored_bytes(), 1 << 20);
            assert_eq!(prov.get_page(p, PageId(1, 1)).unwrap().len(), 1 << 20);
        });
    }

    #[test]
    fn dead_provider_rejects() {
        with_proc(|p| {
            let prov = Provider::new_mem(NodeId(1));
            prov.put_page(p, PageId(1, 1), Payload::ghost(10)).unwrap();
            prov.kill();
            assert!(matches!(
                prov.put_page(p, PageId(1, 2), Payload::ghost(10)),
                Err(BlobError::ProviderDown { .. })
            ));
            assert!(matches!(
                prov.get_page(p, PageId(1, 1)),
                Err(BlobError::ProviderDown { .. })
            ));
            prov.revive();
            assert_eq!(prov.get_page(p, PageId(1, 1)).unwrap().len(), 10);
        });
    }

    #[test]
    fn missing_page_reports_unavailable() {
        with_proc(|p| {
            let prov = Provider::new_mem(NodeId(1));
            assert!(matches!(
                prov.get_page(p, PageId(5, 5)),
                Err(BlobError::PageUnavailable { .. })
            ));
        });
    }

    #[test]
    fn reservation_tracks_inflight_writes() {
        with_proc(|p| {
            let prov = Provider::new_mem(NodeId(1));
            prov.reserve(1000);
            assert_eq!(prov.load_estimate(), 1000);
            prov.put_page(p, PageId(1, 1), Payload::ghost(1000))
                .unwrap();
            assert_eq!(prov.load_estimate(), 1000); // reserved released, stored added
            prov.unreserve(5000); // over-release saturates at zero
            assert_eq!(prov.load_estimate(), 1000);
        });
    }

    #[test]
    fn batched_puts_and_gets_cost_one_rpc() {
        with_proc(|p| {
            let prov = Provider::new_mem(NodeId(1));
            let pages: Vec<(PageId, Payload)> = (0..16)
                .map(|i| (PageId(1, i), Payload::ghost(100)))
                .collect();
            let ids: Vec<PageId> = pages.iter().map(|(id, _)| *id).collect();
            let res = prov.put_pages(p, pages);
            assert!(res.iter().all(Result::is_ok));
            assert_eq!(prov.stored_pages(), 16);
            assert_eq!(prov.op_counts(), (16, 0));
            assert_eq!(prov.rpc_counts(), (1, 0), "16 puts ride one RPC");
            let got = prov.get_pages(p, &ids);
            assert_eq!(got.len(), 16);
            for g in &got {
                assert_eq!(g.as_ref().unwrap().len(), 100);
            }
            assert_eq!(prov.op_counts(), (16, 16));
            assert_eq!(prov.rpc_counts(), (1, 1), "16 gets ride one RPC");
        });
    }

    #[test]
    fn batched_get_reports_missing_pages_individually() {
        with_proc(|p| {
            let prov = Provider::new_mem(NodeId(1));
            prov.put_page(p, PageId(1, 1), Payload::ghost(10)).unwrap();
            prov.put_page(p, PageId(1, 3), Payload::ghost(20)).unwrap();
            let got = prov.get_pages(p, &[PageId(1, 1), PageId(1, 2), PageId(1, 3)]);
            assert_eq!(got[0].as_ref().unwrap().len(), 10);
            assert!(matches!(got[1], Err(BlobError::PageUnavailable { .. })));
            assert_eq!(got[2].as_ref().unwrap().len(), 20);
        });
    }

    #[test]
    fn batched_put_to_dead_provider_fails_every_page() {
        with_proc(|p| {
            let prov = Provider::new_mem(NodeId(1));
            prov.kill();
            let res = prov.put_pages(
                p,
                vec![
                    (PageId(1, 1), Payload::ghost(10)),
                    (PageId(1, 2), Payload::ghost(10)),
                ],
            );
            assert_eq!(res.len(), 2);
            assert!(res
                .iter()
                .all(|r| matches!(r, Err(BlobError::ProviderDown { .. }))));
            // A rejected batch never counts as a served round-trip.
            assert_eq!(prov.rpc_counts(), (0, 0));
        });
    }

    #[test]
    fn partial_batch_failure_keeps_per_page_books_exact() {
        // A batch that partially fails under the striped backend must keep
        // the PR 2/3 contract bit-for-bit: failed pages answer their own
        // error, landed pages consume exactly their reservation, and the
        // failed pages' reservations stay for the caller to release. The
        // persistent backend rejects ghosts per page, which makes a genuine
        // intra-batch partial failure.
        let dir = std::env::temp_dir().join(format!("prov-partial-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let d2 = dir.clone();
        with_proc(move |p| {
            let prov = Provider::new_persistent(NodeId(1), &d2).unwrap();
            prov.reserve(30); // 3 pages x 10 B, as the provider manager would
            let res = prov.put_pages(
                p,
                vec![
                    (PageId(1, 1), Payload::from_vec(vec![7u8; 10])),
                    (PageId(1, 2), Payload::ghost(10)), // cannot persist
                    (PageId(1, 3), Payload::from_vec(vec![9u8; 10])),
                ],
            );
            assert!(res[0].is_ok());
            assert!(matches!(
                res[1],
                Err(BlobError::Persistence {
                    kind: PersistenceKind::Unsupported,
                    ..
                })
            ));
            assert!(res[2].is_ok());
            assert_eq!(prov.stored_pages(), 2, "only the landed pages count");
            assert_eq!(prov.stored_bytes(), 20);
            // Landed pages consumed 20 B of the reservation; the failed
            // page's 10 B remain until the caller hands them back.
            assert_eq!(prov.load_estimate(), 30);
            prov.unreserve(10);
            assert_eq!(prov.load_estimate(), prov.stored_bytes());
            // Error granularity stayed per page: the batch still counted as
            // one served round-trip.
            assert_eq!(prov.rpc_counts(), (1, 0));
            assert_eq!(prov.op_counts(), (3, 0));
        });
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn persistent_provider_roundtrip_and_recovery() {
        let dir = std::env::temp_dir().join(format!("prov-pstore-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let d2 = dir.clone();
        with_proc(move |p| {
            let prov = Provider::new_persistent(NodeId(1), &d2).unwrap();
            prov.put_page(p, PageId(3, 4), Payload::from_vec(b"durable".to_vec()))
                .unwrap();
            assert_eq!(
                prov.get_page(p, PageId(3, 4)).unwrap().bytes().as_ref(),
                b"durable"
            );
            // Ghosts cannot be persisted.
            assert!(matches!(
                prov.put_page(p, PageId(3, 5), Payload::ghost(10)),
                Err(BlobError::Persistence { .. })
            ));
        });
        // Reopen: pages survive "process restart".
        let d3 = dir.clone();
        with_proc(move |p| {
            let prov = Provider::new_persistent(NodeId(1), &d3).unwrap();
            assert_eq!(
                prov.get_page(p, PageId(3, 4)).unwrap().bytes().as_ref(),
                b"durable"
            );
        });
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn reopened_persistent_provider_reconstructs_counters() {
        // Satellite: the books must balance after open → put → reopen — a
        // fresh process on a non-empty directory reconstructs
        // stored_bytes/stored_pages from the index instead of starting at
        // zero, and load_estimate equals stored_bytes (no phantom
        // reservations).
        let dir = std::env::temp_dir().join(format!("prov-books-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let d2 = dir.clone();
        with_proc(move |p| {
            let prov = Provider::new_persistent(NodeId(1), &d2).unwrap();
            assert_eq!(prov.stored_bytes(), 0);
            for i in 0..5u64 {
                prov.put_page(p, PageId(7, i), Payload::from_vec(vec![i as u8; 100]))
                    .unwrap();
            }
            assert_eq!(prov.stored_pages(), 5);
            assert_eq!(prov.stored_bytes(), 500);
        });
        let d3 = dir.clone();
        with_proc(move |_p| {
            let prov = Provider::new_persistent(NodeId(1), &d3).unwrap();
            assert_eq!(prov.stored_pages(), 5, "page count rebuilt from index");
            assert_eq!(prov.stored_bytes(), 500, "byte count rebuilt from index");
            assert_eq!(
                prov.load_estimate(),
                prov.stored_bytes(),
                "no reservations cross a restart"
            );
            assert_eq!(prov.op_counts(), (0, 0), "op counters are per-process");
        });
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn crash_wipe_then_recover_roundtrip() {
        let dir = std::env::temp_dir().join(format!("prov-wipe-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let d2 = dir.clone();
        with_proc(move |p| {
            let prov = Provider::new_persistent(NodeId(1), &d2).unwrap();
            prov.reserve(64);
            prov.put_page(p, PageId(1, 1), Payload::from_vec(vec![1u8; 64]))
                .unwrap();
            prov.put_page(p, PageId(1, 2), Payload::from_vec(vec![2u8; 32]))
                .unwrap();
            prov.reserve(1000); // in-flight writer that will die with the crash

            prov.crash_wipe().unwrap();
            assert!(prov.is_wiped());
            assert!(!prov.is_alive());
            assert_eq!(prov.stored_bytes(), 0, "wipe drops all in-memory state");
            assert!(!prov.has_page(PageId(1, 1)), "wiped store answers nothing");
            assert!(matches!(
                prov.get_page(p, PageId(1, 1)),
                Err(BlobError::ProviderDown { .. })
            ));

            let replayed = prov.recover().unwrap();
            assert!(replayed > 0, "no checkpoint was taken: all bytes replay");
            assert!(!prov.is_wiped());
            assert!(prov.is_alive());
            assert_eq!(prov.recoveries(), 1);
            assert_eq!(prov.stored_pages(), 2);
            assert_eq!(prov.stored_bytes(), 96);
            assert_eq!(
                prov.load_estimate(),
                prov.stored_bytes(),
                "crash erased the stale reservation"
            );
            assert_eq!(
                prov.get_page(p, PageId(1, 2)).unwrap().bytes().as_ref(),
                &[2u8; 32][..]
            );
            // Idempotent: recovering a live provider is a no-op revive.
            assert_eq!(prov.recover().unwrap(), 0);
            assert_eq!(prov.recoveries(), 1);

            // Memory-backed providers cannot model a restart.
            let mem = Provider::new_mem(NodeId(2));
            assert!(matches!(
                mem.crash_wipe(),
                Err(BlobError::UnsupportedFault(_))
            ));
            assert!(matches!(mem.recover(), Err(BlobError::UnsupportedFault(_))));
        });
        let _ = std::fs::remove_dir_all(&dir);
    }
}
