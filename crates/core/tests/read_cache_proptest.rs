//! Property test: cached reads are byte-identical to uncached reads — and
//! to a plain reference model — across random interleavings of appends,
//! aligned overwrites, tail replaces and read-replica crash-restarts, for
//! the latest and every historical version. The deployment runs a
//! replica-bearing persistent layout, so every read exercises the full
//! stack the tentpole added: published-floor gating, the page/leaf cache,
//! replica preference and the per-page `has_page` staleness gate.

use std::sync::atomic::{AtomicU64, Ordering};

use blobseer::{BlobSeer, BlobSeerConfig, Fault, FaultTarget, Layout};
use fabric::{ClusterSpec, Fabric, NodeId, Payload};
use proptest::prelude::*;

const PS: u64 = 64;

/// Distinguishes concurrent proptest cases inside one test process so their
/// pstore directories never collide (the path never feeds the simulation).
static CASE_SERIAL: AtomicU64 = AtomicU64::new(0);

#[derive(Debug, Clone)]
enum Op {
    /// Append `len` bytes of `tag` pattern (and pump the replica sync when
    /// the tag is even, so replica freshness interleaves with writes).
    Append { len: u64, tag: u8 },
    /// Overwrite starting at page boundary `page` (modulo the current page
    /// count) with `pages` pages; becomes a tail replace when it runs off
    /// the end — mirroring the model in `blob_model_proptest`.
    Overwrite { page: u64, pages: u64, tag: u8 },
    /// Read `len` bytes at `off` from version `v_pick` through the cached
    /// client (all reduced modulo the current state).
    Read { off: u64, len: u64, v_pick: u64 },
    /// Crash-wipe one read replica and heal it from its durable store; an
    /// uncached read in between proves failover, reads after prove the
    /// stale replica is never served for versions it lacks.
    ReplicaCrashRestart { which: u64 },
}

fn op_strategy() -> impl Strategy<Value = Op> {
    prop_oneof![
        4 => (1u64..260, any::<u8>()).prop_map(|(len, tag)| Op::Append { len, tag }),
        2 => (any::<u64>(), 1u64..4, any::<u8>()).prop_map(|(page, pages, tag)| Op::Overwrite {
            page,
            pages,
            tag
        }),
        3 => (any::<u64>(), any::<u64>(), any::<u64>()).prop_map(|(off, len, v_pick)| Op::Read {
            off,
            len,
            v_pick
        }),
        1 => any::<u64>().prop_map(|which| Op::ReplicaCrashRestart { which }),
    ]
}

fn pattern(len: u64, tag: u8) -> Vec<u8> {
    (0..len)
        .map(|i| tag.wrapping_add((i % 253) as u8))
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 16, ..ProptestConfig::default() })]

    #[test]
    fn cached_reads_match_uncached_and_model(ops in prop::collection::vec(op_strategy(), 1..28)) {
        let dir = std::env::temp_dir().join(format!(
            "blobseer-read-cache-prop-{}-{}",
            std::process::id(),
            CASE_SERIAL.fetch_add(1, Ordering::Relaxed)
        ));
        let _ = std::fs::remove_dir_all(&dir);
        let fx = Fabric::sim(ClusterSpec::tiny(8));
        let layout = Layout::compact(fx.spec()).with_read_replicas_from_tail(2);
        let config = BlobSeerConfig::test_small(PS).with_persist_dir(Some(dir.clone()));
        let bs = BlobSeer::deploy(&fx, config, layout).unwrap();
        let bs2 = bs.clone();
        let h = fx.spawn(NodeId(7), "driver", move |p| {
            let cached = bs2.client();
            let uncached = bs2.uncached_client();
            let blob = cached.create(p, None);
            // snapshots[v] = reference content at version v.
            let mut snapshots: Vec<Vec<u8>> = vec![Vec::new()];
            let mut page_lens: Vec<u64> = Vec::new();
            let append_layout = |page_lens: &mut Vec<u64>, len: u64| {
                let mut rest = len;
                while rest > 0 {
                    let n = rest.min(PS);
                    page_lens.push(n);
                    rest -= n;
                }
            };
            for op in ops {
                match op {
                    Op::Append { len, tag } => {
                        let data = pattern(len, tag);
                        let v = cached.append(p, blob, Payload::from_vec(data.clone())).unwrap();
                        assert_eq!(v as usize, snapshots.len());
                        append_layout(&mut page_lens, len);
                        let mut next = snapshots.last().unwrap().clone();
                        next.extend_from_slice(&data);
                        snapshots.push(next);
                        if tag % 2 == 0 {
                            bs2.sync_read_replicas(p);
                        }
                    }
                    Op::Overwrite { page, pages, tag } => {
                        let cur = snapshots.last().unwrap().clone();
                        if page_lens.is_empty() { continue; }
                        let start = (page % page_lens.len() as u64) as usize;
                        let k = (pages as usize).min(page_lens.len() - start);
                        let off: u64 = page_lens[..start].iter().sum();
                        let tail_replacing = start + k >= page_lens.len();
                        let data_len = if tail_replacing {
                            (k as u64 - 1) * PS + 1 + (tag as u64 % PS)
                        } else {
                            if page_lens[start..start + k].iter().any(|&l| l != PS) {
                                continue; // interior overwrite needs full pages
                            }
                            k as u64 * PS
                        };
                        let remaining: u64 = page_lens[start..].iter().sum();
                        if tail_replacing && data_len < remaining {
                            continue; // would leave a gap; not a tail replace
                        }
                        let data = pattern(data_len, tag);
                        let v = cached
                            .write(p, blob, off, Payload::from_vec(data.clone()))
                            .unwrap();
                        assert_eq!(v as usize, snapshots.len());
                        let mut next = cur;
                        let end = off + data_len;
                        if tail_replacing {
                            page_lens.truncate(start);
                            append_layout(&mut page_lens, data_len);
                            next.truncate(off as usize);
                            next.extend_from_slice(&data);
                        } else {
                            next[off as usize..end as usize].copy_from_slice(&data);
                        }
                        snapshots.push(next);
                    }
                    Op::Read { off, len, v_pick } => {
                        let v = (v_pick % snapshots.len() as u64) as usize;
                        let want = &snapshots[v];
                        if want.is_empty() { continue; }
                        let off = off % want.len() as u64;
                        let len = (len % (want.len() as u64 - off)).min(220);
                        if len == 0 { continue; }
                        let got = cached.read(p, blob, Some(v as u64), off, len).unwrap();
                        assert_eq!(
                            got.bytes().as_ref(),
                            &want[off as usize..(off + len) as usize],
                            "cached read v{v} [{off}, {off}+{len}) diverged"
                        );
                    }
                    Op::ReplicaCrashRestart { which } => {
                        let i = (which % 2) as usize;
                        bs2.inject(FaultTarget::ReadReplica(i), Fault::CrashRestart)
                            .unwrap();
                        // Mid-outage uncached read: must fail over around
                        // the dead replica and stay byte-correct.
                        let want = snapshots.last().unwrap();
                        if !want.is_empty() {
                            let got = uncached
                                .read(p, blob, None, 0, want.len() as u64)
                                .unwrap();
                            assert_eq!(
                                got.bytes().as_ref(),
                                &want[..],
                                "read during replica outage diverged"
                            );
                        }
                        bs2.heal(FaultTarget::ReadReplica(i)).unwrap();
                    }
                }
            }
            // Final sweep: every version, through both clients. The cached
            // client re-reads versions it may have cached long ago (and
            // versions it never saw); the uncached client re-fetches
            // everything through the replica-preferring wire path.
            for (v, want) in snapshots.iter().enumerate().skip(1) {
                for (label, client) in [("cached", &cached), ("uncached", &uncached)] {
                    let got = client
                        .read(p, blob, Some(v as u64), 0, want.len() as u64)
                        .unwrap();
                    assert_eq!(
                        got.bytes().as_ref(),
                        &want[..],
                        "final {label} check of v{v} diverged"
                    );
                }
            }
        });
        fx.run();
        h.take().unwrap();
        drop(bs);
        let _ = std::fs::remove_dir_all(&dir);
    }
}
