//! Tier-1 pins for the sharded version-manager control plane.
//!
//! The paper's claim is sustained throughput under *heavy access
//! concurrency* (Figures 3/5); the control-plane property behind it is that
//! the version manager serializes only what the protocol demands — per-BLOB
//! version ordering — and nothing across BLOBs. These tests pin that:
//!
//! * **independence** — N appenders on N disjoint BLOBs complete in
//!   sim-time within a small constant factor of a single appender on a
//!   single BLOB (nothing funnels through a shared control-plane resource);
//! * **race safety** — concurrent reap / commit / force-complete /
//!   wait-published interleavings on the same version produce clean results
//!   or typed errors, never panics, and a reaped dead writer cannot wedge
//!   its successors.

use std::sync::Arc;

use blobseer::meta::PageRef;
use blobseer::version_manager::{UpdateKind, VersionManager};
use blobseer::{BlobError, BlobSeer, BlobSeerConfig, Layout};
use fabric::{ClusterSpec, Fabric, NodeId, Payload};
use parking_lot::Mutex;

const PS: u64 = 4 * 1024; // below the small-message cutoff: control + data
                          // cost latency only, so timing isolates the
                          // control plane from bandwidth sharing.

fn config() -> BlobSeerConfig {
    let mut cfg = BlobSeerConfig::test_small(PS);
    // Zero modeled VM/metadata CPU: the *intentional* serialization charge
    // is ablated so that any sim-time growth with N can only come from an
    // accidental shared bottleneck in the control plane itself.
    cfg.vm_cpu_ops = 0;
    cfg.meta_cpu_ops = 0;
    cfg
}

/// Run `n` appenders, each doing `appends` one-page appends to its own
/// fresh BLOB from its own node; returns the slowest appender's elapsed
/// sim-time ns.
fn disjoint_append_time(n: u32, appends: u32) -> u64 {
    let fx = Fabric::sim(ClusterSpec::tiny(n + 1));
    let bs = BlobSeer::deploy(&fx, config(), Layout::compact(fx.spec())).unwrap();
    let elapsed: Arc<Mutex<Vec<u64>>> = Arc::new(Mutex::new(Vec::new()));
    for i in 0..n {
        let bs2 = bs.clone();
        let t2 = elapsed.clone();
        fx.spawn(NodeId(i + 1), format!("appender{i}"), move |p| {
            let c = bs2.client();
            let blob = c.create(p, None);
            let t0 = p.now();
            for _ in 0..appends {
                c.append(p, blob, Payload::ghost(PS)).unwrap();
            }
            t2.lock().push(p.now() - t0);
        });
    }
    fx.run();
    let elapsed = elapsed.lock();
    assert_eq!(elapsed.len(), n as usize);
    elapsed.iter().copied().max().unwrap()
}

/// N appenders on N disjoint BLOBs run in the same sim-time as one appender
/// on one BLOB: the control plane shards per BLOB, so disjoint writers
/// share no lock, no gate and no protocol-level resource. (The modeled VM
/// CPU charge is zeroed here on purpose — with it, the remaining growth is
/// exactly the paper's intentional centralized-VM serialization point.)
#[test]
fn disjoint_blob_appenders_are_independent() {
    let t1 = disjoint_append_time(1, 8);
    for n in [4u32, 16] {
        let tn = disjoint_append_time(n, 8);
        assert!(
            tn as f64 <= t1 as f64 * 1.25,
            "{n} appenders on {n} disjoint blobs took {tn} ns vs {t1} ns for one — \
             the control plane is serializing disjoint blobs"
        );
    }
}

/// Shared-file appenders (the paper's fig3 shape) still publish strictly in
/// version order while disjoint-blob appenders proceed alongside — sharding
/// must not weaken the per-BLOB ordering the protocol demands.
#[test]
fn per_blob_ordering_survives_sharding() {
    let fx = Fabric::sim(ClusterSpec::tiny(10));
    let bs = BlobSeer::deploy(&fx, config(), Layout::compact(fx.spec())).unwrap();
    let client0 = bs.client();
    let shared: Arc<Mutex<Option<blobseer::BlobId>>> = Arc::new(Mutex::new(None));
    let ready = fx.gate();
    {
        let s2 = shared.clone();
        let g = ready.clone();
        let bs2 = bs.clone();
        fx.spawn(NodeId(0), "setup", move |p| {
            *s2.lock() = Some(bs2.client().create(p, None));
            g.set();
        });
    }
    let mut handles = Vec::new();
    for i in 0..8u32 {
        let bs2 = bs.clone();
        let s2 = shared.clone();
        let g = ready.clone();
        handles.push(fx.spawn(NodeId(i + 1), format!("w{i}"), move |p| {
            g.wait(p);
            let c = bs2.client();
            let shared_blob = s2.lock().unwrap();
            // Interleave appends to the shared blob with a private one.
            let own = c.create(p, None);
            let v_shared = c.append(p, shared_blob, Payload::ghost(PS)).unwrap();
            let v_own = c.append(p, own, Payload::ghost(2 * PS)).unwrap();
            (v_shared, v_own)
        }));
    }
    let s3 = shared.clone();
    let checker = fx.spawn(NodeId(9), "check", move |p| {
        let mut shared_versions: Vec<u64> = handles
            .iter()
            .map(|h| {
                let (vs, vo) = h.join(p);
                assert_eq!(vo, 1, "private blobs see exactly their own version");
                vs
            })
            .collect();
        shared_versions.sort_unstable();
        let blob = s3.lock().unwrap();
        let latest = client0.latest(p, blob).unwrap();
        let size = client0.size(p, blob, None).unwrap();
        (shared_versions, latest, size)
    });
    fx.run();
    let (shared_versions, latest, size) = checker.take().unwrap();
    assert_eq!(
        shared_versions,
        (1..=8).collect::<Vec<u64>>(),
        "shared-blob versions are dense and unique"
    );
    assert_eq!(latest, 8);
    assert_eq!(size, 8 * PS);
}

fn vm_setup(fx: &Fabric, timeout_ns: Option<u64>) -> Arc<VersionManager> {
    let dht = Arc::new(blobseer::dht::MetaDht::new(
        vec![Arc::new(blobseer::dht::MetaServer::new(NodeId(1)))],
        0,
    ));
    Arc::new(VersionManager::new(
        NodeId(0),
        fx.clone(),
        dht,
        PS,
        64,
        0,
        blobseer::Timeouts::default().with_write_timeout(timeout_ns),
    ))
}

fn one_page_manifest(tag: u64) -> Arc<Vec<PageRef>> {
    Arc::new(vec![PageRef {
        id: blobseer::PageId(tag, 0),
        byte_len: PS,
        providers: vec![NodeId(2)],
    }])
}

/// The race the reap queue must survive: a writer assigns, stalls past the
/// timeout, and then *resurrects* — its late commit races the reaper's
/// force-complete, concurrent force-completers race each other, and a
/// waiter blocked on the version must wake. Every interleaving ends with
/// the version published and no panic; a lost race surfaces as
/// `VersionRaced` (typed), which `wait_published` resolves by re-checking.
#[test]
fn reap_commit_wait_races_end_published_not_panicked() {
    let timeout = 500 * fabric::MILLIS;
    let fx = Fabric::sim(ClusterSpec::tiny(8));
    let vm = vm_setup(&fx, Some(timeout));
    let blob_cell: Arc<Mutex<Option<blobseer::BlobId>>> = Arc::new(Mutex::new(None));
    let assigned = fx.gate();

    // The stalling writer: assigns v1, sleeps far past the timeout, then
    // commits late and waits for publication.
    {
        let vm2 = vm.clone();
        let (b2, g2) = (blob_cell.clone(), assigned.clone());
        fx.spawn(NodeId(2), "late-writer", move |p| {
            let blob = vm2.create_blob(p, None);
            *b2.lock() = Some(blob);
            let (d, _) = vm2
                .assign(p, blob, UpdateKind::Append, PS, one_page_manifest(1), 0)
                .unwrap();
            g2.set();
            p.sleep(4 * timeout);
            // Late commit of an already force-completed version: idempotent.
            vm2.commit(p, blob, d.version).unwrap();
            vm2.wait_published(p, blob, d.version).unwrap();
        });
    }
    // A waiter parked on v1 before anything published.
    {
        let vm2 = vm.clone();
        let (b2, g2) = (blob_cell.clone(), assigned.clone());
        fx.spawn(NodeId(3), "waiter", move |p| {
            g2.wait(p);
            let blob = b2.lock().unwrap();
            vm2.wait_published(p, blob, 1).unwrap();
            assert!(p.now() >= timeout, "nothing published before the timeout");
        });
    }
    // Two concurrent reapers / force-completers racing on the same version.
    for (i, node) in [(0u32, 4u32), (1, 5)] {
        let vm2 = vm.clone();
        let (b2, g2) = (blob_cell.clone(), assigned.clone());
        fx.spawn(NodeId(node), format!("reaper{i}"), move |p| {
            g2.wait(p);
            let blob = b2.lock().unwrap();
            p.sleep(2 * timeout);
            // Either path may win the race; both must end clean.
            vm2.reap_expired(p, blob).unwrap();
            match vm2.force_complete(p, blob, 1) {
                Ok(()) | Err(BlobError::VersionRaced { .. }) => {}
                Err(e) => panic!("force-complete race leaked {e}"),
            }
            assert_eq!(vm2.latest(p, blob).unwrap(), 1);
        });
    }
    fx.run();
    let blob = blob_cell.lock().unwrap();
    assert_eq!(vm.pending_count(blob), 0);
}

/// A dead writer between live ones, across many BLOBs at once: every BLOB
/// independently reaps its own corpse and publishes its survivors — one
/// BLOB's stall never delays another's reap (per-blob deadline queues).
#[test]
fn each_blob_reaps_independently() {
    let timeout = 200 * fabric::MILLIS;
    let fx = Fabric::sim(ClusterSpec::tiny(8));
    let vm = vm_setup(&fx, Some(timeout));
    let vm2 = vm.clone();
    let h = fx.spawn(NodeId(2), "driver", move |p| {
        let blobs: Vec<_> = (0..16).map(|_| vm2.create_blob(p, None)).collect();
        for (i, &blob) in blobs.iter().enumerate() {
            // v1 dies on even blobs; v2 commits everywhere.
            let (d1, _) = vm2
                .assign(p, blob, UpdateKind::Append, PS, one_page_manifest(1), 0)
                .unwrap();
            let (d2, _) = vm2
                .assign(p, blob, UpdateKind::Append, PS, one_page_manifest(2), 1)
                .unwrap();
            vm2.commit(p, blob, d2.version).unwrap();
            if i % 2 == 1 {
                vm2.commit(p, blob, d1.version).unwrap();
            }
        }
        for (i, &blob) in blobs.iter().enumerate() {
            let want = if i % 2 == 1 { 2 } else { 0 };
            assert_eq!(vm2.latest(p, blob).unwrap(), want, "pre-reap blob {i}");
        }
        p.sleep(2 * timeout);
        // Any control-plane interaction reaps lazily, per blob.
        for &blob in &blobs {
            vm2.reap_expired(p, blob).unwrap();
            assert_eq!(vm2.latest(p, blob).unwrap(), 2);
            assert_eq!(vm2.pending_count(blob), 0);
        }
        blobs.len()
    });
    fx.run();
    assert_eq!(h.take().unwrap(), 16);
}
