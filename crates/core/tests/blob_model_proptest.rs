//! Property test: the full BlobSeer stack (client → VM → DHT → providers)
//! driven by random appends, aligned overwrites and reads must match a
//! plain `Vec<u8>`-per-version reference model, for every historical
//! version. This is the versioning invariant the paper's Figures 4/5 rest
//! on: snapshots are immutable and always reconstructible.

use blobseer::{BlobSeer, BlobSeerConfig, Layout};
use fabric::{ClusterSpec, Fabric, NodeId, Payload};
use proptest::prelude::*;

const PS: u64 = 64;

#[derive(Debug, Clone)]
enum Op {
    /// Append `len` bytes of `tag` pattern.
    Append { len: u64, tag: u8 },
    /// Overwrite starting at page boundary `page` (taken modulo the current
    /// page count) with `pages` full pages.
    Overwrite { page: u64, pages: u64, tag: u8 },
    /// Read `len` bytes at `off` from version `v_pick` (both reduced modulo
    /// the current state).
    Read { off: u64, len: u64, v_pick: u64 },
}

fn op_strategy() -> impl Strategy<Value = Op> {
    prop_oneof![
        4 => (1u64..300, any::<u8>()).prop_map(|(len, tag)| Op::Append { len, tag }),
        2 => (any::<u64>(), 1u64..4, any::<u8>()).prop_map(|(page, pages, tag)| Op::Overwrite {
            page,
            pages,
            tag
        }),
        4 => (any::<u64>(), any::<u64>(), any::<u64>()).prop_map(|(off, len, v_pick)| Op::Read {
            off,
            len,
            v_pick
        }),
    ]
}

fn pattern(len: u64, tag: u8) -> Vec<u8> {
    (0..len)
        .map(|i| tag.wrapping_add((i % 253) as u8))
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 48, ..ProptestConfig::default() })]

    #[test]
    fn full_stack_matches_reference_model(ops in prop::collection::vec(op_strategy(), 1..40)) {
        let fx = Fabric::sim(ClusterSpec::tiny(6));
        let bs = BlobSeer::deploy(
            &fx,
            BlobSeerConfig::test_small(PS),
            Layout::compact(fx.spec()),
        ).unwrap();
        let bs2 = bs.clone();
        let h = fx.spawn(NodeId(0), "driver", move |p| {
            let c = bs2.client();
            let blob = c.create(p, None);
            // snapshots[v] = reference content at version v.
            let mut snapshots: Vec<Vec<u8>> = vec![Vec::new()];
            // Reference page layout: byte length of each page in order.
            // Appends create full pages plus a possibly-short tail, so page
            // boundaries are NOT multiples of PS in general.
            let mut page_lens: Vec<u64> = Vec::new();
            let append_layout = |page_lens: &mut Vec<u64>, len: u64| {
                let mut rest = len;
                while rest > 0 {
                    let n = rest.min(PS);
                    page_lens.push(n);
                    rest -= n;
                }
            };
            for op in ops {
                match op {
                    Op::Append { len, tag } => {
                        let data = pattern(len, tag);
                        let v = c.append(p, blob, Payload::from_vec(data.clone())).unwrap();
                        assert_eq!(v as usize, snapshots.len());
                        append_layout(&mut page_lens, len);
                        let mut next = snapshots.last().unwrap().clone();
                        next.extend_from_slice(&data);
                        snapshots.push(next);
                    }
                    Op::Overwrite { page, pages, tag } => {
                        let cur = snapshots.last().unwrap().clone();
                        if page_lens.is_empty() { continue; }
                        let start = (page % page_lens.len() as u64) as usize;
                        let k = (pages as usize).min(page_lens.len() - start);
                        let off: u64 = page_lens[..start].iter().sum();
                        let tail_replacing = start + k >= page_lens.len();
                        let data_len = if tail_replacing {
                            // Any length >= remaining bytes works; use k full
                            // pages plus a short tail for variety.
                            (k as u64 - 1) * PS + 1 + (tag as u64 % PS)
                        } else {
                            // Interior: only valid when every replaced page
                            // is full-size.
                            if page_lens[start..start + k].iter().any(|&l| l != PS) {
                                continue; // would be rejected; skip
                            }
                            k as u64 * PS
                        };
                        let remaining: u64 = page_lens[start..].iter().sum();
                        if tail_replacing && data_len < remaining {
                            continue; // would leave a gap; not a tail replace
                        }
                        let data = pattern(data_len, tag);
                        let v = c.write(p, blob, off, Payload::from_vec(data.clone())).unwrap();
                        assert_eq!(v as usize, snapshots.len());
                        let mut next = cur;
                        let end = off + data_len;
                        if tail_replacing {
                            page_lens.truncate(start);
                            append_layout(&mut page_lens, data_len);
                            next.truncate(off as usize);
                            next.extend_from_slice(&data);
                        } else {
                            next[off as usize..end as usize].copy_from_slice(&data);
                        }
                        snapshots.push(next);
                    }
                    Op::Read { off, len, v_pick } => {
                        let v = (v_pick % snapshots.len() as u64) as usize;
                        let want = &snapshots[v];
                        if want.is_empty() { continue; }
                        let off = off % want.len() as u64;
                        let len = (len % (want.len() as u64 - off)).min(200) ;
                        if len == 0 { continue; }
                        let got = c.read(p, blob, Some(v as u64), off, len).unwrap();
                        assert_eq!(
                            got.bytes().as_ref(),
                            &want[off as usize..(off + len) as usize],
                            "read v{v} [{off}, {off}+{len}) diverged"
                        );
                    }
                }
            }
            // Final sweep: every version fully matches its snapshot.
            for (v, want) in snapshots.iter().enumerate().skip(1) {
                let got = c.read(p, blob, Some(v as u64), 0, want.len() as u64).unwrap();
                assert_eq!(got.bytes().as_ref(), &want[..], "final check of v{v}");
            }
        });
        fx.run();
        h.take().unwrap();
    }
}
