//! Op-count regression tests for the *data* plane, the mirror of
//! `metadata_ops.rs`: pin the grouped-by-provider page transfers and the
//! index-backed locality API with `Provider::op_counts`/`rpc_counts` and
//! `MetaServer` counters, so a page-at-a-time RPC loop or a reintroduced
//! DHT tree walk fails tier-1 tests instead of only bending bench curves.

use blobseer::{BlobSeer, BlobSeerConfig, Layout};
use fabric::{ClusterSpec, Fabric, NodeId, Payload};

const PS: u64 = 64;

fn deploy(nodes: u32, config: BlobSeerConfig) -> (Fabric, BlobSeer) {
    let fx = Fabric::sim(ClusterSpec::tiny(nodes));
    let layout = Layout::compact(fx.spec());
    let bs = BlobSeer::deploy(&fx, config, layout).unwrap();
    (fx, bs)
}

fn meta_layout(fx: &Fabric, n_meta: u32) -> Layout {
    Layout {
        vm: NodeId(0),
        pm: NodeId(0),
        namespace: NodeId(0),
        meta: (0..n_meta).map(NodeId).collect(),
        providers: fx.spec().all_nodes().collect(),
        read_replicas: vec![],
    }
}

fn provider_counts(bs: &BlobSeer) -> (u64, u64, u64, u64) {
    bs.providers().iter().fold((0, 0, 0, 0), |acc, pr| {
        let (po, go) = pr.op_counts();
        let (pr_, gr) = pr.rpc_counts();
        (acc.0 + po, acc.1 + go, acc.2 + pr_, acc.3 + gr)
    })
}

/// A read of K pages resident on S providers issues at most S data-plane
/// RPCs (one batched get_pages per provider), never one per page.
#[test]
fn read_of_k_pages_costs_at_most_s_rpcs() {
    const K: u64 = 32;
    let (fx, bs) = deploy(4, BlobSeerConfig::test_small(PS));
    let bs2 = bs.clone();
    let h = fx.spawn(NodeId(1), "reader", move |p| {
        let c = bs2.client();
        let blob = c.create(p, None);
        c.append(p, blob, Payload::ghost(K * PS)).unwrap();
        let (_, go0, _, gr0) = provider_counts(&bs2);
        let got = c.read(p, blob, None, 0, K * PS).unwrap();
        assert_eq!(got.len(), K * PS);
        let (_, go1, _, gr1) = provider_counts(&bs2);
        assert_eq!(go1 - go0, K, "every page fetched exactly once");
        let s = bs2.providers().len() as u64;
        assert!(
            gr1 - gr0 <= s,
            "a {K}-page read must group fetches by provider: used {} RPCs, bound is {s}",
            gr1 - gr0
        );
    });
    fx.run();
    h.take().unwrap();
}

/// An R-replica write of K pages costs at most S put RPCs in total (the
/// replica streams of the whole update group by target provider) — and
/// certainly never K·R.
#[test]
fn replicated_write_of_k_pages_costs_at_most_s_rpcs() {
    const K: u64 = 16;
    const R: usize = 3;
    let (fx, bs) = deploy(6, BlobSeerConfig::test_small(PS).with_replication(R));
    let bs2 = bs.clone();
    let h = fx.spawn(NodeId(1), "writer", move |p| {
        let c = bs2.client();
        let blob = c.create(p, None);
        let (po0, _, pr0, _) = provider_counts(&bs2);
        c.append(p, blob, Payload::ghost(K * PS)).unwrap();
        let (po1, _, pr1, _) = provider_counts(&bs2);
        assert_eq!(po1 - po0, K * R as u64, "every replica stream landed");
        let s = bs2.providers().len() as u64;
        assert!(
            pr1 - pr0 <= s,
            "a {K}-page {R}-replica write must group streams by provider: \
             used {} put RPCs, bound is {s} (and K*R would be {})",
            pr1 - pr0,
            K * R as u64
        );
        // All three replicas readable after one failure: kill a provider
        // holding page replicas and re-read (failover stays page-level).
        bs2.providers()[0].kill();
        let got = c.read(p, blob, None, 0, K * PS).unwrap();
        assert_eq!(got.len(), K * PS);
    });
    fx.run();
    h.take().unwrap();
}

/// With a fresh DescIndex snapshot, `page_locations` answers the
/// offset→page mapping locally: the only DHT activity is ONE batched get of
/// the leaf (provider-set) nodes — zero inner tree-node gets, one RPC per
/// metadata server. A full tree walk would fetch ~2K nodes for K leaves.
#[test]
fn page_locations_fetches_only_leaves_when_index_is_fresh() {
    const K: u64 = 64;
    let fx = Fabric::sim(ClusterSpec::tiny(8));
    let n_meta = 2u32;
    let layout = meta_layout(&fx, n_meta);
    let bs = BlobSeer::deploy(&fx, BlobSeerConfig::test_small(PS), layout).unwrap();
    let bs2 = bs.clone();
    let h = fx.spawn(NodeId(1), "writer", move |p| {
        let dht = bs2.metadata_dht().clone();
        let counts = |d: &blobseer::dht::MetaDht| -> (u64, u64) {
            d.servers().iter().fold((0, 0), |(g, r), s| {
                (g + s.op_counts().1, r + s.rpc_counts().1)
            })
        };
        // The writing client holds the index snapshot its append returned:
        // zero extra VM syncs, zero inner-node gets.
        let c = bs2.client();
        let blob = c.create(p, None);
        c.append(p, blob, Payload::ghost(K * PS)).unwrap();
        let (g0, r0) = counts(&dht);
        let locs = c.page_locations(p, blob, None, 0, K * PS).unwrap();
        assert_eq!(locs.len(), K as usize);
        let (g1, r1) = counts(&dht);
        assert_eq!(
            g1 - g0,
            K,
            "index-backed page_locations must fetch exactly the {K} leaves"
        );
        assert!(
            r1 - r0 <= n_meta as u64,
            "leaf fetches must batch per server: {} RPCs, bound {n_meta}",
            r1 - r0
        );

        // A fresh, read-only client syncs the index once from the VM
        // (descriptor delta) and then also touches only leaves.
        let reader = bs2.client();
        let (g2, r2) = counts(&dht);
        let locs2 = reader
            .page_locations(p, blob, None, 10 * PS, 5 * PS)
            .unwrap();
        assert_eq!(locs2.len(), 5);
        let (g3, r3) = counts(&dht);
        assert_eq!(
            g3 - g2,
            5,
            "read-only client must fetch exactly the 5 overlapping leaves"
        );
        assert!(r3 - r2 <= n_meta as u64);
        assert_eq!(&locs2[..], &locs[10..15], "index route matches tree data");

        // Historical versions fall back to the tree walk and still answer.
        c.append(p, blob, Payload::ghost(PS)).unwrap();
        let hist = c.page_locations(p, blob, Some(1), 0, K * PS).unwrap();
        assert_eq!(&hist[..], &locs[..], "tree-walk fallback matches");
    });
    fx.run();
    h.take().unwrap();
}

/// Reads spanning or starting past EOF clamp exactly like `page_locations`
/// does: short read at the boundary, empty past it, no u64 overflow.
#[test]
fn reads_clamp_at_eof_like_page_locations() {
    let (fx, bs) = deploy(4, BlobSeerConfig::test_small(100));
    let bs2 = bs.clone();
    let h = fx.spawn(NodeId(1), "reader", move |p| {
        let c = bs2.client();
        let blob = c.create(p, None);
        let data: Vec<u8> = (0..250u32).map(|i| i as u8).collect();
        c.append(p, blob, Payload::from_vec(data.clone())).unwrap();

        // Spanning EOF: short read of the available tail.
        let got = c.read(p, blob, None, 200, 100).unwrap();
        assert_eq!(got.bytes().as_ref(), &data[200..250]);
        let locs = c.page_locations(p, blob, None, 200, 100).unwrap();
        assert_eq!(locs.len(), 1, "locality API agrees: one overlapping page");

        // At EOF: empty read, empty locations.
        assert!(c.read(p, blob, None, 250, 10).unwrap().is_empty());
        assert!(c.page_locations(p, blob, None, 250, 10).unwrap().is_empty());

        // Past EOF: empty, not an error.
        assert!(c.read(p, blob, None, 300, 10).unwrap().is_empty());
        assert!(c.page_locations(p, blob, None, 300, 10).unwrap().is_empty());

        // len near u64::MAX: offset + len must not overflow.
        let got = c.read(p, blob, None, 100, u64::MAX - 1).unwrap();
        assert_eq!(got.bytes().as_ref(), &data[100..250]);
        let locs = c.page_locations(p, blob, None, 100, u64::MAX - 1).unwrap();
        assert_eq!(locs.len(), 2);
        // And from offset 0 with the full u64 range.
        assert_eq!(c.read(p, blob, None, 0, u64::MAX).unwrap().len(), 250);

        // Empty blob: every read is an empty payload.
        let empty = c.create(p, None);
        assert!(c.read(p, empty, None, 0, 10).unwrap().is_empty());
        assert!(c.page_locations(p, empty, None, 0, 10).unwrap().is_empty());
    });
    fx.run();
    h.take().unwrap();
}
