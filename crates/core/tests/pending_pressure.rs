//! Stress tests for the desc-index memory bound (ROADMAP item): persistent
//! index snapshots are pinned per pending write, so thousands of concurrent
//! pending writers must cost O(pending × tree depth) retained nodes — the
//! structural sharing of the persistent tree — never O(pending × pages),
//! and everything pinned must drop the moment the versions publish. The
//! mass-reap test additionally holds the provider reservation books to
//! zero outstanding after a horde of dead writers is force-completed.

use std::sync::Arc;

use blobseer::dht::{MetaDht, MetaServer};
use blobseer::meta::{collect_leaves, NodeKey, PageRef};
use blobseer::provider::Provider;
use blobseer::provider_manager::ProviderManager;
use blobseer::version_manager::{UpdateKind, VersionManager};
use blobseer::{AllocStrategy, PageId};
use fabric::{ClusterSpec, Fabric, NodeId, Payload, Proc};

const PS: u64 = 1024;

fn vm_only(fx: &Fabric, timeout_ns: Option<u64>) -> Arc<VersionManager> {
    let dht = Arc::new(MetaDht::new(vec![Arc::new(MetaServer::new(NodeId(1)))], 0));
    Arc::new(VersionManager::new(
        NodeId(0),
        fx.clone(),
        dht,
        PS,
        64,
        0,
        blobseer::Timeouts::default().with_write_timeout(timeout_ns),
    ))
}

fn one_page_manifest(tag: u64) -> Arc<Vec<PageRef>> {
    Arc::new(vec![PageRef {
        id: PageId(tag, 0),
        byte_len: PS,
        providers: vec![NodeId(2)],
    }])
}

/// Thousands of pending single-page appends on ONE blob: the retained index
/// nodes stay proportional to pending × tree depth (structural sharing),
/// nowhere near the pending × pages a copying implementation would pay, and
/// the whole overhang drops to one live tree the moment everything
/// publishes — including the pinned manifests.
#[test]
fn one_blob_thousand_pending_writers_bounded_retention() {
    const W: u64 = 2_000;
    let fx = Fabric::sim(ClusterSpec::tiny(4));
    let vm = vm_only(&fx, None); // no reaping: keep every write pending
    let vm2 = vm.clone();
    let h = fx.spawn(NodeId(3), "horde", move |p| {
        let blob = vm2.create_blob(p, None);
        let held = one_page_manifest(0);
        for w in 0..W {
            let m = if w == 0 {
                held.clone()
            } else {
                one_page_manifest(w)
            };
            vm2.assign(p, blob, UpdateKind::Append, PS, m, w).unwrap();
        }
        let (pending, nodes) = vm2.pending_footprint(blob);
        assert_eq!(pending, W as usize);
        // Tree span for 2 000 pages is 2 048 (depth 12): each pending
        // snapshot pins one fresh root-to-leaf path and shares the rest.
        // Naive per-snapshot copies would retain ~W × 4 095 ≈ 8 M nodes.
        let bound = (W as usize) * 20;
        assert!(
            nodes <= bound,
            "{W} pending writers retain {nodes} index nodes; \
             proportional bound is {bound} (a copying index would need ~8M)"
        );

        // Publish everything, in order.
        for v in 1..=W {
            vm2.commit(p, blob, v).unwrap();
        }
        let (pending, nodes) = vm2.pending_footprint(blob);
        assert_eq!(pending, 0, "nothing pending after full publication");
        assert!(
            nodes <= 4_096,
            "after publication only the live tree remains, got {nodes} nodes"
        );
        assert_eq!(
            Arc::strong_count(&held),
            1,
            "published writes must drop their pinned manifests"
        );
        assert_eq!(vm2.latest(p, blob).unwrap(), W);
    });
    fx.run();
    h.take().unwrap();
}

/// The same pressure spread over many blobs: every blob's retention obeys
/// its own proportional bound (the registry shards state — no cross-blob
/// accumulation), and publication collapses each independently.
#[test]
fn many_blobs_pending_writers_bounded_retention() {
    const BLOBS: u64 = 64;
    const W: u64 = 32; // pending writers per blob
    let fx = Fabric::sim(ClusterSpec::tiny(4));
    let vm = vm_only(&fx, None);
    let vm2 = vm.clone();
    let h = fx.spawn(NodeId(3), "horde", move |p| {
        let blobs: Vec<_> = (0..BLOBS).map(|_| vm2.create_blob(p, None)).collect();
        for w in 0..W {
            for (i, &blob) in blobs.iter().enumerate() {
                let m = one_page_manifest(w * BLOBS + i as u64);
                vm2.assign(p, blob, UpdateKind::Append, PS, m, w).unwrap();
            }
        }
        let mut total_nodes = 0usize;
        for &blob in &blobs {
            let (pending, nodes) = vm2.pending_footprint(blob);
            assert_eq!(pending, W as usize);
            // span(32 pages) = 32, depth 6: a generous per-path constant.
            assert!(
                nodes <= (W as usize) * 12,
                "blob retains {nodes} nodes for {W} pending writers"
            );
            total_nodes += nodes;
        }
        assert!(
            total_nodes <= (BLOBS * W) as usize * 12,
            "aggregate retention {total_nodes} exceeds the proportional bound"
        );
        for &blob in &blobs {
            for v in 1..=W {
                vm2.commit(p, blob, v).unwrap();
            }
            let (pending, nodes) = vm2.pending_footprint(blob);
            assert_eq!(pending, 0);
            assert!(nodes <= 2 * 32, "post-publication blob keeps {nodes} nodes");
        }
    });
    fx.run();
    h.take().unwrap();
}

/// A horde of writers stores real pages, gets versions assigned, and dies
/// before step 3. After the mass reap: every version published, the
/// force-completed metadata fully readable from the DHT, and the provider
/// reservation books balanced — reservations were consumed by the page
/// stores and nothing stays stranded.
#[test]
fn provider_books_balance_after_mass_reap() {
    const WRITERS: u64 = 40;
    const BLOBS: usize = 8;
    let timeout = 500 * fabric::MILLIS;
    let fx = Fabric::sim(ClusterSpec::tiny(8));
    let providers: Vec<Arc<Provider>> = (2..6)
        .map(|i| Arc::new(Provider::new_mem(NodeId(i))))
        .collect();
    let pm = Arc::new(ProviderManager::new(
        NodeId(1),
        fx.clone(),
        providers.clone(),
        AllocStrategy::LeastLoaded,
        64,
        Some(timeout),
    ));
    let dht = Arc::new(MetaDht::new(vec![Arc::new(MetaServer::new(NodeId(1)))], 0));
    let vm = Arc::new(VersionManager::new(
        NodeId(0),
        fx.clone(),
        dht.clone(),
        PS,
        64,
        0,
        blobseer::Timeouts::default().with_write_timeout(Some(timeout)),
    ));
    let vm2 = vm.clone();
    let provs = providers.clone();
    let h = fx.spawn(NodeId(7), "driver", move |p| {
        let blobs: Vec<_> = (0..BLOBS).map(|_| vm2.create_blob(p, None)).collect();
        for w in 0..WRITERS {
            let blob = blobs[w as usize % BLOBS];
            // Step 1: store the page for real (consumes the reservation)...
            let id = PageId(0xDEAD, w);
            let (_, placements) = pm.allocate(p, &[(id, PS)], 1, &[]).unwrap();
            let target = placements[0][0].clone();
            target.put_page(p, id, Payload::ghost(PS)).unwrap();
            // ...step 2: get a version assigned...
            let manifest = Arc::new(vec![PageRef {
                id,
                byte_len: PS,
                providers: vec![target.node()],
            }]);
            vm2.assign(p, blob, UpdateKind::Append, PS, manifest, 0)
                .unwrap();
            // ...and die before steps 3/4.
        }
        p.sleep(2 * timeout);
        for &blob in &blobs {
            vm2.reap_expired(p, blob).unwrap();
            let per_blob = WRITERS / BLOBS as u64;
            assert_eq!(vm2.latest(p, blob).unwrap(), per_blob);
            assert_eq!(vm2.pending_count(blob), 0);
            // The force-completed metadata answers a full-range read.
            let snap = vm2.snapshot(p, blob, None).unwrap();
            let fetch_proc: &Proc = p;
            let mut fetch = |keys: &[NodeKey]| dht.get_batch(fetch_proc, keys);
            let hits = collect_leaves(&mut fetch, blob, &snap, 0, snap.total_bytes).unwrap();
            assert_eq!(hits.len() as u64, snap.total_pages);
        }
        // Books: every reservation was either consumed by its page store or
        // released; nothing is stranded after the mass reap.
        let mut stored_total = 0u64;
        for pr in &provs {
            assert_eq!(
                pr.load_estimate(),
                pr.stored_bytes(),
                "provider {} holds stranded reservations",
                pr.node()
            );
            stored_total += pr.stored_bytes();
        }
        assert_eq!(
            stored_total,
            WRITERS * PS,
            "every dead writer's page landed once"
        );
    });
    fx.run();
    h.take().unwrap();
}
