//! Crash-recovery integration tests over the durable storage plane: full
//! deployments with `persist_dir` set, `Fault::CrashRestart` injected
//! through the public fault API, and recovery audited end-to-end — books
//! balanced (`load_estimate == stored_bytes`, no stranded reservations) and
//! every published version byte-identical through a fresh client. The
//! paper's BlobSeer providers persist pages in BerkeleyDB (§3.1.1); these
//! tests prove our equivalent actually comes back from disk.

use std::path::PathBuf;

use blobseer::{BlobError, BlobSeer, BlobSeerConfig, Fault, FaultTarget, Layout, Version};
use fabric::{ClusterSpec, Fabric, NodeId, Payload, Proc};

const PS: u64 = 64;

/// Deterministic byte pattern for append `k` (never zero, so a lost page
/// of zeroes cannot masquerade as correct data).
fn block(k: usize, len: usize) -> Vec<u8> {
    (0..len)
        .map(|i| (k as u8 + 1).wrapping_add(i as u8).max(1))
        .collect()
}

fn scratch_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("blobseer-crashrec-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn persistent_config() -> BlobSeerConfig {
    BlobSeerConfig::test_small(PS)
        .with_replication(2)
        .with_persist_checkpoint_bytes(Some(4 * 1024))
}

/// Append `count` pattern blocks, returning `(version, total_len)` after
/// each publish — the oracle for "every published version readable".
fn publish_blocks(
    p: &Proc,
    c: &blobseer::BlobClient,
    blob: blobseer::BlobId,
    count: usize,
    len: usize,
) -> Vec<(Version, u64)> {
    let mut published = Vec::new();
    let mut total = 0u64;
    for k in 0..count {
        let v = c.append(p, blob, Payload::from_vec(block(k, len))).unwrap();
        total += len as u64;
        published.push((v, total));
    }
    published
}

/// Re-read every published version through a fresh client and compare it
/// byte-for-byte against the append oracle.
fn audit_versions(
    p: &Proc,
    bs: &BlobSeer,
    blob: blobseer::BlobId,
    published: &[(Version, u64)],
    len: usize,
) {
    let fresh = bs.client();
    for &(v, total) in published {
        let got = fresh.read(p, blob, Some(v), 0, total).unwrap();
        assert_eq!(got.len(), total, "version {v} lost bytes");
        let bytes = got.bytes();
        for (k, chunk) in bytes.chunks(len).enumerate() {
            assert_eq!(
                chunk,
                &block(k, len)[..],
                "version {v}, append {k} corrupted"
            );
        }
    }
}

/// Zero stranded capacity anywhere: every provider's load estimate equals
/// its stored bytes and the lease book is empty.
fn assert_books_balanced(bs: &BlobSeer) {
    for pr in bs.providers() {
        assert_eq!(
            pr.load_estimate(),
            pr.stored_bytes(),
            "provider {} strands reservation bytes",
            pr.node()
        );
    }
    assert_eq!(
        bs.provider_manager().outstanding_leases(),
        0,
        "lease book not empty at quiescence"
    );
}

/// A provider process dies mid-history and loses all memory; the heal
/// restarts it from its pstore directory. Reads keep working off replicas
/// while it is down, appends fail over, and after recovery the provider
/// serves exactly its pre-crash pages again.
#[test]
fn provider_crash_restart_recovers_pages_and_books() {
    let dir = scratch_dir("provider");
    let fx = Fabric::sim(ClusterSpec::tiny(4));
    let layout = Layout::compact(fx.spec());
    let cfg = persistent_config().with_persist_dir(Some(dir.clone()));
    let bs = BlobSeer::deploy(&fx, cfg, layout).unwrap();
    let bs2 = bs.clone();
    let h = fx.spawn(NodeId(1), "driver", move |p| {
        const LEN: usize = 200;
        let c = bs2.client();
        let blob = c.create(p, None);
        let mut published = publish_blocks(p, &c, blob, 4, LEN);

        let victim = &bs2.providers()[0];
        let pre_wipe = victim.stored_bytes();
        assert!(pre_wipe > 0, "least-loaded placement left provider 0 empty");

        bs2.inject(FaultTarget::Provider(0), Fault::CrashRestart)
            .unwrap();
        assert!(victim.is_wiped());
        assert_eq!(
            victim.stored_bytes(),
            0,
            "wipe must drop the in-memory index"
        );

        // Replication 2: the latest version stays readable off replicas...
        let (latest, total) = *published.last().unwrap();
        let got = c.read(p, blob, Some(latest), 0, total).unwrap();
        assert_eq!(got.len(), total);
        // ...and a new append fails over around the dead provider.
        let v = c.append(p, blob, Payload::from_vec(block(4, LEN))).unwrap();
        published.push((v, total + LEN as u64));

        bs2.heal(FaultTarget::Provider(0)).unwrap();
        assert!(!victim.is_wiped());
        assert_eq!(victim.recoveries(), 1);
        assert_eq!(
            victim.stored_bytes(),
            pre_wipe,
            "recovery must rebuild exactly the acknowledged pre-crash pages"
        );
        // Idempotent: healing a healthy service changes nothing.
        bs2.heal(FaultTarget::Provider(0)).unwrap();
        assert_eq!(victim.recoveries(), 1);

        audit_versions(p, &bs2, blob, &published, LEN);
        assert_books_balanced(&bs2);
    });
    fx.run();
    h.take().unwrap();
    let _ = std::fs::remove_dir_all(&dir);
}

/// A metadata server dies and loses its stripes; while it is down reads
/// needing its tree nodes fail typed (not garbage), and after the heal every
/// historical version walks the rebuilt tree byte-identically.
#[test]
fn meta_server_crash_restart_recovers_every_version() {
    let dir = scratch_dir("meta");
    let fx = Fabric::sim(ClusterSpec::tiny(4));
    let layout = Layout::compact(fx.spec());
    let cfg = persistent_config().with_persist_dir(Some(dir.clone()));
    let bs = BlobSeer::deploy(&fx, cfg, layout).unwrap();
    let bs2 = bs.clone();
    let h = fx.spawn(NodeId(1), "driver", move |p| {
        const LEN: usize = 200;
        let c = bs2.client();
        let blob = c.create(p, None);
        let published = publish_blocks(p, &c, blob, 5, LEN);

        bs2.inject(FaultTarget::MetaServer(0), Fault::CrashRestart)
            .unwrap();
        let ms = &bs2.metadata_dht().servers()[0];
        assert!(ms.is_wiped());
        // The sole metadata server is down: a historical read cannot resolve
        // its tree and must error, never fabricate bytes.
        let (v0, l0) = published[0];
        assert!(bs2.client().read(p, blob, Some(v0), 0, l0).is_err());

        bs2.heal(FaultTarget::MetaServer(0)).unwrap();
        assert!(!ms.is_wiped());
        assert_eq!(ms.recoveries(), 1);

        audit_versions(p, &bs2, blob, &published, LEN);
        assert_books_balanced(&bs2);
    });
    fx.run();
    h.take().unwrap();
    let _ = std::fs::remove_dir_all(&dir);
}

/// On a memory-only deployment there is no disk to come back from:
/// `CrashRestart` answers a typed `UnsupportedFault` on every target, and
/// it is never supported on the version manager or reaper.
#[test]
fn memory_deployment_rejects_crash_restart() {
    let fx = Fabric::sim(ClusterSpec::tiny(4));
    let layout = Layout::compact(fx.spec());
    let bs = BlobSeer::deploy(&fx, BlobSeerConfig::test_small(PS), layout).unwrap();
    for target in [
        FaultTarget::Provider(0),
        FaultTarget::MetaServer(0),
        FaultTarget::VersionManager,
        FaultTarget::Reaper,
    ] {
        assert!(
            matches!(
                bs.inject(target, Fault::CrashRestart),
                Err(BlobError::UnsupportedFault { .. })
            ),
            "{target} accepted CrashRestart on a memory-only deployment"
        );
    }
}

/// The acceptance run, on the live fabric (real threads, wall-clock time):
/// kill a persistent provider mid-workload, restart it from its pstore
/// directory, and audit that the books balance and every published version
/// reads back byte-identically through a fresh client.
#[test]
fn live_mode_provider_kill_and_restart_mid_workload() {
    let dir = scratch_dir("live");
    let fx = Fabric::live(ClusterSpec::tiny(4));
    let layout = Layout::compact(fx.spec());
    let cfg = persistent_config().with_persist_dir(Some(dir.clone()));
    let bs = BlobSeer::deploy(&fx, cfg, layout).unwrap();
    let bs2 = bs.clone();
    let h = fx.spawn(NodeId(1), "driver", move |p| {
        const LEN: usize = 500;
        const APPENDS: usize = 12;
        let c = bs2.client();
        let blob = c.create(p, None);
        let mut published = Vec::new();
        let mut total = 0u64;
        for k in 0..APPENDS {
            if k == APPENDS / 2 {
                // Mid-workload process death: the provider loses its index,
                // counters and buffered state; appends keep flowing off the
                // surviving replicas.
                bs2.inject(FaultTarget::Provider(0), Fault::CrashRestart)
                    .unwrap();
            }
            if k == 3 * APPENDS / 4 {
                // Restart from the pstore directory while the workload is
                // still running.
                bs2.heal(FaultTarget::Provider(0)).unwrap();
                assert_eq!(bs2.providers()[0].recoveries(), 1);
            }
            let v = c.append(p, blob, Payload::from_vec(block(k, LEN))).unwrap();
            total += LEN as u64;
            published.push((v, total));
        }
        audit_versions(p, &bs2, blob, &published, LEN);
        assert_books_balanced(&bs2);
    });
    fx.run();
    h.take().unwrap();
    let _ = std::fs::remove_dir_all(&dir);
}
