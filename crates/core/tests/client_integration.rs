//! End-to-end tests of the full BlobSeer stack (client + version manager +
//! DHT + providers) on simulated clusters, exercising the exact behaviours
//! the paper claims: parallel appends to a shared BLOB, version isolation
//! between readers and appenders, replication failover.

use std::sync::Arc;

use blobseer::{AllocStrategy, BlobSeer, BlobSeerConfig, Fault, FaultTarget, Layout};
use fabric::{ClusterSpec, Fabric, NodeId, Payload};
use parking_lot::Mutex;

fn pattern(len: usize, tag: u8) -> Vec<u8> {
    (0..len)
        .map(|i| tag.wrapping_add((i % 251) as u8))
        .collect()
}

fn sim_deploy(nodes: u32, page_size: u64) -> (Fabric, BlobSeer) {
    let fx = Fabric::sim(ClusterSpec::tiny(nodes));
    let layout = Layout::compact(fx.spec());
    let bs = BlobSeer::deploy(&fx, BlobSeerConfig::test_small(page_size), layout).unwrap();
    (fx, bs)
}

#[test]
fn append_read_roundtrip_real_bytes() {
    let (fx, bs) = sim_deploy(4, 128);
    let bs2 = bs.clone();
    let h = fx.spawn(NodeId(1), "client", move |p| {
        let c = bs2.client();
        let blob = c.create(p, None);
        let data = pattern(1000, 3); // 8 pages (7 full + short tail)
        let v = c.append(p, blob, Payload::from_vec(data.clone())).unwrap();
        assert_eq!(v, 1);
        assert_eq!(c.size(p, blob, None).unwrap(), 1000);
        let got = c.read(p, blob, None, 0, 1000).unwrap();
        assert_eq!(got.bytes().as_ref(), &data[..]);
        // Sub-range crossing page boundaries.
        let got = c.read(p, blob, None, 100, 300).unwrap();
        assert_eq!(got.bytes().as_ref(), &data[100..400]);
        // Second append; both versions readable.
        let more = pattern(300, 77);
        let v2 = c.append(p, blob, Payload::from_vec(more.clone())).unwrap();
        assert_eq!(v2, 2);
        assert_eq!(c.size(p, blob, None).unwrap(), 1300);
        let got = c.read(p, blob, None, 900, 400).unwrap();
        let mut want = data[900..].to_vec();
        want.extend_from_slice(&more[..300]);
        assert_eq!(got.bytes().as_ref(), &want[..]);
        let got_v1 = c.read(p, blob, Some(1), 0, 1000).unwrap();
        assert_eq!(got_v1.bytes().as_ref(), &data[..]);
    });
    fx.run();
    h.take().unwrap();
}

#[test]
fn concurrent_appenders_all_land_atomically() {
    let (fx, bs) = sim_deploy(12, 256);
    // Create the blob up front from a setup process.
    let bs_setup = bs.clone();
    let blob_cell = Arc::new(Mutex::new(None));
    let bc = blob_cell.clone();
    fx.spawn(NodeId(0), "setup", move |p| {
        let c = bs_setup.client();
        *bc.lock() = Some(c.create(p, None));
    });
    let ready = fx.gate();
    // 8 concurrent appenders, each appends a distinctive block.
    let n = 8usize;
    let block = 700usize; // 3 pages each
    for i in 0..n {
        let bs2 = bs.clone();
        let bc = blob_cell.clone();
        let ready2 = ready.clone();
        fx.spawn(NodeId(1 + i as u32), format!("appender{i}"), move |p| {
            ready2.wait(p);
            let c = bs2.client();
            let blob = bc.lock().unwrap();
            let data = pattern(block, i as u8 * 31 + 1);
            c.append(p, blob, Payload::from_vec(data)).unwrap();
        });
    }
    // Kick off the appenders once the blob id exists.
    let bc2 = blob_cell.clone();
    let ready3 = ready.clone();
    fx.spawn(NodeId(0), "starter", move |p| {
        while bc2.lock().is_none() {
            p.sleep(fabric::MILLIS);
        }
        ready3.set();
    });
    fx.run();

    // Verify from a fresh run context.
    let (fx2, check_bs) = (Fabric::sim(ClusterSpec::tiny(1)), bs);
    let _ = fx2;
    let fx3 = Fabric::sim(ClusterSpec::tiny(12));
    let blob = blob_cell.lock().unwrap();
    let h = fx3.spawn(NodeId(0), "verify", move |p| {
        let c = check_bs.client();
        assert_eq!(c.latest(p, blob).unwrap(), n as u64);
        let total = c.size(p, blob, None).unwrap();
        assert_eq!(total, (n * block) as u64);
        let got = c.read(p, blob, None, 0, total).unwrap();
        let bytes = got.bytes();
        // Each appended block must appear contiguously (atomic append),
        // in *some* order.
        let mut seen = std::collections::HashSet::new();
        for j in 0..n {
            let at = j * block;
            let slice = &bytes[at..at + block];
            let tag = slice[0];
            let i = (0..n)
                .find(|&i| pattern(block, i as u8 * 31 + 1)[0] == tag)
                .expect("block starts with a known tag");
            assert_eq!(
                slice,
                &pattern(block, i as u8 * 31 + 1)[..],
                "block {j} intact"
            );
            assert!(seen.insert(i), "block {i} appeared twice");
        }
        assert_eq!(seen.len(), n);
    });
    fx3.run();
    h.take().unwrap();
}

#[test]
fn readers_pinned_to_snapshots_are_isolated_from_appends() {
    let (fx, bs) = sim_deploy(6, 128);
    let bs2 = bs.clone();
    let h = fx.spawn(NodeId(1), "driver", move |p| {
        let c = bs2.client();
        let blob = c.create(p, None);
        let first = pattern(500, 1);
        c.append(p, blob, Payload::from_vec(first.clone())).unwrap();
        let snap = c.snapshot(p, blob, None).unwrap();
        // Appends happen after the snapshot was taken.
        for round in 0..5u8 {
            c.append(p, blob, Payload::from_vec(pattern(300, 100 + round)))
                .unwrap();
            // The pinned snapshot keeps returning version-1 data.
            let got = c.read_snapshot(p, blob, &snap, 0, 500).unwrap();
            assert_eq!(got.bytes().as_ref(), &first[..]);
        }
        assert_eq!(c.latest(p, blob).unwrap(), 6);
        assert_eq!(c.size(p, blob, Some(1)).unwrap(), 500);
        assert_eq!(c.size(p, blob, None).unwrap(), 500 + 5 * 300);
    });
    fx.run();
    h.take().unwrap();
}

#[test]
fn replicated_pages_survive_provider_failure() {
    let fx = Fabric::sim(ClusterSpec::tiny(8));
    let layout = Layout::compact(fx.spec());
    let config = BlobSeerConfig::test_small(256).with_replication(3);
    let bs = BlobSeer::deploy(&fx, config, layout).unwrap();
    let bs2 = bs.clone();
    let h = fx.spawn(NodeId(1), "driver", move |p| {
        // Uncached on purpose: this test is about provider failover, and a
        // cached client would (correctly) keep serving the published bytes
        // after every provider replica is dead.
        let c = bs2.uncached_client();
        let blob = c.create(p, None);
        let data = pattern(1000, 9);
        c.append(p, blob, Payload::from_vec(data.clone())).unwrap();
        // Total stored = 3 replicas of 1000 bytes.
        assert_eq!(bs2.total_stored_bytes(), 3000);
        // Kill providers one by one; reads keep working until all replicas
        // of some page are gone.
        let locs = c.page_locations(p, blob, None, 0, 1000).unwrap();
        assert!(locs.iter().all(|l| l.hosts.len() == 3));
        // Kill two specific hosts of the first page.
        let victims = [locs[0].hosts[0], locs[0].hosts[1]];
        for pr in bs2.providers() {
            if victims.contains(&pr.node()) {
                pr.kill();
            }
        }
        let got = c.read(p, blob, None, 0, 1000).unwrap();
        assert_eq!(got.bytes().as_ref(), &data[..]);
        // Kill the last replica: the read must now fail loudly.
        for pr in bs2.providers() {
            if pr.node() == locs[0].hosts[2] {
                pr.kill();
            }
        }
        assert!(c.read(p, blob, None, 0, 1000).is_err());
    });
    fx.run();
    h.take().unwrap();
}

#[test]
fn writes_fail_over_to_healthy_providers() {
    let fx = Fabric::sim(ClusterSpec::tiny(6));
    let layout = Layout::compact(fx.spec());
    let config = BlobSeerConfig::test_small(128).with_alloc(AllocStrategy::RoundRobin);
    let bs = BlobSeer::deploy(&fx, config, layout).unwrap();
    // Kill half the providers before any write.
    bs.inject(FaultTarget::Provider(1), Fault::Crash).unwrap();
    bs.inject(FaultTarget::Provider(3), Fault::Crash).unwrap();
    bs.inject(FaultTarget::Provider(5), Fault::Crash).unwrap();
    let bs2 = bs.clone();
    let h = fx.spawn(NodeId(0), "driver", move |p| {
        let c = bs2.client();
        let blob = c.create(p, None);
        let data = pattern(640, 4); // 5 pages
        c.append(p, blob, Payload::from_vec(data.clone())).unwrap();
        let got = c.read(p, blob, None, 0, 640).unwrap();
        assert_eq!(got.bytes().as_ref(), &data[..]);
        // Nothing landed on dead providers.
        for i in [1usize, 3, 5] {
            assert_eq!(bs2.providers()[i].stored_pages(), 0);
        }
    });
    fx.run();
    h.take().unwrap();
}

#[test]
fn failover_releases_reservations_on_dead_providers() {
    // A provider that dies *after* the provider manager reserved capacity on
    // it but *before* the page lands keeps its reservation forever unless
    // the failover path hands it back. Kill the allocated provider while the
    // client's transfer is in flight, let the write fail over, and require
    // the capacity books to balance: every provider's load estimate must
    // equal its stored bytes afterwards.
    const PAGE: u64 = 4 * 1024 * 1024;
    let fx = Fabric::sim(ClusterSpec::tiny(3));
    // Providers on remote nodes only, so the page transfer takes modeled
    // time and the kill can land mid-flight.
    let layout = Layout {
        vm: NodeId(0),
        pm: NodeId(0),
        namespace: NodeId(0),
        meta: vec![NodeId(0)],
        providers: vec![NodeId(1), NodeId(2)],
        read_replicas: vec![],
    };
    let config = BlobSeerConfig::test_small(PAGE).with_alloc(AllocStrategy::RoundRobin);
    let bs = BlobSeer::deploy(&fx, config, layout).unwrap();
    let bs_writer = bs.clone();
    let writer = fx.spawn(NodeId(0), "writer", move |p| {
        let c = bs_writer.client();
        let blob = c.create(p, None);
        // One 4 MB page: round-robin allocates provider 0 (node 1); the
        // killer takes it down mid-transfer and the write must fail over.
        c.append(p, blob, Payload::ghost(PAGE)).unwrap();
        assert_eq!(bs_writer.providers()[0].stored_pages(), 0);
        assert_eq!(bs_writer.providers()[1].stored_pages(), 1);
    });
    let bs_killer = bs.clone();
    fx.spawn(NodeId(2), "killer", move |p| {
        // Well inside the multi-ms transfer window, well after allocation.
        p.sleep(5 * fabric::MILLIS);
        bs_killer.providers()[0].kill();
    });
    fx.run();
    writer.take().unwrap();
    for (i, pr) in bs.providers().iter().enumerate() {
        assert_eq!(
            pr.load_estimate(),
            pr.stored_bytes(),
            "provider {i} has stranded reservations after failover"
        );
    }
}

#[test]
fn abandoned_writes_release_all_reservations() {
    // When every provider dies mid-write the append must fail loudly AND
    // hand back each reservation it was still holding. The payload is NOT
    // page-aligned: the short tail chunk pins the reservation units (exact
    // chunk bytes, not whole pages) across allocate/release.
    const PAGE: u64 = 4 * 1024 * 1024;
    let fx = Fabric::sim(ClusterSpec::tiny(3));
    let layout = Layout {
        vm: NodeId(0),
        pm: NodeId(0),
        namespace: NodeId(0),
        meta: vec![NodeId(0)],
        providers: vec![NodeId(1), NodeId(2)],
        read_replicas: vec![],
    };
    let config = BlobSeerConfig::test_small(PAGE).with_alloc(AllocStrategy::RoundRobin);
    let bs = BlobSeer::deploy(&fx, config, layout).unwrap();
    let bs_writer = bs.clone();
    let writer = fx.spawn(NodeId(0), "writer", move |p| {
        let c = bs_writer.client();
        let blob = c.create(p, None);
        // One full page plus a 1000 B tail; the big transfer dies mid-flight
        // (the tail may land before the kill — that replica is then stored
        // and correctly unreserved).
        assert!(c.append(p, blob, Payload::ghost(PAGE + 1000)).is_err());
    });
    let bs_killer = bs.clone();
    fx.spawn(NodeId(0), "killer", move |p| {
        p.sleep(5 * fabric::MILLIS);
        for pr in bs_killer.providers() {
            pr.kill();
        }
    });
    fx.run();
    writer.take().unwrap();
    for (i, pr) in bs.providers().iter().enumerate() {
        assert_eq!(
            pr.load_estimate(),
            pr.stored_bytes(),
            "provider {i} has stranded reservations after an abandoned write"
        );
    }
}

#[test]
fn overwrite_creates_isolated_snapshots() {
    let (fx, bs) = sim_deploy(4, 100);
    let bs2 = bs.clone();
    let h = fx.spawn(NodeId(0), "driver", move |p| {
        let c = bs2.client();
        let blob = c.create(p, None);
        let base = pattern(400, 1);
        c.append(p, blob, Payload::from_vec(base.clone())).unwrap();
        let patch = pattern(200, 200);
        let v2 = c
            .write(p, blob, 100, Payload::from_vec(patch.clone()))
            .unwrap();
        assert_eq!(v2, 2);
        let mut want = base.clone();
        want[100..300].copy_from_slice(&patch);
        assert_eq!(
            c.read(p, blob, None, 0, 400).unwrap().bytes().as_ref(),
            &want[..]
        );
        assert_eq!(
            c.read(p, blob, Some(1), 0, 400).unwrap().bytes().as_ref(),
            &base[..]
        );
        // Unaligned overwrite is rejected.
        assert!(c
            .write(p, blob, 150, Payload::from_vec(pattern(100, 9)))
            .is_err());
    });
    fx.run();
    h.take().unwrap();
}

#[test]
fn ghost_payloads_at_paper_scale() {
    // 270-node cluster, paper layout, 64 MB pages, ghost data: a smoke test
    // that the full protocol runs at the paper's scale in simulation.
    let fx = Fabric::sim(ClusterSpec::orsay_270());
    let bs = BlobSeer::deploy_paper(&fx, BlobSeerConfig::paper()).unwrap();
    let bs2 = bs.clone();
    let h = fx.spawn(NodeId(100), "client", move |p| {
        let c = bs2.client();
        let blob = c.create(p, None);
        let start = p.now();
        for _ in 0..4 {
            c.append(p, blob, Payload::ghost(64 * 1024 * 1024)).unwrap();
        }
        let elapsed = fabric::ns_to_secs(p.now() - start);
        let size = c.size(p, blob, None).unwrap();
        assert_eq!(size, 4 * 64 * 1024 * 1024);
        // Sequential 64 MB appends over a 117 MB/s NIC: ~0.55 s each.
        assert!(
            (2.0..4.0).contains(&elapsed),
            "4 sequential 64MB appends took {elapsed}s"
        );
        let got = c.read(p, blob, None, 0, size).unwrap();
        assert!(got.is_ghost());
        assert_eq!(got.len(), size);
        (elapsed, bs2.total_stored_bytes())
    });
    fx.run();
    let (_, stored) = h.take().unwrap();
    assert_eq!(stored, 4 * 64 * 1024 * 1024);
}

#[test]
fn page_locations_expose_distribution() {
    let (fx, bs) = sim_deploy(8, 100);
    let bs2 = bs.clone();
    let h = fx.spawn(NodeId(0), "driver", move |p| {
        let c = bs2.client();
        let blob = c.create(p, None);
        c.append(p, blob, Payload::from_vec(pattern(850, 3)))
            .unwrap();
        let locs = c.page_locations(p, blob, None, 0, 850).unwrap();
        assert_eq!(locs.len(), 9); // 8 full + 1 short page
        assert_eq!(locs[8].byte_len, 50);
        let offs: Vec<u64> = locs.iter().map(|l| l.byte_off).collect();
        assert_eq!(offs, (0..9).map(|i| i * 100).collect::<Vec<_>>());
        // Sub-range query returns only overlapping pages.
        let locs = c.page_locations(p, blob, None, 250, 100).unwrap();
        assert_eq!(locs.len(), 2);
        assert_eq!(locs[0].byte_off, 200);
        // Load balancing: no provider got everything.
        let (min, max) = bs2.load_spread();
        assert!(
            max < 850,
            "one provider hoarded all pages (min={min}, max={max})"
        );
    });
    fx.run();
    h.take().unwrap();
}

#[test]
fn live_mode_roundtrip() {
    let fx = Fabric::live(ClusterSpec::tiny(4));
    let layout = Layout::compact(fx.spec());
    let bs = BlobSeer::deploy(&fx, BlobSeerConfig::test_small(4096), layout).unwrap();
    let bs2 = bs.clone();
    let h = fx.spawn(NodeId(0), "driver", move |p| {
        let c = bs2.client();
        let blob = c.create(p, None);
        let data = pattern(100_000, 5);
        c.append(p, blob, Payload::from_vec(data.clone())).unwrap();
        let got = c.read(p, blob, None, 0, 100_000).unwrap();
        assert_eq!(got.bytes().as_ref(), &data[..]);
    });
    fx.run();
    h.take().unwrap();
}
