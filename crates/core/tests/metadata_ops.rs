//! Op-count regression tests for the metadata plane: pin the O(log) append
//! path and the batched wire protocol with `MetaServer::op_counts` /
//! `rpc_counts` and fabric stats, so a reintroduced O(V) scan or
//! node-at-a-time RPC loop fails tier-1 tests instead of only bending bench
//! curves.

use blobseer::types::tree_span;
use blobseer::{BlobSeer, BlobSeerConfig, Layout};
use fabric::{ClusterSpec, Fabric, NodeId, Payload};

const PS: u64 = 64;

/// Levels of the metadata tree over `total_pages` pages (root included).
fn tree_depth(total_pages: u64) -> u64 {
    tree_span(total_pages).trailing_zeros() as u64 + 1
}

fn meta_layout(fx: &Fabric, n_meta: u32) -> Layout {
    Layout {
        vm: NodeId(0),
        pm: NodeId(0),
        namespace: NodeId(0),
        meta: (0..n_meta).map(NodeId).collect(),
        providers: fx.spec().all_nodes().collect(),
        read_replicas: vec![],
    }
}

/// A 1 000-version append sequence issues per-append DHT puts bounded by the
/// tree depth (not by V), exactly one put RPC per metadata server touched,
/// and O(V·log V) total work — no O(V²).
#[test]
fn append_dht_puts_bounded_by_tree_depth() {
    let fx = Fabric::sim(ClusterSpec::tiny(4));
    let layout = meta_layout(&fx, 1);
    let bs = BlobSeer::deploy(&fx, BlobSeerConfig::test_small(PS), layout).unwrap();
    let bs2 = bs.clone();
    let h = fx.spawn(NodeId(1), "appender", move |p| {
        let c = bs2.client();
        let blob = c.create(p, None);
        let dht = bs2.metadata_dht().clone();
        let puts = |d: &blobseer::dht::MetaDht| -> u64 {
            d.servers().iter().map(|s| s.op_counts().0).sum()
        };
        let put_rpcs = |d: &blobseer::dht::MetaDht| -> u64 {
            d.servers().iter().map(|s| s.rpc_counts().0).sum()
        };
        let mut prev_puts = 0u64;
        let mut prev_rpcs = 0u64;
        let mut total_bound = 0u64;
        for v in 1..=1_000u64 {
            c.append(p, blob, Payload::ghost(PS)).unwrap();
            let now_puts = puts(&dht);
            let now_rpcs = put_rpcs(&dht);
            let depth = tree_depth(v); // one page per append => total_pages == v
            let delta_puts = now_puts - prev_puts;
            let delta_rpcs = now_rpcs - prev_rpcs;
            assert!(
                delta_puts <= 2 * depth,
                "append v{v} issued {delta_puts} node puts, tree depth is {depth}"
            );
            assert_eq!(
                delta_rpcs, 1,
                "append v{v} must batch its metadata into one RPC per server, used {delta_rpcs}"
            );
            prev_puts = now_puts;
            prev_rpcs = now_rpcs;
            total_bound += 2 * depth;
        }
        // Aggregate guard against O(V²): 1 000 appends stay within the
        // summed per-append depth bound (~11k), nowhere near V²/2 = 500k.
        assert!(
            prev_puts <= total_bound,
            "total puts {prev_puts} exceed the O(V log V) bound {total_bound}"
        );
        prev_puts
    });
    fx.run();
    let total = h.take().unwrap();
    assert!(total >= 1_000, "every append stored at least its leaf");
}

/// Fresh-snapshot reads skip the inner tree levels entirely (leaf-only
/// gets, batched per server); historical-version reads keep the
/// breadth-first tree walk — one batched metadata RPC per (tree level,
/// server) pair, never one per node.
#[test]
fn reads_batch_one_rpc_per_level_per_server() {
    let fx = Fabric::sim(ClusterSpec::tiny(8));
    let n_meta = 4u32;
    let layout = meta_layout(&fx, n_meta);
    // Read cache off: this test pins the *wire* protocol (leaf-only batched
    // gets); cached-read behavior is covered by the read_cache suite.
    let config = BlobSeerConfig::test_small(PS).with_read_cache_bytes(0);
    let bs = BlobSeer::deploy(&fx, config, layout).unwrap();
    let bs2 = bs.clone();
    let h = fx.spawn(NodeId(1), "reader", move |p| {
        let c = bs2.client();
        let blob = c.create(p, None);
        // One append of 64 full pages: a perfect 7-level tree (span 64).
        c.append(p, blob, Payload::ghost(64 * PS)).unwrap();
        let dht = bs2.metadata_dht().clone();
        let counts = |d: &blobseer::dht::MetaDht| -> (u64, u64) {
            d.servers().iter().fold((0, 0), |(g, r), s| {
                (g + s.op_counts().1, r + s.rpc_counts().1)
            })
        };
        let levels = tree_depth(64); // 7

        // The writer's cached index snapshot is pinned at the version it
        // just wrote: a full fresh read fetches the 64 leaves and nothing
        // else — zero inner tree-node gets.
        let (gets0, rpcs0) = counts(&dht);
        c.read(p, blob, None, 0, 64 * PS).unwrap();
        let (gets1, rpcs1) = counts(&dht);
        assert_eq!(
            gets1 - gets0,
            64,
            "a fresh full read fetches exactly the leaves, no inner nodes"
        );
        assert!(
            rpcs1 - rpcs0 <= n_meta as u64,
            "leaf-only read used {} get RPCs; bound is one per server ({n_meta})",
            rpcs1 - rpcs0
        );
        // A fresh point read fetches exactly its one leaf.
        let (gets2, rpcs2) = counts(&dht);
        c.read(p, blob, None, 10 * PS, PS).unwrap();
        let (gets3, rpcs3) = counts(&dht);
        assert_eq!(gets3 - gets2, 1, "fresh point read fetches one leaf");
        assert!(rpcs3 - rpcs2 <= 1);

        // A read-only client syncs the index once (a VM descriptor-delta
        // RPC, not a DHT get) and then reads leaf-only too.
        let ro = bs2.client();
        let (gets4, rpcs4) = counts(&dht);
        ro.read(p, blob, None, 0, 64 * PS).unwrap();
        let (gets5, rpcs5) = counts(&dht);
        assert_eq!(gets5 - gets4, 64, "synced read-only client is leaf-only");
        assert!(rpcs5 - rpcs4 <= n_meta as u64);

        // Historical versions can only be answered by the tree: a fresh
        // client reading version 1 explicitly walks it breadth-first.
        let hist = bs2.client();
        let (gets6, rpcs6) = counts(&dht);
        hist.read(p, blob, Some(1), 0, 64 * PS).unwrap();
        let (gets7, rpcs7) = counts(&dht);
        assert_eq!(
            gets7 - gets6,
            127,
            "a historical full scan visits every node of the 64-leaf tree exactly once"
        );
        assert!(
            rpcs7 - rpcs6 <= levels * n_meta as u64,
            "full-tree read used {} get RPCs; bound is levels({levels}) x servers({n_meta})",
            rpcs7 - rpcs6
        );
        // A historical point read touches one root-to-leaf path: one node
        // per level, at most one RPC per level.
        let hist2 = bs2.client();
        let (gets8, rpcs8) = counts(&dht);
        hist2.read(p, blob, Some(1), 10 * PS, PS).unwrap();
        let (gets9, rpcs9) = counts(&dht);
        assert_eq!(gets9 - gets8, levels, "point read fetches one path");
        assert!(rpcs9 - rpcs8 <= levels);
    });
    fx.run();
    h.take().unwrap();
}

/// Fabric-level guard: the per-append wire footprint (transfers issued
/// through the simulated cluster) stays flat as history deepens — the
/// hallmark of the indexed + batched metadata plane.
#[test]
fn append_wire_footprint_is_flat_in_history_depth() {
    let fx = Fabric::sim(ClusterSpec::tiny(4));
    let layout = meta_layout(&fx, 1);
    let bs = BlobSeer::deploy(&fx, BlobSeerConfig::test_small(PS), layout).unwrap();
    let bs2 = bs.clone();
    let fx2 = fx.clone();
    let h = fx.spawn(NodeId(1), "appender", move |p| {
        let c = bs2.client();
        let blob = c.create(p, None);
        let window = |n: u64| {
            let t0 = fx2.stats().transfers;
            for _ in 0..n {
                c.append(p, blob, Payload::ghost(PS)).unwrap();
            }
            (fx2.stats().transfers - t0) as f64 / n as f64
        };
        let early = window(64); // history depth 1..=64
        let _ = window(436); // advance to depth 500
        let late = window(64); // history depth 501..=564
        (early, late)
    });
    fx.run();
    let (early, late) = h.take().unwrap();
    assert!(
        late <= early * 1.5 + 1.0,
        "transfers per append grew with history depth: {early:.1} -> {late:.1}"
    );
}
