//! Property test: the O(log) descriptor index (`DescIndex`) must agree
//! *exactly* with the retained linear-scan oracle in `blobseer::types` —
//! for every query, at every version ceiling of a randomized
//! append/overwrite interleaving. Snapshots are persistent, so the ceiling
//! sweep just keeps the O(1) clone taken after each applied descriptor.

use blobseer::types::{
    byte_len_of_range, byte_offset_of_page, latest_toucher, owner_of_page, page_at_boundary,
};
use blobseer::{DescIndex, Version, WriteDesc, WriteKind};
use proptest::prelude::*;

const PS: u64 = 10;

#[derive(Debug, Clone)]
enum Op {
    /// Append `pages - 1` full pages plus a tail of `tail` bytes.
    Append { pages: u64, tail: u64 },
    /// Overwrite `pages` whole interior pages starting at page `page`
    /// (reduced modulo the layout; skipped when the layout forbids it).
    Interior { page: u64, pages: u64 },
    /// Replace the tail from the boundary of page `page` onward with
    /// `extra` bytes beyond the minimum, ending in a `tail`-byte page.
    TailReplace { page: u64, extra: u64, tail: u64 },
}

fn op_strategy() -> impl Strategy<Value = Op> {
    prop_oneof![
        4 => (1u64..4, 1u64..PS + 1).prop_map(|(pages, tail)| Op::Append { pages, tail }),
        2 => (any::<u64>(), 1u64..3).prop_map(|(page, pages)| Op::Interior { page, pages }),
        2 => (any::<u64>(), 0u64..3, 1u64..PS + 1)
            .prop_map(|(page, extra, tail)| Op::TailReplace { page, extra, tail }),
    ]
}

/// Reference page layout: byte length of each live page, in order.
struct Layout {
    page_lens: Vec<u64>,
}

impl Layout {
    fn total_bytes(&self) -> u64 {
        self.page_lens.iter().sum()
    }

    fn offset_of(&self, page: usize) -> u64 {
        self.page_lens[..page].iter().sum()
    }

    fn push_bytes(&mut self, mut n: u64) {
        while n > 0 {
            let take = n.min(PS);
            self.page_lens.push(take);
            n -= take;
        }
    }
}

/// Build the next descriptor for `op` against the current layout, mutating
/// the layout to match; `None` when the op is invalid for this history (the
/// version manager would reject it) and must be skipped.
fn build_desc(op: &Op, version: Version, layout: &mut Layout) -> Option<WriteDesc> {
    let tp = layout.page_lens.len() as u64;
    let tb = layout.total_bytes();
    match *op {
        Op::Append { pages, tail } => {
            let nbytes = (pages - 1) * PS + tail;
            let d = WriteDesc {
                version,
                kind: WriteKind::Append,
                page_lo: tp,
                page_hi: tp + pages,
                byte_lo: tb,
                byte_hi: tb + nbytes,
                total_pages: tp + pages,
                total_bytes: tb + nbytes,
            };
            layout.push_bytes(nbytes);
            Some(d)
        }
        Op::Interior { page, pages } => {
            if tp == 0 {
                return None;
            }
            let start = (page % tp) as usize;
            let k = (pages as usize).min(layout.page_lens.len() - start);
            if k == 0 || start + k >= layout.page_lens.len() {
                return None; // would be a tail replace, not interior
            }
            if layout.page_lens[start..start + k].iter().any(|&l| l != PS) {
                return None; // interior overwrites must keep the layout
            }
            let off = layout.offset_of(start);
            Some(WriteDesc {
                version,
                kind: WriteKind::Write,
                page_lo: start as u64,
                page_hi: (start + k) as u64,
                byte_lo: off,
                byte_hi: off + k as u64 * PS,
                total_pages: tp,
                total_bytes: tb,
            })
        }
        Op::TailReplace { page, extra, tail } => {
            if tp == 0 {
                return None;
            }
            let start = (page % tp) as usize;
            let off = layout.offset_of(start);
            // Minimum bytes to still cover the old end, then round the
            // requested shape up to it: `extra` full pages plus a short
            // tail, at least (tb - off).
            let min = tb - off;
            let mut nbytes = extra * PS + tail;
            if nbytes < min {
                nbytes = min.div_ceil(PS) * PS + tail;
            }
            let k = nbytes.div_ceil(PS);
            let d = WriteDesc {
                version,
                kind: WriteKind::Write,
                page_lo: start as u64,
                page_hi: start as u64 + k,
                byte_lo: off,
                byte_hi: off + nbytes,
                total_pages: start as u64 + k,
                total_bytes: off + nbytes,
            };
            layout.page_lens.truncate(start);
            layout.push_bytes(nbytes);
            Some(d)
        }
    }
}

/// Compare every indexed query against the scan oracle at `ix.version()`.
fn assert_index_matches_oracle(ix: &DescIndex, descs: &[WriteDesc]) {
    let v = ix.version();
    let tp = ix.total_pages();
    let tb = ix.total_bytes();
    for page in 0..tp + 2 {
        prop_assert_eq_std(
            ix.owner_of_page(page),
            owner_of_page(descs, v, page).map(|d| d.version),
            &format!("owner_of_page({page}) at v{v}"),
        );
        prop_assert_eq_std(
            ix.byte_offset_of_page(page),
            byte_offset_of_page(descs, v, PS, page),
            &format!("byte_offset_of_page({page}) at v{v}"),
        );
    }
    for lo in 0..=tp {
        for hi in lo..=tp + 2 {
            prop_assert_eq_std(
                ix.latest_toucher(lo, hi),
                latest_toucher(descs, v, lo, hi).map(|d| d.version),
                &format!("latest_toucher({lo}, {hi}) at v{v}"),
            );
            prop_assert_eq_std(
                ix.byte_len_of_range(lo, hi),
                byte_len_of_range(descs, v, PS, lo, hi),
                &format!("byte_len_of_range({lo}, {hi}) at v{v}"),
            );
        }
    }
    for off in 0..tb + 2 {
        prop_assert_eq_std(
            ix.page_at_boundary(off),
            page_at_boundary(descs, v, PS, off),
            &format!("page_at_boundary({off}) at v{v}"),
        );
    }
}

fn prop_assert_eq_std<T: PartialEq + std::fmt::Debug>(got: T, want: T, what: &str) {
    assert_eq!(got, want, "{what} diverged from the scan oracle");
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 48, ..ProptestConfig::default() })]

    #[test]
    fn indexed_queries_match_scan_oracle_at_every_ceiling(
        ops in prop::collection::vec(op_strategy(), 1..16)
    ) {
        let mut descs: Vec<WriteDesc> = Vec::new();
        let mut ix = DescIndex::new(PS);
        let mut layout = Layout { page_lens: Vec::new() };
        // snapshots[i] is the persistent index pinned at version i + 1.
        let mut snapshots: Vec<DescIndex> = Vec::new();
        for op in &ops {
            let version = descs.len() as Version + 1;
            let Some(d) = build_desc(op, version, &mut layout) else { continue };
            descs.push(d);
            ix.apply(&d);
            snapshots.push(ix.clone());
            // Cross-check the reference layout against the index.
            assert_eq!(ix.total_pages(), layout.page_lens.len() as u64);
            assert_eq!(ix.total_bytes(), layout.total_bytes());
        }
        // Every version ceiling: the snapshot taken at version v must agree
        // with the oracle scanning the *full* history up to v.
        for snap in &snapshots {
            assert_index_matches_oracle(snap, &descs);
        }
    }
}
