//! Integration suite for the snapshot-scoped read cache and the dedicated
//! read-replica tier: bounded client memory under blob churn, hit/miss
//! accounting, the published-only feeding rule, replica preference for
//! published reads, and per-page failover around dead or stale replicas.

use blobseer::{BlobSeer, BlobSeerConfig, Fault, FaultTarget, Layout};
use fabric::{ClusterSpec, Fabric, NodeId, Payload};

const PS: u64 = 64;

fn pattern(len: u64, tag: u8) -> Vec<u8> {
    (0..len)
        .map(|i| tag.wrapping_add((i % 253) as u8))
        .collect()
}

/// Churning through 10 000 blobs must leave every client-side cache at its
/// configured bound: the descriptor/page-size/floor maps at their entry
/// caps, the page/leaf cache at its byte cap — client memory is flat in the
/// number of blobs ever touched, not proportional to it.
#[test]
fn client_memory_stays_bounded_over_10k_blob_churn() {
    const INDEX_CAP: u64 = 128;
    const CACHE_BYTES: u64 = 64 * 1024;
    let fx = Fabric::sim(ClusterSpec::tiny(4));
    let config = BlobSeerConfig::test_small(PS)
        .with_client_index_cache_entries(INDEX_CAP)
        .with_read_cache_bytes(CACHE_BYTES);
    let bs = BlobSeer::deploy(&fx, config, Layout::compact(fx.spec())).unwrap();
    let bs2 = bs.clone();
    let h = fx.spawn(NodeId(1), "churner", move |p| {
        let c = bs2.client();
        for i in 0..10_000u64 {
            let blob = c.create(p, None);
            c.append(p, blob, Payload::from_vec(vec![i as u8; 16]))
                .unwrap();
            c.read(p, blob, None, 0, 16).unwrap();
        }
        let (desc, page_sizes, floors) = c.index_cache_entries();
        assert!(
            desc as u64 <= INDEX_CAP,
            "descriptor cache holds {desc} entries, cap is {INDEX_CAP}"
        );
        assert!(
            page_sizes as u64 <= INDEX_CAP,
            "page-size cache holds {page_sizes} entries, cap is {INDEX_CAP}"
        );
        assert!(
            floors as u64 <= INDEX_CAP,
            "published-floor cache holds {floors} entries, cap is {INDEX_CAP}"
        );
        let stats = c.cache_stats();
        assert!(
            stats.resident_bytes <= CACHE_BYTES,
            "read cache holds {} bytes, cap is {CACHE_BYTES}",
            stats.resident_bytes
        );
        assert!(
            stats.evictions > 0,
            "a 10k-blob churn over a {CACHE_BYTES}-byte cache must evict"
        );
    });
    fx.run();
    h.take().unwrap();
}

/// A warm re-read of a published version is answered entirely from the
/// client cache: zero provider get RPCs, zero metadata-DHT get RPCs, and
/// the hit counters account for every page and leaf.
#[test]
fn warm_published_reads_touch_no_services() {
    let fx = Fabric::sim(ClusterSpec::tiny(6));
    let bs = BlobSeer::deploy(
        &fx,
        BlobSeerConfig::test_small(PS),
        Layout::compact(fx.spec()),
    )
    .unwrap();
    let bs2 = bs.clone();
    let h = fx.spawn(NodeId(1), "reader", move |p| {
        let c = bs2.client();
        let blob = c.create(p, None);
        let data = pattern(8 * PS, 3);
        c.append(p, blob, Payload::from_vec(data.clone())).unwrap();

        let provider_gets = |bs: &BlobSeer| {
            bs.providers()
                .iter()
                .map(|pr| pr.rpc_counts().1)
                .sum::<u64>()
        };
        let dht_gets = |bs: &BlobSeer| {
            bs.metadata_dht()
                .servers()
                .iter()
                .map(|s| s.rpc_counts().1)
                .sum::<u64>()
        };

        // Cold read: fills the cache from the fabric.
        let got = c.read(p, blob, None, 0, 8 * PS).unwrap();
        assert_eq!(got.bytes().as_ref(), &data[..]);
        let (pg, dg) = (provider_gets(&bs2), dht_gets(&bs2));

        // Warm read: byte-identical, and not a single get RPC anywhere.
        let got = c.read(p, blob, None, 0, 8 * PS).unwrap();
        assert_eq!(got.bytes().as_ref(), &data[..]);
        assert_eq!(
            provider_gets(&bs2),
            pg,
            "warm read must not fetch pages from providers"
        );
        assert_eq!(
            dht_gets(&bs2),
            dg,
            "warm read must not fetch leaves from the metadata DHT"
        );

        let stats = c.cache_stats();
        assert_eq!(stats.page_hits, 8, "every page of the warm read hit");
        assert_eq!(stats.page_misses, 8, "every page of the cold read missed");
        assert!((stats.page_hit_rate() - 0.5).abs() < 1e-9);
        assert!(stats.leaf_hits >= 8, "warm read leaves served from cache");
    });
    fx.run();
    h.take().unwrap();
}

/// The cache is fed only by reads of published versions — the write path
/// never inserts (a pending version's tree can still be rewritten by a
/// write-timeout force-complete, so write-side caching would be unsound).
#[test]
fn cache_is_fed_only_by_published_reads() {
    let fx = Fabric::sim(ClusterSpec::tiny(4));
    let bs = BlobSeer::deploy(
        &fx,
        BlobSeerConfig::test_small(PS),
        Layout::compact(fx.spec()),
    )
    .unwrap();
    let bs2 = bs.clone();
    let h = fx.spawn(NodeId(1), "writer", move |p| {
        let c = bs2.client();
        let blob = c.create(p, None);
        for k in 0..4u8 {
            c.append(p, blob, Payload::from_vec(pattern(2 * PS, k)))
                .unwrap();
        }
        let stats = c.cache_stats();
        assert_eq!(stats.insertions, 0, "writes must never feed the cache");
        assert_eq!(stats.resident_entries, 0);

        c.read(p, blob, None, 0, 8 * PS).unwrap();
        let stats = c.cache_stats();
        assert!(
            stats.insertions > 0,
            "a published read must populate the cache"
        );
    });
    fx.run();
    h.take().unwrap();
}

/// With a synced replica tier, published reads are served by the replicas
/// (zero primary get traffic); with every replica dead they fail over to
/// the primaries and still return the right bytes.
#[test]
fn published_reads_prefer_replicas_and_fail_over() {
    let fx = Fabric::sim(ClusterSpec::tiny(8));
    let layout = Layout::compact(fx.spec()).with_read_replicas_from_tail(2);
    let bs = BlobSeer::deploy(&fx, BlobSeerConfig::test_small(PS), layout).unwrap();
    let bs2 = bs.clone();
    // Node 7 hosts a replica but no primary, so no read short-circuits to a
    // local primary.
    let h = fx.spawn(NodeId(7), "reader", move |p| {
        let c = bs2.client();
        let blob = c.create(p, None);
        let data = pattern(8 * PS, 7);
        c.append(p, blob, Payload::from_vec(data.clone())).unwrap();
        let (pages, bytes) = bs2.sync_read_replicas(p);
        assert!(pages >= 8, "sync copied {pages} pages, expected the blob");
        assert!(bytes >= 8 * PS);

        let prim_gets = |bs: &BlobSeer| {
            bs.providers()
                .iter()
                .map(|pr| pr.op_counts().1)
                .sum::<u64>()
        };
        let rep_gets = |bs: &BlobSeer| {
            bs.read_replicas()
                .iter()
                .map(|r| r.op_counts().1)
                .sum::<u64>()
        };

        // Sync itself reads from primaries; baseline after it.
        let (p0, r0) = (prim_gets(&bs2), rep_gets(&bs2));
        let reader = bs2.uncached_client();
        let got = reader.read(p, blob, None, 0, 8 * PS).unwrap();
        assert_eq!(got.bytes().as_ref(), &data[..]);
        let (p1, r1) = (prim_gets(&bs2), rep_gets(&bs2));
        assert_eq!(p1, p0, "replica-tier read must not touch primaries");
        assert!(r1 > r0, "replica tier served no pages");

        // Both replicas dead: reads fail over to the primaries.
        bs2.inject(FaultTarget::ReadReplica(0), Fault::Crash)
            .unwrap();
        bs2.inject(FaultTarget::ReadReplica(1), Fault::Crash)
            .unwrap();
        let reader = bs2.uncached_client();
        let got = reader.read(p, blob, None, 0, 8 * PS).unwrap();
        assert_eq!(got.bytes().as_ref(), &data[..]);
        let (p2, r2) = (prim_gets(&bs2), rep_gets(&bs2));
        assert!(p2 > p1, "failover read must come from primaries");
        assert_eq!(r2, r1, "dead replicas must serve nothing");
        bs2.heal(FaultTarget::ReadReplica(0)).unwrap();
        bs2.heal(FaultTarget::ReadReplica(1)).unwrap();

        // A version the replicas have not synced yet is served by the
        // primaries page-by-page (`has_page` gate) — never wrongly by a
        // stale replica.
        let data2 = pattern(4 * PS, 9);
        c.append(p, blob, Payload::from_vec(data2.clone())).unwrap();
        let reader = bs2.uncached_client();
        let got = reader.read(p, blob, None, 0, 12 * PS).unwrap();
        assert_eq!(&got.bytes()[..8 * PS as usize], &data[..]);
        assert_eq!(&got.bytes()[8 * PS as usize..], &data2[..]);

        // After the next sync round the new version is replica-served too.
        bs2.sync_read_replicas(p);
        let (p3, _) = (prim_gets(&bs2), rep_gets(&bs2));
        let reader = bs2.uncached_client();
        let got = reader.read(p, blob, None, 0, 12 * PS).unwrap();
        assert_eq!(&got.bytes()[8 * PS as usize..], &data2[..]);
        assert_eq!(
            p3,
            prim_gets(&bs2),
            "resynced tier serves without primaries"
        );
    });
    fx.run();
    h.take().unwrap();
}

/// A crash-wiped replica recovers its durable pages on heal, is skipped
/// while down, and pages published after the wipe reach it on the next
/// sync round — reads stay byte-correct throughout.
#[test]
fn crash_restarted_replica_recovers_and_resyncs() {
    let dir = std::env::temp_dir().join(format!("blobseer-replica-restart-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let fx = Fabric::sim(ClusterSpec::tiny(8));
    let layout = Layout::compact(fx.spec()).with_read_replicas_from_tail(2);
    let config = BlobSeerConfig::test_small(PS).with_persist_dir(Some(dir.clone()));
    let bs = BlobSeer::deploy(&fx, config, layout).unwrap();
    let bs2 = bs.clone();
    let h = fx.spawn(NodeId(7), "driver", move |p| {
        let c = bs2.client();
        let blob = c.create(p, None);
        let v1 = pattern(4 * PS, 11);
        c.append(p, blob, Payload::from_vec(v1.clone())).unwrap();
        bs2.sync_read_replicas(p);

        bs2.inject(FaultTarget::ReadReplica(0), Fault::CrashRestart)
            .unwrap();
        // Published while replica 0 is down-and-wiped.
        let v2 = pattern(3 * PS, 13);
        c.append(p, blob, Payload::from_vec(v2.clone())).unwrap();
        let reader = bs2.uncached_client();
        let got = reader.read(p, blob, None, 0, 7 * PS).unwrap();
        assert_eq!(&got.bytes()[..4 * PS as usize], &v1[..]);
        assert_eq!(&got.bytes()[4 * PS as usize..], &v2[..]);

        // Heal restores the durable pages; the books must balance and the
        // missed pages arrive with the next sync round.
        bs2.heal(FaultTarget::ReadReplica(0)).unwrap();
        let rep = &bs2.read_replicas()[0];
        assert_eq!(rep.load_estimate(), rep.stored_bytes());
        bs2.sync_read_replicas(p);
        let reader = bs2.uncached_client();
        let prim_before: u64 = bs2.providers().iter().map(|pr| pr.op_counts().1).sum();
        let got = reader.read(p, blob, None, 0, 7 * PS).unwrap();
        assert_eq!(&got.bytes()[4 * PS as usize..], &v2[..]);
        let prim_after: u64 = bs2.providers().iter().map(|pr| pr.op_counts().1).sum();
        assert_eq!(
            prim_after, prim_before,
            "resynced replica tier must serve the whole read"
        );
    });
    fx.run();
    h.take().unwrap();
    drop(bs);
    let _ = std::fs::remove_dir_all(&dir);
}
