//! Tier-1 pins for the sharded storage plane and the lease-governed
//! writer-failure lifecycle — the mirror of `control_plane_concurrency`.
//!
//! PR 4 made the *control* plane shard per BLOB; these tests pin the same
//! property for the plane that moves bytes:
//!
//! * **independence** — N writers streaming to N disjoint providers (and N
//!   writers fanning into ONE provider) complete in sim-time within a small
//!   constant factor of a single writer: no provider-wide mutex, no global
//!   allocation lock, no shared books serialize them;
//! * **lease lifecycle** — a writer that dies *between* provider allocation
//!   and its page stores leaves zero stranded reservation bytes once its
//!   lease expires, with the background reaper doing the reclaim (no
//!   subsequent VM/PM interaction required); a writer that dies between
//!   `assign` and `commit` publishes through the same reaper without any
//!   control-plane interaction;
//! * **registry GC** — deleted BLOBs retire their registry slots via
//!   epoch-based retirement: immediately unreachable, swept one epoch
//!   later, never a write lock on the read path.
//!
//! The live-mode (real OS threads) variants drive the same machinery
//! through BSFS in `crates/bsfs/tests/bsfs_integration.rs`.

use std::sync::Arc;

use blobseer::meta::PageRef;
use blobseer::version_manager::UpdateKind;
use blobseer::{BlobError, BlobSeer, BlobSeerConfig, Layout, PageId};
use fabric::{ClusterSpec, Fabric, NodeId, Payload};
use parking_lot::Mutex;

const PS: u64 = 4 * 1024; // below the small-message cutoff: page streams
                          // cost latency only, so timing isolates the
                          // storage plane from bandwidth sharing.

fn config() -> BlobSeerConfig {
    let mut cfg = BlobSeerConfig::test_small(PS);
    // Zero modeled CPU charges: any sim-time growth with N can only come
    // from an accidental shared bottleneck in the planes themselves.
    cfg.vm_cpu_ops = 0;
    cfg.meta_cpu_ops = 0;
    cfg
}

/// Services on node 0, writers on nodes `1..=n_writers`, providers on their
/// own dedicated nodes — every page stream is a uniform remote transfer.
fn storage_deploy(n_writers: u32, n_providers: u32, cfg: BlobSeerConfig) -> (Fabric, BlobSeer) {
    let nodes = 1 + n_writers + n_providers;
    let fx = Fabric::sim(ClusterSpec::tiny(nodes));
    let layout = Layout {
        vm: NodeId(0),
        pm: NodeId(0),
        namespace: NodeId(0),
        meta: vec![NodeId(0)],
        providers: (1 + n_writers..nodes).map(NodeId).collect(),
        read_replicas: vec![],
    };
    let bs = BlobSeer::deploy(&fx, cfg, layout).unwrap();
    (fx, bs)
}

/// Run `n` writers (each appending `appends` one-page updates to its own
/// BLOB from its own node) against `n_providers` data providers; returns
/// the slowest writer's elapsed sim-time ns.
fn storage_write_time(n: u32, n_providers: u32, appends: u32) -> u64 {
    let (fx, bs) = storage_deploy(n, n_providers, config());
    let elapsed: Arc<Mutex<Vec<u64>>> = Arc::new(Mutex::new(Vec::new()));
    for i in 0..n {
        let bs2 = bs.clone();
        let t2 = elapsed.clone();
        fx.spawn(NodeId(i + 1), format!("writer{i}"), move |p| {
            let c = bs2.client();
            let blob = c.create(p, None);
            let t0 = p.now();
            for _ in 0..appends {
                c.append(p, blob, Payload::ghost(PS)).unwrap();
            }
            t2.lock().push(p.now() - t0);
        });
    }
    fx.run();
    let elapsed = elapsed.lock();
    assert_eq!(elapsed.len(), n as usize);
    elapsed.iter().copied().max().unwrap()
}

/// N writers on N disjoint providers complete in the same sim-time as one
/// writer on one provider: allocation (atomic cursor, per-provider atomic
/// books, lease splices) and the page stores themselves share no
/// serializing resource across writers.
#[test]
fn disjoint_provider_writers_are_independent() {
    let t1 = storage_write_time(1, 1, 8);
    for n in [4u32, 16] {
        let tn = storage_write_time(n, n, 8);
        assert!(
            tn as f64 <= t1 as f64 * 1.25,
            "{n} writers on {n} disjoint providers took {tn} ns vs {t1} ns for one — \
             the storage plane is serializing disjoint writers"
        );
    }
}

/// The same pin with every writer fanning into ONE provider: the striped
/// page map (and atomic counters) keep the provider itself from becoming a
/// lock bottleneck — with latency-only transfers, N-way fan-in costs the
/// same sim-time as a single writer.
#[test]
fn single_provider_fanin_stays_unserialized() {
    let t1 = storage_write_time(1, 1, 8);
    for n in [4u32, 16] {
        let tn = storage_write_time(n, 1, 8);
        assert!(
            tn as f64 <= t1 as f64 * 1.25,
            "{n} writers fanning into one provider took {tn} ns vs {t1} ns for one — \
             the provider serializes concurrent clients"
        );
    }
}

/// The acceptance pin for the stranded-reservation lease: a writer dies
/// after `allocate` but before any page store. With the background reaper
/// on, its lease expires and every reservation byte returns — with **no**
/// subsequent VM or PM interaction from anyone. A second corpse whose page
/// DID land proves the reaper tells consumed reservations from stranded
/// ones.
#[test]
fn dead_writer_leaves_zero_stranded_bytes_once_lease_expires() {
    let timeout = 300 * fabric::MILLIS;
    let mut cfg = config();
    cfg.timeouts.write_timeout_ns = Some(timeout);
    cfg.timeouts.reaper_interval_ns = 100 * fabric::MILLIS;
    let (fx, bs) = storage_deploy(2, 3, cfg);
    let reaper = bs.start_reaper(&fx);

    // Corpse 1: allocates two pages, stores nothing, dies.
    let bs1 = bs.clone();
    let w1 = fx.spawn(NodeId(1), "corpse-prestore", move |p| {
        let pm = bs1.provider_manager().clone();
        let pages = [(PageId(0xDEAD, 1), PS), (PageId(0xDEAD, 2), 137)];
        pm.allocate(p, &pages, 1, &[]).unwrap();
        // dies here: no page store, no settle
    });
    // Corpse 2: allocates one page, stores it, then dies before settling.
    let bs2 = bs.clone();
    let w2 = fx.spawn(NodeId(2), "corpse-poststore", move |p| {
        let pm = bs2.provider_manager().clone();
        let id = PageId(0xDEAD, 3);
        let (_, placements) = pm.allocate(p, &[(id, PS)], 1, &[]).unwrap();
        placements[0][0]
            .put_page(p, id, Payload::ghost(PS))
            .unwrap();
    });

    let bs3 = bs.clone();
    let driver = fx.spawn(NodeId(0), "driver", move |p| {
        w1.join(p);
        w2.join(p);
        let reserved_before: u64 = bs3
            .providers()
            .iter()
            .map(|pr| pr.load_estimate() - pr.stored_bytes())
            .sum();
        assert_eq!(
            reserved_before,
            PS + 137,
            "both corpses' unconsumed reservations are outstanding pre-expiry"
        );
        // Nothing below touches the VM or PM: only the reaper may act.
        p.sleep(2 * timeout);
        let pm = bs3.provider_manager();
        for (i, pr) in bs3.providers().iter().enumerate() {
            assert_eq!(
                pr.load_estimate(),
                pr.stored_bytes(),
                "provider {i} holds stranded reservation bytes after lease expiry"
            );
        }
        let (expired, reclaimed) = pm.lease_reap_stats();
        assert_eq!(expired, 2, "both corpses' leases expired");
        assert_eq!(
            reclaimed,
            PS + 137,
            "exactly the unlanded bytes were reclaimed (the landed page's \
             reservation was consumed by its store)"
        );
        assert_eq!(pm.outstanding_leases(), 0);
        reaper.stop();
    });
    fx.run();
    driver.take().unwrap();
}

/// The reaper's control-plane half: a writer that dies between `assign` and
/// `commit` publishes through the background sweep alone — no later
/// `assign`/`commit` on the blob needed (`latest` never reaps).
#[test]
fn reaper_publishes_dead_writers_without_vm_interaction() {
    let timeout = 300 * fabric::MILLIS;
    let fx = Fabric::sim(ClusterSpec::tiny(4));
    let mut cfg = config();
    cfg.timeouts.write_timeout_ns = Some(timeout);
    cfg.timeouts.reaper_interval_ns = 100 * fabric::MILLIS;
    let bs = BlobSeer::deploy(&fx, cfg, Layout::compact(fx.spec())).unwrap();
    let reaper = bs.start_reaper(&fx);
    let bs2 = bs.clone();
    let driver = fx.spawn(NodeId(1), "driver", move |p| {
        let vm = bs2.version_manager();
        let blob = vm.create_blob(p, None);
        let manifest = Arc::new(vec![PageRef {
            id: PageId(7, 0),
            byte_len: PS,
            providers: vec![NodeId(2)],
        }]);
        vm.assign(p, blob, UpdateKind::Append, PS, manifest, 0)
            .unwrap();
        // The writer "dies". Wait out the timeout without any reaping
        // interaction (snapshot/latest never piggyback a reap).
        p.sleep(2 * timeout);
        assert_eq!(
            vm.latest(p, blob).unwrap(),
            1,
            "the background reaper must have force-completed the corpse"
        );
        assert_eq!(vm.pending_count(blob), 0);
        reaper.stop();
    });
    fx.run();
    driver.take().unwrap();
}

/// Deleting a BLOB with writers mid-protocol must strand no one: a waiter
/// parked on a version that can now never publish (its predecessor's
/// writer died, then the BLOB was deleted) wakes to a typed `NoSuchBlob`
/// instead of hanging forever, and the straggler's late commit gets the
/// same typed answer.
#[test]
fn delete_blob_fails_parked_waiters_instead_of_stranding_them() {
    let fx = Fabric::sim(ClusterSpec::tiny(4));
    let bs = BlobSeer::deploy(&fx, config(), Layout::compact(fx.spec())).unwrap();
    let manifest = |tag: u64| {
        Arc::new(vec![PageRef {
            id: PageId(tag, 0),
            byte_len: PS,
            providers: vec![NodeId(2)],
        }])
    };
    let bs_w = bs.clone();
    let blob_cell: Arc<Mutex<Option<blobseer::BlobId>>> = Arc::new(Mutex::new(None));
    let assigned = fx.gate();
    let (b2, g2) = (blob_cell.clone(), assigned.clone());
    let mani = manifest(1);
    fx.spawn(NodeId(1), "setup", move |p| {
        let vm = bs_w.version_manager();
        let blob = vm.create_blob(p, None);
        // v1's writer dies uncommitted; v2 commits but cannot publish
        // behind it.
        vm.assign(p, blob, UpdateKind::Append, PS, mani, 0).unwrap();
        let (d2, _) = vm
            .assign(p, blob, UpdateKind::Append, PS, manifest(2), 1)
            .unwrap();
        vm.commit(p, blob, d2.version).unwrap();
        *b2.lock() = Some(blob);
        g2.set();
    });
    // A waiter parks on v2 (unpublishable until v1 resolves).
    let bs_waiter = bs.clone();
    let (b3, g3) = (blob_cell.clone(), assigned.clone());
    let waiter = fx.spawn(NodeId(2), "waiter", move |p| {
        g3.wait(p);
        let blob = b3.lock().unwrap();
        bs_waiter.version_manager().wait_published(p, blob, 2)
    });
    // The file is deleted while the waiter is parked.
    let bs_del = bs.clone();
    let (b4, g4) = (blob_cell.clone(), assigned.clone());
    fx.spawn(NodeId(3), "deleter", move |p| {
        g4.wait(p);
        p.sleep(50 * fabric::MILLIS);
        let blob = b4.lock().unwrap();
        let vm = bs_del.version_manager();
        vm.delete_blob(p, blob).unwrap();
        // The straggler's late commit answers typed, like every other verb.
        assert!(matches!(
            vm.commit(p, blob, 1),
            Err(BlobError::NoSuchBlob(_))
        ));
    });
    fx.run();
    let woken = waiter.take().unwrap();
    assert!(
        matches!(woken, Err(BlobError::NoSuchBlob(_))),
        "parked waiter must wake to NoSuchBlob on deletion, got {woken:?}"
    );
}

/// Epoch-based registry GC at the version manager: a deleted BLOB is
/// unreachable at once, its slot survives exactly one GC epoch before the
/// sweep drops it, and live BLOBs are never disturbed (the read path takes
/// no write lock for any of this).
#[test]
fn retired_blob_slots_are_swept_one_epoch_later() {
    let fx = Fabric::sim(ClusterSpec::tiny(4));
    let bs = BlobSeer::deploy(&fx, config(), Layout::compact(fx.spec())).unwrap();
    let bs2 = bs.clone();
    let driver = fx.spawn(NodeId(1), "driver", move |p| {
        let vm = bs2.version_manager();
        let c = bs2.client();
        let keep = c.create(p, None);
        let doomed = c.create(p, None);
        c.append(p, keep, Payload::ghost(PS)).unwrap();
        c.append(p, doomed, Payload::ghost(PS)).unwrap();
        assert_eq!(vm.registry_len(), 2);

        c.delete(p, doomed).unwrap();
        // Immediately unreachable, for every verb...
        assert!(matches!(c.latest(p, doomed), Err(BlobError::NoSuchBlob(_))));
        assert!(matches!(
            c.append(p, doomed, Payload::ghost(PS)),
            Err(BlobError::NoSuchBlob(_))
        ));
        // ...but the slot waits for its epoch.
        assert_eq!(vm.registry_len(), 2, "retired slot awaits its epoch");
        assert_eq!(vm.gc_registry(), 0, "same-epoch slot survives one pass");
        assert_eq!(vm.registry_len(), 2);
        assert_eq!(vm.gc_registry(), 1, "one epoch old: swept");
        assert_eq!(vm.registry_len(), 1);

        // The live BLOB never noticed; double delete is a typed error.
        assert_eq!(c.latest(p, keep).unwrap(), 1);
        assert_eq!(c.read(p, keep, None, 0, PS).unwrap().len(), PS);
        assert!(matches!(c.delete(p, doomed), Err(BlobError::NoSuchBlob(_))));
    });
    fx.run();
    driver.take().unwrap();
}
