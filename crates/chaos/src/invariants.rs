//! Global invariants checked at quiescence: after the workload finished,
//! every fault healed, and the reaper had time to settle the books, the
//! deployment must look as if the faults never happened.
//!
//! The list (violations render as one string each, most specific first):
//!
//! 1. **Provider books balance** — `load_estimate == stored_bytes` on every
//!    provider: no reservation byte is stranded by a dead or faulted writer.
//!    Dedicated read replicas are held to the same books: replica-held
//!    bytes arrive by background sync (never through a reservation lease),
//!    so any load/stored skew there is a sync accounting bug.
//! 2. **No outstanding leases** — every provider-manager reservation lease
//!    was settled or reaped.
//! 3. **Versions dense, none pending** — per blob, `pending_count == 0`:
//!    in-order publication admitted every assigned version.
//! 4. **Every published version readable** — a *fresh* client (empty
//!    caches) can read every byte of every version `1..=latest` of every
//!    live blob.
//! 5. **Registry drains** — after two GC epochs with no new deletions the
//!    registry holds exactly the live blobs.
//!
//! A sixth invariant is implicit in the harness: `Fabric::run` returning at
//! all proves no waiter stayed parked (the fabric's deadlock detector
//! panics otherwise).

use blobseer::BlobSeer;
use fabric::Proc;

/// Check every invariant; returns one human-readable line per violation
/// (empty = healthy). Must run at quiescence on a healed deployment.
pub fn check(p: &Proc, bs: &BlobSeer) -> Vec<String> {
    let mut violations = Vec::new();

    for (i, prov) in bs.providers().iter().enumerate() {
        let (load, stored) = (prov.load_estimate(), prov.stored_bytes());
        if load != stored {
            violations.push(format!(
                "provider[{i}] books unbalanced: load_estimate {load} != stored_bytes {stored} \
                 ({} reservation bytes stranded)",
                load.saturating_sub(stored)
            ));
        }
    }

    for (i, rep) in bs.read_replicas().iter().enumerate() {
        let (load, stored) = (rep.load_estimate(), rep.stored_bytes());
        if load != stored {
            violations.push(format!(
                "read-replica[{i}] books unbalanced: load_estimate {load} != stored_bytes \
                 {stored} ({} sync bytes unaccounted)",
                load.abs_diff(stored)
            ));
        }
    }

    let leases = bs.provider_manager().outstanding_leases();
    if leases != 0 {
        violations.push(format!("{leases} reservation leases still outstanding"));
    }

    let vm = bs.version_manager();
    for blob in vm.blob_ids() {
        let pending = vm.pending_count(blob);
        if pending != 0 {
            violations.push(format!(
                "blob {blob:?} still has {pending} pending (unpublished) versions"
            ));
        }
        // Fresh client per blob: nothing read here may come from a cache
        // warmed during the faulted run.
        let client = bs.client();
        let latest = match client.latest(p, blob) {
            Ok(v) => v,
            Err(e) => {
                violations.push(format!("blob {blob:?}: latest() failed: {e}"));
                continue;
            }
        };
        for version in 1..=latest {
            let size = match client.size(p, blob, Some(version)) {
                Ok(s) => s,
                Err(e) => {
                    violations.push(format!("blob {blob:?} v{version}: size() failed: {e}"));
                    continue;
                }
            };
            match client.read(p, blob, Some(version), 0, size) {
                Ok(data) if data.len() == size => {}
                Ok(data) => violations.push(format!(
                    "blob {blob:?} v{version}: short read {} of {size} bytes",
                    data.len()
                )),
                Err(e) => {
                    violations.push(format!("blob {blob:?} v{version}: read failed: {e}"));
                }
            }
        }
    }

    // Two epochs retire every tombstone; afterwards the registry must hold
    // exactly the live blobs.
    vm.gc_registry();
    vm.gc_registry();
    let (registry, live) = (vm.registry_len(), vm.blob_ids().len());
    if registry != live {
        violations.push(format!(
            "registry retains {} deleted blob slots after 2 GC epochs",
            registry - live
        ));
    }

    violations
}
