//! `chaos` — seeded fault schedules over full workloads.
//!
//! The fault-tolerance counterpart to the paper's performance experiments:
//! instead of hand-written "kill provider 3, assert X" regressions, a
//! [`ChaosSchedule`] is *generated* from a seed — provider and meta-server
//! crash windows, version-manager pauses, reaper pauses, network delays,
//! drops and transient partitions — and injected into a complete MapReduce
//! job (wordcount, data join) or a concurrent BSFS churn workload running
//! on the deterministic fabric simulation. At quiescence (every fault
//! healed, reaper settled) the deployment is audited against global
//! [`invariants`]: provider books balance, no lease outstanding, versions
//! dense with none pending, every published version readable through a
//! fresh client, registry drained.
//!
//! Everything derives from the seed, so a failing run is a *coordinate*:
//! `(workload, seed)` replays byte-identically — same schedule digest, same
//! fabric counters, same first violation. Failure messages print the exact
//! replay command.

pub mod invariants;
pub mod runner;
pub mod schedule;

pub use runner::{budget_for, run_chaos, run_quiet, RunReport, Workload};
pub use schedule::{ChaosAction, ChaosConfig, ChaosEvent, ChaosSchedule};
